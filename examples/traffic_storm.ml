(* Wormhole traffic on the mapped network: the full §5.5 story,
   observed physically.

   1. Map the C subcluster with in-band probes (nothing but probe
      responses is used).
   2. Compute UP*/DOWN* routes on the map.
   3. Inject application-sized worms for EVERY host pair at the same
      instant into the discrete-event wormhole simulator — worms hold
      channels, block in FIFO order, and are forward-reset by the
      55 ms switch ROM timer if they deadlock.
   4. Watch every worm arrive: the channel-dependency-graph argument,
      demonstrated by the hardware model rather than asserted.
   5. For contrast, drive a deliberately cyclic route set into a ring
      and watch the forward-reset fire — and then watch probe-sized
      worms sail through the same cycle because per-port buffering
      absorbs them (the paper's cut-through subtlety).

   Run with: dune exec examples/traffic_storm.exe *)

open San_topology
open San_simnet

let () =
  (* 1-2: map, then route on the map. *)
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let net = Network.create g in
  let result = San_mapper.Berkeley.run net ~mapper in
  let map = Result.get_ok result.San_mapper.Berkeley.map in
  let table = San_routing.Routes.compute map in
  Format.printf "mapped %a; %d routes computed on the map@." Graph.pp_stats map
    (List.length (San_routing.Routes.all table));

  (* 3-4: the storm runs on the ACTUAL network with map-derived turn
     strings (offset invariance at work). *)
  let sim = Event_sim.create g in
  List.iter
    (fun (src, dst, turns) ->
      let actual_src = Option.get (Graph.host_by_name g (Graph.name map src)) in
      ignore dst;
      ignore
        (Event_sim.inject sim ~at_ns:0.0 ~src:actual_src ~turns
           ~payload_bytes:4096 ()))
    (San_routing.Routes.all table);
  Event_sim.run sim;
  let st = Event_sim.stats sim in
  Format.printf
    "storm: %d worms at t=0 -> %d delivered, %d deadlocked, %d misrouted@."
    st.Event_sim.injected st.Event_sim.delivered st.Event_sim.dropped_reset
    st.Event_sim.dropped_bad_route;
  let lats = Event_sim.latencies sim in
  Format.printf "latency: avg %.0f us, p95 %.0f us, max %.0f us@."
    (st.Event_sim.avg_latency_ns /. 1e3)
    (San_util.Summary.percentile lats 0.95 /. 1e3)
    (st.Event_sim.max_latency_ns /. 1e3);

  (* 4b: where did the storm actually go? Re-run it on the full
     100-node NOW with a fabric counter table installed and rank the
     links by worm transits — the inter-subcluster cross-links should
     carry far more than their share. *)
  let cab, _ = Generators.now_cab () in
  let cab_table = San_routing.Routes.compute cab in
  let fabric = San_telemetry.Fabric_stats.create () in
  let cab_sim = Event_sim.create ~fabric cab in
  List.iter
    (fun (src, _, turns) ->
      ignore
        (Event_sim.inject cab_sim ~at_ns:0.0 ~src ~turns ~payload_bytes:4096 ()))
    (San_routing.Routes.all cab_table);
  Event_sim.run cab_sim;
  let links = San_telemetry.Fabric_stats.links fabric cab in
  let total = San_telemetry.Fabric_stats.total_transits fabric in
  Format.printf
    "@.NOW-wide storm: %d worms, %d channel transits over %d links@."
    (Event_sim.stats cab_sim).Event_sim.injected total (List.length links);
  Format.printf "hottest links (transits, share of all traffic):@.";
  List.iteri
    (fun i l ->
      if i < 8 then
        let (a, pa), (b, pb) = l.San_telemetry.Fabric_stats.ends in
        Format.printf "  %s:%d -- %s:%d  %6d  %4.1f%%@." (Graph.name cab a) pa
          (Graph.name cab b) pb l.San_telemetry.Fabric_stats.l_transits
          (100.0
          *. float_of_int l.San_telemetry.Fabric_stats.l_transits
          /. float_of_int total))
    links;

  (* 5: the counterexample. *)
  let rg = Graph.create () in
  let sw = Array.init 4 (fun i -> Graph.add_switch rg ~name:(Printf.sprintf "r%d" i) ()) in
  for i = 0 to 3 do
    Graph.connect rg (sw.(i), 0) (sw.((i + 1) mod 4), 1)
  done;
  let hosts =
    Array.init 4 (fun i ->
        let h = Graph.add_host rg ~name:(Printf.sprintf "h%d" i) in
        Graph.connect rg (h, 0) (sw.(i), 2);
        h)
  in
  let cyclic = Array.to_list (Array.map (fun h -> (h, [ -2; -1; 1 ])) hosts) in
  (match San_routing.Deadlock.check_acyclic rg cyclic with
  | Error e -> Format.printf "adversarial ring: checker says %s@." e
  | Ok () -> Format.printf "adversarial ring: checker MISSED the cycle?!@.");
  let big = Event_sim.create rg in
  List.iter
    (fun (src, turns) ->
      ignore (Event_sim.inject big ~at_ns:0.0 ~src ~turns ~payload_bytes:100_000 ()))
    cyclic;
  Event_sim.run big;
  let sb = Event_sim.stats big in
  Format.printf
    "  100 KB worms: %d/%d forward-reset at %.1f ms (deadlock, broken by the ROM timer)@."
    sb.Event_sim.dropped_reset sb.Event_sim.injected
    (sb.Event_sim.finished_at_ns /. 1e6);
  let small = Event_sim.create rg in
  List.iter
    (fun (src, turns) ->
      ignore (Event_sim.inject small ~at_ns:0.0 ~src ~turns ~payload_bytes:16 ()))
    cyclic;
  Event_sim.run small;
  let ss = Event_sim.stats small in
  Format.printf
    "  probe-sized worms on the same cycle: %d/%d delivered (absorbed by \
     per-port buffers)@."
    ss.Event_sim.delivered ss.Event_sim.injected
