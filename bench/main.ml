(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (§5), printing our measured values next to the
   numbers the paper reports, then runs ablation studies over the
   design choices called out in DESIGN.md, and finally a Bechamel
   micro-benchmark section (one Test.make per experiment).

   Usage: dune exec bench/main.exe [-- --only fig6,fig10] [--runs N]
          [--no-bechamel] [--fast]                                      *)

open San_topology
open San_simnet
open San_mapper
module T = San_util.Tablefmt

let runs = ref 20
let fast = ref false
let with_bechamel = ref true
let only : string list ref = ref []
let csv_dir : string option ref = ref None

let write_csv name header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (String.concat "," header ^ "\n");
        List.iter
          (fun row -> output_string oc (String.concat "," row ^ "\n"))
          rows);
    Printf.printf "(wrote %s)\n" path

let wants section =
  match !only with [] -> true | l -> List.mem section l

(* Set by any section whose hard gate fails; the process exits 1. *)
let gate_failed = ref false

(* Per-section metrics snapshots (the global registry is reset around
   each section), exported as BENCH_obs.json so the perf trajectory is
   machine-readable alongside the printed tables. *)
let obs_sections : (string * San_util.Json.t) list ref = ref []

let section name ~when_ f =
  if when_ then begin
    San_obs.Obs.reset ();
    let t0 = Unix.gettimeofday () in
    f ();
    let wall_s = Unix.gettimeofday () -. t0 in
    let j =
      match
        San_obs.Metrics.to_json
          (San_obs.Metrics.snapshot San_obs.Obs.registry)
      with
      | San_util.Json.Obj fields ->
        San_util.Json.Obj (("wall_s", San_util.Json.Num wall_s) :: fields)
      | j -> j
    in
    obs_sections := (name, j) :: !obs_sections
  end

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "unknown" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> line
    | _ -> "unknown")
  with _ -> "unknown"

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* Versioned envelope so downstream tooling can diff BENCH_obs.json
   across commits without sniffing its shape. Bump [version] on any
   section-layout change. *)
let write_obs () =
  let module J = San_util.Json in
  let j =
    J.Obj
      [
        ("version", J.Num 1.0);
        ("commit", J.Str (git_commit ()));
        ("timestamp", J.Str (iso8601 (Unix.gettimeofday ())));
        ("sections", J.Obj (List.rev !obs_sections));
      ]
  in
  let oc = open_out "BENCH_obs.json" in
  output_string oc (J.to_string j);
  output_char oc '\n';
  close_out oc;
  Printf.printf "(wrote BENCH_obs.json)\n"

let fmt_ms ns = Printf.sprintf "%.0f" (ns /. 1e6)
let fmt_pct x = Printf.sprintf "%.0f%%" (100.0 *. x)

let mapper_of g name = Option.get (Graph.host_by_name g name)

let systems () =
  [
    ("C", fst (Generators.now_c ()));
    ("C+A", fst (Generators.now_ca ()));
    ("C+A+B", fst (Generators.now_cab ()));
  ]

(* ------------------------------------------------------------------ *)
(* Figure 3: subcluster components                                      *)

let fig3 () =
  let t =
    T.create
      ~header:
        [ "subcluster"; "interfaces"; "paper"; "switches"; "paper"; "links"; "paper" ]
  in
  List.iter
    (fun (name, spec, (ph, ps, pl)) ->
      let g, _ = Generators.subcluster spec in
      T.add_row t
        [
          name;
          string_of_int (Graph.num_hosts g);
          string_of_int ph;
          string_of_int (Graph.num_switches g);
          string_of_int ps;
          string_of_int (Graph.num_wires g);
          string_of_int pl;
        ])
    [
      ("A", Generators.spec_a, (34, 13, 64));
      ("B", Generators.spec_b, (30, 14, 65));
      ("C", Generators.spec_c, (36, 13, 64));
    ];
  T.print ~title:"Figure 3 — A, B, C subcluster components" t

(* ------------------------------------------------------------------ *)
(* Figures 4 & 5: the maps themselves                                   *)

let fig45 () =
  let t =
    T.create
      ~header:
        [ "figure"; "network"; "mapped"; "explorations"; "verified" ]
  in
  let one fig name g =
    let net = Network.create g in
    let r = Berkeley.run net ~mapper:(mapper_of g "C-util") in
    let mapped, verified =
      match r.Berkeley.map with
      | Error e -> ("-", "export failed: " ^ e)
      | Ok m ->
        ( Format.asprintf "%a" Graph.pp_stats m,
          match Iso.check ~map:m ~actual:g ~exclude:(Core_set.separated_set g) () with
          | Ok () -> "isomorphic to N - F"
          | Error e -> "MISMATCH " ^ e )
    in
    T.add_row t [ fig; name; mapped; string_of_int r.Berkeley.explorations; verified ]
  in
  one "fig 4" "C subcluster" (fst (Generators.now_c ()));
  one "fig 5" "100-node NOW" (fst (Generators.now_cab ()));
  T.print ~title:"Figures 4 & 5 — automatically generated maps (DOT via examples/now_cluster.exe)" t

(* ------------------------------------------------------------------ *)
(* Figure 6: probe counts and hit ratios                                *)

let fig6 () =
  let paper =
    [ ("C", (200, 107, 250, 157)); ("C+A", (412, 216, 491, 295));
      ("C+A+B", (804, 324, 1207, 727)) ]
  in
  let t =
    T.create
      ~header:
        [ "system"; "host"; "hits"; "ratio"; "paper";
          "switch"; "hits"; "ratio"; "paper" ]
  in
  List.iter
    (fun (name, g) ->
      let net = Network.create g in
      let r = Berkeley.run net ~mapper:(mapper_of g "C-util") in
      let ph, phh, ps, psh = List.assoc name paper in
      T.add_row t
        [
          name;
          string_of_int r.Berkeley.host_probes;
          string_of_int r.Berkeley.host_hits;
          fmt_pct
            (float_of_int r.Berkeley.host_hits
            /. float_of_int (max 1 r.Berkeley.host_probes));
          Printf.sprintf "%d/%d (%d%%)" ph phh (100 * phh / ph);
          string_of_int r.Berkeley.switch_probes;
          string_of_int r.Berkeley.switch_hits;
          fmt_pct
            (float_of_int r.Berkeley.switch_hits
            /. float_of_int (max 1 r.Berkeley.switch_probes));
          Printf.sprintf "%d/%d (%d%%)" ps psh (100 * psh / ps);
        ])
    (systems ());
  T.print ~title:"Figure 6 — host and switch probe message hit ratios" t

(* ------------------------------------------------------------------ *)
(* Figure 7: mapping times, master vs election                          *)

let fig7 () =
  let n = if !fast then 6 else !runs in
  let paper =
    [ ("C", ("248 / 256 / 265", "277 / 278 / 282"));
      ("C+A", ("499 / 522 / 555", "569 / 577 / 587"));
      ("C+A+B", ("981 / 1011 / 1208", "1065 / 1298 / 3332")) ]
  in
  let t =
    T.create
      ~header:
        [ "system"; "master (ms)"; "paper"; "election (ms)"; "paper" ]
  in
  let jrng = San_util.Prng.create 99 in
  List.iter
    (fun (name, g) ->
      let mapper = mapper_of g "C-util" in
      let master =
        List.init n (fun _ ->
            let net = Network.create ~jitter:(0.08, jrng) g in
            (Berkeley.run net ~mapper).Berkeley.elapsed_ns)
      in
      let erng = San_util.Prng.create 7 in
      let election =
        List.init n (fun _ ->
            let net = Network.create ~jitter:(0.08, jrng) g in
            (Election.run ~rng:erng net).Election.total_ns)
      in
      let pm, pe = List.assoc name paper in
      T.add_row t
        [
          name;
          Format.asprintf "%a" San_util.Summary.pp_ms
            (San_util.Summary.of_list master);
          pm;
          Format.asprintf "%a" San_util.Summary.pp_ms
            (San_util.Summary.of_list election);
          pe;
        ])
    (systems ());
  T.print
    ~title:
      (Printf.sprintf
         "Figure 7 — mapping times (min / avg / max over %d runs), one master \
          vs election" n)
    t

(* ------------------------------------------------------------------ *)
(* Figure 8: model graph growth over switch explorations                *)

let fig8 () =
  let g, _ = Generators.now_cab () in
  let net = Network.create g in
  let r = Berkeley.run ~record_trace:true net ~mapper:(mapper_of g "C-util") in
  let t =
    T.create
      ~header:
        [ "exploration"; "model nodes"; "model edges"; "frontier"; "hosts found" ]
  in
  let every = max 1 (r.Berkeley.explorations / 16) in
  List.iter
    (fun (p : Berkeley.trace_point) ->
      if p.Berkeley.step mod every = 0 || p.Berkeley.step = r.Berkeley.explorations
      then
        T.add_row t
          [
            string_of_int p.Berkeley.step;
            string_of_int p.Berkeley.live_nodes;
            string_of_int p.Berkeley.live_edges;
            string_of_int p.Berkeley.frontier_length;
            string_of_int p.Berkeley.hosts_found;
          ])
    r.Berkeley.trace;
  let peak =
    List.fold_left
      (fun acc (p : Berkeley.trace_point) -> max acc p.Berkeley.live_nodes)
      0 r.Berkeley.trace
  in
  T.print ~title:"Figure 8 — model graph size vs switch explorations (C+A+B)" t;
  Printf.printf
    "created %d model vertices in total (paper: ~750); peak live %d; merged \
     and pruned to %d = the 140 actual nodes (paper: 140)\n"
    r.Berkeley.created_vertices peak r.Berkeley.live_vertices;
  write_csv "fig8"
    [ "exploration"; "model_nodes"; "model_edges"; "frontier"; "hosts_found" ]
    (List.map
       (fun (p : Berkeley.trace_point) ->
         List.map string_of_int
           [
             p.Berkeley.step; p.Berkeley.live_nodes; p.Berkeley.live_edges;
             p.Berkeley.frontier_length; p.Berkeley.hosts_found;
           ])
       r.Berkeley.trace)

(* ------------------------------------------------------------------ *)
(* Figure 9: map time vs number of responding daemons                   *)

let fig9 () =
  let g, _ = Generators.now_cab () in
  let mapper = mapper_of g "C-util" in
  let counts =
    if !fast then [ 1; 20; 37; 71; 100 ]
    else [ 1; 5; 10; 15; 20; 36; 37; 50; 70; 71; 85; 100 ]
  in
  let seq = Population.sweep ~order:Population.Sequential ~counts g ~mapper in
  let rnd =
    Population.sweep
      ~order:(Population.Random (San_util.Prng.create 3))
      ~counts g ~mapper
  in
  let t =
    T.create
      ~header:
        [ "daemons"; "seq (s)"; "seq probes"; "random (s)"; "random probes" ]
  in
  List.iter2
    (fun (a : Population.point) (b : Population.point) ->
      T.add_row t
        [
          string_of_int a.Population.responders;
          Printf.sprintf "%.2f" (a.Population.map_time_ns /. 1e9);
          string_of_int a.Population.probes;
          Printf.sprintf "%.2f" (b.Population.map_time_ns /. 1e9);
          string_of_int b.Population.probes;
        ])
    seq rnd;
  T.print
    ~title:
      "Figure 9 — time to map the 40-switch fabric vs hosts running a mapper \
       daemon (sequential vs random placement)"
    t;
  let time_of pts k =
    (List.find (fun p -> p.Population.responders = k) pts).Population.map_time_ns
  in
  let full = time_of seq 100 in
  Printf.printf
    "speedup 1 -> 100 daemons: %.1fx (paper: ~8x); random placement with 15 \
     daemons is %.1fx of the minimum (paper: within 2x after 15)\n"
    (time_of seq 1 /. full)
    (try time_of rnd 15 /. full with Not_found -> time_of rnd 20 /. full);
  write_csv "fig9"
    [ "daemons"; "sequential_s"; "random_s" ]
    (List.map2
       (fun (a : Population.point) (b : Population.point) ->
         [
           string_of_int a.Population.responders;
           Printf.sprintf "%.3f" (a.Population.map_time_ns /. 1e9);
           Printf.sprintf "%.3f" (b.Population.map_time_ns /. 1e9);
         ])
       seq rnd)

(* ------------------------------------------------------------------ *)
(* Figure 10: the Myricom algorithm                                     *)

let fig10 () =
  let paper =
    [ ("C", (134, 713, 152, 450, 1449, 1414));
      ("C+A", (283, 1484, 329, 1234, 3330, 2197));
      ("C+A+B", (424, 2293, 611, 5089, 8413, 4009)) ]
  in
  let paper_ratio = [ ("C", (3.2, 5.5)); ("C+A", (3.6, 3.9)); ("C+A+B", (5.4, 3.9)) ] in
  let t =
    T.create
      ~header:
        [ "system"; "loop"; "host"; "sw"; "comp"; "total"; "paper total";
          "time(ms)"; "paper"; "msgs vs B"; "paper"; "time vs B"; "paper" ]
  in
  List.iter
    (fun (name, g) ->
      let mapper = mapper_of g "C-util" in
      let rm = San_myricom.Myricom.run g ~mapper in
      let net = Network.create g in
      let rb = Berkeley.run net ~mapper in
      let c = rm.San_myricom.Myricom.counts in
      let _, _, _, _, pt, ptime = List.assoc name paper in
      let pmr, ptr = List.assoc name paper_ratio in
      T.add_row t
        [
          name;
          string_of_int c.San_myricom.Myricom.loop_probes;
          string_of_int c.San_myricom.Myricom.host_probes;
          string_of_int c.San_myricom.Myricom.switch_probes;
          string_of_int c.San_myricom.Myricom.compare_probes;
          string_of_int (San_myricom.Myricom.total c);
          string_of_int pt;
          fmt_ms rm.San_myricom.Myricom.elapsed_ns;
          string_of_int ptime;
          Printf.sprintf "%.1fx"
            (float_of_int (San_myricom.Myricom.total c)
            /. float_of_int (Berkeley.total_probes rb));
          Printf.sprintf "%.1fx" pmr;
          Printf.sprintf "%.1fx"
            (rm.San_myricom.Myricom.elapsed_ns /. rb.Berkeley.elapsed_ns);
          Printf.sprintf "%.1fx" ptr;
        ])
    (systems ());
  T.print ~title:"Figure 10 — Myricom Algorithm performance summary" t

(* ------------------------------------------------------------------ *)
(* §5.5: deadlock-free route computation                                *)

let routes_section () =
  let t =
    T.create
      ~header:
        [ "network"; "pairs"; "turns min/avg/max"; "delivery"; "deadlock-free";
          "hottest channel"; "relabelled" ]
  in
  List.iter
    (fun (name, g) ->
      let net = Network.create g in
      let r = Berkeley.run net ~mapper:(mapper_of g "C-util") in
      match r.Berkeley.map with
      | Error e -> T.add_row t [ name; "map failed: " ^ e ]
      | Ok map ->
        let util = Graph.host_by_name map "C-util" in
        let rng = San_util.Prng.create 17 in
        let table =
          San_routing.Routes.compute ~rng ~ignore_hosts:(Option.to_list util) map
        in
        let st = San_routing.Routes.length_stats table in
        let hottest =
          match San_routing.Routes.channel_loads table with
          | (_, l) :: _ -> string_of_int l ^ " routes"
          | [] -> "-"
        in
        T.add_row t
          [
            name;
            string_of_int st.San_routing.Routes.pairs;
            Printf.sprintf "%d / %.2f / %d" st.San_routing.Routes.min_len
              st.San_routing.Routes.avg_len st.San_routing.Routes.max_len;
            (match San_routing.Routes.verify_delivery ~against:g table with
            | Ok () -> "ok (on actual net)"
            | Error e -> e);
            (match San_routing.Deadlock.check_routes table with
            | Ok () -> "acyclic CDG"
            | Error e -> e);
            hottest;
            string_of_int
              (List.length (San_routing.Updown.relabeled (San_routing.Routes.updown table)));
          ])
    (systems ());
  T.print
    ~title:
      "§5.5 — UP*/DOWN* routes computed from the map, delivered on the actual \
       network"
    t;
  (* Route distribution: each host's slice travels in-band as one worm
     along the leader's fresh route to it. *)
  let t2 =
    T.create
      ~header:
        [ "network"; "slices"; "table bytes"; "updated"; "missed"; "duration (ms)" ]
  in
  List.iter
    (fun (name, g) ->
      let mapper = mapper_of g "C-util" in
      let net = Network.create g in
      let r = Berkeley.run net ~mapper in
      match r.Berkeley.map with
      | Error _ -> ()
      | Ok map ->
        let table = San_routing.Routes.compute map in
        let p = San_routing.Distribute.plan table in
        (match San_routing.Distribute.simulate table ~actual:g ~leader:mapper with
        | Ok rep ->
          T.add_row t2
            [
              name;
              string_of_int (List.length p.San_routing.Distribute.slices);
              string_of_int p.San_routing.Distribute.total_bytes;
              string_of_int rep.San_routing.Distribute.hosts_updated;
              string_of_int rep.San_routing.Distribute.hosts_missed;
              fmt_ms rep.San_routing.Distribute.duration_ns;
            ]
        | Error e -> T.add_row t2 [ name; "failed: " ^ e ]))
    (systems ());
  T.print
    ~title:
      "§5.5 — in-band route distribution (per-host slices as worms over the \
       event simulator)"
    t2

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)

let ablation_policy () =
  let g, _ = Generators.now_cab () in
  let mapper = mapper_of g "C-util" in
  let t =
    T.create ~header:[ "policy"; "probes"; "explorations"; "time (ms)"; "map" ]
  in
  let run name policy =
    let net = Network.create g in
    let r = Berkeley.run ~policy net ~mapper in
    T.add_row t
      [
        name;
        string_of_int (Berkeley.total_probes r);
        string_of_int r.Berkeley.explorations;
        fmt_ms r.Berkeley.elapsed_ns;
        (match r.Berkeley.map with
        | Ok m ->
          if Iso.equal ~map:m ~actual:g () then "correct" else "WRONG"
        | Error e -> "failed: " ^ e);
      ]
  in
  run "faithful (all tricks)" Berkeley.faithful;
  run "no window pruning" { Berkeley.faithful with window_pruning = false };
  run "no known-slot skip" { Berkeley.faithful with skip_known = false };
  run "host-probe first" { Berkeley.faithful with host_probe_first = true };
  T.print
    ~title:
      "Ablation — §3.3.3 probe-elimination tricks on C+A+B (the paper \
       conjectures ~2x savings)"
    t

let ablation_model () =
  let t =
    T.create
      ~header:[ "network"; "model"; "probes"; "switch hits"; "map" ]
  in
  let run name g mapper_name model =
    let net = Network.create ~model g in
    let r = Berkeley.run net ~mapper:(mapper_of g mapper_name) in
    T.add_row t
      [
        name;
        Collision.model_to_string model;
        string_of_int (Berkeley.total_probes r);
        string_of_int r.Berkeley.switch_hits;
        (match r.Berkeley.map with
        | Ok m ->
          if
            Iso.equal ~map:m ~actual:g
              ~exclude:(Core_set.separated_set g) ()
          then "correct"
          else "WRONG"
        | Error e -> "failed: " ^ e);
      ]
  in
  let gc = fst (Generators.now_c ()) in
  run "C" gc "C-util" Collision.Circuit;
  run "C" gc "C-util" Collision.Cut_through;
  let torus = Generators.torus ~rows:3 ~cols:3 () in
  run "torus 3x3" torus "h0-0" Collision.Circuit;
  run "torus 3x3" torus "h0-0" Collision.Cut_through;
  T.print
    ~title:
      "Ablation — §2.3.1 collision models (cut-through lets some self-reusing \
       probes through: a super-tree of responses)"
    t

let ablation_depth () =
  let g, _ = Generators.now_cab () in
  let mapper = mapper_of g "C-util" in
  let oracle = Core_set.search_depth g ~root:mapper in
  let t =
    T.create
      ~header:[ "depth"; "probes"; "switches mapped"; "isomorphic" ]
  in
  List.iter
    (fun d ->
      let net = Network.create g in
      let r = Berkeley.run ~depth:(Berkeley.Fixed d) net ~mapper in
      T.add_row t
        [
          (if d = oracle then Printf.sprintf "%d (oracle Q+D+1)" d
           else string_of_int d);
          string_of_int (Berkeley.total_probes r);
          (match r.Berkeley.map with
          | Ok m -> string_of_int (Graph.num_switches m)
          | Error _ -> "-");
          (match r.Berkeley.map with
          | Ok m -> if Iso.equal ~map:m ~actual:g () then "yes" else "no"
          | Error e -> "export failed: " ^ e);
        ])
    [ 4; 5; 6; 7; 8; oracle ];
  T.print
    ~title:
      "Ablation — exploration depth on C+A+B (completeness needs 7 = \
       switch-eccentricity+2; the proof bound is safe but deep)"
    t

let ablation_myricom_window () =
  let g, _ = Generators.now_ca () in
  let mapper = mapper_of g "C-util" in
  let t =
    T.create
      ~header:[ "compare window"; "compare probes"; "total"; "map" ]
  in
  List.iter
    (fun w ->
      let r = San_myricom.Myricom.run ~compare_depth_window:w g ~mapper in
      T.add_row t
        [
          (if w > 50 then "unbounded" else string_of_int w);
          string_of_int r.San_myricom.Myricom.counts.San_myricom.Myricom.compare_probes;
          string_of_int (San_myricom.Myricom.total r.San_myricom.Myricom.counts);
          (match r.San_myricom.Myricom.map with
          | Ok m -> if Iso.equal ~map:m ~actual:g () then "correct" else "WRONG"
          | Error e -> "failed: " ^ e);
        ])
    [ 0; 1; 2; 3; 100 ];
  T.print
    ~title:
      "Ablation — Myricom comparison-window heuristic on C+A (narrower = \
       fewer probes, risk of unmerged replicates)"
    t

let ablation_updown_root () =
  let g, _ = Generators.now_cab () in
  let util = Graph.host_by_name g "C-util" in
  let t =
    T.create
      ~header:[ "root policy"; "avg turns"; "max"; "hottest channel" ]
  in
  let run name root labeling =
    let table =
      San_routing.Routes.compute ?root ~ignore_hosts:(Option.to_list util)
        ~labeling g
    in
    let st = San_routing.Routes.length_stats table in
    let sound =
      Result.is_ok (San_routing.Routes.verify_delivery table)
      && Result.is_ok (San_routing.Deadlock.check_routes table)
    in
    T.add_row t
      [
        name;
        Printf.sprintf "%.2f%s" st.San_routing.Routes.avg_len
          (if sound then "" else " UNSOUND");
        string_of_int st.San_routing.Routes.max_len;
        (match San_routing.Routes.channel_loads table with
        | (_, l) :: _ -> string_of_int l
        | [] -> "-");
      ]
  in
  run "farthest-from-hosts, BFS (paper)" None San_routing.Updown.Bfs;
  run "arbitrary leaf switch, BFS" (Some (List.hd (Graph.switches g)))
    San_routing.Updown.Bfs;
  run "farthest-from-hosts, DFS preorder" None San_routing.Updown.Dfs;
  T.print
    ~title:
      "Ablation — UP*/DOWN* root and labelling on the NOW (the paper: \
       goodness is highly topology-dependent; DFS spreads root load)"
    t

(* ------------------------------------------------------------------ *)
(* Event-driven wormhole validation                                     *)

let eventsim_section () =
  let t =
    T.create
      ~header:
        [ "scenario"; "worms"; "delivered"; "forward-reset"; "CDG verdict";
          "avg latency"; "max" ]
  in
  (* 1. Every pair's compliant route at once, application-sized worms. *)
  let g, _ = Generators.now_c () in
  let table = San_routing.Routes.compute g in
  let all_routes = San_routing.Routes.all table in
  let sim = Event_sim.create g in
  List.iter
    (fun (src, _, turns) ->
      ignore (Event_sim.inject sim ~at_ns:0.0 ~src ~turns ~payload_bytes:4096 ()))
    all_routes;
  Event_sim.run sim;
  let st = Event_sim.stats sim in
  T.add_row t
    [
      "C all-pairs storm (4 KB)";
      string_of_int st.Event_sim.injected;
      string_of_int st.Event_sim.delivered;
      string_of_int st.Event_sim.dropped_reset;
      (match San_routing.Deadlock.check_routes table with
      | Ok () -> "acyclic"
      | Error _ -> "cyclic");
      Printf.sprintf "%.0f us" (st.Event_sim.avg_latency_ns /. 1e3);
      Printf.sprintf "%.0f us" (st.Event_sim.max_latency_ns /. 1e3);
    ];
  (* 2. An adversarial cyclic route set on a switch ring. *)
  let rg = Graph.create () in
  let sw =
    Array.init 4 (fun i -> Graph.add_switch rg ~name:(Printf.sprintf "r%d" i) ())
  in
  for i = 0 to 3 do
    Graph.connect rg (sw.(i), 0) (sw.((i + 1) mod 4), 1)
  done;
  let hosts =
    Array.init 4 (fun i ->
        let h = Graph.add_host rg ~name:(Printf.sprintf "h%d" i) in
        Graph.connect rg (h, 0) (sw.(i), 2);
        h)
  in
  let cyclic = Array.to_list (Array.map (fun h -> (h, [ -2; -1; 1 ])) hosts) in
  let sim2 = Event_sim.create rg in
  List.iter
    (fun (src, turns) ->
      ignore (Event_sim.inject sim2 ~at_ns:0.0 ~src ~turns ~payload_bytes:100_000 ()))
    cyclic;
  Event_sim.run sim2;
  let st2 = Event_sim.stats sim2 in
  T.add_row t
    [
      "ring cycle (100 KB)";
      string_of_int st2.Event_sim.injected;
      string_of_int st2.Event_sim.delivered;
      string_of_int st2.Event_sim.dropped_reset;
      (match San_routing.Deadlock.check_acyclic rg cyclic with
      | Ok () -> "acyclic"
      | Error _ -> "cyclic");
      "-";
      Printf.sprintf "reset at %.0f ms" (st2.Event_sim.finished_at_ns /. 1e6);
    ];
  (* 3. The same cycle with probe-sized worms: buffering absorbs them. *)
  let sim3 = Event_sim.create rg in
  List.iter
    (fun (src, turns) ->
      ignore (Event_sim.inject sim3 ~at_ns:0.0 ~src ~turns ~payload_bytes:16 ()))
    cyclic;
  Event_sim.run sim3;
  let st3 = Event_sim.stats sim3 in
  T.add_row t
    [
      "ring cycle (probe-sized)";
      string_of_int st3.Event_sim.injected;
      string_of_int st3.Event_sim.delivered;
      string_of_int st3.Event_sim.dropped_reset;
      "cyclic";
      Printf.sprintf "%.1f us" (st3.Event_sim.avg_latency_ns /. 1e3);
      Printf.sprintf "%.1f us" (st3.Event_sim.max_latency_ns /. 1e3);
    ];
  T.print
    ~title:
      "Event-driven wormhole validation — the dependency-graph checker's \
       verdicts, observed physically (switch ROM forward-reset = 55 ms)"
    t;
  (* 4. Root congestion as latency, not just route counts. *)
  let t2 =
    T.create
      ~header:[ "background worms (8 KB)"; "avg latency"; "p95"; "max" ]
  in
  let routes_arr = Array.of_list all_routes in
  List.iter
    (fun load ->
      let sim = Event_sim.create g in
      let rng = San_util.Prng.create 5 in
      for _ = 1 to load do
        let src, _, turns =
          routes_arr.(San_util.Prng.int rng (Array.length routes_arr))
        in
        ignore
          (Event_sim.inject sim
             ~at_ns:(San_util.Prng.float rng 100_000.0)
             ~src ~turns ~payload_bytes:8192 ())
      done;
      Event_sim.run sim;
      let st = Event_sim.stats sim in
      let lats = Event_sim.latencies sim in
      T.add_row t2
        [
          string_of_int load;
          Printf.sprintf "%.0f us" (st.Event_sim.avg_latency_ns /. 1e3);
          (if lats = [] then "-"
           else
             Printf.sprintf "%.0f us"
               (San_util.Summary.percentile lats 0.95 /. 1e3));
          Printf.sprintf "%.0f us" (st.Event_sim.max_latency_ns /. 1e3);
        ])
    [ 100; 400; 1600 ];
  T.print
    ~title:
      "Event-driven — UP*/DOWN* root congestion as latency under load \
       (random C pairs over 100 us)"
    t2

(* ------------------------------------------------------------------ *)
(* §6 future-work extensions                                            *)

let ext_simplified () =
  (* §3.1's labelling algorithm vs the §3.3 production algorithm. *)
  let t =
    T.create
      ~header:
        [ "network"; "algorithm"; "probes"; "model size"; "map agrees" ]
  in
  let compare_on name g mapper_name depth =
    let mapper = mapper_of g mapper_name in
    let net1 = Network.create g in
    let rl = Labels.run ~depth net1 ~mapper in
    let net2 = Network.create g in
    let rb = Berkeley.run ~depth net2 ~mapper in
    let agree =
      match (rl.Labels.map, rb.Berkeley.map) with
      | Ok a, Ok b -> if Iso.equal ~map:a ~actual:b () then "yes" else "NO"
      | _ -> "export failed"
    in
    T.add_row t
      [
        name;
        "simplified (labels)";
        string_of_int (rl.Labels.host_probes + rl.Labels.switch_probes);
        Printf.sprintf "%d tree vertices, %d labels" rl.Labels.tree_vertices
          rl.Labels.labels;
        agree;
      ];
    T.add_row t
      [
        name;
        "production (merged)";
        string_of_int (Berkeley.total_probes rb);
        Printf.sprintf "%d created, %d live" rb.Berkeley.created_vertices
          rb.Berkeley.live_vertices;
        "-";
      ]
  in
  compare_on "star(4)" (Generators.star ~leaves:4 ()) "h0" Berkeley.Oracle;
  compare_on "mesh 2x3" (Generators.mesh ~rows:2 ~cols:3 ()) "h0-0"
    (Berkeley.Fixed 7);
  T.print
    ~title:
      "Extension — §3.1 simplified labelling algorithm as an executable \
       oracle (exponential tree; small nets only)"
    t

let ext_randomized () =
  let t =
    T.create
      ~header:
        [ "network"; "mapper"; "probes"; "time (ms)"; "coupon hits"; "map" ]
  in
  let one name g mapper_name =
    let mapper = mapper_of g mapper_name in
    let verdict r =
      match r with
      | Ok m ->
        if Iso.equal ~map:m ~actual:g ~exclude:(Core_set.separated_set g) ()
        then "correct"
        else "WRONG"
      | Error e -> "failed: " ^ e
    in
    let net = Network.create g in
    let rb = Berkeley.run net ~mapper in
    T.add_row t
      [
        name; "breadth-first";
        string_of_int (Berkeley.total_probes rb);
        fmt_ms rb.Berkeley.elapsed_ns;
        "-";
        verdict rb.Berkeley.map;
      ];
    let net2 = Network.create g in
    let rr = Randomized.run ~rng:(San_util.Prng.create 9) net2 ~mapper in
    T.add_row t
      [
        name; "coupon + BFS";
        string_of_int (Randomized.total_probes rr);
        fmt_ms rr.Randomized.elapsed_ns;
        Printf.sprintf "%d/%d" rr.Randomized.coupon_hits
          rr.Randomized.coupon_probes;
        verdict rr.Randomized.map;
      ]
  in
  one "C" (fst (Generators.now_c ())) "C-util";
  one "C+A+B" (fst (Generators.now_cab ())) "C-util";
  T.print
    ~title:
      "Extension — §6 randomized coupon-collecting phase (honest finding: \
       roughly break-even on the NOW; the merger is already effective and \
       the fat tree lacks expansion)"
    t

let ext_parallel () =
  let g, _ = Generators.now_cab () in
  let solo =
    let net = Network.create g in
    Berkeley.run net ~mapper:(mapper_of g "C-util")
  in
  let t =
    T.create
      ~header:
        [ "mappers"; "local depth"; "wall (ms)"; "speedup"; "total probes"; "global map" ]
  in
  T.add_row t
    [
      "1 (solo)"; "oracle";
      fmt_ms solo.Berkeley.elapsed_ns;
      "1.0x";
      string_of_int (Berkeley.total_probes solo);
      "correct";
    ];
  List.iter
    (fun (k, d, r) ->
      let mappers = Parallel.spread_mappers g ~count:k in
      let rr = Parallel.run ~local_depth:d ~trust_radius:r ~mappers g in
      T.add_row t
        [
          string_of_int k;
          string_of_int d;
          fmt_ms rr.Parallel.wall_ns;
          Printf.sprintf "%.2fx" (solo.Berkeley.elapsed_ns /. rr.Parallel.wall_ns);
          string_of_int rr.Parallel.total_probes;
          (match rr.Parallel.map with
          | Ok m ->
            if Iso.equal ~map:m ~actual:g () then "correct"
            else Printf.sprintf "partial (%d switches)" (Graph.num_switches m)
          | Error e -> "merge failed: " ^ e);
        ])
    [ (4, 6, 5); (9, 6, 5); (9, 5, 4); (16, 5, 4) ];
  T.print
    ~title:
      "Extension — §6 parallel mapping: local regions glued at shared hosts \
       (wall time = slowest local mapper)"
    t

let ext_incremental () =
  let g, _ = Generators.now_cab () in
  let mapper = mapper_of g "C-util" in
  let net = Network.create g in
  let full = Berkeley.run net ~mapper in
  let map0 = Result.get_ok full.Berkeley.map in
  let t =
    T.create ~header:[ "epoch"; "verdict"; "probes"; "time (ms)"; "map" ]
  in
  T.add_row t
    [
      "cold start (full remap)"; "-";
      string_of_int (Berkeley.total_probes full);
      fmt_ms full.Berkeley.elapsed_ns;
      "correct";
    ];
  let describe_verdict = function
    | Incremental.Unchanged -> "unchanged"
    | Incremental.Changed n -> Printf.sprintf "changed (%d found)" n
  in
  let row name actual_g responding =
    let net = Network.create ~responding actual_g in
    let r = Incremental.run net ~mapper ~previous:map0 in
    T.add_row t
      [
        name;
        describe_verdict r.Incremental.verdict;
        string_of_int
          (match r.Incremental.verdict with
          | Incremental.Unchanged -> r.Incremental.verify_probes
          | Incremental.Changed _ -> r.Incremental.verify_probes);
        fmt_ms r.Incremental.total_elapsed_ns;
        (match r.Incremental.map with
        | Ok m ->
          if
            Iso.equal ~map:m ~actual:actual_g
              ~exclude:(Core_set.separated_set actual_g) ()
          then "correct"
          else
            (* e.g. a silenced host is unmappable by design *)
            Format.asprintf "consistent view: %a" Graph.pp_stats m
        | Error e -> "failed: " ^ e);
      ]
  in
  row "quiet epoch (verify only)" g (fun _ -> true);
  let rng = San_util.Prng.create 77 in
  row "epoch with a cut cable" (Faults.remove_random_links ~rng g ~count:1)
    (fun _ -> true);
  let silent = mapper_of g "B-h3" in
  row "epoch with a dead daemon" g (fun h -> h <> silent);
  T.print
    ~title:
      "Extension — incremental remapping: one probe per known port verifies \
       a quiet epoch ~16x cheaper than a full remap (probes column shows \
       verification probes; time includes any fallback remap)"
    t

let ext_online () =
  let g, _ = Generators.now_c () in
  let mapper = mapper_of g "C-util" in
  let t =
    T.create
      ~header:
        [ "offered load (4 KB worms/ms)"; "probes"; "timeouts"; "map time (ms)";
          "background worms"; "map quality" ]
  in
  List.iter
    (fun rate ->
      let r =
        Online.run ~traffic_per_ms:rate ~rng:(San_util.Prng.create 5) g ~mapper
      in
      T.add_row t
        [
          Printf.sprintf "%.0f" rate;
          string_of_int r.Online.probes;
          string_of_int r.Online.probe_timeouts;
          fmt_ms r.Online.elapsed_ns;
          string_of_int r.Online.background_injected;
          (match r.Online.map with
          | Ok m ->
            if Iso.equal ~map:m ~actual:g () then "isomorphic"
            else Format.asprintf "degraded: %a" Graph.pp_stats m
          | Error e -> "failed: " ^ e);
        ])
    [ 0.0; 5.0; 25.0; 100.0 ];
  T.print
    ~title:
      "Extension — on-line mapping over the event-driven simulator with live \
       cross-traffic (the paper: \"oftentimes correctly maps even in the \
       face of heavy application cross-traffic\")"
    t

let ext_selfid () =
  let t =
    T.create
      ~header:
        [ "network"; "mapper"; "probes"; "explorations"; "time (ms)"; "map" ]
  in
  List.iter
    (fun (name, g) ->
      let mapper = mapper_of g "C-util" in
      let net = Network.create g in
      let rb = Berkeley.run net ~mapper in
      T.add_row t
        [
          name; "Berkeley (anonymous switches)";
          string_of_int (Berkeley.total_probes rb);
          string_of_int rb.Berkeley.explorations;
          fmt_ms rb.Berkeley.elapsed_ns;
          "N - F";
        ];
      let rs = Selfid.run g ~mapper in
      T.add_row t
        [
          name; "self-identifying switches";
          string_of_int rs.Selfid.probes;
          string_of_int rs.Selfid.explorations;
          fmt_ms rs.Selfid.elapsed_ns;
          (match rs.Selfid.map with
          | Ok m -> if Iso.equal ~map:m ~actual:g () then "full N" else "WRONG"
          | Error e -> "failed: " ^ e);
        ])
    (systems ());
  T.print
    ~title:
      "Extension — §6 hardware what-if: id-carrying loopbacks kill replicate \
       cost (one exploration per physical switch) but not the port sweep"
    t

let ext_emergent_election () =
  let t =
    T.create
      ~header:
        [ "system"; "mode"; "time (ms)"; "winner probes"; "total probes";
          "losers silenced"; "map" ]
  in
  List.iter
    (fun (name, g) ->
      let r = Election_sim.run ~rng:(San_util.Prng.create 5) g in
      let solo =
        Election_sim.run
          ~rng:(San_util.Prng.create 5)
          ~mappers:[ r.Election_sim.winner ] ~max_skew_ns:0.0 g
      in
      let verdict (res : Election_sim.result) =
        match res.Election_sim.map with
        | Ok m -> if Iso.equal ~map:m ~actual:g () then "correct" else "WRONG"
        | Error e -> "failed: " ^ e
      in
      T.add_row t
        [
          name; "single master (event-driven)";
          fmt_ms solo.Election_sim.finished_at_ns;
          string_of_int solo.Election_sim.winner_probes;
          string_of_int solo.Election_sim.total_probes;
          "-";
          verdict solo;
        ];
      T.add_row t
        [
          name; "emergent election (all hosts)";
          fmt_ms r.Election_sim.finished_at_ns;
          string_of_int r.Election_sim.winner_probes;
          string_of_int r.Election_sim.total_probes;
          Printf.sprintf "%d/%d"
            (List.length r.Election_sim.defers)
            (r.Election_sim.contenders - 1);
          verdict r;
        ])
    (systems ());
  T.print
    ~title:
      "Extension — emergent election: every host's mapper runs concurrently \
       as an effects fiber on the shared wormhole fabric. Finding: the \
       network cost of election is ~zero (losers silenced early, probes \
       buffer-absorbed) at ~2.5x the messages; the paper's measured election \
       overhead (Figure 7) is therefore host-software-side, which is what \
       the stochastic Election model prices"
    t

let sensitivity () =
  (* Are the reproduced conclusions robust to the calibrated software
     costs?  Scale the dominant knob (probe timeout) and watch the
     Figure-10 ratios. *)
  let g = fst (Generators.now_c ()) in
  let mapper = mapper_of g "C-util" in
  let t =
    T.create
      ~header:
        [ "timeout scale"; "Berkeley (ms)"; "Myricom (ms)";
          "msgs ratio"; "time ratio" ]
  in
  List.iter
    (fun scale ->
      let params =
        {
          Params.default with
          Params.probe_timeout_ns = Params.default.Params.probe_timeout_ns *. scale;
        }
      in
      let net = Network.create ~params g in
      let rb = Berkeley.run net ~mapper in
      let rm = San_myricom.Myricom.run ~params g ~mapper in
      T.add_row t
        [
          Printf.sprintf "%.1fx" scale;
          fmt_ms rb.Berkeley.elapsed_ns;
          fmt_ms rm.San_myricom.Myricom.elapsed_ns;
          Printf.sprintf "%.1fx"
            (float_of_int (San_myricom.Myricom.total rm.San_myricom.Myricom.counts)
            /. float_of_int (Berkeley.total_probes rb));
          Printf.sprintf "%.1fx"
            (rm.San_myricom.Myricom.elapsed_ns /. rb.Berkeley.elapsed_ns);
        ])
    [ 0.5; 1.0; 2.0; 4.0 ];
  T.print
    ~title:
      "Sensitivity — the Berkeley-vs-Myricom conclusion under timeout \
       miscalibration (message ratio is timing-independent; time ratio moves \
       but never flips)"
    t

let ext_cross_traffic () =
  let g, _ = Generators.now_c () in
  let mapper = mapper_of g "C-util" in
  let t =
    T.create
      ~header:
        [ "loss per crossing"; "retries"; "probes"; "time (ms)"; "map quality" ]
  in
  List.iter
    (fun (p, retries) ->
      let net = Network.create ~traffic:(p, San_util.Prng.create 3) g in
      let policy = { Berkeley.faithful with retries } in
      let r = Berkeley.run ~policy net ~mapper in
      T.add_row t
        [
          Printf.sprintf "%.1f%%" (100.0 *. p);
          string_of_int retries;
          string_of_int (Berkeley.total_probes r);
          fmt_ms r.Berkeley.elapsed_ns;
          (match r.Berkeley.map with
          | Ok m ->
            if Iso.equal ~map:m ~actual:g () then "isomorphic"
            else
              Format.asprintf "degraded: %a" Graph.pp_stats m
          | Error e -> "export failed: " ^ e);
        ])
    [ (0.0, 0); (0.005, 0); (0.02, 0); (0.02, 2); (0.05, 0); (0.05, 2); (0.05, 4) ];
  T.print
    ~title:
      "Extension — §6 cross-traffic: probe loss per wire crossing, with and \
       without the retry defence (retries restore the map at the price of \
       extra probes on every true vacancy)"
    t

(* ------------------------------------------------------------------ *)
(* Control-plane daemon: convergence after scripted faults              *)

let daemon_section () =
  let open San_service in
  let n = if !fast then 3 else 8 in
  let schedule =
    Result.get_ok (Schedule.parse "2:cut,4:flap=2,6:kill-leader,8:cut")
  in
  let converges = ref [] in
  let t =
    T.create
      ~header:
        [ "seed"; "remaps"; "elections"; "incidents"; "delta B"; "full B";
          "saved"; "final" ]
  in
  for seed = 1 to n do
    let g, _ = Generators.now_cab () in
    let config = { Daemon.default_config with Daemon.seed } in
    match Daemon.run ~config ~schedule ~epochs:12 g with
    | Error e -> T.add_row t [ string_of_int seed; "failed: " ^ e ]
    | Ok o ->
      List.iter
        (fun (i : Daemon.incident) ->
          converges := i.Daemon.converge_ns :: !converges)
        o.Daemon.incidents;
      T.add_row t
        [
          string_of_int seed;
          string_of_int o.Daemon.remaps;
          string_of_int o.Daemon.elections;
          string_of_int (List.length o.Daemon.incidents);
          string_of_int o.Daemon.delta_bytes;
          string_of_int o.Daemon.full_bytes;
          fmt_pct
            (if o.Daemon.full_bytes = 0 then 0.0
             else
               1.0
               -. float_of_int o.Daemon.delta_bytes
                  /. float_of_int o.Daemon.full_bytes);
          Daemon.phase_to_string o.Daemon.final_phase;
        ]
  done;
  T.print
    ~title:
      (Printf.sprintf
         "Control-plane daemon — 12 epochs on the NOW under cut / flap / \
          leader-kill (%d seeded runs); delta distribution vs full \
          redistribution"
         n)
    t;
  (match !converges with
  | [] -> ()
  | l ->
    Printf.printf
      "detect-to-routes-installed convergence over %d incidents: p50 %.0f \
       ms, p90 %.0f ms, max %.0f ms simulated\n"
      (List.length l)
      (San_util.Summary.percentile l 0.5 /. 1e6)
      (San_util.Summary.percentile l 0.9 /. 1e6)
      (San_util.Summary.percentile l 1.0 /. 1e6))

(* ------------------------------------------------------------------ *)
(* SLO observatory: convergence percentiles vs offered load x faults.   *)

(* Every epoch the daemon spent Degraded must be explainable from a
   flight recording: the file written when the daemon ENTERED the
   degraded streak must exist, parse, and yield a non-empty postmortem
   timeline. Returns (degraded_epochs, unexplained_epochs). *)
let check_degraded_flights dir (reports : San_service.Daemon.epoch_report list)
    =
  let open San_service in
  let last_enter = ref None in
  let prev_degraded = ref false in
  List.fold_left
    (fun (n, bad) (r : Daemon.epoch_report) ->
      let deg = List.mem Daemon.Degraded r.Daemon.phases in
      if deg && not !prev_degraded then last_enter := Some r.Daemon.epoch;
      prev_degraded := deg;
      if not deg then (n, bad)
      else
        let explained =
          match !last_enter with
          | None -> false
          | Some e -> (
            let path =
              Filename.concat dir (Printf.sprintf "flight-%d.jsonl" e)
            in
            match San_why.Postmortem.read path with
            | Ok pm -> San_why.Postmortem.timeline pm <> []
            | Error _ -> false)
        in
        (n + 1, if explained then bad else bad + 1))
    (0, 0) reports

let load_matrix_section () =
  let module J = San_util.Json in
  let open San_service in
  San_why.Why.set_enabled true;
  Fun.protect ~finally:(fun () -> San_why.Why.set_enabled false)
  @@ fun () ->
  let seeds = if !fast then 2 else 3 in
  let epochs = 12 in
  let loads = [ 0.3; 1.0; 3.0 ] in
  let faults =
    [
      ("low", "3:flap=2,8:cut");
      ("high", "2:storm=2x1,5:flapstorm=3x2,8:partition=2,10:cut");
    ]
  in
  let t =
    T.create
      ~header:
        [ "faults"; "load"; "incidents"; "degraded"; "p50 ms"; "p95 ms";
          "p99 ms"; "drop p95"; "postmortems" ]
  in
  let entries = ref [] in
  let csv_rows = ref [] in
  List.iter
    (fun (fname, script) ->
      let schedule = Result.get_ok (Schedule.parse script) in
      List.iter
        (fun offered ->
          let converge = San_slo.Digest.create () in
          let drops = ref [] in
          let degraded = ref 0 in
          let unexplained = ref 0 in
          for seed = 1 to seeds do
            let flight_dir =
              Printf.sprintf "_artifacts/load_matrix/%s-%.1f-s%d" fname
                offered seed
            in
            (* The daemon's recorder mkdirs only the leaf; build the
               nested path here. *)
            List.fold_left
              (fun parent part ->
                let d =
                  if parent = "" then part else Filename.concat parent part
                in
                (try Unix.mkdir d 0o755
                 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
                d)
              ""
              (String.split_on_char '/' flight_dir)
            |> ignore;
            let config =
              {
                Daemon.default_config with
                Daemon.seed;
                flight_dir = Some flight_dir;
                load =
                  Some
                    (San_slo.Load.spec ~pattern:San_slo.Load.Hotspot offered);
                slos = San_slo.Slo.defaults;
              }
            in
            let g, _ = Generators.now_cab () in
            match Daemon.run ~config ~schedule ~epochs g with
            | Error e ->
              Printf.printf "load_matrix %s/%.1f seed %d failed: %s\n" fname
                offered seed e;
              gate_failed := true
            | Ok o ->
              List.iter
                (fun (i : Daemon.incident) ->
                  San_slo.Digest.add converge i.Daemon.converge_ns)
                o.Daemon.incidents;
              List.iter
                (fun (r : Daemon.epoch_report) ->
                  match r.Daemon.load with
                  | Some l -> drops := l.San_slo.Load.r_drop_rate :: !drops
                  | None -> ())
                o.Daemon.reports;
              let d, u = check_degraded_flights flight_dir o.Daemon.reports in
              degraded := !degraded + d;
              unexplained := !unexplained + u
          done;
          if !unexplained > 0 then gate_failed := true;
          let q p = San_slo.Digest.quantile converge p /. 1e6 in
          let drop95 = San_util.Summary.percentile !drops 0.95 in
          T.add_row t
            [
              fname;
              Printf.sprintf "%.1f" offered;
              string_of_int (San_slo.Digest.count converge);
              string_of_int !degraded;
              Printf.sprintf "%.0f" (q 0.5);
              Printf.sprintf "%.0f" (q 0.95);
              Printf.sprintf "%.0f" (q 0.99);
              Printf.sprintf "%.3f" drop95;
              (if !unexplained = 0 then "all explained"
               else Printf.sprintf "%d UNEXPLAINED" !unexplained);
            ];
          csv_rows :=
            [
              fname; Printf.sprintf "%.2f" offered;
              string_of_int (San_slo.Digest.count converge);
              string_of_int !degraded;
              Printf.sprintf "%.3f" (q 0.5); Printf.sprintf "%.3f" (q 0.95);
              Printf.sprintf "%.3f" (q 0.99); Printf.sprintf "%.4f" drop95;
            ]
            :: !csv_rows;
          entries :=
            ( Printf.sprintf "%s_%.1f" fname offered,
              J.Obj
                [
                  ("faults", J.Str fname);
                  ("offered", J.Num offered);
                  ("seeds", J.int seeds);
                  ("incidents", J.int (San_slo.Digest.count converge));
                  ("degraded_epochs", J.int !degraded);
                  ("unexplained_degraded", J.int !unexplained);
                  ("converge_p50_ns", J.Num (San_slo.Digest.quantile converge 0.5));
                  ("converge_p95_ns", J.Num (San_slo.Digest.quantile converge 0.95));
                  ("converge_p99_ns", J.Num (San_slo.Digest.quantile converge 0.99));
                  ("drop_p95", J.Num drop95);
                  ("digest", San_slo.Digest.to_json converge);
                ] )
            :: !entries)
        loads)
    faults;
  T.print
    ~title:
      (Printf.sprintf
         "Convergence under live traffic — %d-epoch daemon runs on the NOW, \
          %d seeds per cell, hotspot load (worms/host/ms) x fault schedule; \
          gate: every degraded epoch postmortem-explainable"
         epochs seeds)
    t;
  write_csv "load_matrix"
    [ "faults"; "offered"; "incidents"; "degraded"; "p50_ms"; "p95_ms";
      "p99_ms"; "drop_p95" ]
    (List.rev !csv_rows);
  obs_sections :=
    ("load_matrix", J.Obj (List.rev !entries)) :: !obs_sections

(* ------------------------------------------------------------------ *)
(* Fuzz throughput: how much random-fabric checking a CI minute buys.   *)

let fuzz_section () =
  let cases = if !fast then 40 else 250 in
  let t =
    T.create ~header:[ "properties"; "cases"; "failures"; "wall s"; "cases/s" ]
  in
  let row name props =
    let t0 = Unix.gettimeofday () in
    let r = San_check.Runner.run ?props ~cases ~seed:42 () in
    let wall = Unix.gettimeofday () -. t0 in
    T.add_row t
      [
        name;
        string_of_int r.San_check.Runner.r_cases;
        string_of_int (List.length r.San_check.Runner.r_failures);
        Printf.sprintf "%.2f" wall;
        Printf.sprintf "%.0f" (float_of_int cases /. wall);
      ]
  in
  row "full suite" None;
  List.iter (fun p -> row p (Some [ p ])) San_check.Props.names;
  T.print
    ~title:
      (Printf.sprintf
         "Property-fuzz throughput — %d generated fabrics per row, seed 42; \
          per-property rows rebuild the mapper context each case, so the \
          full suite beats the sum of its parts"
         cases)
    t

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: what does leaving the switchboard on cost?       *)

let telemetry_section () =
  let module J = San_util.Json in
  let g, _ = Generators.now_cab () in
  let mapper = mapper_of g "C-util" in
  let n = if !fast then 3 else 5 in
  let best f =
    (* Best-of-N wall time: overhead claims should not be inflated by
       one unlucky scheduler hiccup. *)
    let best = ref infinity in
    for _ = 1 to n do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  let map_once () =
    let net = Network.create g in
    ignore (Berkeley.run net ~mapper : Berkeley.result)
  in
  let daemon_epochs = if !fast then 4 else 8 in
  let daemon_once () =
    let schedule = Result.get_ok (San_service.Schedule.parse "2:cut") in
    match
      San_service.Daemon.run ~schedule ~epochs:daemon_epochs (fst (Generators.now_cab ()))
    with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  let fabric = San_telemetry.Fabric_stats.create () in
  let off f =
    San_obs.Obs.set_enabled false;
    Fun.protect ~finally:(fun () -> San_obs.Obs.set_enabled true) (fun () -> best f)
  in
  let on f =
    San_telemetry.Fabric_stats.install fabric;
    Fun.protect
      ~finally:(fun () -> San_telemetry.Fabric_stats.uninstall ())
      (fun () ->
        best (fun () ->
            San_telemetry.Fabric_stats.clear fabric;
            f ()))
  in
  let map_off = off map_once in
  let map_on = on map_once in
  let daemon_off = off daemon_once in
  let daemon_on = on daemon_once in
  let pct a b = if a <= 0.0 then 0.0 else 100.0 *. ((b /. a) -. 1.0) in
  let t =
    T.create
      ~header:[ "workload"; "telemetry off"; "on + fabric"; "overhead" ]
  in
  T.add_row t
    [
      "map C+A+B";
      Printf.sprintf "%.1f ms" (map_off *. 1e3);
      Printf.sprintf "%.1f ms" (map_on *. 1e3);
      Printf.sprintf "%+.1f%%" (pct map_off map_on);
    ];
  T.add_row t
    [
      Printf.sprintf "daemon epoch (of %d)" daemon_epochs;
      Printf.sprintf "%.1f ms" (daemon_off /. float_of_int daemon_epochs *. 1e3);
      Printf.sprintf "%.1f ms" (daemon_on /. float_of_int daemon_epochs *. 1e3);
      Printf.sprintf "%+.1f%%" (pct daemon_off daemon_on);
    ];
  T.print
    ~title:
      (Printf.sprintf
         "Telemetry overhead — full run with observability disabled vs \
          enabled with a fabric table installed (best of %d)"
         n)
    t;
  obs_sections :=
    ( "telemetry_overhead",
      J.Obj
        [
          ("map_off_s", J.Num map_off);
          ("map_on_s", J.Num map_on);
          ("map_overhead_pct", J.Num (pct map_off map_on));
          ("daemon_off_s", J.Num daemon_off);
          ("daemon_on_s", J.Num daemon_on);
          ("daemon_overhead_pct", J.Num (pct daemon_off daemon_on));
        ] )
    :: !obs_sections

(* ------------------------------------------------------------------ *)
(* Provenance-ledger overhead: what does recording every deduction      *)
(* cost the mapper?  Budget: within 10% of the ledger-off run.          *)

let why_section () =
  let module J = San_util.Json in
  let g, _ = Generators.now_cab () in
  let mapper = mapper_of g "C-util" in
  let n = if !fast then 5 else 9 in
  let probes = ref 0 in
  let map_once () =
    let net = Network.create g in
    let r = Berkeley.run net ~mapper in
    probes := Berkeley.total_probes r
  in
  let with_why f =
    San_why.Why.reset ();
    San_why.Why.set_enabled true;
    Fun.protect ~finally:(fun () -> San_why.Why.set_enabled false) f
  in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  (* One warm-up per side, then the two configurations interleaved
     pairwise: slow drifts in machine load hit both sides equally, and
     best-of filters the spikes. *)
  map_once ();
  with_why map_once;
  let off = ref infinity and on = ref infinity in
  for _ = 1 to n do
    off := Float.min !off (time map_once);
    on := Float.min !on (with_why (fun () -> time map_once))
  done;
  let off = !off and on = !on in
  let entries =
    San_why.Why.set_enabled true;
    Fun.protect
      ~finally:(fun () -> San_why.Why.set_enabled false)
      (fun () ->
        map_once ();
        San_why.Why.size (San_why.Why.capture ()))
  in
  let pct = if off <= 0.0 then 0.0 else 100.0 *. ((on /. off) -. 1.0) in
  let rate t = float_of_int !probes /. t in
  let t = T.create ~header:[ "ledger"; "wall"; "probes/s"; "entries" ] in
  T.add_row t
    [ "off"; Printf.sprintf "%.1f ms" (off *. 1e3);
      Printf.sprintf "%.0f" (rate off); "-" ];
  T.add_row t
    [ "on"; Printf.sprintf "%.1f ms" (on *. 1e3);
      Printf.sprintf "%.0f" (rate on); string_of_int entries ];
  T.print
    ~title:
      (Printf.sprintf
         "Provenance-ledger overhead — map C+A+B with San_why off vs on \
          (best of %d): %+.1f%% (budget: within 10%%)"
         n pct)
    t;
  obs_sections :=
    ( "why_overhead",
      J.Obj
        [
          ("map_off_s", J.Num off);
          ("map_on_s", J.Num on);
          ("overhead_pct", J.Num pct);
          ("ledger_entries", J.Num (float_of_int entries));
          ("probes", J.Num (float_of_int !probes));
        ] )
    :: !obs_sections

(* ------------------------------------------------------------------ *)
(* Scaling to data-center fabrics: the San_fabric fat-tree ladder,      *)
(* 100 -> 1k -> 10k hosts (100k behind --scale-100k), each rung mapped  *)
(* at the generator's suggested depth and verified against N - F. The   *)
(* 100-host rung doubles as a perf regression gate against the recorded *)
(* baseline in bench/scaling_baseline.json.                             *)

let scale_100k = ref false
let scaling_baseline = "bench/scaling_baseline.json"

let scaling_section () =
  let module J = San_util.Json in
  let module Fabric = San_fabric.Fabric in
  let rungs =
    [ "ft-100"; "ft-1k" ]
    @ (if !fast then [] else [ "ft-10k" ])
    @ if !scale_100k then [ "ft-100k" ] else []
  in
  let t =
    T.create
      ~header:
        [ "fabric"; "hosts"; "links"; "depth"; "probes"; "wall (s)";
          "probes/s"; "merges/s"; "verified" ]
  in
  let entries = ref [] in
  List.iter
    (fun name ->
      let p = Option.get (Fabric.find_preset name) in
      let g = p.Fabric.p_build ~seed:1 in
      let mapper = List.hd (Graph.hosts g) in
      let depth = Option.get p.Fabric.p_depth in
      let run_once () =
        San_obs.Obs.reset ();
        let t0 = Unix.gettimeofday () in
        let net = Network.create g in
        let r = Berkeley.run ~depth:(Berkeley.Fixed depth) net ~mapper in
        let wall = Unix.gettimeofday () -. t0 in
        let merges =
          San_obs.Metrics.counter_value
            (San_obs.Metrics.counter San_obs.Obs.registry "mapper.merges")
        in
        (wall, r, merges)
      in
      (* The small rungs finish in milliseconds, where a scheduler
         hiccup swamps the rate; best-of keeps the gate honest. *)
      let reps = if Graph.num_hosts g <= 1000 then 5 else 1 in
      let best = ref (run_once ()) in
      for _ = 2 to reps do
        let (w, _, _) as m = run_once () in
        let bw, _, _ = !best in
        if w < bw then best := m
      done;
      let wall, r, merges = !best in
      let probes = Berkeley.total_probes r in
      let verified =
        match r.Berkeley.map with
        | Error _ -> false
        | Ok map ->
          Result.is_ok
            (Iso.check ~map ~actual:g ~exclude:(Core_set.separated_set g) ())
      in
      if not verified then gate_failed := true;
      let pps = float_of_int probes /. wall in
      let mps = float_of_int merges /. wall in
      T.add_row t
        [ name; string_of_int (Graph.num_hosts g);
          string_of_int (Graph.num_wires g); string_of_int depth;
          string_of_int probes; Printf.sprintf "%.2f" wall;
          Printf.sprintf "%.0f" pps; Printf.sprintf "%.0f" mps;
          (if verified then "yes" else "NO") ];
      entries :=
        ( name,
          J.Obj
            [
              ("hosts", J.int (Graph.num_hosts g));
              ("switches", J.int (Graph.num_switches g));
              ("links", J.int (Graph.num_wires g));
              ("depth", J.int depth);
              ("probes", J.int probes);
              ("merges", J.int merges);
              ("wall_s", J.Num wall);
              ("probes_per_s", J.Num pps);
              ("merges_per_s", J.Num mps);
              ("verified", J.Bool verified);
            ] )
        :: !entries)
    rungs;
  T.print
    ~title:
      "Scaling — San_fabric fat-tree ladder, seed 1, suggested depth \
       (verified = map isomorphic to N - F)"
    t;
  write_csv "scaling"
    [ "fabric"; "hosts"; "probes"; "wall_s"; "probes_per_s"; "merges_per_s" ]
    (List.rev_map
       (fun (name, j) ->
         let num k =
           match J.member k j with
           | Some (J.Num f) -> Printf.sprintf "%.1f" f
           | _ -> ""
         in
         [ name; num "hosts"; num "probes"; num "wall_s"; num "probes_per_s";
           num "merges_per_s" ])
       !entries);
  (* Regression gate: the 100-host rung's probe rate must stay within
     4x of the recorded baseline — generous enough for machine-to-
     machine variance, tight enough to catch a complexity slip. *)
  (let current =
     match List.assoc_opt "ft-100" !entries with
     | Some j -> (
       match J.member "probes_per_s" j with Some (J.Num f) -> Some f | _ -> None)
     | None -> None
   in
   let baseline =
     if Sys.file_exists scaling_baseline then begin
       let ic = open_in scaling_baseline in
       let s = really_input_string ic (in_channel_length ic) in
       close_in ic;
       match J.of_string s with
       | Ok j -> (
         match Option.bind (J.member "ft-100" j) (J.member "probes_per_s") with
         | Some (J.Num f) -> Some f
         | _ -> None)
       | Error _ -> None
     end
     else None
   in
   match (current, baseline) with
   | Some cur, Some base ->
     if cur < base /. 4.0 then begin
       Printf.printf
         "scaling gate FAILED: ft-100 at %.0f probes/s, under a quarter of \
          the %.0f probes/s baseline\n"
         cur base;
       gate_failed := true
     end
     else
       Printf.printf "scaling gate ok: ft-100 at %.0f probes/s (baseline %.0f)\n"
         cur base
   | Some _, None ->
     Printf.printf "(no baseline at %s; scaling gate skipped)\n"
       scaling_baseline
   | None, _ -> ());
  obs_sections := ("scaling", J.Obj (List.rev !entries)) :: !obs_sections

(* ------------------------------------------------------------------ *)
(* Sharded mapping at scale: San_shard's 4 concurrent mappers against   *)
(* the solo mapper on the big rungs. The wall is the slowest shard plus *)
(* the conflict-resolving merge; both clocks are simulated, so the      *)
(* ratio is deterministic and gated hard: the merged map must verify    *)
(* and the sharded wall must stay under half the solo wall.             *)

let scaling_shard_section () =
  let module J = San_util.Json in
  let module Fabric = San_fabric.Fabric in
  let shards = 4 in
  let rungs = "ft-1k" :: (if !fast then [] else [ "ft-10k" ]) in
  let t =
    T.create
      ~header:
        [ "fabric"; "shards"; "solo probes"; "shard probes"; "probe ratio";
          "solo sim (s)"; "shard sim (s)"; "wall ratio"; "verified" ]
  in
  let entries = ref [] in
  List.iter
    (fun name ->
      let p = Option.get (Fabric.find_preset name) in
      let g = p.Fabric.p_build ~seed:1 in
      let mapper = List.hd (Graph.hosts g) in
      let depth = Option.get p.Fabric.p_depth in
      let net = Network.create g in
      let solo = Berkeley.run ~depth:(Berkeley.Fixed depth) net ~mapper in
      let solo_probes = Berkeley.total_probes solo in
      let solo_ns = solo.Berkeley.elapsed_ns in
      match San_shard.Runner.run ~seed:1 ~root:mapper g ~shards with
      | Error e ->
        Printf.printf "scaling-shard %s: plan failed: %s\n" name e;
        gate_failed := true
      | Ok r ->
        let exclude = Core_set.separated_set g in
        let iso m = Result.is_ok (Iso.check ~map:m ~actual:g ~exclude ()) in
        let verified =
          (match solo.Berkeley.map with Ok m -> iso m | Error _ -> false)
          && (match r.San_shard.Runner.map with
             | Ok m -> iso m
             | Error _ -> false)
          && r.San_shard.Runner.dropped_views = []
        in
        let ratio = r.San_shard.Runner.wall_ns /. solo_ns in
        let probe_ratio =
          float_of_int r.San_shard.Runner.total_probes
          /. float_of_int solo_probes
        in
        if (not verified) || ratio >= 0.5 then gate_failed := true;
        T.add_row t
          [ name; string_of_int shards; string_of_int solo_probes;
            string_of_int r.San_shard.Runner.total_probes;
            Printf.sprintf "%.2f" probe_ratio;
            Printf.sprintf "%.2f" (solo_ns /. 1e9);
            Printf.sprintf "%.2f" (r.San_shard.Runner.wall_ns /. 1e9);
            Printf.sprintf "%.2f" ratio;
            (if verified then "yes" else "NO") ];
        entries :=
          ( name,
            J.Obj
              [
                ("hosts", J.int (Graph.num_hosts g));
                ("shards", J.int shards);
                ("solo_probes", J.int solo_probes);
                ("shard_probes", J.int r.San_shard.Runner.total_probes);
                ("probe_ratio", J.Num probe_ratio);
                ("solo_sim_ms", J.Num (solo_ns /. 1e6));
                ("shard_sim_ms", J.Num (r.San_shard.Runner.wall_ns /. 1e6));
                ("merge_ms", J.Num (r.San_shard.Runner.merge_ns /. 1e6));
                ("sim_wall_ratio", J.Num ratio);
                ("overlap", J.Num r.San_shard.Runner.plan.San_shard.Region.overlap);
                ("verified", J.Bool verified);
              ] )
          :: !entries)
    rungs;
  T.print
    ~title:
      (Printf.sprintf
         "Scaling, sharded — %d concurrent mappers vs solo, seed 1 \
          (simulated wall = slowest shard + merge; gate: verified and \
          ratio < 0.5)"
         shards)
    t;
  (* Drift check against the recorded shard rung: the simulation is
     deterministic, so any movement is a code change, not noise. *)
  (match List.assoc_opt "ft-1k" !entries with
   | Some j -> (
     let cur =
       match J.member "sim_wall_ratio" j with Some (J.Num f) -> Some f | _ -> None
     in
     let base =
       if Sys.file_exists scaling_baseline then begin
         let ic = open_in scaling_baseline in
         let s = really_input_string ic (in_channel_length ic) in
         close_in ic;
         match J.of_string s with
         | Ok j -> (
           match
             Option.bind (J.member "ft-1k-shard4" j) (J.member "sim_wall_ratio")
           with
           | Some (J.Num f) -> Some f
           | _ -> None)
         | Error _ -> None
       end
       else None
     in
     match (cur, base) with
     | Some c, Some b ->
       if c > b *. 1.25 then begin
         Printf.printf
           "scaling-shard gate FAILED: ft-1k sim wall ratio %.3f drifted over \
            1.25x the %.3f baseline\n"
           c b;
         gate_failed := true
       end
       else
         Printf.printf "scaling-shard gate ok: ft-1k ratio %.3f (baseline %.3f)\n"
           c b
     | Some _, None ->
       Printf.printf "(no ft-1k-shard4 baseline at %s; drift check skipped)\n"
         scaling_baseline
     | None, _ -> ())
   | None -> ());
  obs_sections := ("scaling-shard", J.Obj (List.rev !entries)) :: !obs_sections

(* ------------------------------------------------------------------ *)
(* Route serving: the per-destination DAG plane at fabric scale. Rate   *)
(* is gated against bench/serving_baseline.json like the scaling        *)
(* section; the served sample must stay deadlock-free; ft-10k proves    *)
(* the bounded-cache memory claim (no all-pairs matrix: heap growth is  *)
(* recorded and must stay orders of magnitude under hosts^2 entries).   *)

let serving_baseline = "bench/serving_baseline.json"

let serving_section () =
  let module J = San_util.Json in
  let module Fabric = San_fabric.Fabric in
  let module Serve = San_routing.Serve in
  let entries = ref [] in
  let t =
    T.create
      ~header:
        [ "fabric"; "hosts"; "dsts"; "queries"; "compile (s)"; "Mlookups/s";
          "resident"; "packed/naive"; "heap +MB"; "deadlock-free" ]
  in
  let rungs =
    [ ("ft-100", 24, 200_000); ("ft-1k", 32, 400_000) ]
    @ if !fast then [] else [ ("ft-10k", 32, 400_000) ]
  in
  List.iter
    (fun (name, ndst, queries) ->
      let p = Option.get (Fabric.find_preset name) in
      let g = p.Fabric.p_build ~seed:1 in
      Gc.compact ();
      let heap0 = (Gc.quick_stat ()).Gc.top_heap_words in
      let serve = Serve.create ~cache_limit:64 g in
      let hosts = Array.of_list (Graph.hosts g) in
      let nh = Array.length hosts in
      let rng = San_util.Prng.create 1 in
      let shuffled = Array.copy hosts in
      San_util.Prng.shuffle rng shuffled;
      let dst_set = Array.sub shuffled 0 (min ndst nh) in
      let t0 = Unix.gettimeofday () in
      Array.iter (fun dst -> Serve.warm serve ~dst) dst_set;
      let compile_s = Unix.gettimeofday () -. t0 in
      let q =
        Array.init queries (fun _ ->
            let dst = dst_set.(San_util.Prng.int rng (Array.length dst_set)) in
            let rec src () =
              let s = hosts.(San_util.Prng.int rng nh) in
              if s = dst then src () else s
            in
            (src (), dst))
      in
      let buf = Array.make (Graph.num_nodes g + 1) 0 in
      (* a batch finishes in tens of ms, where one scheduler hiccup
         swamps the rate; best-of keeps the gate honest *)
      let best = ref infinity in
      for _ = 1 to 5 do
        let t1 = Unix.gettimeofday () in
        ignore (Serve.batch serve q ~buf);
        let dt = Unix.gettimeofday () -. t1 in
        if dt < !best then best := dt
      done;
      let rate = float_of_int queries /. !best in
      let heap_mb =
        float_of_int ((Gc.quick_stat ()).Gc.top_heap_words - heap0)
        *. float_of_int (Sys.word_size / 8)
        /. 1e6
      in
      (* served sample stays deadlock-free: every warmed destination,
         sources capped so ft-10k stays a bench and not a soak *)
      let src_cap = min nh 100 in
      let served = ref [] in
      Array.iter
        (fun dst ->
          for i = 0 to src_cap - 1 do
            let src = hosts.(i) in
            if src <> dst then
              match Serve.lookup serve ~src ~dst with
              | Some turns -> served := (src, turns) :: !served
              | None -> ()
          done)
        dst_set;
      let deadlock_free =
        match San_routing.Deadlock.check_acyclic g !served with
        | Ok () -> true
        | Error e ->
          Printf.printf "serving %s: deadlock check FAILED: %s\n" name e;
          gate_failed := true;
          false
      in
      let st = Serve.stats serve in
      let packed_ratio =
        float_of_int st.Serve.packed_bytes /. float_of_int st.Serve.naive_bytes
      in
      T.add_row t
        [ name; string_of_int nh; string_of_int (Array.length dst_set);
          string_of_int queries; Printf.sprintf "%.3f" compile_s;
          Printf.sprintf "%.2f" (rate /. 1e6);
          string_of_int st.Serve.resident;
          Printf.sprintf "%.0f%%" (100.0 *. packed_ratio);
          Printf.sprintf "%.1f" heap_mb;
          (if deadlock_free then "yes" else "NO") ];
      entries :=
        ( name,
          J.Obj
            [
              ("hosts", J.int nh);
              ("destinations", J.int (Array.length dst_set));
              ("queries", J.int queries);
              ("compile_s", J.Num compile_s);
              ("lookups_per_s", J.Num rate);
              ("resident_tables", J.int st.Serve.resident);
              ("pool_cells", J.int st.Serve.pool_cells);
              ("packed_bytes", J.int st.Serve.packed_bytes);
              ("naive_bytes", J.int st.Serve.naive_bytes);
              ("heap_growth_mb", J.Num heap_mb);
              ("deadlock_free", J.Bool deadlock_free);
            ] )
        :: !entries)
    rungs;
  T.print
    ~title:
      "Route serving — per-destination DAG tables, bounded cache (64), \
       shared-suffix pool (heap +MB: growth over the bare graph; an \
       all-pairs matrix would need hosts^2 entries)"
    t;
  write_csv "serving"
    [ "fabric"; "hosts"; "queries"; "lookups_per_s"; "heap_growth_mb" ]
    (List.rev_map
       (fun (name, j) ->
         let num k =
           match J.member k j with
           | Some (J.Num f) -> Printf.sprintf "%.1f" f
           | _ -> ""
         in
         [ name; num "hosts"; num "queries"; num "lookups_per_s";
           num "heap_growth_mb" ])
       !entries);
  (* Regression gate, scaling-style: ft-1k must serve at least a
     quarter of the recorded baseline rate. *)
  (let current =
     match List.assoc_opt "ft-1k" !entries with
     | Some j -> (
       match J.member "lookups_per_s" j with Some (J.Num f) -> Some f | _ -> None)
     | None -> None
   in
   let baseline =
     if Sys.file_exists serving_baseline then begin
       let ic = open_in serving_baseline in
       let s = really_input_string ic (in_channel_length ic) in
       close_in ic;
       match J.of_string s with
       | Ok j -> (
         match Option.bind (J.member "ft-1k" j) (J.member "lookups_per_s") with
         | Some (J.Num f) -> Some f
         | _ -> None)
       | Error _ -> None
     end
     else None
   in
   match (current, baseline) with
   | Some cur, Some base ->
     if cur < base /. 4.0 then begin
       Printf.printf
         "serving gate FAILED: ft-1k at %.2fM lookups/s, under a quarter of \
          the %.2fM baseline\n"
         (cur /. 1e6) (base /. 1e6);
       gate_failed := true
     end
     else
       Printf.printf
         "serving gate ok: ft-1k at %.2fM lookups/s (baseline %.2fM)\n"
         (cur /. 1e6) (base /. 1e6)
   | Some _, None ->
     Printf.printf "(no baseline at %s; serving gate skipped)\n"
       serving_baseline
   | None, _ -> ());
  (* Traffic awareness: a hotspot storm heats a few links; recomputing
     the table with the measured heat (and drop cost) steering
     equal-cost choices should pull the p99 per-link slot occupancy
     down on the re-run of the very same storm. *)
  let g = (Option.get (Fabric.find_preset "ft-100")).Fabric.p_build ~seed:1 in
  let storm table =
    let stats = San_telemetry.Fabric_stats.create () in
    San_telemetry.Fabric_stats.install stats;
    let rep =
      San_slo.Load.drive ~rng:(San_util.Prng.create 42)
        (San_slo.Load.spec ~pattern:San_slo.Load.Hotspot 4.0)
        ~table g
    in
    San_telemetry.Fabric_stats.uninstall ();
    (stats, rep)
  in
  let occupied_p99 stats =
    San_util.Summary.percentile
      (List.map
         (fun l -> l.San_telemetry.Fabric_stats.l_occupied_ns)
         (San_telemetry.Fabric_stats.links stats g))
      0.99
  in
  let baseline_table = San_routing.Routes.compute g in
  let s_before, rep = storm baseline_table in
  let p99_before = occupied_p99 s_before in
  let drop_ns = San_slo.Digest.quantile rep.San_slo.Load.r_latency 0.5 in
  let prefer u v =
    List.fold_left
      (fun acc (port, (w, _)) ->
        if w <> v then acc
        else
          let pst =
            match San_telemetry.Fabric_stats.port_stat s_before (u, port) with
            | None -> 0.0
            | Some s ->
              s.San_telemetry.Fabric_stats.occupied_ns
              +. s.San_telemetry.Fabric_stats.blocked_ns
              +. (float_of_int s.San_telemetry.Fabric_stats.drops *. drop_ns)
          in
          Float.min acc pst)
      infinity (Graph.wired_ports g u)
  in
  let aware_table = San_routing.Routes.compute ~prefer g in
  let s_after, _ = storm aware_table in
  let p99_after = occupied_p99 s_after in
  let drop_pct =
    if p99_before > 0.0 then 100.0 *. (1.0 -. (p99_after /. p99_before))
    else 0.0
  in
  Printf.printf
    "traffic-aware serving (ft-100, hotspot storm): p99 link occupancy \
     %.0f -> %.0f ns (%.1f%% drop)\n"
    p99_before p99_after drop_pct;
  entries :=
    ( "traffic_storm",
      J.Obj
        [
          ("p99_occupied_ns_static", J.Num p99_before);
          ("p99_occupied_ns_aware", J.Num p99_after);
          ("drop_pct", J.Num drop_pct);
          ( "loss_per_crossing",
            J.Num rep.San_slo.Load.r_loss_per_crossing );
        ] )
    :: !entries;
  obs_sections := ("serving", J.Obj (List.rev !entries)) :: !obs_sections

(* ------------------------------------------------------------------ *)
(* Accuracy vs budget: San_cover budgeted partial mapping on the        *)
(* fat-tree rungs. One full reference run per rung is shared by every   *)
(* budget; each budgeted run must pass the subgraph embedding check     *)
(* (hard gate), and the recovered fractions / mean confidence are       *)
(* gated against bench/coverage_baseline.json. Directed (Goldstein)     *)
(* sub-runs on ft-100 record in the notes how wire orientation          *)
(* degrades probe complexity.                                           *)

let coverage_baseline = "bench/coverage_baseline.json"

let coverage_section () =
  let module J = San_util.Json in
  let module Fabric = San_fabric.Fabric in
  let module Cover = San_cover.Cover in
  let rungs = "ft-100" :: (if !fast then [] else [ "ft-1k" ]) in
  let budgets = [ 0.1; 0.3; 0.6 ] in
  let fr n d = if d <= 0 then 0.0 else float_of_int n /. float_of_int d in
  let t =
    T.create
      ~header:
        [ "fabric"; "budget"; "probes"; "switches"; "links"; "hosts";
          "mean conf"; "frontier"; "subgraph" ]
  in
  let entries = ref [] in
  let notes = ref [] in
  (* (fabric, budget key, switch/link/host fracs, mean conf) for the
     baseline gate. *)
  let gatevals = ref [] in
  List.iter
    (fun name ->
      let p = Option.get (Fabric.find_preset name) in
      let g = p.Fabric.p_build ~seed:1 in
      let mapper = List.hd (Graph.hosts g) in
      let depth = Berkeley.Fixed (Option.get p.Fabric.p_depth) in
      let net = Network.create g in
      let reference = Berkeley.run ~depth net ~mapper in
      let budget_entries = ref [] in
      List.iter
        (fun f ->
          match
            Cover.run ~depth ~record_trace:false ~reference
              ~budget:(Cover.Frac f) net ~mapper
          with
          | Error e ->
            Printf.printf "coverage %s @ %g FAILED: %s\n" name f e;
            gate_failed := true
          | Ok rep ->
            let ok = Result.is_ok rep.Cover.r_subgraph in
            if not ok then gate_failed := true;
            let sf = fr rep.Cover.r_recovered_switches rep.Cover.r_full_switches
            and lf = fr rep.Cover.r_recovered_links rep.Cover.r_full_links
            and hf = fr rep.Cover.r_recovered_hosts rep.Cover.r_full_hosts in
            let bkey = Printf.sprintf "b%g" f in
            gatevals := (name, bkey, sf, lf, hf, rep.Cover.r_mean_conf)
              :: !gatevals;
            T.add_row t
              [ name; Printf.sprintf "%g" f;
                Printf.sprintf "%d/%d" rep.Cover.r_probes_used
                  rep.Cover.r_full_probes;
                Printf.sprintf "%d/%d" rep.Cover.r_recovered_switches
                  rep.Cover.r_full_switches;
                Printf.sprintf "%d/%d" rep.Cover.r_recovered_links
                  rep.Cover.r_full_links;
                Printf.sprintf "%d/%d" rep.Cover.r_recovered_hosts
                  rep.Cover.r_full_hosts;
                Printf.sprintf "%.3f" rep.Cover.r_mean_conf;
                string_of_int rep.Cover.r_frontier;
                (if ok then "ok" else "FAILED") ];
            budget_entries :=
              ( bkey,
                J.Obj
                  [
                    ("probe_limit", J.int rep.Cover.r_probe_limit);
                    ("probes_used", J.int rep.Cover.r_probes_used);
                    ("switch_frac", J.Num sf);
                    ("link_frac", J.Num lf);
                    ("host_frac", J.Num hf);
                    ("mean_conf", J.Num rep.Cover.r_mean_conf);
                    ("frontier", J.int rep.Cover.r_frontier);
                    ("est_links", J.Num rep.Cover.r_est_links);
                    ("subgraph", J.Bool ok);
                  ] )
              :: !budget_entries)
        budgets;
      (* The Goldstein directed-fabric variant: orient every
         switch-switch wire, silence probes that walk against the
         orientation, and measure the probe-complexity degradation at
         the same budgets. The reference stays undirected so the
         fractions are comparable. *)
      if name = "ft-100" then
        List.iter
          (fun f ->
            let d = San_cover.Directed.create ~seed:1 g in
            match
              Cover.run ~depth ~record_trace:false ~reference ~directed:d
                ~budget:(Cover.Frac f) net ~mapper
            with
            | Error e ->
              Printf.printf "coverage directed %s @ %g FAILED: %s\n" name f e;
              gate_failed := true
            | Ok rep ->
              if Result.is_error rep.Cover.r_subgraph then gate_failed := true;
              let note =
                Printf.sprintf
                  "directed (Goldstein) %s @ %g: %d/%d probes spent, %d \
                   blocked by orientation; recovered %d/%d switches, %d/%d \
                   links (undirected recovered %s)"
                  name f rep.Cover.r_probes_used rep.Cover.r_probe_limit
                  rep.Cover.r_blocked rep.Cover.r_recovered_switches
                  rep.Cover.r_full_switches rep.Cover.r_recovered_links
                  rep.Cover.r_full_links
                  (match
                     List.find_opt
                       (fun (n, b, _, _, _, _) ->
                         n = name && b = Printf.sprintf "b%g" f)
                       !gatevals
                   with
                  | Some (_, _, sf, lf, _, _) ->
                    Printf.sprintf "%.0f%%/%.0f%% switch/link" (100. *. sf)
                      (100. *. lf)
                  (* at full budget the undirected run IS the reference *)
                  | None -> "100%/100% switch/link")
              in
              notes := note :: !notes;
              budget_entries :=
                ( Printf.sprintf "directed_b%g" f,
                  J.Obj
                    [
                      ("probes_used", J.int rep.Cover.r_probes_used);
                      ("blocked", J.int rep.Cover.r_blocked);
                      ( "switch_frac",
                        J.Num
                          (fr rep.Cover.r_recovered_switches
                             rep.Cover.r_full_switches) );
                      ( "link_frac",
                        J.Num
                          (fr rep.Cover.r_recovered_links
                             rep.Cover.r_full_links) );
                      ( "subgraph",
                        J.Bool (Result.is_ok rep.Cover.r_subgraph) );
                    ] )
                :: !budget_entries)
          [ 0.3; 1.0 ];
      entries := (name, J.Obj (List.rev !budget_entries)) :: !entries)
    rungs;
  T.print
    ~title:
      "Coverage — accuracy vs probe budget (San_cover, seed 1; every \
       partial map verified to embed in N - F)"
    t;
  List.iter (fun n -> Printf.printf "note: %s\n" n) (List.rev !notes);
  write_csv "coverage"
    [ "fabric"; "budget"; "switch_frac"; "link_frac"; "host_frac";
      "mean_conf" ]
    (List.rev_map
       (fun (name, bkey, sf, lf, hf, mc) ->
         [ name; bkey; Printf.sprintf "%.3f" sf; Printf.sprintf "%.3f" lf;
           Printf.sprintf "%.3f" hf; Printf.sprintf "%.3f" mc ])
       !gatevals);
  (* Regression gate: every recovered fraction must stay within 0.05,
     and the mean confidence within 0.1, of the checked-in baseline.
     The runs are seeded and the simulation deterministic, so drift
     means the mapper, the budget gate or the scoring model changed. *)
  (let baseline =
     if Sys.file_exists coverage_baseline then begin
       let ic = open_in coverage_baseline in
       let s = really_input_string ic (in_channel_length ic) in
       close_in ic;
       match J.of_string s with Ok j -> Some j | Error _ -> None
     end
     else None
   in
   match baseline with
   | None ->
     Printf.printf "(no baseline at %s; coverage gate skipped)\n"
       coverage_baseline
   | Some base ->
     let checked = ref 0 and bad = ref 0 in
     List.iter
       (fun (name, bkey, sf, lf, hf, mc) ->
         match Option.bind (J.member name base) (J.member bkey) with
         | None -> ()
         | Some b ->
           let num k =
             match J.member k b with Some (J.Num v) -> Some v | _ -> None
           in
           let off what tol cur =
             match num what with
             | Some v when Float.abs (cur -. v) > tol ->
               Printf.printf
                 "coverage gate FAILED: %s %s %s %.3f drifted from baseline \
                  %.3f\n"
                 name bkey what cur v;
               bad := !bad + 1
             | _ -> ()
           in
           checked := !checked + 1;
           off "switch_frac" 0.05 sf;
           off "link_frac" 0.05 lf;
           off "host_frac" 0.05 hf;
           off "mean_conf" 0.1 mc)
       !gatevals;
     if !bad > 0 then gate_failed := true
     else
       Printf.printf "coverage gate ok: %d fabric/budget points within the \
                      baseline bands\n"
         !checked);
  obs_sections := ("coverage", J.Obj (List.rev !entries)) :: !obs_sections

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment              *)

let bechamel_section () =
  let open Bechamel in
  let gc = fst (Generators.now_c ()) in
  let gcab = fst (Generators.now_cab ()) in
  let map_cab =
    let net = Network.create gcab in
    Result.get_ok
      (Berkeley.run net ~mapper:(mapper_of gcab "C-util")).Berkeley.map
  in
  let long_route =
    (* A representative NOW-scale route for the worm evaluator. *)
    let table = San_routing.Routes.compute map_cab in
    match
      List.sort
        (fun (_, _, a) (_, _, b) -> compare (List.length b) (List.length a))
        (San_routing.Routes.all table)
    with
    | (src, _, r) :: _ -> (src, r)
    | [] -> assert false
  in
  let tests =
    [
      Test.make ~name:"fig4:map-subcluster-C"
        (Staged.stage (fun () ->
             let net = Network.create gc in
             Berkeley.run net ~mapper:(mapper_of gc "C-util")));
      Test.make ~name:"fig5:map-now-100"
        (Staged.stage (fun () ->
             let net = Network.create gcab in
             Berkeley.run net ~mapper:(mapper_of gcab "C-util")));
      Test.make ~name:"fig7:election-now"
        (Staged.stage (fun () ->
             let net = Network.create gcab in
             Election.run ~rng:(San_util.Prng.create 3) net));
      Test.make ~name:"fig10:myricom-C"
        (Staged.stage (fun () ->
             San_myricom.Myricom.run gc ~mapper:(mapper_of gc "C-util")));
      Test.make ~name:"sec5.5:updown-routes-now"
        (Staged.stage (fun () -> San_routing.Routes.compute map_cab));
      Test.make ~name:"sec5.5:deadlock-check-now"
        (let table = San_routing.Routes.compute map_cab in
         Staged.stage (fun () -> San_routing.Deadlock.check_routes table));
      Test.make ~name:"substrate:worm-eval-longest-route"
        (Staged.stage (fun () ->
             let src, r = long_route in
             Worm.eval map_cab ~src ~turns:r));
      Test.make ~name:"substrate:q-bound-now"
        (Staged.stage (fun () ->
             Core_set.q_bound gcab ~root:(mapper_of gcab "C-util")));
    ]
  in
  let grouped = Test.make_grouped ~name:"san" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200
      ~quota:(Time.second (if !fast then 0.1 else 0.4))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let t = T.create ~header:[ "benchmark"; "wall time per run"; "r²" ] in
  let rows = ref [] in
  Hashtbl.iter
    (fun name res ->
      let est =
        match Analyze.OLS.estimates res with
        | Some [ e ] -> e
        | _ -> nan
      in
      let human =
        if Float.is_nan est then "-"
        else if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
        else Printf.sprintf "%.0f ns" est
      in
      let r2 =
        match Analyze.OLS.r_square res with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"
      in
      rows := (name, human, r2) :: !rows)
    results;
  List.iter
    (fun (n, h, r2) -> T.add_row t [ n; h; r2 ])
    (List.sort compare !rows);
  T.print ~title:"Bechamel — real CPU cost of each experiment's core operation" t

(* ------------------------------------------------------------------ *)

let () =
  let rec parse = function
    | [] -> ()
    | "--runs" :: n :: rest ->
      runs := int_of_string n;
      parse rest
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--no-bechamel" :: rest ->
      with_bechamel := false;
      parse rest
    | "--scale-100k" :: rest ->
      scale_100k := true;
      parse rest
    | "--only" :: l :: rest ->
      only := String.split_on_char ',' l;
      parse rest
    | "--csv" :: dir :: rest ->
      csv_dir := Some dir;
      parse rest
    | x :: _ -> failwith ("unknown argument " ^ x)
  in
  parse (List.tl (Array.to_list Sys.argv));
  print_endline "System Area Network Mapping (SPAA'97) — reproduction harness";
  print_endline "paper values printed alongside; absolute times come from the";
  print_endline "calibrated simulation, shapes are the reproduction target.";
  San_obs.Obs.set_enabled true;
  section "fig3" ~when_:(wants "fig3") fig3;
  section "fig45" ~when_:(wants "fig45") fig45;
  section "fig6" ~when_:(wants "fig6") fig6;
  section "fig7" ~when_:(wants "fig7") fig7;
  section "fig8" ~when_:(wants "fig8") fig8;
  section "fig9" ~when_:(wants "fig9") fig9;
  section "fig10" ~when_:(wants "fig10") fig10;
  section "routes" ~when_:(wants "routes") routes_section;
  section "ablation"
    ~when_:(wants "ablation" || !only = [])
    (fun () ->
      ablation_policy ();
      ablation_model ();
      ablation_depth ();
      ablation_myricom_window ();
      ablation_updown_root ());
  section "eventsim" ~when_:(wants "eventsim" || !only = []) eventsim_section;
  section "extensions"
    ~when_:(wants "extensions" || !only = [])
    (fun () ->
      ext_simplified ();
      ext_randomized ();
      ext_parallel ();
      ext_incremental ();
      ext_online ();
      ext_cross_traffic ();
      ext_selfid ();
      ext_emergent_election ());
  section "sensitivity" ~when_:(wants "sensitivity" || !only = []) sensitivity;
  section "daemon" ~when_:(wants "daemon") daemon_section;
  (* load_matrix pushes its own structured obs entry (per-cell digests
     and percentiles), so it runs outside the generic wrapper. *)
  if wants "load_matrix" then load_matrix_section ();
  section "fuzz" ~when_:(wants "fuzz") fuzz_section;
  section "telemetry" ~when_:(wants "telemetry" || !only = []) telemetry_section;
  section "why" ~when_:(wants "why" || !only = []) why_section;
  (* scaling pushes its own structured obs entry (per-rung curves),
     so it runs outside the generic [section] wrapper. *)
  if wants "scaling" then scaling_section ();
  if wants "scaling-shard" then scaling_shard_section ();
  (* serving pushes its own structured obs entry (per-rung rates and
     the traffic-storm comparison), so it runs outside the wrapper. *)
  if wants "serving" then serving_section ();
  (* coverage pushes its own structured obs entry (per-budget accuracy
     curves and directed sub-runs), so it runs outside the wrapper. *)
  if wants "coverage" then coverage_section ();
  section "bechamel"
    ~when_:(!with_bechamel && (wants "bechamel" || !only = []))
    bechamel_section;
  write_obs ();
  if !gate_failed then exit 1
