(** Minimal justification trees over a captured ledger.

    Answers "why does the map say this?": a switch resolves to the
    births of every replicate in its class plus the merges that
    unified them; a link to the probe that discovered its edge; a
    route hop to the link it crosses plus its UP*/DOWN* orientation
    entry. Trees are rendered depth-first with sharing (a deduction
    already printed is cited as [see d<n>] instead of re-expanded), so
    the output is the {e minimal} tree, and terminates only in [probe]
    and [axiom] leaves. *)

open San_topology

type query =
  | Switch of string  (** [switch:NAME] — map name [m<vid>] or actual name *)
  | Link of (string * int) * (string * int)  (** [link:A.P-B.Q] *)
  | Route of string * string  (** [route:H1->H2], host names *)

val parse_query : string -> (query, string) result

val resolve_name :
  ?actual:Graph.t -> map:Graph.t -> string -> (Graph.node, string) result
(** A node of [map] by name: map names directly; with [actual], actual
    switch/host names too, through {!Diff.correspond} anchored at the
    shared hosts. *)

val host_vid : Why.snapshot -> Replay.t -> name:string -> int option
(** Canonical vid of the class holding the named host vertex. *)

val map_end_name : Graph.t -> Graph.node * int -> string
(** A wire end in map terms: a bare host name, or ["switch.port"]. *)

val orientation_key :
  Graph.t -> from_:Graph.node * int -> to_:Graph.node * int -> string
(** The ledger key under which {!San_routing.Updown} records a directed
    edge's UP orientation: ["from>to"] in {!map_end_name} terms. *)

val roots_for_switch : Why.snapshot -> Replay.t -> vid:int -> int list
(** Ledger roots for a switch class: every member's birth plus the
    merges that unified them, ascending. *)

val roots_of :
  ?actual:Graph.t ->
  map:Graph.t ->
  snap:Why.snapshot ->
  replay:Replay.t ->
  query ->
  (string * int list, string) result
(** Resolve a [Switch] or [Link] query to (header line, ledger roots).
    [Route] queries need a worm evaluation — use {!route_roots}. *)

val route_roots :
  map:Graph.t ->
  snap:Why.snapshot ->
  replay:Replay.t ->
  hops:San_simnet.Worm.hop list ->
  (string * int list) list
(** Per-hop (description, roots): the crossed link's discovery entry
    plus its orientation entry when one was recorded. *)

val leaves : Why.snapshot -> int -> (int * Why.entry) list
(** Transitive leaf entries (probes and axioms) under one id,
    ascending, deduplicated. *)

val pp_roots :
  Why.snapshot -> Format.formatter -> int list -> unit
(** Render the justification trees of the given roots, sharing
    subtrees across the whole render. *)

val dot_of_roots : Why.snapshot -> int list -> string
(** The same justification DAG as Graphviz: probes as boxes, axioms as
    diamonds, deductions as ellipses, an edge from each entry to each
    piece of its evidence. *)
