module J = San_util.Json
module Trace = San_obs.Trace

type t = {
  note : string;
  epoch : int option;
  records : Trace.record list;
  entries : (int * Why.entry) list;
}

let read path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let note = ref "" and epoch = ref None in
        let records = ref [] and entries = ref [] in
        let ok = ref (Ok ()) in
        (try
           let lineno = ref 0 in
           while !ok = Ok () do
             let line = input_line ic in
             incr lineno;
             if String.trim line <> "" then
               match J.of_string line with
               | Error e ->
                 ok := Error (Printf.sprintf "line %d: %s" !lineno e)
               | Ok j -> (
                 match Option.bind (J.member "rec" j) J.to_str with
                 | Some "flight" ->
                   note :=
                     Option.value ~default:""
                       (Option.bind (J.member "note" j) J.to_str);
                   epoch := Option.bind (J.member "epoch" j) J.to_int
                 | Some "trace" -> (
                   match
                     Option.bind (J.member "record" j) Trace.record_of_json
                   with
                   | Some r -> records := r :: !records
                   | None ->
                     ok :=
                       Error
                         (Printf.sprintf "line %d: bad trace record" !lineno))
                 | Some "why" -> (
                   match
                     Option.bind (J.member "entry" j) Why.entry_of_json
                   with
                   | Some e -> entries := e :: !entries
                   | None ->
                     ok :=
                       Error
                         (Printf.sprintf "line %d: bad ledger entry" !lineno))
                 | _ ->
                   ok :=
                     Error (Printf.sprintf "line %d: unknown record" !lineno))
           done
         with End_of_file -> ());
        match !ok with
        | Error _ as e -> e
        | Ok () ->
          Ok
            {
              note = !note;
              epoch = !epoch;
              records = List.rev !records;
              entries = List.rev !entries;
            })
  with Sys_error e -> Error e

let open_alerts t =
  let open_ = Hashtbl.create 8 in
  List.iter
    (fun (r : Trace.record) ->
      match r.Trace.event with
      | Trace.Alert_raised { name; epoch } -> Hashtbl.replace open_ name epoch
      | Trace.Alert_cleared { name; _ } -> Hashtbl.remove open_ name
      | _ -> ())
    t.records;
  List.sort compare (Hashtbl.fold (fun n e acc -> (n, e) :: acc) open_ [])

let timeline t =
  List.filter_map
    (fun (r : Trace.record) ->
      let line fmt = Printf.ksprintf Option.some fmt in
      match r.Trace.event with
      | Trace.Epoch_started { name; discrepancies } ->
        line "verify sweep: %s (%d discrepancies)" name discrepancies
      | Trace.Daemon_transition { epoch; from_; to_ } ->
        line "epoch %d: %s -> %s" epoch from_ to_
      | Trace.Daemon_epoch { epoch; verdict; leader; covered; total } ->
        line "epoch %d closed: %s under %s, coverage %d/%d" epoch verdict
          leader covered total
      | Trace.Alert_raised { name; epoch } ->
        line "epoch %d: alert %s RAISED" epoch name
      | Trace.Alert_cleared { name; epoch } ->
        line "epoch %d: alert %s cleared" epoch name
      | Trace.Mapper_stuck { at_ns; pending } ->
        line "FATAL: election co-simulation stuck at %.0f ns (%d mappers \
              pending)" at_ns pending
      | Trace.Mark { name; note } -> line "mark %s: %s" name note
      | _ -> None)
    t.records

let pp ppf t =
  Format.fprintf ppf "flight recording: %s%s@."
    (if t.note = "" then "(no note)" else t.note)
    (match t.epoch with
    | Some e -> Printf.sprintf " (epoch %d)" e
    | None -> "");
  Format.fprintf ppf "%d trace events, %d ledger entries@."
    (List.length t.records) (List.length t.entries);
  (match timeline t with
  | [] -> Format.fprintf ppf "timeline: empty@."
  | lines ->
    Format.fprintf ppf "timeline:@.";
    List.iter (fun l -> Format.fprintf ppf "  %s@." l) lines);
  (match open_alerts t with
  | [] -> Format.fprintf ppf "open alerts: none@."
  | alerts ->
    Format.fprintf ppf "open alerts:@.";
    List.iter
      (fun (n, e) -> Format.fprintf ppf "  %s (raised epoch %d)@." n e)
      alerts);
  let deductions =
    List.filter
      (fun (_, e) -> match e with Why.Deduced _ -> true | _ -> false)
      t.entries
  in
  match deductions with
  | [] -> Format.fprintf ppf "last deductions: none recorded@."
  | l ->
    let n = List.length l in
    let last = if n > 8 then List.filteri (fun i _ -> i >= n - 8) l else l in
    Format.fprintf ppf "last deductions (%d of %d):@." (List.length last) n;
    List.iter (fun e -> Format.fprintf ppf "  %a@." Why.pp_entry e) last
