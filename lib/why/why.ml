(* Process-wide provenance ledger.

   Mirrors the Obs switchboard idiom: one mutable global, one boolean
   gate. Entries live in a growable array so appends and id lookups
   are O(1); the side-record lists are consed newest-first and
   reversed at capture time. *)

module J = San_util.Json

type probe_kind = Host_probe | Switch_probe

type entry =
  | Probe of { kind : probe_kind; turns : int list; resp : string }
  | Axiom of { fact : string Lazy.t }
  | Deduced of {
      rule : string;
      fact : string Lazy.t;
      probes : int list;
      deps : int list;
    }

type merge_rec = { kept : int; absorbed : int; shift : int; m_did : int }
type edge_rec = { eid : int; e_a : int; e_sa : int; e_b : int; e_sb : int; e_did : int }

type ledger = {
  mutable cells : entry array;
  mutable n : int;
  mutable l_merges : merge_rec list; (* newest first *)
  mutable l_edges : edge_rec list;
  mutable l_prunes : (int * int) list;
  dead_eids : (int, unit) Hashtbl.t;
  births : (int, int) Hashtbl.t; (* vid -> did *)
  kinds : (int, [ `Host of string | `Switch ]) Hashtbl.t;
  orients : (string, int) Hashtbl.t;
  (* probe -> did, built lazily at capture time: hashing an int-list
     key on every probe is measurable on the mapper hot path, and only
     snapshots (Blame) ever look probes up by turns *)
  mutable turn_index : (probe_kind * int list, int) Hashtbl.t option;
  edge_index : (int, int) Hashtbl.t; (* eid -> did *)
  mutable l_root_retraction : int option;
  mutable l_root_confirmation : (int * int) option; (* root vid, did *)
  mutable l_last_probe : int option;
}

let fresh () =
  {
    cells = [||];
    n = 0;
    l_merges = [];
    l_edges = [];
    l_prunes = [];
    dead_eids = Hashtbl.create 64;
    births = Hashtbl.create 64;
    kinds = Hashtbl.create 64;
    orients = Hashtbl.create 64;
    turn_index = None;
    edge_index = Hashtbl.create 64;
    l_root_retraction = None;
    l_root_confirmation = None;
    l_last_probe = None;
  }

let enabled = ref false
let set_enabled b = enabled := b
let on () = !enabled

let current = ref (fresh ())
let preserve = ref false
let reset () = if not !preserve then current := fresh ()

(* Sharded runs drive several mapper models in one process and need
   their evidence in one ledger; Model.create's defensive reset would
   wipe the previous shard's probes between runs. *)
let with_preserve f =
  let prev = !preserve in
  preserve := true;
  Fun.protect ~finally:(fun () -> preserve := prev) f

let dummy = Axiom { fact = lazy "" }

let append e =
  let l = !current in
  if l.n >= Array.length l.cells then begin
    let cap = max 64 (2 * Array.length l.cells) in
    let a = Array.make cap dummy in
    Array.blit l.cells 0 a 0 l.n;
    l.cells <- a
  end;
  l.cells.(l.n) <- e;
  l.n <- l.n + 1;
  l.n - 1

let record_probe ~kind ~turns ~resp =
  if not !enabled then -1
  else begin
    let did = append (Probe { kind; turns; resp }) in
    !current.l_last_probe <- Some did;
    did
  end

let record_axiom ~fact =
  if not !enabled then -1 else append (Axiom { fact })

let deduce ~rule ~fact ?(probes = []) ?(deps = []) () =
  if not !enabled then -1
  else begin
    let did = append (Deduced { rule; fact; probes; deps }) in
    (* Forcing the fact for a trace event only pays off when somebody
       is streaming; the passive ring is covered by the ledger tail. *)
    if San_obs.Trace.has_sinks San_obs.Obs.tracer then
      San_obs.Obs.emit
        (San_obs.Trace.Deduction { did; rule; fact = Lazy.force fact });
    did
  end

let last_probe () = if not !enabled then None else !current.l_last_probe

let edge_did ~eid =
  if not !enabled then None else Hashtbl.find_opt !current.edge_index eid

let birth_of ~vid =
  if not !enabled then None else Hashtbl.find_opt !current.births vid

let note_vertex ~vid ~kind ~did =
  if !enabled then begin
    let l = !current in
    if not (Hashtbl.mem l.births vid) then Hashtbl.replace l.births vid did;
    Hashtbl.replace l.kinds vid kind
  end

let note_edge ~eid ~a ~sa ~b ~sb ~did =
  if !enabled then begin
    !current.l_edges <-
      { eid; e_a = a; e_sa = sa; e_b = b; e_sb = sb; e_did = did }
      :: !current.l_edges;
    Hashtbl.replace !current.edge_index eid did
  end

let note_edge_dead ~eid =
  if !enabled then Hashtbl.replace !current.dead_eids eid ()

let note_merge ~kept ~absorbed ~shift ~did =
  if !enabled then
    !current.l_merges <- { kept; absorbed; shift; m_did = did } :: !current.l_merges

let note_prune ~vid ~did =
  if !enabled then !current.l_prunes <- (vid, did) :: !current.l_prunes

let note_root_retraction ~did =
  if !enabled then !current.l_root_retraction <- Some did

let note_root_confirmation ~vid ~did =
  if !enabled then !current.l_root_confirmation <- Some (vid, did)

let note_orientation ~key ~did =
  if !enabled then Hashtbl.replace !current.orients key did

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type snapshot = ledger

let capture () =
  let l = !current in
  {
    cells = Array.sub l.cells 0 l.n;
    n = l.n;
    l_merges = l.l_merges;
    l_edges = l.l_edges;
    l_prunes = l.l_prunes;
    dead_eids = Hashtbl.copy l.dead_eids;
    births = Hashtbl.copy l.births;
    kinds = Hashtbl.copy l.kinds;
    orients = Hashtbl.copy l.orients;
    turn_index = None;
    edge_index = Hashtbl.copy l.edge_index;
    l_root_retraction = l.l_root_retraction;
    l_root_confirmation = l.l_root_confirmation;
    l_last_probe = l.l_last_probe;
  }

let size s = s.n
let entry s did = if did >= 0 && did < s.n then Some s.cells.(did) else None

let entries s = List.init s.n (fun i -> (i, s.cells.(i)))

let merges s = List.rev s.l_merges
let edges s = List.rev s.l_edges
let edge_dead s ~eid = Hashtbl.mem s.dead_eids eid
let pruned s = List.rev s.l_prunes
let vertex_birth s ~vid = Hashtbl.find_opt s.births vid
let vertex_kind s ~vid = Hashtbl.find_opt s.kinds vid
let vertices s = List.sort compare (Hashtbl.fold (fun v _ acc -> v :: acc) s.births [])
let root_retraction s = s.l_root_retraction
let root_confirmation s = s.l_root_confirmation
let orientation s ~key = Hashtbl.find_opt s.orients key
let probe_by_turns s ~kind ~turns =
  let idx =
    match s.turn_index with
    | Some idx -> idx
    | None ->
      let idx = Hashtbl.create (max 256 s.n) in
      for did = 0 to s.n - 1 do
        match s.cells.(did) with
        | Probe { kind; turns; _ } -> Hashtbl.replace idx (kind, turns) did
        | _ -> ()
      done;
      s.turn_index <- Some idx;
      idx
  in
  Hashtbl.find_opt idx (kind, turns)

let tail s ~n =
  let lo = max 0 (s.n - n) in
  List.init (s.n - lo) (fun i -> (lo + i, s.cells.(lo + i)))

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)

let kind_to_string = function Host_probe -> "host" | Switch_probe -> "switch"

let kind_of_string = function
  | "host" -> Some Host_probe
  | "switch" -> Some Switch_probe
  | _ -> None

let entry_to_json did e =
  let ints l = J.Arr (List.map J.int l) in
  let fields =
    match e with
    | Probe { kind; turns; resp } ->
      [
        ("kind", J.Str "probe");
        ("probe", J.Str (kind_to_string kind));
        ("turns", ints turns);
        ("resp", J.Str resp);
      ]
    | Axiom { fact } ->
      [ ("kind", J.Str "axiom"); ("fact", J.Str (Lazy.force fact)) ]
    | Deduced { rule; fact; probes; deps } ->
      [
        ("kind", J.Str "deduced");
        ("rule", J.Str rule);
        ("fact", J.Str (Lazy.force fact));
        ("probes", ints probes);
        ("deps", ints deps);
      ]
  in
  J.Obj (("did", J.int did) :: fields)

let entry_of_json j =
  let str k = Option.bind (J.member k j) J.to_str in
  let int k = Option.bind (J.member k j) J.to_int in
  let ints k =
    Option.map
      (List.filter_map J.to_int)
      (Option.bind (J.member k j) J.to_arr)
  in
  match (int "did", str "kind") with
  | Some did, Some "probe" -> (
    match (Option.bind (str "probe") kind_of_string, ints "turns", str "resp")
    with
    | Some kind, Some turns, Some resp ->
      Some (did, Probe { kind; turns; resp })
    | _ -> None)
  | Some did, Some "axiom" ->
    Option.map
      (fun fact -> (did, Axiom { fact = Lazy.from_val fact }))
      (str "fact")
  | Some did, Some "deduced" -> (
    match (str "rule", str "fact") with
    | Some rule, Some fact ->
      let probes = Option.value ~default:[] (ints "probes") in
      let deps = Option.value ~default:[] (ints "deps") in
      Some (did, Deduced { rule; fact = Lazy.from_val fact; probes; deps })
    | _ -> None)
  | _ -> None

let pp_turns ppf turns =
  Format.fprintf ppf "[%s]" (String.concat ";" (List.map string_of_int turns))

let pp_entry ppf (did, e) =
  match e with
  | Probe { kind; turns; resp } ->
    Format.fprintf ppf "d%d probe %s %a -> %s" did (kind_to_string kind)
      pp_turns turns resp
  | Axiom { fact } -> Format.fprintf ppf "d%d axiom: %s" did (Lazy.force fact)
  | Deduced { rule; fact; probes; deps } ->
    Format.fprintf ppf "d%d [%s] %s%s" did rule (Lazy.force fact)
      (match probes @ deps with
      | [] -> ""
      | l ->
        Printf.sprintf " <- %s"
          (String.concat "," (List.map (Printf.sprintf "d%d") l)))
