(** Bounded, crash-safe flight recorder.

    One call serializes the last trace events (the {!San_obs.Obs}
    ring) plus the tail of the provenance ledger to a JSON-lines file:
    a header record, then one ["trace"] record per surviving trace
    event, then one ["why"] record per ledger entry. The file is
    written to a temporary name, flushed and fsynced, then renamed
    into place, so a crash mid-write never truncates an existing
    recording.

    The daemon writes one on every transition into Degraded and at end
    of run; fatal paths (e.g. {!San_mapper.Election_sim} finding no
    runnable work) fire the process-wide hook installed here. *)

val write :
  ?ledger_tail:int ->
  path:string ->
  note:string ->
  ?epoch:int ->
  unit ->
  (unit, string) result
(** Serialize the current trace ring and ledger tail (default last 512
    entries) to [path]. *)

val install_fatal : (note:string -> unit) -> unit
(** Register the process-wide fatal hook (the daemon and the CLI point
    it at {!write} with their output directory). Replaces any previous
    hook. *)

val clear_fatal : unit -> unit

val fatal : note:string -> unit
(** Fire the hook, if any; never raises. *)
