(** Rebuild the model's final shape from the ledger alone.

    {!San_mapper.Model} is consumed by the mapper run; what survives is
    the exported map plus the ledger. Replaying the recorded merges
    reconstructs exactly the union-find (with frame shifts) the model
    ended with, so final-map facts — a switch named ["m3"], a link at
    port 4 — resolve back to ledger entries without the live model. *)

type t

val build : Why.snapshot -> t

val find : t -> int -> int * int
(** [(canonical, shift)]: original vid frame + shift = canonical frame,
    exactly {!San_mapper.Model.frame_shift}. *)

val members : t -> int -> int list
(** Every recorded vid whose class representative is the given
    canonical vid (including itself), ascending. *)

val live : t -> int -> bool
(** False for classes deleted by pruning or root retraction. *)

type edge_view = {
  ev_eid : int;
  ev_a : int;  (** canonical vid *)
  ev_pa : int;  (** map port: canonical slot minus the class base *)
  ev_b : int;
  ev_pb : int;
  ev_did : int;
}

val live_edges : t -> edge_view list

val base : t -> int -> int
(** Minimum live canonical slot of a switch class — the normalisation
    {!San_mapper.Model.to_graph} applies, so [ev_pa]/[ev_pb] agree
    with the exported map's port numbers. *)

val edge_at : t -> a:int -> pa:int -> b:int -> pb:int -> edge_view option
(** The live edge joining map ports [(mA, pa)] and [(mB, pb)], in
    either orientation. *)

val vid_of_map_switch : string -> int option
(** Parse a map switch name ["m<vid>"] back to its canonical vid. *)
