(** Reconstruct what a daemon believed from a flight file alone.

    Parses a {!Flight} recording and rebuilds the epoch-by-epoch story:
    state-machine transitions, closed-epoch verdicts, alerts raised and
    still open, the stuck-election marker if one fired, and the last
    deductions the mapper committed before the recording was cut. *)

type t = {
  note : string;
  epoch : int option;  (** epoch stamped on the recording, if any *)
  records : San_obs.Trace.record list;  (** oldest first *)
  entries : (int * Why.entry) list;  (** ledger tail, oldest first *)
}

val read : string -> (t, string) result
(** Parse a flight JSON-lines file; unparseable lines are an error
    (the writer is crash-safe, so a half file should never exist). *)

val open_alerts : t -> (string * int) list
(** Alerts raised in the recording and never cleared, with the epoch
    each was raised at. *)

val timeline : t -> string list
(** Human-readable control-plane happenings, oldest first. *)

val pp : Format.formatter -> t -> unit
