module J = San_util.Json
module Trace = San_obs.Trace

let write ?(ledger_tail = 512) ~path ~note ?epoch () =
  let records = Trace.records San_obs.Obs.tracer in
  let snap = Why.capture () in
  let entries = Why.tail snap ~n:ledger_tail in
  let header =
    J.Obj
      ([
         ("rec", J.Str "flight");
         ("version", J.int 1);
         ("note", J.Str note);
       ]
      @ (match epoch with None -> [] | Some e -> [ ("epoch", J.int e) ])
      @ [
          ("events", J.int (List.length records));
          ("ledger", J.int (List.length entries));
        ])
  in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        let line j =
          output_string oc (J.to_string ~pretty:false j);
          output_char oc '\n'
        in
        line header;
        List.iter
          (fun r ->
            line
              (J.Obj
                 [ ("rec", J.Str "trace"); ("record", Trace.record_to_json r) ]))
          records;
        List.iter
          (fun (did, e) ->
            line
              (J.Obj
                 [ ("rec", J.Str "why"); ("entry", Why.entry_to_json did e) ]))
          entries;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp path;
    Ok ()
  with Sys_error e | Unix.Unix_error (_, e, _) -> Error e

let hook : (note:string -> unit) option ref = ref None
let install_fatal f = hook := Some f
let clear_fatal () = hook := None

let fatal ~note =
  match !hook with
  | None -> ()
  | Some f -> ( try f ~note with _ -> ())
