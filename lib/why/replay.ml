type edge_view = {
  ev_eid : int;
  ev_a : int;
  ev_pa : int;
  ev_b : int;
  ev_pb : int;
  ev_did : int;
}

type t = {
  parent : (int, int) Hashtbl.t; (* absorbed canonical -> kept canonical *)
  shift : (int, int) Hashtbl.t; (* slot_kept = slot_absorbed + shift *)
  dead : (int, unit) Hashtbl.t; (* final canonicals of pruned classes *)
  bases : (int, int) Hashtbl.t;
  r_members : (int, int list) Hashtbl.t;
  r_edges : edge_view list;
}

let rec resolve parent shift v =
  match Hashtbl.find_opt parent v with
  | None -> (v, 0)
  | Some p ->
    let r, s = resolve parent shift p in
    (r, Hashtbl.find shift v + s)

let find t v = resolve t.parent t.shift v
let live t v = not (Hashtbl.mem t.dead (fst (find t v)))
let members t c = Option.value ~default:[] (Hashtbl.find_opt t.r_members c)
let base t c = Option.value ~default:0 (Hashtbl.find_opt t.bases c)

let build snap =
  let parent = Hashtbl.create 64 and shift = Hashtbl.create 64 in
  List.iter
    (fun (m : Why.merge_rec) ->
      (* [kept]/[absorbed] were canonical when recorded, so each vid is
         absorbed at most once and the chains terminate. *)
      Hashtbl.replace parent m.Why.absorbed m.Why.kept;
      Hashtbl.replace shift m.Why.absorbed m.Why.shift)
    (Why.merges snap);
  let dead = Hashtbl.create 16 in
  List.iter
    (fun (vid, _) ->
      Hashtbl.replace dead (fst (resolve parent shift vid)) ())
    (Why.pruned snap);
  (* Live edges in final canonical frames. *)
  let raw =
    List.filter_map
      (fun (e : Why.edge_rec) ->
        if Why.edge_dead snap ~eid:e.Why.eid then None
        else begin
          let ca, sa = resolve parent shift e.Why.e_a in
          let cb, sb = resolve parent shift e.Why.e_b in
          if Hashtbl.mem dead ca || Hashtbl.mem dead cb then None
          else
            Some
              ( e.Why.eid,
                ca,
                e.Why.e_sa + sa,
                cb,
                e.Why.e_sb + sb,
                e.Why.e_did )
        end)
      (Why.edges snap)
  in
  let bases = Hashtbl.create 64 in
  let touch c slot =
    match Why.vertex_kind snap ~vid:c with
    | Some (`Host _) | None -> ()
    | Some `Switch -> (
      match Hashtbl.find_opt bases c with
      | Some b when b <= slot -> ()
      | _ -> Hashtbl.replace bases c slot)
  in
  List.iter
    (fun (_, ca, sa, cb, sb, _) ->
      touch ca sa;
      touch cb sb)
    raw;
  let base_of c = Option.value ~default:0 (Hashtbl.find_opt bases c) in
  let r_edges =
    List.map
      (fun (eid, ca, sa, cb, sb, did) ->
        {
          ev_eid = eid;
          ev_a = ca;
          ev_pa = sa - base_of ca;
          ev_b = cb;
          ev_pb = sb - base_of cb;
          ev_did = did;
        })
      raw
  in
  let r_members = Hashtbl.create 64 in
  List.iter
    (fun vid ->
      let c, _ = resolve parent shift vid in
      Hashtbl.replace r_members c
        (vid :: Option.value ~default:[] (Hashtbl.find_opt r_members c)))
    (Why.vertices snap);
  let sorted =
    Hashtbl.fold (fun c l acc -> (c, List.sort compare l) :: acc) r_members []
  in
  List.iter (fun (c, l) -> Hashtbl.replace r_members c l) sorted;
  { parent; shift; dead; bases; r_members; r_edges }

let live_edges t = t.r_edges

let edge_at t ~a ~pa ~b ~pb =
  List.find_opt
    (fun e ->
      (e.ev_a = a && e.ev_pa = pa && e.ev_b = b && e.ev_pb = pb)
      || (e.ev_a = b && e.ev_pa = pb && e.ev_b = a && e.ev_pb = pa))
    t.r_edges

let vid_of_map_switch name =
  if String.length name >= 2 && name.[0] = 'm' then
    int_of_string_opt (String.sub name 1 (String.length name - 1))
  else None
