(** The evidence-provenance ledger.

    Every fact the mapper comes to believe — a vertex exists, an edge
    exists, two replicates are one switch, a region is separated from
    all hosts, an edge points UP — is recorded here as a typed entry
    citing the probes and prior deductions it rests on. Deduction ids
    are append-ordered and every dependency points strictly backwards,
    so justifications form a DAG by construction and any fact about
    the final map resolves to a tree terminating in probe (or axiom)
    leaves.

    Like {!San_obs.Obs}, this is a process-wide switchboard:
    instrumented modules report unconditionally and everything is a
    no-op until [set_enabled true], so the mapper hot path pays one
    boolean test when provenance is off. *)

type probe_kind = Host_probe | Switch_probe

type entry =
  | Probe of { kind : probe_kind; turns : int list; resp : string }
      (** a probe worm actually sent, and what came back *)
  | Axiom of { fact : string Lazy.t }
      (** ground the mapper assumes rather than observes (its own
          host vertex, the root switch behind its single cable) *)
  | Deduced of {
      rule : string;
      fact : string Lazy.t;
          (** facts are lazy so the mapper hot path never pays for
              formatting a sentence nobody reads *)
      probes : int list;  (** direct probe-entry evidence *)
      deps : int list;  (** prior deduction ids, all [<] this id *)
    }

val set_enabled : bool -> unit
val on : unit -> bool

val reset : unit -> unit
(** Empty the ledger and every index. {!San_mapper.Model.create} calls
    this when provenance is on, so ids never leak across runs. A no-op
    inside {!with_preserve}. *)

val with_preserve : (unit -> 'a) -> 'a
(** [with_preserve f] runs [f] with {!reset} suppressed, so several
    mapper runs (San_shard's N concurrent shards) append to {e one}
    shared ledger and cross-shard deductions — merge-conflict
    resolutions citing probes from two different shards — stay
    well-founded. Vertex-id keyed lookups are unreliable across shard
    model boundaries (each model numbers vertices from 0); entry-id
    based queries remain exact. Nests; restores the previous mode on
    exit, even by exception. *)

(** {1 Recording} — all no-ops returning [-1] when disabled *)

val record_probe : kind:probe_kind -> turns:int list -> resp:string -> int
val record_axiom : fact:string Lazy.t -> int

val deduce :
  rule:string ->
  fact:string Lazy.t ->
  ?probes:int list ->
  ?deps:int list ->
  unit ->
  int
(** Also emits {!San_obs.Trace.Deduction} when a trace sink is
    attached (the fact is then forced; with only the passive ring
    listening it stays a thunk). *)

val last_probe : unit -> int option
(** Id of the most recently recorded probe entry. *)

val edge_did : eid:int -> int option
(** Live-ledger lookup: the entry that justified edge [eid], so later
    deductions (slot-conflict merges, prunes) can cite it. *)

val birth_of : vid:int -> int option
(** Live-ledger lookup: the entry that justified vertex [vid]. *)

(** {1 Side-records} — the typed skeleton {!Replay} rebuilds the model
    from. Vertex/edge ids are the model's own ([Model.vid] and edge
    creation ids); slots are in the frame of the vid they are recorded
    against, at recording time. *)

val note_vertex :
  vid:int -> kind:[ `Host of string | `Switch ] -> did:int -> unit

val note_edge : eid:int -> a:int -> sa:int -> b:int -> sb:int -> did:int -> unit
val note_edge_dead : eid:int -> unit
val note_merge : kept:int -> absorbed:int -> shift:int -> did:int -> unit
val note_prune : vid:int -> did:int -> unit
val note_root_retraction : did:int -> unit

val note_root_confirmation : vid:int -> did:int -> unit
(** The turn-0 self-probe bounced back: the assumed root switch [vid]
    is real, justified by entry [did]. *)

val note_orientation : key:string -> did:int -> unit
(** [key] is the directed-edge name ["a.p>b.q"] in map terms. *)

(** {1 Snapshots} — an immutable copy of the whole ledger, so two runs
    can be compared after the second one [reset] the global state. *)

type snapshot

val capture : unit -> snapshot
val size : snapshot -> int
val entry : snapshot -> int -> entry option
val entries : snapshot -> (int * entry) list
(** Oldest first. *)

type merge_rec = { kept : int; absorbed : int; shift : int; m_did : int }
type edge_rec = { eid : int; e_a : int; e_sa : int; e_b : int; e_sb : int; e_did : int }

val merges : snapshot -> merge_rec list
(** Oldest first. *)

val edges : snapshot -> edge_rec list
(** Oldest first. *)

val edge_dead : snapshot -> eid:int -> bool

val pruned : snapshot -> (int * int) list
(** [(vid, did)] pairs, oldest first. *)

val vertex_birth : snapshot -> vid:int -> int option
val vertex_kind : snapshot -> vid:int -> [ `Host of string | `Switch ] option

val vertices : snapshot -> int list
(** Vids with a recorded birth. *)

val root_retraction : snapshot -> int option

val root_confirmation : snapshot -> (int * int) option
(** [(root vid, did)] when the turn-0 self-probe confirmed the
    assumed root switch. *)

val orientation : snapshot -> key:string -> int option
val probe_by_turns :
  snapshot -> kind:probe_kind -> turns:int list -> int option
(** Latest probe entry of this kind recorded with exactly these
    turns — how {!Blame} finds a probe's counterpart in another run. *)

(** {1 Serialization} *)

val entry_to_json : int -> entry -> San_util.Json.t
val entry_of_json : San_util.Json.t -> (int * entry) option
val pp_entry : Format.formatter -> int * entry -> unit

val tail : snapshot -> n:int -> (int * entry) list
(** The last [n] entries, oldest first — the flight recorder's slice. *)
