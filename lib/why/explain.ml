open San_topology

type query =
  | Switch of string
  | Link of (string * int) * (string * int)
  | Route of string * string

(* "NAME.PORT" with the port after the last dot. *)
let parse_end s =
  match String.rindex_opt s '.' with
  | None -> Error (s ^ ": expected NAME.PORT")
  | Some i -> (
    let name = String.sub s 0 i in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some p when name <> "" -> Ok (name, p)
    | _ -> Error (s ^ ": expected NAME.PORT"))

let parse_query q =
  match String.index_opt q ':' with
  | None -> Error (q ^ ": expected switch:NAME, link:A.P-B.Q or route:H1->H2")
  | Some i -> (
    let kind = String.sub q 0 i in
    let rest = String.sub q (i + 1) (String.length q - i - 1) in
    match kind with
    | "switch" when rest <> "" -> Ok (Switch rest)
    | "link" ->
      (* Node names may themselves contain '-' (e.g. C-leaf0), so try
         every '-' as the separator and keep the split where both
         sides parse as NAME.PORT. *)
      let n = String.length rest in
      let rec split j =
        if j >= n then Error (rest ^ ": expected A.P-B.Q")
        else if rest.[j] <> '-' then split (j + 1)
        else
          let a = String.sub rest 0 j in
          let b = String.sub rest (j + 1) (n - j - 1) in
          match (parse_end a, parse_end b) with
          | Ok ea, Ok eb -> Ok (Link (ea, eb))
          | _ -> split (j + 1)
      in
      split 0
    | "route" -> (
      let cut s =
        let n = String.length s in
        let rec go i =
          if i + 1 >= n then None
          else if s.[i] = '-' && s.[i + 1] = '>' then
            Some (String.sub s 0 i, String.sub s (i + 2) (n - i - 2))
          else go (i + 1)
        in
        go 0
      in
      match cut rest with
      | Some (src, dst) when src <> "" && dst <> "" -> Ok (Route (src, dst))
      | _ -> Error (rest ^ ": expected H1->H2"))
    | _ -> Error (q ^ ": expected switch:NAME, link:A.P-B.Q or route:H1->H2"))

let node_by_name g name =
  if name = "" then None
  else
    match Graph.host_by_name g name with
    | Some h -> Some h
    | None -> List.find_opt (fun s -> Graph.name g s = name) (Graph.switches g)

let resolve_name ?actual ~map name =
  match node_by_name map name with
  | Some n -> Ok n
  | None -> (
    match actual with
    | None -> Error (name ^ ": no such node in the map")
    | Some g -> (
      match node_by_name g name with
      | None -> Error (name ^ ": no such node in the map or the actual fabric")
      | Some n -> (
        let fwd, _ = Diff.correspond ~old_map:g ~new_map:map in
        match fwd.(n) with
        | Some (n', _) -> Ok n'
        | None -> Error (name ^ ": actual node has no counterpart in the map"))))

let host_vid snap replay ~name =
  List.find_map
    (fun vid ->
      match Why.vertex_kind snap ~vid with
      | Some (`Host n) when n = name -> Some (fst (Replay.find replay vid))
      | _ -> None)
    (Why.vertices snap)

(* Canonical vid of a map node: switches carry it in their name,
   hosts resolve through their recorded host vertex. *)
let vid_of_map_node snap replay map n =
  let name = Graph.name map n in
  if Graph.is_host map n then host_vid snap replay ~name
  else Replay.vid_of_map_switch name

let merge_roots snap replay ~vid =
  List.filter_map
    (fun (m : Why.merge_rec) ->
      if fst (Replay.find replay m.Why.kept) = vid then Some m.Why.m_did
      else None)
    (Why.merges snap)

let roots_for_switch snap replay ~vid =
  let members = Replay.members replay vid in
  let births =
    List.filter_map (fun v -> Why.vertex_birth snap ~vid:v) members
  in
  (* If the class holds the mapper's assumed root and the turn-0
     self-probe confirmed it, that probe is part of its evidence. *)
  let confirm =
    match Why.root_confirmation snap with
    | Some (rv, did) when List.mem rv members -> [ did ]
    | _ -> []
  in
  List.sort_uniq compare (births @ confirm @ merge_roots snap replay ~vid)

let map_end_name map (n, p) =
  if Graph.is_host map n then Graph.name map n
  else Printf.sprintf "%s.%d" (Graph.name map n) p

let orientation_key map ~from_ ~to_ =
  Printf.sprintf "%s>%s" (map_end_name map from_) (map_end_name map to_)

let link_roots snap replay map (na, pa) (nb, pb) =
  match
    ( vid_of_map_node snap replay map na,
      vid_of_map_node snap replay map nb )
  with
  | Some va, Some vb -> (
    match Replay.edge_at replay ~a:va ~pa ~b:vb ~pb with
    | None -> Error "the map has no such link"
    | Some e ->
      let orient =
        List.filter_map
          (fun (f, t) -> Why.orientation snap ~key:(orientation_key map ~from_:f ~to_:t))
          [ ((na, pa), (nb, pb)); ((nb, pb), (na, pa)) ]
      in
      Ok (List.sort_uniq compare (e.Replay.ev_did :: orient)))
  | _ -> Error "link endpoint has no recorded model vertex"

let roots_of ?actual ~map ~snap ~replay = function
  | Route _ -> Error "route queries resolve through route_roots"
  | Switch name -> (
    match resolve_name ?actual ~map name with
    | Error e -> Error e
    | Ok n ->
      if Graph.is_host map n then Error (name ^ ": is a host, not a switch")
      else (
        match vid_of_map_node snap replay map n with
        | None -> Error (name ^ ": map switch has no recorded class")
        | Some vid ->
          let members = Replay.members replay vid in
          let header =
            Printf.sprintf "switch %s%s: class {%s}, %d merge%s"
              (Graph.name map n)
              (if name <> Graph.name map n then Printf.sprintf " (= %s)" name
               else "")
              (String.concat "," (List.map string_of_int members))
              (List.length members - 1)
              (if List.length members = 2 then "" else "s")
          in
          Ok (header, roots_for_switch snap replay ~vid)))
  | Link ((a, pa), (b, pb)) -> (
    match (resolve_name ?actual ~map a, resolve_name ?actual ~map b) with
    | Error e, _ | _, Error e -> Error e
    | Ok na, Ok nb -> (
      match link_roots snap replay map (na, pa) (nb, pb) with
      | Error e -> Error (Printf.sprintf "link %s.%d-%s.%d: %s" a pa b pb e)
      | Ok roots ->
        Ok
          ( Printf.sprintf "link %s-%s" (map_end_name map (na, pa))
              (map_end_name map (nb, pb)),
            roots )))

let route_roots ~map ~snap ~replay ~hops =
  List.map
    (fun (h : San_simnet.Worm.hop) ->
      let (na, pa) = h.San_simnet.Worm.exit_end
      and (nb, pb) = h.San_simnet.Worm.entry_end in
      let desc =
        Printf.sprintf "hop %s -> %s" (map_end_name map (na, pa))
          (map_end_name map (nb, pb))
      in
      let roots =
        match link_roots snap replay map (na, pa) (nb, pb) with
        | Ok roots -> roots
        | Error _ -> []
      in
      (desc, roots))
    hops

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let evidence = function
  | Why.Probe _ | Why.Axiom _ -> []
  | Why.Deduced { probes; deps; _ } -> List.sort_uniq compare (deps @ probes)

let leaves snap did =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go did =
    if not (Hashtbl.mem seen did) then begin
      Hashtbl.replace seen did ();
      match Why.entry snap did with
      | None -> ()
      | Some e -> (
        match evidence e with
        | [] -> acc := (did, e) :: !acc
        | deps -> List.iter go deps)
    end
  in
  go did;
  List.sort compare !acc

let pp_roots snap ppf roots =
  let printed = Hashtbl.create 64 in
  let rec render prefix last did =
    let branch = if last then "`- " else "|- " in
    let cont = if last then "   " else "|  " in
    match Why.entry snap did with
    | None -> Format.fprintf ppf "%s%sd%d (missing)@." prefix branch did
    | Some e ->
      if Hashtbl.mem printed did && evidence e <> [] then
        Format.fprintf ppf "%s%s(see d%d above)@." prefix branch did
      else begin
        Hashtbl.replace printed did ();
        Format.fprintf ppf "%s%s%a@." prefix branch Why.pp_entry (did, e);
        let deps = evidence e in
        let n = List.length deps in
        List.iteri
          (fun i d -> render (prefix ^ cont) (i = n - 1) d)
          deps
      end
  in
  let n = List.length roots in
  List.iteri (fun i d -> render "" (i = n - 1) d) roots

let dot_of_roots snap roots =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph why {\n  rankdir=BT;\n";
  let seen = Hashtbl.create 64 in
  let esc s = String.concat "\\\"" (String.split_on_char '"' s) in
  let rec visit did =
    if not (Hashtbl.mem seen did) then begin
      Hashtbl.replace seen did ();
      match Why.entry snap did with
      | None -> ()
      | Some e ->
        let label = esc (Format.asprintf "%a" Why.pp_entry (did, e)) in
        let shape =
          match e with
          | Why.Probe _ -> "box"
          | Why.Axiom _ -> "diamond"
          | Why.Deduced _ -> "ellipse"
        in
        Buffer.add_string buf
          (Printf.sprintf "  d%d [shape=%s, label=\"%s\"];\n" did shape label);
        List.iter
          (fun dep ->
            Buffer.add_string buf (Printf.sprintf "  d%d -> d%d;\n" did dep);
            visit dep)
          (evidence e)
    end
  in
  List.iter visit roots;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
