(** Attribute map changes to probes.

    Diffs two maps produced with provenance on and, for every changed
    fact, names the first probe whose answer (or loss) explains the
    change: a vanished link is traced to the probe that justified it in
    the old run, then that same probe is looked up by its turn string
    in the new run's ledger — if it was never sent, or answered
    differently, that is the explanation. *)

open San_topology

type side = { b_map : Graph.t; b_snap : Why.snapshot }

type attribution = {
  a_change : string;  (** the changed fact, human-readable *)
  a_probe_did : int option;  (** the attributed probe's id, in its side *)
  a_note : string;  (** what that probe did across the two runs *)
}

val run : old_:side -> new_:side -> attribution list
(** One attribution per changed fact, ordered by attributed probe id
    (unattributable facts last). Empty when the maps agree. *)

val pp_attribution : Format.formatter -> attribution -> unit
