open San_topology

type side = { b_map : Graph.t; b_snap : Why.snapshot }

type attribution = {
  a_change : string;
  a_probe_did : int option;
  a_note : string;
}

let turns_to_string turns =
  Printf.sprintf "[%s]" (String.concat ";" (List.map string_of_int turns))

let probe_entries snap roots =
  List.sort_uniq compare
    (List.filter
       (fun (_, e) -> match e with Why.Probe _ -> true | _ -> false)
       (List.concat_map (Explain.leaves snap) roots))

(* The first probe among [roots]'s leaves whose counterpart in the
   [other] run is missing or answered differently; falling back to the
   first probe leaf when every probe agrees. *)
let attribute ~snap ~other roots =
  let probes = probe_entries snap roots in
  let differing =
    List.filter_map
      (fun (did, e) ->
        match e with
        | Why.Probe { kind; turns; resp } -> (
          let kind_s =
            match kind with
            | Why.Host_probe -> "host-probe"
            | Why.Switch_probe -> "switch-probe"
          in
          match Why.probe_by_turns other ~kind ~turns with
          | None ->
            Some
              ( did,
                Printf.sprintf
                  "%s %s answered %s (d%d); never sent in the other run"
                  kind_s (turns_to_string turns) resp did )
          | Some odid -> (
            match Why.entry other odid with
            | Some (Why.Probe { resp = oresp; _ }) when oresp <> resp ->
              Some
                ( did,
                  Printf.sprintf
                    "%s %s answered %s (d%d) vs %s in the other run (d%d)"
                    kind_s (turns_to_string turns) resp did oresp odid )
            | _ -> None))
        | _ -> None)
      probes
  in
  match (differing, probes) with
  | (did, note) :: _, _ -> (Some did, note)
  | [], (did, Why.Probe { kind; turns; resp }) :: _ ->
    ( Some did,
      Printf.sprintf
        "%s %s answered %s (d%d) in both runs; the change came from \
         surrounding evidence"
        (match kind with
        | Why.Host_probe -> "host-probe"
        | Why.Switch_probe -> "switch-probe")
        (turns_to_string turns) resp did )
  | [], _ -> (None, "no probe evidence recorded")

let end_name g (n, p) =
  if Graph.is_host g n then (Graph.name g n, 0)
  else (Graph.name g n, p)

let switch_roots side replay node =
  match Replay.vid_of_map_switch (Graph.name side.b_map node) with
  | None -> []
  | Some vid ->
    let vid = fst (Replay.find replay vid) in
    Explain.roots_for_switch side.b_snap replay ~vid

let host_roots side replay name =
  match Explain.host_vid side.b_snap replay ~name with
  | None -> []
  | Some vid ->
    List.filter_map
      (fun v -> Why.vertex_birth side.b_snap ~vid:v)
      (Replay.members replay vid)

let link_roots side replay (na, pa) (nb, pb) =
  let a = end_name side.b_map (na, pa) and b = end_name side.b_map (nb, pb) in
  match
    Explain.roots_of ~map:side.b_map ~snap:side.b_snap ~replay
      (Explain.Link (a, b))
  with
  | Ok (_, roots) -> roots
  | Error _ -> []

let describe_end g (n, p) =
  if Graph.is_host g n then Graph.name g n
  else Printf.sprintf "%s.%d" (Graph.name g n) p

let run ~old_ ~new_ =
  let old_replay = Replay.build old_.b_snap in
  let new_replay = Replay.build new_.b_snap in
  let acc = ref [] in
  let add ~change ~side ~other roots =
    let did, note = attribute ~snap:side.b_snap ~other:other.b_snap roots in
    acc := { a_change = change; a_probe_did = did; a_note = note } :: !acc
  in
  (* Hosts, by name. *)
  let host_names g = List.map (Graph.name g) (Graph.hosts g) in
  let old_hosts = host_names old_.b_map and new_hosts = host_names new_.b_map in
  List.iter
    (fun n ->
      if not (List.mem n new_hosts) then
        add ~change:(Printf.sprintf "host %s vanished" n) ~side:old_ ~other:new_
          (host_roots old_ old_replay n))
    old_hosts;
  List.iter
    (fun n ->
      if not (List.mem n old_hosts) then
        add ~change:(Printf.sprintf "host %s appeared" n) ~side:new_ ~other:old_
          (host_roots new_ new_replay n))
    new_hosts;
  (* Switches, through the evidence-anchored correspondence. *)
  let fwd, bwd = Diff.correspond ~old_map:old_.b_map ~new_map:new_.b_map in
  List.iter
    (fun s ->
      if fwd.(s) = None then
        add
          ~change:
            (Printf.sprintf "switch %s vanished" (Graph.name old_.b_map s))
          ~side:old_ ~other:new_
          (switch_roots old_ old_replay s))
    (Graph.switches old_.b_map);
  List.iter
    (fun s ->
      if not (Hashtbl.mem bwd s) then
        add
          ~change:
            (Printf.sprintf "switch %s appeared" (Graph.name new_.b_map s))
          ~side:new_ ~other:old_
          (switch_roots new_ new_replay s))
    (Graph.switches new_.b_map);
  (* Links between matched nodes, as Diff.diff walks them, but kept
     structural so each one resolves through the ledger. *)
  let matched_old o = fwd.(o) <> None in
  List.iter
    (fun ((a, pa), (b, pb)) ->
      if matched_old a && matched_old b then begin
        let a', sa = Option.get fwd.(a) in
        let b', sb = Option.get fwd.(b) in
        let still_there =
          match
            try Graph.neighbor new_.b_map (a', pa + sa)
            with Invalid_argument _ -> None
          with
          | Some (x, q) -> x = b' && q = pb + sb
          | None -> false
        in
        if not still_there then
          add
            ~change:
              (Printf.sprintf "link %s -- %s lost"
                 (describe_end old_.b_map (a, pa))
                 (describe_end old_.b_map (b, pb)))
            ~side:old_ ~other:new_
            (link_roots old_ old_replay (a, pa) (b, pb))
      end)
    (Graph.wires old_.b_map);
  List.iter
    (fun ((a', pa'), (b', pb')) ->
      if Hashtbl.mem bwd a' && Hashtbl.mem bwd b' then begin
        let a = Hashtbl.find bwd a' and b = Hashtbl.find bwd b' in
        let _, sa = Option.get fwd.(a) in
        let _, sb = Option.get fwd.(b) in
        let was_there =
          match
            try Graph.neighbor old_.b_map (a, pa' - sa)
            with Invalid_argument _ -> None
          with
          | Some (x, q) -> x = b && q = pb' - sb
          | None -> false
        in
        if not was_there then
          add
            ~change:
              (Printf.sprintf "link %s -- %s appeared"
                 (describe_end new_.b_map (a', pa'))
                 (describe_end new_.b_map (b', pb')))
            ~side:new_ ~other:old_
            (link_roots new_ new_replay (a', pa') (b', pb'))
      end)
    (Graph.wires new_.b_map);
  List.stable_sort
    (fun x y ->
      match (x.a_probe_did, y.a_probe_did) with
      | Some a, Some b -> compare a b
      | Some _, None -> -1
      | None, Some _ -> 1
      | None, None -> 0)
    (List.rev !acc)

let pp_attribution ppf a =
  Format.fprintf ppf "%s@.    %s" a.a_change a.a_note
