(** The property suite: what must hold of every fabric the generator
    can produce.

    One property per paper-level claim the system depends on:

    - ["iso"] — the Berkeley map is isomorphic to [N - F] (Theorem 1),
      with mapper-unreachable nodes and silent hosts joining F;
    - ["deadlock"] — UP*/DOWN* routes computed on either algorithm's
      map have an acyclic channel dependency graph (both labelings for
      Berkeley);
    - ["agreement"] — the Myricom map covers the reachable fabric
      exactly (and hence agrees with the Berkeley map on [N - F]);
      skipped when a comparison probe matched through a coincidental
      alternative path ([false_matches > 0], the §4 documented
      weakness);
    - ["incremental"] — incremental remap after a link cut produces a
      map isomorphic to [N' - F'], like a from-scratch run;
    - ["delta"] — delta route distribution over an installed ledger
      converges to exactly the tables a full redistribution installs,
      and never ships more bytes than full;
    - ["conservation"] — per-channel fabric counters conserve transits
      against the event simulator's acquired-hop total under an
      all-pairs storm;
    - ["provenance"] — with the ledger on, every entry cites strictly
      earlier entries, probe citations point at probe entries, and
      every replicate merge justifies down to a probe that ran;
    - ["shard_agreement"] — for shard counts {1, 2, 4, 8}, the
      conflict-resolved union of [San_shard] per-shard views is
      isomorphic to the same [N - F] the solo Berkeley mapper
      produces, with no view dropped on a quiescent run;
    - ["load_agreement"] — after the case's generated schedule has
      battered the world, a Berkeley run whose probes contend with
      measured background traffic ([retries = 2]) exports a map
      isomorphic to the quiescent map of the same fabric; skipped
      when the measured per-crossing loss exceeds the proven retry
      tolerance;
    - ["routes_deterministic"] — route tables are a pure function of
      the fabric: computing twice yields byte-identical tables
      (randomized spreading only happens through the explicit [?rng]
      opt-in), and the lazy serving plane ({!San_routing.Serve})
      reproduces the eager table entry for entry;
    - ["partial_subgraph"] — a budget-stopped {!San_cover} run (a
      seed-chosen 30% or 60% fraction) produces a partial map that
      embeds in [N - F], every element's confidence is in [0, 1], and
      the probe spend stays within the budget plus the documented
      one-exploration overshoot bound.

    Degenerate fabrics (no hosts, no mapper) make a property pass
    trivially rather than error: the generator is free to produce
    them. A property that raises is reported as a failure — crashes
    are counterexamples too. *)

type ctx
(** Per-case shared state: the Berkeley and Myricom runs, exclusion
    sets and search depth are computed lazily once and reused by every
    property. *)

val make : Fuzz_gen.case -> ctx

val all : (string * (ctx -> (unit, string) result)) list
(** The suite, in execution order. *)

val names : string list

val find : string -> (ctx -> (unit, string) result) option

val run : string -> Fuzz_gen.case -> (unit, string) result
(** [run name case] builds a fresh context and runs one property,
    converting exceptions into [Error]. @raise Invalid_argument on an
    unknown property name. *)
