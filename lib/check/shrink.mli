(** Greedy counterexample minimization.

    Given a failing case and the predicate "does the property still
    fail", repeatedly drop switches, hosts and wires (and wake silent
    hosts) while the failure persists. Port numbers, radix and names
    are preserved, so the shrunk fabric is a true subfabric of the
    generated one and port-arithmetic bugs survive the shrink. *)

open San_topology

val subgraph : Graph.t -> keep:(Graph.node -> bool) -> Graph.t
(** The induced subfabric on the kept nodes (ports and names
    preserved, node ids renumbered densely). *)

val candidates : Fuzz_gen.case -> (unit -> Fuzz_gen.case) list
(** One-step reductions of the case, biggest first. *)

val shrink :
  fails:(Fuzz_gen.case -> bool) ->
  budget:int ->
  Fuzz_gen.case ->
  Fuzz_gen.case * int
(** [shrink ~fails ~budget case] greedily minimizes [case]; returns
    the local minimum and the number of predicate evaluations spent.
    [case] itself is assumed to fail. *)
