(** The fuzz driver: generate cases, run the property suite, shrink
    every failure to a minimal counterexample. *)

type failure = {
  f_prop : string;
  f_case_seed : int;  (** replayable: [run_case ~case_seed] *)
  f_error : string;  (** the original (unshrunk) failure *)
  f_shrunk : Fuzz_gen.case;
  f_shrunk_error : string;
  f_shrink_tries : int;
}

type report = {
  r_seed : int;
  r_cases : int;
  r_props : string list;
  r_failures : failure list;
}

val default_shrink_budget : int

val run :
  ?props:string list ->
  ?shrink_budget:int ->
  ?on_progress:(int -> unit) ->
  cases:int ->
  seed:int ->
  unit ->
  report
(** [run ~cases ~seed ()] draws [cases] case seeds from a master
    stream and checks every property on each. [props] restricts the
    suite ({!Props.names}); @raise Invalid_argument on unknown names. *)

val run_case :
  ?props:string list -> ?shrink_budget:int -> case_seed:int -> unit ->
  failure list
(** Replay exactly one case by its seed (the one a counterexample
    report prints). *)

val case_seeds : seed:int -> cases:int -> int list
(** The case seeds [run] would use, for tooling. *)

val dot_of_failure : failure -> string
(** DOT text of the shrunk counterexample fabric. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
