(** Random fabric generation for the property fuzzer.

    Far broader than {!San_topology.Generators}: arbitrary switch
    radices, line/ring/tree/dense skeletons, parallel wires,
    same-switch cables, deliberate switch-bridges into hostless tails
    and cycles (the paper's F set), doubled attachments that must NOT
    land in F, disconnected fragments, and silent (non-responding)
    hosts. Every fourth seed instead draws a tiny {!San_fabric}
    fat-tree with the irregularity knobs on, so the properties also
    face data-center-shaped multipath fabrics. Everything is a
    deterministic function of the case seed, so a counterexample
    replays from one integer. *)

open San_topology

type case = {
  case_seed : int;
  graph : Graph.t;  (** the actual network N *)
  mapper_name : string;  (** host that runs the mapper *)
  silent : string list;  (** attached hosts with no mapper daemon *)
  schedule : (int * San_service.Schedule.action) list;
      (** a generated adversarial schedule (storms, upgrades,
          partitions, flaps — {!San_service.Schedule.gen}), drawn from
          its own seed stream so fabric generation is bit-identical to
          the pre-schedule fuzzer; often empty *)
}

val gen : seed:int -> case
(** Deterministic: same seed, same fabric. *)

val mapper_node : case -> Graph.node option
(** The mapper host resolved in the case's graph; falls back to the
    first (responding) host when the named one was shrunk away. *)

val pp : Format.formatter -> case -> unit
(** One-line description: stats, mapper, silent set. *)
