open San_topology
module Prng = San_util.Prng

(* Everything expensive is computed lazily and shared between
   properties: one Berkeley run serves iso, deadlock, incremental and
   delta; one Myricom run serves agreement and deadlock. *)
type ctx = {
  case : Fuzz_gen.case;
  mapper : Graph.node option;
  responding : Graph.node -> bool;
  eff : Graph.t Lazy.t;
  depth : int Lazy.t;
  berkeley : (Graph.t, string) result Lazy.t;
  myricom : (Graph.t * int, string) result Lazy.t;
  core_exclude : bool array Lazy.t;
  reach_exclude : bool array Lazy.t;
}

(* The graph as the mapper can possibly see it: silent hosts detached
   (their switch port is indistinguishable from a vacancy). *)
let effective_graph (c : Fuzz_gen.case) ~mapper =
  let eff = Graph.copy c.graph in
  List.iter
    (fun name ->
      match Graph.host_by_name eff name with
      | Some h when Some h <> mapper -> Graph.disconnect eff (h, 0)
      | _ -> ())
    c.silent;
  eff

let make (case : Fuzz_gen.case) =
  let g = case.graph in
  let mapper = Fuzz_gen.mapper_node case in
  let silent = Hashtbl.create 8 in
  List.iter (fun n -> Hashtbl.replace silent n ()) case.silent;
  let responding n =
    Some n = mapper || not (Hashtbl.mem silent (Graph.name g n))
  in
  let eff = lazy (effective_graph case ~mapper) in
  let depth =
    lazy
      (match mapper with
      | None -> 0
      | Some m -> Core_set.search_depth (Lazy.force eff) ~root:m)
  in
  let berkeley =
    lazy
      (match mapper with
      | None -> Error "no mapper host"
      | Some m ->
        let net = San_simnet.Network.create ~responding g in
        let r =
          San_mapper.Berkeley.run
            ~depth:(San_mapper.Berkeley.Fixed (Lazy.force depth))
            net ~mapper:m
        in
        r.San_mapper.Berkeley.map)
  in
  let myricom =
    lazy
      (match mapper with
      | None -> Error "no mapper host"
      | Some m ->
        (* The depth window is a probe-count heuristic (§4.1); widen it
           past any possible depth so the property exercises the
           algorithm's correctness, not the heuristic's probe budget. *)
        let r =
          San_myricom.Myricom.run ~responding
            ~compare_depth_window:(Graph.num_nodes g) g ~mapper:m
        in
        Result.map
          (fun map -> (map, r.San_myricom.Myricom.false_matches))
          r.San_myricom.Myricom.map)
  in
  let reach_exclude =
    lazy
      (let n = Graph.num_nodes g in
       match mapper with
       | None -> Array.make n true
       | Some m ->
         let dist = Analysis.bfs_distances g m in
         Array.init n (fun v ->
             dist.(v) = max_int
             || (Graph.is_host g v && not (responding v))))
  in
  let core_exclude =
    lazy
      (let sep = Core_set.separated_set (Lazy.force eff) in
       let reach = Lazy.force reach_exclude in
       Array.init (Graph.num_nodes g) (fun v -> sep.(v) || reach.(v)))
  in
  { case; mapper; responding; eff; depth; berkeley; myricom;
    core_exclude; reach_exclude }

(* Deterministic fault for the incremental / delta epochs: a random
   switch-to-switch wire of the case's fabric. *)
let fault_link ctx =
  let g = ctx.case.graph in
  let candidates =
    List.filter
      (fun ((a, _), (b, _)) ->
        (not (Graph.is_host g a)) && not (Graph.is_host g b))
      (Graph.wires g)
  in
  match candidates with
  | [] -> None
  | l ->
    let rng = Prng.create (ctx.case.case_seed lxor 0x0FA17) in
    let (e, _) = List.nth l (Prng.int rng (List.length l)) in
    Some e

let run_berkeley_on ctx g' =
  match ctx.mapper with
  | None -> Error "no mapper host"
  | Some m ->
    let mapper_name = Graph.name ctx.case.graph m in
    (match Graph.host_by_name g' mapper_name with
    | None -> Error "mapper host missing from faulted fabric"
    | Some m' ->
      let case' = { ctx.case with Fuzz_gen.graph = g' } in
      let eff' = effective_graph case' ~mapper:(Some m') in
      let depth' = Core_set.search_depth eff' ~root:m' in
      let responding n =
        n = m'
        || not (List.mem (Graph.name g' n) ctx.case.Fuzz_gen.silent)
      in
      let net = San_simnet.Network.create ~responding g' in
      let r =
        San_mapper.Berkeley.run
          ~depth:(San_mapper.Berkeley.Fixed depth') net ~mapper:m'
      in
      r.San_mapper.Berkeley.map)

let exclusion_of ctx g' =
  match ctx.mapper with
  | None -> Array.make (Graph.num_nodes g') true
  | Some m ->
    let mapper_name = Graph.name ctx.case.graph m in
    (match Graph.host_by_name g' mapper_name with
    | None -> Array.make (Graph.num_nodes g') true
    | Some m' ->
      let case' = { ctx.case with Fuzz_gen.graph = g' } in
      let eff' = effective_graph case' ~mapper:(Some m') in
      let sep = Core_set.separated_set eff' in
      let dist = Analysis.bfs_distances g' m' in
      let silent n =
        Graph.is_host g' n
        && n <> m'
        && List.mem (Graph.name g' n) ctx.case.Fuzz_gen.silent
      in
      Array.init (Graph.num_nodes g') (fun v ->
          sep.(v) || dist.(v) = max_int || silent v))

(* ------------------------------------------------------------------ *)
(* The six properties.                                                 *)

(* 1. The Berkeley map is isomorphic to N - F (Theorem 1), with the
   mapper-unreachable region and silent hosts joining F. *)
let prop_iso ctx =
  match ctx.mapper with
  | None -> Ok ()
  | Some _ -> (
    match Lazy.force ctx.berkeley with
    | Error e -> Error ("berkeley export failed: " ^ e)
    | Ok map ->
      Iso.check ~map ~actual:ctx.case.graph
        ~exclude:(Lazy.force ctx.core_exclude) ())

(* 2. UP*/DOWN* routes computed on either algorithm's map have an
   acyclic channel dependency graph, under both labelings. *)
let prop_deadlock ctx =
  let check name map labeling =
    let table = San_routing.Routes.compute ?labeling map in
    match San_routing.Deadlock.check_routes table with
    | Ok () -> Ok ()
    | Error e -> Error (Printf.sprintf "%s: %s" name e)
  in
  let ( >>= ) r f = Result.bind r f in
  (match Lazy.force ctx.berkeley with
  | Error _ -> Ok () (* prop_iso owns mapping failures *)
  | Ok map ->
    check "berkeley/bfs" map None
    >>= fun () -> check "berkeley/dfs" map (Some San_routing.Updown.Dfs))
  >>= fun () ->
  match Lazy.force ctx.myricom with
  | Error _ -> Ok () (* prop_agreement owns myricom failures *)
  | Ok (_, fm) when fm > 0 -> Ok ()
  | Ok (map, _) -> check "myricom/bfs" map None

(* 3. The Myricom map agrees with the actual fabric (and hence, on
   N - F, with the Berkeley map). Myricom does not prune, so its map
   must cover the entire reachable fabric, pendant switches included.
   Runs with comparison matching through coincidental alternative
   paths excepted (a documented weakness, surfaced as
   [false_matches]). *)
let prop_agreement ctx =
  match ctx.mapper with
  | None -> Ok ()
  | Some _ -> (
    match Lazy.force ctx.myricom with
    | Error e -> Error ("myricom export failed: " ^ e)
    | Ok (_, fm) when fm > 0 -> Ok ()
    | Ok (map, _) ->
      Iso.check ~map ~actual:ctx.case.graph
        ~exclude:(Lazy.force ctx.reach_exclude) ())

(* 4. Incremental remap after a fault converges to the same map a
   from-scratch run produces: ~ N' - F'. *)
let prop_incremental ctx =
  match (ctx.mapper, Lazy.force ctx.berkeley) with
  | None, _ | _, Error _ -> Ok ()
  | Some m, Ok previous ->
    let g' =
      match fault_link ctx with
      | None -> Graph.copy ctx.case.graph
      | Some e -> Faults.remove_link ctx.case.graph e
    in
    let mapper_name = Graph.name ctx.case.graph m in
    (match Graph.host_by_name g' mapper_name with
    | None -> Ok ()
    | Some m' ->
      let responding n =
        n = m'
        || not (List.mem (Graph.name g' n) ctx.case.Fuzz_gen.silent)
      in
      let net = San_simnet.Network.create ~responding g' in
      let r = San_mapper.Incremental.run net ~mapper:m' ~previous in
      (match r.San_mapper.Incremental.map with
      | Error e -> Error ("incremental map failed: " ^ e)
      | Ok map ->
        (match
           Iso.check ~map ~actual:g' ~exclude:(exclusion_of ctx g') ()
         with
        | Ok () -> Ok ()
        | Error e -> Error ("incremental map not iso to N'-F': " ^ e))))

(* 5. Delta distribution over an installed ledger ends with exactly the
   tables a full redistribution would install. *)
let prop_delta ctx =
  match (ctx.mapper, Lazy.force ctx.berkeley) with
  | None, _ | _, Error _ -> Ok ()
  | Some m, Ok map0 ->
    let mapper_name = Graph.name ctx.case.graph m in
    let module Delta = San_service.Delta in
    let distribute ~installed map =
      match Graph.host_by_name map mapper_name with
      | None -> Error "leader missing from map"
      | Some leader ->
        let table = San_routing.Routes.compute map in
        (match Delta.distribute ~installed table ~actual:map ~leader with
        | Error e -> Error ("distribute failed: " ^ e)
        | Ok r -> Ok (table, r))
    in
    let check_ledger table (r : Delta.report) =
      if r.Delta.dist.San_routing.Distribute.hosts_missed > 0 then Ok ()
        (* contention losses are Distribute's own test surface *)
      else if r.Delta.sent_bytes > r.Delta.full_sent_bytes then
        Error
          (Printf.sprintf "delta shipped %dB > full %dB" r.Delta.sent_bytes
             r.Delta.full_sent_bytes)
      else
        let want = Delta.of_routes table in
        let bad =
          List.find_opt
            (fun h ->
              Delta.entries_for r.Delta.installed h <> Delta.entries_for want h)
            (Delta.hosts want)
        in
        match bad with
        | None -> Ok ()
        | Some h ->
          Error
            (Printf.sprintf
               "host %s: installed table differs from a full redistribution" h)
    in
    (match distribute ~installed:San_service.Delta.empty map0 with
    | Error e -> Error ("epoch 1: " ^ e)
    | Ok (table1, r1) -> (
      match check_ledger table1 r1 with
      | Error e -> Error ("epoch 1: " ^ e)
      | Ok () -> (
        (* Epoch 2: fault, remap, delta-distribute over the ledger. *)
        let g' =
          match fault_link ctx with
          | None -> Graph.copy ctx.case.graph
          | Some e -> Faults.remove_link ctx.case.graph e
        in
        match run_berkeley_on ctx g' with
        | Error _ -> Ok () (* prop_incremental owns post-fault mapping *)
        | Ok map1 -> (
          match
            distribute ~installed:r1.San_service.Delta.installed map1
          with
          | Error e -> Error ("epoch 2: " ^ e)
          | Ok (table2, r2) -> (
            match check_ledger table2 r2 with
            | Error e -> Error ("epoch 2: " ^ e)
            | Ok () -> Ok ())))))

(* 6. Per-channel fabric accounting conserves transits under an
   all-pairs storm: every acquired hop lands on exactly one channel. *)
let prop_conservation ctx =
  let g = ctx.case.graph in
  let table = San_routing.Routes.compute g in
  let fabric = San_telemetry.Fabric_stats.create () in
  let sim = San_simnet.Event_sim.create ~fabric g in
  List.iter
    (fun (src, _, turns) ->
      ignore
        (San_simnet.Event_sim.inject sim ~at_ns:0.0 ~src ~turns
           ~payload_bytes:4096 ()))
    (San_routing.Routes.all table);
  San_simnet.Event_sim.run sim;
  let st = San_simnet.Event_sim.stats sim in
  let transits = San_telemetry.Fabric_stats.total_transits fabric in
  if st.San_simnet.Event_sim.in_flight <> 0 then
    Error
      (Printf.sprintf "storm did not drain: %d worms in flight"
         st.San_simnet.Event_sim.in_flight)
  else if transits <> st.San_simnet.Event_sim.hops_acquired then
    Error
      (Printf.sprintf "transit conservation: channels saw %d, worms acquired %d"
         transits st.San_simnet.Event_sim.hops_acquired)
  else Ok ()

(* 7. Provenance: with the ledger on, every entry cites strictly
   earlier entries (the justification DAG is acyclic by construction,
   so we check the construction held), probe citations point at probe
   entries, and every replicate merge resolves to a justification tree
   with at least one probe that actually ran at its leaves. *)
let prop_provenance ctx =
  match ctx.mapper with
  | None -> Ok ()
  | Some m ->
    let module Why = San_why.Why in
    Why.set_enabled true;
    let snap =
      Fun.protect
        ~finally:(fun () -> Why.set_enabled false)
        (fun () ->
          let net =
            San_simnet.Network.create ~responding:ctx.responding ctx.case.graph
          in
          ignore
            (San_mapper.Berkeley.run
               ~depth:(San_mapper.Berkeley.Fixed (Lazy.force ctx.depth))
               net ~mapper:m
              : San_mapper.Berkeley.result);
          Why.capture ())
    in
    let structural =
      List.fold_left
        (fun acc (did, e) ->
          match (acc, e) with
          | Error _, _ -> acc
          | Ok (), Why.Deduced { probes; deps; _ } ->
            if List.exists (fun p -> p < 0 || p >= did) (probes @ deps) then
              Error (Printf.sprintf "d%d cites a non-earlier entry" did)
            else if
              List.exists
                (fun p ->
                  match Why.entry snap p with
                  | Some (Why.Probe _) -> false
                  | _ -> true)
                probes
            then
              Error
                (Printf.sprintf "d%d cites a non-probe as probe evidence" did)
            else Ok ()
          | Ok (), _ -> Ok ())
        (Ok ()) (Why.entries snap)
    in
    (match structural with
    | Error _ as e -> e
    | Ok () ->
      let memo = Hashtbl.create 256 in
      let rec has_probe did =
        match Hashtbl.find_opt memo did with
        | Some r -> r
        | None ->
          let r =
            match Why.entry snap did with
            | Some (Why.Probe _) -> true
            | Some (Why.Axiom _) | None -> false
            | Some (Why.Deduced { probes; deps; _ }) ->
              probes <> [] || List.exists has_probe deps
          in
          Hashtbl.add memo did r;
          r
      in
      let bad =
        List.find_opt
          (fun (mr : Why.merge_rec) ->
            mr.Why.m_did < 0 || not (has_probe mr.Why.m_did))
          (Why.merges snap)
      in
      match bad with
      | None -> Ok ()
      | Some mr ->
        Error
          (Printf.sprintf
             "merge v%d <- v%d (d%d) has no probe evidence in its \
              justification tree"
             mr.Why.kept mr.Why.absorbed mr.Why.m_did))

(* 8. Sharded mapping agrees with the solo mapper: for every shard
   count, the conflict-resolved union of the per-shard views is
   isomorphic to the same N - F the single Berkeley mapper produces,
   and no view is dropped (quiescent shards never contradict). *)
let prop_shard_agreement ctx =
  match ctx.mapper with
  | None -> Ok ()
  | Some m -> (
    let g = ctx.case.graph in
    let eligible =
      match Graph.wired_ports g m with
      | (_, (s, _)) :: _ -> not (Graph.is_host g s)
      | [] -> false
    in
    if not eligible then Ok () (* the planner declares such mappers out *)
    else
      match Lazy.force ctx.berkeley with
      | Error _ -> Ok () (* prop_iso owns mapping failures *)
      | Ok _ ->
        List.fold_left
          (fun acc shards ->
            match acc with
            | Error _ -> acc
            | Ok () -> (
              match
                San_shard.Runner.run ~seed:ctx.case.case_seed ~root:m
                  ~responding:ctx.responding g ~shards
              with
              | Error e ->
                Error (Printf.sprintf "%d shards: plan failed: %s" shards e)
              | Ok r -> (
                if r.San_shard.Runner.dropped_views <> [] then
                  Error
                    (Printf.sprintf
                       "%d shards: merge dropped views %s on a quiescent run"
                       shards
                       (String.concat ","
                          (List.map string_of_int
                             r.San_shard.Runner.dropped_views)))
                else
                  match r.San_shard.Runner.map with
                  | Error e ->
                    Error
                      (Printf.sprintf "%d shards: merge failed: %s" shards e)
                  | Ok merged -> (
                    match
                      Iso.check ~map:merged ~actual:g
                        ~exclude:(Lazy.force ctx.core_exclude) ()
                    with
                    | Ok () -> Ok ()
                    | Error e ->
                      Error
                        (Printf.sprintf "%d shards: merged map not iso: %s"
                           shards e)))))
          (Ok ())
          [ 1; 2; 4; 8 ])

(* 9. Mapping under live background load agrees with quiescent
   mapping. The case's generated schedule batters a World for a few
   epochs (storms, upgrades, partitions, flaps); on whatever fabric
   survives, a quiescent Berkeley map is the reference, and a second
   run whose probes contend with measured background traffic — the
   per-crossing loss a driven load window produced, with the §6
   retries defence on — must export an isomorphic map. Windows whose
   measured loss exceeds what [retries = 2] provably absorbs (the 8%
   tolerance of the extension tests, halved for margin) are skipped,
   not failed: past that point disagreement is expected, which is
   exactly what the daemon's Degraded state is for. *)
let prop_load_agreement ctx =
  match ctx.mapper with
  | None -> Ok ()
  | Some m ->
    let module World = San_service.World in
    let module Schedule = San_service.Schedule in
    let module Load = San_slo.Load in
    let seed = ctx.case.case_seed in
    let leader = Graph.name ctx.case.graph m in
    let world = World.create ctx.case.graph in
    let srng = Prng.create (seed lxor 0x10AD5) in
    let sched = Schedule.of_list ctx.case.schedule in
    (* Run past the last scheduled epoch so deferred repairs (flap
       restores, upgrade re-plugs) have landed and the fabric is
       steady again. *)
    for epoch = 1 to Schedule.last_epoch sched + 9 do
      ignore (Schedule.apply sched world ~rng:srng ~leader ~epoch)
    done;
    let g' = World.graph world in
    let killed =
      List.filter_map
        (fun h ->
          let n = Graph.name g' h in
          if World.is_down world n then Some n else None)
        (Graph.hosts g')
    in
    let case' =
      { ctx.case with
        Fuzz_gen.graph = g';
        silent = ctx.case.Fuzz_gen.silent @ killed }
    in
    let ctx' = make case' in
    (match (ctx'.mapper, Lazy.force ctx'.berkeley) with
    | None, _ -> Ok () (* the schedule silenced everyone *)
    | _, Error _ -> Ok () (* quiescent failures are prop_iso territory *)
    | Some m', Ok quiescent ->
      match
        Iso.check ~map:quiescent ~actual:g'
          ~exclude:(Lazy.force ctx'.core_exclude) ()
      with
      | Error _ -> Ok () (* ditto: not a load bug *)
      | Ok () ->
        let table = San_routing.Routes.compute quiescent in
        let report =
          Load.drive
            ~rng:(Prng.create (seed lxor 0x10AD5 lxor 0xFF))
            (Load.spec ~pattern:Load.Hotspot 0.5)
            ~table g'
        in
        if report.Load.r_loss_per_crossing > 0.04 then Ok ()
        else
          let traffic =
            Load.traffic_of_report report
              (Prng.create (seed lxor 0x7AFF1C))
          in
          let net =
            San_simnet.Network.create ~responding:ctx'.responding ?traffic
              g'
          in
          let r =
            San_mapper.Berkeley.run
              ~policy:{ San_mapper.Berkeley.faithful with retries = 2 }
              ~depth:(San_mapper.Berkeley.Fixed (Lazy.force ctx'.depth))
              net ~mapper:m'
          in
          (match r.San_mapper.Berkeley.map with
          | Error e ->
            Error
              (Printf.sprintf
                 "loaded map export failed (loss %.4f/crossing): %s"
                 report.Load.r_loss_per_crossing e)
          | Ok loaded -> (
            match
              Iso.check ~map:loaded ~actual:g'
                ~exclude:(Lazy.force ctx'.core_exclude) ()
            with
            | Ok () -> Ok ()
            | Error e ->
              Error
                (Printf.sprintf
                   "map under load (loss %.4f/crossing, drop %.3f) \
                    disagrees with quiescent map: %s"
                   report.Load.r_loss_per_crossing
                   report.Load.r_drop_rate e))))

(* 10. Route tables are a pure function of the fabric: two
   computations yield byte-identical tables (no hidden rng in the
   default path — spreading is the explicit [?rng] opt-in), and the
   serving plane reproduces the table entry for entry. *)
let prop_routes_deterministic ctx =
  let g = ctx.case.Fuzz_gen.graph in
  let module R = San_routing.Routes in
  let t1 = R.compute g and t2 = R.compute g in
  if R.all t1 <> R.all t2 then
    Error "two route computations differ on one fabric"
  else begin
    let serve = San_routing.Serve.create g in
    let disagree =
      List.filter_map
        (fun (src, dst, turns) ->
          match San_routing.Serve.lookup serve ~src ~dst with
          | Some t when t = turns -> None
          | _ -> Some (src, dst))
        (R.all t1)
    in
    match disagree with
    | [] -> Ok ()
    | (s, d) :: more ->
      Error
        (Printf.sprintf "served route differs from table at (%d,%d) (+%d more)"
           s d (List.length more))
  end

(* 11. A budget-stopped partial map embeds in N - F: San_cover's
   re-walk check must pass on whatever prefix of the exploration the
   budget bought (the Guillemin-Robert subgraph guarantee holds at
   every stopping point, not just at completion), every confidence
   score stays in [0, 1], and the spend respects the documented
   overshoot bound — the budget gates whole explorations, so it can
   run over by at most one exploration plus the always-exempt turn-0
   root-confirmation probe. *)
let prop_partial_subgraph ctx =
  match ctx.mapper with
  | None -> Ok ()
  | Some m -> (
    match Lazy.force ctx.berkeley with
    | Error _ -> Ok () (* prop_iso owns full-map failures *)
    | Ok _ ->
      let g = ctx.case.graph in
      let frac = if ctx.case.case_seed land 1 = 0 then 0.3 else 0.6 in
      let net = San_simnet.Network.create ~responding:ctx.responding g in
      match
        San_cover.Cover.run
          ~depth:(San_mapper.Berkeley.Fixed (Lazy.force ctx.depth))
          ~record_trace:false
          ~effective:(Lazy.force ctx.eff)
          ~budget:(San_cover.Cover.Frac frac) net ~mapper:m
      with
      | Error e -> Error ("cover run failed: " ^ e)
      | Ok rep -> (
        match rep.San_cover.Cover.r_subgraph with
        | Error e ->
          Error
            (Printf.sprintf "budget %g: partial map does not embed in N - F: %s"
               frac e)
        | Ok () ->
          let retries = San_mapper.Berkeley.faithful.San_mapper.Berkeley.retries in
          (* One exploration (2(radix-1) turns, two probes per turn,
             retried) plus the exempt turn-0 root confirmation. *)
          let overshoot =
            (4 * (Graph.radix g - 1) * (1 + retries)) + (1 + retries)
          in
          let limit = rep.San_cover.Cover.r_probe_limit + overshoot in
          if rep.San_cover.Cover.r_probes_used > limit then
            Error
              (Printf.sprintf
                 "budget %g: spent %d probes, over the %d limit + %d overshoot \
                  bound"
                 frac rep.San_cover.Cover.r_probes_used
                 rep.San_cover.Cover.r_probe_limit overshoot)
          else
            let bad_conf =
              List.find_opt
                (fun (e : San_cover.Cover.element) ->
                  e.San_cover.Cover.el_conf < 0.0
                  || e.San_cover.Cover.el_conf > 1.0
                  || Float.is_nan e.San_cover.Cover.el_conf)
                (San_cover.Cover.elements rep)
            in
            (match bad_conf with
            | Some e ->
              Error
                (Printf.sprintf "element %s has confidence %g outside [0, 1]"
                   e.San_cover.Cover.el_label e.San_cover.Cover.el_conf)
            | None -> Ok ())))

(* ------------------------------------------------------------------ *)

let all =
  [
    ("iso", prop_iso);
    ("deadlock", prop_deadlock);
    ("agreement", prop_agreement);
    ("incremental", prop_incremental);
    ("delta", prop_delta);
    ("conservation", prop_conservation);
    ("provenance", prop_provenance);
    ("shard_agreement", prop_shard_agreement);
    ("load_agreement", prop_load_agreement);
    ("routes_deterministic", prop_routes_deterministic);
    ("partial_subgraph", prop_partial_subgraph);
  ]

let names = List.map fst all

let find name = List.assoc_opt name all

(* Exceptions are counterexamples too: a property must never crash on
   a fabric the generator can produce. *)
let run name case =
  match find name with
  | None -> invalid_arg ("San_check.Props.run: unknown property " ^ name)
  | Some f -> (
    let ctx = make case in
    try f ctx with
    | exn -> Error ("exception: " ^ Printexc.to_string exn))
