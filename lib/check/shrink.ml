open San_topology

(* Rebuild g restricted to the kept nodes, preserving port numbers,
   radix and names, so the shrunk fabric is a true subfabric and every
   port-sensitive bug survives the shrink. *)
let subgraph g ~keep =
  let ng = Graph.create ~radix:(Graph.radix g) () in
  let map = Hashtbl.create 64 in
  List.iter
    (fun v ->
      if keep v then
        let nv =
          match Graph.kind g v with
          | Graph.Host -> Graph.add_host ng ~name:(Graph.name g v)
          | Graph.Switch -> Graph.add_switch ng ~name:(Graph.name g v) ()
        in
        Hashtbl.replace map v nv)
    (Graph.nodes g);
  List.iter
    (fun ((a, pa), (b, pb)) ->
      match (Hashtbl.find_opt map a, Hashtbl.find_opt map b) with
      | Some a', Some b' -> Graph.connect ng (a', pa) (b', pb)
      | _ -> ())
    (Graph.wires g);
  ng

let restrict_silent graph silent =
  List.filter (fun n -> Graph.host_by_name graph n <> None) silent

let drop_node (c : Fuzz_gen.case) v =
  let graph = subgraph c.Fuzz_gen.graph ~keep:(fun u -> u <> v) in
  { c with Fuzz_gen.graph; silent = restrict_silent graph c.Fuzz_gen.silent }

let drop_wire (c : Fuzz_gen.case) (e, _) =
  let graph = Graph.copy c.Fuzz_gen.graph in
  Graph.disconnect graph e;
  { c with Fuzz_gen.graph }

let unsilence (c : Fuzz_gen.case) name =
  { c with Fuzz_gen.silent = List.filter (( <> ) name) c.Fuzz_gen.silent }

let drop_schedule_entry (c : Fuzz_gen.case) i =
  { c with
    Fuzz_gen.schedule =
      List.filteri (fun j _ -> j <> i) c.Fuzz_gen.schedule }

(* Reduction moves, biggest first: drop a schedule entry (cheapest to
   re-check and often the whole cause under load properties), drop a
   switch (and all its wires), drop a host, drop a single wire, wake a
   silent host. *)
let candidates (c : Fuzz_gen.case) =
  let g = c.Fuzz_gen.graph in
  List.mapi (fun i _ () -> drop_schedule_entry c i) c.Fuzz_gen.schedule
  @ List.map (fun s () -> drop_node c s) (Graph.switches g)
  @ List.map (fun h () -> drop_node c h) (Graph.hosts g)
  @ List.map (fun w () -> drop_wire c w) (Graph.wires g)
  @ List.map (fun n () -> unsilence c n) c.Fuzz_gen.silent

(* Greedy: take the first candidate that still fails and restart from
   it; stop at a local minimum or when the budget runs out. *)
let shrink ~fails ~budget case =
  let tries = ref 0 in
  let rec go case =
    let rec first = function
      | [] -> case
      | cand :: rest ->
        if !tries >= budget then case
        else begin
          incr tries;
          let c = cand () in
          if fails c then go c else first rest
        end
    in
    first (candidates case)
  in
  let shrunk = go case in
  (shrunk, !tries)
