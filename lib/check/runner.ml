open San_topology

type failure = {
  f_prop : string;
  f_case_seed : int;
  f_error : string;
  f_shrunk : Fuzz_gen.case;
  f_shrunk_error : string;
  f_shrink_tries : int;
}

type report = {
  r_seed : int;
  r_cases : int;
  r_props : string list;
  r_failures : failure list;
}

let default_shrink_budget = 400

let validate_props = function
  | None -> Props.names
  | Some ps ->
    List.iter
      (fun p ->
        if Props.find p = None then
          invalid_arg
            (Printf.sprintf "unknown property %s (have: %s)" p
               (String.concat ", " Props.names)))
      ps;
    ps

let check_case ~props case =
  List.filter_map
    (fun name ->
      match Props.run name case with
      | Ok () -> None
      | Error e -> Some (name, e))
    props

let shrink_failure ~shrink_budget case (name, error) =
  let fails c = Result.is_error (Props.run name c) in
  let shrunk, tries = Shrink.shrink ~fails ~budget:shrink_budget case in
  let shrunk_error =
    match Props.run name shrunk with Error e -> e | Ok () -> error
  in
  {
    f_prop = name;
    f_case_seed = case.Fuzz_gen.case_seed;
    f_error = error;
    f_shrunk = shrunk;
    f_shrunk_error = shrunk_error;
    f_shrink_tries = tries;
  }

let run_case ?props ?(shrink_budget = default_shrink_budget) ~case_seed () =
  let props = validate_props props in
  let case = Fuzz_gen.gen ~seed:case_seed in
  List.map (shrink_failure ~shrink_budget case) (check_case ~props case)

(* Case seeds are drawn from a master SplitMix stream, so any failing
   case replays from its own printed seed, independently of --cases. *)
let case_seeds ~seed ~cases =
  let master = San_util.Prng.create seed in
  List.init cases (fun _ ->
      Int64.to_int
        (Int64.logand (San_util.Prng.next_int64 master) 0x3FFFFFFFFFFFFFFFL))

let run ?props ?(shrink_budget = default_shrink_budget) ?on_progress ~cases
    ~seed () =
  let props = validate_props props in
  let failures = ref [] in
  List.iteri
    (fun i case_seed ->
      Option.iter (fun f -> f i) on_progress;
      let case = Fuzz_gen.gen ~seed:case_seed in
      List.iter
        (fun failure ->
          failures := shrink_failure ~shrink_budget case failure :: !failures)
        (check_case ~props case))
    (case_seeds ~seed ~cases);
  { r_seed = seed; r_cases = cases; r_props = props;
    r_failures = List.rev !failures }

(* ------------------------------------------------------------------ *)

let dot_of_failure f = Dot.to_string ~graph_name:"counterexample" f.f_shrunk.Fuzz_gen.graph

let pp_failure ppf f =
  Format.fprintf ppf
    "@[<v>property %s FAILED on case seed %d@,\
     error: %s@,\
     shrunk (%d predicate calls): %a@,\
     shrunk error: %s@,\
     replay: san_map fuzz --replay %d --prop %s@]"
    f.f_prop f.f_case_seed f.f_error f.f_shrink_tries Fuzz_gen.pp f.f_shrunk
    f.f_shrunk_error f.f_case_seed f.f_prop

let pp_report ppf r =
  Format.fprintf ppf "fuzz: %d cases from seed %d over [%s]: " r.r_cases
    r.r_seed
    (String.concat " " r.r_props);
  match r.r_failures with
  | [] -> Format.fprintf ppf "all properties held@."
  | fs ->
    Format.fprintf ppf "%d counterexample(s)@." (List.length fs);
    List.iter (fun f -> Format.fprintf ppf "%a@." pp_failure f) fs
