open San_topology
module Prng = San_util.Prng

type case = {
  case_seed : int;
  graph : Graph.t;
  mapper_name : string;
  silent : string list;
  schedule : (int * San_service.Schedule.action) list;
}

(* ------------------------------------------------------------------ *)
(* Random wiring helpers. All of them degrade to no-ops when ports run
   out: a generated fabric is whatever fit, never an exception. *)

let random_free_port rng g n =
  match Graph.free_ports g n with
  | [] -> None
  | l -> Some (List.nth l (Prng.int rng (List.length l)))

(* Wire a and b at random free ports; same-switch cables pick two
   distinct ports. Returns whether a wire was actually added. *)
let wire rng g a b =
  if a <> b then
    match (random_free_port rng g a, random_free_port rng g b) with
    | Some pa, Some pb ->
      Graph.connect g (a, pa) (b, pb);
      true
    | _ -> false
  else
    match Graph.free_ports g a with
    | pa :: (_ :: _ as rest) ->
      let pb = List.nth rest (Prng.int rng (List.length rest)) in
      Graph.connect g (a, pa) (a, pb);
      ignore pa;
      true
    | _ -> false

let attach_host rng g sw ~name =
  match random_free_port rng g sw with
  | None -> None
  | Some p ->
    let h = Graph.add_host g ~name in
    Graph.connect g (h, 0) (sw, p);
    Some h

(* A switch of the given array with at least one free port, or None. *)
let roomy rng g sw =
  let candidates =
    Array.to_list sw |> List.filter (fun s -> Graph.free_ports g s <> [])
  in
  match candidates with
  | [] -> None
  | l -> Some (List.nth l (Prng.int rng (List.length l)))

(* ------------------------------------------------------------------ *)
(* Generation: a connected skeleton carrying the hosts, then
   decorations aimed at the tail topologies probe-based discovery is
   known to bias against — pendant hostless switch chains and cycles
   behind bridges, doubled attachments, same-switch cables,
   disconnected fragments, silent hosts. *)

type shape = Line | Ring | Tree | Dense

(* Silent hosts: attached but not running a mapper daemon. Keep at
   least two responding so the mapper has someone to talk to. *)
let pick_silent rng host_names =
  match host_names with
  | _ :: _ :: rest when rest <> [] && Prng.int rng 3 = 0 ->
    List.filter (fun _ -> Prng.int rng 3 = 0) rest
  | _ -> []

(* Every fourth raw seed exercises the San_fabric generator instead of
   the decorated skeletons below, so the San_check properties also run
   against data-center-shaped multipath fabrics — tiny fat-trees with
   the irregularity knobs on. The branch is decided on the seed before
   any draw, leaving the other three quarters of the case streams
   bit-identical to what they generated before fabrics existed. *)
let gen_fabric ~seed =
  let rng = Prng.create seed in
  let levels = Prng.int_in rng 2 3 in
  let radix = Prng.int_in rng 4 6 in
  let hosts_per_edge = Prng.int_in rng 1 (min 3 (radix - 2)) in
  let edge_switches = Prng.int_in rng 2 6 in
  let spec =
    {
      San_fabric.Fabric.levels;
      radix;
      edge_switches;
      hosts_per_edge;
      oversub = (if Prng.bool rng then 1.0 else 2.0);
      trim_uplinks = (if Prng.int rng 3 = 0 then 0.15 else 0.0);
      missing_spines = (if Prng.int rng 4 = 0 then 0.25 else 0.0);
      hetero_radix = (if Prng.int rng 3 = 0 then 0.3 else 0.0);
    }
  in
  let g = San_fabric.Fabric.build ~seed spec in
  let host_names = List.map (Graph.name g) (Graph.hosts g) in
  let silent = pick_silent rng host_names in
  let responding =
    List.filter (fun n -> not (List.mem n silent)) host_names
  in
  let mapper_name =
    match responding with
    | [] -> ""
    | l -> List.nth l (Prng.int rng (List.length l))
  in
  { case_seed = seed; graph = g; mapper_name; silent; schedule = [] }

let gen_classic ~seed =
  let rng = Prng.create seed in
  let radix = Prng.int_in rng 3 10 in
  let g = Graph.create ~radix () in
  let host_counter = ref 0 in
  let fresh_host_name () =
    let n = Printf.sprintf "h%d" !host_counter in
    incr host_counter;
    n
  in
  let nsw = Prng.int_in rng 1 7 in
  let sw =
    Array.init nsw (fun i -> Graph.add_switch g ~name:(Printf.sprintf "s%d" i) ())
  in
  let shape =
    Prng.choose rng [| Line; Ring; Tree; Dense |]
  in
  (* Skeleton: always connected. *)
  (match shape with
  | Line | Ring ->
    for i = 0 to nsw - 2 do
      ignore (wire rng g sw.(i) sw.(i + 1))
    done;
    if shape = Ring && nsw > 2 then ignore (wire rng g sw.(nsw - 1) sw.(0))
  | Tree | Dense ->
    for i = 1 to nsw - 1 do
      ignore (wire rng g sw.(i) sw.(Prng.int rng i))
    done);
  (* Two hosts before anything else can exhaust the ports. *)
  let hosts_placed = ref 0 in
  let place_host () =
    match roomy rng g sw with
    | None -> ()
    | Some s ->
      if attach_host rng g s ~name:(fresh_host_name ()) <> None then
        incr hosts_placed
  in
  place_host ();
  place_host ();
  (* Extra links: parallel wires and same-switch cables included. *)
  let extra = if shape = Dense then Prng.int_in rng 1 4 else Prng.int_in rng 0 2 in
  for _ = 1 to extra do
    let a = sw.(Prng.int rng nsw) in
    let b =
      if Prng.int rng 8 = 0 then a (* same-switch cable *)
      else sw.(Prng.int rng nsw)
    in
    ignore (wire rng g a b)
  done;
  (* More hosts. *)
  for _ = 1 to Prng.int_in rng 0 4 do
    place_host ()
  done;
  (* Decoration: pendant hostless tail (a switch-bridge into F). *)
  if Prng.int rng 3 = 0 then begin
    match roomy rng g sw with
    | None -> ()
    | Some anchor ->
      let len = Prng.int_in rng 1 2 in
      let prev = ref anchor in
      for i = 0 to len - 1 do
        let t = Graph.add_switch g ~name:(Printf.sprintf "t%d-%d" seed i) () in
        if wire rng g !prev t then prev := t
      done;
      (* Sometimes a same-switch cable inside the tail. *)
      if Prng.int rng 3 = 0 then ignore (wire rng g !prev !prev)
  end;
  (* Decoration: pendant hostless cycle behind a single bridge. *)
  if Prng.int rng 4 = 0 then begin
    match roomy rng g sw with
    | None -> ()
    | Some anchor ->
      let c =
        Array.init 3 (fun i ->
            Graph.add_switch g ~name:(Printf.sprintf "c%d-%d" seed i) ())
      in
      if wire rng g anchor c.(0) then begin
        ignore (wire rng g c.(0) c.(1));
        ignore (wire rng g c.(1) c.(2));
        ignore (wire rng g c.(2) c.(0))
      end
  end;
  (* Decoration: a second, independent tail (two bridge-separated
     fragments — the Iso ~exclude union case). *)
  if Prng.int rng 4 = 0 then begin
    match roomy rng g sw with
    | None -> ()
    | Some anchor ->
      let t = Graph.add_switch g ~name:(Printf.sprintf "u%d" seed) () in
      ignore (wire rng g anchor t)
  end;
  (* Decoration: hostless neighbour attached by two parallel wires
     (deliberately NOT a bridge: must stay in the map). *)
  if Prng.int rng 4 = 0 then begin
    match roomy rng g sw with
    | None -> ()
    | Some anchor ->
      let d = Graph.add_switch g ~name:(Printf.sprintf "d%d" seed) () in
      if wire rng g anchor d then ignore (wire rng g anchor d)
  end;
  (* Decoration: disconnected fragment, sometimes hosted. *)
  if Prng.int rng 4 = 0 then begin
    let n = Prng.int_in rng 1 3 in
    let f =
      Array.init n (fun i ->
          Graph.add_switch g ~name:(Printf.sprintf "f%d-%d" seed i) ())
    in
    for i = 1 to n - 1 do
      ignore (wire rng g f.(i) f.(Prng.int rng i))
    done;
    if n = 3 && Prng.bool rng then ignore (wire rng g f.(2) f.(0));
    if Prng.bool rng then
      ignore (attach_host rng g f.(Prng.int rng n) ~name:(fresh_host_name ()))
  end;
  let hosts = Graph.hosts g in
  let host_names = List.map (Graph.name g) hosts in
  let silent = pick_silent rng host_names in
  (* Mapper: a responding host of the skeleton (the first two hosts
     placed always hang off the skeleton). *)
  let responding =
    List.filter (fun n -> not (List.mem n silent)) host_names
  in
  let mapper_name =
    match responding with
    | [] -> "" (* degenerate: no host fit; properties skip *)
    | l -> List.nth l (Prng.int rng (List.length l))
  in
  { case_seed = seed; graph = g; mapper_name; silent; schedule = [] }

(* The adversarial schedule draws from its own stream (the fault_link
   idiom: seed lxor a constant), so adding schedules left every
   existing fabric stream bit-identical — old counterexample seeds
   still replay the same fabrics. *)
let gen ~seed =
  let case =
    if abs seed mod 4 = 3 then gen_fabric ~seed else gen_classic ~seed
  in
  let srng = Prng.create (seed lxor 0x5CED) in
  { case with schedule = San_service.Schedule.gen ~rng:srng ~epochs:6 }

(* ------------------------------------------------------------------ *)

let mapper_node c =
  match Graph.host_by_name c.graph c.mapper_name with
  | Some h -> Some h
  | None -> (
    (* After shrinking the named host may be gone: fall back to the
       first host still responding, then to any host. *)
    let silent n = List.mem (Graph.name c.graph n) c.silent in
    match List.filter (fun h -> not (silent h)) (Graph.hosts c.graph) with
    | h :: _ -> Some h
    | [] -> ( match Graph.hosts c.graph with h :: _ -> Some h | [] -> None))

let pp ppf c =
  let mapper =
    match mapper_node c with
    | Some h -> Graph.name c.graph h
    | None -> "<none>"
  in
  Format.fprintf ppf "case %d: %a; mapper %s%s%s" c.case_seed Graph.pp_stats
    c.graph mapper
    (match c.silent with
    | [] -> ""
    | l -> Printf.sprintf "; silent [%s]" (String.concat " " l))
    (match c.schedule with
    | [] -> ""
    | s ->
      Printf.sprintf "; schedule %s"
        (San_service.Schedule.to_string (San_service.Schedule.of_list s)))
