(** Mergeable streaming quantile digests.

    The same geometric binning as {!San_obs.Metrics} histograms
    ([gamma = 2^(1/8)], ~9% relative resolution, non-positive values in
    a zero bucket), packaged as a first-class value with an {e exact}
    merge: bucket counts add, so the merge of two streams' digests
    equals the digest of their concatenation. Shard runners summarize
    locally and the coordinator composes fleet percentiles without ever
    seeing raw samples. *)

type t

val create : unit -> t
val add : t -> float -> unit
val of_list : float list -> t

val count : t -> int
val sum : t -> float
val is_empty : t -> bool

val merge : t -> t -> t
(** A fresh digest equal to the digest of the concatenated streams.
    Associative and commutative; neither argument is mutated. *)

val merge_into : dst:t -> t -> unit
val merge_all : t list -> t

val quantile : t -> float -> float
(** [quantile t q] for [q] in [0,1]: the geometric midpoint of the
    bucket holding the rank-[q] observation, clamped to the observed
    min/max (identical semantics to {!San_obs.Metrics.quantile_of}).
    0 when empty. *)

val relative_error : float
(** Guaranteed worst-case relative error of [quantile] for positive
    observations: [sqrt gamma - 1] (~4.4%). *)

val of_hist_snapshot : San_obs.Metrics.hist_snapshot -> t
(** Adopt a registry histogram snapshot (e.g. a {!San_obs.Metrics.diff}
    window) as a digest, so existing instruments compose too. *)

val to_json : t -> San_util.Json.t
val of_json : San_util.Json.t -> t option
val pp : Format.formatter -> t -> unit
