(** Background worm load matrices through the event simulator.

    The live-traffic half of the SLO observatory: a load spec shapes a
    traffic matrix (uniform / hotspot / synchronized incast), Poisson
    arrivals at [offered] worms per host per simulated millisecond ride
    the installed route table through {!San_simnet.Event_sim} on the
    actual network, and the resulting attrition is distilled into a
    per-wire-crossing loss probability. Feeding that loss into
    {!San_simnet.Network.create}'s [traffic] model makes mapping probes
    experience the same contention the background worms measured — the
    coupling that lets the daemon remap {e under} load. *)

open San_topology

type pattern =
  | Uniform  (** every routed (src, dst) pair equally likely *)
  | Hotspot  (** half the worms converge on one hot destination *)
  | Incast
      (** all worms target the hot destination, arrivals quantized onto
          100 us burst boundaries — the adversarial worst case *)

val pattern_to_string : pattern -> string
val pattern_of_string : string -> pattern option

type spec = {
  pattern : pattern;
  offered : float;  (** worms per host per simulated millisecond *)
  payload_bytes : int option;
      (** worm length; [None] uses the params' probe payload *)
}

val spec : ?pattern:pattern -> ?payload_bytes:int -> float -> spec
(** [spec offered] builds a uniform spec.
    @raise Invalid_argument on negative load. *)

type report = {
  r_pattern : pattern;
  r_offered : float;
  r_injected : int;
  r_delivered : int;
  r_dropped_reset : int;  (** forward-reset (blocking) casualties *)
  r_dropped_bad_route : int;  (** stale routes that no longer deliver *)
  r_mean_crossings : float;  (** average wires crossed per worm *)
  r_drop_rate : float;
  r_loss_per_crossing : float;
      (** p such that an h-crossing worm survives with (1-p)^h *)
  r_latency : Digest.t;  (** delivery latency digest (ns) *)
  r_sim_ns : float;  (** when the last worm resolved *)
}

val drive :
  ?rng:San_util.Prng.t ->
  ?params:San_simnet.Params.t ->
  ?window_ms:float ->
  spec ->
  table:San_routing.Routes.t ->
  Graph.t ->
  report
(** Run one load window (default 1 simulated ms) over [g], with worms
    riding [table]'s routes translated onto [g] by host name. Routes
    whose endpoints died since the table was computed are skipped.
    Deterministic given [rng]. *)

val traffic_of_report :
  report -> San_util.Prng.t -> (float * San_util.Prng.t) option
(** The measured loss packaged for {!San_simnet.Network.create}'s
    [traffic] argument; [None] when the window saw no loss. *)

val report_to_json : report -> San_util.Json.t
val pp_report : Format.formatter -> report -> unit
