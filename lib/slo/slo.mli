(** Declarative service-level objectives with burn-rate tracking.

    An objective is the sentence an operator writes — ["p99 convergence
    below 200 simulated ms at offered load up to 0.3"], concretely
    ["converge:p99<2e8@0.3"] — and the quantile fixes its error
    budget: p99 tolerates 1% bad epochs. A tracker folds per-epoch
    samples into a sliding window and reports the burn rate, (bad
    fraction among eligible epochs) / budget: burn 1.0 is spending the
    budget exactly, sustained burn above 1.0 raises an ["slo:"-prefixed]
    {!San_obs.Trace.Alert_raised}, and the first observation back under
    1.0 clears it. Burn rates publish as ["slo.<name>.burn_rate"]
    gauges, so they reach the Prometheus exposition with no extra
    plumbing.

    Out-of-contract epochs (offered load above [max_load]) are never
    charged; convergence objectives are charged only on epochs that
    actually resolved an incident. *)

type metric =
  | Converge_ns  (** incident convergence time, simulated ns *)
  | Epoch_ns  (** whole-epoch simulated work *)
  | Drop_rate  (** background-load drop rate *)
  | Coverage  (** fraction of hosts with a current route slice *)

val metric_to_string : metric -> string
val metric_of_string : string -> metric option

type cmp = Below | Above

type objective = private {
  name : string;
  metric : metric;
  quantile : float;
  cmp : cmp;
  limit : float;
  max_load : float;
  window : int;
  for_epochs : int;
}

val objective :
  ?name:string ->
  ?quantile:float ->
  ?max_load:float ->
  ?window:int ->
  ?for_epochs:int ->
  metric:metric ->
  cmp:cmp ->
  float ->
  objective
(** Defaults: p95, any load, 20-epoch window, raise after 2 sustained
    epochs. @raise Invalid_argument on a quantile outside (0,1). *)

val budget : objective -> float
(** The error budget, [1 - quantile]. *)

val parse : string -> (objective, string) result
(** [METRIC:pNN<LIMIT[@MAXLOAD]] (or [>] for lower-bound objectives
    like coverage), e.g. ["converge:p99<2e8@0.3"]. *)

val to_string : objective -> string

val defaults : objective list
(** Loose ship-with objectives: convergence p95, epoch-time p99, drop
    p95 under load, coverage p95. *)

type sample = {
  s_epoch : int;
  s_load : float;
  s_converge_ns : float option;
  s_epoch_ns : float;
  s_drop_rate : float;
  s_coverage : float;
}

type status = {
  st_objective : objective;
  st_eligible : int;
  st_bad : int;
  st_burn_rate : float;
  st_streak : int;
  st_alerting : bool;
}

type t

val create : objective list -> t

val observe : t -> sample -> string list * string list
(** Feed one epoch; returns (raised, cleared) alert names, having
    emitted the trace events and updated the burn-rate gauges. *)

val status : t -> status list
val status_to_json : status list -> San_util.Json.t
val pp_status : Format.formatter -> status -> unit
