(* A mergeable streaming quantile digest.

   Same geometric binning as San_obs.Metrics histograms — buckets at
   gamma^i boundaries with gamma = 2^(1/8) (~9% relative resolution),
   non-positive values in a dedicated zero bucket — packaged as a
   standalone value that composes: bucket counts add, so merging the
   digests of two streams gives exactly the digest of their
   concatenation (min/max and sum are exact too; only the within-bucket
   position of individual observations is forgotten, which is the same
   ~9% relative error a single digest already has). This is what lets
   per-shard percentiles roll up into fleet percentiles without
   shipping raw samples. *)

let gamma = Float.pow 2.0 0.125
let log_gamma = Float.log gamma

type t = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  mutable zero : int;
  buckets : (int, int) Hashtbl.t;
}

let create () =
  {
    count = 0;
    sum = 0.0;
    vmin = infinity;
    vmax = neg_infinity;
    zero = 0;
    buckets = Hashtbl.create 32;
  }

let bucket_of v = int_of_float (Float.floor (Float.log v /. log_gamma))

let add t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v;
  if v <= 0.0 then t.zero <- t.zero + 1
  else
    let b = bucket_of v in
    Hashtbl.replace t.buckets b
      (1 + Option.value ~default:0 (Hashtbl.find_opt t.buckets b))

let of_list vs =
  let t = create () in
  List.iter (add t) vs;
  t

let count t = t.count
let sum t = t.sum
let is_empty t = t.count = 0

let add_bucket t b n =
  if n > 0 then
    Hashtbl.replace t.buckets b
      (n + Option.value ~default:0 (Hashtbl.find_opt t.buckets b))

(* Accumulate [src] into [dst]. Exact: counts add bucket-wise. *)
let merge_into ~dst src =
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum +. src.sum;
  if src.vmin < dst.vmin then dst.vmin <- src.vmin;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax;
  dst.zero <- dst.zero + src.zero;
  Hashtbl.iter (fun b n -> add_bucket dst b n) src.buckets

let merge a b =
  let t = create () in
  merge_into ~dst:t a;
  merge_into ~dst:t b;
  t

let merge_all ds =
  let t = create () in
  List.iter (fun d -> merge_into ~dst:t d) ds;
  t

let sorted_buckets t =
  Hashtbl.fold (fun b n acc -> (b, n) :: acc) t.buckets []
  |> List.sort compare

(* Same answer Metrics.quantile_of gives: rank walk over the zero
   bucket then the sorted log buckets; a bucket answers with its
   geometric midpoint, clamped to the observed extremes. *)
let quantile t q =
  if t.count = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int t.count))) in
    if rank <= t.zero then 0.0
    else begin
      let rec walk seen = function
        | [] -> t.vmax
        | (b, n) :: rest ->
          let seen = seen + n in
          if seen >= rank then Float.pow gamma (float_of_int b +. 0.5)
          else walk seen rest
      in
      let v = walk t.zero (sorted_buckets t) in
      Float.min t.vmax (Float.max t.vmin v)
    end
  end

(* The guaranteed accuracy of [quantile]: a positive observation in
   bucket b lies in (gamma^b, gamma^(b+1)]; the midpoint gamma^(b+0.5)
   is within a factor sqrt(gamma) of any point of the bucket. *)
let relative_error = Float.sqrt gamma -. 1.0

let of_hist_snapshot (hs : San_obs.Metrics.hist_snapshot) =
  let t = create () in
  t.count <- hs.San_obs.Metrics.hs_count;
  t.sum <- hs.hs_sum;
  if hs.hs_count > 0 then begin
    t.vmin <- hs.hs_min;
    t.vmax <- hs.hs_max
  end;
  t.zero <- hs.hs_zero;
  List.iter (fun (b, n) -> add_bucket t b n) hs.hs_buckets;
  t

let to_json t =
  let module J = San_util.Json in
  J.Obj
    [
      ("count", J.int t.count);
      ("sum", J.Num t.sum);
      ("min", J.Num (if t.count = 0 then 0.0 else t.vmin));
      ("max", J.Num (if t.count = 0 then 0.0 else t.vmax));
      ("zero", J.int t.zero);
      ( "buckets",
        J.Arr
          (List.map
             (fun (b, n) -> J.Arr [ J.int b; J.int n ])
             (sorted_buckets t)) );
      ("p50", J.Num (quantile t 0.50));
      ("p95", J.Num (quantile t 0.95));
      ("p99", J.Num (quantile t 0.99));
    ]

let of_json j =
  let module J = San_util.Json in
  let int k = Option.bind (J.member k j) J.to_int in
  let num k = match J.member k j with Some (J.Num f) -> Some f | _ -> None in
  match (int "count", num "sum", num "min", num "max", int "zero") with
  | Some count, Some sum, Some vmin, Some vmax, Some zero ->
    let t = create () in
    t.count <- count;
    t.sum <- sum;
    if count > 0 then begin
      t.vmin <- vmin;
      t.vmax <- vmax
    end;
    t.zero <- zero;
    let buckets =
      match J.member "buckets" j with
      | Some (J.Arr bs) ->
        List.for_all
          (function
            | J.Arr [ b; n ] -> (
              match (J.to_int b, J.to_int n) with
              | Some b, Some n ->
                add_bucket t b n;
                true
              | _ -> false)
            | _ -> false)
          bs
      | _ -> false
    in
    if buckets then Some t else None
  | _ -> None

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "digest(empty)"
  else
    Format.fprintf ppf "digest(n=%d p50=%.3g p95=%.3g p99=%.3g max=%.3g)"
      t.count (quantile t 0.50) (quantile t 0.95) (quantile t 0.99) t.vmax
