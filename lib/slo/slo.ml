(* Declarative convergence SLOs with error-budget burn-rate tracking.

   An objective reads like the sentence an operator would write: "p99
   convergence below 200 simulated ms at offered load up to 0.3". The
   quantile fixes the error budget — p99 tolerates 1% bad epochs — and
   the tracker turns a sliding window of epoch samples into a burn
   rate: (bad fraction among eligible epochs) / budget. Burn 1.0 means
   exactly spending the budget; sustained burn above 1.0 raises an
   alert (Trace.Alert_raised with an "slo:" prefix, like the health
   rules), and the first window back under 1.0 clears it. Burn rates
   are also published as gauges, so the Prometheus exposition carries
   [san_slo_*] series without extra plumbing.

   Epochs louder than [max_load] are out of contract and never charged
   against the budget; convergence objectives are charged only on
   epochs that actually had an incident to converge from (an epoch
   with nothing to detect says nothing about detection speed). *)

type metric = Converge_ns | Epoch_ns | Drop_rate | Coverage

let metric_to_string = function
  | Converge_ns -> "converge"
  | Epoch_ns -> "epoch"
  | Drop_rate -> "drop"
  | Coverage -> "coverage"

let metric_of_string = function
  | "converge" | "converge_ns" -> Some Converge_ns
  | "epoch" | "epoch_ns" -> Some Epoch_ns
  | "drop" | "drop_rate" -> Some Drop_rate
  | "coverage" -> Some Coverage
  | _ -> None

type cmp = Below | Above

type objective = {
  name : string;
  metric : metric;
  quantile : float;  (* the pNN of the sentence; budget = 1 - quantile *)
  cmp : cmp;
  limit : float;
  max_load : float;  (* epochs above this offered load are out of contract *)
  window : int;  (* sliding window, in eligible epochs *)
  for_epochs : int;  (* sustained-burn streak before raising *)
}

let objective ?name ?(quantile = 0.95) ?(max_load = infinity) ?(window = 20)
    ?(for_epochs = 2) ~metric ~cmp limit =
  if quantile <= 0.0 || quantile >= 1.0 then
    invalid_arg "Slo.objective: quantile must be in (0, 1)";
  if window < 1 then invalid_arg "Slo.objective: empty window";
  let name =
    match name with
    | Some n -> n
    | None ->
      Printf.sprintf "%s-p%g" (metric_to_string metric) (quantile *. 100.0)
  in
  { name; metric; quantile; cmp; limit; max_load; window; for_epochs }

let budget o = 1.0 -. o.quantile

(* "converge:p99<2e8@0.3" — METRIC ':' pNN ('<'|'>') LIMIT ['@' MAXLOAD] *)
let parse s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match String.split_on_char ':' (String.trim s) with
  | [ metric_s; rest ] -> (
    match metric_of_string metric_s with
    | None -> fail "unknown SLO metric %S (converge|epoch|drop|coverage)" metric_s
    | Some metric -> (
      let cmp, parts =
        if String.contains rest '<' then (Below, String.split_on_char '<' rest)
        else (Above, String.split_on_char '>' rest)
      in
      match parts with
      | [ q_s; lim_s ] -> (
        let q_s = String.trim q_s in
        if String.length q_s < 2 || q_s.[0] <> 'p' then
          fail "SLO quantile must look like p99, got %S" q_s
        else
          let lim_s, load_s =
            match String.split_on_char '@' lim_s with
            | [ l ] -> (l, None)
            | [ l; ld ] -> (l, Some ld)
            | _ -> (lim_s, None)
          in
          match
            ( float_of_string_opt (String.sub q_s 1 (String.length q_s - 1)),
              float_of_string_opt (String.trim lim_s) )
          with
          | Some pct, Some limit when pct > 0.0 && pct < 100.0 -> (
            let quantile = pct /. 100.0 in
            match Option.map float_of_string_opt (Option.map String.trim load_s) with
            | Some None -> fail "bad max-load in SLO %S" s
            | None ->
              Ok (objective ~quantile ~metric ~cmp limit)
            | Some (Some max_load) ->
              Ok (objective ~quantile ~max_load ~metric ~cmp limit))
          | _ -> fail "bad quantile or limit in SLO %S" s)
      | _ -> fail "SLO %S needs exactly one '<' or '>'" s))
  | _ -> fail "SLO %S is not METRIC:pNN<LIMIT[@MAXLOAD]" s

let to_string o =
  Printf.sprintf "%s:p%g%c%g%s"
    (metric_to_string o.metric)
    (o.quantile *. 100.0)
    (match o.cmp with Below -> '<' | Above -> '>')
    o.limit
    (if o.max_load = infinity then ""
     else Printf.sprintf "@%g" o.max_load)

(* Defaults are deliberately loose: ship-with limits that catch real
   regressions (a daemon that stops converging) without tripping on
   topology-to-topology variation. *)
let defaults =
  [
    objective ~quantile:0.95 ~metric:Converge_ns ~cmp:Below 5e8;
    objective ~quantile:0.99 ~metric:Epoch_ns ~cmp:Below 2e9;
    objective ~quantile:0.95 ~max_load:0.5 ~metric:Drop_rate ~cmp:Below 0.25;
    objective ~quantile:0.95 ~metric:Coverage ~cmp:Above 0.5;
  ]

type sample = {
  s_epoch : int;
  s_load : float;  (* offered load this epoch, 0 when quiescent *)
  s_converge_ns : float option;  (* Some only when an incident resolved *)
  s_epoch_ns : float;
  s_drop_rate : float;
  s_coverage : float;
}

type status = {
  st_objective : objective;
  st_eligible : int;  (* eligible epochs currently in the window *)
  st_bad : int;
  st_burn_rate : float;
  st_streak : int;
  st_alerting : bool;
}

type tracked = {
  o : objective;
  mutable bads : bool list;  (* newest first, length <= window *)
  mutable streak : int;
  mutable alerting : bool;
}

type t = { slos : tracked list }

let create objectives =
  { slos = List.map (fun o -> { o; bads = []; streak = 0; alerting = false }) objectives }

let value_of o s =
  match o.metric with
  | Converge_ns -> s.s_converge_ns
  | Epoch_ns -> Some s.s_epoch_ns
  | Drop_rate -> Some s.s_drop_rate
  | Coverage -> Some s.s_coverage

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

let burn_of tr =
  let eligible = List.length tr.bads in
  let bad = List.length (List.filter Fun.id tr.bads) in
  let burn =
    if eligible = 0 then 0.0
    else float_of_int bad /. float_of_int eligible /. budget tr.o
  in
  (eligible, bad, burn)

let alert_name tr = "slo:" ^ tr.o.name

(* Feed one epoch; returns (raised, cleared) alert names. *)
let observe t s =
  let raised = ref [] and cleared = ref [] in
  List.iter
    (fun tr ->
      (if s.s_load <= tr.o.max_load then
         match value_of tr.o s with
         | None -> ()
         | Some v ->
           let bad =
             match tr.o.cmp with Below -> v > tr.o.limit | Above -> v < tr.o.limit
           in
           tr.bads <- take tr.o.window (bad :: tr.bads));
      let _, _, burn = burn_of tr in
      if San_obs.Obs.on () then
        San_obs.Obs.set_gauge ("slo." ^ tr.o.name ^ ".burn_rate") burn;
      if burn >= 1.0 && tr.bads <> [] then begin
        tr.streak <- tr.streak + 1;
        if (not tr.alerting) && tr.streak >= tr.o.for_epochs then begin
          tr.alerting <- true;
          raised := alert_name tr :: !raised;
          San_obs.Obs.emit
            (San_obs.Trace.Alert_raised { name = alert_name tr; epoch = s.s_epoch })
        end
      end
      else begin
        tr.streak <- 0;
        if tr.alerting then begin
          tr.alerting <- false;
          cleared := alert_name tr :: !cleared;
          San_obs.Obs.emit
            (San_obs.Trace.Alert_cleared { name = alert_name tr; epoch = s.s_epoch })
        end
      end)
    t.slos;
  (List.rev !raised, List.rev !cleared)

let status t =
  List.map
    (fun tr ->
      let eligible, bad, burn = burn_of tr in
      {
        st_objective = tr.o;
        st_eligible = eligible;
        st_bad = bad;
        st_burn_rate = burn;
        st_streak = tr.streak;
        st_alerting = tr.alerting;
      })
    t.slos

let status_to_json sts =
  let module J = San_util.Json in
  J.Arr
    (List.map
       (fun st ->
         J.Obj
           [
             ("slo", J.Str (to_string st.st_objective));
             ("name", J.Str st.st_objective.name);
             ("eligible", J.int st.st_eligible);
             ("bad", J.int st.st_bad);
             ("burn_rate", J.Num st.st_burn_rate);
             ("alerting", J.Bool st.st_alerting);
           ])
       sts)

let pp_status ppf st =
  Format.fprintf ppf "%-24s burn %5.2f (%d/%d bad)%s"
    (to_string st.st_objective) st.st_burn_rate st.st_bad st.st_eligible
    (if st.st_alerting then "  ALERTING" else "")
