(* Background worm load: configurable traffic matrices driven through
   the event simulator over installed routes.

   The paper's mapper assumes quiescence; this module is the "network
   fights back" half of the observatory. A load spec shapes who sends
   to whom:

   - [Uniform]: every routed (src, dst) pair equally likely — the
     classic bisection-stressing baseline;
   - [Hotspot]: half the worms converge on one hot destination host,
     half stay uniform — a popular-server skew;
   - [Incast]: every worm targets the hot host AND arrivals are
     quantized onto burst boundaries so they hit the same ingress in
     the same slot — the adversarial synchronized-incast worst case
     for wormhole blocking.

   Arrivals are Poisson at [offered] worms per host per millisecond
   (aggregate rate scales with fleet size, like real traffic). Worms
   ride the *installed* route table — turns computed on the map drive
   the actual network identically (§5.5) — so drops under load are
   honest wormhole outcomes: FIFO blocking, tail occupancy, forward
   resets.

   The report distills the window into the one number the control
   plane can consume: the per-wire-crossing loss probability [p] such
   that a worm crossing [h] wires survives with (1-p)^h. Feeding that
   into [Network.create ~traffic] makes mapping probes experience the
   same attrition the background worms measured, which is how the
   daemon's verify/remap sweeps genuinely contend with traffic. *)

module Prng = San_util.Prng
module Graph = San_topology.Graph

type pattern = Uniform | Hotspot | Incast

let pattern_to_string = function
  | Uniform -> "uniform"
  | Hotspot -> "hotspot"
  | Incast -> "incast"

let pattern_of_string = function
  | "uniform" -> Some Uniform
  | "hotspot" -> Some Hotspot
  | "incast" -> Some Incast
  | _ -> None

type spec = {
  pattern : pattern;
  offered : float;  (* worms per host per simulated millisecond *)
  payload_bytes : int option;
}

let spec ?(pattern = Uniform) ?payload_bytes offered =
  if offered < 0.0 then invalid_arg "Load.spec: negative offered load";
  { pattern; offered; payload_bytes }

type report = {
  r_pattern : pattern;
  r_offered : float;
  r_injected : int;
  r_delivered : int;
  r_dropped_reset : int;
  r_dropped_bad_route : int;
  r_mean_crossings : float;
  r_drop_rate : float;
  r_loss_per_crossing : float;
  r_latency : Digest.t;
  r_sim_ns : float;
}

let drop_rate r =
  if r.r_injected = 0 then 0.0
  else
    float_of_int (r.r_dropped_reset + r.r_dropped_bad_route)
    /. float_of_int r.r_injected

(* Incast arrivals collapse onto 100 us burst boundaries. *)
let burst_ns = 100_000.0

(* The routed pairs of [table], translated (by host name) onto the
   nodes of [g] — the actual network the worms will ride. Routes whose
   endpoints no longer exist in [g] (a host died since the map) are
   skipped; the load simply no longer originates or targets them. *)
let routed_pairs table ~g =
  let rg = San_routing.Routes.graph table in
  List.filter_map
    (fun (src, dst, route) ->
      match
        ( Graph.host_by_name g (Graph.name rg src),
          Graph.host_by_name g (Graph.name rg dst) )
      with
      | Some s, Some d -> Some (s, d, route)
      | _ -> None)
    (San_routing.Routes.all table)

let drive ?(rng = Prng.create 7) ?(params = San_simnet.Params.default)
    ?(window_ms = 1.0) spec ~table g =
  let pairs = Array.of_list (routed_pairs table ~g) in
  let n_hosts = Graph.num_hosts g in
  if Array.length pairs = 0 || n_hosts = 0 || spec.offered <= 0.0 then
    {
      r_pattern = spec.pattern;
      r_offered = spec.offered;
      r_injected = 0;
      r_delivered = 0;
      r_dropped_reset = 0;
      r_dropped_bad_route = 0;
      r_mean_crossings = 0.0;
      r_drop_rate = 0.0;
      r_loss_per_crossing = 0.0;
      r_latency = Digest.create ();
      r_sim_ns = 0.0;
    }
  else begin
    (* Hot destination: the highest-address host with inbound routes,
       the same pick every epoch so hotspot runs are comparable. *)
    let hot =
      Array.fold_left
        (fun acc (_, d, _) ->
          match acc with
          | Some best when Graph.name g best >= Graph.name g d -> acc
          | _ -> Some d)
        None pairs
    in
    let to_hot =
      match hot with
      | None -> [||]
      | Some h ->
        Array.of_list
          (List.filter (fun (_, d, _) -> d = h) (Array.to_list pairs))
    in
    let pick () =
      match spec.pattern with
      | Uniform -> Prng.choose rng pairs
      | Hotspot ->
        if Array.length to_hot > 0 && Prng.bool rng then Prng.choose rng to_hot
        else Prng.choose rng pairs
      | Incast ->
        if Array.length to_hot > 0 then Prng.choose rng to_hot
        else Prng.choose rng pairs
    in
    let sim = San_simnet.Event_sim.create ~params g in
    let window_ns = window_ms *. 1e6 in
    (* Aggregate Poisson rate: offered worms/host/ms across the fleet. *)
    let mean_gap_ns = 1e6 /. (spec.offered *. float_of_int n_hosts) in
    let crossings = ref 0 in
    let injected = ref 0 in
    let t = ref (Prng.exponential rng mean_gap_ns) in
    while !t < window_ns do
      let src, _, route = pick () in
      let at_ns =
        match spec.pattern with
        | Incast -> Float.of_int (int_of_float (!t /. burst_ns)) *. burst_ns
        | Uniform | Hotspot -> !t
      in
      ignore
        (San_simnet.Event_sim.inject sim ~at_ns ~src ~turns:route
           ?payload_bytes:spec.payload_bytes ());
      incr injected;
      crossings := !crossings + List.length route + 1;
      t := !t +. Prng.exponential rng mean_gap_ns
    done;
    San_simnet.Event_sim.run sim;
    let stats = San_simnet.Event_sim.stats sim in
    let latency = Digest.of_list (San_simnet.Event_sim.latencies sim) in
    let inj = float_of_int stats.San_simnet.Event_sim.injected in
    let mean_crossings =
      if !injected = 0 then 0.0 else float_of_int !crossings /. float_of_int !injected
    in
    let survive =
      if inj = 0.0 then 1.0
      else float_of_int stats.San_simnet.Event_sim.delivered /. inj
    in
    (* Per-crossing survival q solves q^mean_crossings = survive; the
       per-crossing loss is 1 - q, clamped to the [0, 0.5] range
       Network's traffic model considers sane. *)
    let loss =
      if survive >= 1.0 || mean_crossings <= 0.0 then 0.0
      else if survive <= 0.0 then 0.5
      else
        Float.min 0.5
          (Float.max 0.0 (1.0 -. Float.pow survive (1.0 /. mean_crossings)))
    in
    let r =
      {
        r_pattern = spec.pattern;
        r_offered = spec.offered;
        r_injected = stats.San_simnet.Event_sim.injected;
        r_delivered = stats.San_simnet.Event_sim.delivered;
        r_dropped_reset = stats.San_simnet.Event_sim.dropped_reset;
        r_dropped_bad_route = stats.San_simnet.Event_sim.dropped_bad_route;
        r_mean_crossings = mean_crossings;
        r_drop_rate = 0.0;
        r_loss_per_crossing = loss;
        r_latency = latency;
        r_sim_ns = stats.San_simnet.Event_sim.finished_at_ns;
      }
    in
    let r = { r with r_drop_rate = drop_rate r } in
    if San_obs.Obs.on () then begin
      San_obs.Obs.count ~by:r.r_injected "load.injected";
      San_obs.Obs.count ~by:r.r_delivered "load.delivered";
      San_obs.Obs.count
        ~by:(r.r_dropped_reset + r.r_dropped_bad_route)
        "load.dropped";
      San_obs.Obs.set_gauge "load.offered" r.r_offered;
      San_obs.Obs.set_gauge "load.drop_rate" r.r_drop_rate;
      San_obs.Obs.set_gauge "load.loss_per_crossing" r.r_loss_per_crossing
    end;
    r
  end

let traffic_of_report r rng =
  if r.r_loss_per_crossing > 0.0 then Some (r.r_loss_per_crossing, rng)
  else None

let report_to_json r =
  let module J = San_util.Json in
  J.Obj
    [
      ("pattern", J.Str (pattern_to_string r.r_pattern));
      ("offered_per_host_ms", J.Num r.r_offered);
      ("injected", J.int r.r_injected);
      ("delivered", J.int r.r_delivered);
      ("dropped_reset", J.int r.r_dropped_reset);
      ("dropped_bad_route", J.int r.r_dropped_bad_route);
      ("mean_crossings", J.Num r.r_mean_crossings);
      ("drop_rate", J.Num r.r_drop_rate);
      ("loss_per_crossing", J.Num r.r_loss_per_crossing);
      ("latency", Digest.to_json r.r_latency);
      ("sim_ns", J.Num r.r_sim_ns);
    ]

let pp_report ppf r =
  Format.fprintf ppf
    "%s load %.2f/host/ms: %d worms, %d delivered, %d dropped (rate %.3f, \
     per-crossing %.4f)"
    (pattern_to_string r.r_pattern)
    r.r_offered r.r_injected r.r_delivered
    (r.r_dropped_reset + r.r_dropped_bad_route)
    r.r_drop_rate r.r_loss_per_crossing
