(* Sliding window of per-epoch health samples evaluated against
   declarative rules. Breaches must persist for a rule's [for_epochs]
   consecutive observations before the alert raises — one noisy epoch
   is weather, a streak is an incident — and the first non-breaching
   observation clears it. Raise/clear both land in the trace so
   post-mortems line alerts up against worm and daemon events. *)

module Trace = San_obs.Trace
module Obs = San_obs.Obs

type sample = {
  epoch : int;
  coverage : float;
  convergence_epochs : int;
  delta_bytes : int;
  missed_slices : int;
  probe_drop_rate : float;
  epoch_ms : float;
}

type metric =
  | Coverage
  | Convergence_epochs
  | Delta_bytes
  | Missed_slices
  | Probe_drop_rate

type cmp = Above | Below

type rule = {
  rule_name : string;
  metric : metric;
  cmp : cmp;
  threshold : float;
  for_epochs : int;
}

type alert = {
  a_rule : rule;
  raised_epoch : int;
  mutable cleared_epoch : int option;
  mutable worst : float;
}

type t = {
  window : int;
  rules : rule list;
  mutable samples : sample list; (* newest first, length <= window *)
  mutable streaks : (string * int) list;
  mutable active : (string * alert) list;
  mutable history : alert list; (* newest first, raised or cleared *)
}

let metric_name = function
  | Coverage -> "coverage"
  | Convergence_epochs -> "convergence_epochs"
  | Delta_bytes -> "delta_bytes"
  | Missed_slices -> "missed_slices"
  | Probe_drop_rate -> "probe_drop_rate"

let value_of m s =
  match m with
  | Coverage -> s.coverage
  | Convergence_epochs -> float_of_int s.convergence_epochs
  | Delta_bytes -> float_of_int s.delta_bytes
  | Missed_slices -> float_of_int s.missed_slices
  | Probe_drop_rate -> s.probe_drop_rate

let breaches rule v =
  match rule.cmp with
  | Above -> v > rule.threshold
  | Below -> v < rule.threshold

let default_rules =
  [
    { rule_name = "coverage"; metric = Coverage; cmp = Below; threshold = 1.0;
      for_epochs = 1 };
    { rule_name = "missed_slices"; metric = Missed_slices; cmp = Above;
      threshold = 0.0; for_epochs = 1 };
    { rule_name = "slow_convergence"; metric = Convergence_epochs; cmp = Above;
      threshold = 2.0; for_epochs = 1 };
    { rule_name = "probe_drops"; metric = Probe_drop_rate; cmp = Above;
      threshold = 0.25; for_epochs = 2 };
  ]

let create ?(window = 64) ?(rules = default_rules) () =
  { window; rules; samples = []; streaks = []; active = []; history = [] }

let take n l =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: go (n - 1) tl
  in
  go n l

let observe t s =
  t.samples <- take t.window (s :: t.samples);
  let raised = ref [] and cleared = ref [] in
  List.iter
    (fun rule ->
      let v = value_of rule.metric s in
      if breaches rule v then begin
        let streak =
          1 + Option.value ~default:0 (List.assoc_opt rule.rule_name t.streaks)
        in
        t.streaks <-
          (rule.rule_name, streak)
          :: List.remove_assoc rule.rule_name t.streaks;
        match List.assoc_opt rule.rule_name t.active with
        | Some a -> a.worst <- (match rule.cmp with
            | Above -> Float.max a.worst v
            | Below -> Float.min a.worst v)
        | None ->
          if streak >= rule.for_epochs then begin
            let a =
              { a_rule = rule; raised_epoch = s.epoch; cleared_epoch = None;
                worst = v }
            in
            t.active <- (rule.rule_name, a) :: t.active;
            t.history <- a :: t.history;
            raised := rule.rule_name :: !raised;
            Obs.emit (Trace.Alert_raised { name = rule.rule_name;
                                           epoch = s.epoch })
          end
      end
      else begin
        t.streaks <- List.remove_assoc rule.rule_name t.streaks;
        match List.assoc_opt rule.rule_name t.active with
        | None -> ()
        | Some a ->
          a.cleared_epoch <- Some s.epoch;
          t.active <- List.remove_assoc rule.rule_name t.active;
          cleared := rule.rule_name :: !cleared;
          Obs.emit (Trace.Alert_cleared { name = rule.rule_name;
                                          epoch = s.epoch })
      end)
    t.rules;
  (List.rev !raised, List.rev !cleared)

let samples t = List.rev t.samples
let active t = List.rev_map snd t.active

type report = {
  r_samples : sample list;
  r_active : alert list;
  r_history : alert list;
}

let report t =
  { r_samples = samples t; r_active = active t;
    r_history = List.rev t.history }

let series t f = List.map f (samples t)

let sample_to_json s =
  let module J = San_util.Json in
  J.Obj
    [
      ("epoch", J.int s.epoch);
      ("coverage", J.Num s.coverage);
      ("convergence_epochs", J.int s.convergence_epochs);
      ("delta_bytes", J.int s.delta_bytes);
      ("missed_slices", J.int s.missed_slices);
      ("probe_drop_rate", J.Num s.probe_drop_rate);
      ("epoch_ms", J.Num s.epoch_ms);
    ]

let alert_to_json a =
  let module J = San_util.Json in
  J.Obj
    [
      ("rule", J.Str a.a_rule.rule_name);
      ("metric", J.Str (metric_name a.a_rule.metric));
      ("threshold", J.Num a.a_rule.threshold);
      ("raised_epoch", J.int a.raised_epoch);
      ("cleared_epoch",
       match a.cleared_epoch with None -> J.Null | Some e -> J.int e);
      ("worst", J.Num a.worst);
    ]

let report_to_json r =
  let module J = San_util.Json in
  J.Obj
    [
      ("samples", J.Arr (List.map sample_to_json r.r_samples));
      ("active", J.Arr (List.map alert_to_json r.r_active));
      ("history", J.Arr (List.map alert_to_json r.r_history));
    ]
