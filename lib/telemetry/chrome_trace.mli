(** Chrome trace-event JSON export of {!San_obs.Trace} records.

    The output loads in [chrome://tracing] and Perfetto: worm
    injections, deliveries and drops appear as instant/complete events
    on a per-worm track under the "fabric" process, timestamped with
    the {e simulated} clock (so exports of seeded simulator runs are
    byte-identical across invocations); spans, probes and
    control-plane events appear under the "mapper software" process,
    timestamped off the wall clock relative to the first record. Pure
    function to a string — no I/O, unit-testable. *)

val of_records : San_obs.Trace.record list -> string
(** One compact JSON document
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val to_file : San_obs.Trace.record list -> string -> unit
