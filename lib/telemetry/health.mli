(** Sliding-window fabric health with declarative alert rules.

    The control-plane daemon records one {!sample} per epoch; each
    {!rule} names a sample metric, a direction, a threshold and a
    persistence requirement ([for_epochs] consecutive breaches before
    raising — one noisy epoch is weather, a streak is an incident).
    Raise and clear both emit typed trace events
    ({!San_obs.Trace.Alert_raised} / [Alert_cleared]) through the
    {!San_obs.Obs} switchboard, so alerts line up against worm and
    daemon activity in post-mortem traces. *)

type sample = {
  epoch : int;
  coverage : float;  (** fraction of hosts with current routes, 0..1 *)
  convergence_epochs : int;
      (** epochs an incident has been open (0 when the fabric is quiet) *)
  delta_bytes : int;  (** route bytes shipped this epoch *)
  missed_slices : int;  (** hosts whose slice distribution failed *)
  probe_drop_rate : float;  (** dropped/attempted control messages, 0..1 *)
  epoch_ms : float;  (** wall-clock epoch duration *)
}

type metric =
  | Coverage
  | Convergence_epochs
  | Delta_bytes
  | Missed_slices
  | Probe_drop_rate

type cmp = Above | Below

type rule = {
  rule_name : string;
  metric : metric;
  cmp : cmp;
  threshold : float;
  for_epochs : int;  (** consecutive breaching epochs before raising *)
}

type alert = {
  a_rule : rule;
  raised_epoch : int;
  mutable cleared_epoch : int option;
  mutable worst : float;  (** most extreme breaching value seen *)
}

type t

val default_rules : rule list
(** Full coverage expected every epoch; any missed slice alerts; an
    incident open beyond 2 epochs alerts; probe drops alert only after
    two consecutive epochs above 25%. *)

val create : ?window:int -> ?rules:rule list -> unit -> t
(** Keep the last [window] samples (default 64). *)

val observe : t -> sample -> string list * string list
(** Record a sample and evaluate every rule, returning the rule names
    ([raised], [cleared]) this epoch. Emits trace events for each. *)

val samples : t -> sample list
(** Window contents, oldest first. *)

val active : t -> alert list

type report = {
  r_samples : sample list;
  r_active : alert list;
  r_history : alert list;  (** every alert ever raised, oldest first *)
}

val report : t -> report
val series : t -> (sample -> float) -> float list
val metric_name : metric -> string
val sample_to_json : sample -> San_util.Json.t
val alert_to_json : alert -> San_util.Json.t
val report_to_json : report -> San_util.Json.t
