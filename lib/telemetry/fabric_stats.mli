(** Per-channel fabric counters: where is the network actually hot?

    The simulator's aggregate stats (worm counts, latency summaries)
    hide which links carried the load. This table attributes, per
    directed channel — keyed by the {!San_topology.Graph.wire_end} a
    worm's head exits through, exactly the key the event simulator
    arbitrates on — transit counts, occupied and blocked nanoseconds,
    collision and drop counts. Aggregation to undirected links (both
    directions of a wire summed) is done against a graph at query
    time, so one table can survive a daemon run whose world evolves.

    Producers ({!San_simnet.Event_sim}, {!San_simnet.Collision},
    {!San_simnet.Network}) resolve the table once at creation from the
    process-wide {!current} slot, so the disabled path costs one
    [option] match per accounting site. *)

open San_topology

type port_stat = {
  mutable transits : int;  (** worm heads that acquired this channel *)
  mutable occupied_ns : float;  (** time the channel was held by a worm *)
  mutable blocked_ns : float;  (** time worms spent queued for it *)
  mutable collisions : int;  (** analytic-model probe self-collisions *)
  mutable drops : int;  (** worms that died at this channel *)
}

type t

val create : unit -> t
(** An empty table; channels appear on first use. *)

val clear : t -> unit

(** {1 The process-wide slot} *)

val install : t -> unit
(** Make this table the one new simulators and networks report into. *)

val uninstall : unit -> unit

val current : unit -> t option

(** {1 Accounting} *)

val transit : t -> Graph.wire_end -> unit
val occupied : t -> Graph.wire_end -> float -> unit
val blocked : t -> Graph.wire_end -> float -> unit
val collision : t -> Graph.wire_end -> unit
val drop : t -> Graph.wire_end -> unit

(** {1 Queries} *)

val port_stat : t -> Graph.wire_end -> port_stat option
(** The channel's counters, if it ever carried anything. *)

val total_transits : t -> int
(** Summed over every channel — the conservation invariant pairs this
    with the simulator's per-worm acquired-hop total. *)

type link = {
  ends : Graph.wire_end * Graph.wire_end;  (** canonical order *)
  l_transits : int;
  l_occupied_ns : float;
  l_blocked_ns : float;
  l_collisions : int;
  l_drops : int;
  utilization : float;
      (** occupied time normalized to the hottest link (falls back to
          transit counts when nothing recorded occupancy), in [0,1] *)
}

val links : t -> Graph.t -> link list
(** Both directions of every wire of [g] summed, hottest first
    (ordering via {!San_topology.Analysis.hottest_links}). Wires that
    never carried anything are included with zero counters. *)

val heat : t -> Graph.t -> Graph.wire_end * Graph.wire_end -> float
(** [heat t g] is the utilization of a wire (ends in either order),
    suitable for {!San_topology.Dot.to_string}'s [?heat]. *)

val to_json : t -> Graph.t -> San_util.Json.t
(** [{"links": [{a, a_port, b, b_port, transits, ...}]}], hottest
    first. *)
