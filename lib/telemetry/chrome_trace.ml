(* Chrome trace-event JSON over Trace.records, loadable in
   chrome://tracing and Perfetto.

   Two processes: pid 0 is the mapper software (spans, probes, control
   events, timestamped off the wall clock relative to the first
   record), pid 1 is the simulated fabric (worm lifecycles on a track
   per worm id, timestamped off the deterministic simulation clock —
   which is what makes exports of pure simulator runs byte-stable
   across invocations). *)

module J = San_util.Json
module Trace = San_obs.Trace

let sw_pid = 0
let fabric_pid = 1
let daemon_pid = 2
let span_tid = 0
let probe_tid = 1
let control_tid = 2

(* Chrome wants microseconds. *)
let us ns = ns /. 1e3

let event ?(pid = sw_pid) ~tid ~ph ~ts ?dur ~name args =
  J.Obj
    ([ ("name", J.Str name); ("ph", J.Str ph); ("ts", J.Num ts);
       ("pid", J.int pid); ("tid", J.int tid) ]
    @ (match dur with None -> [] | Some d -> [ ("dur", J.Num d) ])
    @ (if ph = "i" then [ ("s", J.Str "t") ] else [])
    @ if args = [] then [] else [ ("args", J.Obj args) ])

let metadata =
  let meta ~pid ?tid name value =
    J.Obj
      ([ ("name", J.Str name); ("ph", J.Str "M"); ("pid", J.int pid) ]
      @ (match tid with None -> [] | Some t -> [ ("tid", J.int t) ])
      @ [ ("args", J.Obj [ ("name", J.Str value) ]) ])
  in
  [
    meta ~pid:sw_pid "process_name" "mapper software";
    meta ~pid:fabric_pid "process_name" "fabric (simulated time)";
    meta ~pid:daemon_pid "process_name" "daemon epochs (simulated time)";
    meta ~pid:daemon_pid ~tid:0 "thread_name" "phases";
    meta ~pid:sw_pid ~tid:span_tid "thread_name" "spans";
    meta ~pid:sw_pid ~tid:probe_tid "thread_name" "probes";
    meta ~pid:sw_pid ~tid:control_tid "thread_name" "control plane";
  ]

let of_records records =
  let wall0 =
    match records with [] -> 0.0 | r :: _ -> r.Trace.wall_ns
  in
  let wall ns = us (ns -. wall0) in
  let one (r : Trace.record) =
    match r.Trace.event with
    | Trace.Worm_injected { wid; at_ns; hops } ->
      Some
        (event ~pid:fabric_pid ~tid:wid ~ph:"i" ~ts:(us at_ns)
           ~name:"inject"
           [ ("wid", J.int wid); ("hops", J.int hops) ])
    | Trace.Worm_delivered { wid; at_ns; latency_ns } ->
      Some
        (event ~pid:fabric_pid ~tid:wid ~ph:"X"
           ~ts:(us (at_ns -. latency_ns))
           ~dur:(us latency_ns)
           ~name:(Printf.sprintf "worm %d" wid)
           [ ("latency_ns", J.Num latency_ns) ])
    | Trace.Worm_dropped { wid; at_ns; reason } ->
      Some
        (event ~pid:fabric_pid ~tid:wid ~ph:"i" ~ts:(us at_ns)
           ~name:("drop: " ^ reason)
           [ ("wid", J.int wid) ])
    | Trace.Phase_timed { epoch; phase; start_ns; dur_ns } ->
      (* The per-epoch detect/verify/remap/distribute timeline, as
         complete events on the daemon's cumulative sim clock — like
         the fabric pid, byte-stable across invocations. *)
      Some
        (event ~pid:daemon_pid ~tid:0 ~ph:"X" ~ts:(us start_ns)
           ~dur:(us dur_ns)
           ~name:(Printf.sprintf "e%d %s" epoch phase)
           [ ("epoch", J.int epoch); ("phase", J.Str phase);
             ("dur_ns", J.Num dur_ns) ])
    | Trace.Span_begin { name } ->
      Some (event ~tid:span_tid ~ph:"B" ~ts:(wall r.Trace.wall_ns) ~name [])
    | Trace.Span_end { name; elapsed_ns } ->
      Some
        (event ~tid:span_tid ~ph:"E" ~ts:(wall r.Trace.wall_ns) ~name
           [ ("elapsed_ns", J.Num elapsed_ns) ])
    | Trace.Probe_sent { kind; hit; cost_ns } ->
      Some
        (event ~tid:probe_tid ~ph:"i" ~ts:(wall r.Trace.wall_ns)
           ~name:
             (Printf.sprintf "probe %s %s"
                (Trace.probe_kind_to_string kind)
                (if hit then "hit" else "miss"))
           [ ("cost_ns", J.Num cost_ns) ])
    | Trace.Replicate_merged _ | Trace.Route_computed _
    | Trace.Routes_distributed _ | Trace.Epoch_started _
    | Trace.Daemon_transition _ | Trace.Alert_raised _
    | Trace.Alert_cleared _ | Trace.Deduction _ | Trace.Daemon_epoch _
    | Trace.Mapper_stuck _ | Trace.Mark _ ->
      (* Control-plane happenings as instants carrying their full JSON
         encoding, so Perfetto's args pane shows every field. *)
      let name = Format.asprintf "%a" Trace.pp_event r.Trace.event in
      let args =
        match Trace.event_to_json r.Trace.event with
        | J.Obj fields -> fields
        | _ -> []
      in
      Some
        (event ~tid:control_tid ~ph:"i" ~ts:(wall r.Trace.wall_ns) ~name args)
  in
  let evs = List.filter_map one records in
  J.to_string ~pretty:false
    (J.Obj
       [
         ("traceEvents", J.Arr (metadata @ evs));
         ("displayTimeUnit", J.Str "ms");
       ])

let to_file records path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (of_records records);
      output_char oc '\n')
