(* Per-channel fabric counters, keyed by the wire end a worm's head
   exits through (the event simulator's arbitration key). *)

open San_topology

type port_stat = {
  mutable transits : int;
  mutable occupied_ns : float;
  mutable blocked_ns : float;
  mutable collisions : int;
  mutable drops : int;
}

type t = { tbl : (Graph.wire_end, port_stat) Hashtbl.t }

let create () = { tbl = Hashtbl.create 256 }
let clear t = Hashtbl.reset t.tbl

let slot : t option ref = ref None
let install t = slot := Some t
let uninstall () = slot := None
let current () = !slot

let stat t key =
  match Hashtbl.find_opt t.tbl key with
  | Some s -> s
  | None ->
    let s =
      { transits = 0; occupied_ns = 0.0; blocked_ns = 0.0; collisions = 0;
        drops = 0 }
    in
    Hashtbl.add t.tbl key s;
    s

let transit t key =
  let s = stat t key in
  s.transits <- s.transits + 1

let occupied t key ns =
  let s = stat t key in
  s.occupied_ns <- s.occupied_ns +. ns

let blocked t key ns =
  let s = stat t key in
  s.blocked_ns <- s.blocked_ns +. ns

let collision t key =
  let s = stat t key in
  s.collisions <- s.collisions + 1

let drop t key =
  let s = stat t key in
  s.drops <- s.drops + 1

let port_stat t key = Hashtbl.find_opt t.tbl key

let total_transits t =
  Hashtbl.fold (fun _ s acc -> acc + s.transits) t.tbl 0

type link = {
  ends : Graph.wire_end * Graph.wire_end;
  l_transits : int;
  l_occupied_ns : float;
  l_blocked_ns : float;
  l_collisions : int;
  l_drops : int;
  utilization : float;
}

(* A wire's two directed channels are keyed by its two ends (each
   direction exits through one of them); the undirected view sums
   both. *)
let raw_link t (e1, e2) =
  let get k =
    Option.value ~default:
      { transits = 0; occupied_ns = 0.0; blocked_ns = 0.0; collisions = 0;
        drops = 0 }
      (Hashtbl.find_opt t.tbl k)
  in
  let a = get e1 and b = get e2 in
  {
    ends = (if e1 <= e2 then (e1, e2) else (e2, e1));
    l_transits = a.transits + b.transits;
    l_occupied_ns = a.occupied_ns +. b.occupied_ns;
    l_blocked_ns = a.blocked_ns +. b.blocked_ns;
    l_collisions = a.collisions + b.collisions;
    l_drops = a.drops + b.drops;
    utilization = 0.0;
  }

let links t g =
  let raw = List.map (raw_link t) (Graph.wires g) in
  let max_occ = List.fold_left (fun m l -> Float.max m l.l_occupied_ns) 0.0 raw in
  let max_tr = List.fold_left (fun m l -> max m l.l_transits) 0 raw in
  let util l =
    if max_occ > 0.0 then l.l_occupied_ns /. max_occ
    else if max_tr > 0 then float_of_int l.l_transits /. float_of_int max_tr
    else 0.0
  in
  let by_ends =
    List.map (fun l -> (l.ends, { l with utilization = util l })) raw
  in
  (* The hottest-link ordering lives in Analysis so heat queries and
     post-mortem map rendering rank links identically. *)
  Analysis.hottest_links g ~weight:(fun ends ->
      match List.assoc_opt ends by_ends with
      | Some l -> l.utilization
      | None -> 0.0)
  |> List.map (fun (ends, _) -> List.assoc ends by_ends)

let heat t g =
  let by_ends = List.map (fun l -> (l.ends, l.utilization)) (links t g) in
  fun (e1, e2) ->
    let key = if e1 <= e2 then (e1, e2) else (e2, e1) in
    Option.value ~default:0.0 (List.assoc_opt key by_ends)

let to_json t g =
  let module J = San_util.Json in
  let name g n =
    let s = Graph.name g n in
    if s = "" then Printf.sprintf "sw%d" n else s
  in
  let link_json l =
    let (a, pa), (b, pb) = l.ends in
    J.Obj
      [
        ("a", J.Str (name g a));
        ("a_port", J.int pa);
        ("b", J.Str (name g b));
        ("b_port", J.int pb);
        ("transits", J.int l.l_transits);
        ("occupied_ns", J.Num l.l_occupied_ns);
        ("blocked_ns", J.Num l.l_blocked_ns);
        ("collisions", J.int l.l_collisions);
        ("drops", J.int l.l_drops);
        ("utilization", J.Num l.utilization);
      ]
  in
  J.Obj [ ("links", J.Arr (List.map link_json (links t g))) ]
