(* Prometheus text exposition (version 0.0.4) over a Metrics
   snapshot. Pure string-to-string so the exporter is testable without
   a scrape endpoint; values print with %.17g so a parse of our own
   output recovers every float exactly (the round-trip test leans on
   this). *)

module Metrics = San_obs.Metrics

let default_prefix = "san_"

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let of_snapshot ?(prefix = default_prefix) (s : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let full name = prefix ^ sanitize name in
  List.iter
    (fun (name, v) ->
      let n = full name in
      add "# TYPE %s counter\n" n;
      add "%s %d\n" n v)
    s.Metrics.s_counters;
  List.iter
    (fun (name, v) ->
      let n = full name in
      add "# TYPE %s gauge\n" n;
      add "%s %s\n" n (num v))
    s.Metrics.s_gauges;
  (* Log-scale histograms expose as summaries: the bucket boundaries
     are an internal encoding, the quantiles are the interface. *)
  List.iter
    (fun (name, h) ->
      let n = full name in
      add "# TYPE %s summary\n" n;
      List.iter
        (fun (label, q) ->
          add "%s{quantile=\"%s\"} %s\n" n label
            (num (Metrics.quantile_of h q)))
        [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ];
      add "%s_sum %s\n" n (num h.Metrics.hs_sum);
      add "%s_count %d\n" n h.Metrics.hs_count)
    s.Metrics.s_histograms;
  Buffer.contents buf

(* Enough of a parser to round-trip our own output: series name
   (labels folded in verbatim) to float value, skipping # lines. *)
let parse_values text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.rindex_opt line ' ' with
           | None -> None
           | Some i ->
             let series = String.sub line 0 i in
             let value = String.sub line (i + 1) (String.length line - i - 1) in
             (match float_of_string_opt value with
             | Some f -> Some (series, f)
             | None -> None))

let to_file ?prefix s path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_snapshot ?prefix s))
