(** Prometheus text-exposition export of a {!San_obs.Metrics}
    snapshot.

    Counters and gauges expose directly; the registry's log-scale
    histograms expose as summaries (quantiles 0.5/0.9/0.99 plus
    [_sum]/[_count]) because their geometric bucket boundaries are an
    internal encoding. Names are sanitized to the Prometheus charset
    and prefixed (default ["san_"]). Pure function to a string. *)

val of_snapshot : ?prefix:string -> San_obs.Metrics.snapshot -> string

val parse_values : string -> (string * float) list
(** Parse exposition text back to [(series, value)] pairs ([#] lines
    skipped, labels kept verbatim in the series name). Floats printed
    by {!of_snapshot} recover exactly — the round-trip test's
    contract. *)

val to_file : ?prefix:string -> San_obs.Metrics.snapshot -> string -> unit
