open San_topology
open San_simnet
module Berkeley = San_mapper.Berkeley
module Model = San_mapper.Model
module Why = San_why.Why
module Replay = San_why.Replay
module Explain = San_why.Explain
module J = San_util.Json
module Obs = San_obs.Obs

type budget = Frac of float | Probes of int

let parse_budget s =
  match String.split_on_char ':' s with
  | [ "probes"; n ] -> (
    match int_of_string_opt n with
    | Some n when n > 0 -> Ok (Probes n)
    | _ -> Error (Printf.sprintf "bad probe budget %S (want probes:N, N > 0)" s))
  | [ f ] -> (
    match float_of_string_opt f with
    | Some f when f > 0.0 && f <= 1.0 -> Ok (Frac f)
    | Some _ -> Error "budget fraction must be in (0, 1]"
    | None ->
      Error (Printf.sprintf "bad budget %S (want a fraction or probes:N)" s))
  | _ -> Error (Printf.sprintf "bad budget %S (want a fraction or probes:N)" s)

let budget_to_string = function
  | Frac f -> Printf.sprintf "%g" f
  | Probes n -> Printf.sprintf "probes:%d" n

type element = {
  el_label : string;
  el_kind : [ `Host | `Switch | `Link ];
  el_path : Route.t;
  el_conf : float;
  el_probes : int;
  el_merges : int;
  el_corrob : int;
  el_explored : bool;
  el_ports : int;
}

type report = {
  r_budget : budget;
  r_probe_limit : int;
  r_probes_used : int;
  r_full_probes : int;
  r_explorations : int;
  r_depth_used : int;
  r_hosts : element list;
  r_switches : element list;
  r_links : element list;
  r_frontier : int;
  r_trace : Berkeley.trace_point list;
  r_full_map : Graph.t;
  r_recovered_hosts : int;
  r_recovered_switches : int;
  r_recovered_links : int;
  r_full_hosts : int;
  r_full_switches : int;
  r_full_links : int;
  r_mean_conf : float;
  r_density : float;
  r_est_links : float;
  r_subgraph : (unit, string) result;
  r_blocked : int;
}

let elements r = r.r_hosts @ r.r_switches @ r.r_links

let path_str path = String.concat "," (List.map string_of_int path)

(* ------------------------------------------------------------------ *)
(* Ground-truth walks: re-drive discovery probes on the true network. *)

let true_node_of_path g ~mapper path =
  if path = [] then
    match Graph.neighbor g (mapper, 0) with
    | Some (n, _) -> Ok n
    | None -> Error "the mapper host has no cable"
  else
    let t = Worm.eval g ~src:mapper ~turns:path in
    match t.Worm.outcome with
    | Worm.Stranded n | Worm.Arrived n -> Ok n
    | o ->
      Error
        (Format.asprintf "probe [%s] fails on the true network: %a"
           (path_str path) Worm.pp_outcome o)

let true_wire_of_path g ~mapper path =
  if path = [] then
    match Graph.neighbor g (mapper, 0) with
    | Some far -> Ok ((mapper, 0), far)
    | None -> Error "the mapper host has no cable"
  else
    let t = Worm.eval g ~src:mapper ~turns:path in
    match (t.Worm.outcome, List.rev t.Worm.hops) with
    | (Worm.Stranded _ | Worm.Arrived _), last :: _ ->
      Ok (last.Worm.exit_end, last.Worm.entry_end)
    | o, _ ->
      Error
        (Format.asprintf "probe [%s] fails on the true network: %a"
           (path_str path) Worm.pp_outcome o)

let canon_wire (e1, e2) = if e1 <= e2 then (e1, e2) else (e2, e1)

(* ------------------------------------------------------------------ *)

let frac num den = if den <= 0 then 0.0 else float_of_int num /. float_of_int den

let run ?(policy = Berkeley.faithful) ?(depth = Berkeley.Oracle)
    ?(record_trace = true) ?directed ?reference ?effective ~budget net ~mapper
    =
  let g_true = Network.graph net in
  if not (Graph.is_host g_true mapper) then
    invalid_arg "Cover.run: mapper must be a host";
  (* The full reference run: denominator for fractions and budgets. *)
  let reference =
    match reference with
    | Some r -> r
    | None -> Berkeley.run ~policy ~depth net ~mapper
  in
  match reference.Berkeley.map with
  | Error m -> Error ("full reference map failed to export: " ^ m)
  | Ok full_map ->
    let full_probes = Berkeley.total_probes reference in
    let probe_limit =
      match budget with
      | Probes n -> n
      | Frac f ->
        max 1 (int_of_float (Float.round (f *. float_of_int full_probes)))
    in
    let blocked_before =
      match directed with Some d -> Directed.blocked d | None -> 0
    in
    (* The budgeted run needs the ledger: the partial model cannot be
       exported (unresolved replicates), so its shape — and all the
       evidence the confidence scores weigh — is read back from the
       why snapshot. Force it on, restore the caller's setting. *)
    let was_why = Why.on () in
    Why.set_enabled true;
    Fun.protect ~finally:(fun () -> Why.set_enabled was_why) @@ fun () ->
    Network.reset_stats net;
    let depth_used = Berkeley.resolve_depth net ~mapper depth in
    let model =
      Model.create
        ~mapper_name:(Graph.name g_true mapper)
        ~radix:(Graph.radix g_true)
    in
    let sv0 =
      match directed with
      | Some d -> Directed.wrap d net ~mapper
      | None -> Berkeley.service_of_network net ~mapper
    in
    let probes_sent = ref 0 in
    let sv =
      {
        sv0 with
        Berkeley.sv_host_probe =
          (fun ~turns ->
            incr probes_sent;
            sv0.Berkeley.sv_host_probe ~turns);
        sv_switch_probe =
          (fun ~turns ->
            incr probes_sent;
            sv0.Berkeley.sv_switch_probe ~turns);
      }
    in
    let tick ~probes ~frontier =
      if Obs.on () then begin
        Obs.set_gauge "cover.probes_used" (float_of_int probes);
        Obs.set_gauge "cover.frontier_size" (float_of_int frontier)
      end
    in
    let explorations, _elapsed, trace =
      Berkeley.explore_service ~probe_budget:probe_limit ~tick ~policy
        ~depth_used ~record_trace sv model
        [ Model.root_switch model ]
    in
    (* The frontier at stop: discovered-but-unexplored switch classes,
       counted BEFORE pruning — prune deletes degree-1 unexplored stubs
       (hostless pendants are exactly what the separation criterion
       removes), which is the honest partial map but would hide how
       much known-unexplored edge the budget left behind. *)
    let frontier =
      let seen = Hashtbl.create 32 in
      for v = 0 to Model.created_vertices model - 1 do
        let c = Model.canonical model v in
        if
          Model.is_live model c
          && (not (Model.is_explored model c))
          && match Model.kind model c with Model.Vswitch -> true | _ -> false
        then Hashtbl.replace seen c ()
      done;
      Hashtbl.length seen
    in
    Model.prune model;
    let snap = Why.capture () in
    let replay = Replay.build snap in
    let canon v = fst (Replay.find replay v) in
    (* Live classes and their members, from the ledger. *)
    let classes : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun v ->
        let c = canon v in
        if Replay.live replay c then
          Hashtbl.replace classes c
            (v :: Option.value ~default:[] (Hashtbl.find_opt classes c)))
      (Why.vertices snap);
    let live_edges = Replay.live_edges replay in
    (* Known wired map-ports per class. *)
    let ports : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64 in
    let add_port c p =
      let h =
        match Hashtbl.find_opt ports c with
        | Some h -> h
        | None ->
          let h = Hashtbl.create 4 in
          Hashtbl.replace ports c h;
          h
      in
      Hashtbl.replace h p ()
    in
    List.iter
      (fun (e : Replay.edge_view) ->
        add_port e.Replay.ev_a e.Replay.ev_pa;
        add_port e.Replay.ev_b e.Replay.ev_pb)
      live_edges;
    let known_ports c =
      match Hashtbl.find_opt ports c with
      | Some h -> Hashtbl.length h
      | None -> 0
    in
    (* Merge evidence per class. *)
    let merge_count : (int, int) Hashtbl.t = Hashtbl.create 16 in
    let merge_rules : (int, (string, unit) Hashtbl.t) Hashtbl.t =
      Hashtbl.create 16
    in
    List.iter
      (fun (m : Why.merge_rec) ->
        let c = canon m.Why.kept in
        Hashtbl.replace merge_count c
          (1 + Option.value ~default:0 (Hashtbl.find_opt merge_count c));
        let rule =
          match Why.entry snap m.Why.m_did with
          | Some (Why.Deduced { rule; _ }) -> rule
          | _ -> "merge"
        in
        let rs =
          match Hashtbl.find_opt merge_rules c with
          | Some r -> r
          | None ->
            let r = Hashtbl.create 2 in
            Hashtbl.replace merge_rules c r;
            r
        in
        Hashtbl.replace rs rule ())
      (Why.merges snap);
    let merges_of c = Option.value ~default:0 (Hashtbl.find_opt merge_count c) in
    let corrob_of c =
      match Hashtbl.find_opt merge_rules c with
      | None -> 0
      | Some rs ->
        Hashtbl.fold
          (fun r () n ->
            if r = "d1_slot_conflict" || r = "d2_same_host" then n + 1 else n)
          rs 0
    in
    (* Distinct probe entries in a class's justification trees. *)
    let probes_of c =
      let ids = Hashtbl.create 8 in
      List.iter
        (fun root ->
          List.iter
            (fun (id, e) ->
              match e with
              | Why.Probe _ -> Hashtbl.replace ids id ()
              | _ -> ())
            (Explain.leaves snap root))
        (Explain.roots_for_switch snap replay ~vid:c);
      Hashtbl.length ids
    in
    let kind_of c members =
      match Why.vertex_kind snap ~vid:c with
      | Some k -> Some k
      | None ->
        List.find_map (fun v -> Why.vertex_kind snap ~vid:v) members
    in
    let shortest_path members =
      List.fold_left
        (fun best v ->
          let p = Model.probe_string model v in
          match best with
          | Some b when List.length b <= List.length p -> best
          | _ -> Some p)
        None members
      |> Option.value ~default:[]
    in
    let class_list =
      Hashtbl.fold (fun c members acc -> (c, List.sort compare members) :: acc)
        classes []
      |> List.sort compare
    in
    let radix = Graph.radix g_true in
    (* rho: wired-port density measured on fully enumerated switches. *)
    let explored_ports, explored_switches =
      List.fold_left
        (fun (ep, es) (c, members) ->
          match kind_of c members with
          | Some `Switch when Model.is_explored model c ->
            (ep + known_ports c, es + 1)
          | _ -> (ep, es))
        (0, 0) class_list
    in
    let density =
      Confidence.wired_density ~explored_ports ~explored_switches ~radix
    in
    let struct_of c ~explored =
      Confidence.structure_factor ~known_ports:(known_ports c) ~radix ~density
        ~explored
    in
    let hosts = ref [] and switches = ref [] in
    let class_struct : (int, float) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (c, members) ->
        let merges = merges_of c and corrob = corrob_of c in
        let probes = probes_of c in
        let evidence =
          Confidence.evidence_factor ~probes ~merges ~corroborations:corrob
        in
        let path = shortest_path members in
        match kind_of c members with
        | Some (`Host name) ->
          Hashtbl.replace class_struct c 1.0;
          (* The mapper's own host (empty probe path) is axiomatic, not
             probe-derived: full confidence by fiat. *)
          let evidence = if path = [] then 1.0 else evidence in
          hosts :=
            {
              el_label = name;
              el_kind = `Host;
              el_path = path;
              el_conf = Confidence.score ~evidence ~structure:1.0;
              el_probes = probes;
              el_merges = merges;
              el_corrob = corrob;
              el_explored = true;
              el_ports = 1;
            }
            :: !hosts
        | Some `Switch ->
          let explored = Model.is_explored model c in
          let structure = struct_of c ~explored in
          Hashtbl.replace class_struct c structure;
          (* The root switch (vid 1) is assumed by Model.create and
             retracted unless the exploration or the turn-0 probe
             confirms it — alive here means confirmed, so its
             existence is axiomatic like the mapper host's. *)
          let evidence = if List.mem 1 members then 1.0 else evidence in
          switches :=
            {
              el_label = Printf.sprintf "m%d" c;
              el_kind = `Switch;
              el_path = path;
              el_conf = Confidence.score ~evidence ~structure;
              el_probes = probes;
              el_merges = merges;
              el_corrob = corrob;
              el_explored = explored;
              el_ports = known_ports c;
            }
            :: !switches
        | None -> ())
      class_list;
    let end_label c p =
      match Why.vertex_kind snap ~vid:c with
      | Some (`Host name) -> name
      | _ -> Printf.sprintf "m%d.%d" c p
    in
    (* One element per live edge; its path is the discovering probe's. *)
    let link_path (e : Replay.edge_view) =
      let probe_ids =
        List.filter_map
          (fun (id, en) ->
            match en with Why.Probe { turns; _ } -> Some (id, turns) | _ -> None)
          (Explain.leaves snap e.Replay.ev_did)
      in
      match List.rev probe_ids with
      | (_, turns) :: _ -> (List.length probe_ids, turns)
      | [] -> (0, [])  (* the mapper-cable axiom edge *)
    in
    let links =
      List.map
        (fun (e : Replay.edge_view) ->
          let nprobes, path = link_path e in
          let evidence =
            Confidence.evidence_factor
              ~probes:(max 1 nprobes)
              ~merges:0 ~corroborations:0
          in
          let s_end c =
            Option.value ~default:1.0 (Hashtbl.find_opt class_struct c)
          in
          let structure =
            Float.min (s_end e.Replay.ev_a) (s_end e.Replay.ev_b)
          in
          {
            el_label =
              Printf.sprintf "%s-%s"
                (end_label e.Replay.ev_a e.Replay.ev_pa)
                (end_label e.Replay.ev_b e.Replay.ev_pb);
            el_kind = `Link;
            el_path = path;
            el_conf = Confidence.score ~evidence ~structure;
            el_probes = nprobes;
            el_merges = 0;
            el_corrob = 0;
            el_explored = false;
            el_ports = 2;
          })
        live_edges
    in
    let hosts = List.rev !hosts and switches = List.rev !switches in
    (* Ground truth: walk every discovery probe on the true network and
       check the embedding into N - F (the graph the full map is
       isomorphic to, Theorem 1). Separation is judged on [effective]
       — the fuzzer's silent-hosts-detached view — because a silent
       host hides its region from the full map exactly as no host
       would. *)
    let eff = Option.value ~default:g_true effective in
    let separated = Core_set.separated_set eff in
    let check_not_separated what n =
      if n >= 0 && n < Array.length separated && separated.(n) then
        Error
          (Printf.sprintf "%s resolves to true node %d inside the separated \
                           set F" what n)
      else Ok ()
    in
    let ( >>= ) r f = match r with Ok () -> f () | Error _ as e -> e in
    let true_switches = Hashtbl.create 64 in
    let true_hosts = Hashtbl.create 64 in
    let true_wires = Hashtbl.create 64 in
    let check_class (c, members) =
      match kind_of c members with
      | None -> Ok ()
      | Some k ->
        List.fold_left
          (fun acc v ->
            acc >>= fun () ->
            let path = Model.probe_string model v in
            let landed =
              (* The mapper's own host vertex has the empty probe path:
                 it IS the mapper, not whatever hangs off its cable. *)
              match (k, path) with
              | `Host _, [] -> Ok mapper
              | _ -> true_node_of_path g_true ~mapper path
            in
            match landed with
            | Error e -> Error (Printf.sprintf "class m%d: %s" c e)
            | Ok n -> (
              match k with
              | `Switch ->
                if Graph.is_host g_true n then
                  Error
                    (Printf.sprintf
                       "switch class m%d member v%d lands on host %s" c v
                       (Graph.name g_true n))
                else begin
                  (match Hashtbl.find_opt true_switches c with
                  | Some n0 when n0 <> n ->
                    Error
                      (Printf.sprintf
                         "switch class m%d members land on two true switches \
                          (%d and %d)"
                         c n0 n)
                  | _ ->
                    Hashtbl.replace true_switches c n;
                    Ok ())
                  >>= fun () ->
                  check_not_separated (Printf.sprintf "switch class m%d" c) n
                end
              | `Host name ->
                if not (Graph.is_host g_true n) then
                  Error
                    (Printf.sprintf "host class %s lands on a switch" name)
                else if Graph.name g_true n <> name then
                  Error
                    (Printf.sprintf "host class %s lands on host %s" name
                       (Graph.name g_true n))
                else begin
                  Hashtbl.replace true_hosts name ();
                  Ok ()
                end))
          (Ok ()) members
    in
    let check_link (e : Replay.edge_view) =
      let _, path = link_path e in
      match true_wire_of_path g_true ~mapper path with
      | Error err -> Error (Printf.sprintf "link eid %d: %s" e.Replay.ev_eid err)
      | Ok wire ->
        let (n1, _), (n2, _) = wire in
        Hashtbl.replace true_wires (canon_wire wire) ();
        check_not_separated (Printf.sprintf "link eid %d end" e.Replay.ev_eid) n1
        >>= fun () ->
        check_not_separated (Printf.sprintf "link eid %d end" e.Replay.ev_eid) n2
    in
    let check_conf e =
      if e.el_conf < 0.0 || e.el_conf > 1.0 then
        Error
          (Printf.sprintf "%s has confidence %g outside [0, 1]" e.el_label
             e.el_conf)
      else Ok ()
    in
    let subgraph =
      List.fold_left (fun acc cl -> acc >>= fun () -> check_class cl)
        (Ok ()) class_list
      >>= fun () ->
      List.fold_left (fun acc e -> acc >>= fun () -> check_link e)
        (Ok ()) live_edges
      >>= fun () ->
      List.fold_left (fun acc e -> acc >>= fun () -> check_conf e)
        (Ok ())
        (hosts @ switches @ links)
    in
    let all = hosts @ switches @ links in
    let mean_conf =
      match all with
      | [] -> 0.0
      | _ ->
        List.fold_left (fun s e -> s +. e.el_conf) 0.0 all
        /. float_of_int (List.length all)
    in
    let est_link_ends =
      List.fold_left
        (fun s e ->
          match e.el_kind with
          | `Host -> s +. 1.0
          | `Switch ->
            s
            +. Confidence.estimated_link_ends ~known_ports:e.el_ports ~radix
                 ~density ~explored:e.el_explored
          | `Link -> s)
        0.0 all
    in
    let report =
      {
        r_budget = budget;
        r_probe_limit = probe_limit;
        r_probes_used = !probes_sent;
        r_full_probes = full_probes;
        r_explorations = explorations;
        r_depth_used = depth_used;
        r_hosts = hosts;
        r_switches = switches;
        r_links = links;
        r_frontier = frontier;
        r_trace = trace;
        r_full_map = full_map;
        r_recovered_hosts = Hashtbl.length true_hosts;
        r_recovered_switches =
          (let distinct = Hashtbl.create 64 in
           Hashtbl.iter (fun _ n -> Hashtbl.replace distinct n ()) true_switches;
           Hashtbl.length distinct);
        r_recovered_links = Hashtbl.length true_wires;
        r_full_hosts = Graph.num_hosts full_map;
        r_full_switches = Graph.num_switches full_map;
        r_full_links = Graph.num_wires full_map;
        r_mean_conf = mean_conf;
        r_density = density;
        r_est_links = est_link_ends /. 2.0;
        r_subgraph = subgraph;
        r_blocked =
          (match directed with
          | Some d -> Directed.blocked d - blocked_before
          | None -> 0);
      }
    in
    if Obs.on () then begin
      Obs.count ~by:(List.length hosts) "cover.hosts_confirmed";
      Obs.count ~by:(List.length switches) "cover.switches_confirmed";
      Obs.count ~by:(List.length links) "cover.links_confirmed";
      Obs.set_gauge "cover.frontier_size" (float_of_int frontier);
      Obs.set_gauge "cover.budget_frac_used"
        (frac report.r_probes_used full_probes);
      Obs.set_gauge "cover.recovered_switch_frac"
        (frac report.r_recovered_switches report.r_full_switches);
      List.iter (fun e -> Obs.observe "cover.confidence" e.el_conf) all
    end;
    Ok report

(* ------------------------------------------------------------------ *)

let element_to_json e =
  J.Obj
    [
      ("label", J.Str e.el_label);
      ( "kind",
        J.Str
          (match e.el_kind with
          | `Host -> "host"
          | `Switch -> "switch"
          | `Link -> "link") );
      ("path", J.Arr (List.map J.int e.el_path));
      ("confidence", J.Num e.el_conf);
      ("probes", J.int e.el_probes);
      ("merges", J.int e.el_merges);
      ("corroborations", J.int e.el_corrob);
      ("explored", J.Bool e.el_explored);
      ("known_ports", J.int e.el_ports);
    ]

let report_to_json ?spec ?seed r =
  let meta =
    List.filter_map Fun.id
      [
        Option.map (fun s -> ("spec", J.Str s)) spec;
        Option.map (fun s -> ("seed", J.int s)) seed;
      ]
  in
  J.Obj
    (meta
    @ [
        ("budget", J.Str (budget_to_string r.r_budget));
        ("probe_limit", J.int r.r_probe_limit);
        ("probes_used", J.int r.r_probes_used);
        ("full_probes", J.int r.r_full_probes);
        ("explorations", J.int r.r_explorations);
        ("depth_used", J.int r.r_depth_used);
        ("frontier", J.int r.r_frontier);
        ("density", J.Num r.r_density);
        ("mean_confidence", J.Num r.r_mean_conf);
        ("estimated_links", J.Num r.r_est_links);
        ( "recovered",
          J.Obj
            [
              ("hosts", J.int r.r_recovered_hosts);
              ("switches", J.int r.r_recovered_switches);
              ("links", J.int r.r_recovered_links);
              ("full_hosts", J.int r.r_full_hosts);
              ("full_switches", J.int r.r_full_switches);
              ("full_links", J.int r.r_full_links);
            ] );
        ( "subgraph",
          match r.r_subgraph with
          | Ok () -> J.Bool true
          | Error e -> J.Str e );
        ("blocked_probes", J.int r.r_blocked);
        ("hosts", J.Arr (List.map element_to_json r.r_hosts));
        ("switches", J.Arr (List.map element_to_json r.r_switches));
        ("links", J.Arr (List.map element_to_json r.r_links));
      ])

let pp_summary ppf r =
  Format.fprintf ppf
    "budget %s: %d/%d probes (full run %d); recovered %d/%d switches, %d/%d \
     links, %d/%d hosts; mean confidence %.3f; frontier %d; est. links %.1f \
     (rho %.2f); subgraph %s%s"
    (budget_to_string r.r_budget)
    r.r_probes_used r.r_probe_limit r.r_full_probes r.r_recovered_switches
    r.r_full_switches r.r_recovered_links r.r_full_links r.r_recovered_hosts
    r.r_full_hosts r.r_mean_conf r.r_frontier r.r_est_links r.r_density
    (match r.r_subgraph with Ok () -> "ok" | Error e -> "VIOLATED: " ^ e)
    (if r.r_blocked > 0 then
       Printf.sprintf "; %d probes blocked by link orientation" r.r_blocked
     else "")
