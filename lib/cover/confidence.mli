(** Per-element confidence scoring for partial maps.

    A budget-stopped map is not just incomplete, it is {e biased}:
    probe sampling systematically under-observes degree mass
    (Dall'Asta et al., "Exploring networks with traceroute-like
    probes"). So an element's score has two independent factors:

    - an {e evidence} factor — how much ledger evidence supports the
      element's existence and identity (probe count, replicate
      agreement, D1/D2 corroboration). Monotone in each input,
      strictly below 1 (no finite probe count proves a map);
    - a {e structure} factor — the expected fraction of the element's
      true degree mass that has been observed, with the unprobed-port
      mass estimated from the wired-port density measured on fully
      enumerated switches. An explored class scores 1 here: every
      port was probed, absence evidence included.

    The final score is their product, clamped to [0, 1]. All functions
    are pure. *)

val evidence_factor : probes:int -> merges:int -> corroborations:int -> float
(** [e / (e + k)] over the weighted evidence mass
    [e = probes + 1.5*merges + 2*corroborations] with [k = 0.5]: one
    probe scores 2/3, three independent probes ~0.86, and replicate
    merges (each an identity deduction) count more than raw probes.
    Returns 0 on non-positive evidence. *)

val structure_factor :
  known_ports:int -> radix:int -> density:float -> explored:bool -> float
(** Expected observed fraction of the element's true wired degree:
    [k / (k + rho * (R - k))] for [k] known wired ports out of [R],
    where [rho] is the wired-port density estimate (the Dall'Asta
    correction: each unprobed port is wired with probability [rho],
    so unobserved mass is [rho * (R - k)]). [explored] short-circuits
    to 1.0 — every port was probed, so the degree is exact. *)

val score : evidence:float -> structure:float -> float
(** The product, clamped to [0, 1]. *)

val wired_density :
  explored_ports:int -> explored_switches:int -> radix:int -> float
(** The density estimate [rho]: wired ports observed on fully explored
    switches over the ports they expose ([radix] each). Falls back to
    0.5 when no switch has been fully explored yet (maximum-entropy
    prior over a port being wired). Clamped to [0.05, 1.0] so the
    correction never divides by a vanishing mass. *)

val estimated_link_ends :
  known_ports:int -> radix:int -> density:float -> explored:bool -> float
(** Bias-corrected estimate of a switch's true wired degree:
    [known] when explored, else [known + rho * (R - known)]. Summing
    this over discovered elements and halving estimates the link count
    of the discovered region {e including} its unprobed-degree mass —
    the quantity raw counting under-reports. *)
