let clamp01 x = if x < 0.0 then 0.0 else if x > 1.0 then 1.0 else x

let evidence_factor ~probes ~merges ~corroborations =
  let e =
    float_of_int probes
    +. (1.5 *. float_of_int merges)
    +. (2.0 *. float_of_int corroborations)
  in
  if e <= 0.0 then 0.0 else e /. (e +. 0.5)

let structure_factor ~known_ports ~radix ~density ~explored =
  if explored then 1.0
  else
    let k = float_of_int (min known_ports radix) in
    let unseen = density *. float_of_int (max 0 (radix - known_ports)) in
    if k <= 0.0 then 0.0 else clamp01 (k /. (k +. unseen))

let score ~evidence ~structure = clamp01 (evidence *. structure)

let wired_density ~explored_ports ~explored_switches ~radix =
  let rho =
    if explored_switches <= 0 || radix <= 0 then 0.5
    else float_of_int explored_ports /. float_of_int (explored_switches * radix)
  in
  Float.max 0.05 (Float.min 1.0 rho)

let estimated_link_ends ~known_ports ~radix ~density ~explored =
  if explored then float_of_int known_ports
  else
    float_of_int known_ports
    +. (density *. float_of_int (max 0 (radix - known_ports)))
