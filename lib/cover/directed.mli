(** The Goldstein directed-fabric variant: unidirectional switch links.

    The paper's probe calculus assumes every cable carries worms both
    ways; D1 (one cable per port) and D2 (unique host names) then let
    replicate evidence propagate in either direction. On a fabric with
    unidirectional switch-switch links that symmetry breaks, and probe
    complexity degrades — the measurement this module supports.

    Modelling note: a Berkeley switch-probe is a loopback
    [a1..ak 0 -ak..-a1] that retraces its own path, so {e strict}
    unidirectionality would kill every switch probe outright and the
    mapper would learn nothing. We model the forward data path as
    directed and treat replies and loopback legs as out-of-band (as if
    carried on a separate control plane): a probe is silenced exactly
    when its {e forward} walk crosses a switch-switch wire against the
    wire's orientation. Host cables stay bidirectional (a host's one
    port must both send and receive). *)

open San_topology
open San_simnet

type t

val create : seed:int -> Graph.t -> t
(** Orient every switch-switch wire in a uniformly random direction
    drawn from the seed (host wires stay bidirectional). The same seed
    and graph give the same orientation. *)

val blocked : t -> int
(** Probes silenced so far because their forward walk crossed a wire
    against its orientation. *)

val oriented_wires : t -> int
(** How many wires carry an orientation (= switch-switch wires). *)

val wrap : t -> Network.t -> mapper:Graph.node -> San_mapper.Berkeley.service
(** A probe service over [net] that drops (returns [Nothing], charging
    the timeout cost) any probe whose forward path is illegal under
    the orientation, and otherwise delegates to the network. The
    wrapped service is what a budgeted exploration runs against to
    measure directed-fabric probe complexity. *)
