open San_topology
open San_simnet

type t = {
  graph : Graph.t;
  allowed : (Graph.wire_end * Graph.wire_end, unit) Hashtbl.t;
      (** permitted (exit_end, entry_end) crossings of oriented wires *)
  mutable oriented : int;
  mutable n_blocked : int;
}

let create ~seed g =
  let rng = San_util.Prng.create seed in
  let allowed = Hashtbl.create 64 in
  let oriented = ref 0 in
  List.iter
    (fun ((e1 : Graph.wire_end), (e2 : Graph.wire_end)) ->
      let n1 = fst e1 and n2 = fst e2 in
      if (not (Graph.is_host g n1)) && not (Graph.is_host g n2) then begin
        incr oriented;
        if San_util.Prng.bool rng then Hashtbl.replace allowed (e1, e2) ()
        else Hashtbl.replace allowed (e2, e1) ()
      end)
    (Graph.wires g);
  { graph = g; allowed; oriented = !oriented; n_blocked = 0 }

let blocked t = t.n_blocked
let oriented_wires t = t.oriented

let forward_legal t ~src ~turns =
  let trace = Worm.eval t.graph ~src ~turns in
  List.for_all
    (fun (h : Worm.hop) ->
      let a = fst h.Worm.exit_end and b = fst h.Worm.entry_end in
      Graph.is_host t.graph a
      || Graph.is_host t.graph b
      || Hashtbl.mem t.allowed (h.Worm.exit_end, h.Worm.entry_end))
    trace.Worm.hops

let wrap t net ~mapper =
  let gate probe ~turns =
    if forward_legal t ~src:mapper ~turns then probe ~turns
    else begin
      t.n_blocked <- t.n_blocked + 1;
      (Network.Nothing, Network.probe_cost_miss net)
    end
  in
  {
    San_mapper.Berkeley.sv_radix = Graph.radix (Network.graph net);
    sv_host_probe = gate (fun ~turns -> Network.host_probe net ~src:mapper ~turns);
    sv_switch_probe =
      gate (fun ~turns -> Network.switch_probe net ~src:mapper ~turns);
  }
