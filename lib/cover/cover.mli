(** Budgeted partial mapping with a coverage-and-confidence report.

    The paper's mapper runs to completion; this module stops it at a
    probe budget and reports {e what the partial map knows and how
    well it knows it}. Every discovered element (host, switch class,
    link) carries a {!Confidence} score derived from its why-ledger
    evidence; the report also records the exploration frontier, the
    recovered fraction against a full reference map, and a
    bias-corrected link estimate (Dall'Asta correction for
    unprobed-degree mass).

    A budget-stopped model is partial, so it cannot be exported with
    [Model.to_graph] (unresolved replicates raise). Instead the run
    forces the why ledger on and reads the stabilised model back
    through {!San_why.Replay} — classes, live edges, member probe
    paths — which is exactly the evidence the confidence scores need
    anyway.

    The subgraph guarantee (Guillemin–Robert: a probed map embeds in
    the true map): every element's discovery probes are re-walked on
    the true network, all members of a class must land on one true
    node, and no walked node may lie in the separated set [F] — so
    the pruned partial map always embeds in [N - F], the graph the
    full map is isomorphic to (Theorem 1). *)

open San_topology
open San_simnet
module Berkeley = San_mapper.Berkeley

(** {1 Budgets} *)

type budget = Frac of float | Probes of int
    (** [Frac f] spends [f] times the probes of the full reference run
        ([0 < f <= 1]); [Probes n] is an absolute probe count. *)

val parse_budget : string -> (budget, string) result
(** ["0.3"] or ["probes:1500"]. *)

val budget_to_string : budget -> string

(** {1 Reports} *)

type element = {
  el_label : string;  (** host name, switch class ["m<vid>"], or ["A-B.p"] *)
  el_kind : [ `Host | `Switch | `Link ];
  el_path : Route.t;  (** a discovery probe's turn string (shortest) *)
  el_conf : float;  (** {!Confidence.score}, in [0, 1] *)
  el_probes : int;  (** distinct probe entries in its evidence tree *)
  el_merges : int;  (** replicate merges folded into the class *)
  el_corrob : int;  (** distinct D1/D2 rules among those merges *)
  el_explored : bool;  (** every port probed (class fully enumerated) *)
  el_ports : int;  (** known wired ports (hosts 1, links 2) *)
}

type report = {
  r_budget : budget;
  r_probe_limit : int;  (** the resolved absolute budget *)
  r_probes_used : int;  (** actual spend, retries and overshoot included *)
  r_full_probes : int;  (** the full reference run's probe count *)
  r_explorations : int;
  r_depth_used : int;
  r_hosts : element list;
  r_switches : element list;
  r_links : element list;
  r_frontier : int;  (** live discovered-but-unexplored switch classes *)
  r_trace : Berkeley.trace_point list;
  r_full_map : Graph.t;  (** the reference full map *)
  r_recovered_hosts : int;  (** distinct true hosts the partial map names *)
  r_recovered_switches : int;  (** distinct true switches its classes hit *)
  r_recovered_links : int;  (** distinct true wires its edges walk *)
  r_full_hosts : int;
  r_full_switches : int;
  r_full_links : int;  (** full-map denominators for the fractions *)
  r_mean_conf : float;  (** mean confidence over all elements *)
  r_density : float;  (** measured wired-port density (the rho estimate) *)
  r_est_links : float;  (** bias-corrected link estimate, see {!Confidence} *)
  r_subgraph : (unit, string) result;
      (** the embedding check: [Error] names the first violating element *)
  r_blocked : int;  (** probes a {!Directed} gate silenced (0 if none) *)
}

val elements : report -> element list
(** Hosts, switches, then links. *)

val run :
  ?policy:Berkeley.policy ->
  ?depth:Berkeley.depth ->
  ?record_trace:bool ->
  ?directed:Directed.t ->
  ?reference:Berkeley.result ->
  ?effective:Graph.t ->
  budget:budget ->
  Network.t ->
  mapper:Graph.node ->
  (report, string) result
(** Run the full reference map (unless [reference] is given — it must
    have succeeded), resolve the budget against its probe count, then
    re-run the exploration budget-stopped with the why ledger forced
    on and build the report. [directed] gates every probe through a
    wire-orientation (the Goldstein variant; the reference run is
    still undirected, so fractions stay comparable). [effective] is
    the graph ground truth is judged against (default the network's
    own graph; the fuzzer passes its silent-hosts-detached view).
    Errors when the reference map fails to export.

    Metrics (when {!San_obs.Obs.on}): gauges [cover.frontier_size] and
    [cover.probes_used] update live from the exploration tick;
    counters [cover.hosts_confirmed] / [cover.switches_confirmed] /
    [cover.links_confirmed], gauges [cover.budget_frac_used] /
    [cover.recovered_switch_frac] and the [cover.confidence] histogram
    (one observation per element) land when the run completes. *)

val report_to_json : ?spec:string -> ?seed:int -> report -> San_util.Json.t
(** The confidence-annotated partial map artifact: budget accounting,
    recovered fractions, and every element with its score and
    evidence counts. *)

val pp_summary : Format.formatter -> report -> unit
(** A few human lines: spend, recovered fractions, mean confidence,
    frontier, subgraph verdict. *)
