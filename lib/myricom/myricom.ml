open San_topology
open San_simnet

type counts = {
  loop_probes : int;
  host_probes : int;
  switch_probes : int;
  compare_probes : int;
}

let total c = c.loop_probes + c.host_probes + c.switch_probes + c.compare_probes

type result = {
  map : (Graph.t, string) Stdlib.result;
  counts : counts;
  elapsed_ns : float;
  switches_found : int;
  false_matches : int;
}

type peer = Phost of string | Pswitch of int * int

type known = {
  k_idx : int;
  k_route : Route.t;
  k_actual : Graph.node; (* ground truth, used only to count false matches *)
  k_slots : (int, peer) Hashtbl.t;
  mutable k_wlo : int;
  mutable k_whi : int;
}

exception Bad_map of string

let run ?(params = Params.default) ?(model = Collision.Circuit) ?responding
    ?max_depth ?(compare_depth_window = 3) g ~mapper =
  if not (Graph.is_host g mapper) then
    invalid_arg "Myricom.run: mapper must be a host";
  San_obs.Obs.with_span "myricom.run" @@ fun () ->
  let radix = Graph.radix g in
  let net =
    Network.create ~model ~params ?responding
      ~software_slowdown:params.Params.embedded_slowdown g
  in
  let max_depth =
    match max_depth with Some d -> d | None -> Analysis.diameter g + 2
  in
  let mapper_name = Graph.name g mapper in
  let elapsed = ref 0.0 in
  let loops = ref 0 and hostp = ref 0 and swp = ref 0 and compp = ref 0 in
  let false_matches = ref 0 in
  let known : known list ref = ref [] in
  let nknown = ref 0 in
  let hosts : (string, int * int) Hashtbl.t = Hashtbl.create 64 in
  let narrow k slot =
    k.k_wlo <- max k.k_wlo (-slot);
    k.k_whi <- min k.k_whi (radix - 1 - slot);
    if k.k_wlo > k.k_whi then raise (Bad_map "empty port window")
  in
  let slot_feasible k slot = k.k_wlo + slot <= radix - 1 && k.k_whi + slot >= 0 in
  let record k slot p =
    if not (Hashtbl.mem k.k_slots slot) then begin
      Hashtbl.replace k.k_slots slot p;
      narrow k slot
    end
  in
  let new_switch route actual =
    let k =
      {
        k_idx = !nknown;
        k_route = route;
        k_actual = actual;
        k_slots = Hashtbl.create 8;
        k_wlo = 0;
        k_whi = radix - 1;
      }
    in
    incr nknown;
    known := k :: !known;
    k
  in
  (* Ground truth destination of a route, used only for accounting. *)
  let actual_end route =
    let trace = Worm.eval g ~src:mapper ~turns:route in
    match trace.Worm.outcome with
    | Worm.Stranded n | Worm.Arrived n -> Some n
    | _ -> None
  in
  let root =
    match Graph.neighbor g (mapper, 0) with
    | Some (sw, _) -> new_switch [] sw
    | None -> raise (Bad_map "mapper host is not wired")
  in
  record root 0 (Phost mapper_name);
  Hashtbl.replace hosts mapper_name (root.k_idx, 0);
  let frontier = Queue.create () in
  Queue.add root frontier;
  let turn_order =
    List.concat (List.init (radix - 1) (fun i -> [ i + 1; -(i + 1) ]))
  in
  let compare_candidate s x =
    (* Is the switch behind (s, turn x) one we already know?  Try the
       known switches nearest in depth first (a firmware heuristic),
       scanning the spanning turn Y over feasible entries of B. *)
    let cand_depth = List.length s.k_route + 1 in
    let ordered =
      List.filter
        (fun b -> abs (List.length b.k_route - cand_depth) <= compare_depth_window)
        !known
      |> List.sort (fun a b ->
             compare
               (abs (List.length a.k_route - cand_depth))
               (abs (List.length b.k_route - cand_depth)))
    in
    let return_route b = List.rev_map (fun t -> -t) b.k_route in
    let try_b b =
      let rec try_turns = function
        | [] -> None
        | y :: rest ->
          (* Success means the candidate is B entered at slot -y. *)
          if (not (slot_feasible b (-y))) || Hashtbl.mem b.k_slots (-y) then
            try_turns rest
          else begin
            let probe = s.k_route @ [ x; y ] @ return_route b in
            incr compp;
            San_obs.Obs.count "myricom.compare_probes";
            let resp, cost = Network.host_probe net ~src:mapper ~turns:probe in
            elapsed := !elapsed +. cost;
            match resp with
            | Network.Host n when n = mapper_name -> Some (b, -y)
            | Network.Host _ | Network.Switch | Network.Nothing -> try_turns rest
          end
      in
      try_turns turn_order
    in
    let rec scan = function
      | [] -> None
      | b :: rest -> (
        match try_b b with Some m -> Some m | None -> scan rest)
    in
    scan ordered
  in
  let explore s =
    List.iter
      (fun x ->
        if slot_feasible s x && not (Hashtbl.mem s.k_slots x) then begin
          (* 1. loopback-cable test *)
          incr loops;
          San_obs.Obs.count "myricom.loop_probes";
          let d, cost = Network.loop_probe net ~src:mapper ~turns:s.k_route ~turn:x in
          elapsed := !elapsed +. cost;
          match d with
          | Some d ->
            record s x (Pswitch (s.k_idx, x + d));
            record s (x + d) (Pswitch (s.k_idx, x))
          | None -> (
            (* 2. host test *)
            incr hostp;
            San_obs.Obs.count "myricom.host_probes";
            let resp, cost =
              Network.host_probe net ~src:mapper ~turns:(s.k_route @ [ x ])
            in
            elapsed := !elapsed +. cost;
            match resp with
            | Network.Host name ->
              (match Hashtbl.find_opt hosts name with
              | None ->
                Hashtbl.replace hosts name (s.k_idx, x);
                record s x (Phost name)
              | Some _ ->
                (* The same host reached twice would mean a replicate
                   switch slipped through; record anyway. *)
                record s x (Phost name))
            | Network.Switch | Network.Nothing -> (
              (* 3. switch test *)
              incr swp;
              San_obs.Obs.count "myricom.switch_probes";
              let resp, cost =
                Network.switch_probe net ~src:mapper ~turns:(s.k_route @ [ x ])
              in
              elapsed := !elapsed +. cost;
              match resp with
              | Network.Host _ | Network.Nothing -> ()
              | Network.Switch -> (
                (* 4. disambiguate via comparison probes *)
                let cand_actual = actual_end (s.k_route @ [ x ]) in
                match compare_candidate s x with
                | Some (b, slot) ->
                  (match cand_actual with
                  | Some a when a <> b.k_actual -> incr false_matches
                  | _ -> ());
                  record s x (Pswitch (b.k_idx, slot));
                  record b slot (Pswitch (s.k_idx, x))
                | None ->
                  let nk =
                    new_switch
                      (s.k_route @ [ x ])
                      (Option.value cand_actual ~default:(-1))
                  in
                  record s x (Pswitch (nk.k_idx, 0));
                  record nk 0 (Pswitch (s.k_idx, x));
                  if List.length nk.k_route < max_depth then
                    Queue.add nk frontier)))
        end)
      turn_order
  in
  let rec drain () =
    match Queue.take_opt frontier with
    | None -> ()
    | Some s ->
      explore s;
      drain ()
  in
  let map =
    match
      drain ();
      (* Export: normalise each switch's used slots to start at 0. *)
      let out = Graph.create ~radix () in
      let by_idx = Hashtbl.create 64 in
      List.iter (fun k -> Hashtbl.replace by_idx k.k_idx k) !known;
      let node_of = Hashtbl.create 64 in
      let base_of = Hashtbl.create 64 in
      List.iter
        (fun k ->
          let slots = Hashtbl.fold (fun i _ acc -> i :: acc) k.k_slots [] in
          let lo = List.fold_left min 0 slots in
          let hi = List.fold_left max 0 slots in
          if hi - lo > radix - 1 then
            raise (Bad_map (Printf.sprintf "switch %d: slot span too wide" k.k_idx));
          Hashtbl.replace base_of k.k_idx lo;
          Hashtbl.replace node_of k.k_idx
            (Graph.add_switch out ~name:(Printf.sprintf "y%d" k.k_idx) ()))
        !known;
      Hashtbl.iter
        (fun name (_, _) -> ignore (Graph.add_host out ~name))
        hosts;
      let base i = Hashtbl.find base_of i in
      (* Wires: connect each switch-switch record once (from the
         lexicographically smaller end) and each host record from the
         switch side. *)
      List.iter
        (fun k ->
          let kn = Hashtbl.find node_of k.k_idx in
          Hashtbl.iter
            (fun slot p ->
              let this_end = (kn, slot - base k.k_idx) in
              match p with
              | Phost name ->
                let h = Option.get (Graph.host_by_name out name) in
                if Graph.neighbor out this_end = None && Graph.neighbor out (h, 0) = None
                then Graph.connect out this_end (h, 0)
              | Pswitch (j, jslot) ->
                if (k.k_idx, slot) <= (j, jslot) then begin
                  let other = (Hashtbl.find node_of j, jslot - base j) in
                  if Graph.neighbor out this_end = None && Graph.neighbor out other = None
                  then Graph.connect out this_end other
                end)
            k.k_slots)
        !known;
      out
    with
    | out -> Ok out
    | exception Bad_map m -> Error m
  in
  {
    map;
    counts =
      {
        loop_probes = !loops;
        host_probes = !hostp;
        switch_probes = !swp;
        compare_probes = !compp;
      };
    elapsed_ns = !elapsed;
    switches_found = !nknown;
    false_matches = !false_matches;
  }
