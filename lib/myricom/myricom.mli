(** The Myricom Algorithm (§4): the baseline the paper compares
    against.

    A breadth-first exploration that aggressively disambiguates switch
    identities {e on the fly}: every time a switch-probe discovers a
    candidate switch, comparison probes of the form
    [T1...Tn X -Sm...-S1] (out to the candidate, one spanning turn,
    then the return route of an already-known switch) decide whether
    the candidate is a switch seen before, so the map under
    construction never contains replicates and merging never cascades.
    The price is message count: comparisons against the set of known
    switches make the algorithm O(N²) messages with a large constant
    (up to 14 loop probes, 14 host probes, 14 switch probes per switch
    plus the comparisons — §4.2), which Figure 10 quantifies.

    The implementation runs against the same simulated {!San_simnet}
    substrate as the Berkeley algorithm; the [embedded_slowdown]
    parameter models its execution on the 37.5 MHz LANai message
    processor rather than the host CPU. *)

open San_topology
open San_simnet

type counts = {
  loop_probes : int;  (** loopback-cable tests *)
  host_probes : int;
  switch_probes : int;
  compare_probes : int;  (** switch-disambiguation probes *)
}
(** The four message categories of Figure 10. *)

val total : counts -> int

type result = {
  map : (Graph.t, string) Stdlib.result;
  counts : counts;
  elapsed_ns : float;
  switches_found : int;
  false_matches : int;
      (** comparison probes that matched through a coincidental
          alternative path — a documented weakness of the in-band
          comparison criterion; 0 on the NOW topologies *)
}

val run :
  ?params:Params.t ->
  ?model:Collision.model ->
  ?responding:(Graph.node -> bool) ->
  ?max_depth:int ->
  ?compare_depth_window:int ->
  Graph.t ->
  mapper:Graph.node ->
  result
(** Map the network with the Myricom algorithm from the given host.
    [responding] marks which hosts answer host-probes (default: all),
    exactly as in {!San_simnet.Network.create} — a silent host's port
    is indistinguishable from a vacancy.
    [max_depth] bounds route lengths (default: network diameter + 2,
    mirroring the firmware's hop limit). [compare_depth_window]
    (default 3) is one of §4.1's probe-reduction heuristics: a
    candidate is only compared against known switches whose discovery
    depth is within the window — a breadth-first exploration finds
    replicates at nearby depths. The probe costs are charged with the
    embedded-processor slowdown of [params]. *)
