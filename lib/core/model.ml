open San_topology
module Why = San_why.Why

exception Inconsistent of string

let fail fmt = Printf.ksprintf (fun s -> raise (Inconsistent s)) fmt

type vid = int
type vkind = Vhost of string | Vswitch

type edge = {
  eid : int;
  mutable ea : vid; (* always a canonical vertex *)
  mutable ia : int; (* slot in ea's frame *)
  mutable eb : vid;
  mutable ib : int;
  mutable e_dead : bool;
}

(* Slots live in a fixed dense array rather than a hashtable: the
   window narrowing in [add_edge]/[do_merge] proves every occupied slot
   of a switch lies in [-(radix-1), radix-1] (a slot outside that range
   empties the feasible-offset window first), so index [slot + s_base]
   with s_base = radix-1 always fits. Hosts only ever use slot 0. *)
type vertex = {
  v_id : vid;
  v_kind : vkind;
  v_probe : San_simnet.Route.t;
  mutable parent : vid; (* union-find; self when canonical *)
  mutable pshift : int; (* own slot + pshift = parent slot *)
  mutable slots : edge list array; (* canonical vertices only *)
  s_base : int; (* array index = slot + s_base *)
  mutable explored : bool;
  mutable dead : bool;
  mutable wlo : int; (* feasible actual entry-port offset window *)
  mutable whi : int;
}

type t = {
  m_radix : int;
  mutable verts : vertex array;
  mutable nverts : int;
  host_names : (string, vid) Hashtbl.t;
  mergelist : vid Queue.t;
  mutable all_edges : edge list;
  mutable n_edges_created : int;
  mutable n_edges_live : int;
  mutable n_verts_live : int;
  m_root_host : vid;
  m_root_switch : vid;
}

let radix t = t.m_radix
let root_host t = t.m_root_host
let root_switch t = t.m_root_switch

let vertex t v =
  if v < 0 || v >= t.nverts then fail "no vertex %d" v;
  t.verts.(v)

(* Union-find lookup accumulating frame shifts, with path compression. *)
let rec find t v =
  let vx = t.verts.(v) in
  if vx.parent = v then (v, 0)
  else begin
    let r, s = find t vx.parent in
    if vx.parent <> r then begin
      vx.pshift <- vx.pshift + s;
      vx.parent <- r
    end;
    (r, vx.pshift)
  end

let canonical t v = fst (find t v)
let frame_shift t v = snd (find t v)

let alloc t kind probe =
  let id = t.nverts in
  let nslots, s_base =
    match kind with
    | Vhost _ -> (1, 0)
    | Vswitch -> ((2 * t.m_radix) - 1, t.m_radix - 1)
  in
  let vx =
    {
      v_id = id;
      v_kind = kind;
      v_probe = probe;
      parent = id;
      pshift = 0;
      slots = Array.make nslots [];
      s_base;
      explored = false;
      dead = false;
      wlo = 0;
      whi = t.m_radix - 1;
    }
  in
  if id >= Array.length t.verts then begin
    let cap = max 16 (2 * Array.length t.verts) in
    let a = Array.make cap vx in
    Array.blit t.verts 0 a 0 id;
    t.verts <- a
  end;
  t.verts.(id) <- vx;
  t.nverts <- id + 1;
  t.n_verts_live <- t.n_verts_live + 1;
  id

let narrow_window t vx i =
  match vx.v_kind with
  | Vhost name -> if i <> 0 then fail "host %s wired at slot %d" name i
  | Vswitch ->
    vx.wlo <- max vx.wlo (-i);
    vx.whi <- min vx.whi (t.m_radix - 1 - i);
    if vx.wlo > vx.whi then
      fail "switch vertex %d: slot %d leaves no feasible port offset" vx.v_id i

(* Reads tolerate any slot (out of range = vacant): probe planning asks
   about arbitrary turns in shifted frames. Writes must be in range —
   the window narrowing guarantees it, so a violation is a real
   inconsistency, not a storage concern. *)
let slot_get xv i =
  let idx = i + xv.s_base in
  if idx < 0 || idx >= Array.length xv.slots then [] else xv.slots.(idx)

let slot_add xv i e =
  let idx = i + xv.s_base in
  if idx < 0 || idx >= Array.length xv.slots then
    fail "vertex %d: slot %d escapes the radix window" xv.v_id i
  else xv.slots.(idx) <- e :: xv.slots.(idx)

let live_slot_edges l = List.filter (fun e -> not e.e_dead) l

(* Attach a fresh edge between two canonical (vertex, slot) ends and
   queue any slot conflict it creates. *)
let add_edge t (va, ia) (vb, ib) =
  let xa = vertex t va and xb = vertex t vb in
  if va = vb && ia = ib then fail "edge from slot (%d,%d) to itself" va ia;
  let e =
    { eid = t.n_edges_created; ea = va; ia; eb = vb; ib; e_dead = false }
  in
  t.n_edges_created <- t.n_edges_created + 1;
  t.n_edges_live <- t.n_edges_live + 1;
  t.all_edges <- e :: t.all_edges;
  narrow_window t xa ia;
  narrow_window t xb ib;
  slot_add xa ia e;
  if List.length (live_slot_edges (slot_get xa ia)) > 1 then
    Queue.add va t.mergelist;
  slot_add xb ib e;
  if List.length (live_slot_edges (slot_get xb ib)) > 1 then
    Queue.add vb t.mergelist

(* Merge canonical [absorb] into canonical [keep]; [shift] converts
   absorb-frame slots into keep-frame slots. [why], when provenance is
   on, produces the ledger entry justifying the identification. *)
let do_merge ?why t ~keep ~absorb ~shift =
  if keep = absorb then begin
    if shift <> 0 then
      fail "vertex %d deduced equal to itself at shift %d" keep shift
  end
  else begin
    let xk = vertex t keep and xa = vertex t absorb in
    if xk.dead || xa.dead then fail "merge involving a pruned vertex";
    (match (xk.v_kind, xa.v_kind) with
    | Vswitch, Vswitch -> ()
    | Vhost n1, Vhost n2 ->
      if n1 <> n2 then fail "hosts %s and %s deduced equal" n1 n2
    | Vhost n, Vswitch | Vswitch, Vhost n ->
      fail "host %s deduced equal to a switch" n);
    xk.explored <- xk.explored || xa.explored;
    (* Offsets: o_keep = o_absorb - shift. *)
    xk.wlo <- max xk.wlo (xa.wlo - shift);
    xk.whi <- min xk.whi (xa.whi - shift);
    if xk.wlo > xk.whi then
      fail "merging %d into %d leaves no feasible port offset" absorb keep;
    (* Re-home every edge of [absorb]; the absorbed vertex's slot array
       is dropped outright so long-dead replicates cost no memory on
       data-center-scale runs (only canonical vertices carry slots). *)
    let a_slots = xa.slots and a_base = xa.s_base in
    xa.slots <- [||];
    Array.iteri
      (fun idx edges ->
        let i = idx - a_base in
        let tgt = i + shift in
        List.iter
          (fun e ->
            if not e.e_dead then begin
              if e.ea = absorb && e.ia = i then begin
                e.ea <- keep;
                e.ia <- tgt
              end;
              if e.eb = absorb && e.ib = i then begin
                e.eb <- keep;
                e.ib <- tgt
              end;
              if e.ea = e.eb && e.ia = e.ib then
                fail "merge wires slot (%d,%d) to itself" e.ea e.ia;
              (* A self-edge of [absorb] is visited from both of its
                 slots; insert it only once per slot. *)
              if not (List.memq e (slot_get xk tgt)) then slot_add xk tgt e;
              if List.length (live_slot_edges (slot_get xk tgt)) > 1 then
                Queue.add keep t.mergelist
            end)
          edges)
      a_slots;
    xa.parent <- keep;
    xa.pshift <- shift;
    t.n_verts_live <- t.n_verts_live - 1;
    if Why.on () then begin
      let did =
        match why with
        | Some f -> f ()
        | None ->
          Why.deduce ~rule:"merge"
            ~fact:
              (lazy (Printf.sprintf "v%d = v%d (shift %d)" keep absorb shift))
            ()
      in
      Why.note_merge ~kept:keep ~absorbed:absorb ~shift ~did
    end;
    if San_obs.Obs.on () then begin
      San_obs.Obs.count "mapper.merges";
      San_obs.Obs.emit
        (San_obs.Trace.Replicate_merged { kept = keep; absorbed = absorb })
    end;
    Queue.add keep t.mergelist
  end

let kill_edge t e =
  if not e.e_dead then begin
    e.e_dead <- true;
    t.n_edges_live <- t.n_edges_live - 1;
    Why.note_edge_dead ~eid:e.eid
  end

let endpoints_key e =
  let p1 = (e.ea, e.ia) and p2 = (e.eb, e.ib) in
  if p1 <= p2 then (p1, p2) else (p2, p1)

(* Process one canonical vertex: deduplicate its slots and fire the
   first slot-conflict deduction found, if any.  Returns true if a
   merge fired (the caller re-queues and restarts). *)
let process_vertex t c =
  let xc = vertex t c in
  let fired = ref false in
  let nslots = Array.length xc.slots in
  let idx = ref 0 in
  while (not !fired) && !idx < nslots do
    let i = !idx - xc.s_base in
    (match xc.slots.(!idx) with
    | [] -> ()
    | l ->
      (* Drop dead edges and duplicates (same actual wire found twice). *)
      let seen = Hashtbl.create 4 in
      let deduped =
        List.filter
          (fun e ->
            if e.e_dead then false
            else begin
              let key = endpoints_key e in
              if Hashtbl.mem seen key then begin
                kill_edge t e;
                false
              end
              else begin
                Hashtbl.add seen key ();
                true
              end
            end)
          l
      in
      xc.slots.(!idx) <- deduped;
      (match deduped with
      | e1 :: e2 :: _ ->
        let other e =
          if e.ea = c && e.ia = i then (e.eb, e.ib)
          else if e.eb = c && e.ib = i then (e.ea, e.ia)
          else fail "edge %d not anchored at slot (%d,%d)" e.eid c i
        in
        let w1, j1 = other e1 and w2, j2 = other e2 in
        (* An actual port has a single cable: the two far ends are
           replicates, aligned so that slot j2 becomes slot j1. *)
        let why =
          if Why.on () then
            Some
              (fun () ->
                Why.deduce ~rule:"d1_slot_conflict"
                  ~fact:
                    (lazy (Printf.sprintf
                       "v%d = v%d (shift %d): slot (%d,%d) carries both cables"
                       w1 w2 (j1 - j2) c i))
                  ~deps:
                    (List.filter_map
                       (fun e -> Why.edge_did ~eid:e.eid)
                       [ e1; e2 ])
                  ())
          else None
        in
        do_merge ?why t ~keep:w1 ~absorb:w2 ~shift:(j1 - j2);
        fired := true
      | [ _ ] | [] -> ()));
    incr idx
  done;
  !fired

let run_merge_loop t =
  while not (Queue.is_empty t.mergelist) do
    let v = Queue.take t.mergelist in
    let c, _ = find t v in
    let xc = vertex t c in
    if not xc.dead then
      if process_vertex t c then Queue.add c t.mergelist
  done

let create ~mapper_name ~radix =
  if radix < 2 then invalid_arg "Model.create: radix too small";
  let t =
    {
      m_radix = radix;
      verts = [||];
      nverts = 0;
      host_names = Hashtbl.create 64;
      mergelist = Queue.create ();
      all_edges = [];
      n_edges_created = 0;
      n_edges_live = 0;
      n_verts_live = 0;
      m_root_host = 0;
      m_root_switch = 1;
    }
  in
  let h = alloc t (Vhost mapper_name) [] in
  let s = alloc t Vswitch [] in
  assert (h = 0 && s = 1);
  Hashtbl.replace t.host_names mapper_name h;
  (* The mapper's single cable necessarily leads to a switch; the
     probe enters that switch at its frame's slot 0. *)
  add_edge t (s, 0) (h, 0);
  if Why.on () then begin
    Why.reset ();
    let dh =
      Why.record_axiom
        ~fact:
          (lazy (Printf.sprintf "v%d is the mapper host %s itself" h mapper_name))
    in
    Why.note_vertex ~vid:h ~kind:(`Host mapper_name) ~did:dh;
    let ds =
      Why.record_axiom
        ~fact:
          (lazy (Printf.sprintf
             "v%d: a switch assumed behind the mapper's single cable" s))
    in
    Why.note_vertex ~vid:s ~kind:`Switch ~did:ds;
    let de =
      Why.record_axiom
        ~fact:
          (lazy (Printf.sprintf "cable %s.0 -- v%d slot 0 (the mapper's own cable)"
             mapper_name s))
    in
    Why.note_edge ~eid:0 ~a:s ~sa:0 ~b:h ~sb:0 ~did:de
  end;
  t

let add_switch_vertex t ~parent ~turn ~probe =
  let p, s = find t parent in
  let child = alloc t Vswitch probe in
  add_edge t (p, turn + s) (child, 0);
  if Why.on () then begin
    let did =
      Why.deduce ~rule:"switch_reached"
        ~fact:
          (lazy (Printf.sprintf "a switch (v%d) answers behind turn %d of v%d" child
             turn p))
        ~probes:(Option.to_list (Why.last_probe ()))
        ()
    in
    Why.note_vertex ~vid:child ~kind:`Switch ~did;
    Why.note_edge
      ~eid:(t.n_edges_created - 1)
      ~a:p ~sa:(turn + s) ~b:child ~sb:0 ~did
  end;
  run_merge_loop t;
  child

let add_host_vertex t ~parent ~turn ~probe ~name =
  let p, s = find t parent in
  let child = alloc t (Vhost name) probe in
  add_edge t (p, turn + s) (child, 0);
  if Why.on () then begin
    let did =
      Why.deduce ~rule:"host_reached"
        ~fact:
          (lazy (Printf.sprintf "host %s (v%d) answers behind turn %d of v%d" name
             child turn p))
        ~probes:(Option.to_list (Why.last_probe ()))
        ()
    in
    Why.note_vertex ~vid:child ~kind:(`Host name) ~did;
    Why.note_edge
      ~eid:(t.n_edges_created - 1)
      ~a:p ~sa:(turn + s) ~b:child ~sb:0 ~did
  end;
  (match Hashtbl.find_opt t.host_names name with
  | None -> Hashtbl.replace t.host_names name child
  | Some old ->
    let oc, _ = find t old in
    let cc, _ = find t child in
    if oc <> cc then begin
      let why =
        if Why.on () then
          Some
            (fun () ->
              Why.deduce ~rule:"d2_same_host"
                ~fact:
                  (lazy (Printf.sprintf "v%d = v%d: both are host %s" oc cc name))
                ~deps:
                  (List.filter_map (fun v -> Why.birth_of ~vid:v) [ old; child ])
                ())
        else None
      in
      do_merge ?why t ~keep:oc ~absorb:cc ~shift:0
    end);
  run_merge_loop t;
  child

let kind t v = (vertex t v).v_kind
let probe_string t v = (vertex t v).v_probe
let is_explored t v = (vertex t (canonical t v)).explored
let set_explored t v = (vertex t (canonical t v)).explored <- true
let is_live t v = not (vertex t (canonical t v)).dead

let slot_occupied t v i =
  let c, _ = find t v in
  live_slot_edges (slot_get (vertex t c) i) <> []

let turn_slot t v turn = turn + frame_shift t v

let neighbor_end_via t v ~slot =
  let c, _ = find t v in
  let xc = vertex t c in
  match live_slot_edges (slot_get xc slot) with
  | [] -> None
  | e :: _ ->
    let far, fslot =
      if e.ea = c && e.ia = slot then (e.eb, e.ib) else (e.ea, e.ia)
    in
    (* Express the far slot in [far]'s own vid frame so it stays
       meaningful if the class is re-framed by later merges. *)
    Some (far, fslot - frame_shift t far)

let neighbor_via t v ~turn =
  Option.map fst (neighbor_end_via t v ~slot:(turn_slot t v turn))

let offset_window t v =
  let c, _ = find t v in
  let xc = vertex t c in
  (xc.wlo, xc.whi)

let incident_edges t c =
  let xc = vertex t (canonical t c) in
  let tbl = Hashtbl.create 8 in
  Array.iter
    (List.iter (fun e -> if not e.e_dead then Hashtbl.replace tbl e.eid e))
    xc.slots;
  Hashtbl.fold (fun _ e acc -> e :: acc) tbl []

let degree t v = List.length (incident_edges t v)

let kill_root_switch t =
  let c = canonical t t.m_root_switch in
  let xc = vertex t c in
  if not xc.dead then begin
    List.iter (kill_edge t) (incident_edges t c);
    xc.dead <- true;
    t.n_verts_live <- t.n_verts_live - 1;
    if Why.on () then begin
      let did =
        Why.deduce ~rule:"root_retraction"
          ~fact:
            (lazy (Printf.sprintf
               "assumed root switch v%d retracted: the turn-0 self-probe \
                found no switch on the mapper's cable" c))
          ~probes:(Option.to_list (Why.last_probe ()))
          ()
      in
      Why.note_prune ~vid:c ~did;
      Why.note_root_retraction ~did
    end
  end

(* PRUNE removes Theorem 1's F: every region that one switch-switch
   cable separates from all hosts.  The pseudo-code's degree<=1
   formulation only removes hostless *trees*; separation also covers
   hostless cycles and self-cabled pendants behind a bridge, and — the
   other direction — keeps a pendant switch whose single cable leads
   to a host (a mapper isolated with its switch after faults).

   The model is a multigraph on canonical vids (edge endpoints are kept
   canonical by [do_merge]), so Dense.separation applies directly: one
   O(V+E) pass instead of a BFS per cable, which is what lets PRUNE run
   on 10k-host fabrics. [whole_components] captures the hostless-cycle
   case: there any switch-switch cable, bridge or not, separates the
   entire component from all hosts. *)
let prune t =
  let live = List.filter (fun e -> not e.e_dead) t.all_edges in
  if live <> [] then begin
    let earr = Array.of_list live in
    let edge_u = Array.map (fun e -> e.ea) earr in
    let edge_v = Array.map (fun e -> e.eb) earr in
    let is_switch v =
      match (vertex t v).v_kind with Vswitch -> true | Vhost _ -> false
    in
    let in_f, sep =
      Dense.separation ~nodes:t.nverts ~edge_u ~edge_v
        ~is_host:(fun v -> not (is_switch v))
        ~candidate:(fun id ->
          let e = earr.(id) in
          e.ea <> e.eb && is_switch e.ea && is_switch e.eb)
        ~whole_components:true
    in
    (* One ledger entry per condemned region, citing the separating
       cable, as the per-edge formulation produced. *)
    let groups = Hashtbl.create 8 in
    for v = t.nverts - 1 downto 0 do
      let xv = t.verts.(v) in
      if in_f.(v) && xv.parent = v && not xv.dead then
        Hashtbl.replace groups sep.(v)
          (v :: Option.value ~default:[] (Hashtbl.find_opt groups sep.(v)))
    done;
    let keys = List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) groups []) in
    List.iter
      (fun key ->
        let vids = Hashtbl.find groups key in
        let did =
          if Why.on () then
            Why.deduce ~rule:"prune"
              ~fact:
                (lazy (Printf.sprintf
                   "region {%s} hangs off one switch-switch cable with \
                    no host inside: separated from N-F (Theorem 1)"
                   (String.concat "," (List.map (Printf.sprintf "v%d") vids))))
              ~deps:(Option.to_list (Why.edge_did ~eid:earr.(key).eid))
              ()
          else -1
        in
        List.iter
          (fun v ->
            let xv = vertex t v in
            if not xv.dead then begin
              List.iter (kill_edge t) (incident_edges t v);
              xv.dead <- true;
              t.n_verts_live <- t.n_verts_live - 1;
              Why.note_prune ~vid:v ~did
            end)
          vids)
      keys
  end

let known_hosts t = Hashtbl.length t.host_names
let created_vertices t = t.nverts
let live_vertices t = t.n_verts_live
let created_edges t = t.n_edges_created
let live_edges t = t.n_edges_live

let live_canonicals t =
  let acc = ref [] in
  for v = t.nverts - 1 downto 0 do
    let xv = t.verts.(v) in
    if xv.parent = v && not xv.dead then acc := v :: !acc
  done;
  !acc

let to_graph t =
  let g = Graph.create ~radix:t.m_radix () in
  let node_of = Hashtbl.create 64 in
  let base_of = Hashtbl.create 64 in
  List.iter
    (fun v ->
      let xv = vertex t v in
      let used_slots = ref [] in
      (* Every slot must have settled to at most one edge. *)
      Array.iteri
        (fun idx l ->
          match live_slot_edges l with
          | [] -> ()
          | [ _ ] -> used_slots := (idx - xv.s_base) :: !used_slots
          | _ ->
            fail "unresolved replicates at slot (%d,%d): explore deeper" v
              (idx - xv.s_base))
        xv.slots;
      let used_slots = !used_slots in
      let node =
        match xv.v_kind with
        | Vhost name ->
          if used_slots <> [ 0 ] && used_slots <> [] then
            fail "host %s uses slots other than 0" name;
          Graph.add_host g ~name
        | Vswitch ->
          (match used_slots with
          | [] -> ()
          | _ ->
            let lo = List.fold_left min max_int used_slots in
            let hi = List.fold_left max min_int used_slots in
            if hi - lo > t.m_radix - 1 then
              fail "switch vertex %d: slot span %d..%d exceeds radix" v lo hi;
            Hashtbl.replace base_of v lo);
          Graph.add_switch g ~name:(Printf.sprintf "m%d" v) ()
      in
      Hashtbl.replace node_of v node)
    (live_canonicals t);
  let base v = Option.value ~default:0 (Hashtbl.find_opt base_of v) in
  List.iter
    (fun e ->
      if not e.e_dead then begin
        let na = Hashtbl.find node_of e.ea and nb = Hashtbl.find node_of e.eb in
        Graph.connect g (na, e.ia - base e.ea) (nb, e.ib - base e.eb)
      end)
    t.all_edges;
  g

let check_invariants t =
  try
    List.iter
      (fun v ->
        let xv = vertex t v in
        if xv.wlo > xv.whi then fail "vertex %d: empty offset window" v;
        Array.iteri
          (fun idx l ->
            let i = idx - xv.s_base in
            List.iter
              (fun e ->
                if not e.e_dead then begin
                  let anchored =
                    (e.ea = v && e.ia = i) || (e.eb = v && e.ib = i)
                  in
                  if not anchored then
                    fail "edge %d listed at slot (%d,%d) but anchored elsewhere"
                      e.eid v i
                end)
              l)
          xv.slots)
      (live_canonicals t);
    let live_count = ref 0 in
    List.iter
      (fun e ->
        if not e.e_dead then begin
          incr live_count;
          let check_end (v, i) =
            let xv = vertex t v in
            if xv.parent <> v then fail "edge %d endpoint %d not canonical" e.eid v;
            if xv.dead then fail "edge %d endpoint %d is dead" e.eid v;
            if not (List.memq e (slot_get xv i)) then
              fail "edge %d missing from slot (%d,%d)" e.eid v i
          in
          check_end (e.ea, e.ia);
          check_end (e.eb, e.ib)
        end)
      t.all_edges;
    if !live_count <> t.n_edges_live then
      fail "live edge counter %d vs actual %d" t.n_edges_live !live_count;
    if List.length (live_canonicals t) <> t.n_verts_live then
      fail "live vertex counter mismatch";
    Ok ()
  with Inconsistent m -> Error m
