(** Parallel mapping (§6): every chosen host maps its local region
    concurrently; the partial maps are merged into a global view.

    Each local mapper explores only to [local_depth] and its map is
    trimmed to a trust radius (the outermost ring of a depth-bounded
    exploration can hold replicates that had no chance to merge).
    Trimmed partial maps are then glued with {!San_topology.Merge_maps}
    — shared hosts anchor the correspondence exactly as they anchor
    replicate merging. Wall-clock time is the slowest local mapper
    (probes of concurrent mappers do not collide under the quiescence
    assumption, like the paper's passive-responder concurrency). *)

open San_topology

type result = {
  map : (Graph.t, string) Stdlib.result;
  mappers : int;
  local_depth : int;
  trust_radius : int;
  wall_ns : float;  (** slowest local mapper *)
  sum_ns : float;  (** total work across mappers *)
  total_probes : int;
  stats : San_simnet.Stats.t;
      (** per-worker stats merged with {!San_simnet.Stats.merge} *)
  failed_locals : int;  (** local maps dropped (export failure) *)
}

val trim : Graph.t -> center:Graph.node -> radius:int -> Graph.t
(** [trim map ~center ~radius] keeps the trusted core of a local map:
    switches within [radius] hops of [center] plus their directly
    attached hosts, and the wires among the kept nodes. The outermost
    ring of a depth-bounded exploration can hold replicates that had
    no chance to merge; San_shard trims each shard's view with this
    before conflict-resolved merging. *)

val run :
  ?policy:Berkeley.policy ->
  ?local_depth:int ->
  ?trust_radius:int ->
  ?model:San_simnet.Collision.model ->
  ?params:San_simnet.Params.t ->
  mappers:Graph.node list ->
  Graph.t ->
  result
(** [run ~mappers g] maps [g] in parallel from the given hosts.
    [local_depth] defaults to 5 and [trust_radius] to
    [local_depth - 2]. @raise Invalid_argument on an empty or non-host
    mapper list. *)

val spread_mappers : ?seed:int -> Graph.t -> count:int -> Graph.node list
(** A convenience placement: [count] distinct hosts spread evenly over
    the host list. Without [seed] the spread starts at the first host
    (deterministic, backward-compatible); with [seed] the start offset
    is drawn from a seeded generator, so repeated placements rotate
    around the fabric while staying evenly spaced and replayable.
    [count] is clamped to the host population — the result never
    repeats a node. *)
