(** Emergent election: every mapper actually runs, concurrently, on the
    shared wormhole simulator.

    {!Election} prices election mode with a calibrated cost model; this
    module computes the same quantity {e mechanistically}. Every
    participating host runs the unmodified Berkeley engine as an OCaml
    effects fiber; their probe worms share the discrete-event fabric
    (colliding, queueing and delaying one another for real), and the
    paper's election rule emerges from deliveries: when an active
    mapper's host receives a probe worm from a higher interface
    address, it goes passive at its next decision point — it keeps
    answering probes, as the paper's passive responders do. The highest
    address can never be silenced and finishes the map.

    A co-simulation scheduler interleaves fibers and hardware events
    one event at a time, so no worm is ever injected into the
    simulator's past: a fiber only advances when the fabric has caught
    up with its clock. *)

open San_topology

type defer = { loser : Graph.node; at_ns : float; silenced_by : Graph.node }

type outcome =
  | Completed
  | Stuck of { at_ns : float; pending : int }
      (** the co-simulation found no runnable work — no fiber to start,
          no hardware event, no probe deadline — with mappers still
          unfinished. A scheduler invariant violation: reported as data
          (plus a {!San_obs.Trace.Mapper_stuck} event and a flight
          recording via {!San_why.Flight.fatal}) rather than an
          exception, so the run's evidence survives for post-mortem. *)

type result = {
  winner : Graph.node;
  map : (Graph.t, string) Stdlib.result;  (** the winner's map *)
  finished_at_ns : float;
      (** absolute simulated time at which the winner's map was done —
          the user-visible election-mode mapping time *)
  winner_probes : int;
  total_probes : int;  (** across all contenders, including losers *)
  defers : defer list;  (** chronological *)
  contenders : int;
  outcome : outcome;
      (** [Completed] normally; on [Stuck], [map] is an [Error]. *)
}

val run :
  ?policy:Berkeley.policy ->
  ?depth:Berkeley.depth ->
  ?params:San_simnet.Params.t ->
  ?mappers:Graph.node list ->
  ?max_skew_ns:float ->
  rng:San_util.Prng.t ->
  Graph.t ->
  result
(** [run ~rng g] elects over [mappers] (default: every host), each
    starting after an independent exponential skew with mean
    [max_skew_ns/4] truncated to [max_skew_ns] (default 2 ms —
    daemons woken by a cron-ish tick, not a barrier). *)
