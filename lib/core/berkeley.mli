(** The Berkeley mapping algorithm (§3): breadth-first probe
    exploration with lazy, deduction-driven replicate merging.

    The driver sends probes of increasing length from a designated
    mapper host, builds the {!Model} graph from the responses, merges
    replicates as identity information propagates backwards from
    host-vertices, prunes degree-1 switch remnants, and exports the
    map. Under the paper's assumptions (quiescent network, exploration
    depth at least [Q + D + 1]) the exported map is isomorphic to
    [N - F] (Theorem 1). *)

open San_topology
open San_simnet

type policy = {
  skip_explored : bool;
      (** do not re-explore a vertex whose merge class was already
          explored through another replicate (§3.3's mergelist
          algorithm behaviour; keeps exploration linear in practice) *)
  skip_known : bool;
      (** do not probe a turn whose canonical slot is already wired —
          such a probe is certain to succeed and teach nothing *)
  window_pruning : bool;
      (** §3.3.3: skip turns that are provably ILLEGAL for every
          feasible entry-port offset of the class *)
  host_probe_first : bool;
      (** order within a probe pair; the second probe is only sent
          when the first fails *)
  retries : int;
      (** resend an unanswered probe this many extra times before
          concluding "nothing" — pointless on a quiescent network (a
          structural failure repeats deterministically) but the
          standard defence once cross-traffic can eat probes (§6) *)
}

val resp_string : San_simnet.Network.response -> string
(** Canonical rendering of a probe response for the provenance ledger
    (["host h3"], ["switch"], ["silence"]). *)

val faithful : policy
(** The paper's production configuration: skip explored classes and
    known slots, prune provably illegal turns, send the switch-probe
    first. *)

val exhaustive : policy
(** No probe is ever skipped: the literal §3.1 pseudo-code, which
    explores the full tree of successful probe strings. Exponential in
    the depth — use only on small networks or depths; serves as the
    ground-truth oracle in tests. *)

type depth = Oracle | Fixed of int
(** [Oracle] computes [Q + D + 1] from the actual network (the
    analysis bound); [Fixed] is what a deployment without that luxury
    would configure. *)

type trace_point = {
  step : int;  (** switch explorations so far *)
  created_nodes : int;
  live_nodes : int;  (** model nodes surviving merges so far *)
  live_edges : int;
  frontier_length : int;
  hosts_found : int;  (** distinct hosts discovered so far *)
  elapsed_ns : float;
}
(** One Figure 8 sample, recorded after each switch exploration. *)

type result = {
  map : (Graph.t, string) Stdlib.result;
      (** the exported map, or why export failed (e.g. unresolved
          replicates when the depth was too small) *)
  explorations : int;
  host_probes : int;
  host_hits : int;
  switch_probes : int;
  switch_hits : int;
  elapsed_ns : float;  (** serialized mapper time, simulated *)
  depth_used : int;
  created_vertices : int;
  live_vertices : int;
  trace : trace_point list;  (** chronological; empty unless requested *)
}

val total_probes : result -> int

val run :
  ?policy:policy ->
  ?depth:depth ->
  ?record_trace:bool ->
  ?expand:(Route.t -> bool) ->
  ?probe_budget:int ->
  ?tick:(probes:int -> frontier:int -> unit) ->
  Network.t ->
  mapper:Graph.node ->
  result
(** [run net ~mapper] maps the network from the given host. Resets the
    network's statistics counters. @raise Invalid_argument if [mapper]
    is not a host. Model inconsistencies (impossible under the paper's
    assumptions) surface as [Model.Inconsistent].

    [expand] scopes the exploration (default: everything): a frontier
    switch is handed its probe path and has its ports enumerated only
    when [expand path] holds. Unlike [depth] — which caps probe length
    and rarely binds on small-diameter fabrics — this caps exploration
    {e breadth}: a sharded mapper (see [San_shard]) resolves the path
    against its reference topology and expands only switches in its
    ownership cell plus one ring, which is what makes N concurrent
    shards each strictly cheaper than one global mapper. Scoped-out
    switches are still discovered (their parent probed into them) but
    stay unexpanded stubs with unknown frames, so callers must trim
    the exported map to the expanded region.

    [probe_budget] stops the exploration once that many probes have
    been sent (retries included). The gate sits between explorations,
    never inside one — a half-enumerated switch would fabricate
    absence evidence — so the actual spend can overshoot by up to one
    exploration, [4 * (radix - 1) * (1 + retries)] probes, plus the turn-0
    root-confirmation probe, which is always sent. A budget-stopped
    model is partial: {!Model.to_graph} may raise on its unresolved
    replicates, so budgeted callers (see [San_cover]) read the model
    through the why-ledger replay instead of exporting it.

    [tick ~probes ~frontier] fires after every exploration with the
    cumulative probe count and current frontier length — the live
    coverage feed for [San_cover]'s gauges. *)

(** {1 Engine hooks for the §6 extensions} *)

type service = {
  sv_radix : int;
  sv_host_probe : turns:Route.t -> Network.response * float;
  sv_switch_probe : turns:Route.t -> Network.response * float;
}
(** What the exploration engine actually needs from the world: the
    response function R and per-probe costs. {!service_of_network}
    wraps the analytic simulator; {!Online} wraps the discrete-event
    wormhole simulator with live cross-traffic. *)

val service_of_network : Network.t -> mapper:Graph.node -> service

val explore_service :
  ?expand:(Route.t -> bool) ->
  ?probe_budget:int ->
  ?tick:(probes:int -> frontier:int -> unit) ->
  policy:policy ->
  depth_used:int ->
  record_trace:bool ->
  service ->
  Model.t ->
  Model.vid list ->
  int * float * trace_point list
(** The breadth-first engine on an existing model: seed the frontier
    with the given vertices, drain it, return (explorations, simulated
    elapsed ns, trace). Does not prune or export. [probe_budget] and
    [tick] as in {!run}. *)

val explore_from :
  ?expand:(Route.t -> bool) ->
  ?probe_budget:int ->
  ?tick:(probes:int -> frontier:int -> unit) ->
  policy:policy ->
  depth_used:int ->
  record_trace:bool ->
  Network.t ->
  mapper:Graph.node ->
  Model.t ->
  Model.vid list ->
  int * float * trace_point list
(** [explore_service] over [service_of_network]; does not reset
    network statistics — {!Randomized} uses it to complete a
    coupon-collected model. *)

val finish :
  model:Model.t ->
  explorations:int ->
  elapsed:float ->
  depth_used:int ->
  trace:trace_point list ->
  Network.t ->
  result
(** Prune, export and package a result from an explored model. *)

val resolve_depth : Network.t -> mapper:Graph.node -> depth -> int
