open San_topology
open San_simnet
module Why = San_why.Why

let resp_string = function
  | Network.Host name -> "host " ^ name
  | Network.Switch -> "switch"
  | Network.Nothing -> "silence"

type policy = {
  skip_explored : bool;
  skip_known : bool;
  window_pruning : bool;
  host_probe_first : bool;
  retries : int;
}

let faithful =
  {
    skip_explored = true;
    skip_known = true;
    window_pruning = true;
    host_probe_first = false;
    retries = 0;
  }

let exhaustive =
  {
    skip_explored = false;
    skip_known = false;
    window_pruning = false;
    host_probe_first = false;
    retries = 0;
  }

type depth = Oracle | Fixed of int

type trace_point = {
  step : int;
  created_nodes : int;
  live_nodes : int;
  live_edges : int;
  frontier_length : int;
  hosts_found : int;
  elapsed_ns : float;
}

type result = {
  map : (Graph.t, string) Stdlib.result;
  explorations : int;
  host_probes : int;
  host_hits : int;
  switch_probes : int;
  switch_hits : int;
  elapsed_ns : float;
  depth_used : int;
  created_vertices : int;
  live_vertices : int;
  trace : trace_point list;
}

let total_probes r = r.host_probes + r.switch_probes

type service = {
  sv_radix : int;
  sv_host_probe : turns:Route.t -> Network.response * float;
  sv_switch_probe : turns:Route.t -> Network.response * float;
}

let service_of_network net ~mapper =
  {
    sv_radix = Graph.radix (Network.graph net);
    sv_host_probe = (fun ~turns -> Network.host_probe net ~src:mapper ~turns);
    sv_switch_probe =
      (fun ~turns -> Network.switch_probe net ~src:mapper ~turns);
  }

(* The breadth-first exploration engine, shared between the standard
   driver, the §6 randomized extension (which seeds the model with
   coupon-collected paths before completing breadth-first), and the
   on-line mapper over the event-driven simulator. Returns
   (explorations, elapsed_ns, trace) and leaves the model stabilised
   but unpruned. *)
let explore_service ?(expand = fun _ -> true) ?probe_budget ?tick ~policy
    ~depth_used ~record_trace sv model seeds =
  let frontier : Model.vid San_util.Fifo.t = San_util.Fifo.create () in
  List.iter (San_util.Fifo.add frontier) seeds;
  let elapsed = ref 0.0 in
  let explorations = ref 0 in
  let probes_sent = ref 0 in
  let trace = ref [] in
  let turn_order = Probe_order.turn_order ~radix:sv.sv_radix in
  let budget_left () =
    match probe_budget with None -> true | Some b -> !probes_sent < b
  in
  let with_retries send =
    (* One initial attempt plus up to [retries] re-sends on silence. *)
    let rec go attempt =
      let (resp : Network.response), cost = send () in
      incr probes_sent;
      elapsed := !elapsed +. cost;
      match resp with
      | Network.Nothing when attempt < policy.retries -> go (attempt + 1)
      | r -> r
    in
    go 0
  in
  let probe_pair v turn =
    let probe = Model.probe_string model v @ [ turn ] in
    let try_host () =
      let resp = with_retries (fun () -> sv.sv_host_probe ~turns:probe) in
      if Why.on () then
        ignore
          (Why.record_probe ~kind:Why.Host_probe ~turns:probe
             ~resp:(resp_string resp));
      match resp with
      | Network.Host name ->
        ignore (Model.add_host_vertex model ~parent:v ~turn ~probe ~name);
        true
      | Network.Switch | Network.Nothing -> false
    in
    let try_switch () =
      let resp = with_retries (fun () -> sv.sv_switch_probe ~turns:probe) in
      if Why.on () then
        ignore
          (Why.record_probe ~kind:Why.Switch_probe ~turns:probe
             ~resp:(resp_string resp));
      match resp with
      | Network.Switch ->
        let child = Model.add_switch_vertex model ~parent:v ~turn ~probe in
        San_util.Fifo.add frontier child;
        true
      | Network.Host _ | Network.Nothing -> false
    in
    if policy.host_probe_first then (
      if not (try_host ()) then ignore (try_switch ()))
    else if not (try_switch ()) then ignore (try_host ())
  in
  let explore ~fill_only v =
    if San_obs.Obs.on () then begin
      San_obs.Obs.count "mapper.explorations";
      San_obs.Obs.observe "mapper.frontier"
        (float_of_int (San_util.Fifo.length frontier))
    end;
    Model.set_explored model v;
    List.iter
      (fun turn ->
        let skip =
          ((fill_only || policy.skip_known)
          && Probe_order.already_known model v ~turn)
          || (policy.window_pruning && Probe_order.provably_illegal model v ~turn)
        in
        if not skip then probe_pair v turn)
      turn_order;
    incr explorations;
    if record_trace then
      trace :=
        {
          step = !explorations;
          created_nodes = Model.created_vertices model;
          live_nodes = Model.live_vertices model;
          live_edges = Model.live_edges model;
          frontier_length = San_util.Fifo.length frontier;
          hosts_found = Model.known_hosts model;
          elapsed_ns = !elapsed;
        }
        :: !trace;
    match tick with
    | Some f ->
      f ~probes:!probes_sent ~frontier:(San_util.Fifo.length frontier)
    | None -> ()
  in
  (* The budget gates whole explorations, never individual probes
     inside one: a half-enumerated switch would leave the model with
     false absence evidence (slots that were merely unprobed look like
     slots that answered nothing). So the overshoot past [probe_budget]
     is bounded by one exploration — 2 * (radix - 1) turns, at most a
     switch and a host probe per turn, each retried: 4 * (radix - 1) *
     (1 + retries) probes — plus the turn-0 root confirmation below,
     which is always exempt. *)
  let rec drain () =
    if not (budget_left ()) then ()
    else
      match San_util.Fifo.next_element frontier with
      | None -> ()
      | Some v ->
        let path = Model.probe_string model v in
        let within_depth = List.length path < depth_used in
        (if within_depth && Model.is_live model v then begin
        (* A replicate of an explored class is not skipped outright:
           each worm holds the wires of its own path, so a member
           reached by a different route can probe into slots the first
           member physically could not (its worm would have collided
           with itself). Probing only the still-unknown slots keeps
           the heuristic's savings while recovering that evidence. *)
        if expand path then begin
            if not (policy.skip_explored && Model.is_explored model v) then
              explore ~fill_only:false v
            else explore ~fill_only:true v
          end
          else if Model.is_explored model v then
            (* Beyond the exploration scope, replicates of explored
               classes still fill in the slots self-collision blocked on
               the short path: without this, a scope-edge switch whose
               only in-scope route retraces the worm's own wires is never
               discovered. Unexplored classes stay unexpanded stubs. *)
            explore ~fill_only:true v
        end);
        drain ()
  in
  drain ();
  (* The root switch is the one vertex the model assumes rather than
     discovers. When the exploration confirmed nothing behind it, a
     turn-0 probe tells the two degenerate fabrics apart: off a real
     switch it bounces straight back to the mapper (keep the pendant
     switch), on an unwired cable it dies (retract the assumption). *)
  let root = Model.root_switch model in
  if Model.is_live model root && Model.degree model root <= 1 then begin
    let resp = with_retries (fun () -> sv.sv_host_probe ~turns:[ 0 ]) in
    if Why.on () then
      ignore
        (Why.record_probe ~kind:Why.Host_probe ~turns:[ 0 ]
           ~resp:(resp_string resp));
    match resp with
    | Network.Host _ ->
      if Why.on () then begin
        let did =
          Why.deduce ~rule:"root_confirmed"
            ~fact:
              (lazy
                (Printf.sprintf
                   "assumed root switch v%d confirmed: the turn-0 \
                    self-probe bounced back off it"
                   root))
            ~probes:(Option.to_list (Why.last_probe ()))
            ()
        in
        Why.note_root_confirmation ~vid:root ~did
      end
    | Network.Switch | Network.Nothing -> Model.kill_root_switch model
  end;
  (!explorations, !elapsed, List.rev !trace)

let explore_from ?expand ?probe_budget ?tick ~policy ~depth_used ~record_trace
    net ~mapper model seeds =
  explore_service ?expand ?probe_budget ?tick ~policy ~depth_used ~record_trace
    (service_of_network net ~mapper)
    model seeds

let finish ~model ~explorations ~elapsed ~depth_used ~trace net =
  Model.prune model;
  let map =
    match Model.to_graph model with
    | g -> Ok g
    | exception Model.Inconsistent m -> Error m
  in
  let st = Network.stats net in
  {
    map;
    explorations;
    host_probes = st.Stats.host_probes;
    host_hits = st.Stats.host_hits;
    switch_probes = st.Stats.switch_probes;
    switch_hits = st.Stats.switch_hits;
    elapsed_ns = elapsed;
    depth_used;
    created_vertices = Model.created_vertices model;
    live_vertices = Model.live_vertices model;
    trace;
  }

let resolve_depth net ~mapper = function
  | Oracle -> Core_set.search_depth (Network.graph net) ~root:mapper
  | Fixed d -> d

let run ?(policy = faithful) ?(depth = Oracle) ?(record_trace = false) ?expand
    ?probe_budget ?tick net ~mapper =
  let g = Network.graph net in
  if not (Graph.is_host g mapper) then
    invalid_arg "Berkeley.run: mapper must be a host";
  Network.reset_stats net;
  San_obs.Obs.with_span "berkeley.run" (fun () ->
      let depth_used = resolve_depth net ~mapper depth in
      let model =
        Model.create ~mapper_name:(Graph.name g mapper) ~radix:(Graph.radix g)
      in
      let explorations, elapsed, trace =
        explore_from ?expand ?probe_budget ?tick ~policy ~depth_used
          ~record_trace net ~mapper model
          [ Model.root_switch model ]
      in
      finish ~model ~explorations ~elapsed ~depth_used ~trace net)
