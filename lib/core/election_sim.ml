open San_topology
open San_simnet
open Effect
open Effect.Deep

type defer = { loser : Graph.node; at_ns : float; silenced_by : Graph.node }
type outcome = Completed | Stuck of { at_ns : float; pending : int }

type result = {
  winner : Graph.node;
  map : (Graph.t, string) Stdlib.result;
  finished_at_ns : float;
  winner_probes : int;
  total_probes : int;
  defers : defer list;
  contenders : int;
  outcome : outcome;
}

type probe_kind = PHost | PSwitch

type _ Effect.t +=
  | Probe : probe_kind * Route.t -> (Network.response * float) Effect.t

exception Silenced

type stage =
  | Outbound
  | Await_deadline  (* failure known; the mapper still waits out the timeout *)
  | Reply of Graph.node * Event_sim.worm_id

type pending = {
  pd_mapper : int;
  pd_kind : probe_kind;
  pd_turns : Route.t;
  pd_sent : float; (* mapper clock when the probe was initiated *)
  pd_deadline : float;
  pd_worm : Event_sim.worm_id;
  mutable pd_stage : stage;
  pd_cont : (Network.response * float, unit) continuation;
}

type mstate =
  | Waiting_start of float
  | Blocked of pending
  | Passive
  | Finished of (Graph.t, string) Stdlib.result

type mapper = {
  m_host : Graph.node;
  m_idx : int;
  mutable m_clock : float;
  mutable m_state : mstate;
  mutable m_silence : (float * Graph.node) option;
  mutable m_probes : int;
}

let run ?(policy = Berkeley.faithful) ?(depth = Berkeley.Oracle)
    ?(params = Params.default) ?mappers ?(max_skew_ns = 2e6) ~rng g =
  let hosts =
    match mappers with Some l -> l | None -> Graph.hosts g
  in
  (match hosts with [] -> invalid_arg "Election_sim.run: no mappers" | _ -> ());
  List.iter
    (fun h ->
      if not (Graph.is_host g h) then
        invalid_arg "Election_sim.run: mappers must be hosts")
    hosts;
  let sim = Event_sim.create ~params g in
  let depth_used =
    match depth with
    | Berkeley.Fixed d -> d
    | Berkeley.Oracle ->
      Core_set.search_depth g ~root:(List.hd hosts)
  in
  let mappers =
    Array.of_list
      (List.mapi
         (fun i h ->
           let skew =
             Float.min max_skew_ns
               (San_util.Prng.exponential rng (max_skew_ns /. 4.0))
           in
           {
             m_host = h;
             m_idx = i;
             m_clock = skew;
             m_state = Waiting_start skew;
             m_silence = None;
             m_probes = 0;
           })
         hosts)
  in
  let winner_idx = ref 0 in
  Array.iter
    (fun m ->
      if m.m_host > mappers.(!winner_idx).m_host then winner_idx := m.m_idx)
    mappers;
  let total_probes = ref 0 in
  let defers = ref [] in
  let request_silence (loser_host : Graph.node) ~by ~at =
    Array.iter
      (fun m ->
        if m.m_host = loser_host && by > loser_host && m.m_silence = None then begin
          match m.m_state with
          | Finished _ | Passive -> ()
          | Waiting_start _ ->
            m.m_silence <- Some (at, by);
            m.m_state <- Passive;
            defers := { loser = loser_host; at_ns = at; silenced_by = by } :: !defers
          | Blocked _ ->
            (* takes effect at the mapper's next decision point *)
            m.m_silence <- Some (at, by);
            defers := { loser = loser_host; at_ns = at; silenced_by = by } :: !defers
        end)
      mappers
  in
  (* The effect handler shared by all fibers, parameterised by mapper. *)
  let handler m =
    {
      retc = (fun map -> m.m_state <- Finished map);
      exnc =
        (fun e ->
          match e with
          | Silenced -> m.m_state <- Passive
          | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Probe (kind, turns) ->
            Some
              (fun (k : (a, unit) continuation) ->
                match m.m_silence with
                | Some _ -> discontinue k Silenced
                | None ->
                  m.m_probes <- m.m_probes + 1;
                  incr total_probes;
                  let send_at = m.m_clock +. params.Params.send_overhead_ns in
                  let route =
                    match kind with
                    | PHost -> turns
                    | PSwitch -> Route.switch_probe turns
                  in
                  let wid =
                    Event_sim.inject sim ~at_ns:send_at ~src:m.m_host
                      ~turns:route ()
                  in
                  m.m_state <-
                    Blocked
                      {
                        pd_mapper = m.m_idx;
                        pd_kind = kind;
                        pd_turns = turns;
                        pd_sent = m.m_clock;
                        pd_deadline =
                          send_at +. params.Params.probe_timeout_ns;
                        pd_worm = wid;
                        pd_stage = Outbound;
                        pd_cont = k;
                      })
          | _ -> None);
    }
  in
  let fiber m () : (Graph.t, string) Stdlib.result =
    let model =
      Model.create ~mapper_name:(Graph.name g m.m_host) ~radix:(Graph.radix g)
    in
    let sv =
      {
        Berkeley.sv_radix = Graph.radix g;
        sv_host_probe = (fun ~turns -> perform (Probe (PHost, turns)));
        sv_switch_probe = (fun ~turns -> perform (Probe (PSwitch, turns)));
      }
    in
    let _ =
      Berkeley.explore_service ~policy ~depth_used ~record_trace:false sv model
        [ Model.root_switch model ]
    in
    Model.prune model;
    match Model.to_graph model with
    | map -> Ok map
    | exception Model.Inconsistent msg -> Error msg
  in
  let start m = match_with (fiber m) () (handler m) in
  let resolve p resp cost =
    let m = mappers.(p.pd_mapper) in
    m.m_clock <- p.pd_sent +. cost;
    (* leaving Blocked; the continuation will set the next state *)
    m.m_state <- Passive;
    continue p.pd_cont (resp, cost)
  in
  let miss_cost =
    params.Params.send_overhead_ns +. params.Params.probe_timeout_ns
  in
  let hit_cost p ~response_at =
    response_at -. p.pd_sent +. params.Params.recv_overhead_ns
  in
  (* Inspect one blocked probe after the fabric advanced. *)
  let check p =
    let m = mappers.(p.pd_mapper) in
    let now = Event_sim.now_ns sim in
    let timed_out () =
      if now >= p.pd_deadline then resolve p Network.Nothing miss_cost
    in
    match p.pd_stage with
    | Await_deadline -> timed_out ()
    | Outbound -> (
      match Event_sim.outcome sim p.pd_worm with
      | Event_sim.Pending -> timed_out ()
      | Event_sim.Dropped _ -> p.pd_stage <- Await_deadline
      | Event_sim.Delivered { dst; at_ns; _ } when at_ns <= p.pd_deadline -> (
        match p.pd_kind with
        | PSwitch ->
          if dst = m.m_host then
            resolve p Network.Switch (hit_cost p ~response_at:at_ns)
          else p.pd_stage <- Await_deadline
        | PHost ->
          (* The probed host learns the prober's address — the
             election rule — and replies, active or passive alike. *)
          request_silence dst ~by:m.m_host ~at:at_ns;
          let reply_turns = List.rev_map (fun a -> -a) p.pd_turns in
          let rid =
            Event_sim.inject sim
              ~at_ns:(at_ns +. params.Params.reply_overhead_ns)
              ~src:dst ~turns:reply_turns ()
          in
          p.pd_stage <- Reply (dst, rid))
      | Event_sim.Delivered _ -> p.pd_stage <- Await_deadline)
    | Reply (h, rid) -> (
      match Event_sim.outcome sim rid with
      | Event_sim.Pending -> timed_out ()
      | Event_sim.Delivered { dst; at_ns; _ }
        when dst = m.m_host && at_ns <= p.pd_deadline ->
        resolve p
          (Network.Host (Graph.name g h))
          (hit_cost p ~response_at:at_ns)
      | Event_sim.Delivered _ | Event_sim.Dropped _ ->
        p.pd_stage <- Await_deadline;
        timed_out ())
  in
  let finished idx =
    match mappers.(idx).m_state with Finished _ -> true | _ -> false
  in
  (* Co-simulation: always take the earliest of (fiber start, hardware
     event, probe deadline). *)
  let stuck = ref None in
  while !stuck = None && not (finished !winner_idx) do
    let next_start =
      Array.fold_left
        (fun acc m ->
          match m.m_state with
          | Waiting_start t -> (
            match acc with
            | Some (t', _) when t' <= t -> acc
            | _ -> Some (t, m.m_idx))
          | _ -> acc)
        None mappers
    in
    let next_deadline =
      Array.fold_left
        (fun acc m ->
          match m.m_state with
          | Blocked p -> (
            match acc with
            | Some (t', _) when t' <= p.pd_deadline -> acc
            | _ -> Some (p.pd_deadline, m.m_idx))
          | _ -> acc)
        None mappers
    in
    let next_event = Event_sim.peek_time sim in
    let t_of = function Some (t, _) -> t | None -> infinity in
    let te = Option.value next_event ~default:infinity in
    if t_of next_start <= Float.min te (t_of next_deadline) then begin
      let _, idx = Option.get next_start in
      let m = mappers.(idx) in
      (match m.m_state with
      | Waiting_start t -> m.m_clock <- t
      | _ -> assert false);
      start m
    end
    else if te <= t_of next_deadline then begin
      ignore (Event_sim.step sim);
      Array.iter
        (fun m -> match m.m_state with Blocked p -> check p | _ -> ())
        mappers
    end
    else begin
      match next_deadline with
      | Some (_, idx) -> (
        match mappers.(idx).m_state with
        | Blocked p -> resolve p Network.Nothing miss_cost
        | _ -> assert false)
      | None ->
        (* Nothing can run: no fiber to start, no hardware event, no
           probe deadline, yet the winner has not finished. This is a
           scheduler invariant violation; record it instead of dying,
           so the flight recording explains what was in flight. *)
        let at_ns = Event_sim.now_ns sim in
        let pending =
          Array.fold_left
            (fun acc m ->
              match m.m_state with Finished _ -> acc | _ -> acc + 1)
            0 mappers
        in
        San_obs.Obs.emit (San_obs.Trace.Mapper_stuck { at_ns; pending });
        San_why.Flight.fatal
          ~note:
            (Printf.sprintf
               "election co-simulation stuck at %.0f ns with %d mappers \
                pending"
               at_ns pending);
        stuck := Some (Stuck { at_ns; pending })
    end
  done;
  let w = mappers.(!winner_idx) in
  {
    winner = w.m_host;
    map =
      (match (w.m_state, !stuck) with
      | Finished m, _ -> m
      | _, Some (Stuck { at_ns; pending }) ->
        Error
          (Printf.sprintf
             "election co-simulation stuck at %.0f ns with %d mappers pending"
             at_ns pending)
      | _ -> assert false);
    finished_at_ns = w.m_clock;
    winner_probes = w.m_probes;
    total_probes = !total_probes;
    defers = List.rev !defers;
    contenders = Array.length mappers;
    outcome = Option.value !stuck ~default:Completed;
  }
