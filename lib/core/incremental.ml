open San_topology
open San_simnet

type verdict = Unchanged | Changed of int

type result = {
  verdict : verdict;
  verify_probes : int;
  remap_probes : int;
  verify_elapsed_ns : float;
  total_elapsed_ns : float;
  map : (Graph.t, string) Stdlib.result;
}

(* For every switch of the map, a route (turn string) from the mapper
   and the port by which that route enters it — BFS over the map. *)
let switch_routes map ~mapper_m =
  let routes = Hashtbl.create 64 in
  (* mapper's switch: empty route, entered at its port towards the
     mapper host *)
  (match Graph.neighbor map (mapper_m, 0) with
  | None -> ()
  | Some (sw0, entry0) ->
    Hashtbl.replace routes sw0 ([], entry0);
    let q = Queue.create () in
    Queue.add sw0 q;
    while not (Queue.is_empty q) do
      let sw = Queue.take q in
      let turns, entry = Hashtbl.find routes sw in
      List.iter
        (fun (p, (peer, peer_port)) ->
          if
            (not (Graph.is_host map peer))
            && (not (Hashtbl.mem routes peer))
            && peer <> sw
          then begin
            Hashtbl.replace routes peer (turns @ [ p - entry ], peer_port);
            Queue.add peer q
          end)
        (Graph.wired_ports map sw)
    done);
  routes

let run ?policy ?depth ?remap net ~mapper ~previous =
  let g = Network.graph net in
  Network.reset_stats net;
  let full ~verify_probes ~verify_elapsed ~discrepancies =
    let map, remap_probes, remap_elapsed =
      match remap with
      | Some f -> f ~discrepancies
      | None ->
        let r = Berkeley.run ?policy ?depth net ~mapper in
        (r.Berkeley.map, Berkeley.total_probes r, r.Berkeley.elapsed_ns)
    in
    {
      verdict = Changed discrepancies;
      verify_probes;
      remap_probes;
      verify_elapsed_ns = verify_elapsed;
      total_elapsed_ns = verify_elapsed +. remap_elapsed;
      map;
    }
  in
  match Graph.host_by_name previous (Graph.name g mapper) with
  | None -> full ~verify_probes:0 ~verify_elapsed:0.0 ~discrepancies:1
  | Some mapper_m ->
    let routes = switch_routes previous ~mapper_m in
    let elapsed = ref 0.0 in
    let probes = ref 0 in
    let discrepancies = ref 0 in
    let check_port sw (turns, entry) p =
      let turn = p - entry in
      if turn <> 0 then begin
        incr probes;
        let expected = Graph.neighbor previous (sw, p) in
        match expected with
        | Some (peer, _) when Graph.is_host previous peer ->
          let resp, cost =
            Network.host_probe net ~src:mapper ~turns:(turns @ [ turn ])
          in
          elapsed := !elapsed +. cost;
          (match resp with
          | Network.Host name when name = Graph.name previous peer -> ()
          | Network.Host _ | Network.Switch | Network.Nothing ->
            incr discrepancies)
        | Some _ ->
          let resp, cost =
            Network.switch_probe net ~src:mapper ~turns:(turns @ [ turn ])
          in
          elapsed := !elapsed +. cost;
          (match resp with
          | Network.Switch -> ()
          | Network.Host _ | Network.Nothing -> incr discrepancies)
        | None -> (
          (* A vacancy: neither probe of the pair may answer. *)
          let sresp, scost =
            Network.switch_probe net ~src:mapper ~turns:(turns @ [ turn ])
          in
          elapsed := !elapsed +. scost;
          match sresp with
          | Network.Switch -> incr discrepancies
          | Network.Host _ | Network.Nothing -> (
            let hresp, hcost =
              Network.host_probe net ~src:mapper ~turns:(turns @ [ turn ])
            in
            elapsed := !elapsed +. hcost;
            match hresp with
            | Network.Host _ -> incr discrepancies
            | Network.Switch | Network.Nothing -> ()))
      end
    in
    (* Visit switches in BFS discovery order so early route breakage is
       detected before probing through it matters less. *)
    Hashtbl.iter
      (fun sw route ->
        for p = 0 to Graph.radix previous - 1 do
          check_port sw route p
        done)
      routes;
    (* Switches unreachable in the map would already make it suspect. *)
    if Hashtbl.length routes <> Graph.num_switches previous then
      incr discrepancies;
    San_obs.Obs.emit
      (San_obs.Trace.Epoch_started
         {
           name = (if !discrepancies = 0 then "verified" else "remap");
           discrepancies = !discrepancies;
         });
    San_obs.Obs.count "epoch.verifications";
    if !discrepancies = 0 then
      {
        verdict = Unchanged;
        verify_probes = !probes;
        remap_probes = 0;
        verify_elapsed_ns = !elapsed;
        total_elapsed_ns = !elapsed;
        map = Ok previous;
      }
    else
      full ~verify_probes:!probes ~verify_elapsed:!elapsed
        ~discrepancies:!discrepancies
