open San_topology
open San_simnet

type vertex = {
  id : int;
  vkind : [ `Host of string | `Switch ];
  probe : Route.t;
  mutable label : int;
  nbrs : (int, edge) Hashtbl.t; (* own frame index -> edge *)
}

and edge = {
  mutable va : vertex;
  mutable ia : int;
  mutable vb : vertex;
  mutable ib : int;
}

type result = {
  map : (Graph.t, string) Stdlib.result;
  tree_vertices : int;
  labels : int;
  host_probes : int;
  switch_probes : int;
}

exception Unresolved of string

(* Re-index a single vertex's frame by [s]. *)
let shift_vertex w s =
  if s <> 0 then begin
    let entries = Hashtbl.fold (fun i e acc -> (i, e) :: acc) w.nbrs [] in
    Hashtbl.reset w.nbrs;
    List.iter
      (fun (i, e) ->
        let i' = i + s in
        if e.va == w && e.ia = i then e.ia <- i'
        else if e.vb == w && e.ib = i then e.ib <- i';
        Hashtbl.replace w.nbrs i' e)
      entries
  end

let run ?(depth = Berkeley.Oracle) net ~mapper =
  let g = Network.graph net in
  if not (Graph.is_host g mapper) then
    invalid_arg "Labels.run: mapper must be a host";
  Network.reset_stats net;
  let depth_used =
    match depth with
    | Berkeley.Oracle -> Core_set.search_depth g ~root:mapper
    | Berkeley.Fixed d -> d
  in
  let next_id = ref 0 in
  let next_label = ref 0 in
  let fresh_label () =
    incr next_label;
    !next_label - 1
  in
  let host_labels : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let label_of_host name =
    match Hashtbl.find_opt host_labels name with
    | Some l -> l
    | None ->
      let l = fresh_label () in
      Hashtbl.replace host_labels name l;
      l
  in
  let vertices = ref [] in
  let mk kind probe label =
    let v = { id = !next_id; vkind = kind; probe; label; nbrs = Hashtbl.create 4 } in
    incr next_id;
    vertices := v :: !vertices;
    v
  in
  let connect v i w j =
    let e = { va = v; ia = i; vb = w; ib = j } in
    if Hashtbl.mem v.nbrs i || Hashtbl.mem w.nbrs j then
      raise (Unresolved "tree slot used twice");
    Hashtbl.replace v.nbrs i e;
    Hashtbl.replace w.nbrs j e
  in
  (* INITIALIZATION: the root host-vertex and its adjacent switch. *)
  let mapper_name = Graph.name g mapper in
  let root_host = mk (`Host mapper_name) [] (label_of_host mapper_name) in
  let root_switch = mk `Switch [] (fresh_label ()) in
  connect root_switch 0 root_host 0;
  (* EXPLORE: breadth-first over probe strings, nothing skipped. *)
  let frontier = Queue.create () in
  Queue.add root_switch frontier;
  let turns =
    List.concat
      (List.init (Graph.radix g - 1) (fun i -> [ i + 1; -(i + 1) ]))
  in
  let continue = ref true in
  while !continue do
    match Queue.take_opt frontier with
    | None -> continue := false
    | Some v when List.length v.probe >= depth_used -> ()
    | Some v ->
      List.iter
        (fun turn ->
          let probe = v.probe @ [ turn ] in
          let sresp, _ = Network.switch_probe net ~src:mapper ~turns:probe in
          if San_why.Why.on () then
            ignore
              (San_why.Why.record_probe ~kind:San_why.Why.Switch_probe
                 ~turns:probe ~resp:(Berkeley.resp_string sresp));
          match sresp with
          | Network.Switch ->
            let child = mk `Switch probe (fresh_label ()) in
            connect v turn child 0;
            Queue.add child frontier
          | Network.Host _ | Network.Nothing -> (
            let hresp, _ = Network.host_probe net ~src:mapper ~turns:probe in
            if San_why.Why.on () then
              ignore
                (San_why.Why.record_probe ~kind:San_why.Why.Host_probe
                   ~turns:probe ~resp:(Berkeley.resp_string hresp));
            match hresp with
            | Network.Host name ->
              let child = mk (`Host name) probe (label_of_host name) in
              connect v turn child 0
            | Network.Switch | Network.Nothing -> ()))
        turns
  done;
  let all = List.rev !vertices in
  (* MERGE: rounds of label deductions until stabilisation (§3.1).
     mergeLabels relabels u2's whole class to u1's label and shifts
     those vertices' frames by j - k. *)
  let other_end e v = if e.va == v then (e.vb, e.ib) else (e.va, e.ia) in
  let merge_labels u1 j u2 k =
    let src = u2.label and tgt = u1.label in
    let s = j - k in
    List.iter
      (fun w ->
        if w.label = src then begin
          w.label <- tgt;
          shift_vertex w s
        end)
      all
  in
  let stabilised = ref false in
  while not !stabilised do
    stabilised := true;
    (* group vertices by label *)
    let by_label = Hashtbl.create 64 in
    List.iter
      (fun v ->
        Hashtbl.replace by_label v.label
          (v :: Option.value ~default:[] (Hashtbl.find_opt by_label v.label)))
      all;
    let deduce () =
      Hashtbl.fold
        (fun _ group found ->
          if found <> None then found
          else
            let rec pairs = function
              | v1 :: rest ->
                let hit =
                  List.find_map
                    (fun v2 ->
                      (* a slot where both have neighbours with
                         different labels *)
                      Hashtbl.fold
                        (fun i e1 acc ->
                          if acc <> None then acc
                          else
                            match Hashtbl.find_opt v2.nbrs i with
                            | None -> None
                            | Some e2 ->
                              let n1, j = other_end e1 v1 in
                              let n2, k = other_end e2 v2 in
                              if n1.label <> n2.label then Some (n1, j, n2, k)
                              else None)
                        v1.nbrs None)
                    rest
                in
                (match hit with Some _ -> hit | None -> pairs rest)
              | [] -> None
            in
            pairs group)
        by_label None
    in
    match deduce () with
    | Some (n1, j, n2, k) ->
      if San_why.Why.on () then
        ignore
          (San_why.Why.deduce ~rule:"label_merge"
             ~fact:
               (lazy (Printf.sprintf
                  "label %d = label %d (shift %d): equal-labelled parents \
                   disagree at a shared slot"
                  n1.label n2.label (j - k)))
             ());
      merge_labels n1 j n2 k;
      stabilised := false
    | None -> ()
  done;
  let distinct_labels =
    List.sort_uniq compare (List.map (fun v -> v.label) all)
  in
  (* PRUNE + export on the quotient M / L. *)
  let map =
    try
      (* Quotient wires, deduplicated: ((label, idx), (label, idx)). *)
      let wire_of e =
        let a = (e.va.label, e.ia) and b = (e.vb.label, e.ib) in
        if a <= b then (a, b) else (b, a)
      in
      let wires = Hashtbl.create 64 in
      List.iter
        (fun v ->
          Hashtbl.iter (fun _ e -> Hashtbl.replace wires (wire_of e) ()) v.nbrs)
        all;
      let kind_of = Hashtbl.create 64 in
      List.iter
        (fun v ->
          match (Hashtbl.find_opt kind_of v.label, v.vkind) with
          | None, k -> Hashtbl.replace kind_of v.label k
          | Some (`Host a), `Host b when a = b -> ()
          | Some `Switch, `Switch -> ()
          | Some _, _ -> raise (Unresolved "label with conflicting kinds"))
        all;
      (* PRUNE: kill every switch class a single switch-switch
         quotient wire separates from all host classes — the same
         separation criterion as Core_set.separated_set (hostless
         trees AND cycles; a pendant class wired to a host stays). *)
      let dead = Hashtbl.create 16 in
      let live_wires () =
        Hashtbl.fold
          (fun (((la, _), (lb, _)) as w) () acc ->
            if Hashtbl.mem dead la || Hashtbl.mem dead lb then acc else w :: acc)
          wires []
      in
      let reach ~avoid start ws =
        let seen = Hashtbl.create 16 in
        let frontier = Queue.create () in
        Hashtbl.replace seen start ();
        Queue.add start frontier;
        while not (Queue.is_empty frontier) do
          let u = Queue.take frontier in
          List.iter
            (fun (((la, _), (lb, _)) as w) ->
              if w <> avoid then
                let far =
                  if la = u then Some lb
                  else if lb = u then Some la
                  else None
                in
                match far with
                | Some f when not (Hashtbl.mem seen f) ->
                  Hashtbl.replace seen f ();
                  Queue.add f frontier
                | _ -> ())
            ws
        done;
        seen
      in
      List.iter
        (fun (((la, _), (lb, _)) as w) ->
          if
            (not (Hashtbl.mem dead la))
            && (not (Hashtbl.mem dead lb))
            && la <> lb
            && Hashtbl.find kind_of la = `Switch
            && Hashtbl.find kind_of lb = `Switch
          then begin
            let ws = live_wires () in
            let try_side start =
              let seen = reach ~avoid:w start ws in
              let hostless =
                Hashtbl.fold
                  (fun l () acc -> acc && Hashtbl.find kind_of l = `Switch)
                  seen true
              in
              if hostless then
                Hashtbl.iter (fun l () -> Hashtbl.replace dead l ()) seen
            in
            try_side la;
            if not (Hashtbl.mem dead la) then try_side lb
          end)
        (live_wires ());
      (* Slot sanity: each (label, idx) carries at most one wire. *)
      let slot_seen = Hashtbl.create 64 in
      List.iter
        (fun (a, b) ->
          List.iter
            (fun endp ->
              if Hashtbl.mem slot_seen endp then
                raise (Unresolved "quotient slot carries two wires");
              Hashtbl.replace slot_seen endp ())
            [ a; b ])
        (live_wires ());
      (* Export with per-class index normalisation. *)
      let out = Graph.create ~radix:(Graph.radix g) () in
      let node_of = Hashtbl.create 64 in
      let base_of = Hashtbl.create 64 in
      let live_classes =
        List.filter (fun l -> not (Hashtbl.mem dead l)) distinct_labels
      in
      List.iter
        (fun l ->
          let idxs =
            List.concat_map
              (fun ((la, ia), (lb, ib)) ->
                (if la = l then [ ia ] else []) @ if lb = l then [ ib ] else [])
              (live_wires ())
          in
          let base = match idxs with [] -> 0 | i :: r -> List.fold_left min i r in
          Hashtbl.replace base_of l base;
          let node =
            match Hashtbl.find kind_of l with
            | `Host name -> Graph.add_host out ~name
            | `Switch -> Graph.add_switch out ~name:(Printf.sprintf "l%d" l) ()
          in
          Hashtbl.replace node_of l node)
        live_classes;
      List.iter
        (fun ((la, ia), (lb, ib)) ->
          Graph.connect out
            (Hashtbl.find node_of la, ia - Hashtbl.find base_of la)
            (Hashtbl.find node_of lb, ib - Hashtbl.find base_of lb))
        (live_wires ());
      Ok out
    with
    | Unresolved m -> Error m
    | Invalid_argument m -> Error m
  in
  let st = Network.stats net in
  {
    map;
    tree_vertices = !next_id;
    labels = List.length distinct_labels;
    host_probes = st.Stats.host_probes;
    switch_probes = st.Stats.switch_probes;
  }
