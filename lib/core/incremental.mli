(** Incremental remapping: the cheap epoch.

    The deployed system remaps periodically, and on most epochs nothing
    has changed. A full remap pays for replicate exploration — many
    probes per physical switch — but once a trusted map exists,
    switch identities are known: one route per switch and {e one probe
    per port} suffice to confirm every wire (and every vacancy) is
    still as mapped. On the 100-node NOW that is ~7x fewer probes than
    a full remap.

    Any discrepancy — a probe that should have answered and did not,
    answered when it should not have, or answered with the wrong kind
    or host name — means the map is stale; this driver then simply
    falls back to a full {!Berkeley} run (re-exploring only the
    affected region is possible in principle, but a stale map gives no
    reliable boundary for "affected"). *)

open San_topology
open San_simnet

type verdict =
  | Unchanged  (** every port answered as mapped *)
  | Changed of int  (** discrepancies found; a full remap was run *)

type result = {
  verdict : verdict;
  verify_probes : int;
  remap_probes : int;  (** probes the fallback remap spent; 0 if none ran *)
  verify_elapsed_ns : float;
  total_elapsed_ns : float;  (** verification plus any fallback remap *)
  map : (Graph.t, string) Stdlib.result;  (** the current map *)
}

val run :
  ?policy:Berkeley.policy ->
  ?depth:Berkeley.depth ->
  ?remap:(discrepancies:int -> (Graph.t, string) Stdlib.result * int * float) ->
  Network.t ->
  mapper:Graph.node ->
  previous:Graph.t ->
  result
(** [run net ~mapper ~previous] verifies [previous] against the live
    network and remaps in full only if it is stale. The mapper host is
    located in [previous] by name; if absent, a full remap runs
    immediately.

    [remap] replaces the built-in solo {!Berkeley} fallback: on a
    stale map it is called once and must return
    [(map, probes, elapsed_ns)]. The daemon uses it to run the
    fallback over [San_shard]'s concurrent mappers. *)
