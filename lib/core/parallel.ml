open San_topology

type result = {
  map : (Graph.t, string) Stdlib.result;
  mappers : int;
  local_depth : int;
  trust_radius : int;
  wall_ns : float;
  sum_ns : float;
  total_probes : int;
  stats : San_simnet.Stats.t;
  failed_locals : int;
}

let spread_mappers ?seed g ~count =
  let hosts = Array.of_list (Graph.hosts g) in
  let n = Array.length hosts in
  if n = 0 then []
  else begin
    let count = max 1 (min count n) in
    let off =
      match seed with
      | None -> 0
      | Some s -> San_util.Prng.int (San_util.Prng.create s) n
    in
    (* Clamping plus sort_uniq: even when [count] exceeds the host
       population the placement is distinct hosts, never repeats. *)
    let idxs = List.init count (fun i -> (off + i * n / count) mod n) in
    List.map (fun i -> hosts.(i)) (List.sort_uniq compare idxs)
  end

(* Keep only the trusted core of a local map: switches within
   [radius] of the local mapper plus their directly attached hosts. *)
let trim map ~center ~radius =
  let dist = Analysis.bfs_distances map center in
  let keep v =
    if Graph.is_host map v then
      v = center
      || (match Graph.neighbor map (v, 0) with
         | Some (sw, _) -> dist.(sw) <= radius
         | None -> false)
    else dist.(v) <= radius
  in
  let g = Graph.create ~radix:(Graph.radix map) () in
  let node_of = Hashtbl.create 64 in
  List.iter
    (fun v ->
      if keep v then
        Hashtbl.replace node_of v
          (if Graph.is_host map v then Graph.add_host g ~name:(Graph.name map v)
           else Graph.add_switch g ~name:(Graph.name map v) ()))
    (Graph.nodes map);
  List.iter
    (fun ((a, pa), (b, pb)) ->
      match (Hashtbl.find_opt node_of a, Hashtbl.find_opt node_of b) with
      | Some na, Some nb -> Graph.connect g (na, pa) (nb, pb)
      | _ -> ())
    (Graph.wires map);
  g

let run ?(policy = Berkeley.faithful) ?(local_depth = 5) ?trust_radius ?model
    ?params ~mappers g =
  (match mappers with
  | [] -> invalid_arg "Parallel.run: no mappers"
  | l ->
    List.iter
      (fun m ->
        if not (Graph.is_host g m) then
          invalid_arg "Parallel.run: mappers must be hosts")
      l);
  let trust_radius = Option.value trust_radius ~default:(local_depth - 2) in
  let locals =
    List.map
      (fun m ->
        let net = San_simnet.Network.create ?model ?params g in
        let r =
          Berkeley.run ~policy ~depth:(Berkeley.Fixed local_depth) net ~mapper:m
        in
        (m, r, San_simnet.Stats.copy (San_simnet.Network.stats net)))
      mappers
  in
  (* Aggregate the per-worker accounting into one cluster-wide view. *)
  let stats =
    List.fold_left
      (fun acc (_, _, st) -> San_simnet.Stats.merge acc st)
      (San_simnet.Stats.create ())
      locals
  in
  let locals = List.map (fun (m, r, _) -> (m, r)) locals in
  let wall =
    List.fold_left
      (fun acc (_, r) -> Float.max acc r.Berkeley.elapsed_ns)
      0.0 locals
  in
  let sum =
    List.fold_left (fun acc (_, r) -> acc +. r.Berkeley.elapsed_ns) 0.0 locals
  in
  let total_probes = San_simnet.Stats.total_probes stats in
  let trimmed, failed =
    List.fold_left
      (fun (ok, failed) (m, r) ->
        match r.Berkeley.map with
        | Error _ -> (ok, failed + 1)
        | Ok map -> (
          match Graph.host_by_name map (Graph.name g m) with
          | None -> (ok, failed + 1)
          | Some center -> (trim map ~center ~radius:trust_radius :: ok, failed)))
      ([], 0) locals
  in
  let map =
    match trimmed with
    | [] -> Error "every local map failed"
    | maps -> Merge_maps.union_all (List.rev maps)
  in
  {
    map;
    mappers = List.length mappers;
    local_depth;
    trust_radius;
    wall_ns = wall;
    sum_ns = sum;
    total_probes;
    stats;
    failed_locals = failed;
  }
