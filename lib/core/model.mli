(** The model graph [M] and the replicate-merging machinery (§3.1–3.3).

    Every non-null probe response creates a model vertex whose
    {e frame} is fixed by the probe that created it: slot index [i]
    denotes the actual switch port [entry_port + i], so slot 0 is the
    port the probe entered through and a tree edge always joins
    [(parent, turn)] to [(child, 0)]. Frames of replicate vertices
    differ by a constant — the paper's {e indexing offset}
    (Definition 1) — so merging two vertices re-indexes one of them by
    the difference [j1 - j2] of the slots through which they were
    deduced equal (the [mergeLabels] shift of §3.1.2).

    Following §3.3, vertices are merged physically through a mergelist
    worklist rather than labelled: a union-find with per-element index
    shifts keeps every absorbed vertex's frame convertible into its
    representative's. The single deduction rule is the paper's: a slot
    holding two distinct edges identifies its two far endpoints as
    replicates (an actual port has one cable), and host vertices with
    the same name are replicates (hosts are uniquely identified and
    have one port). Both reduce to slot conflicts here.

    All operations address vertices by the id returned at creation;
    ids remain valid across merges (they resolve through the
    union-find). *)

open San_topology

exception Inconsistent of string
(** Raised when a deduction contradicts the model — e.g. a vertex
    would merge with itself at a non-zero shift, two differently-named
    hosts would merge, or a switch's used slots span more than the
    radix. Under the paper's quiescence assumption this indicates a
    bug or an unsatisfied assumption, never a normal outcome. *)

type t

type vid = int
(** Vertex id, stable across merges. *)

type vkind = Vhost of string | Vswitch

val create : mapper_name:string -> radix:int -> t
(** Initialise [M] with the root host vertex and its adjacent switch
    vertex (the mapper host always has exactly one cable, necessarily
    to a switch). *)

val root_host : t -> vid
val root_switch : t -> vid

val radix : t -> int

(** {1 Growth} *)

val add_switch_vertex : t -> parent:vid -> turn:int -> probe:San_simnet.Route.t -> vid
(** Record a successful switch-probe: a fresh switch vertex joined to
    [(parent, turn)]. Runs any merge deductions the new edge enables
    (a slot conflict at the parent). *)

val add_host_vertex :
  t -> parent:vid -> turn:int -> probe:San_simnet.Route.t -> name:string -> vid
(** Record a successful host-probe. If a host vertex with this name
    already exists the two are unified (hosts are unique), and the
    merge loop runs to stabilisation — identity information propagates
    backwards exactly as in §3.2.4. *)

(** {1 Interrogation} *)

val canonical : t -> vid -> vid
(** Representative of the vertex's merge class. *)

val frame_shift : t -> vid -> int
(** [frame_shift t v] converts [v]'s original frame to its
    representative's: original slot [i] is canonical slot
    [i + frame_shift t v]. *)

val kind : t -> vid -> vkind
val probe_string : t -> vid -> San_simnet.Route.t
(** The probe that created this particular vertex (not its class). *)

val is_explored : t -> vid -> bool
(** Whether any member of the class has been explored. *)

val set_explored : t -> vid -> unit

val is_live : t -> vid -> bool
(** False once the class was deleted by pruning. *)

val slot_occupied : t -> vid -> int -> bool
(** [slot_occupied t v i] — is canonical slot [i] (in the class frame)
    already wired in the model? *)

val turn_slot : t -> vid -> int -> int
(** Canonical slot addressed by probing [turn] out of vertex [v]:
    [turn + frame_shift t v]. *)

val neighbor_via : t -> vid -> turn:int -> vid option
(** The vertex on the far side of the (unique, post-stabilisation) edge
    in the slot [turn] addresses, if that slot is wired. *)

val neighbor_end_via : t -> vid -> slot:int -> (vid * int) option
(** Far end of the edge at the given class-frame [slot]: the far
    vertex and the slot it is attached at (in that vertex's own vid
    frame, stable across future merges). Used by the randomized
    mapper to thread coupon paths through existing model structure. *)

val offset_window : t -> vid -> int * int
(** Feasible range of the class's actual entry port (the paper's
    §3.3.3 heuristic state): every known slot [i] implies the offset
    lies in [[-i, radix-1-i]]. *)

val degree : t -> vid -> int
(** Live edges incident to the class (a same-switch edge counts once). *)

val kill_root_switch : t -> unit
(** Retract the assumed root switch and its edges: the mapper's own
    cable turned out to be unwired. The mapper host vertex stays. *)

(** {1 Convergence} *)

val run_merge_loop : t -> unit
(** Drain the mergelist: apply slot-conflict deductions until no more
    can fire. Called internally by the growth functions; public for
    tests. *)

val prune : t -> unit
(** Delete every switch region that a single switch-switch cable
    separates from all hosts (Theorem 1's F, the same separation
    criterion as {!San_topology.Core_set.separated_set}). This
    subsumes §3.1's degree-based PRUNE — which removes hostless
    pendant trees but neither hostless cycles nor self-cabled pendants
    behind a bridge — and, unlike it, keeps a pendant switch whose
    only cable leads to a host. *)

(** {1 Results and accounting} *)

val to_graph : t -> Graph.t
(** Export the stabilised model as an actual-network graph, normalising
    every switch's used slots to start at port 0. @raise Inconsistent
    if a slot still holds conflicting edges (exploration was too
    shallow to merge all replicates) or a slot span exceeds the radix. *)

val known_hosts : t -> int
(** Number of distinct host names discovered so far. *)

val created_vertices : t -> int
val live_vertices : t -> int
val created_edges : t -> int
val live_edges : t -> int

val check_invariants : t -> (unit, string) result
(** Structural self-check used by property tests: slot tables and edge
    endpoints agree, no dead edge is referenced, windows are
    non-empty, merged vertices resolve to live representatives. *)
