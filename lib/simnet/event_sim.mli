(** Discrete-event wormhole simulation of concurrent traffic.

    The analytic {!Collision} models cover a single probe colliding
    with itself on a quiescent network — all the paper needs for its
    proof. This simulator executes {e many worms at once} at channel
    granularity, with real wormhole semantics:

    - a worm's head advances one switch per {!Params.switch_latency_ns};
    - a directed channel (one direction of a wire) carries one worm at
      a time; a blocked head waits in FIFO order while the worm's tail
      keeps {e holding every channel behind it} — the defining wormhole
      hazard;
    - a stalled worm keeps occupying its last
      [ceil (length / per-port buffer)] channels (the tail compresses
      into downstream buffers); a worm that fits entirely within one
      port buffer is {e absorbed} and frees its channel even while its
      head is blocked — the paper's "even modest per-port buffering",
      which is why short probes melt out of each other's way while
      application-sized worms exhibit the full wormhole hazard;
    - a head blocked longer than {!Params.blocked_port_reset_ms} is
      destroyed by the switch ROM's forward-reset, releasing its
      channels — exactly how real Myrinet hardware breaks deadlocked
      cycles, so deadlock needs no detector here: it {e happens}, then
      the timeout clears it.

    This is the testbed on which §5.5's claim becomes observable: route
    sets whose channel dependency graph is acyclic ({!San_routing}
    tables) deliver every worm under arbitrary contention, while a
    dependency cycle reproducibly deadlocks and gets forward-reset. *)

open San_topology

type t

type worm_id = int

type drop_reason =
  | Bad_route of Worm.outcome  (** structural death (§2.2 failure modes) *)
  | Forward_reset  (** blocked past the ROM timeout — deadlock or starvation *)

type outcome =
  | Pending  (** still in flight when the simulation stopped *)
  | Delivered of { dst : Graph.node; at_ns : float; latency_ns : float }
  | Dropped of { reason : drop_reason; at_ns : float }

val create :
  ?params:Params.t -> ?fabric:San_telemetry.Fabric_stats.t -> Graph.t -> t
(** [fabric] is the per-channel counter table this simulator reports
    channel transits, occupied/blocked time and drop locations into.
    Defaults to the process-wide
    {!San_telemetry.Fabric_stats.current} slot; when neither is set,
    per-channel accounting is off (aggregate {!stats} still work). *)

val inject :
  t -> at_ns:float -> src:Graph.node -> turns:Route.t -> ?payload_bytes:int ->
  unit -> worm_id
(** Schedule a worm. [payload_bytes] defaults to the params' probe
    payload. @raise Invalid_argument if [src] is not a host. *)

val run : ?until_ns:float -> t -> unit
(** Process events (all of them, or up to the horizon). *)

val step : t -> float option
(** Process exactly one event; returns its timestamp, or [None] when
    the queue is empty. Lets a co-simulation (e.g. the emergent
    election) interleave decisions between hardware events. *)

val peek_time : t -> float option
(** Timestamp of the next pending event without processing it. *)

val now_ns : t -> float
val outcome : t -> worm_id -> outcome

type stats = {
  injected : int;
  delivered : int;
  dropped_bad_route : int;
  dropped_reset : int;
  in_flight : int;
  hops_acquired : int;
      (** channels won across all worms, counted worm-side — pairs with
          {!San_telemetry.Fabric_stats.total_transits} (counted
          channel-side) as a conservation cross-check *)
  avg_latency_ns : float;  (** over delivered worms *)
  max_latency_ns : float;
  finished_at_ns : float;
}

val stats : t -> stats

val latencies : t -> float list
(** Delivery latencies, unordered. *)
