type t = {
  mutable host_probes : int;
  mutable host_hits : int;
  mutable switch_probes : int;
  mutable switch_hits : int;
  mutable serial_time_ns : float;
}

let create () =
  {
    host_probes = 0;
    host_hits = 0;
    switch_probes = 0;
    switch_hits = 0;
    serial_time_ns = 0.0;
  }

let reset t =
  t.host_probes <- 0;
  t.host_hits <- 0;
  t.switch_probes <- 0;
  t.switch_hits <- 0;
  t.serial_time_ns <- 0.0

(* A fresh record with the same values; the fields are mutable, so a
   plain binding would alias. *)
let copy t =
  {
    host_probes = t.host_probes;
    host_hits = t.host_hits;
    switch_probes = t.switch_probes;
    switch_hits = t.switch_hits;
    serial_time_ns = t.serial_time_ns;
  }

let merge a b =
  {
    host_probes = a.host_probes + b.host_probes;
    host_hits = a.host_hits + b.host_hits;
    switch_probes = a.switch_probes + b.switch_probes;
    switch_hits = a.switch_hits + b.switch_hits;
    serial_time_ns = a.serial_time_ns +. b.serial_time_ns;
  }

let total_probes t = t.host_probes + t.switch_probes
let total_hits t = t.host_hits + t.switch_hits

let ratio hits probes =
  if probes = 0 then 0.0 else float_of_int hits /. float_of_int probes

let host_hit_ratio t = ratio t.host_hits t.host_probes
let switch_hit_ratio t = ratio t.switch_hits t.switch_probes

let add_time t dt = t.serial_time_ns <- t.serial_time_ns +. dt

let pp ppf t =
  Format.fprintf ppf
    "host %d/%d (%.0f%%), switch %d/%d (%.0f%%), %.1f ms serial"
    t.host_hits t.host_probes
    (100.0 *. host_hit_ratio t)
    t.switch_hits t.switch_probes
    (100.0 *. switch_hit_ratio t)
    (t.serial_time_ns /. 1e6)
