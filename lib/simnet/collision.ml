type model = Circuit | Cut_through

let model_to_string = function
  | Circuit -> "circuit"
  | Cut_through -> "cut-through"

(* A directed channel is identified by the wire end the head exits
   through; an undirected wire by the canonically ordered end pair. *)
let directed_id (h : Worm.hop) = h.exit_end

let undirected_id (h : Worm.hop) =
  if h.exit_end <= h.entry_end then (h.exit_end, h.entry_end)
  else (h.entry_end, h.exit_end)

(* The hop at which the path first reuses a channel (under [key]'s
   notion of identity) — the place the self-collision happens. *)
let find_duplicate key hops =
  let tbl = Hashtbl.create 16 in
  List.find_opt
    (fun h ->
      let id = key h in
      if Hashtbl.mem tbl id then true
      else begin
        Hashtbl.add tbl id ();
        false
      end)
    hops

(* Cut-through: the head enters channel c for hop index i at time
   i * hop_latency; the tail clears it [drain] later.  A reuse at hop
   j > i blocks iff the head returns before the tail cleared. *)
let cut_through_blocking_hop params (trace : Worm.trace) =
  let hops = Array.of_list trace.hops in
  let drain =
    Params.worm_drain_ns params ~route_flits:(Array.length hops)
  in
  if drain <= 0.0 then None
  else begin
    let last_use = Hashtbl.create 16 in
    let blocked = ref None in
    Array.iteri
      (fun j h ->
        let id = directed_id h in
        (match Hashtbl.find_opt last_use id with
        | Some i ->
          let gap = float_of_int (j - i) *. Params.hop_latency_ns params in
          if gap < drain && !blocked = None then blocked := Some h
        | None -> ());
        Hashtbl.replace last_use id j)
      hops;
    !blocked
  end

(* A blocking self-collision is charged to the directed channel the
   head was exiting through when it stepped on its own tail. *)
let record fabric hop =
  match hop with
  | None -> false
  | Some (h : Worm.hop) ->
    (match fabric with
    | Some f -> San_telemetry.Fabric_stats.collision f h.exit_end
    | None -> ());
    true

let host_probe_blocks ?fabric model params (trace : Worm.trace) =
  let fabric =
    match fabric with
    | Some _ as f -> f
    | None -> San_telemetry.Fabric_stats.current ()
  in
  match model with
  | Circuit -> record fabric (find_duplicate directed_id trace.hops)
  | Cut_through -> record fabric (cut_through_blocking_hop params trace)

let switch_probe_blocks ?fabric model params ~forward_hops (trace : Worm.trace)
    =
  let fabric =
    match fabric with
    | Some _ as f -> f
    | None -> San_telemetry.Fabric_stats.current ()
  in
  match model with
  | Circuit ->
    let forward = List.filteri (fun i _ -> i < forward_hops) trace.hops in
    record fabric (find_duplicate undirected_id forward)
  | Cut_through -> record fabric (cut_through_blocking_hop params trace)
