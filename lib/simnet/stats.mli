(** Probe accounting for the Figure 6 / Figure 10 tables.

    Message counts are algorithmic properties; the serialized simulated
    time is the implementation property a sequential mapper would
    observe (every probe is sent, then either answered or timed out,
    before the next). Concurrent drivers (election, population study)
    do their own wall-clock math from per-probe costs and leave
    [serial_time_ns] untouched. *)

type t = {
  mutable host_probes : int;
  mutable host_hits : int;
  mutable switch_probes : int;
  mutable switch_hits : int;
  mutable serial_time_ns : float;
}

val create : unit -> t
val reset : t -> unit

val copy : t -> t
(** A fresh record with the same values (the fields are mutable). *)

val merge : t -> t -> t
(** Element-wise sum, for aggregating per-worker accounting — the
    parallel mapper sums its local mappers' stats into one view. *)

val total_probes : t -> int
val total_hits : t -> int

val host_hit_ratio : t -> float
(** Hits over probes, 0 when no probes were sent. *)

val switch_hit_ratio : t -> float

val add_time : t -> float -> unit

val pp : Format.formatter -> t -> unit
