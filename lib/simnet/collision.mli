(** The two §2.3.1 worm-collision models.

    A quiescent network means a probe can only collide with itself
    ("stepping on one's tail"). Links are full duplex — each wire
    carries two independent directed channels — so what matters is
    which {e directed} channel a worm re-enters and when:

    - {b Circuit}: worms hold their whole path, so a host-probe fails
      as soon as its path reuses a directed channel, and a loopback
      (switch-) probe additionally fails when its outbound half reuses
      a wire in {e either} direction, because the retrace doubles every
      crossing.
    - {b Cut_through}: a reused channel has been released iff the
      worm's tail has already drained past it, which depends on worm
      length, per-port buffering, and how many hops the head travelled
      in between; reuse "may or may not fail" (the paper's words), and
      with Myrinet's 108-byte buffers short probes practically always
      survive.

    A blocked worm deadlocks on itself and is destroyed by the
    hardware; the mapper simply observes a timeout. *)

type model = Circuit | Cut_through

val model_to_string : model -> string

val host_probe_blocks :
  ?fabric:San_telemetry.Fabric_stats.t -> model -> Params.t -> Worm.trace ->
  bool
(** Does this host-probe worm block on itself? A blocking collision is
    charged to the directed channel where the head stepped on its tail
    in [fabric] (default: the process-wide
    {!San_telemetry.Fabric_stats.current} slot, if installed). *)

val switch_probe_blocks :
  ?fabric:San_telemetry.Fabric_stats.t -> model -> Params.t ->
  forward_hops:int -> Worm.trace -> bool
(** Does this loopback worm block on itself? [forward_hops] is the
    number of wire crossings of the outbound half (k+1 for a probe of
    k turns). Collision attribution as in {!host_probe_blocks}. *)
