open San_topology

type worm_id = int

type drop_reason = Bad_route of Worm.outcome | Forward_reset

type outcome =
  | Pending
  | Delivered of { dst : Graph.node; at_ns : float; latency_ns : float }
  | Dropped of { reason : drop_reason; at_ns : float }

type final = Deliver of Graph.node | Die of Worm.outcome

type worm = {
  wid : worm_id;
  inject_at : float;
  path : Graph.wire_end array; (* directed channels, in order *)
  final : final;
  len_ns : float; (* transmission time of the whole worm *)
  span : int; (* channels a stalled worm keeps occupied *)
  mutable held_from : int; (* lowest channel index still held *)
  mutable head : int; (* next channel index to acquire *)
  mutable waiting_on : int; (* -1 when not waiting *)
  mutable waiting_since : float;
  mutable done_ : bool;
  mutable w_outcome : outcome;
}

type channel = {
  mutable owner : worm_id option;
  mutable gen : int; (* acquisition counter, guards stale releases *)
  mutable acquired_at : float; (* when the current owner took it *)
  waiters : (worm_id * int) Queue.t;
}

type event =
  | Start of worm_id
  | Advance of worm_id * int
  | Release of Graph.wire_end * worm_id * int (* expected owner and gen *)
  | Reset_check of worm_id * int * float
  | Complete of worm_id

type t = {
  graph : Graph.t;
  params : Params.t;
  fabric : San_telemetry.Fabric_stats.t option;
      (* resolved once at create: explicit arg, else the process-wide
         slot; None means per-channel accounting is off *)
  events : event San_util.Heap.t;
  dense : Dense.t;
      (* CSR snapshot taken at create: wire ends resolve to dense
         channel ids in O(1) on the hot path *)
  channels : channel option array; (* indexed by dense channel id *)
  late_channels : (Graph.wire_end, channel) Hashtbl.t;
      (* ports added to the graph after create (daemon world) *)
  mutable worms : worm array;
  mutable nworms : int;
  mutable clock : float;
  mutable n_delivered : int;
  mutable n_bad_route : int;
  mutable n_reset : int;
  mutable lat_sum : float;
  mutable lat_max : float;
  mutable lats : float list;
}

let create ?(params = Params.default) ?fabric graph =
  let fabric =
    match fabric with
    | Some _ as f -> f
    | None -> San_telemetry.Fabric_stats.current ()
  in
  let dense = Dense.of_graph graph in
  {
    graph;
    params;
    fabric;
    events = San_util.Heap.create ();
    dense;
    channels = Array.make (Dense.num_channels dense) None;
    late_channels = Hashtbl.create 16;
    worms = [||];
    nworms = 0;
    clock = 0.0;
    n_delivered = 0;
    n_bad_route = 0;
    n_reset = 0;
    lat_sum = 0.0;
    lat_max = 0.0;
    lats = [];
  }

let fresh_channel () =
  { owner = None; gen = 0; acquired_at = 0.0; waiters = Queue.create () }

let channel t key =
  match Dense.channel_of t.dense key with
  | Some id -> (
    match t.channels.(id) with
    | Some c -> c
    | None ->
      let c = fresh_channel () in
      t.channels.(id) <- Some c;
      c)
  | None -> (
    (* Port appeared after the snapshot (live repair / growth). *)
    match Hashtbl.find_opt t.late_channels key with
    | Some c -> c
    | None ->
      let c = fresh_channel () in
      Hashtbl.add t.late_channels key c;
      c)

let worm t wid = t.worms.(wid)

let schedule t ~at ev = San_util.Heap.add t.events ~priority:at ev

let inject t ~at_ns ~src ~turns ?payload_bytes () =
  if not (Graph.is_host t.graph src) then
    invalid_arg "Event_sim.inject: source must be a host";
  let trace = Worm.eval t.graph ~src ~turns in
  let path =
    Array.of_list (List.map (fun (h : Worm.hop) -> h.Worm.exit_end) trace.hops)
  in
  let final =
    match trace.Worm.outcome with
    | Worm.Arrived dst -> Deliver dst
    | o -> Die o
  in
  let payload =
    Option.value payload_bytes ~default:t.params.Params.probe_payload_bytes
  in
  let len_bytes = payload + List.length turns in
  let len_ns = float_of_int len_bytes /. Params.bytes_per_ns t.params in
  let span =
    max 1
      (int_of_float
         (ceil
            (float_of_int len_bytes
            /. float_of_int (max 1 t.params.Params.per_port_buffer_bytes))))
  in
  let w =
    {
      wid = t.nworms;
      inject_at = at_ns;
      path;
      final;
      len_ns;
      span;
      held_from = 0;
      head = 0;
      waiting_on = -1;
      waiting_since = -1.0;
      done_ = false;
      w_outcome = Pending;
    }
  in
  if t.nworms >= Array.length t.worms then begin
    let arr = Array.make (max 64 (2 * Array.length t.worms)) w in
    Array.blit t.worms 0 arr 0 t.nworms;
    t.worms <- arr
  end;
  t.worms.(t.nworms) <- w;
  t.nworms <- t.nworms + 1;
  schedule t ~at:at_ns (Start w.wid);
  if San_obs.Obs.on () then begin
    San_obs.Obs.count "sim.injected";
    San_obs.Obs.emit
      (San_obs.Trace.Worm_injected
         { wid = w.wid; at_ns; hops = Array.length path })
  end;
  w.wid

let release_held t w ~upto ~at =
  (* Schedule releases for channels [held_from, upto). *)
  for j = w.held_from to upto - 1 do
    let c = channel t w.path.(j) in
    schedule t ~at (Release (w.path.(j), w.wid, c.gen))
  done;
  if upto > w.held_from then w.held_from <- upto

let finish_drop t w reason ~at =
  w.done_ <- true;
  w.w_outcome <- Dropped { reason; at_ns = at };
  (match reason with
  | Bad_route _ -> t.n_bad_route <- t.n_bad_route + 1
  | Forward_reset -> t.n_reset <- t.n_reset + 1);
  (match t.fabric with
  | None -> ()
  | Some f ->
    (* Attribute the death to the channel where the worm actually
       died: the one it was queued on for a reset, the last one it
       crossed for a bad route. *)
    let key =
      match reason with
      | Forward_reset when w.waiting_on >= 0 ->
        if w.waiting_since >= 0.0 then
          San_telemetry.Fabric_stats.blocked f w.path.(w.waiting_on)
            (at -. w.waiting_since);
        Some w.path.(w.waiting_on)
      | _ when Array.length w.path > 0 ->
        Some w.path.(Array.length w.path - 1)
      | _ -> None
    in
    Option.iter (San_telemetry.Fabric_stats.drop f) key);
  if San_obs.Obs.on () then begin
    let tag =
      match reason with
      | Bad_route _ -> "bad_route"
      | Forward_reset -> "forward_reset"
    in
    San_obs.Obs.count ("sim.dropped_" ^ tag);
    San_obs.Obs.emit
      (San_obs.Trace.Worm_dropped { wid = w.wid; at_ns = at; reason = tag })
  end;
  release_held t w ~upto:w.head ~at

let rec try_acquire t w i ~at =
  if not w.done_ then begin
    if i >= Array.length w.path then begin
      match w.final with
      | Deliver _ -> schedule t ~at:(at +. w.len_ns) (Complete w.wid)
      | Die o -> finish_drop t w (Bad_route o) ~at
    end
    else begin
      let c = channel t w.path.(i) in
      match c.owner with
      | None ->
        c.owner <- Some w.wid;
        c.gen <- c.gen + 1;
        c.acquired_at <- at;
        w.head <- i + 1;
        (match t.fabric with
        | None -> ()
        | Some f ->
          San_telemetry.Fabric_stats.transit f w.path.(i);
          if w.waiting_on = i && w.waiting_since >= 0.0 then
            San_telemetry.Fabric_stats.blocked f w.path.(i)
              (at -. w.waiting_since));
        w.waiting_on <- -1;
        w.waiting_since <- -1.0;
        (* The body compresses into downstream buffers: everything more
           than [span] channels behind the head can be let go. *)
        release_held t w ~upto:(max 0 (i + 1 - w.span)) ~at;
        if w.span = 1 then begin
          (* The whole worm fits in the downstream port buffer: once
             fully streamed across, this channel frees even if the head
             is blocked further on — Myrinet's "modest per-port
             buffering" that lets short probes melt out of the way. *)
          schedule t ~at:(at +. w.len_ns) (Release (w.path.(i), w.wid, c.gen));
          if i >= w.held_from then w.held_from <- i + 1
        end;
        schedule t
          ~at:(at +. Params.hop_latency_ns t.params)
          (Advance (w.wid, i + 1))
      | Some _ ->
        San_obs.Obs.count "sim.channel_waits";
        Queue.add (w.wid, i) c.waiters;
        w.waiting_on <- i;
        w.waiting_since <- at;
        schedule t
          ~at:(at +. (t.params.Params.blocked_port_reset_ms *. 1e6))
          (Reset_check (w.wid, i, at))
    end
  end

and serve_waiters t key c ~at =
  if c.owner = None then begin
    let rec next () =
      match Queue.take_opt c.waiters with
      | None -> ()
      | Some (wid, i) ->
        let w = worm t wid in
        if (not w.done_) && w.waiting_on = i then try_acquire t w i ~at
        else next ()
    in
    next ()
  end;
  ignore key

let handle t ev ~at =
  match ev with
  | Start wid ->
    let w = worm t wid in
    if Array.length w.path = 0 then
      (* unwired source: dies on the spot *)
      finish_drop t w
        (Bad_route
           (match w.final with Die o -> o | Deliver _ -> Worm.Unwired_source))
        ~at
    else try_acquire t w 0 ~at
  | Advance (wid, i) ->
    let w = worm t wid in
    try_acquire t w i ~at
  | Release (key, expected, gen) ->
    let c = channel t key in
    if c.owner = Some expected && c.gen = gen then begin
      c.owner <- None;
      (match t.fabric with
      | None -> ()
      | Some f -> San_telemetry.Fabric_stats.occupied f key (at -. c.acquired_at));
      serve_waiters t key c ~at
    end
  | Reset_check (wid, i, since) ->
    let w = worm t wid in
    if (not w.done_) && w.waiting_on = i && w.waiting_since = since then
      finish_drop t w Forward_reset ~at
  | Complete wid ->
    let w = worm t wid in
    if not w.done_ then begin
      w.done_ <- true;
      let dst = match w.final with Deliver d -> d | Die _ -> assert false in
      let latency = at -. w.inject_at in
      w.w_outcome <- Delivered { dst; at_ns = at; latency_ns = latency };
      t.n_delivered <- t.n_delivered + 1;
      t.lat_sum <- t.lat_sum +. latency;
      t.lat_max <- Float.max t.lat_max latency;
      t.lats <- latency :: t.lats;
      if San_obs.Obs.on () then begin
        San_obs.Obs.count "sim.delivered";
        San_obs.Obs.observe "sim.latency_ns" latency;
        San_obs.Obs.emit
          (San_obs.Trace.Worm_delivered
             { wid = w.wid; at_ns = at; latency_ns = latency })
      end;
      release_held t w ~upto:(Array.length w.path) ~at
    end

let run ?until_ns t =
  let horizon = Option.value until_ns ~default:infinity in
  let continue = ref true in
  while !continue do
    match San_util.Heap.peek t.events with
    | None -> continue := false
    | Some (at, _) when at > horizon -> continue := false
    | Some _ ->
      let at, ev = Option.get (San_util.Heap.pop t.events) in
      t.clock <- at;
      handle t ev ~at
  done

let step t =
  match San_util.Heap.pop t.events with
  | None -> None
  | Some (at, ev) ->
    t.clock <- at;
    handle t ev ~at;
    Some at

let peek_time t = Option.map fst (San_util.Heap.peek t.events)

let now_ns t = t.clock

let outcome t wid =
  if wid < 0 || wid >= t.nworms then invalid_arg "Event_sim.outcome";
  (worm t wid).w_outcome

type stats = {
  injected : int;
  delivered : int;
  dropped_bad_route : int;
  dropped_reset : int;
  in_flight : int;
  hops_acquired : int;
  avg_latency_ns : float;
  max_latency_ns : float;
  finished_at_ns : float;
}

let stats t =
  (* Channels acquired, counted from the worm side: each worm's [head]
     is exactly how many channels it won arbitration for. The fabric
     table counts the same thing from the channel side, which is what
     makes this a conservation cross-check rather than one number read
     twice. *)
  let hops = ref 0 in
  for i = 0 to t.nworms - 1 do
    hops := !hops + t.worms.(i).head
  done;
  {
    injected = t.nworms;
    delivered = t.n_delivered;
    dropped_bad_route = t.n_bad_route;
    dropped_reset = t.n_reset;
    in_flight = t.nworms - t.n_delivered - t.n_bad_route - t.n_reset;
    hops_acquired = !hops;
    avg_latency_ns =
      (if t.n_delivered = 0 then 0.0
       else t.lat_sum /. float_of_int t.n_delivered);
    max_latency_ns = t.lat_max;
    finished_at_ns = t.clock;
  }

let latencies t = t.lats
