(** The probe service: the simulated network as observed from a host.

    This is the response function R of §2.3: a mapper chooses a turn
    string and learns "switch", a unique host name, or nothing —
    together with how long the attempt took. All structural evaluation,
    collision modelling and timing live here, so every algorithm above
    this interface is hardware-independent. *)

open San_topology

type response = Switch | Host of string | Nothing

type t

val create :
  ?model:Collision.model ->
  ?params:Params.t ->
  ?responding:(Graph.node -> bool) ->
  ?software_slowdown:float ->
  ?jitter:float * San_util.Prng.t ->
  ?traffic:float * San_util.Prng.t ->
  ?fabric:San_telemetry.Fabric_stats.t ->
  Graph.t ->
  t
(** [create g] wraps a network. [model] defaults to {!Collision.Circuit}
    (the model under which Theorem 1 needs no extra assumptions).
    [responding] marks which hosts run a mapper daemon and answer
    host-probes (default: all); the wiring is unaffected — probes to a
    silent host just time out, which is how the Figure 9 population
    study is driven. [software_slowdown] scales the per-probe software
    overheads (used for the Myricom baseline's in-NIC implementation).
    [jitter] (fraction, generator) adds multiplicative noise of up to
    ±fraction to every per-probe software cost, modelling scheduler and
    interrupt variance on the measurement hosts; without it the
    simulation is fully deterministic. [traffic] relaxes the paper's
    quiescence assumption (the §6 cross-traffic question): application
    worms occupy each directed channel independently so a probe is lost
    with the given probability per wire crossing. [fabric] is the
    per-channel counter table every probe's wire crossings, collisions
    and replies are attributed to (default: the process-wide
    {!San_telemetry.Fabric_stats.current} slot; when neither is set,
    per-channel accounting is off). *)

val graph : t -> Graph.t
val stats : t -> Stats.t
val params : t -> Params.t
val model : t -> Collision.model

val reset_stats : t -> unit

val host_probe : t -> src:Graph.node -> turns:Route.t -> response * float
(** Send the host-probe [a1...ak] from host [src]. Returns [Host name]
    if a responding host received it and replied, [Nothing] otherwise
    (the mapper cannot distinguish the failure modes), along with the
    simulated cost in nanoseconds charged to the prober (round trip on
    success, timeout on failure). *)

val switch_probe : t -> src:Graph.node -> turns:Route.t -> response * float
(** Send the loopback probe [a1...ak 0 -ak...-a1]. Returns [Switch] if
    the loopback came home, [Nothing] otherwise. *)

val walk_probe :
  t -> src:Graph.node -> turns:Route.t -> (string * int) option * float
(** The §6 firmware tweak behind the randomized (coupon-collecting)
    mapper: a long probe that would die with HIT A HOST TOO SOON is
    instead {e read} by that host, which replies with its name. Returns
    [(name, turns_consumed)] — the probe's prefix of that length is a
    valid path ending at the named host — or [None] (collision, dead
    end, silent host). Counted as a host probe. *)

val loop_probe :
  t -> src:Graph.node -> turns:Route.t -> turn:int -> int option * float
(** The Myricom firmware's loopback-cable test (§4.1): does taking
    [turn] out of the switch reached by [turns] re-enter the {e same}
    switch through a cable between two of its ports? [Some d] gives the
    re-entry port relative to the exit port. Modelled as a single probe
    message (the firmware encodes this with its knowledge of relative
    entry ports); costs like any other probe. *)

val probe_cost_hit : t -> hops:int -> float
(** Cost model for a successful exchange crossing [hops] wires in
    total; exposed so concurrent drivers can reason about costs. *)

val probe_cost_miss : t -> float
(** Cost of a probe that times out. *)
