open San_topology

type response = Switch | Host of string | Nothing

type t = {
  net_graph : Graph.t;
  net_model : Collision.model;
  net_params : Params.t;
  responding : Graph.node -> bool;
  slowdown : float;
  jitter : (float * San_util.Prng.t) option;
  traffic : (float * San_util.Prng.t) option;
  run_bias : float;
  net_stats : Stats.t;
  net_fabric : San_telemetry.Fabric_stats.t option;
}

let create ?(model = Collision.Circuit) ?(params = Params.default)
    ?(responding = fun _ -> true) ?(software_slowdown = 1.0) ?jitter ?traffic
    ?fabric g =
  let run_bias =
    (* Per-run correlated load level: most runs sit within ±frac/2 of
       nominal; roughly one in ten lands on a busy machine and pays up
       to 3*frac more (the skew visible in the paper's max columns). *)
    match jitter with
    | None -> 1.0
    | Some (frac, rng) ->
      let base =
        1.0 +. (0.5 *. frac *. ((2.0 *. San_util.Prng.float rng 1.0) -. 1.0))
      in
      if San_util.Prng.float rng 1.0 < 0.1 then
        base +. (3.0 *. frac *. San_util.Prng.float rng 1.0)
      else base
  in
  {
    net_graph = g;
    net_model = model;
    net_params = params;
    responding;
    slowdown = software_slowdown;
    jitter;
    traffic;
    run_bias;
    net_stats = Stats.create ();
    net_fabric =
      (match fabric with
      | Some _ as f -> f
      | None -> San_telemetry.Fabric_stats.current ());
  }

(* Cross-traffic: a probe survives each wire crossing independently.
   [crossings] should count the full round trip, since the reply worm
   shares the fabric too. *)
let survives_traffic t ~crossings =
  match t.traffic with
  | None -> true
  | Some (p, rng) ->
    let q = (1.0 -. p) ** float_of_int crossings in
    San_util.Prng.float rng 1.0 < q

let jittered t cost =
  match t.jitter with
  | None -> cost
  | Some (frac, rng) ->
    cost *. t.run_bias
    *. (1.0 +. (0.5 *. frac *. ((2.0 *. San_util.Prng.float rng 1.0) -. 1.0)))

let graph t = t.net_graph
let stats t = t.net_stats
let params t = t.net_params
let model t = t.net_model
let reset_stats t = Stats.reset t.net_stats

(* Per-channel accounting for the analytic front end: every wire
   crossing the worm actually made transits the forward channel (the
   hop's exit end); a hit means the reply retraced, transiting each
   reverse channel (the hop's entry end) too. *)
let fabric_transits t ?(reply = false) (trace : Worm.trace) =
  match t.net_fabric with
  | None -> ()
  | Some f ->
    List.iter
      (fun (h : Worm.hop) ->
        San_telemetry.Fabric_stats.transit f h.Worm.exit_end;
        if reply then San_telemetry.Fabric_stats.transit f h.Worm.entry_end)
      trace.hops

let probe_cost_hit t ~hops =
  let p = t.net_params in
  (t.slowdown *. (p.send_overhead_ns +. p.recv_overhead_ns))
  +. (float_of_int hops *. Params.hop_latency_ns p)
  +. p.reply_overhead_ns

let probe_cost_miss t =
  let p = t.net_params in
  (t.slowdown *. p.send_overhead_ns) +. p.probe_timeout_ns

(* Single accounting point for every probe the fabric serves: the
   per-network [Stats] record stays the per-run compatibility view
   (walk and loop probes count in the host and switch columns they
   occupy on the wire), while the global registry and tracer see the
   finer-grained kind. *)
let account t ~(kind : San_obs.Trace.probe_kind) ~hit ~cost =
  let st = t.net_stats in
  (match kind with
  | San_obs.Trace.Host | San_obs.Trace.Walk ->
    st.Stats.host_probes <- st.Stats.host_probes + 1;
    if hit then st.Stats.host_hits <- st.Stats.host_hits + 1
  | San_obs.Trace.Switch | San_obs.Trace.Loop ->
    st.Stats.switch_probes <- st.Stats.switch_probes + 1;
    if hit then st.Stats.switch_hits <- st.Stats.switch_hits + 1);
  Stats.add_time st cost;
  if San_obs.Obs.on () then begin
    let stem =
      match kind with
      | San_obs.Trace.Host | San_obs.Trace.Walk -> "net.host"
      | San_obs.Trace.Switch | San_obs.Trace.Loop -> "net.switch"
    in
    San_obs.Obs.count (stem ^ "_probes");
    if hit then San_obs.Obs.count (stem ^ "_hits");
    San_obs.Obs.observe "net.probe_cost_ns" cost;
    San_obs.Obs.emit (San_obs.Trace.Probe_sent { kind; hit; cost_ns = cost })
  end

let host_probe t ~src ~turns =
  let trace = Worm.eval t.net_graph ~src ~turns:(Route.host_probe turns) in
  let success =
    match trace.outcome with
    | Worm.Arrived h ->
      if
        Collision.host_probe_blocks ?fabric:t.net_fabric t.net_model
          t.net_params trace
      then None
      else if t.responding h then Some (Graph.name t.net_graph h)
      else None
    | Worm.Illegal_turn _ | Worm.No_such_wire _ | Worm.Hit_host_too_soon _
    | Worm.Stranded _ | Worm.Unwired_source ->
      None
  in
  let success =
    match success with
    | Some name when survives_traffic t ~crossings:(2 * List.length trace.hops)
      ->
      Some name
    | Some _ | None -> None
  in
  match success with
  | Some name ->
    (* Round trip: the reply retraces the same number of wire
       crossings in the opposite direction. *)
    let hops = 2 * List.length trace.hops in
    let cost = jittered t (probe_cost_hit t ~hops) in
    fabric_transits t ~reply:true trace;
    account t ~kind:San_obs.Trace.Host ~hit:true ~cost;
    (Host name, cost)
  | None ->
    let cost = jittered t (probe_cost_miss t) in
    fabric_transits t trace;
    account t ~kind:San_obs.Trace.Host ~hit:false ~cost;
    (Nothing, cost)

let walk_probe t ~src ~turns =
  let trace = Worm.eval t.net_graph ~src ~turns in
  let answer =
    match trace.outcome with
    | Worm.Arrived h when t.responding h ->
      Some (Graph.name t.net_graph h, List.length turns, List.length trace.hops)
    | Worm.Hit_host_too_soon (idx, h) when t.responding h ->
      (* The §6 firmware tweak: the host reads the early worm and
         answers with its identity and the consumed prefix length. *)
      Some (Graph.name t.net_graph h, idx, List.length trace.hops)
    | Worm.Arrived _ | Worm.Hit_host_too_soon _ | Worm.Illegal_turn _
    | Worm.No_such_wire _ | Worm.Stranded _ | Worm.Unwired_source ->
      None
  in
  let answer =
    match answer with
    | Some _
      when Collision.host_probe_blocks ?fabric:t.net_fabric t.net_model
             t.net_params trace ->
      None
    | a -> a
  in
  let answer =
    match answer with
    | Some (name, consumed, hops)
      when survives_traffic t ~crossings:(2 * hops) ->
      Some (name, consumed)
    | Some _ | None -> None
  in
  match answer with
  | Some (name, consumed) ->
    let cost = jittered t (probe_cost_hit t ~hops:(2 * List.length trace.hops)) in
    fabric_transits t ~reply:true trace;
    account t ~kind:San_obs.Trace.Walk ~hit:true ~cost;
    (Some (name, consumed), cost)
  | None ->
    let cost = jittered t (probe_cost_miss t) in
    fabric_transits t trace;
    account t ~kind:San_obs.Trace.Walk ~hit:false ~cost;
    (None, cost)

let loop_probe t ~src ~turns ~turn =
  let trace = Worm.eval t.net_graph ~src ~turns in
  let answer =
    match trace.outcome with
    | Worm.Arrived _ | Worm.Illegal_turn _ | Worm.No_such_wire _
    | Worm.Hit_host_too_soon _ | Worm.Unwired_source ->
      None
    | Worm.Stranded sw -> (
      (* The worm's head sits at [sw], which it entered through the
         last hop's entry end. *)
      match List.rev trace.hops with
      | [] -> None
      | last :: _ ->
        let _, in_port = last.Worm.entry_end in
        let out_port = in_port + turn in
        if out_port < 0 || out_port >= Graph.radix t.net_graph then None
        else (
          match Graph.neighbor t.net_graph (sw, out_port) with
          | Some (peer, q) when peer = sw -> Some (q - out_port)
          | Some _ | None -> None))
  in
  let answer =
    match answer with
    | Some d
      when survives_traffic t ~crossings:(2 * (List.length trace.hops + 1)) ->
      Some d
    | Some _ | None -> None
  in
  match answer with
  | Some d ->
    let cost = jittered t (probe_cost_hit t ~hops:(2 * (List.length trace.hops + 1))) in
    fabric_transits t ~reply:true trace;
    account t ~kind:San_obs.Trace.Loop ~hit:true ~cost;
    (Some d, cost)
  | None ->
    let cost = jittered t (probe_cost_miss t) in
    fabric_transits t trace;
    account t ~kind:San_obs.Trace.Loop ~hit:false ~cost;
    (None, cost)

let switch_probe t ~src ~turns =
  let route = Route.switch_probe turns in
  let trace = Worm.eval t.net_graph ~src ~turns:route in
  let forward_hops = List.length turns + 1 in
  let success =
    match trace.outcome with
    | Worm.Arrived h ->
      h = src
      && not
           (Collision.switch_probe_blocks ?fabric:t.net_fabric t.net_model
              t.net_params ~forward_hops trace)
    | Worm.Illegal_turn _ | Worm.No_such_wire _ | Worm.Hit_host_too_soon _
    | Worm.Stranded _ | Worm.Unwired_source ->
      false
  in
  let success =
    success && survives_traffic t ~crossings:(List.length trace.hops)
  in
  if success then begin
    let cost = jittered t (probe_cost_hit t ~hops:(List.length trace.hops)) in
    (* A loopback probe's route already contains its own retrace, so
       the forward pass over [trace.hops] is the whole journey. *)
    fabric_transits t trace;
    account t ~kind:San_obs.Trace.Switch ~hit:true ~cost;
    (Switch, cost)
  end
  else begin
    let cost = jittered t (probe_cost_miss t) in
    fabric_transits t trace;
    account t ~kind:San_obs.Trace.Switch ~hit:false ~cost;
    (Nothing, cost)
  end
