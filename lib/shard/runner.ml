open San_topology
module Prng = San_util.Prng
module Obs = San_obs.Obs
module Stats = San_simnet.Stats
module Network = San_simnet.Network
module Berkeley = San_mapper.Berkeley

type shard_report = {
  s_idx : int;
  s_mapper : string;
  s_depth : int;
  s_radius : int;
  s_budget : int;
  s_probes : int;
  s_over_budget : bool;
  s_elapsed_ns : float;
  s_map_nodes : int;
  s_stale : bool;
  s_probe_cost : San_slo.Digest.t;
}

type result = {
  map : (Graph.t, string) Stdlib.result;
  plan : Region.t;
  reports : shard_report list;
  resolutions : Merge.resolution list;
  dropped_views : int list;
  total_probes : int;
  stats : Stats.t;
  wall_ns : float;
  sum_ns : float;
  merge_ns : float;
  coordinator : string;
  probe_cost : San_slo.Digest.t;
      (** the shards' probe-cost digests merged — composition is exact,
          so this equals the digest of the whole run's probe costs *)
}

(* A stale view: the fabric as shard [idx] mapped it one epoch ago,
   before a recabling swapped the far ends of two wires. Both wires
   are chosen (seeded) inside the stale shard's exploration scope AND
   some other shard's, so the fresh views carry the true wiring and
   the merge must detect and resolve the contradiction. *)
let corrupt_view ~seed ~scopes ~idx ~mapper g =
  let k = Array.length scopes in
  let covered i a b = scopes.(i).(a) && scopes.(i).(b) in
  let overlap_wire ((a, _), (b, _)) =
    (not (Graph.is_host g a))
    && (not (Graph.is_host g b))
    && covered idx a b
    &&
    let rec other j = j < k && ((j <> idx && covered j a b) || other (j + 1)) in
    other 0
  in
  let cands = Array.of_list (List.filter overlap_wire (Graph.wires g)) in
  if Array.length cands < 2 then None
  else begin
    let rng = Prng.create (seed lxor 0x57A1E) in
    let reach g' =
      let d = Analysis.bfs_distances g' mapper in
      Array.fold_left (fun acc x -> if x < max_int then acc + 1 else acc) 0 d
    in
    let reach0 = reach g in
    let rec try_pick tries =
      if tries <= 0 then None
      else begin
        let (a1, p1), (b1, q1) = Prng.choose rng cands in
        let (a2, p2), (b2, q2) = Prng.choose rng cands in
        let nodes = [ a1; b1; a2; b2 ] in
        if List.length (List.sort_uniq compare nodes) < 4 then
          try_pick (tries - 1)
        else begin
          let m = Graph.copy g in
          Graph.disconnect m (a1, p1);
          Graph.disconnect m (a2, p2);
          Graph.connect m (a1, p1) (b2, q2);
          Graph.connect m (a2, p2) (b1, q1);
          (* The swap must not shrink what the stale mapper can reach,
             or the view diverges for reachability reasons rather than
             the staleness under test. *)
          if reach m = reach0 then Some m else try_pick (tries - 1)
        end
      end
    in
    try_pick 32
  end

(* The shard's probe-cost distribution, captured as a mergeable digest
   by diffing the global probe-cost histogram around the run. Requires
   the switchboard on; with observability off the digest is empty. *)
let probe_cost_digest ~before =
  let after = San_obs.Metrics.snapshot Obs.registry in
  let window = San_obs.Metrics.diff ~before ~after in
  match San_obs.Metrics.histogram_in window "net.probe_cost_ns" with
  | Some hs -> San_slo.Digest.of_hist_snapshot hs
  | None -> San_slo.Digest.create ()

let run ?(seed = 0) ?root ?mappers ?responding ?policy ?params ?traffic
    ?(epoch = 1) ?stale g ~shards =
  match Region.plan ~seed ?root ?mappers ?responding g ~shards with
  | Error e -> Error e
  | Ok plan ->
    San_why.Why.with_preserve @@ fun () ->
    Obs.with_span "shard.run" @@ fun () ->
    let plans = Array.of_list plan.Region.plans in
    let scopes = plan.Region.scopes in
    let shard_results =
      Array.to_list plans
      |> List.map (fun (sp : Region.shard_plan) ->
             let gk, is_stale =
               match stale with
               | Some i when i = sp.Region.idx -> (
                 match
                   corrupt_view ~seed ~scopes ~idx:i ~mapper:sp.Region.mapper
                     g
                 with
                 | Some m -> (m, true)
                 | None -> (g, false))
               | _ -> (g, false)
             in
             let net = Network.create ?params ?responding ?traffic gk in
             (* Ownership-scoped exploration: resolve the probe path
                against the (possibly recabled) fabric the shard is
                actually probing and expand only switches in this
                shard's scope — its cell, the ring around it, and its
                anchor paths. Small graphs run unscoped under their
                oracle depth (see Region). *)
             let expand =
               if plan.Region.exact_depth then None
               else
                 Some
                   (fun path ->
                     match
                       (San_simnet.Worm.eval gk ~src:sp.Region.mapper
                          ~turns:path)
                         .San_simnet.Worm.outcome
                     with
                     | San_simnet.Worm.Stranded v ->
                       scopes.(sp.Region.idx).(v)
                     | _ -> false)
             in
             let cost_before = San_obs.Metrics.snapshot Obs.registry in
             let r =
               Obs.with_span "shard.map" (fun () ->
                   Berkeley.run ?policy ?expand
                     ~depth:(Berkeley.Fixed sp.Region.depth)
                     net ~mapper:sp.Region.mapper)
             in
             let probe_cost = probe_cost_digest ~before:cost_before in
             let st = Stats.copy (Network.stats net) in
             let probes = Stats.total_probes st in
             let probe_did = San_why.Why.last_probe () in
             let trimmed =
               match r.Berkeley.map with
               | Error _ -> None
               | Ok m -> (
                 (* Unscoped (small-fabric) views are kept whole: two
                    trimmed balls can both hold a switch while their
                    shared subgraph around it is disconnected from the
                    anchor host, and the merge would then duplicate it
                    rather than identify the copies. Scoped views are
                    trimmed as a safety net — the radius covers the
                    whole scope, so only replicate leftovers go. *)
                 if plan.Region.exact_depth then Some m
                 else
                   match Graph.host_by_name m sp.Region.mapper_name with
                   | None -> None
                   | Some c ->
                     Some
                       (San_mapper.Parallel.trim m ~center:c
                          ~radius:sp.Region.radius))
             in
             let report =
               {
                 s_idx = sp.Region.idx;
                 s_mapper = sp.Region.mapper_name;
                 s_depth = sp.Region.depth;
                 s_radius = sp.Region.radius;
                 s_budget = sp.Region.budget;
                 s_probes = probes;
                 s_over_budget = probes > sp.Region.budget;
                 s_elapsed_ns = r.Berkeley.elapsed_ns;
                 s_map_nodes =
                   (match trimmed with
                   | Some m -> Graph.num_nodes m
                   | None -> 0);
                 s_stale = is_stale;
                 s_probe_cost = probe_cost;
               }
             in
             let view =
               Option.map
                 (fun m ->
                   {
                     Merge.v_idx = sp.Region.idx;
                     v_map = m;
                     v_epoch = (if is_stale then epoch - 1 else epoch);
                     v_finished_ns = r.Berkeley.elapsed_ns;
                     v_probe = probe_did;
                     v_mapper = sp.Region.mapper_name;
                   })
                 trimmed
             in
             (report, view, st))
    in
    let reports = List.map (fun (r, _, _) -> r) shard_results in
    let views = List.filter_map (fun (_, v, _) -> v) shard_results in
    let stats =
      List.fold_left
        (fun acc (_, _, st) -> Stats.merge acc st)
        (Stats.create ()) shard_results
    in
    let t0 = Unix.gettimeofday () in
    let merged =
      Obs.with_span "shard.merge" (fun () ->
          if views = [] then
            {
              Merge.map = Error "every shard map failed";
              resolutions = [];
              dropped_views = [];
            }
          else Merge.resolve views)
    in
    let merge_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
    let slowest =
      List.fold_left (fun acc r -> Float.max acc r.s_elapsed_ns) 0.0 reports
    in
    let sum =
      List.fold_left (fun acc r -> acc +. r.s_elapsed_ns) 0.0 reports
    in
    let coordinator =
      (List.nth plan.Region.plans plan.Region.coordinator).Region.mapper_name
    in
    Ok
      {
        map = merged.Merge.map;
        plan;
        reports;
        resolutions = merged.Merge.resolutions;
        dropped_views = merged.Merge.dropped_views;
        total_probes = Stats.total_probes stats;
        stats;
        wall_ns = slowest +. merge_ns;
        sum_ns = sum +. merge_ns;
        merge_ns;
        coordinator;
        probe_cost =
          San_slo.Digest.merge_all
            (List.map (fun r -> r.s_probe_cost) reports);
      }
