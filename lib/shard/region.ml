open San_topology
module Prng = San_util.Prng

type shard_plan = {
  idx : int;
  mapper : Graph.node;
  mapper_name : string;
  radius : int;
  depth : int;
  budget : int;
  owned : int;
  covered : int;
}

type t = {
  seed : int;
  shards : int;
  plans : shard_plan list;
  scopes : bool array array;
  coordinator : int;
  comp_nodes : int;
  overlap : float;
  exact_depth : bool;
}

(* Below this the per-root oracle depth [Q + D + 1] is cheap (a 2-unit
   min-cost flow per core node), so shards explore unscoped under it
   and the merged map is exact by Theorem 1; above, exploration is
   scoped to the ownership cell plus its ring. *)
let small_exact_threshold = 300

(* A mapper's single cable necessarily leads to a switch; hosts wired
   only to other hosts (adversarial fuzz fabrics) cannot map. *)
let attach_switch g m =
  match Graph.wired_ports g m with
  | (_, (s, _)) :: _ when not (Graph.is_host g s) -> Some s
  | _ -> None

let dedup_nodes l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.replace seen v ();
        true
      end)
    l

(* Switch-only BFS (worms cannot transit hosts): distances and parent
   pointers from one switch, for threading anchor paths. *)
let switch_bfs g s0 =
  let n = Graph.num_nodes g in
  let dist = Array.make n max_int in
  let parent = Array.make n (-1) in
  let q = Queue.create () in
  dist.(s0) <- 0;
  Queue.add s0 q;
  while not (Queue.is_empty q) do
    let v = Queue.take q in
    List.iter
      (fun (_, (w, _)) ->
        if (not (Graph.is_host g w)) && dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          parent.(w) <- v;
          Queue.add w q
        end)
      (Graph.wired_ports g v)
  done;
  (dist, parent)

let plan ?(seed = 0) ?root ?mappers ?(responding = fun _ -> true) g ~shards =
  if shards < 1 then Error "shard count must be >= 1"
  else begin
    let n = Graph.num_nodes g in
    let all_hosts = Graph.hosts g in
    let eligible h = responding h && attach_switch g h <> None in
    let base =
      match (root, mappers) with
      | Some r, _ -> if eligible r then Some r else None
      | None, Some (m :: _) -> if eligible m then Some m else None
      | None, _ -> List.find_opt eligible all_hosts
    in
    match base with
    | None -> Error "no eligible mapper host"
    | Some m0 -> (
      let dist0 = Analysis.bfs_distances g m0 in
      let in_comp v = dist0.(v) < max_int in
      let chosen =
        match mappers with
        | Some ms ->
          dedup_nodes (List.filter (fun m -> eligible m && in_comp m) ms)
        | None ->
          let cand =
            Array.of_list
              (List.filter
                 (fun h -> h <> m0 && eligible h && in_comp h)
                 all_hosts)
          in
          let len = Array.length cand in
          let others =
            let k = min (shards - 1) len in
            if k <= 0 then []
            else begin
              let rng = Prng.create (seed lxor 0x5A4D) in
              let off = Prng.int rng len in
              List.init k (fun i -> cand.((off + (i * len / k)) mod len))
            end
          in
          dedup_nodes (m0 :: others)
      in
      match chosen with
      | [] -> Error "no eligible mapper host in the root component"
      | _ -> (
        let chosen = Array.of_list chosen in
        let k = Array.length chosen in
        (* Ownership: seeded multi-source BFS over switches, owner
           inherited from the discovering neighbour — connected
           Voronoi-style cells, deterministic in shard order. *)
        let owner = Array.make n (-1) in
        let q = Queue.create () in
        Array.iteri
          (fun i m ->
            match attach_switch g m with
            | Some s when owner.(s) < 0 ->
              owner.(s) <- i;
              Queue.add s q
            | _ -> ())
          chosen;
        while not (Queue.is_empty q) do
          let v = Queue.take q in
          List.iter
            (fun (_, (w, _)) ->
              if (not (Graph.is_host g w)) && owner.(w) < 0 && in_comp w
              then begin
                owner.(w) <- owner.(v);
                Queue.add w q
              end)
            (Graph.wired_ports g v)
        done;
        let dist = Array.map (fun m -> Analysis.bfs_distances g m) chosen in
        let owned = Array.make k 0 in
        Array.iter (fun o -> if o >= 0 then owned.(o) <- owned.(o) + 1) owner;
        let small = n <= small_exact_threshold in
        let radius = Array.make k 1 in
        let scopes = Array.init k (fun _ -> Array.make n false) in
        let error = ref None in
        if small then begin
          (* Small graphs: trust balls. The radius covers the own cell
             plus one hop, so every cross-cell wire lies inside its
             owner's ball; anchor widening then grows balls until every
             shard pair shares a responding host. *)
          for v = 0 to n - 1 do
            let o = owner.(v) in
            if o >= 0 && dist.(o).(v) < max_int then
              radius.(o) <- max radius.(o) (dist.(o).(v) + 1)
          done;
          let ecc =
            Array.map
              (fun d ->
                Array.fold_left
                  (fun acc x -> if x < max_int then max acc x else acc)
                  0 d)
              dist
          in
          let host_kept i h =
            h = chosen.(i)
            ||
            match attach_switch g h with
            | Some s -> dist.(i).(s) <= radius.(i)
            | None -> false
          in
          let shares i j =
            List.exists
              (fun h ->
                responding h && Graph.degree g h > 0 && host_kept i h
                && host_kept j h)
              all_hosts
          in
          let changed = ref true in
          let guard = ref 0 in
          while !changed && !guard < 64 do
            changed := false;
            incr guard;
            for i = 0 to k - 1 do
              for j = i + 1 to k - 1 do
                if not (shares i j) then begin
                  if radius.(i) < ecc.(i) then begin
                    radius.(i) <- radius.(i) + 1;
                    changed := true
                  end;
                  if radius.(j) < ecc.(j) then begin
                    radius.(j) <- radius.(j) + 1;
                    changed := true
                  end
                end
              done
            done
          done;
          (* Scopes mirror the balls (the stale-view injector uses them
             to pick wires every involved shard actually maps). *)
          for i = 0 to k - 1 do
            for v = 0 to n - 1 do
              if (not (Graph.is_host g v)) && dist.(i).(v) <= radius.(i) then
                scopes.(i).(v) <- true
            done
          done
        end
        else begin
          (* Large fabrics: ownership-scoped exploration. A shard fully
             expands its own cell plus the one-switch ring around it —
             so every cross-cell wire has both port frames in its
             owner's view — and nothing else. On low-diameter fabrics
             this, not any distance ball, is what makes a shard
             strictly cheaper than the global mapper. *)
          for v = 0 to n - 1 do
            if (not (Graph.is_host g v)) && owner.(v) >= 0 then begin
              scopes.(owner.(v)).(v) <- true;
              List.iter
                (fun (_, (w, _)) ->
                  if (not (Graph.is_host g w)) && owner.(w) >= 0 then
                    scopes.(owner.(w)).(v) <- true)
                (Graph.wired_ports g v)
            end
          done;
          (* The mapper's attachment switch is always in scope, even
             when a rival seed claimed it. *)
          Array.iteri
            (fun i m ->
              match attach_switch g m with
              | Some s -> scopes.(i).(s) <- true
              | None -> ())
            chosen;
          (* Anchor threading: Merge_maps joins two views only at a
             shared uniquely-named host. Cell boundaries can be purely
             hostless (core/aggregation switches), so for each shard
             pair without a naturally shared host, designate one and
             thread a switch path to its edge switch into both scopes. *)
          let view_host i h =
            h = chosen.(i)
            || Graph.degree g h > 0
               && responding h
               &&
               match attach_switch g h with
               | Some s -> scopes.(i).(s)
               | None -> false
          in
          let parents = Array.make k None in
          let bfs_of i =
            match parents.(i) with
            | Some p -> p
            | None ->
              let p =
                switch_bfs g (Option.get (attach_switch g chosen.(i)))
              in
              parents.(i) <- Some p;
              p
          in
          let thread i s =
            let sdist, parent = bfs_of i in
            if sdist.(s) = max_int then false
            else begin
              let v = ref s in
              while !v >= 0 do
                scopes.(i).(!v) <- true;
                v := parent.(!v)
              done;
              true
            end
          in
          let anchors =
            List.filter
              (fun h ->
                responding h && Graph.degree g h > 0
                && attach_switch g h <> None
                && in_comp h)
              all_hosts
          in
          (* Seam anchoring. Merge_maps identifies two views' anonymous
             switches only along shared wires reachable from a shared
             named host. A seam — one connected component of the scope
             intersection of two shards — that carries no responding
             host would merge as duplicate switch copies (and a third
             view wired to both copies then binds inconsistently), so
             every hostless seam component gets the switch path to its
             nearest responding host threaded into both scopes. *)
          let has_host v =
            List.exists
              (fun (_, (w, _)) -> Graph.is_host g w && responding w)
              (Graph.wired_ports g v)
          in
          let seam_anchor i j =
            let inter v =
              (not (Graph.is_host g v)) && scopes.(i).(v) && scopes.(j).(v)
            in
            let seen = Array.make n false in
            let threaded = ref false in
            for s0 = 0 to n - 1 do
              if inter s0 && not seen.(s0) then begin
                let comp = ref [] in
                let pinned = ref false in
                let q = Queue.create () in
                seen.(s0) <- true;
                Queue.add s0 q;
                while not (Queue.is_empty q) do
                  let v = Queue.take q in
                  comp := v :: !comp;
                  if has_host v then pinned := true;
                  List.iter
                    (fun (_, (w, _)) ->
                      if inter w && not seen.(w) then begin
                        seen.(w) <- true;
                        Queue.add w q
                      end)
                    (Graph.wired_ports g v)
                done;
                if not !pinned then begin
                  let bdist = Array.make n max_int in
                  let parent = Array.make n (-1) in
                  let q = Queue.create () in
                  List.iter
                    (fun v ->
                      bdist.(v) <- 0;
                      Queue.add v q)
                    !comp;
                  let goal = ref (-1) in
                  (try
                     while not (Queue.is_empty q) do
                       let v = Queue.take q in
                       if has_host v then begin
                         goal := v;
                         raise Exit
                       end;
                       List.iter
                         (fun (_, (w, _)) ->
                           if (not (Graph.is_host g w)) && bdist.(w) = max_int
                           then begin
                             bdist.(w) <- bdist.(v) + 1;
                             parent.(w) <- v;
                             Queue.add w q
                           end)
                         (Graph.wired_ports g v)
                     done
                   with Exit -> ());
                  if !goal < 0 then begin
                    error :=
                      Some
                        (Printf.sprintf
                           "shards %d and %d: seam component has no \
                            reachable anchor host"
                           i j);
                    raise Exit
                  end;
                  let v = ref !goal in
                  while !v >= 0 do
                    scopes.(i).(!v) <- true;
                    scopes.(j).(!v) <- true;
                    v := parent.(!v)
                  done;
                  threaded := true
                end
              end
            done;
            !threaded
          in
          (try
             (* Threading for one pair widens scopes and can open a new
                (possibly hostless) seam with a third shard: iterate to
                a fixpoint. Each round only adds scope, so this
                terminates; the guard is belt and braces. *)
             let again = ref true in
             let rounds = ref 0 in
             while !again && !rounds < 8 do
               again := false;
               incr rounds;
               for i = 0 to k - 1 do
                 for j = i + 1 to k - 1 do
                   if seam_anchor i j then again := true
                 done
               done
             done;
             for i = 0 to k - 1 do
               for j = i + 1 to k - 1 do
                 if not (List.exists (fun h -> view_host i h && view_host j h) anchors)
                 then begin
                   let best = ref None in
                   List.iter
                     (fun h ->
                       let s = Option.get (attach_switch g h) in
                       let di = dist.(i).(s) and dj = dist.(j).(s) in
                       if di < max_int && dj < max_int then
                         match !best with
                         | Some (c, _) when c <= di + dj -> ()
                         | _ -> best := Some (di + dj, s))
                     anchors;
                   match !best with
                   | None ->
                     error :=
                       Some
                         (Printf.sprintf
                            "shards %d and %d can share no anchor host" i j);
                     raise Exit
                   | Some (_, s) ->
                     if not (thread i s && thread j s) then begin
                       error :=
                         Some
                           (Printf.sprintf
                              "shards %d and %d cannot reach an anchor host"
                              i j);
                       raise Exit
                     end
                 end
               done
             done
           with Exit -> ());
          (* The trim radius must keep everything the shard explores. *)
          for i = 0 to k - 1 do
            for v = 0 to n - 1 do
              if scopes.(i).(v) && dist.(i).(v) < max_int then
                radius.(i) <- max radius.(i) (dist.(i).(v) + 1)
            done
          done
        end;
        match !error with
        | Some e -> Error e
        | None ->
          let depth =
            Array.init k (fun i ->
                if small then
                  max (radius.(i) + 2)
                    (Core_set.search_depth g ~root:chosen.(i))
                else
                  (* Probe paths stay within the scoped region; the
                     margin absorbs window-pruning detours (discovery
                     paths a little longer than the BFS distance). *)
                  radius.(i) + 4)
          in
          let covered =
            Array.init k (fun i ->
                let c = ref 0 in
                for v = 0 to n - 1 do
                  if
                    scopes.(i).(v)
                    || (Graph.is_host g v
                       &&
                       match attach_switch g v with
                       | Some s -> scopes.(i).(s)
                       | None -> false)
                  then incr c
                done;
                !c)
          in
          let budget =
            Array.init k (fun i ->
                if small then 8 * Graph.num_wires g * depth.(i)
                else begin
                  (* Scoped switches are fully expanded; switches one
                     ring beyond still get their ports filled in, and
                     on a thin seam-threaded scope that frontier can
                     outweigh the interior. *)
                  let frontier = Array.make n false in
                  let ports = ref 0 in
                  for v = 0 to n - 1 do
                    if scopes.(i).(v) then begin
                      ports := !ports + Graph.degree g v;
                      List.iter
                        (fun (_, (w, _)) ->
                          if
                            (not (Graph.is_host g w))
                            && not scopes.(i).(w)
                          then frontier.(w) <- true)
                        (Graph.wired_ports g v)
                    end
                  done;
                  for v = 0 to n - 1 do
                    if frontier.(v) then ports := !ports + Graph.degree g v
                  done;
                  (* Every such port is probed once per replicate of
                     its switch; replicates multiply with both the
                     exploration depth and the switch radix (each
                     expansion seeds up to radix fresh routes). The
                     5/8-radix factor bounds the churn measured on the
                     fat-tree presets (radix 16 and 32, 4 and 8
                     shards) with 1.2-2x headroom. *)
                  (5 * Graph.radix g * !ports * depth.(i) / 8) + 64
                end)
          in
          let comp_nodes =
            Array.fold_left
              (fun acc d -> if d < max_int then acc + 1 else acc)
              0 dist0
          in
          let coordinator = ref 0 in
          Array.iteri
            (fun i m -> if m > chosen.(!coordinator) then coordinator := i)
            chosen;
          let plans =
            List.init k (fun i ->
                {
                  idx = i;
                  mapper = chosen.(i);
                  mapper_name = Graph.name g chosen.(i);
                  radius = radius.(i);
                  depth = depth.(i);
                  budget = budget.(i);
                  owned = owned.(i);
                  covered = covered.(i);
                })
          in
          let overlap =
            if comp_nodes = 0 then 1.0
            else
              float_of_int (Array.fold_left ( + ) 0 covered)
              /. float_of_int comp_nodes
          in
          Ok
            {
              seed;
              shards = k;
              plans;
              scopes;
              coordinator = !coordinator;
              comp_nodes;
              overlap;
              exact_depth = small;
            }))
  end

let distances g t =
  Array.of_list
    (List.map (fun sp -> Analysis.bfs_distances g sp.mapper) t.plans)

let pp ppf t =
  Format.fprintf ppf
    "plan seed=%d shards=%d comp=%d overlap=%.2f coordinator=%d%s@."
    t.seed t.shards t.comp_nodes t.overlap t.coordinator
    (if t.exact_depth then " (oracle depths)" else "");
  List.iter
    (fun sp ->
      Format.fprintf ppf
        "  shard %d: mapper=%s owned=%d covered=%d radius=%d depth=%d budget=%d@."
        sp.idx sp.mapper_name sp.owned sp.covered sp.radius sp.depth sp.budget)
    t.plans
