(** Conflict-resolved merging of shard views.

    {!San_topology.Merge_maps} treats a contradiction between two
    partial maps as an error — correct for one epoch's replicates,
    wrong for a mapping plane where a shard's view can be stale. This
    layer folds the shard views freshest-first over
    {!San_topology.Merge_maps.union_c}, and on each typed conflict
    {e resolves} instead of failing: the accumulated (fresher) side
    wins, the conflict is classified (a view older than the freshest
    epoch is [stale-view]; otherwise the structural class —
    [frame-mismatch], [port-clash], …), the offending wire or node is
    trimmed from the losing view, and the join is retried under a
    per-view resolution budget. Every resolution is recorded in the
    {!San_why} ledger (rule [shard.resolve], citing the winner's and
    loser's latest probes) so [san_map explain] can justify any merged
    edge that survived a conflict. *)

open San_topology

type view = {
  v_idx : int;  (** shard index *)
  v_map : Graph.t;  (** the shard's trimmed local map *)
  v_epoch : int;  (** epoch stamp; larger is fresher *)
  v_finished_ns : float;  (** simulated finish time; recency tiebreak *)
  v_probe : int option;  (** why-ledger id of the view's latest probe *)
  v_mapper : string;
}

type resolution = {
  r_winner : int;  (** shard whose evidence was kept *)
  r_loser : int;  (** shard whose evidence was trimmed *)
  r_class : string;
      (** [stale-view], or a {!San_topology.Merge_maps.conflict_class}
          tag ([frame-mismatch], [port-clash], …) *)
  r_action : string;  (** [dropped-wire …], [dropped-node …], [dropped-view] *)
  r_detail : string;  (** the underlying merge error message *)
  r_did : int;  (** why-ledger entry id, [-1] when the ledger is off *)
}

type outcome = {
  map : (Graph.t, string) result;
  resolutions : resolution list;  (** in resolution order *)
  dropped_views : int list;  (** shards whose whole view was discarded *)
}

val resolve : view list -> outcome
(** [resolve views] merges the views freshest-first with conflict
    resolution. The map is an [Error] only when there is nothing to
    merge; a view that cannot be reconciled is dropped (with a
    recorded resolution) rather than failing the merge. *)
