(** The shard runner: N concurrent mapper instances over one fabric.

    Drives one depth-limited {!San_mapper.Berkeley} instance per
    planned shard (each on its own simulated {!San_simnet.Network}
    view of the same fabric, so probe accounting is per-shard), trims
    each local map to its trust radius with {!San_mapper.Parallel.trim},
    and merges the views through {!Merge}. Shards are independent —
    the paper's quiescent-network concurrency — so the simulated
    parallel wall-clock is the slowest shard plus the coordinator's
    merge. The coordinator is the shard whose mapper is the
    highest-address host (the §4.2 leader rule, as in
    {!San_mapper.Election_sim}).

    The whole run executes under {!San_why.Why.with_preserve}: with
    the ledger on, all shards append probes to one ledger and every
    merge-conflict resolution is a [shard.resolve] deduction citing
    probe evidence from both sides.

    [stale] marks one shard as holding a stale-epoch view: its network
    is a seeded rewiring of two overlap wires (the fabric as it looked
    before a recabling), which forces real, resolvable conflicts at
    merge time — the honest way to exercise the resolution path, since
    quiescent shards never contradict each other. *)

open San_topology

type shard_report = {
  s_idx : int;
  s_mapper : string;
  s_depth : int;
  s_radius : int;
  s_budget : int;
  s_probes : int;
  s_over_budget : bool;
  s_elapsed_ns : float;  (** simulated mapper time for this shard *)
  s_map_nodes : int;  (** nodes in the trimmed view; 0 = shard failed *)
  s_stale : bool;
  s_probe_cost : San_slo.Digest.t;
      (** this shard's probe-cost distribution as a mergeable quantile
          digest (empty when observability is off) *)
}

type result = {
  map : (Graph.t, string) Stdlib.result;
  plan : Region.t;
  reports : shard_report list;
  resolutions : Merge.resolution list;
  dropped_views : int list;
  total_probes : int;
  stats : San_simnet.Stats.t;  (** all shards merged *)
  wall_ns : float;  (** simulated parallel wall: slowest shard + merge *)
  sum_ns : float;  (** total work across shards + merge *)
  merge_ns : float;  (** coordinator merge time (measured, in ns) *)
  coordinator : string;  (** coordinator shard's mapper host *)
  probe_cost : San_slo.Digest.t;
      (** the per-shard digests merged: digest merge is exact, so
          fleet percentiles compose from shard percentiles without
          shipping raw samples *)
}

val run :
  ?seed:int ->
  ?root:Graph.node ->
  ?mappers:Graph.node list ->
  ?responding:(Graph.node -> bool) ->
  ?policy:San_mapper.Berkeley.policy ->
  ?params:San_simnet.Params.t ->
  ?traffic:float * San_util.Prng.t ->
  ?epoch:int ->
  ?stale:int ->
  Graph.t ->
  shards:int ->
  (result, string) Stdlib.result
(** [run g ~shards] plans and executes a sharded mapping of [g].
    [Error] only when planning fails (no eligible mapper); individual
    shard failures surface as [s_map_nodes = 0] reports and reduced
    coverage in the merged map. [epoch] (default 1) stamps the views;
    [stale] (a shard index) injects the seeded stale view described
    above at [epoch - 1]. *)
