open San_topology
module Why = San_why.Why

type view = {
  v_idx : int;
  v_map : Graph.t;
  v_epoch : int;
  v_finished_ns : float;
  v_probe : int option;
  v_mapper : string;
}

type resolution = {
  r_winner : int;
  r_loser : int;
  r_class : string;
  r_action : string;
  r_detail : string;
  r_did : int;
}

type outcome = {
  map : (Graph.t, string) result;
  resolutions : resolution list;
  dropped_views : int list;
}

(* Rebuild without one node; Graph has no removal. *)
let drop_node m v =
  let g = Graph.create ~radix:(Graph.radix m) () in
  let node_of = Hashtbl.create 64 in
  List.iter
    (fun u ->
      if u <> v then
        Hashtbl.replace node_of u
          (if Graph.is_host m u then Graph.add_host g ~name:(Graph.name m u)
           else Graph.add_switch g ~name:(Graph.name m u) ()))
    (Graph.nodes m);
  List.iter
    (fun ((a, pa), (b, pb)) ->
      match (Hashtbl.find_opt node_of a, Hashtbl.find_opt node_of b) with
      | Some na, Some nb -> Graph.connect g (na, pa) (nb, pb)
      | _ -> ())
    (Graph.wires m);
  g

(* A view that keeps contradicting the accumulated map is wrong in a
   way trimming cannot fix; bound the retries and discard it. *)
let max_resolutions_per_view = 16

let resolve views =
  let order =
    List.stable_sort
      (fun a b ->
        match compare b.v_epoch a.v_epoch with
        | 0 -> (
          match compare b.v_finished_ns a.v_finished_ns with
          | 0 -> compare a.v_idx b.v_idx
          | c -> c)
        | c -> c)
      views
  in
  match order with
  | [] ->
    { map = Error "no shard views to merge"; resolutions = []; dropped_views = [] }
  | first :: rest ->
    let fresh_epoch = first.v_epoch in
    let resolutions = ref [] in
    let dropped = ref [] in
    let acc = ref first.v_map in
    (* Winner attribution: the freshest contributor to the accumulated
       map — the side whose evidence survives the resolution. *)
    let lead = first in
    let record ~loser ~cls ~action ~detail =
      let probes = List.filter_map Fun.id [ lead.v_probe; loser.v_probe ] in
      let did =
        Why.deduce ~rule:"shard.resolve"
          ~fact:
            (lazy
              (Printf.sprintf
                 "merge conflict (%s): shard %d/%s (epoch %d) overrides shard \
                  %d/%s (epoch %d): %s — %s"
                 cls lead.v_idx lead.v_mapper lead.v_epoch loser.v_idx
                 loser.v_mapper loser.v_epoch action detail))
          ~probes ()
      in
      resolutions :=
        {
          r_winner = lead.v_idx;
          r_loser = loser.v_idx;
          r_class = cls;
          r_action = action;
          r_detail = detail;
          r_did = did;
        }
        :: !resolutions
    in
    let try_view v =
      let cur = ref v.v_map in
      let budget = ref max_resolutions_per_view in
      let rec go () =
        match Merge_maps.union_c !acc !cur with
        | Ok g -> `Merged g
        | Error c ->
          if c.Merge_maps.cls = Merge_maps.No_anchor then `Defer
          else begin
            let cls =
              if v.v_epoch < fresh_epoch then "stale-view"
              else Merge_maps.class_name c.Merge_maps.cls
            in
            decr budget;
            if !budget < 0 then begin
              record ~loser:v ~cls ~action:"dropped-view"
                ~detail:("resolution budget exhausted: " ^ c.Merge_maps.detail);
              `Dropped
            end
            else begin
              match c.Merge_maps.b_wire with
              | Some ((a, pa), (b, pb)) ->
                let action =
                  Printf.sprintf "dropped-wire %s.%d-%s.%d" (Graph.name !cur a)
                    pa (Graph.name !cur b) pb
                in
                record ~loser:v ~cls ~action ~detail:c.Merge_maps.detail;
                let m = Graph.copy !cur in
                Graph.disconnect m (a, pa);
                cur := m;
                go ()
              | None -> (
                match c.Merge_maps.b_node with
                | Some bn ->
                  let action =
                    Printf.sprintf "dropped-node %s" (Graph.name !cur bn)
                  in
                  record ~loser:v ~cls ~action ~detail:c.Merge_maps.detail;
                  cur := drop_node !cur bn;
                  go ()
                | None ->
                  record ~loser:v ~cls ~action:"dropped-view"
                    ~detail:c.Merge_maps.detail;
                  `Dropped)
            end
          end
      in
      go ()
    in
    (* Freshest-first with deferral on missing anchors; shard counts
       are small, so the simple requeue loop is fine here (the
       anchor-indexed fast path lives in Merge_maps.union_all). *)
    let rec loop pending stuck progressed =
      match (pending, stuck) with
      | [], [] -> ()
      | [], s ->
        if progressed then loop (List.rev s) [] false
        else
          List.iter
            (fun v ->
              record ~loser:v ~cls:"no-anchor" ~action:"dropped-view"
                ~detail:"shares no host anchor with the merged map";
              dropped := v.v_idx :: !dropped)
            (List.rev s)
      | v :: more, s -> (
        match try_view v with
        | `Merged g ->
          acc := g;
          loop more s true
        | `Defer -> loop more (v :: s) progressed
        | `Dropped ->
          dropped := v.v_idx :: !dropped;
          loop more s progressed)
    in
    loop rest [] false;
    {
      map = Ok !acc;
      resolutions = List.rev !resolutions;
      dropped_views = List.rev !dropped;
    }
