(** Region planning for the sharded mapping plane.

    The paper's §6 sketch has every host map its local region; this
    planner decides what "local" means for N concurrent mappers. It
    partitions the reference topology's switches into N disjoint
    ownership cells (a seeded multi-source BFS from each mapper's
    attachment switch, so cells are connected and deterministic), then
    derives, per shard:

    - an {e exploration scope}: on large fabrics, the shard fully
      expands exactly its own cell plus the one-switch ring around it
      (so every cross-cell wire has both port frames in its owner's
      view), plus designated {e anchor paths}:
      {!San_topology.Merge_maps} identifies two views' anonymous
      switches only outward from a shared uniquely-named host, so
      every hostless {e seam component} (a connected piece of two
      scopes' intersection with no attached responding host — typical
      of core/aggregation boundaries) gets the switch path to its
      nearest responding host threaded into both scopes, and every
      shard pair without a naturally shared responding host gets a
      common anchor host threaded from both mappers. An unanchored
      seam would not fail loudly: the union would materialise
      duplicate switch copies and only a third view wired to both
      copies exposes the mistake as a frame conflict.
      Low-diameter fabrics put most switches within a few
      hops of {e every} host, so ownership — not any distance ball —
      is what makes a shard strictly cheaper than the global mapper.
      Small fabrics instead run unscoped under the exact per-root
      oracle depth [Q + D + 1] (trust-ball radii with anchor
      widening), which keeps the merged map exact by Theorem 1.
    - a {e trust radius} for the runner's trim: large enough to keep
      everything the scope explores.
    - an advisory {e probe budget} to report overruns against.

    Everything is a pure function of [(graph, seed, shards)]: the plan
    is replayable from its header. The reference topology is the
    operator's cabling plan or the previous epoch's map — exactly what
    the daemon's remap loop holds; shards verify it by probing, and
    divergence surfaces as merge conflicts. *)

open San_topology

type shard_plan = {
  idx : int;
  mapper : Graph.node;  (** mapper host, in the fabric's coordinates *)
  mapper_name : string;
  radius : int;  (** trim radius around the mapper *)
  depth : int;  (** fixed exploration depth for this shard *)
  budget : int;  (** advisory probe budget *)
  owned : int;  (** switches in this shard's ownership cell *)
  covered : int;  (** nodes in this shard's exploration scope *)
}

type t = {
  seed : int;
  shards : int;  (** realised count after clamping to eligible hosts *)
  plans : shard_plan list;
  scopes : bool array array;
      (** [scopes.(i).(v)]: shard [i] fully expands switch [v] —
          ownership cell + ring + anchor paths (large fabrics) or the
          trust ball (small fabrics) *)
  coordinator : int;
      (** index of the coordinator shard: its mapper is the
          highest-address eligible host, the paper's §4.2 leader rule *)
  comp_nodes : int;  (** nodes in the mapped component *)
  overlap : float;
      (** sum of scope sizes over component size; 1.0 = no overlap *)
  exact_depth : bool;
      (** true when per-root oracle depths were used (small fabric) *)
}

val plan :
  ?seed:int ->
  ?root:Graph.node ->
  ?mappers:Graph.node list ->
  ?responding:(Graph.node -> bool) ->
  Graph.t ->
  shards:int ->
  (t, string) result
(** [plan g ~shards] partitions [g] for [shards] concurrent mappers.
    [root] anchors the mapped component and is always one of the
    chosen mappers (defaults to the first eligible host); [mappers]
    overrides placement entirely. [responding] restricts both mapper
    choice and anchor-host designation (silent hosts anchor nothing).
    The shard count is clamped to the eligible hosts of the root's
    component. *)

val distances : Graph.t -> t -> int array array
(** Per-shard BFS distance arrays from each mapper, in plan order —
    the same arrays the planner used; recomputed on demand. *)

val pp : Format.formatter -> t -> unit
(** One line per shard: mapper, cell size, scope size, radius, depth,
    budget. *)
