open San_topology

module Pool = struct
  type t = {
    mutable turn : int array;
    mutable next : int array;
    mutable depth : int array;
    mutable n : int;
    index : (int * int, int) Hashtbl.t;
    mutable entries : int;
    mutable turns_total : int;
    mutable max_depth : int;
  }

  let create () =
    {
      turn = Array.make 64 0;
      next = Array.make 64 (-1);
      depth = Array.make 64 0;
      n = 0;
      index = Hashtbl.create 64;
      entries = 0;
      turns_total = 0;
      max_depth = 0;
    }

  let grow t =
    let cap = Array.length t.turn in
    if t.n >= cap then begin
      let cap' = 2 * cap in
      let extend a fill =
        let a' = Array.make cap' fill in
        Array.blit a 0 a' 0 cap;
        a'
      in
      t.turn <- extend t.turn 0;
      t.next <- extend t.next (-1);
      t.depth <- extend t.depth 0
    end

  let intern t turn next =
    match Hashtbl.find_opt t.index (turn, next) with
    | Some c -> c
    | None ->
      grow t;
      let c = t.n in
      t.n <- c + 1;
      t.turn.(c) <- turn;
      t.next.(c) <- next;
      t.depth.(c) <- 1 + (if next < 0 then 0 else t.depth.(next));
      Hashtbl.add t.index (turn, next) c;
      c

  (* Intern back to front so the cell chain reads the route forward:
     a cell is the head turn, its [next] the shared remainder. *)
  let add t turns =
    let arr = Array.of_list turns in
    let idx = ref (-1) in
    for i = Array.length arr - 1 downto 0 do
      idx := intern t arr.(i) !idx
    done;
    t.entries <- t.entries + 1;
    t.turns_total <- t.turns_total + Array.length arr;
    if Array.length arr > t.max_depth then t.max_depth <- Array.length arr;
    !idx

  let write t idx buf =
    let j = ref idx and pos = ref 0 in
    while !j >= 0 do
      buf.(!pos) <- t.turn.(!j);
      incr pos;
      j := t.next.(!j)
    done;
    !pos

  let to_route t idx =
    let rec go j acc = if j < 0 then List.rev acc else go t.next.(j) (t.turn.(j) :: acc) in
    go idx []

  let cells t = t.n
  let entries t = t.entries
  let turns_total t = t.turns_total
  let max_depth t = t.max_depth

  (* Wire model: 3-byte route reference per entry; 4 bytes per cell
     (turn byte + 3-byte suffix reference). The naive comparator is
     Distribute.entry_bytes = 3 + length. *)
  let entry_ref_bytes = 3
  let cell_bytes = 4
  let packed_bytes t = (entry_ref_bytes * t.entries) + (cell_bytes * t.n)
end

type t = {
  sv_graph : Graph.t;
  sv_ud : Updown.t;
  paths : Paths.t;
  pool : Pool.t;
  prefer : (Graph.node -> Graph.node -> float) option;
  host_slot : int array;
  hosts : Graph.node array;
  (* dst -> per-source-slot pool index; -2 marks self/unreachable. *)
  tables : (Graph.node, int array) Hashtbl.t;
  order : Graph.node Queue.t;
  cache_limit : int;
  mutable dst_builds : int;
}

let no_route = -2

let create ?(cache_limit = 64) ?root ?ignore_hosts ?labeling ?prefer g =
  let ud = Updown.build ?root ?ignore_hosts ?labeling g in
  let hosts = Array.of_list (Graph.hosts g) in
  let host_slot = Array.make (Graph.num_nodes g) (-1) in
  Array.iteri (fun slot h -> host_slot.(h) <- slot) hosts;
  {
    sv_graph = g;
    sv_ud = ud;
    paths = Paths.compute ~cache_limit ud;
    pool = Pool.create ();
    prefer;
    host_slot;
    hosts;
    tables = Hashtbl.create 64;
    order = Queue.create ();
    cache_limit = max 1 cache_limit;
    dst_builds = 0;
  }

let graph t = t.sv_graph
let updown t = t.sv_ud

let build_table t dst =
  San_obs.Obs.with_span "serve.compile_dst" (fun () ->
      let table = Array.make (Array.length t.hosts) no_route in
      Array.iteri
        (fun slot src ->
          if src <> dst then
            match Paths.node_path ?prefer:t.prefer t.paths ~src ~dst with
            | None -> ()
            | Some path -> (
              match Routes.turns_of_path t.sv_graph path with
              | None -> ()
              | Some turns -> table.(slot) <- Pool.add t.pool turns))
        t.hosts;
      if Queue.length t.order >= t.cache_limit then
        Hashtbl.remove t.tables (Queue.pop t.order);
      Hashtbl.add t.tables dst table;
      Queue.push dst t.order;
      t.dst_builds <- t.dst_builds + 1;
      if San_obs.Obs.on () then San_obs.Obs.count "serve.dst_compiled";
      table)

let table_for t dst =
  try Hashtbl.find t.tables dst with Not_found -> build_table t dst

let lookup_into t ~src ~dst ~buf =
  if
    src < 0 || dst < 0
    || src >= Array.length t.host_slot
    || dst >= Array.length t.host_slot
    || t.host_slot.(dst) < 0
  then -1
  else
    let slot = t.host_slot.(src) in
    if slot < 0 then -1
    else
      let table = table_for t dst in
      let idx = table.(slot) in
      if idx = no_route then -1 else Pool.write t.pool idx buf

let max_route_len t = Pool.max_depth t.pool

let lookup t ~src ~dst =
  let buf = Array.make (Graph.num_nodes t.sv_graph + 1) 0 in
  match lookup_into t ~src ~dst ~buf with
  | -1 -> None
  | len -> Some (Array.to_list (Array.sub buf 0 len))

let batch t queries ~buf =
  let served = ref 0 in
  Array.iter
    (fun (src, dst) -> if lookup_into t ~src ~dst ~buf >= 0 then incr served)
    queries;
  !served

let warm t ~dst = ignore (table_for t dst)

type stats = {
  destinations : int;
  resident : int;
  entries : int;
  pool_cells : int;
  turns_total : int;
  packed_bytes : int;
  naive_bytes : int;
}

let stats t =
  {
    destinations = t.dst_builds;
    resident = Hashtbl.length t.tables;
    entries = Pool.entries t.pool;
    pool_cells = Pool.cells t.pool;
    turns_total = Pool.turns_total t.pool;
    packed_bytes = Pool.packed_bytes t.pool;
    naive_bytes = (3 * Pool.entries t.pool) + Pool.turns_total t.pool;
  }
