open San_topology

(* State encoding: node n in phase Up -> 2n, phase Down -> 2n+1. *)

type t = {
  pt_ud : Updown.t;
  nstates : int;
  cache : (Graph.node, int array) Hashtbl.t;
  (* FIFO of cached destinations, oldest first, for eviction. *)
  order : Graph.node Queue.t;
  cache_limit : int;
}

let updown t = t.pt_ud

let inf = max_int / 4

let state_up n = 2 * n
let state_down n = (2 * n) + 1

let default_cache_limit = 64

let compute ?(cache_limit = default_cache_limit) ud =
  {
    pt_ud = ud;
    nstates = 2 * Graph.num_nodes (Updown.graph ud);
    cache = Hashtbl.create 64;
    order = Queue.create ();
    cache_limit = max 1 cache_limit;
  }

(* Distances to [dst] from every state, by one backward BFS over the
   reversed phase edges. Forward transitions are: an up edge a->b is
   usable only in the Up phase and stays Up; a down edge a->b is usable
   from either phase and lands in Down. Both phases of [dst] seed the
   frontier at 0, so the array directly holds the compliant distance to
   the destination node. *)
let to_dst t dst =
  match Hashtbl.find_opt t.cache dst with
  | Some dist -> dist
  | None ->
    let ud = t.pt_ud in
    let g = Updown.graph ud in
    let dist = Array.make t.nstates inf in
    let queue = Array.make t.nstates 0 in
    let head = ref 0 and tail = ref 0 in
    let push s d =
      if dist.(s) >= inf then begin
        dist.(s) <- d;
        queue.(!tail) <- s;
        incr tail
      end
    in
    push (state_up dst) 0;
    push (state_down dst) 0;
    while !head < !tail do
      let s = queue.(!head) in
      incr head;
      let b = s / 2 in
      let d = dist.(s) + 1 in
      (* Predecessor states: phases of a neighbor [a] whose one-hop
         transition lands in [s]. Parallel wires repeat a neighbor;
         [push]'s visited guard makes the repeats free. *)
      List.iter
        (fun (_, (a, _)) ->
          if Updown.is_up ud a b then begin
            if s land 1 = 0 then push (state_up a) d
          end
          else if s land 1 = 1 then begin
            push (state_up a) d;
            push (state_down a) d
          end)
        (Graph.wired_ports g b)
    done;
    if Queue.length t.order >= t.cache_limit then
      Hashtbl.remove t.cache (Queue.pop t.order);
    Hashtbl.add t.cache dst dist;
    Queue.push dst t.order;
    dist

let distance t ~src ~dst =
  let d = (to_dst t dst).(state_up src) in
  if d >= inf then None else Some d

let node_path ?rng ?prefer t ~src ~dst =
  let ud = t.pt_ud in
  let g = Updown.graph ud in
  let dist = to_dst t dst in
  let total = dist.(state_up src) in
  if total >= inf then None
  else begin
    let pick node candidates =
      match (rng, candidates) with
      | _, [] -> None
      | Some rng, l -> Some (List.nth l (San_util.Prng.int rng (List.length l)))
      | None, first :: rest -> (
        match prefer with
        | None ->
          (* First candidate in port order: deterministic for a given
             graph, and stable across remaps because port numbering
             mirrors the physical switch (node ids do not). *)
          Some first
        | Some penalty ->
          (* Least penalty wins; exact ties keep the earliest (port
             order), preserving the stability property above. *)
          let best =
            List.fold_left
              (fun (bp, bs) s ->
                let p = penalty node (s / 2) in
                if p < bp then (p, s) else (bp, bs))
              (penalty node (first / 2), first)
              rest
          in
          Some (snd best))
    in
    let rec walk state acc remaining =
      let node = state / 2 in
      if node = dst && remaining = 0 then Some (List.rev (node :: acc))
      else begin
        let succs =
          List.filter_map
            (fun (_, (v, _)) ->
              let next_state =
                if state land 1 = 0 && Updown.is_up ud node v then
                  Some (state_up v)
                else if not (Updown.is_up ud node v) then Some (state_down v)
                else None
              in
              match next_state with
              | Some s when dist.(s) = remaining - 1 -> Some s
              | Some _ | None -> None)
            (Graph.wired_ports g node)
        in
        match pick node succs with
        | None -> None
        | Some s -> walk s (node :: acc) (remaining - 1)
      end
    in
    walk (state_up src) [] total
  end
