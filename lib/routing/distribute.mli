(** In-band route distribution (§5.5: "derives mutually deadlock-free
    routes from it and distributes them throughout the system").

    After mapping, the master (or elected leader) must install each
    host's route-table slice in its network interface. The only
    transport available is the network itself, and the only routes the
    leader can trust are the freshly computed ones — so each slice
    travels as a single worm along the leader's own route to that
    host. Slices are sized realistically (a couple of bytes per turn
    plus per-entry headers, the scale of the 128 KB LANai SRAM budget
    the paper mentions), and delivery runs on the discrete-event
    wormhole simulator, so distribution contends with itself. *)

open San_topology

type slice = {
  owner : Graph.node;  (** the host this slice belongs to *)
  entries : int;  (** routes in the slice (one per destination) *)
  bytes : int;  (** encoded size *)
}

type plan = { slices : slice list; total_bytes : int }

val plan : Routes.t -> plan
(** Slice the table per source host. *)

val entry_bytes : San_simnet.Route.t -> int
(** Encoded size of one route entry (destination id, length, one byte
    per turn) — the unit both full and delta slices are priced in. *)

type report = {
  hosts_updated : int;
  hosts_missed : int;  (** slices that never arrived, after all passes *)
  duration_ns : float;  (** first send to last delivery, summed over passes *)
  total_messages : int;  (** worms injected, re-sends included *)
  attempts : int;  (** delivery passes actually run (>= 1 when anything was sent) *)
  missed : Graph.node list;
      (** the owners (in the table's graph) behind [hosts_missed] — the
          delta distributor re-targets exactly these next epoch *)
}

val simulate :
  ?params:San_simnet.Params.t ->
  ?retries:int ->
  ?traffic:float * San_util.Prng.t ->
  Routes.t ->
  actual:Graph.t ->
  leader:Graph.node ->
  (report, string) result
(** Deliver every slice from [leader] over the actual network using
    the worm simulator; hosts are matched by name (the table usually
    comes from a map). Slices that miss (contention drops) are re-sent
    in up to [retries] further passes (default 2); slices with no
    compliant route from the leader, or whose owner is absent from the
    actual network, are structurally undeliverable and not retried.
    [traffic] is the background-load model of
    {!San_simnet.Network.create}: per-wire-crossing loss probability
    [p], under which a delivered slice that crossed [h] wires is
    additionally lost with [1 - (1-p)^h] — so distribution, like
    probing, genuinely contends with live traffic. Fails if the
    leader is missing from the table's graph. *)

val simulate_slices :
  ?params:San_simnet.Params.t ->
  ?retries:int ->
  ?traffic:float * San_util.Prng.t ->
  Routes.t ->
  actual:Graph.t ->
  leader:Graph.node ->
  slices:(Graph.node * int) list ->
  (report, string) result
(** Like {!simulate} but for caller-chosen payloads: one worm per
    [(owner, bytes)] pair, owners named in the table's graph — the
    delta distributor ships only changed table slices this way. *)
