open San_topology

type slice = { owner : Graph.node; entries : int; bytes : int }

type plan = { slices : slice list; total_bytes : int }

(* Encoding budget per route entry: a 2-byte destination id, a 1-byte
   length, one byte per turn. *)
let entry_bytes turns = 3 + List.length turns

let plan table =
  let g = Routes.graph table in
  let per_host = Hashtbl.create 64 in
  List.iter
    (fun (src, _, turns) ->
      let e, b =
        Option.value ~default:(0, 0) (Hashtbl.find_opt per_host src)
      in
      Hashtbl.replace per_host src (e + 1, b + entry_bytes turns))
    (Routes.all table);
  let slices =
    List.filter_map
      (fun h ->
        match Hashtbl.find_opt per_host h with
        | Some (entries, bytes) -> Some { owner = h; entries; bytes }
        | None -> None)
      (Graph.hosts g)
  in
  { slices; total_bytes = List.fold_left (fun a s -> a + s.bytes) 0 slices }

type report = {
  hosts_updated : int;
  hosts_missed : int;
  duration_ns : float;
  total_messages : int;
}

let simulate_inner ~params table ~actual ~leader =
  let map = Routes.graph table in
  let leader_in_map =
    Graph.host_by_name map (Graph.name actual leader)
  in
  match leader_in_map with
  | None -> Error "leader is not in the route table's graph"
  | Some leader_m ->
    let p = plan table in
    let sim = San_simnet.Event_sim.create ~params actual in
    let t = ref 0.0 in
    let sent = ref [] in
    let skipped = ref 0 in
    List.iter
      (fun s ->
        if s.owner <> leader_m then begin
          match
            ( Routes.route table ~src:leader_m ~dst:s.owner,
              Graph.host_by_name actual (Graph.name map s.owner) )
          with
          | Some turns, Some _ ->
            let src =
              Option.get (Graph.host_by_name actual (Graph.name map leader_m))
            in
            t := !t +. params.San_simnet.Params.send_overhead_ns;
            let wid =
              San_simnet.Event_sim.inject sim ~at_ns:!t ~src ~turns
                ~payload_bytes:s.bytes ()
            in
            sent := wid :: !sent
          | _ -> incr skipped
        end)
      p.slices;
    San_simnet.Event_sim.run sim;
    let delivered, last =
      List.fold_left
        (fun (n, last) wid ->
          match San_simnet.Event_sim.outcome sim wid with
          | San_simnet.Event_sim.Delivered { at_ns; _ } ->
            (n + 1, Float.max last at_ns)
          | _ -> (n, last))
        (0, 0.0) !sent
    in
    Ok
      {
        hosts_updated = delivered;
        hosts_missed = List.length !sent - delivered + !skipped;
        duration_ns = last;
        total_messages = List.length !sent;
      }

let simulate ?(params = San_simnet.Params.default) table ~actual ~leader =
  San_obs.Obs.with_span "routes.distribute" (fun () ->
      let r = simulate_inner ~params table ~actual ~leader in
      (if San_obs.Obs.on () then
         match r with
         | Ok rep ->
           let p = plan table in
           San_obs.Obs.count ~by:(List.length p.slices) "routes.slices";
           San_obs.Obs.count ~by:rep.hosts_updated "routes.hosts_updated";
           San_obs.Obs.count ~by:rep.hosts_missed "routes.hosts_missed";
           San_obs.Obs.emit
             (San_obs.Trace.Routes_distributed
                { slices = List.length p.slices; bytes = p.total_bytes })
         | Error _ -> San_obs.Obs.count "routes.distribute_failures");
      r)
