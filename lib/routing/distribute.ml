open San_topology

type slice = { owner : Graph.node; entries : int; bytes : int }

type plan = { slices : slice list; total_bytes : int }

(* Encoding budget per route entry: a 2-byte destination id, a 1-byte
   length, one byte per turn. *)
let entry_bytes turns = 3 + List.length turns

let plan table =
  let g = Routes.graph table in
  let per_host = Hashtbl.create 64 in
  List.iter
    (fun (src, _, turns) ->
      let e, b =
        Option.value ~default:(0, 0) (Hashtbl.find_opt per_host src)
      in
      Hashtbl.replace per_host src (e + 1, b + entry_bytes turns))
    (Routes.all table);
  let slices =
    List.filter_map
      (fun h ->
        match Hashtbl.find_opt per_host h with
        | Some (entries, bytes) -> Some { owner = h; entries; bytes }
        | None -> None)
      (Graph.hosts g)
  in
  { slices; total_bytes = List.fold_left (fun a s -> a + s.bytes) 0 slices }

type report = {
  hosts_updated : int;
  hosts_missed : int;
  duration_ns : float;
  total_messages : int;
  attempts : int;
  missed : Graph.node list;
}

(* Background traffic model, mirroring {!San_simnet.Network}: a worm
   that crossed [h] wires survives cross-traffic with (1-p)^h, so a
   delivered slice is additionally lost with the complement. The
   event simulator already accounts for contention among the
   distribution worms themselves; [traffic] adds the load the fabric
   carries underneath them. *)
let survives_traffic traffic ~crossings =
  match traffic with
  | None -> true
  | Some (p, rng) ->
    p <= 0.0
    || San_util.Prng.float rng 1.0
       <= ((1.0 -. p) ** float_of_int crossings)

let simulate_slices_inner ~params ~retries ~traffic table ~actual ~leader
    ~slices =
  let map = Routes.graph table in
  match Graph.host_by_name map (Graph.name actual leader) with
  | None -> Error "leader is not in the route table's graph"
  | Some leader_m ->
    let src =
      Option.get (Graph.host_by_name actual (Graph.name map leader_m))
    in
    (* Resolve each slice to a worm once: a slice without a compliant
       route from the leader, or whose owner has left the actual
       network, is structurally undeliverable and never retried. The
       leader's own slice is installed locally and needs no worm. *)
    let deliverable, skipped =
      List.partition_map
        (fun (owner, bytes) ->
          match
            ( Routes.route table ~src:leader_m ~dst:owner,
              Graph.host_by_name actual (Graph.name map owner) )
          with
          | Some turns, Some _ -> Either.Left (owner, turns, bytes)
          | _ -> Either.Right owner)
        (List.filter (fun (owner, _) -> owner <> leader_m) slices)
    in
    let pending = ref deliverable in
    let delivered = ref 0 in
    let messages = ref 0 in
    let clock = ref 0.0 in
    let attempts = ref 0 in
    while !pending <> [] && !attempts <= retries do
      incr attempts;
      let sim = San_simnet.Event_sim.create ~params actual in
      let t = ref 0.0 in
      let sent =
        List.map
          (fun (owner, turns, bytes) ->
            t := !t +. params.San_simnet.Params.send_overhead_ns;
            let wid =
              San_simnet.Event_sim.inject sim ~at_ns:!t ~src ~turns
                ~payload_bytes:bytes ()
            in
            (owner, turns, bytes, wid))
          !pending
      in
      messages := !messages + List.length sent;
      San_simnet.Event_sim.run sim;
      let missed = ref [] in
      let last = ref 0.0 in
      List.iter
        (fun (owner, turns, bytes, wid) ->
          match San_simnet.Event_sim.outcome sim wid with
          | San_simnet.Event_sim.Delivered { at_ns; _ }
            when survives_traffic traffic
                   ~crossings:(List.length turns + 1) ->
            incr delivered;
            last := Float.max !last at_ns
          | _ -> missed := (owner, turns, bytes) :: !missed)
        sent;
      let pass_end =
        if !missed = [] then !last
        else
          Float.max !last
            (San_simnet.Event_sim.stats sim)
              .San_simnet.Event_sim.finished_at_ns
      in
      clock := !clock +. pass_end;
      pending := List.rev !missed
    done;
    let missed = List.map (fun (owner, _, _) -> owner) !pending @ skipped in
    Ok
      {
        hosts_updated = !delivered;
        hosts_missed = List.length missed;
        duration_ns = !clock;
        total_messages = !messages;
        attempts = !attempts;
        missed;
      }

let simulate_slices ?(params = San_simnet.Params.default) ?(retries = 2)
    ?traffic table ~actual ~leader ~slices =
  San_obs.Obs.with_span "routes.distribute" (fun () ->
      let r =
        simulate_slices_inner ~params ~retries ~traffic table ~actual ~leader
          ~slices
      in
      (if San_obs.Obs.on () then
         match r with
         | Ok rep ->
           let bytes = List.fold_left (fun a (_, b) -> a + b) 0 slices in
           San_obs.Obs.count ~by:(List.length slices) "routes.slices";
           San_obs.Obs.count ~by:rep.hosts_updated "routes.hosts_updated";
           San_obs.Obs.count ~by:rep.hosts_missed "routes.hosts_missed";
           (* [attempts] stays 0 when no slice was deliverable (leader-
              only table, every host skipped), so clamp: a pass that
              never ran is zero retries, not -1. *)
           San_obs.Obs.count
             ~by:(max 0 (rep.attempts - 1))
             "routes.retry_passes";
           San_obs.Obs.emit
             (San_obs.Trace.Routes_distributed
                { slices = List.length slices; bytes })
         | Error _ -> San_obs.Obs.count "routes.distribute_failures");
      r)

let simulate ?params ?retries ?traffic table ~actual ~leader =
  let p = plan table in
  simulate_slices ?params ?retries ?traffic table ~actual ~leader
    ~slices:(List.map (fun s -> (s.owner, s.bytes)) p.slices)
