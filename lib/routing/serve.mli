(** The route-serving plane: answer "how do I get from [src] to
    [dst]?" at memory-bandwidth speed, on fabrics far too large for an
    all-pairs table.

    Tables are compiled lazily, one destination at a time, from the
    per-destination distances of {!Paths} — O(E) work and O(V) memory
    per destination, kept in a bounded FIFO cache. Every compiled turn
    string is interned into a shared-{e suffix} pool: routes converging
    on one destination share their down-phase tails (and, reversed,
    per-source slices share their up-phase heads), so the pool is a
    hash-consed trie generalizing the [Delta] idea — never ship or
    store bytes the receiver can already derive — from {e between}
    epochs to {e within} a table.

    The hot path ({!lookup_into}) is allocation-free once a
    destination's table is warm: two array reads to find the pool cell,
    then one write per turn into a caller-provided buffer. *)

open San_topology

(** Hash-consed route storage: each cell is a turn plus a shared
    suffix; a route is a cell index. Interning is cold-path; reading
    back never allocates. *)
module Pool : sig
  type t

  val create : unit -> t

  val add : t -> San_simnet.Route.t -> int
  (** Intern a turn string, sharing any suffix already present.
      Returns the route's cell index ([-1] for the empty route). *)

  val write : t -> int -> int array -> int
  (** [write t idx buf] reconstructs the route into [buf.(0..len-1)]
      and returns [len]. Allocation-free. [buf] must have room;
      {!max_depth} bounds the need. *)

  val to_route : t -> int -> San_simnet.Route.t
  (** Allocating convenience inverse of {!add}. *)

  val cells : t -> int
  (** Distinct (turn, suffix) cells — the pool's resident size. *)

  val entries : t -> int
  (** Routes interned (lifetime, duplicates counted). *)

  val turns_total : t -> int
  (** Turns summed over interned routes — what naive storage holds. *)

  val max_depth : t -> int
  (** Longest interned route; sizes {!write} buffers. *)

  val packed_bytes : t -> int
  (** Wire cost of the pooled encoding: a 3-byte route reference per
      entry plus 4 bytes per cell (turn byte + 3-byte suffix
      reference). Compare with [3 + length] per naive entry
      ({!Distribute.entry_bytes}). *)
end

type t

val create :
  ?cache_limit:int ->
  ?root:Graph.node ->
  ?ignore_hosts:Graph.node list ->
  ?labeling:Updown.labeling ->
  ?prefer:(Graph.node -> Graph.node -> float) ->
  Graph.t ->
  t
(** Orient the graph and set up the lazy serving plane; nothing is
    compiled until the first query. [cache_limit] (default 64) bounds
    resident per-destination tables and distance vectors — total
    memory stays O([cache_limit] · V) + pool. [prefer u v] is the
    traffic-awareness hook: a penalty (say, measured link heat plus
    loss) steering equal-cost multipath away from hot links. Serving
    is always deterministic — same fabric, same penalties, same
    routes. *)

val lookup_into : t -> src:Graph.node -> dst:Graph.node -> buf:int array -> int
(** The production query: turn count written into [buf], or [-1] when
    [src = dst], either end is not a host, or no compliant route
    exists. Compiles the destination's table on first touch;
    afterwards the path is allocation-free. Size [buf] with
    {!max_route_len}. *)

val lookup : t -> src:Graph.node -> dst:Graph.node -> San_simnet.Route.t option
(** Allocating convenience wrapper over {!lookup_into}. *)

val batch : t -> (Graph.node * Graph.node) array -> buf:int array -> int
(** Serve a batch of queries through the zero-allocation path,
    returning how many were answerable. Grouping a batch by
    destination costs nothing here but maximizes warm hits. *)

val warm : t -> dst:Graph.node -> unit
(** Compile a destination's table ahead of the first query. *)

val max_route_len : t -> int
(** Longest route compiled so far; [lookup_into] buffers of
    [Graph.num_nodes] are always safe. *)

val graph : t -> Graph.t
val updown : t -> Updown.t

type stats = {
  destinations : int;  (** per-destination tables compiled (lifetime) *)
  resident : int;  (** tables currently cached *)
  entries : int;  (** routes interned into the pool (lifetime) *)
  pool_cells : int;  (** distinct cells — the sharing denominator *)
  turns_total : int;  (** turns a naive table would store *)
  packed_bytes : int;  (** pooled wire cost ({!Pool.packed_bytes}) *)
  naive_bytes : int;  (** [3 + length] per entry, summed *)
}

val stats : t -> stats
