(** Compliant shortest paths, one destination at a time.

    The paper computes routes over paths compliant with the UP*/DOWN*
    orientation. We work on the phase-expanded graph — states are
    [(node, Up | Down)], an up edge keeps the Up phase, a down edge
    enters and stays in the Down phase — which makes every shortest
    path automatically compliant.

    Distances are produced by one backward BFS per {e destination}
    over the reversed phase DAG: O(E) time and O(V) memory per
    destination, computed lazily on first use and kept in a bounded
    FIFO cache. This replaces the earlier all-pairs Floyd–Warshall,
    whose O(V³) time and [(2V)²] matrix cannot survive the 10k-host
    fabrics — peak memory is now [cache_limit] distance vectors no
    matter how many pairs are routed.

    Reconstruction walks forward along distance-decreasing states.
    Tie-breaking is deterministic by default — the first shortest
    continuation in port order — so identical fabrics always yield
    identical paths, and tables stay stable across remaps (port
    numbering mirrors the physical switch; discovery-order node ids do
    not). Randomized spreading over equal paths is an explicit
    opt-in. *)

open San_topology

type t

val compute : ?cache_limit:int -> Updown.t -> t
(** Set up lazy per-destination distances; no path computation happens
    until {!distance} or {!node_path} asks about a destination.
    [cache_limit] (default 64, minimum 1) bounds how many destination
    distance vectors stay resident; the oldest is evicted first. *)

val distance : t -> src:Graph.node -> dst:Graph.node -> int option
(** Compliant hop distance, [None] if unreachable without an illegal
    turn. *)

val node_path :
  ?rng:San_util.Prng.t ->
  ?prefer:(Graph.node -> Graph.node -> float) ->
  t ->
  src:Graph.node ->
  dst:Graph.node ->
  Graph.node list option
(** A shortest compliant node sequence [src; ...; dst]. Deterministic
    by default: ties between equal-length continuations go to the
    first in port order. [prefer u v] biases the choice instead —
    among shortest continuations the hop with the least penalty wins
    (port order still breaks exact penalty ties), which is how
    traffic-aware serving steers equal-cost multipath away from hot
    links. [rng] overrides both with the paper's uniform
    load-balancing pick. *)

val updown : t -> Updown.t
