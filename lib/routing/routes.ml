open San_topology
open San_simnet

type t = {
  rt_graph : Graph.t;
  rt_ud : Updown.t;
  table : (Graph.node * Graph.node, Route.t) Hashtbl.t;
  missing : (Graph.node * Graph.node) list;
}

let graph t = t.rt_graph
let updown t = t.rt_ud

(* Choose a wire from u to v, uniformly over parallels when [rng]. *)
let pick_wire ?rng g u v =
  let candidates =
    List.filter (fun (_, (w, _)) -> w = v) (Graph.wired_ports g u)
  in
  match (rng, candidates) with
  | _, [] -> None
  | None, c :: _ -> Some c
  | Some rng, l -> Some (List.nth l (San_util.Prng.int rng (List.length l)))

(* Translate a node path h0, s1, ..., sk, h1 into a turn string: the
   turn at each switch is (exit port - entry port). *)
let turns_of_path ?rng g = function
  | [] | [ _ ] -> Some []
  | src :: rest ->
    let rec go prev entry_port acc = function
      | [] -> Some (List.rev acc)
      | next :: more -> (
        match pick_wire ?rng g prev next with
        | None -> None
        | Some (exit_port, (_, far_port)) ->
          let acc =
            if Graph.is_host g prev then acc (* leaving the source host *)
            else (exit_port - entry_port) :: acc
          in
          go next far_port acc more)
    in
    go src 0 [] rest

let compute ?rng ?prefer ?root ?ignore_hosts ?labeling g =
  San_obs.Obs.with_span "routes.compute" (fun () ->
      let ud = Updown.build ?root ?ignore_hosts ?labeling g in
      let pt = Paths.compute ud in
      let table = Hashtbl.create 256 in
      let missing = ref [] in
      let hosts = Graph.hosts g in
      (* Destination-major so each destination's distance vector is
         computed once and served straight from the Paths cache. *)
      List.iter
        (fun dst ->
          List.iter
            (fun src ->
              if src <> dst then
                match Paths.node_path ?rng ?prefer pt ~src ~dst with
                | None -> missing := (src, dst) :: !missing
                | Some path -> (
                  match turns_of_path ?rng g path with
                  | None -> missing := (src, dst) :: !missing
                  | Some turns -> Hashtbl.replace table (src, dst) turns))
            hosts)
        hosts;
      if San_obs.Obs.on () then begin
        San_obs.Obs.count ~by:(Hashtbl.length table) "routes.pairs";
        San_obs.Obs.count ~by:(List.length !missing) "routes.unreachable";
        Hashtbl.iter
          (fun _ turns ->
            San_obs.Obs.observe "routes.turns" (float_of_int (List.length turns)))
          table;
        San_obs.Obs.emit
          (San_obs.Trace.Route_computed
             {
               pairs = Hashtbl.length table;
               unreachable = List.length !missing;
             })
      end;
      { rt_graph = g; rt_ud = ud; table; missing = !missing })

let route t ~src ~dst = Hashtbl.find_opt t.table (src, dst)

let all t =
  Hashtbl.fold (fun (s, d) r acc -> (s, d, r) :: acc) t.table []
  |> List.sort compare

let unreachable_pairs t = List.sort compare t.missing

type length_stats = { pairs : int; min_len : int; avg_len : float; max_len : int }

let length_stats t =
  let n = ref 0 and mn = ref max_int and mx = ref 0 and sum = ref 0 in
  Hashtbl.iter
    (fun _ r ->
      let len = List.length r in
      incr n;
      mn := min !mn len;
      mx := max !mx len;
      sum := !sum + len)
    t.table;
  if !n = 0 then { pairs = 0; min_len = 0; avg_len = 0.0; max_len = 0 }
  else
    {
      pairs = !n;
      min_len = !mn;
      avg_len = float_of_int !sum /. float_of_int !n;
      max_len = !mx;
    }

let channel_loads t =
  let loads = Hashtbl.create 256 in
  Hashtbl.iter
    (fun (src, _) turns ->
      let trace = Worm.eval t.rt_graph ~src ~turns in
      List.iter
        (fun (h : Worm.hop) ->
          let k = h.Worm.exit_end in
          Hashtbl.replace loads k
            (1 + Option.value ~default:0 (Hashtbl.find_opt loads k)))
        trace.Worm.hops)
    t.table;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) loads []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let verify_delivery ?against t =
  let target = Option.value against ~default:t.rt_graph in
  let translate n =
    if target == t.rt_graph then Some n
    else Graph.host_by_name target (Graph.name t.rt_graph n)
  in
  let problems = ref [] in
  Hashtbl.iter
    (fun (src, dst) turns ->
      match (translate src, translate dst) with
      | Some s, Some d -> (
        let trace = Worm.eval target ~src:s ~turns in
        match trace.Worm.outcome with
        | Worm.Arrived h when h = d -> ()
        | outcome ->
          problems :=
            Format.asprintf "route %s->%s (%a): %a" (Graph.name target s)
              (Graph.name t.rt_graph dst) Route.pp turns Worm.pp_outcome outcome
            :: !problems)
      | None, _ | _, None ->
        problems :=
          Printf.sprintf "hosts of pair (%d,%d) missing from target" src dst
          :: !problems)
    t.table;
  match !problems with
  | [] -> Ok ()
  | p :: _ ->
    Error (Printf.sprintf "%d bad routes; first: %s" (List.length !problems) p)

let verify_updown t =
  let problems = ref 0 in
  let first = ref "" in
  Hashtbl.iter
    (fun (src, _) turns ->
      let trace = Worm.eval t.rt_graph ~src ~turns in
      let path = Worm.path_nodes t.rt_graph ~src trace in
      if not (Updown.valid_path t.rt_ud path) then begin
        incr problems;
        if !first = "" then
          first := Format.asprintf "route from %d: %a" src Route.pp turns
      end)
    t.table;
  if !problems = 0 then Ok ()
  else Error (Printf.sprintf "%d non-compliant routes; first: %s" !problems !first)
