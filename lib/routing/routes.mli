(** Source-route tables: the artifact the paper's system distributes
    to every network interface after mapping (§5.5).

    Routes are computed on the {e map}; because Myrinet routing flits
    encode relative turns, and the map's port numbering agrees with the
    actual network up to a constant shift per switch, a turn string
    computed on the map drives the actual network identically — this
    is why mapping up to indexing offsets suffices. [verify_delivery]
    checks exactly that, by evaluating every route as a worm, on the
    map or on the actual network. *)

open San_topology
open San_simnet

type t

val compute :
  ?rng:San_util.Prng.t ->
  ?prefer:(Graph.node -> Graph.node -> float) ->
  ?root:Graph.node ->
  ?ignore_hosts:Graph.node list ->
  ?labeling:Updown.labeling ->
  Graph.t ->
  t
(** Orient the graph (UP*/DOWN* orientation), compute compliant
    per-destination distances lazily, and derive one turn route per
    ordered host pair. Deterministic by default — identical fabrics
    yield byte-identical tables (ties go to the first shortest
    continuation and wire in port order), so independent daemons
    mapping the same network never see spurious delta churn. [prefer u v] steers equal-cost
    multipath toward least-penalty hops (traffic-aware tables); [rng]
    is the explicit opt-in for the paper's randomized spreading over
    equal paths and parallel wires. *)

val graph : t -> Graph.t
val updown : t -> Updown.t

val turns_of_path :
  ?rng:San_util.Prng.t -> Graph.t -> Graph.node list -> Route.t option
(** Translate a node path [h0; s1; ...; sk; h1] into the turn string a
    worm would follow: at each switch, exit port minus entry port.
    Deterministic (lowest exit port) over parallel wires unless [rng]
    asks for uniform spreading; [None] if consecutive nodes are not
    wired. The serving plane reuses this to compile per-destination
    tables. *)

val route : t -> src:Graph.node -> dst:Graph.node -> Route.t option
(** The turn string from [src] to [dst]; [None] when no compliant path
    exists or for [src = dst]. *)

val all : t -> (Graph.node * Graph.node * Route.t) list
(** Every computed route. *)

val unreachable_pairs : t -> (Graph.node * Graph.node) list
(** Ordered host pairs with no compliant route (empty on connected
    maps — UP*/DOWN* always connects a connected graph). *)

type length_stats = { pairs : int; min_len : int; avg_len : float; max_len : int }

val length_stats : t -> length_stats

val channel_loads : t -> (Graph.wire_end * int) list
(** Number of routes crossing each directed channel (identified by its
    exit wire end), descending — exposes the root-congestion effect
    the paper notes for UP*/DOWN*. *)

val verify_delivery : ?against:Graph.t -> t -> (unit, string) result
(** Check every route's worm reaches the intended host. [against]
    (default: the routing graph) lets a map-derived table be validated
    on the actual network; hosts are matched by name. *)

val verify_updown : t -> (unit, string) result
(** Check every route's node path is a legal up*/down* path. *)
