open San_topology

type t = {
  ud_graph : Graph.t;
  ud_root : Graph.node;
  labels : int array;
  ud_relabeled : Graph.node list;
}

let graph t = t.ud_graph
let root t = t.ud_root
let label t n = t.labels.(n)
let relabeled t = t.ud_relabeled

(* Total order on nodes: smaller is closer to the root. *)
let before t u v = (t.labels.(u), u) < (t.labels.(v), v)

let is_up t u v = before t v u

type labeling = Bfs | Dfs

(* Depth-first preorder numbering; unreachable nodes keep max_int. *)
let dfs_labels g root =
  let labels = Array.make (Graph.num_nodes g) max_int in
  let counter = ref 0 in
  let rec visit n =
    if labels.(n) = max_int then begin
      labels.(n) <- !counter;
      incr counter;
      List.iter (fun (_, (v, _)) -> visit v) (Graph.wired_ports g n)
    end
  in
  visit root;
  labels

let build ?root ?(ignore_hosts = []) ?(labeling = Bfs) g =
  let root =
    match root with
    | Some r -> r
    | None -> (
      match Analysis.farthest_switch_from_hosts g ~ignore:ignore_hosts with
      | Some r -> r
      | None -> (
        (* Degenerate maps are legal: a mapper isolated by faults maps
           to a lone host (or host + pendant switch). Any node then
           gives a trivial total order; routing has no pairs to serve. *)
        match (Graph.switches g, Graph.hosts g) with
        | s :: _, _ -> s
        | [], h :: _ -> h
        | [], [] -> invalid_arg "Updown.build: empty graph"))
  in
  let labels =
    match labeling with
    | Bfs -> Analysis.bfs_distances g root
    | Dfs -> dfs_labels g root
  in
  (* Unreachable nodes keep max_int and are simply never routed to. *)
  let t = { ud_graph = g; ud_root = root; labels; ud_relabeled = [] } in
  (* Locally dominant switches: every neighbour strictly before them
     in the order.  Relabel below the neighbourhood minimum so they
     become extra minima (transitable root-like nodes). *)
  let dominant =
    List.filter
      (fun s ->
        s <> root
        && Graph.degree g s > 0
        && List.for_all (fun (_, (v, _)) -> before t v s) (Graph.wired_ports g s))
      (Graph.switches g)
  in
  List.iter
    (fun s ->
      let m =
        List.fold_left
          (fun acc (_, (v, _)) -> min acc labels.(v))
          max_int (Graph.wired_ports g s)
      in
      labels.(s) <- m - 1)
    dominant;
  let t = { t with ud_relabeled = dominant } in
  if San_why.Why.on () then begin
    let root_did =
      San_why.Why.deduce ~rule:"updown_root"
        ~fact:
          (lazy (Printf.sprintf "up*/down* root: %s (%s labeling%s)"
             (Graph.name g root)
             (match labeling with Bfs -> "BFS" | Dfs -> "DFS")
             (match dominant with
             | [] -> ""
             | l ->
               Printf.sprintf ", %d dominant switch%s relabeled"
                 (List.length l)
                 (if List.length l = 1 then "" else "es"))))
        ()
    in
    List.iter
      (fun ((a, pa), (b, pb)) ->
        let from_, to_ =
          if is_up t a b then ((a, pa), (b, pb)) else ((b, pb), (a, pa))
        in
        let key = San_why.Explain.orientation_key g ~from_ ~to_ in
        let did =
          San_why.Why.deduce ~rule:"updown_orient"
            ~fact:
              (lazy (Printf.sprintf "%s is UP (order %d vs %d from the root)" key
                 t.labels.(fst from_)
                 t.labels.(fst to_)))
            ~deps:[ root_did ] ()
        in
        San_why.Why.note_orientation ~key ~did)
      (Graph.wires g)
  end;
  t

let legal_turn t a b c =
  (* Arrived at b from a; continuing to c must not turn down->up. *)
  let came_down = not (is_up t a b) in
  let going_up = is_up t b c in
  not (came_down && going_up)

let valid_path t = function
  | [] | [ _ ] -> true
  | _ :: _ as path ->
    let rec check = function
      | a :: b :: c :: rest -> legal_turn t a b c && check (b :: c :: rest)
      | _ -> true
    in
    check path
