(* Process-wide observability switchboard.

   Instrumented modules report here unconditionally; everything is a
   no-op until [set_enabled true], so the hot paths pay one boolean
   test when observability is off. *)

let enabled = ref false

let set_enabled b = enabled := b
let on () = !enabled

let registry = Metrics.create ()
let tracer = Trace.create ~capacity:65536 ()

let reset () =
  Metrics.reset registry;
  Trace.clear tracer

let emit event = if !enabled then Trace.emit tracer event

let count ?by name =
  if !enabled then Metrics.incr ?by (Metrics.counter registry name)

let set_gauge name v =
  if !enabled then Metrics.set (Metrics.gauge registry name) v

let observe name v =
  if !enabled then Metrics.observe (Metrics.histogram registry name) v

let with_span name f =
  if not !enabled then f ()
  else begin
    Trace.emit tracer (Trace.Span_begin { name });
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () ->
        let elapsed_ns = (Unix.gettimeofday () -. t0) *. 1e9 in
        Metrics.observe
          (Metrics.histogram registry ("span." ^ name))
          elapsed_ns;
        Trace.emit tracer (Trace.Span_end { name; elapsed_ns }))
      f
  end
