(** Typed, timestamped trace events.

    A tracer keeps the most recent [capacity] records in a ring buffer
    (oldest records are overwritten, never the newest) and feeds every
    record to its sinks as it is emitted: the in-memory ring serves
    tests and post-mortems, a JSON-lines sink serves tooling, the
    console sink serves interactive debugging. *)

type probe_kind = Host | Switch | Walk | Loop

type event =
  | Probe_sent of { kind : probe_kind; hit : bool; cost_ns : float }
  | Worm_injected of { wid : int; at_ns : float; hops : int }
  | Worm_delivered of { wid : int; at_ns : float; latency_ns : float }
  | Worm_dropped of { wid : int; at_ns : float; reason : string }
  | Replicate_merged of { kept : int; absorbed : int }
  | Route_computed of { pairs : int; unreachable : int }
  | Routes_distributed of { slices : int; bytes : int }
  | Epoch_started of { name : string; discrepancies : int }
  | Daemon_transition of { epoch : int; from_ : string; to_ : string }
      (** control-plane daemon state-machine step *)
  | Alert_raised of { name : string; epoch : int }
      (** a health rule breached its threshold for long enough *)
  | Alert_cleared of { name : string; epoch : int }
  | Deduction of { did : int; rule : string; fact : string }
      (** a provenance-ledger entry (San_why) was recorded *)
  | Daemon_epoch of
      { epoch : int; verdict : string; leader : string; covered : int;
        total : int }
      (** one closed control-plane epoch, as the daemon scored it *)
  | Mapper_stuck of { at_ns : float; pending : int }
      (** the election co-simulation found no runnable work *)
  | Phase_timed of
      { epoch : int; phase : string; start_ns : float; dur_ns : float }
      (** one daemon epoch phase (detect/verify/remap/distribute)
          placed on the simulated-time axis: [start_ns] is the run's
          cumulative sim clock when the phase began *)
  | Span_begin of { name : string }
  | Span_end of { name : string; elapsed_ns : float }
  | Mark of { name : string; note : string }

type record = { seq : int; wall_ns : float; event : event }
(** [seq] counts from 0 since the last [clear]; [wall_ns] is wall-clock
    time (nanoseconds since the epoch). *)

type sink = record -> unit

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity defaults to 4096 records. *)

val emit : t -> event -> unit

val records : t -> record list
(** Surviving records, oldest first. *)

val events : t -> event list

val capacity : t -> int
val length : t -> int

val dropped : t -> int
(** Records overwritten by ring wrap-around since the last [clear]. *)

val clear : t -> unit
(** Empty the ring and restart [seq] at 0. Sinks are kept. *)

val add_sink : t -> sink -> unit
val clear_sinks : t -> unit

val has_sinks : t -> bool
(** High-rate emitters (the provenance ledger) use this to skip
    formatting events nobody is streaming. *)

val jsonl_sink : out_channel -> sink
(** One compact JSON object per line, [record_to_json] encoding. *)

val console_sink : Format.formatter -> sink

val record_to_json : record -> San_util.Json.t
val record_of_json : San_util.Json.t -> record option
val event_to_json : event -> San_util.Json.t
val event_of_json : San_util.Json.t -> event option

val probe_kind_to_string : probe_kind -> string
val pp_event : Format.formatter -> event -> unit

val all_events : event list
(** One sample per constructor, maintained by a compiler-checked
    successor chain inside {!Trace}: the serialization test round-trips
    every element, so a constructor added without JSON support fails
    the suite instead of silently dropping records. *)
