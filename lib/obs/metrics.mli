(** Named counters, gauges and log-scale histograms.

    The mapping experiments are accounting experiments — probe counts,
    hit ratios, latency distributions — so the registry is the shared
    vocabulary every layer reports into. Instruments are created on
    first use; [reset] zeroes values in place, keeping cached handles
    valid across per-run resets. *)

type t
(** A registry. *)

type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Find or create the counter of that name. *)

val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). In debug mode, raises [Invalid_argument] on
    a negative increment or a counter driven below zero, so
    monotonicity bugs fail at the call site instead of exporting as
    nonsense. *)

val set_debug : bool -> unit
(** Enable/disable debug mode (also enabled at startup by the
    [SAN_DEBUG_COUNTERS] environment variable). *)

val counter_value : counter -> int
val counter_name : counter -> string

val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val observe : histogram -> float -> unit
(** Record one observation. Non-positive values go to a dedicated zero
    bucket; positive values are binned at geometric boundaries
    [2^(i/8)] (~9% relative resolution). *)

val histogram_count : histogram -> int
val histogram_name : histogram -> string

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0,1]: the geometric midpoint of the
    bucket holding the rank-[q] observation, clamped to the observed
    min/max. 0 when the histogram is empty. *)

val reset : t -> unit
(** Zero every instrument in place (handles remain valid). *)

(** {1 Snapshots} *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_zero : int;
  hs_buckets : (int * int) list;
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * hist_snapshot) list;
}

val snapshot : t -> snapshot
(** An immutable view, name-sorted. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Activity between two snapshots of the same registry: counters and
    histogram populations subtract, gauges keep the later value, and a
    histogram's min/max come from [after] (window extremes are not
    recoverable from summaries).

    An instrument that restarted mid-window (a {!reset} between the
    snapshots: its counter went backwards, or a histogram's total,
    zero bucket or any individual bucket shrank) is reported as its
    [after] state wholesale — everything since the reset is the
    window's activity — so deltas are never negative even when the
    window holds only new buckets. *)

val quantile_of : hist_snapshot -> float -> float

val counter_in : snapshot -> string -> int option
val gauge_in : snapshot -> string -> float option
val histogram_in : snapshot -> string -> hist_snapshot option

val to_json : snapshot -> San_util.Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name:
    {count,sum,min,max,p50,p90,p99}}}]. *)

val pp : Format.formatter -> snapshot -> unit
