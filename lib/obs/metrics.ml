(* A registry of named counters, gauges and log-scale histograms.

   Instruments are created on first use and zeroed in place by [reset],
   so handles cached by instrumented modules stay valid across the
   per-run resets the CLI and bench harness perform. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

(* Log-scale histogram: observations are binned at geometric bucket
   boundaries gamma^i with gamma = 2^(1/8) (~9% relative resolution),
   the scheme DDSketch/HDR use. Non-positive observations land in a
   dedicated zero bucket. *)
let gamma = Float.pow 2.0 0.125
let log_gamma = Float.log gamma

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  mutable h_zero : int;
  h_buckets : (int, int) Hashtbl.t;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let find_or tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some x -> x
  | None ->
    let x = make () in
    Hashtbl.replace tbl name x;
    x

let counter t name =
  find_or t.counters name (fun () -> { c_name = name; c_value = 0 })

let gauge t name =
  find_or t.gauges name (fun () -> { g_name = name; g_value = 0.0 })

let histogram t name =
  find_or t.histograms name (fun () ->
      {
        h_name = name;
        h_count = 0;
        h_sum = 0.0;
        h_min = infinity;
        h_max = neg_infinity;
        h_zero = 0;
        h_buckets = Hashtbl.create 64;
      })

(* Counters are monotonic: a negative increment (or a value driven
   below zero by one) is always an accounting bug upstream, so debug
   mode turns it into an immediate failure at the offending call site
   instead of a silently wrong export. *)
let debug = ref (Sys.getenv_opt "SAN_DEBUG_COUNTERS" <> None)
let set_debug on = debug := on

let incr ?(by = 1) c =
  if !debug && by < 0 then
    invalid_arg
      (Printf.sprintf "Metrics.incr %s: negative increment %d" c.c_name by);
  c.c_value <- c.c_value + by;
  if !debug && c.c_value < 0 then
    invalid_arg
      (Printf.sprintf "Metrics.incr %s: counter went negative (%d)" c.c_name
         c.c_value)
let counter_value c = c.c_value
let counter_name c = c.c_name

let set g v = g.g_value <- v
let gauge_value g = g.g_value
let gauge_name g = g.g_name

let bucket_of v = int_of_float (Float.floor (Float.log v /. log_gamma))

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  if v <= 0.0 then h.h_zero <- h.h_zero + 1
  else
    let b = bucket_of v in
    Hashtbl.replace h.h_buckets b
      (1 + Option.value ~default:0 (Hashtbl.find_opt h.h_buckets b))

let histogram_count h = h.h_count
let histogram_name h = h.h_name

let reset t =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) t.counters;
  Hashtbl.iter (fun _ g -> g.g_value <- 0.0) t.gauges;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- infinity;
      h.h_max <- neg_infinity;
      h.h_zero <- 0;
      Hashtbl.reset h.h_buckets)
    t.histograms

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type hist_snapshot = {
  hs_count : int;
  hs_sum : float;
  hs_min : float;
  hs_max : float;
  hs_zero : int;
  hs_buckets : (int * int) list; (* sorted by bucket index *)
}

type snapshot = {
  s_counters : (string * int) list;
  s_gauges : (string * float) list;
  s_histograms : (string * hist_snapshot) list;
}

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  {
    s_counters = sorted_bindings t.counters (fun c -> c.c_value);
    s_gauges = sorted_bindings t.gauges (fun g -> g.g_value);
    s_histograms =
      sorted_bindings t.histograms (fun h ->
          {
            hs_count = h.h_count;
            hs_sum = h.h_sum;
            hs_min = h.h_min;
            hs_max = h.h_max;
            hs_zero = h.h_zero;
            hs_buckets =
              Hashtbl.fold (fun b n acc -> (b, n) :: acc) h.h_buckets []
              |> List.sort compare;
          });
  }

(* [diff ~before ~after]: activity between two snapshots of the same
   registry. Counters and histogram populations subtract; gauges keep
   the later value; a histogram's min/max are taken from [after] (the
   window extremes are not recoverable from summaries).

   Instruments restart when [reset] runs mid-window, and a restarted
   instrument must not subtract: the after-side population IS the
   window's activity. The telltale is any count going backwards —
   a counter below its before value, or a histogram whose total, zero
   bucket or any individual bucket shrank (the "only new buckets
   appeared" window: the old population vanished with the reset, so
   naive subtraction reported negative counts against a bucket list
   holding only the new bins). *)
let diff ~before ~after =
  let base assoc name = Option.value ~default:0 (List.assoc_opt name assoc) in
  let sub_buckets older newer =
    List.filter_map
      (fun (b, n) ->
        let d = n - Option.value ~default:0 (List.assoc_opt b older) in
        if d > 0 then Some (b, d) else None)
      newer
  in
  let restarted h0 h =
    h.hs_count < h0.hs_count
    || h.hs_zero < h0.hs_zero
    || List.exists
         (fun (b, n0) ->
           Option.value ~default:0 (List.assoc_opt b h.hs_buckets) < n0)
         h0.hs_buckets
  in
  {
    s_counters =
      List.map
        (fun (name, v) ->
          let d = v - base before.s_counters name in
          (name, if d < 0 then v else d))
        after.s_counters;
    s_gauges = after.s_gauges;
    s_histograms =
      List.map
        (fun (name, h) ->
          match List.assoc_opt name before.s_histograms with
          | None -> (name, h)
          | Some h0 when restarted h0 h -> (name, h)
          | Some h0 ->
            ( name,
              {
                hs_count = h.hs_count - h0.hs_count;
                hs_sum = h.hs_sum -. h0.hs_sum;
                hs_min = h.hs_min;
                hs_max = h.hs_max;
                hs_zero = h.hs_zero - h0.hs_zero;
                hs_buckets = sub_buckets h0.hs_buckets h.hs_buckets;
              } ))
        after.s_histograms;
  }

(* Quantile by cumulative walk over the zero bucket then the sorted
   log buckets; a bucket answers with its geometric midpoint, clamped
   to the observed extremes. *)
let quantile_of hs q =
  if hs.hs_count = 0 then 0.0
  else begin
    let rank =
      max 1 (int_of_float (Float.ceil (q *. float_of_int hs.hs_count)))
    in
    if rank <= hs.hs_zero then 0.0
    else begin
      let rec walk seen = function
        | [] -> hs.hs_max
        | (b, n) :: rest ->
          let seen = seen + n in
          if seen >= rank then
            Float.pow gamma (float_of_int b +. 0.5)
          else walk seen rest
      in
      let v = walk hs.hs_zero hs.hs_buckets in
      Float.min hs.hs_max (Float.max hs.hs_min v)
    end
  end

let quantile h q =
  quantile_of
    {
      hs_count = h.h_count;
      hs_sum = h.h_sum;
      hs_min = h.h_min;
      hs_max = h.h_max;
      hs_zero = h.h_zero;
      hs_buckets =
        Hashtbl.fold (fun b n acc -> (b, n) :: acc) h.h_buckets []
        |> List.sort compare;
    }
    q

let counter_in snap name = List.assoc_opt name snap.s_counters
let gauge_in snap name = List.assoc_opt name snap.s_gauges
let histogram_in snap name = List.assoc_opt name snap.s_histograms

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let to_json snap =
  let module J = San_util.Json in
  let hist_json (name, hs) =
    ( name,
      J.Obj
        [
          ("count", J.int hs.hs_count);
          ("sum", J.Num hs.hs_sum);
          ("min", J.Num (if hs.hs_count = 0 then 0.0 else hs.hs_min));
          ("max", J.Num (if hs.hs_count = 0 then 0.0 else hs.hs_max));
          ("p50", J.Num (quantile_of hs 0.50));
          ("p90", J.Num (quantile_of hs 0.90));
          ("p99", J.Num (quantile_of hs 0.99));
        ] )
  in
  J.Obj
    [
      ( "counters",
        J.Obj (List.map (fun (n, v) -> (n, J.int v)) snap.s_counters) );
      ("gauges", J.Obj (List.map (fun (n, v) -> (n, J.Num v)) snap.s_gauges));
      ("histograms", J.Obj (List.map hist_json snap.s_histograms));
    ]

let pp ppf snap =
  List.iter
    (fun (n, v) -> Format.fprintf ppf "%s = %d@." n v)
    snap.s_counters;
  List.iter
    (fun (n, v) -> Format.fprintf ppf "%s = %g@." n v)
    snap.s_gauges;
  List.iter
    (fun (n, hs) ->
      Format.fprintf ppf "%s: n=%d sum=%g p50=%g p90=%g p99=%g@." n hs.hs_count
        hs.hs_sum (quantile_of hs 0.50) (quantile_of hs 0.90)
        (quantile_of hs 0.99))
    snap.s_histograms
