(* Typed, timestamped trace events with a bounded ring buffer and
   pluggable sinks. *)

type probe_kind = Host | Switch | Walk | Loop

type event =
  | Probe_sent of { kind : probe_kind; hit : bool; cost_ns : float }
  | Worm_injected of { wid : int; at_ns : float; hops : int }
  | Worm_delivered of { wid : int; at_ns : float; latency_ns : float }
  | Worm_dropped of { wid : int; at_ns : float; reason : string }
  | Replicate_merged of { kept : int; absorbed : int }
  | Route_computed of { pairs : int; unreachable : int }
  | Routes_distributed of { slices : int; bytes : int }
  | Epoch_started of { name : string; discrepancies : int }
  | Daemon_transition of { epoch : int; from_ : string; to_ : string }
  | Alert_raised of { name : string; epoch : int }
  | Alert_cleared of { name : string; epoch : int }
  | Deduction of { did : int; rule : string; fact : string }
  | Daemon_epoch of
      { epoch : int; verdict : string; leader : string; covered : int;
        total : int }
  | Mapper_stuck of { at_ns : float; pending : int }
  | Phase_timed of
      { epoch : int; phase : string; start_ns : float; dur_ns : float }
  | Span_begin of { name : string }
  | Span_end of { name : string; elapsed_ns : float }
  | Mark of { name : string; note : string }

(* One sample per constructor, linked as a successor chain: the match
   in [next] is over every constructor, so adding a variant without
   threading it into the chain (and therefore into [all_events]) is a
   fatal inexhaustive-match error. The serialization round-trip test
   walks this list, which is how a forgotten [event_of_json] arm
   becomes a test failure instead of silent data loss. *)
let all_events =
  let next = function
    | None -> Some (Probe_sent { kind = Host; hit = true; cost_ns = 125.0 })
    | Some (Probe_sent _) ->
      Some (Worm_injected { wid = 7; at_ns = 10.0; hops = 3 })
    | Some (Worm_injected _) ->
      Some (Worm_delivered { wid = 7; at_ns = 60.0; latency_ns = 50.0 })
    | Some (Worm_delivered _) ->
      Some (Worm_dropped { wid = 8; at_ns = 90.0; reason = "forward_reset" })
    | Some (Worm_dropped _) -> Some (Replicate_merged { kept = 4; absorbed = 2 })
    | Some (Replicate_merged _) ->
      Some (Route_computed { pairs = 90; unreachable = 0 })
    | Some (Route_computed _) ->
      Some (Routes_distributed { slices = 10; bytes = 4096 })
    | Some (Routes_distributed _) ->
      Some (Epoch_started { name = "e1"; discrepancies = 1 })
    | Some (Epoch_started _) ->
      Some (Daemon_transition { epoch = 3; from_ = "stable"; to_ = "verifying" })
    | Some (Daemon_transition _) ->
      Some (Alert_raised { name = "coverage"; epoch = 4 })
    | Some (Alert_raised _) -> Some (Alert_cleared { name = "coverage"; epoch = 5 })
    | Some (Alert_cleared _) ->
      Some (Deduction { did = 6; rule = "d1_slot_conflict"; fact = "merge 4<-2" })
    | Some (Deduction _) ->
      Some
        (Daemon_epoch
           { epoch = 2; verdict = "verified"; leader = "h9"; covered = 9; total = 9 })
    | Some (Daemon_epoch _) -> Some (Mapper_stuck { at_ns = 7.0; pending = 2 })
    | Some (Mapper_stuck _) ->
      Some
        (Phase_timed
           { epoch = 3; phase = "verify"; start_ns = 100.0; dur_ns = 250.0 })
    | Some (Phase_timed _) -> Some (Span_begin { name = "map" })
    | Some (Span_begin _) -> Some (Span_end { name = "map"; elapsed_ns = 42.0 })
    | Some (Span_end _) -> Some (Mark { name = "note"; note = "hello" })
    | Some (Mark _) -> None
  in
  let rec walk acc cur =
    match next cur with
    | None -> List.rev acc
    | Some e -> walk (e :: acc) (Some e)
  in
  walk [] None

type record = { seq : int; wall_ns : float; event : event }

type sink = record -> unit

type t = {
  capacity : int;
  ring : record option array;
  mutable next : int; (* total records emitted since the last clear *)
  mutable sinks : sink list;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; ring = Array.make capacity None; next = 0; sinks = [] }

let capacity t = t.capacity
let length t = min t.next t.capacity
let dropped t = max 0 (t.next - t.capacity)

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]
let clear_sinks t = t.sinks <- []
let has_sinks t = t.sinks <> []

let emit t event =
  let r = { seq = t.next; wall_ns = Unix.gettimeofday () *. 1e9; event } in
  t.ring.(t.next mod t.capacity) <- Some r;
  t.next <- t.next + 1;
  List.iter (fun sink -> sink r) t.sinks

(* Oldest surviving record first. *)
let records t =
  let n = length t in
  List.init n (fun i ->
      Option.get t.ring.((t.next - n + i) mod t.capacity))

let events t = List.map (fun r -> r.event) (records t)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)

let probe_kind_to_string = function
  | Host -> "host"
  | Switch -> "switch"
  | Walk -> "walk"
  | Loop -> "loop"

let probe_kind_of_string = function
  | "host" -> Some Host
  | "switch" -> Some Switch
  | "walk" -> Some Walk
  | "loop" -> Some Loop
  | _ -> None

let event_to_json event =
  let module J = San_util.Json in
  let fields =
    match event with
    | Probe_sent { kind; hit; cost_ns } ->
      [
        ("ev", J.Str "probe");
        ("kind", J.Str (probe_kind_to_string kind));
        ("hit", J.Bool hit);
        ("cost_ns", J.Num cost_ns);
      ]
    | Worm_injected { wid; at_ns; hops } ->
      [
        ("ev", J.Str "worm_injected");
        ("wid", J.int wid);
        ("at_ns", J.Num at_ns);
        ("hops", J.int hops);
      ]
    | Worm_delivered { wid; at_ns; latency_ns } ->
      [
        ("ev", J.Str "worm_delivered");
        ("wid", J.int wid);
        ("at_ns", J.Num at_ns);
        ("latency_ns", J.Num latency_ns);
      ]
    | Worm_dropped { wid; at_ns; reason } ->
      [
        ("ev", J.Str "worm_dropped");
        ("wid", J.int wid);
        ("at_ns", J.Num at_ns);
        ("reason", J.Str reason);
      ]
    | Replicate_merged { kept; absorbed } ->
      [
        ("ev", J.Str "replicate_merged");
        ("kept", J.int kept);
        ("absorbed", J.int absorbed);
      ]
    | Route_computed { pairs; unreachable } ->
      [
        ("ev", J.Str "route_computed");
        ("pairs", J.int pairs);
        ("unreachable", J.int unreachable);
      ]
    | Routes_distributed { slices; bytes } ->
      [
        ("ev", J.Str "routes_distributed");
        ("slices", J.int slices);
        ("bytes", J.int bytes);
      ]
    | Epoch_started { name; discrepancies } ->
      [
        ("ev", J.Str "epoch_started");
        ("name", J.Str name);
        ("discrepancies", J.int discrepancies);
      ]
    | Daemon_transition { epoch; from_; to_ } ->
      [
        ("ev", J.Str "daemon_transition");
        ("epoch", J.int epoch);
        ("from", J.Str from_);
        ("to", J.Str to_);
      ]
    | Alert_raised { name; epoch } ->
      [ ("ev", J.Str "alert_raised"); ("name", J.Str name); ("epoch", J.int epoch) ]
    | Alert_cleared { name; epoch } ->
      [ ("ev", J.Str "alert_cleared"); ("name", J.Str name); ("epoch", J.int epoch) ]
    | Deduction { did; rule; fact } ->
      [
        ("ev", J.Str "deduction");
        ("did", J.int did);
        ("rule", J.Str rule);
        ("fact", J.Str fact);
      ]
    | Daemon_epoch { epoch; verdict; leader; covered; total } ->
      [
        ("ev", J.Str "daemon_epoch");
        ("epoch", J.int epoch);
        ("verdict", J.Str verdict);
        ("leader", J.Str leader);
        ("covered", J.int covered);
        ("total", J.int total);
      ]
    | Mapper_stuck { at_ns; pending } ->
      [
        ("ev", J.Str "mapper_stuck");
        ("at_ns", J.Num at_ns);
        ("pending", J.int pending);
      ]
    | Phase_timed { epoch; phase; start_ns; dur_ns } ->
      [
        ("ev", J.Str "phase_timed");
        ("epoch", J.int epoch);
        ("phase", J.Str phase);
        ("start_ns", J.Num start_ns);
        ("dur_ns", J.Num dur_ns);
      ]
    | Span_begin { name } -> [ ("ev", J.Str "span_begin"); ("name", J.Str name) ]
    | Span_end { name; elapsed_ns } ->
      [
        ("ev", J.Str "span_end");
        ("name", J.Str name);
        ("elapsed_ns", J.Num elapsed_ns);
      ]
    | Mark { name; note } ->
      [ ("ev", J.Str "mark"); ("name", J.Str name); ("note", J.Str note) ]
  in
  J.Obj fields

let record_to_json r =
  let module J = San_util.Json in
  match event_to_json r.event with
  | J.Obj fields ->
    J.Obj (("seq", J.int r.seq) :: ("t_ns", J.Num r.wall_ns) :: fields)
  | j -> j

let event_of_json j =
  let module J = San_util.Json in
  let str k = Option.bind (J.member k j) J.to_str in
  let num k =
    match J.member k j with Some (J.Num f) -> Some f | _ -> None
  in
  let int k = Option.bind (J.member k j) J.to_int in
  let bool k =
    match J.member k j with Some (J.Bool b) -> Some b | _ -> None
  in
  match str "ev" with
  | Some "probe" -> (
    match (Option.bind (str "kind") probe_kind_of_string, bool "hit", num "cost_ns") with
    | Some kind, Some hit, Some cost_ns -> Some (Probe_sent { kind; hit; cost_ns })
    | _ -> None)
  | Some "worm_injected" -> (
    match (int "wid", num "at_ns", int "hops") with
    | Some wid, Some at_ns, Some hops -> Some (Worm_injected { wid; at_ns; hops })
    | _ -> None)
  | Some "worm_delivered" -> (
    match (int "wid", num "at_ns", num "latency_ns") with
    | Some wid, Some at_ns, Some latency_ns ->
      Some (Worm_delivered { wid; at_ns; latency_ns })
    | _ -> None)
  | Some "worm_dropped" -> (
    match (int "wid", num "at_ns", str "reason") with
    | Some wid, Some at_ns, Some reason ->
      Some (Worm_dropped { wid; at_ns; reason })
    | _ -> None)
  | Some "replicate_merged" -> (
    match (int "kept", int "absorbed") with
    | Some kept, Some absorbed -> Some (Replicate_merged { kept; absorbed })
    | _ -> None)
  | Some "route_computed" -> (
    match (int "pairs", int "unreachable") with
    | Some pairs, Some unreachable -> Some (Route_computed { pairs; unreachable })
    | _ -> None)
  | Some "routes_distributed" -> (
    match (int "slices", int "bytes") with
    | Some slices, Some bytes -> Some (Routes_distributed { slices; bytes })
    | _ -> None)
  | Some "epoch_started" -> (
    match (str "name", int "discrepancies") with
    | Some name, Some discrepancies ->
      Some (Epoch_started { name; discrepancies })
    | _ -> None)
  | Some "daemon_transition" -> (
    match (int "epoch", str "from", str "to") with
    | Some epoch, Some from_, Some to_ ->
      Some (Daemon_transition { epoch; from_; to_ })
    | _ -> None)
  | Some "alert_raised" -> (
    match (str "name", int "epoch") with
    | Some name, Some epoch -> Some (Alert_raised { name; epoch })
    | _ -> None)
  | Some "alert_cleared" -> (
    match (str "name", int "epoch") with
    | Some name, Some epoch -> Some (Alert_cleared { name; epoch })
    | _ -> None)
  | Some "deduction" -> (
    match (int "did", str "rule", str "fact") with
    | Some did, Some rule, Some fact -> Some (Deduction { did; rule; fact })
    | _ -> None)
  | Some "daemon_epoch" -> (
    match
      (int "epoch", str "verdict", str "leader", int "covered", int "total")
    with
    | Some epoch, Some verdict, Some leader, Some covered, Some total ->
      Some (Daemon_epoch { epoch; verdict; leader; covered; total })
    | _ -> None)
  | Some "mapper_stuck" -> (
    match (num "at_ns", int "pending") with
    | Some at_ns, Some pending -> Some (Mapper_stuck { at_ns; pending })
    | _ -> None)
  | Some "phase_timed" -> (
    match (int "epoch", str "phase", num "start_ns", num "dur_ns") with
    | Some epoch, Some phase, Some start_ns, Some dur_ns ->
      Some (Phase_timed { epoch; phase; start_ns; dur_ns })
    | _ -> None)
  | Some "span_begin" ->
    Option.map (fun name -> Span_begin { name }) (str "name")
  | Some "span_end" -> (
    match (str "name", num "elapsed_ns") with
    | Some name, Some elapsed_ns -> Some (Span_end { name; elapsed_ns })
    | _ -> None)
  | Some "mark" -> (
    match (str "name", str "note") with
    | Some name, Some note -> Some (Mark { name; note })
    | _ -> None)
  | _ -> None

let record_of_json j =
  let module J = San_util.Json in
  match (Option.bind (J.member "seq" j) J.to_int, J.member "t_ns" j) with
  | Some seq, Some (J.Num wall_ns) ->
    Option.map (fun event -> { seq; wall_ns; event }) (event_of_json j)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Sinks                                                               *)

let jsonl_sink oc r =
  output_string oc (San_util.Json.to_string ~pretty:false (record_to_json r));
  output_char oc '\n'

let pp_event ppf = function
  | Probe_sent { kind; hit; cost_ns } ->
    Format.fprintf ppf "probe %s %s (%.0f ns)" (probe_kind_to_string kind)
      (if hit then "hit" else "miss")
      cost_ns
  | Worm_injected { wid; at_ns; hops } ->
    Format.fprintf ppf "worm %d injected at %.0f ns (%d hops)" wid at_ns hops
  | Worm_delivered { wid; at_ns; latency_ns } ->
    Format.fprintf ppf "worm %d delivered at %.0f ns (latency %.0f ns)" wid
      at_ns latency_ns
  | Worm_dropped { wid; at_ns; reason } ->
    Format.fprintf ppf "worm %d dropped at %.0f ns (%s)" wid at_ns reason
  | Replicate_merged { kept; absorbed } ->
    Format.fprintf ppf "replicate %d merged into %d" absorbed kept
  | Route_computed { pairs; unreachable } ->
    Format.fprintf ppf "routes computed: %d pairs, %d unreachable" pairs
      unreachable
  | Routes_distributed { slices; bytes } ->
    Format.fprintf ppf "routes distributed: %d slices, %d bytes" slices bytes
  | Epoch_started { name; discrepancies } ->
    Format.fprintf ppf "epoch %s started (%d discrepancies)" name discrepancies
  | Daemon_transition { epoch; from_; to_ } ->
    Format.fprintf ppf "epoch %d: daemon %s -> %s" epoch from_ to_
  | Alert_raised { name; epoch } ->
    Format.fprintf ppf "ALERT %s raised at epoch %d" name epoch
  | Alert_cleared { name; epoch } ->
    Format.fprintf ppf "alert %s cleared at epoch %d" name epoch
  | Deduction { did; rule; fact } ->
    Format.fprintf ppf "deduction d%d [%s] %s" did rule fact
  | Daemon_epoch { epoch; verdict; leader; covered; total } ->
    Format.fprintf ppf "epoch %d closed: %s under %s, coverage %d/%d" epoch
      verdict leader covered total
  | Mapper_stuck { at_ns; pending } ->
    Format.fprintf ppf "election stuck at %.0f ns (%d mappers pending)" at_ns
      pending
  | Phase_timed { epoch; phase; start_ns; dur_ns } ->
    Format.fprintf ppf "epoch %d: phase %s %.0f ns (from %.0f ns)" epoch phase
      dur_ns start_ns
  | Span_begin { name } -> Format.fprintf ppf "span %s begin" name
  | Span_end { name; elapsed_ns } ->
    Format.fprintf ppf "span %s end (%.0f ns)" name elapsed_ns
  | Mark { name; note } -> Format.fprintf ppf "mark %s: %s" name note

let console_sink ppf r =
  Format.fprintf ppf "[%06d] %a@." r.seq pp_event r.event
