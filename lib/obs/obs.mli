(** Process-wide observability switchboard.

    Mapper, simulator and routing code report into the global
    {!registry} and {!tracer} through the helpers below. All of them
    are no-ops until {!set_enabled}[ true] — one boolean test on the
    hot path when observability is off — so instrumentation can stay
    in place permanently. Front ends ([san_map --trace/--metrics], the
    bench harness, tests) enable the switch, attach sinks and export
    snapshots. *)

val set_enabled : bool -> unit

val on : unit -> bool
(** Whether observability is currently enabled. *)

val registry : Metrics.t
(** The global metrics registry. *)

val tracer : Trace.t
(** The global tracer (64k-record ring). *)

val reset : unit -> unit
(** Zero the registry and empty the tracer ring. *)

val emit : Trace.event -> unit

val count : ?by:int -> string -> unit
(** Bump a counter in the global registry. *)

val set_gauge : string -> float -> unit
val observe : string -> float -> unit

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f], emitting [Span_begin]/[Span_end]
    trace events and recording the elapsed wall time into histogram
    ["span." ^ name]. When disabled it is exactly [f ()]. *)
