type t = { header : string list; mutable rows : string list list }

let create ~header = { header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length t.header)
      rows
  in
  let pad row =
    let len = List.length row in
    if len >= ncols then row
    else row @ List.init (ncols - len) (fun _ -> "")
  in
  let all = List.map pad (t.header :: rows) in
  let widths = Array.make ncols 0 in
  let note_widths row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter note_widths all;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then
          Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  (match all with
  | header :: body ->
    emit_row header;
    let total = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
    Buffer.add_string buf (String.make total '-');
    Buffer.add_char buf '\n';
    List.iter emit_row body
  | [] -> ());
  Buffer.contents buf

let print ?title t =
  (match title with
  | Some s ->
    print_newline ();
    print_endline s;
    print_endline (String.make (String.length s) '=')
  | None -> ());
  print_string (render t)

(* Eight block glyphs, min-to-max normalized. Each glyph is a 3-byte
   UTF-8 sequence, so indexing must be by glyph, not by byte. *)
let spark_glyphs = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline ?width values =
  match values with
  | [] -> ""
  | _ ->
    let values =
      match width with
      | Some w when w > 0 && List.length values > w ->
        (* Keep the most recent [w] samples: a health sparkline is a
           trailing window, so the right edge must be "now". *)
        let skip = List.length values - w in
        List.filteri (fun i _ -> i >= skip) values
      | _ -> values
    in
    let lo = List.fold_left Float.min infinity values in
    let hi = List.fold_left Float.max neg_infinity values in
    let buf = Buffer.create (3 * List.length values) in
    List.iter
      (fun v ->
        let i =
          if hi <= lo then 3 (* flat series: mid-height bar *)
          else
            let u = (v -. lo) /. (hi -. lo) in
            min 7 (max 0 (int_of_float (u *. 7.99)))
        in
        Buffer.add_string buf spark_glyphs.(i))
      values;
    Buffer.contents buf
