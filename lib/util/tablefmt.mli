(** Aligned plain-text tables for the benchmark harness.

    Every reproduced paper table is printed through this module so that
    [bench/main.exe] output lines up column-wise regardless of value
    widths. *)

type t

val create : header:string list -> t
(** Start a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells. *)

val render : t -> string
(** Render with a header separator and two-space column gaps. *)

val print : ?title:string -> t -> unit
(** [print ~title t] writes the optional underlined title and the table
    to stdout. *)

val sparkline : ?width:int -> float list -> string
(** A unicode block-glyph trend line ("▁▂▅█") normalized to the series'
    min/max; a flat series renders mid-height. With [width], only the
    most recent that many samples are drawn. Empty input renders
    empty. *)
