type handle = {
  label : string;
  cluster_hosts : Graph.node list;
  cluster_switches : Graph.node list;
  roots : Graph.node list;
  utility : Graph.node option;
}

type subcluster_spec = {
  sc_label : string;
  hosts_per_leaf : int list;
  uplinks_per_leaf : int list;
  num_mids : int;
  mid_uplinks : int list;
  num_roots : int;
  utility_host : bool;
}

(* Figure 3 rows.  Interfaces = leaf hosts + utility host:
   A: 33 + 1 = 34, 7 + 4 + 2 = 13 switches, 34 + 21 + 9 = 64 links.
   B: 29 + 1 = 30, 6 + 5 + 3 = 14 switches, 30 + 18 + 17 = 65 links.
   C: 35 + 1 = 36, 7 + 4 + 2 = 13 switches, 36 + 20 + 8 = 64 links. *)
let spec_a =
  {
    sc_label = "A";
    hosts_per_leaf = [ 5; 5; 5; 5; 5; 5; 3 ];
    uplinks_per_leaf = [ 3; 3; 3; 3; 3; 3; 3 ];
    num_mids = 4;
    mid_uplinks = [ 2; 2; 2; 3 ];
    num_roots = 2;
    utility_host = true;
  }

let spec_b =
  {
    sc_label = "B";
    hosts_per_leaf = [ 5; 5; 5; 5; 5; 4 ];
    uplinks_per_leaf = [ 3; 3; 3; 3; 3; 3 ];
    num_mids = 5;
    mid_uplinks = [ 3; 3; 3; 4; 4 ];
    num_roots = 3;
    utility_host = true;
  }

let spec_c =
  {
    sc_label = "C";
    hosts_per_leaf = [ 5; 5; 5; 5; 5; 5; 5 ];
    (* The middle leaf switch lost one uplink ("the third was faulty
       and removed, but never replaced" — Figure 4). *)
    uplinks_per_leaf = [ 3; 3; 3; 2; 3; 3; 3 ];
    num_mids = 4;
    mid_uplinks = [ 2; 2; 2; 2 ];
    num_roots = 2;
    utility_host = true;
  }

let lowest_free_port g n =
  match Graph.free_ports g n with
  | [] ->
    invalid_arg
      (Printf.sprintf "Generators: switch %d (%s) out of ports" n
         (Graph.name g n))
  | p :: _ -> p

let wire g a b =
  Graph.connect g (a, lowest_free_port g a) (b, lowest_free_port g b)

let attach_host g sw ~name =
  let h = Graph.add_host g ~name in
  Graph.connect g (h, 0) (sw, lowest_free_port g sw);
  h

let build_subcluster g spec =
  if List.length spec.hosts_per_leaf <> List.length spec.uplinks_per_leaf then
    invalid_arg "Generators.build_subcluster: leaf list length mismatch";
  if List.length spec.mid_uplinks <> spec.num_mids then
    invalid_arg "Generators.build_subcluster: mid list length mismatch";
  let lbl = spec.sc_label in
  let leaves =
    List.mapi
      (fun i _ -> Graph.add_switch g ~name:(Printf.sprintf "%s-leaf%d" lbl i) ())
      spec.hosts_per_leaf
  in
  let mids =
    List.init spec.num_mids (fun i ->
        Graph.add_switch g ~name:(Printf.sprintf "%s-mid%d" lbl i) ())
  in
  let roots =
    List.init spec.num_roots (fun i ->
        Graph.add_switch g ~name:(Printf.sprintf "%s-root%d" lbl i) ())
  in
  let host_counter = ref 0 in
  let hosts = ref [] in
  List.iter2
    (fun leaf count ->
      for _ = 1 to count do
        let name = Printf.sprintf "%s-h%d" lbl !host_counter in
        incr host_counter;
        hosts := attach_host g leaf ~name :: !hosts
      done)
    leaves spec.hosts_per_leaf;
  (* Leaf uplinks spread round-robin over the mid switches. *)
  let mid_arr = Array.of_list mids in
  let mid_cursor = ref 0 in
  List.iter2
    (fun leaf uplinks ->
      for _ = 1 to uplinks do
        wire g leaf mid_arr.(!mid_cursor mod Array.length mid_arr);
        incr mid_cursor
      done)
    leaves spec.uplinks_per_leaf;
  (* Mid uplinks spread round-robin over the roots. *)
  let root_arr = Array.of_list roots in
  let root_cursor = ref 0 in
  List.iter2
    (fun mid uplinks ->
      for _ = 1 to uplinks do
        wire g mid root_arr.(!root_cursor mod Array.length root_arr);
        incr root_cursor
      done)
    mids (List.map2 (fun _ u -> u) mids spec.mid_uplinks);
  let utility =
    if spec.utility_host then
      Some (attach_host g (List.hd roots) ~name:(Printf.sprintf "%s-util" lbl))
    else None
  in
  let hosts = List.rev !hosts @ Option.to_list utility in
  {
    label = lbl;
    cluster_hosts = hosts;
    cluster_switches = leaves @ mids @ roots;
    roots;
    utility;
  }

let subcluster ?radix spec =
  let g = Graph.create ?radix () in
  let h = build_subcluster g spec in
  (g, h)

let now ?radix ?(cross_links = 2) specs =
  let g = Graph.create ?radix () in
  let handles = List.map (build_subcluster g) specs in
  let rec link_chain = function
    | a :: (b :: _ as rest) ->
      let pick_root handle i =
        let candidates =
          List.filter (fun r -> Graph.free_ports g r <> []) handle.roots
        in
        match candidates with
        | [] -> invalid_arg "Generators.now: no spare root ports for cross links"
        | l -> List.nth l (i mod List.length l)
      in
      for i = 0 to cross_links - 1 do
        wire g (pick_root a i) (pick_root b i)
      done;
      link_chain rest
    | [ _ ] | [] -> ()
  in
  link_chain handles;
  (g, handles)

let now_c () = subcluster spec_c

let now_ca () = now [ spec_c; spec_a ]

let now_cab () = now [ spec_c; spec_a; spec_b ]

let fat_tree ?radix ~leaves ~hosts_per_leaf ~spines () =
  let g = Graph.create ?radix () in
  let spine_sw =
    List.init spines (fun i -> Graph.add_switch g ~name:(Printf.sprintf "spine%d" i) ())
  in
  for l = 0 to leaves - 1 do
    let leaf = Graph.add_switch g ~name:(Printf.sprintf "leaf%d" l) () in
    for h = 0 to hosts_per_leaf - 1 do
      ignore (attach_host g leaf ~name:(Printf.sprintf "h%d-%d" l h))
    done;
    List.iter (fun s -> wire g leaf s) spine_sw
  done;
  g

let hypercube ?(radix = 8) ~dim () =
  if dim + 1 > radix then invalid_arg "Generators.hypercube: dim+1 > radix";
  let g = Graph.create ~radix () in
  let n = 1 lsl dim in
  let sw =
    Array.init n (fun i -> Graph.add_switch g ~name:(Printf.sprintf "cube%d" i) ())
  in
  for i = 0 to n - 1 do
    for b = 0 to dim - 1 do
      let j = i lxor (1 lsl b) in
      if i < j then wire g sw.(i) sw.(j)
    done;
    ignore (attach_host g sw.(i) ~name:(Printf.sprintf "h%d" i))
  done;
  g

let grid ?(radix = 8) ~rows ~cols ~wrap () =
  if rows < 1 || cols < 1 then invalid_arg "Generators.mesh: empty grid";
  let g = Graph.create ~radix () in
  let sw =
    Array.init rows (fun r ->
        Array.init cols (fun c ->
            Graph.add_switch g ~name:(Printf.sprintf "s%d-%d" r c) ()))
  in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then wire g sw.(r).(c) sw.(r).(c + 1)
      else if wrap && cols > 1 then wire g sw.(r).(c) sw.(r).(0);
      if r + 1 < rows then wire g sw.(r).(c) sw.(r + 1).(c)
      else if wrap && rows > 1 then wire g sw.(r).(c) sw.(0).(c);
      ignore (attach_host g sw.(r).(c) ~name:(Printf.sprintf "h%d-%d" r c))
    done
  done;
  g

let mesh ?radix ~rows ~cols () = grid ?radix ~rows ~cols ~wrap:false ()
let torus ?radix ~rows ~cols () = grid ?radix ~rows ~cols ~wrap:true ()

let ring ?radix ~switches ~hosts_per_switch () =
  if switches < 1 then invalid_arg "Generators.ring: need a switch";
  let g = Graph.create ?radix () in
  let sw =
    Array.init switches (fun i ->
        Graph.add_switch g ~name:(Printf.sprintf "r%d" i) ())
  in
  for i = 0 to switches - 1 do
    if switches > 1 then wire g sw.(i) sw.((i + 1) mod switches);
    for h = 0 to hosts_per_switch - 1 do
      ignore (attach_host g sw.(i) ~name:(Printf.sprintf "h%d-%d" i h))
    done
  done;
  g

let star ?radix ~leaves () =
  let g = Graph.create ?radix () in
  let hub = Graph.add_switch g ~name:"hub" () in
  for i = 0 to leaves - 1 do
    let leaf = Graph.add_switch g ~name:(Printf.sprintf "leaf%d" i) () in
    wire g hub leaf;
    ignore (attach_host g leaf ~name:(Printf.sprintf "h%d" i))
  done;
  g

let cube_connected_cycles ?(radix = 8) ~dim () =
  if dim < 3 then invalid_arg "Generators.cube_connected_cycles: dim >= 3";
  if radix < 4 then invalid_arg "Generators.cube_connected_cycles: radix >= 4";
  let g = Graph.create ~radix () in
  let corners = 1 lsl dim in
  let sw =
    Array.init corners (fun w ->
        Array.init dim (fun i ->
            Graph.add_switch g ~name:(Printf.sprintf "ccc%d-%d" w i) ()))
  in
  for w = 0 to corners - 1 do
    for i = 0 to dim - 1 do
      (* cycle edge *)
      wire g sw.(w).(i) sw.(w).((i + 1) mod dim);
      (* hypercube edge, once per pair *)
      let w' = w lxor (1 lsl i) in
      if w < w' then wire g sw.(w).(i) sw.(w').(i);
      ignore (attach_host g sw.(w).(i) ~name:(Printf.sprintf "h%d-%d" w i))
    done
  done;
  g

let shuffle_exchange ?(radix = 8) ~dim () =
  if dim < 2 then invalid_arg "Generators.shuffle_exchange: dim >= 2";
  let g = Graph.create ~radix () in
  let n = 1 lsl dim in
  let sw =
    Array.init n (fun v -> Graph.add_switch g ~name:(Printf.sprintf "se%d" v) ())
  in
  let rot v = ((v lsl 1) land (n - 1)) lor (v lsr (dim - 1)) in
  let seen = Hashtbl.create 64 in
  let once a b =
    let key = if a < b then (a, b) else (b, a) in
    if a <> b && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      wire g sw.(a) sw.(b)
    end
  in
  for v = 0 to n - 1 do
    once v (v lxor 1);
    once v (rot v)
  done;
  for v = 0 to n - 1 do
    ignore (attach_host g sw.(v) ~name:(Printf.sprintf "h%d" v))
  done;
  g

let chain ?radix ~switches () =
  if switches < 1 then invalid_arg "Generators.chain: need a switch";
  let g = Graph.create ?radix () in
  let sw =
    Array.init switches (fun i ->
        Graph.add_switch g ~name:(Printf.sprintf "c%d" i) ())
  in
  for i = 0 to switches - 2 do
    wire g sw.(i) sw.(i + 1)
  done;
  ignore (attach_host g sw.(0) ~name:"h0");
  ignore (attach_host g sw.(0) ~name:"h1");
  g

let pendant_branch () =
  let g = Graph.create () in
  let s0 = Graph.add_switch g ~name:"core0" () in
  let s1 = Graph.add_switch g ~name:"core1" () in
  wire g s0 s1;
  wire g s0 s1;
  (* doubled link: not a bridge *)
  ignore (attach_host g s0 ~name:"h0");
  ignore (attach_host g s0 ~name:"h1");
  ignore (attach_host g s1 ~name:"h2");
  (* A hostless tail behind a switch-bridge: s1 - t0 - t1. *)
  let t0 = Graph.add_switch g ~name:"tail0" () in
  let t1 = Graph.add_switch g ~name:"tail1" () in
  wire g s1 t0;
  wire g t0 t1;
  g

(* The two degenerate single-interface fabrics of the turn-0
   self-probe ambiguity (fuzz-campaign bug 3): an exploration that
   confirms nothing behind the mapper's cable looks identical in both
   until the self-probe either bounces off the stub switch or dies on
   the unwired cable. *)
let lone_host () =
  let g = Graph.create () in
  ignore (Graph.add_host g ~name:"h0");
  g

let stub_switch () =
  let g = Graph.create () in
  let s = Graph.add_switch g ~name:"s0" () in
  ignore (attach_host g s ~name:"h0");
  g

let random_connected ~rng ~switches ~hosts ~extra_links ?radix () =
  if switches < 1 then invalid_arg "Generators.random_connected: need a switch";
  if hosts < 2 then invalid_arg "Generators.random_connected: need two hosts";
  let g = Graph.create ?radix () in
  let sw =
    Array.init switches (fun i ->
        Graph.add_switch g ~name:(Printf.sprintf "s%d" i) ())
  in
  (* Random spanning tree: attach each new switch to a uniformly random
     earlier one that still has a free port. *)
  for i = 1 to switches - 1 do
    let candidates = ref [] in
    for j = 0 to i - 1 do
      if Graph.free_ports g sw.(j) <> [] then candidates := sw.(j) :: !candidates
    done;
    match !candidates with
    | [] -> invalid_arg "Generators.random_connected: ports exhausted"
    | l -> wire g sw.(i) (List.nth l (San_util.Prng.int rng (List.length l)))
  done;
  (* Extra links between random distinct-port pairs. *)
  let tries = ref (extra_links * 10) in
  let added = ref 0 in
  while !added < extra_links && !tries > 0 do
    decr tries;
    let a = sw.(San_util.Prng.int rng switches) in
    let b = sw.(San_util.Prng.int rng switches) in
    let ok_ports =
      match (Graph.free_ports g a, Graph.free_ports g b) with
      | pa :: _, pb :: _ when a <> b || pa <> pb -> Some (pa, pb)
      | pa :: pb :: _, _ when a = b -> Some (pa, pb)
      | _ -> None
    in
    match ok_ports with
    | Some (pa, pb) when a <> b || pa <> pb ->
      Graph.connect g (a, pa) (b, pb);
      incr added
    | _ -> ()
  done;
  (* Hosts on random switches with spare ports. *)
  for h = 0 to hosts - 1 do
    let candidates =
      Array.to_list sw |> List.filter (fun s -> Graph.free_ports g s <> [])
    in
    match candidates with
    | [] -> invalid_arg "Generators.random_connected: no port left for host"
    | l ->
      let s = List.nth l (San_util.Prng.int rng (List.length l)) in
      ignore (attach_host g s ~name:(Printf.sprintf "h%d" h))
  done;
  g
