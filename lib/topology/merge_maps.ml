(* Conflicts are typed so a layer above (San_shard's merger) can
   classify a contradiction and locate the offending evidence in the
   absorbed map; the string API below is unchanged. *)
type conflict_class =
  | No_anchor
  | Unanchorable
  | Frame_mismatch
  | Port_clash
  | Name_clash
  | Structural

type conflict = {
  cls : conflict_class;
  detail : string;
  b_node : int option;
  b_wire : ((int * int) * (int * int)) option;
}

let class_name = function
  | No_anchor -> "no-anchor"
  | Unanchorable -> "unanchorable"
  | Frame_mismatch -> "frame-mismatch"
  | Port_clash -> "port-clash"
  | Name_clash -> "name-clash"
  | Structural -> "structural"

exception Conflict of conflict

let fail ?node ?wire cls fmt =
  Printf.ksprintf
    (fun s ->
      raise (Conflict { cls; detail = s; b_node = node; b_wire = wire }))
    fmt

(* The union under construction uses offset-tolerant slot tables: node
   [u]'s slot [i] is an arbitrary integer, normalised to real ports at
   export. *)
type unode = {
  u_id : int;
  u_kind : Graph.kind;
  u_name : string;
  slots : (int, int * int) Hashtbl.t; (* slot -> (peer unode id, peer slot) *)
}

type state = {
  mutable nodes : unode array;
  mutable count : int;
  hosts : (string, int) Hashtbl.t;
  radix : int;
}

let new_node st kind name =
  let u =
    { u_id = st.count; u_kind = kind; u_name = name; slots = Hashtbl.create 4 }
  in
  if st.count >= Array.length st.nodes then begin
    let arr = Array.make (max 16 (2 * Array.length st.nodes)) u in
    Array.blit st.nodes 0 arr 0 st.count;
    st.nodes <- arr
  end;
  st.nodes.(st.count) <- u;
  st.count <- st.count + 1;
  if kind = Graph.Host then Hashtbl.replace st.hosts name u.u_id;
  u

let add_uwire ?node ?wire st a ia b ib =
  let ua = st.nodes.(a) and ub = st.nodes.(b) in
  let put u i peer =
    match Hashtbl.find_opt u.slots i with
    | None -> Hashtbl.replace u.slots i peer
    | Some existing ->
      if existing <> peer then
        (* Same peer at a different slot means the two views disagree
           on a port frame; a different peer means two cables claim
           one port. *)
        let cls =
          if fst existing = fst peer then Frame_mismatch else Port_clash
        in
        fail ?node ?wire cls "port conflict at union node %d slot %d" u.u_id i
  in
  put ua ia (b, ib);
  put ub ib (a, ia)

(* Seed the state with map [a] verbatim. *)
let of_graph a =
  let st =
    { nodes = [||]; count = 0; hosts = Hashtbl.create 32; radix = Graph.radix a }
  in
  let id_of = Array.make (Graph.num_nodes a) (-1) in
  List.iter
    (fun n ->
      let u = new_node st (Graph.kind a n) (Graph.name a n) in
      id_of.(n) <- u.u_id)
    (Graph.nodes a);
  List.iter
    (fun ((n1, p1), (n2, p2)) -> add_uwire st id_of.(n1) p1 id_of.(n2) p2)
    (Graph.wires a);
  st

(* Integrate map [b]: anchored propagation with per-node shifts. *)
let integrate st b =
  if Graph.radix b <> st.radix then fail Structural "radix mismatch between maps";
  let n = Graph.num_nodes b in
  let match_of : (int * int) option array = Array.make n None in
  let queue = Queue.create () in
  let bind ?wire v (uid, shift) =
    let u = st.nodes.(uid) in
    if Graph.kind b v <> u.u_kind then
      fail ~node:v ?wire Name_clash
        "kind mismatch binding map node %d to union node %d" v uid;
    (match u.u_kind with
    | Graph.Host ->
      if Graph.name b v <> u.u_name then
        fail ~node:v ?wire Name_clash "host name mismatch: %s vs %s"
          (Graph.name b v) u.u_name
    | Graph.Switch -> ());
    match match_of.(v) with
    | Some (uid', shift') ->
      if uid' <> uid || shift' <> shift then
        fail ~node:v ?wire Frame_mismatch
          "map node %d binds inconsistently (%d@%d vs %d@%d)" v uid' shift'
          uid shift
    | None ->
      match_of.(v) <- Some (uid, shift);
      Queue.add v queue
  in
  (* Anchors: hosts shared by name. *)
  let seeded = ref false in
  List.iter
    (fun h ->
      match Hashtbl.find_opt st.hosts (Graph.name b h) with
      | Some uid ->
        seeded := true;
        bind h (uid, 0)
      | None -> ())
    (Graph.hosts b);
  if not !seeded then fail No_anchor "maps share no host anchor";
  (* Two-phase fixpoint. Identification must never outrun evidence:
     first propagate bindings and record wires between already-bound
     nodes until nothing more follows; only then materialise a single
     fresh node for some unbound neighbour of a bound node, and go
     back to propagating. Creating fresh nodes eagerly would duplicate
     switches that later evidence identifies. *)
  let bound : int list ref = ref [] in
  let drain_bindings () =
    while not (Queue.is_empty queue) do
      let v = Queue.take queue in
      bound := v :: !bound;
      let uid, shift = Option.get match_of.(v) in
      let u = st.nodes.(uid) in
      List.iter
        (fun (p, (w, q)) ->
          let slot = p + shift in
          let wire = ((v, p), (w, q)) in
          match Hashtbl.find_opt u.slots slot with
          | Some (peer_uid, peer_slot) ->
            bind ~wire w (peer_uid, peer_slot - q)
          | None -> (
            match match_of.(w) with
            | Some (wid, wshift) ->
              add_uwire ~node:w ~wire st uid slot wid (q + wshift)
            | None -> () (* deferred to the creation phase *)))
        (Graph.wired_ports b v)
    done
  in
  let create_one () =
    (* Find one bound node with an unbound neighbour across an unknown
       wire; prefer host neighbours (their identity is certain). *)
    let candidate pred =
      List.find_map
        (fun v ->
          let uid, shift = Option.get match_of.(v) in
          let u = st.nodes.(uid) in
          List.find_map
            (fun (p, (w, q)) ->
              if
                match_of.(w) = None
                && (not (Hashtbl.mem u.slots (p + shift)))
                && pred w
              then Some (v, p, uid, p + shift, w, q)
              else None)
            (Graph.wired_ports b v))
        !bound
    in
    match
      (candidate (fun w -> Graph.is_host b w),
       candidate (fun _ -> true))
    with
    | Some c, _ | None, Some c -> (
      let v, p, uid, slot, w, q = c in
      let wire = ((v, p), (w, q)) in
      match Graph.kind b w with
      | Graph.Host -> (
        match Hashtbl.find_opt st.hosts (Graph.name b w) with
        | Some wid ->
          (* The union knows this host but not this wire (the far map
             saw a link this one lacks). *)
          bind ~wire w (wid, 0);
          add_uwire ~node:w ~wire st uid slot wid q;
          true
        | None ->
          let fresh = new_node st Graph.Host (Graph.name b w) in
          bind ~wire w (fresh.u_id, 0);
          add_uwire ~node:w ~wire st uid slot fresh.u_id q;
          true)
      | Graph.Switch ->
        let fresh = new_node st Graph.Switch (Graph.name b w) in
        bind ~wire w (fresh.u_id, 0);
        add_uwire ~node:w ~wire st uid slot fresh.u_id q;
        true)
    | None, None -> false
  in
  let continue = ref true in
  while !continue do
    drain_bindings ();
    continue := create_one ()
  done;
  (* Every b node must have been anchored. *)
  Array.iteri
    (fun v m ->
      if m = None && Graph.degree b v > 0 then
        fail ~node:v Unanchorable
          "map node %d is not connected to any shared anchor" v)
    match_of

let export st =
  let g = Graph.create ~radix:st.radix () in
  let node_of = Array.make st.count (-1) in
  let base = Array.make st.count 0 in
  for i = 0 to st.count - 1 do
    let u = st.nodes.(i) in
    let idxs = Hashtbl.fold (fun k _ acc -> k :: acc) u.slots [] in
    (match idxs with
    | [] -> ()
    | x :: r ->
      let lo = List.fold_left min x r and hi = List.fold_left max x r in
      if hi - lo > st.radix - 1 then
        fail Structural "union node %d: slot span exceeds radix" i;
      base.(i) <- lo);
    node_of.(i) <-
      (match u.u_kind with
      | Graph.Host -> Graph.add_host g ~name:u.u_name
      | Graph.Switch -> Graph.add_switch g ~name:u.u_name ())
  done;
  for i = 0 to st.count - 1 do
    let u = st.nodes.(i) in
    Hashtbl.iter
      (fun slot (peer, pslot) ->
        if (i, slot) <= (peer, pslot) then
          Graph.connect g
            (node_of.(i), slot - base.(i))
            (node_of.(peer), pslot - base.(peer)))
      u.slots
  done;
  g

let union_c a b =
  match
    let st = of_graph a in
    integrate st b;
    export st
  with
  | g -> Ok g
  | exception Conflict c -> Error c
  | exception Invalid_argument m ->
    Error { cls = Structural; detail = m; b_node = None; b_wire = None }

let union a b = Result.map_error (fun c -> c.detail) (union_c a b)

(* Pending maps are indexed by host name so each join is found by a
   hash lookup as the accumulated anchor set grows, instead of
   rescanning the whole pending list after every merge. *)
let union_all = function
  | [] -> Error "no maps to merge"
  | first :: rest ->
    let pending = Array.of_list rest in
    let n = Array.length pending in
    let merged = Array.make n false in
    let queued = Array.make n false in
    let by_host = Hashtbl.create (max 16 (4 * n)) in
    Array.iteri
      (fun i m ->
        List.iter
          (fun h -> Hashtbl.add by_host (Graph.name m h) i)
          (Graph.hosts m))
      pending;
    let work = Queue.create () in
    let acc_hosts = Hashtbl.create 64 in
    let note_host name =
      if not (Hashtbl.mem acc_hosts name) then begin
        Hashtbl.replace acc_hosts name ();
        List.iter
          (fun i ->
            if not queued.(i) then begin
              queued.(i) <- true;
              Queue.add i work
            end)
          (Hashtbl.find_all by_host name)
      end
    in
    let acc = ref first in
    let err = ref None in
    List.iter (fun h -> note_host (Graph.name first h)) (Graph.hosts first);
    while !err = None && not (Queue.is_empty work) do
      let i = Queue.take work in
      if not merged.(i) then
        match union !acc pending.(i) with
        | Ok g ->
          merged.(i) <- true;
          acc := g;
          List.iter
            (fun h -> note_host (Graph.name pending.(i) h))
            (Graph.hosts pending.(i))
        | Error e -> err := Some e
    done;
    (match !err with
    | Some e -> Error e
    | None ->
      if Array.exists not merged then
        Error "some partial maps share no anchor with the rest"
      else Ok !acc)
