let bfs_distances g src =
  let n = Graph.num_nodes g in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    let du = dist.(u) in
    List.iter
      (fun (_, (v, _)) ->
        if dist.(v) = max_int then begin
          dist.(v) <- du + 1;
          Queue.add v q
        end)
      (Graph.wired_ports g u)
  done;
  dist

let distance g a b =
  let d = (bfs_distances g a).(b) in
  if d = max_int then None else Some d

let eccentricity g n =
  Array.fold_left
    (fun acc d -> if d = max_int then acc else max acc d)
    0 (bfs_distances g n)

let diameter g =
  Graph.fold_nodes g ~init:0 ~f:(fun acc n -> max acc (eccentricity g n))

let components g =
  let n = Graph.num_nodes g in
  let seen = Array.make n false in
  let comps = ref [] in
  for start = 0 to n - 1 do
    if not seen.(start) then begin
      let dist = bfs_distances g start in
      let comp = ref [] in
      for v = n - 1 downto 0 do
        if dist.(v) <> max_int && not seen.(v) then begin
          seen.(v) <- true;
          comp := v :: !comp
        end
      done;
      comps := !comp :: !comps
    end
  done;
  List.rev !comps

let component_of g n =
  let dist = bfs_distances g n in
  let acc = ref [] in
  for v = Array.length dist - 1 downto 0 do
    if dist.(v) <> max_int then acc := v :: !acc
  done;
  !acc

let is_connected g =
  Graph.num_nodes g <= 1 || List.length (components g) = 1

let farthest_switch_from_hosts g ~ignore =
  let considered_hosts =
    List.filter (fun h -> not (List.mem h ignore)) (Graph.hosts g)
  in
  match (Graph.switches g, considered_hosts) with
  | [], _ | _, [] -> None
  | sws, hs ->
    (* Multi-source BFS from all considered hosts at once. *)
    let n = Graph.num_nodes g in
    let dist = Array.make n max_int in
    let q = Queue.create () in
    List.iter
      (fun h ->
        dist.(h) <- 0;
        Queue.add h q)
      hs;
    while not (Queue.is_empty q) do
      let u = Queue.take q in
      List.iter
        (fun (_, (v, _)) ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v q
          end)
        (Graph.wired_ports g u)
    done;
    let best =
      List.fold_left
        (fun best s ->
          if dist.(s) = max_int then best
          else
            match best with
            | Some (_, d) when d >= dist.(s) -> best
            | _ -> Some (s, dist.(s)))
        None sws
    in
    Option.map fst best

let hop_histogram g src =
  let dist = bfs_distances g src in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun d ->
      if d <> max_int then
        Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    dist;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort compare

(* Weighted link ranking: the telemetry layer scores each wire (by
   occupancy, transit counts, route loads, ...) and this orders them
   hottest first, ties broken by the canonical end pair so post-mortem
   renderings are stable across runs. *)
let hottest_links g ~weight =
  Graph.wires g
  |> List.map (fun ends -> (ends, weight ends))
  |> List.sort (fun (ea, wa) (eb, wb) ->
         match compare wb wa with 0 -> compare ea eb | c -> c)
