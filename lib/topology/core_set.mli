(** Bridges, switch-bridges, the separated set [F], and the paper's
    exploration-depth parameters.

    Definitions follow §3.1.4 of the paper: a {e bridge} is an edge
    whose removal disconnects the graph; a {e switch-bridge} is a
    bridge with switches at both ends; [F] is the set of nodes
    separated from every host by a switch-bridge (Lemma 1), and the
    {e core} of the network is [N - F]. [Q(v)] is the length of the
    shortest trail from the mapper host through [v] and on to any host
    repeating no edge in either direction, and
    [Q = max { Q(v) | v in N - F }]; the mapper explores to depth
    [Q + D + 1] where [D] is the diameter. *)

type edge = Graph.wire_end * Graph.wire_end

val bridges : Graph.t -> edge list
(** All bridge wires, in canonical end order. Parallel wires between
    the same node pair are never bridges. *)

val switch_bridges : Graph.t -> edge list
(** Bridges with a switch at both ends. *)

val separated_set : Graph.t -> bool array
(** [separated_set g] marks the nodes of [F]: for every switch-bridge,
    the side containing no host. *)

val core_nodes : Graph.t -> Graph.node list
(** Nodes of [N - F], sorted. *)

val core_is_empty_f : Graph.t -> bool
(** True when [F] is empty, the condition for the cut-through model's
    exactness (Theorem 1, second sentence). *)

val q_of : Graph.t -> root:Graph.node -> Graph.node -> int option
(** [q_of g ~root v] is [Q(v)] computed as a 2-unit min-cost flow: one
    unit from [v] to the mapper [root] (modelling the worm's outbound
    leg reversed), one from [v] to any host. Each directed channel of
    a wire is a separate unit-capacity resource — the confirming worm
    may cross a wire once in each direction, which resolves the
    paper's first-edge/last-edge coincidence anomaly natively (both
    legs may end on the root's cable) — except that the two legs must
    leave [v] by different wires (no mid-route turn-0). [None] when no
    such trail exists even via the two-trails-to-any-hosts fallback,
    which can only overestimate the true [Q(v)] — a safe direction for
    a search depth. *)

val q_bound : Graph.t -> root:Graph.node -> int
(** [Q] = max of [q_of] over the core. 0 for degenerate graphs. *)

val search_depth : Graph.t -> root:Graph.node -> int
(** The oracle exploration depth [Q + D + 1]. *)
