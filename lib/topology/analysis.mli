(** Structural analysis of actual networks: distances, diameter,
    connectivity. All functions treat the multigraph as undirected and
    unweighted (one hop per wire), matching the paper's notion of
    distance as number of turns. *)

val bfs_distances : Graph.t -> Graph.node -> int array
(** [bfs_distances g src] gives hop distance from [src] to every node;
    unreachable nodes get [max_int]. *)

val distance : Graph.t -> Graph.node -> Graph.node -> int option

val eccentricity : Graph.t -> Graph.node -> int
(** Greatest finite distance from the node to any reachable node. *)

val diameter : Graph.t -> int
(** Greatest distance between any two connected nodes; 0 for graphs
    with fewer than two nodes. *)

val is_connected : Graph.t -> bool

val components : Graph.t -> Graph.node list list
(** Connected components, each as a sorted node list. *)

val component_of : Graph.t -> Graph.node -> Graph.node list
(** Sorted list of nodes reachable from the given node (inclusive). *)

val farthest_switch_from_hosts : Graph.t -> ignore:Graph.node list -> Graph.node option
(** The switch maximising its minimum distance to any host, with the
    hosts in [ignore] excluded from the distance computation (the paper
    excludes the designated utility host when rooting the UP*/DOWN* tree).
    Ties break towards the smallest node id. [None] if the graph has no
    switch or no non-ignored host. *)

val hop_histogram : Graph.t -> Graph.node -> (int * int) list
(** [(distance, node-count)] pairs from a source, ascending. *)

val hottest_links :
  Graph.t ->
  weight:(Graph.wire_end * Graph.wire_end -> float) ->
  ((Graph.wire_end * Graph.wire_end) * float) list
(** Every wire of the graph scored by [weight] (ends in the canonical
    order {!Graph.wires} uses), heaviest first; ties break towards the
    smaller end pair so renderings are stable. *)
