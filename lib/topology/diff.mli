(** Differences between two network maps.

    The deployed system remaps periodically; what an operator (or the
    reconfiguration logic) wants from a new map is not the map itself
    but {e what changed}: hosts that appeared or vanished, switches
    added or removed, cables moved. Switches are anonymous, so the two
    maps are aligned exactly like {!Iso} aligns them — anchored at the
    shared named hosts, propagating across shared wires with per-switch
    port shifts — and whatever fails to align is the change set.

    Unlike {!Iso.check}, nothing here is an error: both maps are
    assumed correct views of {e different moments}. *)

type change =
  | Host_added of string
  | Host_removed of string
  | Switch_added of int  (** node id in the new map *)
  | Switch_removed of int  (** node id in the old map *)
  | Link_added of string * string
      (** endpoint descriptions in the new map's terms *)
  | Link_removed of string * string  (** in the old map's terms *)

val pp_change : Format.formatter -> change -> unit

val correspond :
  old_map:Graph.t ->
  new_map:Graph.t ->
  (Graph.node * int) option array * (Graph.node, Graph.node) Hashtbl.t
(** The evidence-ordered alignment {!diff} is built on, for tooling
    that needs the node mapping itself (e.g. provenance blame): for
    each old node, its new counterpart and the per-node port shift;
    plus the reverse binding. Anchored at shared host names, grown
    across wires whose endpoint kinds agree, first binding wins. *)

val diff : old_map:Graph.t -> new_map:Graph.t -> change list
(** Structural changes from [old_map] to [new_map]. Switches reachable
    through unchanged wiring are identified across the two maps;
    a switch whose every anchor path changed reports as
    removed + added (there is genuinely no evidence it is the same
    anonymous device). *)

val is_unchanged : old_map:Graph.t -> new_map:Graph.t -> bool
