let node_id g n =
  if Graph.is_host g n then Printf.sprintf "h_%d" n else Printf.sprintf "sw_%d" n

let node_label g n =
  if Graph.is_host g n then Graph.name g n
  else
    let base = Graph.name g n in
    if base = "" then Printf.sprintf "sw%d" n else base

(* Utilization in [0,1] to a cool-to-hot HSV sweep (blue through red)
   and a widening pen, Graphviz's numeric color syntax. *)
let heat_attrs u =
  let u = Float.max 0.0 (Float.min 1.0 u) in
  Printf.sprintf ", color=\"%.3f 1.000 0.800\", penwidth=%.2f"
    (0.666 *. (1.0 -. u))
    (1.0 +. (4.0 *. u))

let to_string ?(graph_name = "network") ?heat g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph \"%s\" {\n" graph_name);
  Buffer.add_string buf "  node [fontsize=10];\n";
  List.iter
    (fun n ->
      let shape = if Graph.is_host g n then "ellipse" else "box" in
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s\", shape=%s];\n" (node_id g n)
           (node_label g n) shape))
    (Graph.nodes g);
  List.iter
    (fun (((a, pa), (b, pb)) as wire) ->
      let extra =
        match heat with None -> "" | Some f -> heat_attrs (f wire)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s -- %s [taillabel=\"%d\", headlabel=\"%d\"%s];\n"
           (node_id g a) (node_id g b) pa pb extra))
    (Graph.wires g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_file ?graph_name ?heat g path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?graph_name ?heat g))
