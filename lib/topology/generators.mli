(** Topology generators.

    The NOW subcluster generators reproduce the component counts of the
    paper's Figure 3 exactly (A: 34 interfaces / 13 switches / 64
    links; B: 30/14/65; C: 36/13/64), as incomplete fat-trees with the
    irregularities the paper describes (a leaf switch with a missing
    uplink, spare upper-level ports, a utility host wired directly to a
    root). The remaining generators provide the classic interconnects
    the paper contrasts against (hypercube, mesh, torus, ring) and
    random topologies for property-based testing. *)

type handle = {
  label : string;
  cluster_hosts : Graph.node list; (** all hosts incl. the utility host *)
  cluster_switches : Graph.node list;
  roots : Graph.node list; (** top-level switches *)
  utility : Graph.node option; (** the designated service host, if any *)
}

type subcluster_spec = {
  sc_label : string;
  hosts_per_leaf : int list; (** hosts attached to each leaf switch *)
  uplinks_per_leaf : int list; (** leaf→mid links; same length *)
  num_mids : int;
  mid_uplinks : int list; (** mid→root links per mid switch *)
  num_roots : int;
  utility_host : bool; (** host wired to root 0 *)
}

val spec_a : subcluster_spec
val spec_b : subcluster_spec
val spec_c : subcluster_spec
(** Specs reproducing Figure 3's rows, including Figure 4's
    irregularity: spec C's middle leaf switch has two uplinks instead
    of three. *)

val build_subcluster : Graph.t -> subcluster_spec -> handle
(** Add a subcluster to an existing graph (used to compose the full
    NOW); raises [Invalid_argument] if the spec does not fit the switch
    radix. *)

val subcluster : ?radix:int -> subcluster_spec -> Graph.t * handle

val now : ?radix:int -> ?cross_links:int -> subcluster_spec list -> Graph.t * handle list
(** Join subclusters in a chain with [cross_links] (default 2)
    root-to-root wires between each adjacent pair, mirroring the
    incremental construction of the 100-node NOW (Figure 5). *)

val now_c : unit -> Graph.t * handle
(** The C subcluster (the paper's Figure 4 network). *)

val now_ca : unit -> Graph.t * handle list
(** C + A joined. *)

val now_cab : unit -> Graph.t * handle list
(** C + A + B: the full 100-node NOW (Figure 5). *)

(** {1 Classic and synthetic interconnects} *)

val fat_tree : ?radix:int -> leaves:int -> hosts_per_leaf:int -> spines:int -> unit -> Graph.t
(** Two-level fat-tree, every leaf wired once to every spine. *)

val hypercube : ?radix:int -> dim:int -> unit -> Graph.t
(** [2^dim] switches, one host each. Requires [dim + 1 <= radix]. *)

val mesh : ?radix:int -> rows:int -> cols:int -> unit -> Graph.t
(** 2-D mesh of switches, one host per switch. *)

val torus : ?radix:int -> rows:int -> cols:int -> unit -> Graph.t
(** 2-D torus; wrap-around on 2-long dimensions yields parallel wires,
    exercising the multigraph paths. *)

val ring : ?radix:int -> switches:int -> hosts_per_switch:int -> unit -> Graph.t

val star : ?radix:int -> leaves:int -> unit -> Graph.t
(** One hub switch, [leaves] leaf switches with one host each. *)

val cube_connected_cycles : ?radix:int -> dim:int -> unit -> Graph.t
(** The cube-connected cycles network (each hypercube corner replaced
    by a [dim]-cycle of degree-3 switches, one host per switch) — one
    of the families the paper's §5.5 citations prove deadlock-free
    routing for. Requires [dim >= 3] and [radix >= 4]. *)

val shuffle_exchange : ?radix:int -> dim:int -> unit -> Graph.t
(** The shuffle-exchange network on [2^dim] switches (exchange edges
    flip the low bit; shuffle edges rotate left), one host per switch.
    Self edges at the shuffle's fixed points and shuffle edges that
    coincide with an exchange edge are skipped (simple-graph variant).
    Requires [dim >= 2]. *)

val chain : ?radix:int -> switches:int -> unit -> Graph.t
(** A line of switches with two hosts on the first switch — the
    hardest case for the mapper (all exploration far from hosts). *)

val pendant_branch : unit -> Graph.t
(** A network with a non-empty [F]: a hostless switch tail hanging off
    a switch-bridge. Used to test the [N - F] theorem statement. *)

val lone_host : unit -> Graph.t
(** A single host whose cable is unwired: the mapper's assumed root
    switch must be retracted (the turn-0 self-probe dies). *)

val stub_switch : unit -> Graph.t
(** A single host behind a single otherwise-empty switch: the turn-0
    self-probe bounces back, confirming the assumed root is real. *)

val random_connected :
  rng:San_util.Prng.t ->
  switches:int ->
  hosts:int ->
  extra_links:int ->
  ?radix:int ->
  unit ->
  Graph.t
(** Random connected topology: a random switch tree, [extra_links]
    extra random switch-switch wires (port permitting), hosts attached
    to uniformly random switches. At least two hosts and one switch are
    required. *)
