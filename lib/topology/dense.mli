(** Dense int-indexed views of the network, and the O(V+E) separation
    machinery the data-center-scale paths run on.

    {!Graph} already keys nodes by dense ints; this module adds the
    missing dense layer: a CSR snapshot assigning every [(node, port)]
    wire end a contiguous {e channel id} (prefix sums over port
    counts), and linear-time bridge / separated-set computation on
    explicit edge arrays. The per-edge BFS formulations in {!Core_set}
    and the mapper's PRUNE are quadratic-or-worse; at 10k hosts they
    dominate everything else, so both are re-expressed on the routines
    here. The structural-value-keyed APIs remain as thin views. *)

type t
(** An immutable CSR snapshot of a {!Graph.t} taken by {!of_graph}.
    Later mutations of the source graph are not reflected. *)

val of_graph : Graph.t -> t

val radix : t -> int
val num_nodes : t -> int

val num_channels : t -> int
(** Total wire ends: the sum of every node's port count. *)

val channel_of : t -> Graph.wire_end -> int option
(** Dense channel id of a wire end, or [None] when the node or port
    lies outside the snapshot (added to the graph after {!of_graph}). *)

val end_of : t -> int -> Graph.wire_end
(** Inverse of {!channel_of}. @raise Invalid_argument out of range. *)

val peer : t -> int -> int
(** Channel id on the far side of the wire plugged in at this channel,
    or [-1] when the port was vacant at snapshot time. *)

val kind : t -> int -> Graph.kind
val name : t -> int -> string

val to_graph : t -> Graph.t
(** Rebuild a fresh {!Graph.t} from the snapshot (round-trip check:
    node order, kinds, names and wires are reproduced exactly). *)

(** {1 Linear-time separation on explicit edge arrays}

    These operate on a multigraph given as parallel arrays
    [edge_u.(i), edge_v.(i)] (self edges and parallel edges allowed)
    so both the actual network ({!Core_set}) and the mapper's model
    multigraph can share one implementation. *)

val bridge_flags :
  nodes:int -> edge_u:int array -> edge_v:int array -> bool array
(** [bridge_flags ~nodes ~edge_u ~edge_v] marks each edge id that is a
    bridge, via one iterative Tarjan pass; parallel edges are
    distinguished by id, so neither of a doubled pair is a bridge. *)

val separation :
  nodes:int ->
  edge_u:int array ->
  edge_v:int array ->
  is_host:(int -> bool) ->
  candidate:(int -> bool) ->
  whole_components:bool ->
  bool array * int array
(** Theorem 1's F set in O(V+E): a node is marked when some
    {e candidate} bridge (in the mapper, a switch-switch cable)
    separates it, together with its whole side, from every host. The
    computation builds the bridge forest over 2-edge-connected
    components and decides each side by subtree host counts instead of
    one BFS per edge.

    With [whole_components], a connected component containing no host
    at all is additionally marked entirely as soon as it contains any
    candidate edge, bridge or not — the mapper's PRUNE applies the
    separation criterion to every switch-switch cable, and on a
    hostless component a non-bridge cable separates the component
    (trivially, as one side) from all hosts.

    Returns [(in_f, sep_edge)]: the mark per node, and for marked
    nodes the id of a candidate edge responsible for the separation
    ([-1] elsewhere) — the provenance ledger cites it. *)
