(** Fault injection on actual networks.

    System area networks change over time — hosts, switches and links
    are added and removed incrementally (the motivation of §1). These
    helpers derive degraded or extended variants of a network for
    dynamic-reconfiguration experiments and robustness tests. All
    functions return a fresh copy; the input graph is untouched.

    (Hosts that are attached but not running a mapper daemon are not a
    wiring fault: model them with [San_simnet.Config.responding].) *)

val remove_random_links : rng:San_util.Prng.t -> Graph.t -> count:int -> Graph.t
(** Remove up to [count] switch-to-switch wires chosen uniformly at
    random (host links are never cut so every host stays attached). *)

val remove_link : Graph.t -> Graph.wire_end -> Graph.t
(** Remove the wire plugged into the given end. *)

val flap_link :
  Graph.t -> Graph.wire_end -> (Graph.t * (Graph.t -> Graph.t)) option
(** [flap_link g e] cuts the wire at [e] and returns the degraded graph
    together with a restore function that re-plugs {e that} wire (both
    recorded ends) into any later copy of the network — so a flap
    scenario can apply further faults in between and still repair this
    one. [None] if [e] is vacant. The restore raises [Invalid_argument]
    if either port has been re-wired in the meantime. *)

val isolate_switch : Graph.t -> Graph.node -> Graph.t
(** Unplug every wire of a switch, simulating its removal from the
    fabric. The node remains but becomes unreachable. *)

val add_random_link : rng:San_util.Prng.t -> Graph.t -> Graph.t option
(** Add one wire between two random free switch ports, if possible. *)
