let remove_random_links ~rng g ~count =
  let g = Graph.copy g in
  let switch_wires () =
    List.filter
      (fun ((a, _), (b, _)) -> not (Graph.is_host g a || Graph.is_host g b))
      (Graph.wires g)
  in
  let removed = ref 0 in
  let continue = ref true in
  while !removed < count && !continue do
    match switch_wires () with
    | [] -> continue := false
    | ws ->
      let (e, _) = List.nth ws (San_util.Prng.int rng (List.length ws)) in
      Graph.disconnect g e;
      incr removed
  done;
  g

let remove_link g e =
  let g = Graph.copy g in
  Graph.disconnect g e;
  g

let flap_link g e =
  match Graph.neighbor g e with
  | None -> None
  | Some peer ->
    let degraded = Graph.copy g in
    Graph.disconnect degraded e;
    let restore g' =
      let g' = Graph.copy g' in
      Graph.connect g' e peer;
      g'
    in
    Some (degraded, restore)

let isolate_switch g sw =
  let g = Graph.copy g in
  List.iter (fun (p, _) -> Graph.disconnect g (sw, p)) (Graph.wired_ports g sw);
  g

let add_random_link ~rng g =
  let candidates =
    List.concat_map
      (fun s -> List.map (fun p -> (s, p)) (Graph.free_ports g s))
      (Graph.switches g)
  in
  match candidates with
  | [] | [ _ ] -> None
  | _ ->
    let arr = Array.of_list candidates in
    San_util.Prng.shuffle rng arr;
    let a = arr.(0) and b = arr.(1) in
    let g = Graph.copy g in
    Graph.connect g a b;
    Some g
