(* Dense CSR snapshot of a graph, plus linear-time bridge/separation
   machinery shared by Core_set (actual network) and Model's PRUNE
   (model multigraph). *)

type t = {
  c_radix : int;
  c_nodes : int;
  c_kind : Graph.kind array;
  c_name : string array;
  c_off : int array; (* length c_nodes + 1; channel id = c_off.(n) + port *)
  c_node : int array; (* channel -> owning node *)
  c_peer : int array; (* channel -> far channel, -1 when vacant *)
}

let of_graph g =
  let n = Graph.num_nodes g in
  let c_kind = Array.init n (Graph.kind g) in
  let c_name = Array.init n (Graph.name g) in
  let c_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    c_off.(v + 1) <- c_off.(v) + Graph.ports_of g v
  done;
  let nc = c_off.(n) in
  let c_node = Array.make nc 0 in
  let c_peer = Array.make nc (-1) in
  for v = 0 to n - 1 do
    for p = 0 to Graph.ports_of g v - 1 do
      let c = c_off.(v) + p in
      c_node.(c) <- v;
      (match Graph.neighbor g (v, p) with
      | Some (w, q) -> c_peer.(c) <- c_off.(w) + q
      | None -> ())
    done
  done;
  { c_radix = Graph.radix g; c_nodes = n; c_kind; c_name; c_off; c_node; c_peer }

let radix t = t.c_radix
let num_nodes t = t.c_nodes
let num_channels t = t.c_off.(t.c_nodes)

let channel_of t (n, p) =
  if n >= 0 && n < t.c_nodes && p >= 0 && p < t.c_off.(n + 1) - t.c_off.(n) then
    Some (t.c_off.(n) + p)
  else None

let end_of t c =
  if c < 0 || c >= num_channels t then
    invalid_arg (Printf.sprintf "Dense.end_of: channel %d out of range" c)
  else
    let n = t.c_node.(c) in
    (n, c - t.c_off.(n))

let peer t c = t.c_peer.(c)
let kind t n = t.c_kind.(n)
let name t n = t.c_name.(n)

let to_graph t =
  let g = Graph.create ~radix:t.c_radix () in
  for v = 0 to t.c_nodes - 1 do
    let id =
      match t.c_kind.(v) with
      | Graph.Host -> Graph.add_host g ~name:t.c_name.(v)
      | Graph.Switch ->
        Graph.add_switch g
          ?name:(if t.c_name.(v) = "" then None else Some t.c_name.(v))
          ()
    in
    assert (id = v)
  done;
  for c = 0 to num_channels t - 1 do
    let d = t.c_peer.(c) in
    if d > c then Graph.connect g (end_of t c) (end_of t d)
  done;
  g

(* ------------------------------------------------------------------ *)
(* Multigraph adjacency in CSR form over explicit edge arrays.        *)

let adjacency ~nodes ~edge_u ~edge_v =
  let ne = Array.length edge_u in
  let off = Array.make (nodes + 1) 0 in
  for e = 0 to ne - 1 do
    off.(edge_u.(e) + 1) <- off.(edge_u.(e) + 1) + 1;
    off.(edge_v.(e) + 1) <- off.(edge_v.(e) + 1) + 1
  done;
  for v = 0 to nodes - 1 do
    off.(v + 1) <- off.(v + 1) + off.(v)
  done;
  let cur = Array.copy off in
  let total = off.(nodes) in
  let adj_e = Array.make total 0 in
  let adj_v = Array.make total 0 in
  for e = 0 to ne - 1 do
    let u = edge_u.(e) and v = edge_v.(e) in
    adj_e.(cur.(u)) <- e;
    adj_v.(cur.(u)) <- v;
    cur.(u) <- cur.(u) + 1;
    adj_e.(cur.(v)) <- e;
    adj_v.(cur.(v)) <- u;
    cur.(v) <- cur.(v) + 1
  done;
  (off, adj_e, adj_v)

(* Iterative Tarjan over the prebuilt adjacency. The entering edge is
   skipped once by id, so each wire of a parallel pair still counts as
   a back edge for the other — parallel cables are never bridges. *)
let bridge_flags_adj ~nodes ~ne (off, adj_e, adj_v) =
  let disc = Array.make nodes (-1) in
  let low = Array.make nodes max_int in
  let is_bridge = Array.make ne false in
  let cursor = Array.make nodes 0 in
  let stack_v = Array.make (max nodes 1) 0 in
  let stack_e = Array.make (max nodes 1) 0 in
  let timer = ref 0 in
  for start = 0 to nodes - 1 do
    if disc.(start) = -1 then begin
      let sp = ref 0 in
      let push v in_e =
        stack_v.(!sp) <- v;
        stack_e.(!sp) <- in_e;
        incr sp;
        disc.(v) <- !timer;
        low.(v) <- !timer;
        incr timer;
        cursor.(v) <- off.(v)
      in
      push start (-1);
      while !sp > 0 do
        let u = stack_v.(!sp - 1) in
        if cursor.(u) < off.(u + 1) then begin
          let k = cursor.(u) in
          cursor.(u) <- k + 1;
          let eid = adj_e.(k) and v = adj_v.(k) in
          if eid = stack_e.(!sp - 1) then () (* don't re-walk the entering wire *)
          else if disc.(v) >= 0 then begin
            if disc.(v) < low.(u) then low.(u) <- disc.(v)
          end
          else push v eid
        end
        else begin
          let in_e = stack_e.(!sp - 1) in
          decr sp;
          if !sp > 0 then begin
            let p = stack_v.(!sp - 1) in
            if low.(u) < low.(p) then low.(p) <- low.(u);
            if low.(u) > disc.(p) then is_bridge.(in_e) <- true
          end
        end
      done
    end
  done;
  is_bridge

let bridge_flags ~nodes ~edge_u ~edge_v =
  let ne = Array.length edge_u in
  bridge_flags_adj ~nodes ~ne (adjacency ~nodes ~edge_u ~edge_v)

let separation ~nodes ~edge_u ~edge_v ~is_host ~candidate ~whole_components =
  let ne = Array.length edge_u in
  let ((off, adj_e, adj_v) as adj) = adjacency ~nodes ~edge_u ~edge_v in
  let is_bridge = bridge_flags_adj ~nodes ~ne adj in
  (* 2-edge-connected components: flood without crossing bridges. *)
  let comp = Array.make (max nodes 1) (-1) in
  let ncomp = ref 0 in
  let q = Queue.create () in
  for s = 0 to nodes - 1 do
    if comp.(s) = -1 then begin
      let c = !ncomp in
      incr ncomp;
      comp.(s) <- c;
      Queue.add s q;
      while not (Queue.is_empty q) do
        let u = Queue.take q in
        for k = off.(u) to off.(u + 1) - 1 do
          let v = adj_v.(k) in
          if (not is_bridge.(adj_e.(k))) && comp.(v) = -1 then begin
            comp.(v) <- c;
            Queue.add v q
          end
        done
      done
    end
  done;
  let nc = max !ncomp 1 in
  let chosts = Array.make nc 0 in
  for v = 0 to nodes - 1 do
    if is_host v then chosts.(comp.(v)) <- chosts.(comp.(v)) + 1
  done;
  (* The bridge forest: one tree per connected component of the input. *)
  let nb = ref 0 in
  for e = 0 to ne - 1 do
    if is_bridge.(e) then incr nb
  done;
  let nb = !nb in
  let bu = Array.make (max nb 1) 0 in
  let bv = Array.make (max nb 1) 0 in
  let borig = Array.make (max nb 1) 0 in
  let bi = ref 0 in
  for e = 0 to ne - 1 do
    if is_bridge.(e) then begin
      bu.(!bi) <- comp.(edge_u.(e));
      bv.(!bi) <- comp.(edge_v.(e));
      borig.(!bi) <- e;
      incr bi
    end
  done;
  let boff, badj_e, badj_v =
    adjacency ~nodes:nc ~edge_u:(Array.sub bu 0 nb) ~edge_v:(Array.sub bv 0 nb)
  in
  (* Root each tree; Euler (tin/tout) numbering gives O(1) subtree
     membership, a reverse-preorder pass gives subtree host counts. *)
  let parent = Array.make nc (-1) in
  let parent_b = Array.make nc (-1) in
  let tree = Array.make nc (-1) in
  let tin = Array.make nc 0 in
  let tout = Array.make nc 0 in
  let order = Array.make nc 0 in
  let opos = ref 0 in
  let cursor = Array.make nc 0 in
  let stack = Array.make nc 0 in
  let ntrees = ref 0 in
  let timer = ref 0 in
  for r = 0 to nc - 1 do
    if tree.(r) = -1 then begin
      let tr = !ntrees in
      incr ntrees;
      let sp = ref 0 in
      let enter v =
        tree.(v) <- tr;
        tin.(v) <- !timer;
        incr timer;
        order.(!opos) <- v;
        incr opos;
        cursor.(v) <- boff.(v);
        stack.(!sp) <- v;
        incr sp
      in
      enter r;
      while !sp > 0 do
        let u = stack.(!sp - 1) in
        if cursor.(u) < boff.(u + 1) then begin
          let k = cursor.(u) in
          cursor.(u) <- k + 1;
          let v = badj_v.(k) in
          if tree.(v) = -1 then begin
            parent.(v) <- u;
            parent_b.(v) <- badj_e.(k);
            enter v
          end
        end
        else begin
          tout.(u) <- !timer - 1;
          decr sp
        end
      done
    end
  done;
  let ntrees = !ntrees in
  let sub = Array.copy chosts in
  for i = nc - 1 downto 0 do
    let c = order.(i) in
    if parent.(c) >= 0 then sub.(parent.(c)) <- sub.(parent.(c)) + sub.(c)
  done;
  let tree_total = Array.make ntrees 0 in
  for c = 0 to nc - 1 do
    if parent.(c) = -1 then tree_total.(tree.(c)) <- sub.(c)
  done;
  let cand_b i = candidate borig.(i) in
  let cmark = Array.make nc false in
  let cedge = Array.make nc (-1) in
  (* Down pass: a candidate bridge whose below-side holds no hosts
     separates that whole subtree from every host. *)
  for i = 0 to nc - 1 do
    let c = order.(i) in
    if parent.(c) >= 0 then begin
      let p = parent.(c) in
      if cmark.(p) then begin
        cmark.(c) <- true;
        cedge.(c) <- cedge.(p)
      end
      else if cand_b parent_b.(c) && sub.(c) = 0 then begin
        cmark.(c) <- true;
        cedge.(c) <- borig.(parent_b.(c))
      end
    end
  done;
  (* Up pass: candidate bridges whose ABOVE-side holds no hosts. When
     the tree has hosts, every such subtree contains them all, so the
     subtrees are nested and the innermost (max tin) bridge's
     complement covers all the others'; on a hostless tree the down
     pass already marked the chosen subtree and this marks the rest. *)
  let best = Array.make ntrees (-1) in
  for c = 0 to nc - 1 do
    if
      parent.(c) >= 0
      && cand_b parent_b.(c)
      && tree_total.(tree.(c)) - sub.(c) = 0
    then begin
      let t = tree.(c) in
      if best.(t) = -1 || tin.(c) > tin.(best.(t)) then best.(t) <- c
    end
  done;
  for c = 0 to nc - 1 do
    let b = best.(tree.(c)) in
    if b >= 0 && (not (tin.(b) <= tin.(c) && tin.(c) <= tout.(b))) && not cmark.(c)
    then begin
      cmark.(c) <- true;
      cedge.(c) <- borig.(parent_b.(b))
    end
  done;
  (* PRUNE semantics: in a hostless connected component ANY candidate
     cable — bridge or not — separates the whole component from all
     hosts, so one candidate edge condemns the entire tree. *)
  if whole_components then begin
    let tree_cand = Array.make ntrees (-1) in
    for e = 0 to ne - 1 do
      if candidate e then begin
        let t = tree.(comp.(edge_u.(e))) in
        if tree_cand.(t) = -1 then tree_cand.(t) <- e
      end
    done;
    for c = 0 to nc - 1 do
      let t = tree.(c) in
      if tree_total.(t) = 0 && tree_cand.(t) >= 0 && not cmark.(c) then begin
        cmark.(c) <- true;
        cedge.(c) <- tree_cand.(t)
      end
    done
  end;
  let in_f = Array.make (max nodes 1) false in
  let sep_edge = Array.make (max nodes 1) (-1) in
  for v = 0 to nodes - 1 do
    in_f.(v) <- cmark.(comp.(v));
    sep_edge.(v) <- cedge.(comp.(v))
  done;
  (in_f, sep_edge)
