(** Graphviz DOT export of network maps, in the spirit of the paper's
    Figures 4 and 5 (hosts as plain nodes, switches as record nodes
    exposing their port numbers). *)

val to_string :
  ?graph_name:string ->
  ?heat:(Graph.wire_end * Graph.wire_end -> float) ->
  Graph.t ->
  string
(** Render the network as an undirected DOT graph. Wires carry
    tail/head port labels; switches are boxes labelled with their
    cosmetic name (or [sw<id>]). When [heat] is given, each wire (ends
    in {!Graph.wires}' canonical order) is colored on a cool-to-hot
    sweep and widened by its utilization in [0,1] — the post-mortem
    fabric heat map. *)

val to_file :
  ?graph_name:string ->
  ?heat:(Graph.wire_end * Graph.wire_end -> float) ->
  Graph.t ->
  string ->
  unit
(** [to_file g path] writes the DOT text to [path]. *)
