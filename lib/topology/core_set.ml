type edge = Graph.wire_end * Graph.wire_end

(* Adjacency with edge identities so parallel wires are distinguished:
   for each node, [(edge_id, other_end_node)]. *)
let edge_adjacency g =
  let edges = Array.of_list (Graph.wires g) in
  let n = Graph.num_nodes g in
  let adj = Array.make n [] in
  Array.iteri
    (fun id (((a, _), (b, _)) : edge) ->
      adj.(a) <- (id, b) :: adj.(a);
      adj.(b) <- (id, a) :: adj.(b))
    edges;
  (edges, adj)

(* Iterative Tarjan bridge finding on a multigraph: a tree edge (u,v)
   is a bridge iff low(v) > disc(u); the edge used to enter a node is
   skipped by id, so a parallel wire correctly acts as a back edge. *)
let bridges g =
  let edges, adj = edge_adjacency g in
  let n = Graph.num_nodes g in
  let disc = Array.make n (-1) in
  let low = Array.make n max_int in
  let timer = ref 0 in
  let is_bridge = Array.make (Array.length edges) false in
  for start = 0 to n - 1 do
    if disc.(start) = -1 then begin
      (* Each stack frame: (node, entering edge id, remaining adj). *)
      let stack = ref [ (start, -1, ref adj.(start)) ] in
      disc.(start) <- !timer;
      low.(start) <- !timer;
      incr timer;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (u, in_edge, rest) :: tail -> (
          match !rest with
          | [] ->
            stack := tail;
            (match tail with
            | (p, _, _) :: _ ->
              low.(p) <- min low.(p) low.(u);
              if in_edge >= 0 && low.(u) > disc.(p) then
                is_bridge.(in_edge) <- true
            | [] -> ())
          | (eid, v) :: more ->
            rest := more;
            if eid = in_edge then ()
            else if disc.(v) >= 0 then low.(u) <- min low.(u) disc.(v)
            else begin
              disc.(v) <- !timer;
              low.(v) <- !timer;
              incr timer;
              stack := (v, eid, ref adj.(v)) :: !stack
            end)
      done
    end
  done;
  let acc = ref [] in
  for id = Array.length edges - 1 downto 0 do
    if is_bridge.(id) then acc := edges.(id) :: !acc
  done;
  !acc

let switch_bridges g =
  List.filter
    (fun (((a, _), (b, _)) : edge) ->
      Graph.kind g a = Graph.Switch && Graph.kind g b = Graph.Switch)
    (bridges g)

(* BFS avoiding one forbidden wire, identified by its two ends. *)
let reachable_without g ~start ~forbidden:(((fa, fpa), (fb, fpb)) : edge) =
  let n = Graph.num_nodes g in
  let seen = Array.make n false in
  seen.(start) <- true;
  let q = Queue.create () in
  Queue.add start q;
  while not (Queue.is_empty q) do
    let u = Queue.take q in
    List.iter
      (fun (p, (v, pv)) ->
        let this_wire_forbidden =
          ((u, p) = (fa, fpa) && (v, pv) = (fb, fpb))
          || ((u, p) = (fb, fpb) && (v, pv) = (fa, fpa))
        in
        if (not this_wire_forbidden) && not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
      (Graph.wired_ports g u)
  done;
  seen

let separated_set g =
  let n = Graph.num_nodes g in
  let in_f = Array.make n false in
  let mark_side_if_hostless seen =
    let hostless = ref true in
    Array.iteri (fun v r -> if r && Graph.is_host g v then hostless := false) seen;
    if !hostless then
      Array.iteri (fun v r -> if r then in_f.(v) <- true) seen
  in
  List.iter
    (fun ((((a, _), (b, _)) : edge) as e) ->
      mark_side_if_hostless (reachable_without g ~start:a ~forbidden:e);
      mark_side_if_hostless (reachable_without g ~start:b ~forbidden:e))
    (switch_bridges g);
  in_f

let core_nodes g =
  let in_f = separated_set g in
  List.filter (fun v -> not in_f.(v)) (Graph.nodes g)

let core_is_empty_f g = Array.for_all not (separated_set g)

(* Flow network layout for Q(v):
   nodes 0..n-1 mirror the graph; n = sink-for-root, n+1 = sink-for-any-
   host, n+2 = supersink, n+3 = source. *)
let q_of g ~root v =
  if not (Graph.is_host g root) then
    invalid_arg "Core_set.q_of: root must be a host";
  let n = Graph.num_nodes g in
  let t_root = n and t_any = n + 1 and sink = n + 2 and source = n + 3 in
  let build ~force_root =
    let f = Flow.create (n + 4) in
    (* A wire's two directed channels are distinct resources: the
       confirming worm travels root->v then v->host and may cross a
       wire once in each direction (the root's own cable does exactly
       that in the first-edge/last-edge case), so each arc carries up
       to one unit per walk — capacity 2. The exception is arcs leaving
       [v]: the two walks must depart v through different wires, or the
       concatenated worm would U-turn there (a turn-0 hop the mapper
       never probes mid-route). *)
    List.iter
      (fun (((a, _), (b, _)) : edge) ->
        Flow.add_arc f ~src:a ~dst:b ~cap:(if a = v then 1 else 2) ~cost:1;
        Flow.add_arc f ~src:b ~dst:a ~cap:(if b = v then 1 else 2) ~cost:1)
      (Graph.wires g);
    if force_root then begin
      Flow.add_arc f ~src:root ~dst:t_root ~cap:1 ~cost:0;
      List.iter
        (fun h -> Flow.add_arc f ~src:h ~dst:t_any ~cap:1 ~cost:0)
        (Graph.hosts g);
      Flow.add_arc f ~src:t_root ~dst:sink ~cap:1 ~cost:0;
      Flow.add_arc f ~src:t_any ~dst:sink ~cap:1 ~cost:0
    end
    else
      List.iter
        (fun h -> Flow.add_arc f ~src:h ~dst:sink ~cap:1 ~cost:0)
        (Graph.hosts g);
    Flow.add_arc f ~src:source ~dst:v ~cap:2 ~cost:0;
    f
  in
  match Flow.min_cost_flow (build ~force_root:true) ~source ~sink ~amount:2 with
  | Some c -> Some c
  | None ->
    Flow.min_cost_flow (build ~force_root:false) ~source ~sink ~amount:2

let q_bound g ~root =
  let in_f = separated_set g in
  Graph.fold_nodes g ~init:0 ~f:(fun acc v ->
      if in_f.(v) then acc
      else match q_of g ~root v with Some q -> max acc q | None -> acc)

let search_depth g ~root = q_bound g ~root + Analysis.diameter g + 1
