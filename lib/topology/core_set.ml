type edge = Graph.wire_end * Graph.wire_end

(* Edge arrays in Graph.wires' canonical order, for Dense's linear-time
   machinery. Parallel wires get distinct ids, which is what keeps them
   off the bridge list. *)
let edge_arrays g =
  let edges = Array.of_list (Graph.wires g) in
  let ne = Array.length edges in
  let edge_u = Array.make ne 0 in
  let edge_v = Array.make ne 0 in
  Array.iteri
    (fun i (((a, _), (b, _)) : edge) ->
      edge_u.(i) <- a;
      edge_v.(i) <- b)
    edges;
  (edges, edge_u, edge_v)

let bridges g =
  let edges, edge_u, edge_v = edge_arrays g in
  let flags = Dense.bridge_flags ~nodes:(Graph.num_nodes g) ~edge_u ~edge_v in
  let acc = ref [] in
  for id = Array.length edges - 1 downto 0 do
    if flags.(id) then acc := edges.(id) :: !acc
  done;
  !acc

let switch_bridges g =
  List.filter
    (fun (((a, _), (b, _)) : edge) ->
      Graph.kind g a = Graph.Switch && Graph.kind g b = Graph.Switch)
    (bridges g)

(* Theorem 1's F, in one O(V+E) pass instead of a BFS per bridge:
   Dense.separation marks every node some switch-switch bridge
   separates, along with its whole side, from all hosts. *)
let separated_set g =
  let edges, edge_u, edge_v = edge_arrays g in
  let in_f, _ =
    Dense.separation ~nodes:(Graph.num_nodes g) ~edge_u ~edge_v
      ~is_host:(Graph.is_host g)
      ~candidate:(fun id ->
        let (a, _), (b, _) = edges.(id) in
        Graph.kind g a = Graph.Switch && Graph.kind g b = Graph.Switch)
      ~whole_components:false
  in
  in_f

let core_nodes g =
  let in_f = separated_set g in
  List.filter (fun v -> not in_f.(v)) (Graph.nodes g)

let core_is_empty_f g = Array.for_all not (separated_set g)

(* Flow network layout for Q(v):
   nodes 0..n-1 mirror the graph; n = sink-for-root, n+1 = sink-for-any-
   host, n+2 = supersink, n+3 = source. *)
let q_of g ~root v =
  if not (Graph.is_host g root) then
    invalid_arg "Core_set.q_of: root must be a host";
  let n = Graph.num_nodes g in
  let t_root = n and t_any = n + 1 and sink = n + 2 and source = n + 3 in
  let build ~force_root =
    let f = Flow.create (n + 4) in
    (* A wire's two directed channels are distinct resources: the
       confirming worm travels root->v then v->host and may cross a
       wire once in each direction (the root's own cable does exactly
       that in the first-edge/last-edge case), so each arc carries up
       to one unit per walk — capacity 2. The exception is arcs leaving
       [v]: the two walks must depart v through different wires, or the
       concatenated worm would U-turn there (a turn-0 hop the mapper
       never probes mid-route). *)
    List.iter
      (fun (((a, _), (b, _)) : edge) ->
        Flow.add_arc f ~src:a ~dst:b ~cap:(if a = v then 1 else 2) ~cost:1;
        Flow.add_arc f ~src:b ~dst:a ~cap:(if b = v then 1 else 2) ~cost:1)
      (Graph.wires g);
    if force_root then begin
      Flow.add_arc f ~src:root ~dst:t_root ~cap:1 ~cost:0;
      List.iter
        (fun h -> Flow.add_arc f ~src:h ~dst:t_any ~cap:1 ~cost:0)
        (Graph.hosts g);
      Flow.add_arc f ~src:t_root ~dst:sink ~cap:1 ~cost:0;
      Flow.add_arc f ~src:t_any ~dst:sink ~cap:1 ~cost:0
    end
    else
      List.iter
        (fun h -> Flow.add_arc f ~src:h ~dst:sink ~cap:1 ~cost:0)
        (Graph.hosts g);
    Flow.add_arc f ~src:source ~dst:v ~cap:2 ~cost:0;
    f
  in
  match Flow.min_cost_flow (build ~force_root:true) ~source ~sink ~amount:2 with
  | Some c -> Some c
  | None ->
    Flow.min_cost_flow (build ~force_root:false) ~source ~sink ~amount:2

let q_bound g ~root =
  let in_f = separated_set g in
  Graph.fold_nodes g ~init:0 ~f:(fun acc v ->
      if in_f.(v) then acc
      else match q_of g ~root v with Some q -> max acc q | None -> acc)

let search_depth g ~root = q_bound g ~root + Analysis.diameter g + 1
