(** Merging partial network maps into one globally consistent map.

    §6 proposes parallel mapping — every host maps its local region —
    and names the central question: how to merge such local views into
    a stable, globally consistent one. Partial maps share no switch
    identifiers (switches are anonymous) and each normalises switch
    ports with its own unknown per-switch offset, but they do share
    {e uniquely named hosts}. As with the replicate-merging proof, a
    shared host pins its switch, and port-offset alignment then
    propagates rigidly across shared wires: the same mechanism behind
    {!Iso} — run as a construction instead of a check.

    Maps to be merged must be mutually consistent views of one actual
    network; contradictions (shifted frames that disagree, two cables
    on one port, differently named hosts in one position) are reported
    as errors rather than papered over. A layer that wants to
    {e resolve} contradictions instead (San_shard's merger) uses
    {!union_c}, whose typed conflicts classify the contradiction and
    locate the offending evidence in the absorbed map. *)

(** How two views contradict each other. *)
type conflict_class =
  | No_anchor  (** the maps share no host name; nothing pins them *)
  | Unanchorable  (** a fragment of [b] has no path to a shared anchor *)
  | Frame_mismatch
      (** shifted port frames disagree: one node binds with two
          different offsets, or one peer appears at two slots *)
  | Port_clash  (** two different cables claim one switch port *)
  | Name_clash  (** kind or host-name disagreement at one position *)
  | Structural  (** radix mismatch, slot span over radix, … *)

type conflict = {
  cls : conflict_class;
  detail : string;  (** the human-readable message {!union} reports *)
  b_node : int option;
      (** the absorbed map's offending node, when locatable *)
  b_wire : ((int * int) * (int * int)) option;
      (** the absorbed map's offending wire [(v,p),(w,q)], when the
          contradiction surfaced while walking a specific wire *)
}

val class_name : conflict_class -> string
(** Stable lowercase tag, e.g. ["frame-mismatch"]. *)

val union_c : Graph.t -> Graph.t -> (Graph.t, conflict) result
(** [union_c a b] merges two partial maps anchored at their shared
    hosts, reporting failures as typed conflicts located in [b]'s
    coordinates where possible. *)

val union : Graph.t -> Graph.t -> (Graph.t, string) result
(** [union a b] merges two partial maps anchored at their shared hosts.
    Fails if they share no host (nothing pins the correspondence) or if
    they contradict each other. Nodes of [b] with no connection to a
    shared anchor are rejected as unanchorable. *)

val union_all : Graph.t list -> (Graph.t, string) result
(** Merge many partial maps in anchor-discovery order: pending maps
    are indexed by host name, and each successful merge enqueues
    exactly the maps sharing a host with the newly absorbed view.
    Fails when some maps can never be anchored. *)
