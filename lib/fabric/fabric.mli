(** Deterministic, seeded, parametric fabric generation at data-center
    scale.

    The paper maps a 100-host NOW; this subsystem manufactures the
    fabrics a production mapper would face — multi-level folded-Clos
    (fat-tree) networks in the style of Solnushkin's two-layer
    fat-tree design space: switch tiers, radix, hosts per edge switch,
    an oversubscription ratio fixing the edge uplink count, and
    real-world irregularity (trimmed uplinks, missing spines,
    heterogeneous radices). Every fabric is a pure function of
    [(spec, seed)], so any run is replayable from its header line. *)

open San_topology

type spec = {
  levels : int;  (** switch tiers, [>= 1]; tier 0 is the edge *)
  radix : int;  (** ports per (full-size) switch *)
  edge_switches : int;  (** tier-0 switch count *)
  hosts_per_edge : int;  (** hosts cabled to each edge switch *)
  oversub : float;
      (** edge oversubscription: hosts-per-edge divided by edge
          uplinks; [1.0] gives full bisection at the edge *)
  trim_uplinks : float;
      (** probability each uplink after a switch's first is absent
          (cable never installed / removed after a fault) *)
  missing_spines : float;  (** fraction of the top tier that is absent *)
  hetero_radix : float;
      (** probability a switch is an older half-uplink model *)
}

val validate : spec -> (unit, string) result

val build : seed:int -> spec -> Graph.t
(** Generate the fabric. Tiers are wired bottom-up with a diagonal
    stride — uplink [j] of switch [i] prefers upper switch
    [(i + j) mod n_above] — so uplinks spread across distinct parents,
    every switch keeps at least one uplink and no spine is isolated;
    irregularity knobs only remove redundancy. A final pass stitches
    any stray component (possible only for degenerate specs) back to
    the main fabric through spare switch ports.
    @raise Invalid_argument when {!validate} rejects the spec. *)

val suggested_depth : spec -> int
(** A fixed exploration depth for mapping this fabric when the oracle
    bound's flow computation is infeasible (10k hosts and up). It
    matches the measured oracle Q+D+1 of the preset ladder; on graphs
    small enough for the oracle, prefer the oracle — surplus depth
    multiplies replicates on multipath fabrics, it is never free. *)

val to_string : spec -> string
(** Canonical [key=value,...] form; {!of_string} inverts it. *)

val of_string : string -> (spec, string) result
(** Parse [key=value,...] with keys [levels], [radix], [edge],
    [hosts], [oversub], [trim], [missing], [hetero]; unspecified keys
    take {!default}'s values. *)

val default : spec
(** 2 tiers, radix 8, 25x4 hosts, no oversubscription, no faults. *)

(** {1 Presets}

    Named configurations: the scaling-ladder fat-trees plus the
    paper's own NOW and Figure 3 networks re-expressed as presets so
    one namespace covers every reproducible topology. *)

type preset = {
  p_name : string;
  p_doc : string;
  p_spec : spec option;  (** [None] for the hand-wired paper networks *)
  p_build : seed:int -> Graph.t;
  p_depth : int option;
      (** suggested fixed exploration depth; [None] = oracle is fine *)
}

val presets : preset list
val find_preset : string -> preset option

val parse : string -> (preset, string) result
(** CLI entry: a preset name, or a custom [key=value,...] spec. *)

val header_lines : preset -> seed:int -> Graph.t -> string list
(** Reproducibility header for emitted artifacts: spec, seed, size,
    suggested depth and the exact replay command. *)
