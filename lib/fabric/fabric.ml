open San_topology
module Prng = San_util.Prng

type spec = {
  levels : int;
  radix : int;
  edge_switches : int;
  hosts_per_edge : int;
  oversub : float;
  trim_uplinks : float;
  missing_spines : float;
  hetero_radix : float;
}

let default =
  {
    levels = 2;
    radix = 8;
    edge_switches = 25;
    hosts_per_edge = 4;
    oversub = 1.0;
    trim_uplinks = 0.0;
    missing_spines = 0.0;
    hetero_radix = 0.0;
  }

let validate s =
  let err fmt = Printf.ksprintf Result.error fmt in
  if s.levels < 1 then err "levels must be >= 1"
  else if s.levels > 6 then err "levels %d unreasonable (max 6)" s.levels
  else if s.radix < 2 then err "radix must be >= 2"
  else if s.edge_switches < 1 then err "edge switch count must be >= 1"
  else if s.hosts_per_edge < 1 then err "hosts per edge switch must be >= 1"
  else if s.levels >= 2 && s.hosts_per_edge >= s.radix then
    err "hosts per edge (%d) leaves no uplink port on a radix-%d switch"
      s.hosts_per_edge s.radix
  else if s.levels = 1 && s.hosts_per_edge > s.radix then
    err "hosts per edge (%d) exceeds radix %d" s.hosts_per_edge s.radix
  else if s.levels = 1 && s.edge_switches > 1 then
    err "a 1-level fabric with %d edge switches cannot be connected"
      s.edge_switches
  else if not (s.oversub > 0.0) then err "oversubscription must be positive"
  else if s.trim_uplinks < 0.0 || s.trim_uplinks >= 1.0 then
    err "trim_uplinks must lie in [0,1)"
  else if s.missing_spines < 0.0 || s.missing_spines >= 1.0 then
    err "missing_spines must lie in [0,1)"
  else if s.hetero_radix < 0.0 || s.hetero_radix >= 1.0 then
    err "hetero_radix must lie in [0,1)"
  else Ok ()

(* Per-tier downlink port budget of a tier-l switch (l >= 1); the top
   tier faces only downwards, middle tiers split their radix. *)
let downlinks s l = if l = s.levels - 1 then s.radix else s.radix / 2

(* Base uplink count of a tier-l switch (l <= levels-2). *)
let uplinks s l =
  if l = 0 then
    let u =
      int_of_float
        (Float.round (float_of_int s.hosts_per_edge /. s.oversub))
    in
    max 1 (min (s.radix - s.hosts_per_edge) u)
  else max 1 (s.radix - downlinks s l)

let suggested_depth s = (6 * s.levels) + 5

let build ~seed s =
  (match validate s with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fabric.build: " ^ e));
  let rng = Prng.create seed in
  let g = Graph.create ~radix:s.radix () in
  let free n =
    match Graph.free_ports g n with
    | p :: _ -> p
    | [] -> invalid_arg (Printf.sprintf "Fabric.build: node %d out of ports" n)
  in
  (* Tier 0: edge switches with their hosts. *)
  let host_n = ref 0 in
  let tier0 =
    Array.init s.edge_switches (fun i ->
        let sw = Graph.add_switch g ~name:(Printf.sprintf "e%d" i) () in
        for _ = 1 to s.hosts_per_edge do
          let h = Graph.add_host g ~name:(Printf.sprintf "h%d" !host_n) in
          incr host_n;
          Graph.connect g (h, 0) (sw, free sw)
        done;
        sw)
  in
  let tier = ref tier0 in
  for l = 0 to s.levels - 2 do
    let below = !tier in
    let nb = Array.length below in
    (* Decide each switch's actual uplink count first: the irregularity
       knobs act here, always preserving the first uplink. *)
    let want =
      Array.map
        (fun _ ->
          let base = uplinks s l in
          let base =
            if s.hetero_radix > 0.0 && Prng.float rng 1.0 < s.hetero_radix then
              max 1 (base / 2)
            else base
          in
          let kept = ref 1 in
          for _ = 2 to base do
            if not (s.trim_uplinks > 0.0 && Prng.float rng 1.0 < s.trim_uplinks)
            then incr kept
          done;
          !kept)
        below
    in
    let up_total = Array.fold_left ( + ) 0 want in
    let d_above = downlinks s (l + 1) in
    let n_above = (up_total + d_above - 1) / d_above in
    let n_above =
      if l + 1 = s.levels - 1 && s.missing_spines > 0.0 then
        let removed =
          int_of_float (Float.round (float_of_int n_above *. s.missing_spines))
        in
        n_above - removed
      else n_above
    in
    (* Never fewer switches than needed to give everyone below one
       uplink, never more than there are uplinks to land. *)
    let n_above = max n_above ((nb + d_above - 1) / d_above) in
    let n_above = max 1 (min n_above up_total) in
    let above =
      Array.init n_above (fun i ->
          let name =
            if l + 1 = s.levels - 1 then Printf.sprintf "s%d" i
            else Printf.sprintf "a%d-%d" (l + 1) i
          in
          Graph.add_switch g ~name ())
    in
    (* Stride wiring: uplink [j] of switch [i] prefers upper switch
       [(i + j * n_above / u) mod n_above], falling forward to the
       next one with capacity. The [j * n_above / u] term fans each
       switch's uplinks across the whole tier above (the folded-Clos
       pattern, keeping the diameter at two hops per tier), while the
       [+ i] diagonal staggers neighbours so no parent is overloaded —
       a plain round-robin cursor degenerates whenever
       [nb mod n_above = 0] (every switch dumps all its uplinks on one
       parent and the fabric disconnects). Rounds go mandatory-first:
       every [j = 0] uplink lands while capacity is plentiful. *)
    let cap = Array.make n_above d_above in
    let cap_left = ref (n_above * d_above) in
    let max_want = Array.fold_left max 0 want in
    for j = 0 to max_want - 1 do
      Array.iteri
        (fun i sw ->
          if j < want.(i) && !cap_left > 0 then begin
            let k = ref ((i + (j * n_above / max_want)) mod n_above) in
            while cap.(!k) = 0 do
              k := (!k + 1) mod n_above
            done;
            let up = above.(!k) in
            cap.(!k) <- cap.(!k) - 1;
            decr cap_left;
            Graph.connect g (sw, free sw) (up, free up)
          end)
        below
    done;
    tier := above
  done;
  (* Degenerate corners (a lone uplink fanned over many spines, say)
     can still leave stray components. No operator would deploy a
     split fabric, so stitch deterministically: the lowest spare-port
     switch of each stray component gets one cable back to the main
     component's lowest spare-port switch. Well-formed specs never
     enter this pass. *)
  let n = Graph.num_nodes g in
  let adj = Array.make (max 1 n) [] in
  List.iter
    (fun (((a, _), (b, _)) : Graph.wire_end * Graph.wire_end) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    (Graph.wires g);
  let comp = Array.make (max 1 n) (-1) in
  let ncomp = ref 0 in
  for v = 0 to n - 1 do
    if comp.(v) < 0 then begin
      let c = !ncomp in
      incr ncomp;
      comp.(v) <- c;
      let stack = ref [ v ] in
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
          stack := rest;
          List.iter
            (fun w ->
              if comp.(w) < 0 then begin
                comp.(w) <- c;
                stack := w :: !stack
              end)
            adj.(u)
      done
    end
  done;
  let spare_switch c =
    let best = ref (-1) in
    for v = n - 1 downto 0 do
      if comp.(v) = c && Graph.kind g v = Graph.Switch
         && Graph.free_ports g v <> []
      then best := v
    done;
    !best
  in
  for c = 1 to !ncomp - 1 do
    let a = spare_switch 0 and b = spare_switch c in
    if a < 0 || b < 0 then
      invalid_arg
        "Fabric.build: fabric disconnected and no spare switch port to \
         stitch it; loosen the spec";
    Graph.connect g (a, free a) (b, free b)
  done;
  g

(* -------------------------------------------------------------- *)
(* Spec strings.                                                  *)

let to_string s =
  let base =
    Printf.sprintf "levels=%d,radix=%d,edge=%d,hosts=%d" s.levels s.radix
      s.edge_switches s.hosts_per_edge
  in
  let opt name v =
    if v = 0.0 then "" else Printf.sprintf ",%s=%g" name v
  in
  base
  ^ (if s.oversub = 1.0 then "" else Printf.sprintf ",oversub=%g" s.oversub)
  ^ opt "trim" s.trim_uplinks
  ^ opt "missing" s.missing_spines
  ^ opt "hetero" s.hetero_radix

let of_string text =
  let ( let* ) = Result.bind in
  let parse_kv acc kv =
    let* acc = acc in
    match String.index_opt kv '=' with
    | None -> Error (Printf.sprintf "expected key=value, got %S" kv)
    | Some i -> (
      let key = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      let as_int () =
        match int_of_string_opt v with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "%s: not an integer: %S" key v)
      in
      let as_float () =
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "%s: not a number: %S" key v)
      in
      match key with
      | "levels" ->
        let* n = as_int () in
        Ok { acc with levels = n }
      | "radix" ->
        let* n = as_int () in
        Ok { acc with radix = n }
      | "edge" ->
        let* n = as_int () in
        Ok { acc with edge_switches = n }
      | "hosts" ->
        let* n = as_int () in
        Ok { acc with hosts_per_edge = n }
      | "oversub" ->
        let* f = as_float () in
        Ok { acc with oversub = f }
      | "trim" ->
        let* f = as_float () in
        Ok { acc with trim_uplinks = f }
      | "missing" ->
        let* f = as_float () in
        Ok { acc with missing_spines = f }
      | "hetero" ->
        let* f = as_float () in
        Ok { acc with hetero_radix = f }
      | _ -> Error (Printf.sprintf "unknown fabric key %S" key))
  in
  let* s =
    List.fold_left parse_kv (Ok default) (String.split_on_char ',' text)
  in
  let* () = validate s in
  Ok s

(* -------------------------------------------------------------- *)
(* Presets.                                                       *)

type preset = {
  p_name : string;
  p_doc : string;
  p_spec : spec option;
  p_build : seed:int -> Graph.t;
  p_depth : int option;
}

let of_spec name doc s =
  {
    p_name = name;
    p_doc = doc;
    p_spec = Some s;
    p_build = (fun ~seed -> build ~seed s);
    p_depth = Some (suggested_depth s);
  }

let of_paper name doc f =
  {
    p_name = name;
    p_doc = doc;
    p_spec = None;
    p_build = (fun ~seed:_ -> fst (f ()));
    p_depth = None;
  }

let ft_100 =
  { default with levels = 2; radix = 8; edge_switches = 25; hosts_per_edge = 4 }

let ft_1k =
  {
    default with
    levels = 3;
    radix = 16;
    edge_switches = 125;
    hosts_per_edge = 8;
  }

let ft_10k =
  {
    default with
    levels = 3;
    radix = 32;
    edge_switches = 625;
    hosts_per_edge = 16;
  }

let ft_100k =
  {
    default with
    levels = 4;
    radix = 32;
    edge_switches = 6250;
    hosts_per_edge = 16;
  }

let presets =
  [
    of_spec "ft-100" "100 hosts: 2-level fat-tree, radix 8 (NOW scale)" ft_100;
    of_spec "ft-1k" "1,000 hosts: 3-level fat-tree, radix 16" ft_1k;
    of_spec "ft-10k" "10,000 hosts: 3-level fat-tree, radix 32" ft_10k;
    of_spec "ft-100k" "100,000 hosts: 4-level fat-tree, radix 32 (stretch)"
      ft_100k;
    of_spec "ft-1k-degraded"
      "ft-1k with trimmed uplinks, missing spines and old half-radix switches"
      { ft_1k with trim_uplinks = 0.08; missing_spines = 0.15; hetero_radix = 0.1 };
    of_paper "now-c" "the paper's subcluster C NOW (Figure 3, row C)"
      Generators.now_c;
    of_paper "now-ca" "subclusters C+A bridged as deployed" Generators.now_ca;
    of_paper "now-cab" "the full 100-host C+A+B NOW (Figure 6)"
      Generators.now_cab;
  ]

let find_preset name =
  List.find_opt (fun p -> p.p_name = name) presets

let parse text =
  match find_preset text with
  | Some p -> Ok p
  | None ->
    if String.contains text '=' then
      match of_string text with
      | Ok s ->
        Ok
          {
            p_name = "custom";
            p_doc = "custom parametric fabric";
            p_spec = Some s;
            p_build = (fun ~seed -> build ~seed s);
            p_depth = Some (suggested_depth s);
          }
      | Error e -> Error (Printf.sprintf "bad fabric spec %S: %s" text e)
    else
      Error
        (Printf.sprintf "unknown fabric preset %S (presets: %s, or key=value,...)"
           text
           (String.concat ", " (List.map (fun p -> p.p_name) presets)))

let header_lines p ~seed g =
  let spec_text =
    match p.p_spec with Some s -> to_string s | None -> p.p_name
  in
  [
    Printf.sprintf "san_fabric: %s (%s)" p.p_name p.p_doc;
    Printf.sprintf "spec: fabric:%s" spec_text;
    Printf.sprintf "seed: %d" seed;
    Printf.sprintf "size: %d hosts, %d switches, %d links" (Graph.num_hosts g)
      (Graph.num_switches g) (Graph.num_wires g);
    (match p.p_depth with
    | Some d -> Printf.sprintf "suggested exploration depth: %d" d
    | None -> "suggested exploration depth: oracle (small network)");
    Printf.sprintf "replay: san_map gen -t fabric:%s --seed %d" spec_text seed;
  ]
