(** The epoch-driven control-plane daemon.

    The paper's deployed system "remaps periodically"; this module is
    that loop grown into a long-running service with an explicit state
    machine:

    {v Stable -> Verifying -> (Stable | Remapping -> Distributing
                                        -> (Stable | Degraded)) v}

    Each epoch the daemon (1) lets the scripted {!Schedule} mutate the
    {!World} behind its back, (2) re-elects a leader if the current one
    died (highest-address responding host, the paper's §4.2 rule),
    (3) runs the cheap incremental verification sweep against its last
    map, (4) on any discrepancy falls back to a full Berkeley remap,
    (5) recomputes UP*/DOWN* routes, and (6) installs them by {e delta}
    distribution — only changed slices travel ({!Delta}). A failed
    installation (unreachable hosts, worms reset by contention) parks
    the daemon in [Degraded] with doubling epoch backoff, bounded by
    the config; the missing hosts are re-targeted when it wakes.

    Every transition emits a {!San_obs.Trace.Daemon_transition} event,
    and convergence (fault detected to routes fully re-installed,
    counted in simulated work time) lands in the
    ["daemon.converge_ns"] histogram of the global registry.

    Every non-cold-start epoch additionally feeds one
    {!San_telemetry.Health.sample} (coverage, convergence,
    distribution bytes, missed slices, drop rate) into a sliding
    health window whose rules raise and clear typed alerts —
    {!San_obs.Trace.Alert_raised} / [Alert_cleared] trace events plus
    the [health] blocks of the reports below. *)

open San_topology

type phase = Stable | Verifying | Remapping | Distributing | Degraded

val phase_to_string : phase -> string

type verdict =
  | Cold_start  (** no previous map: full remap *)
  | Verified  (** incremental sweep found the map current *)
  | Changed of int  (** discrepancies found; a full remap ran *)
  | Backing_off  (** degraded, waiting out the backoff window *)
  | Halted  (** no responding host to lead this epoch *)

val verdict_to_string : verdict -> string

type incident = {
  detected_epoch : int;
  resolved_epoch : int;
  converge_ns : float;
      (** simulated work from the verification that caught the fault
          through the last route slice installed *)
}

type epoch_report = {
  epoch : int;
  events : string list;  (** faults injected, repairs, elections *)
  leader : string;
  elected : bool;  (** a (re-)election happened this epoch *)
  verdict : verdict;
  phases : phase list;  (** phases entered this epoch, in order *)
  probes : int;  (** verification plus any remap probes *)
  detect_ns : float;
      (** the leader's liveness sweep — the "detect" slice of the
          phase timeline *)
  verify_ns : float;
  remap_ns : float;
  dist : Delta.report option;  (** when a distribution ran *)
  load : San_slo.Load.report option;
      (** the background-load window this epoch's probes contended
          with, when the config drives load and a table is installed *)
  hosts_total : int;  (** hosts in the daemon's current map *)
  hosts_covered : int;  (** hosts whose installed slice is current *)
  epoch_ns : float;  (** simulated work this epoch *)
  health : San_telemetry.Health.sample option;
      (** [None] only for cold-start epochs, which are not anomalies *)
  alerts_raised : string list;  (** health rules that raised this epoch *)
  alerts_cleared : string list;
  slo_raised : string list;  (** SLO burn alerts raised this epoch *)
  slo_cleared : string list;
}

type outcome = {
  reports : epoch_report list;
  incidents : incident list;  (** resolved fault episodes, oldest first *)
  final_phase : phase;
  map : Graph.t option;  (** the daemon's map at exit *)
  remaps : int;
  elections : int;
  total_probes : int;
  delta_bytes : int;  (** bytes actually shipped over the run *)
  full_bytes : int;
      (** what shipping full slices on every distribution would have
          cost — the delta savings baseline *)
  health : San_telemetry.Health.report;
      (** the health window at exit: per-epoch samples, active alerts
          and the full alert history ({!San_telemetry.Health}) *)
  slo : San_slo.Slo.status list;
      (** burn-rate status of every configured objective at exit *)
}

type config = {
  dist_retries : int;  (** per-epoch re-send passes for missed slices *)
  backoff_start : int;  (** epochs to sleep after a failed epoch *)
  backoff_max : int;  (** cap for the doubling backoff *)
  params : San_simnet.Params.t;
  policy : San_mapper.Berkeley.policy;
  seed : int;  (** drives the schedule's random choices *)
  shards : int;
      (** when > 1, full remaps (cold start and stale-map fallback) run
          as this many concurrent [San_shard] mappers over a region
          plan seeded from the config, the remap wall being the slowest
          shard plus the conflict-resolving merge *)
  flight_dir : string option;
      (** when set, a bounded flight recording ([flight-<epoch>.jsonl]:
          the trace ring plus the provenance ledger tail) is written to
          this directory on every transition into [Degraded], at end of
          run ([flight-final.jsonl]), and on fatal errors via the
          {!San_why.Flight} hook ([flight-fatal.jsonl]) *)
  load : San_slo.Load.spec option;
      (** when set, every steady-state epoch first drives one
          background-load window over the installed route table
          ({!San_slo.Load.drive}) and the measured per-crossing loss
          feeds the epoch's probe {!San_simnet.Network} — verification
          and remapping genuinely contend with the traffic *)
  slos : San_slo.Slo.objective list;
      (** convergence SLOs tracked over steady-state epochs; burn-rate
          alerts ride the same trace-event stream as health alerts *)
}

val default_config : config
(** 2 retries, backoff 1 doubling to 8 epochs, default simulation
    parameters, the faithful probe policy, seed 1, solo remaps
    ([shards = 1]), no flight dir, no background load, no SLOs. *)

val run :
  ?config:config ->
  ?schedule:Schedule.t ->
  ?on_epoch:(epoch_report -> unit) ->
  epochs:int ->
  Graph.t ->
  (outcome, string) result
(** Drive the daemon for [epochs] epochs over simulated time, starting
    from this actual network (copied; the schedule mutates only the
    daemon's world). [on_epoch] streams each report as it completes.
    Errors only when the starting network has no hosts. *)
