(** The evolving actual network under the daemon's feet.

    The control-plane daemon runs against a fabric that changes while
    it is not looking: cables are cut and re-plugged, switches die,
    hosts stop (and restart) their mapper daemons. A world holds that
    mutable ground truth — the current wiring plus the set of silent
    hosts — together with the pending "repairs" a {!Schedule} flap has
    promised for a later epoch. The daemon never reads a world
    directly except to build the epoch's {!San_simnet.Network}; all
    knowledge it acts on still arrives through probes. *)

open San_topology

type t

val create : Graph.t -> t
(** A world starting from this wiring with every host responding. The
    graph is copied; the caller's stays untouched. *)

val graph : t -> Graph.t
(** The current actual wiring (shared, do not mutate). *)

val set_graph : t -> Graph.t -> unit
(** Replace the wiring (fault helpers return fresh copies). *)

val responding : t -> Graph.node -> bool
(** Predicate for {!San_simnet.Network.create}: hosts whose mapper
    daemon currently answers probes. *)

val is_down : t -> string -> bool

val kill_host : t -> string -> unit
(** Silence a host's daemon. Unknown names are a no-op: the wiring
    does not change, so probes to it simply time out. *)

val revive_host : t -> string -> unit

val responding_hosts : t -> Graph.node list
(** Responding hosts of the current graph, ascending node id. *)

val defer : t -> at_epoch:int -> label:string -> (Graph.t -> Graph.t) -> unit
(** Register a repair to run at the start of the given epoch —
    {!Faults.flap_link} restores arrive this way. *)

val due_repairs : t -> epoch:int -> string list
(** Apply every repair scheduled for this epoch to the current graph
    and return their labels. A repair that no longer applies (its
    ports were re-wired by a later fault) is dropped with a note. *)
