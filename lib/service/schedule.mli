(** Scripted fault and repair schedules for daemon experiments.

    A schedule maps epoch numbers to actions on the {!World} — the
    dynamic-reconfiguration script §6 leaves open, made executable:
    cut cables, flap a link (cut now, auto-repair some epochs later),
    isolate a switch, plug in a new cable, kill or revive a host's
    mapper daemon, kill whoever is currently leader. Randomized
    choices (which cable, which switch) draw from the caller's PRNG so
    a scenario is reproducible from one seed. *)

type action =
  | Cut_links of int  (** cut this many random switch-to-switch wires *)
  | Flap_link of int  (** cut a random wire; repair it this many epochs later *)
  | Isolate_switch  (** unplug every wire of a random wired switch *)
  | Add_link  (** plug a wire between two random free switch ports *)
  | Kill_host of string
  | Kill_leader  (** silence whichever host currently leads *)
  | Revive_host of string
  | Storm of { links : int; hosts : int }
      (** a correlated failure burst: cut [links] wires and kill
          [hosts] random responding daemons in the same epoch *)
  | Upgrade_switch of int
      (** rolling maintenance: unplug a random wired switch and re-plug
          the same wires this many epochs later *)
  | Partition of int
      (** split the switches into two halves, cut every crossing wire,
          heal this many epochs later *)
  | Flap_storm of { count : int; down : int }
      (** [count] independent flaps at once, each down [down] epochs *)

type t

val empty : t
val of_list : (int * action) list -> t
val actions_at : t -> int -> action list

val last_epoch : t -> int
(** Largest scheduled epoch, -1 when empty (flap repairs may land
    later still). *)

val parse : string -> (t, string) result
(** Comma-separated [EPOCH:ACTION] entries, e.g.
    ["2:cut,4:flap=3,6:isolate,8:kill-leader,9:revive=C-h4"].
    Actions: [cut] / [cut=N], [flap] / [flap=DOWN_EPOCHS] (default 2),
    [isolate], [add], [kill=HOST], [kill-leader], [revive=HOST],
    [storm] / [storm=LINKSxHOSTS] (default 2x1), [upgrade=EPOCHS]
    (default 2), [partition=EPOCHS] (default 3), and
    [flapstorm=COUNTxEPOCHS] (default 3x2) — compound arguments are
    ['x']-separated because the comma separates entries. *)

val to_string : t -> string
(** The [parse] syntax back; [parse (to_string t)] re-reads [t], which
    is how fuzz counterexamples print replayable schedules. *)

val action_to_string : action -> string

val scenario : ?epochs:int -> string -> ((int * action) list, string) result
(** Named adversarial presets scaled to the run length (default 12
    epochs): ["storm"] (correlated failure bursts), ["rolling"] (a
    switch pulled every other epoch), ["partition"] (split, kill the
    leader while split, heal), ["flaps"] (overlapping flap storms). *)

val scenario_names : string list

val gen : rng:San_util.Prng.t -> epochs:int -> (int * action) list
(** A random schedule for the fuzzer — every action except named
    kills, ~30% of epochs eventful. Deterministic in [rng]. *)

val pp_action : Format.formatter -> action -> unit

val apply :
  t -> World.t -> rng:San_util.Prng.t -> leader:string -> epoch:int ->
  string list
(** Run this epoch's due repairs, then its scheduled actions, against
    the world. Returns one description per thing that happened (the
    daemon logs them; it must still {e discover} them by probing). An
    action that cannot apply — no switch wire left to cut, no free
    ports — becomes a note instead of an error. *)
