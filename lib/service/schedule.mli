(** Scripted fault and repair schedules for daemon experiments.

    A schedule maps epoch numbers to actions on the {!World} — the
    dynamic-reconfiguration script §6 leaves open, made executable:
    cut cables, flap a link (cut now, auto-repair some epochs later),
    isolate a switch, plug in a new cable, kill or revive a host's
    mapper daemon, kill whoever is currently leader. Randomized
    choices (which cable, which switch) draw from the caller's PRNG so
    a scenario is reproducible from one seed. *)

type action =
  | Cut_links of int  (** cut this many random switch-to-switch wires *)
  | Flap_link of int  (** cut a random wire; repair it this many epochs later *)
  | Isolate_switch  (** unplug every wire of a random wired switch *)
  | Add_link  (** plug a wire between two random free switch ports *)
  | Kill_host of string
  | Kill_leader  (** silence whichever host currently leads *)
  | Revive_host of string

type t

val empty : t
val of_list : (int * action) list -> t
val actions_at : t -> int -> action list

val last_epoch : t -> int
(** Largest scheduled epoch, -1 when empty (flap repairs may land
    later still). *)

val parse : string -> (t, string) result
(** Comma-separated [EPOCH:ACTION] entries, e.g.
    ["2:cut,4:flap=3,6:isolate,8:kill-leader,9:revive=C-h4"].
    Actions: [cut] / [cut=N], [flap] / [flap=DOWN_EPOCHS] (default 2),
    [isolate], [add], [kill=HOST], [kill-leader], [revive=HOST]. *)

val pp_action : Format.formatter -> action -> unit

val apply :
  t -> World.t -> rng:San_util.Prng.t -> leader:string -> epoch:int ->
  string list
(** Run this epoch's due repairs, then its scheduled actions, against
    the world. Returns one description per thing that happened (the
    daemon logs them; it must still {e discover} them by probing). An
    action that cannot apply — no switch wire left to cut, no free
    ports — becomes a note instead of an error. *)
