open San_topology

type t = {
  mutable graph : Graph.t;
  down : (string, unit) Hashtbl.t;
  mutable repairs : (int * string * (Graph.t -> Graph.t)) list;
}

let create g = { graph = Graph.copy g; down = Hashtbl.create 8; repairs = [] }

let graph t = t.graph
let set_graph t g = t.graph <- g

let is_down t name = Hashtbl.mem t.down name

let responding t node =
  (not (Graph.is_host t.graph node)) || not (is_down t (Graph.name t.graph node))

let kill_host t name = Hashtbl.replace t.down name ()
let revive_host t name = Hashtbl.remove t.down name

let responding_hosts t =
  List.filter (fun h -> responding t h) (Graph.hosts t.graph)

let defer t ~at_epoch ~label f = t.repairs <- t.repairs @ [ (at_epoch, label, f) ]

let due_repairs t ~epoch =
  let due, later = List.partition (fun (e, _, _) -> e <= epoch) t.repairs in
  t.repairs <- later;
  List.map
    (fun (_, label, f) ->
      match f t.graph with
      | g ->
        t.graph <- g;
        label
      | exception Invalid_argument _ -> label ^ " (ports re-wired; skipped)")
    due
