(** Delta route distribution: ship only what changed.

    A full redistribution (§5.5, {!San_routing.Distribute}) re-sends
    every host its whole route-table slice after every remap. But a
    localized fault leaves most recomputed routes byte-identical, so
    the leader can diff the fresh table against what it knows each
    host's interface currently holds and ship only the changed
    entries — plus a tombstone per vanished destination — falling back
    to a full slice for hosts it has never updated (or whose delta
    would not be cheaper). The installed-tables ledger is the leader's
    {e belief}; it only advances for slices whose worm was actually
    delivered, so a missed host is automatically re-targeted next
    time. *)

open San_topology

type tables
(** What the leader believes each host's interface holds: per host
    name, a destination-name-keyed map of turn routes. *)

val empty : tables
(** A cold ledger: every host's first slice will be shipped full. *)

val of_routes : San_routing.Routes.t -> tables
(** The ledger after a (hypothetical) complete installation of this
    table — hosts and destinations keyed by name. *)

val hosts : tables -> string list
val entries_for : tables -> string -> (string * San_simnet.Route.t) list
(** Sorted by destination name; [] for unknown hosts. *)

(** {1 Planning} *)

type kind =
  | Unchanged  (** slice identical to the installed one: nothing to ship *)
  | Delta of { changed : int; removed : int }
      (** re-send [changed] entries, tombstone [removed] destinations *)
  | Full  (** never installed, or the delta would not be cheaper *)

type slice = {
  owner : string;
  kind : kind;
  bytes : int;  (** shipped under delta distribution; 0 when [Unchanged] *)
  full_bytes : int;  (** the full slice's cost, for comparison *)
  packed_bytes : int;
      (** the full slice under {!San_routing.Serve.Pool} shared-suffix
          compression (routes interned reversed, so one source's common
          up-phase prefixes collapse) — what a pool-aware interface
          would be shipped instead of [full_bytes]. Never larger than
          [full_bytes]: a header bit selects the naive encoding when
          the slice is too small for pooling to pay. *)
}

type plan = {
  slices : slice list;  (** one per host of the table, name-sorted *)
  delta_bytes : int;
  full_bytes : int;
  packed_full_bytes : int;
      (** a complete pooled redistribution, for the compression ratio *)
  unchanged_hosts : int;
}

val plan : installed:tables -> San_routing.Routes.t -> plan

(** {1 Distribution} *)

type report = {
  plan : plan;
  dist : San_routing.Distribute.report;  (** worm-level delivery outcome *)
  installed : tables;  (** the ledger advanced by the delivered slices *)
  sent_bytes : int;  (** bytes actually put on the wire (leader excluded) *)
  full_sent_bytes : int;
      (** what a full redistribution would have put on the wire *)
}

val distribute :
  ?params:San_simnet.Params.t ->
  ?retries:int ->
  ?traffic:float * San_util.Prng.t ->
  installed:tables ->
  San_routing.Routes.t ->
  actual:Graph.t ->
  leader:Graph.node ->
  (report, string) result
(** Plan against [installed], ship every non-[Unchanged] slice from
    [leader] over the actual network ({!San_routing.Distribute}
    retries and background [traffic] model included), and advance the
    ledger for delivered hosts (and the leader itself, which installs
    locally). Fails when the leader is not in the table's graph. *)
