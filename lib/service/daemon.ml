open San_topology
open San_simnet
open San_mapper
module D = San_routing.Distribute

type phase = Stable | Verifying | Remapping | Distributing | Degraded

let phase_to_string = function
  | Stable -> "stable"
  | Verifying -> "verifying"
  | Remapping -> "remapping"
  | Distributing -> "distributing"
  | Degraded -> "degraded"

type verdict = Cold_start | Verified | Changed of int | Backing_off | Halted

let verdict_to_string = function
  | Cold_start -> "cold-start"
  | Verified -> "verified"
  | Changed d -> Printf.sprintf "changed(%d)" d
  | Backing_off -> "backing-off"
  | Halted -> "halted"

type incident = {
  detected_epoch : int;
  resolved_epoch : int;
  converge_ns : float;
}

type epoch_report = {
  epoch : int;
  events : string list;
  leader : string;
  elected : bool;
  verdict : verdict;
  phases : phase list;
  probes : int;
  detect_ns : float;
  verify_ns : float;
  remap_ns : float;
  dist : Delta.report option;
  load : San_slo.Load.report option;
  hosts_total : int;
  hosts_covered : int;
  epoch_ns : float;
  health : San_telemetry.Health.sample option;
  alerts_raised : string list;
  alerts_cleared : string list;
  slo_raised : string list;
  slo_cleared : string list;
}

type outcome = {
  reports : epoch_report list;
  incidents : incident list;
  final_phase : phase;
  map : Graph.t option;
  remaps : int;
  elections : int;
  total_probes : int;
  delta_bytes : int;
  full_bytes : int;
  health : San_telemetry.Health.report;
  slo : San_slo.Slo.status list;
}

type config = {
  dist_retries : int;
  backoff_start : int;
  backoff_max : int;
  params : Params.t;
  policy : Berkeley.policy;
  seed : int;
  shards : int;
  flight_dir : string option;
  load : San_slo.Load.spec option;
  slos : San_slo.Slo.objective list;
}

let default_config =
  {
    dist_retries = 2;
    backoff_start = 1;
    backoff_max = 8;
    params = Params.default;
    policy = Berkeley.faithful;
    seed = 1;
    shards = 1;
    flight_dir = None;
    load = None;
    slos = [];
  }

(* The daemon's whole memory between epochs. *)
type state = {
  mutable map : Graph.t option;
  mutable table : San_routing.Routes.t option;  (** routes of [map], cached *)
  mutable installed : Delta.tables;
  mutable missing : string list;  (** hosts whose installed slice is stale *)
  mutable phase : phase;
  mutable leader : string option;
  mutable backoff : int;  (** epochs the next failure will sleep *)
  mutable sleep : int;  (** backoff epochs still to sit out *)
  mutable incident_start : int option;
  mutable incident_acc : float;
}

let run ?(config = default_config) ?(schedule = Schedule.empty)
    ?(on_epoch = fun _ -> ()) ~epochs g0 =
  if Graph.hosts g0 = [] then Error "network has no hosts"
  else begin
    let world = World.create g0 in
    let rng = San_util.Prng.create config.seed in
    (* Separate streams so turning load on cannot perturb which wires
       the schedule cuts (and vice versa). *)
    let load_rng = San_util.Prng.create (config.seed lxor 0x10AD) in
    let traffic_rng = San_util.Prng.create (config.seed lxor 0x7AFF1C) in
    let slo = San_slo.Slo.create config.slos in
    (* Cumulative simulated clock for the phase timeline: epochs abut,
       each epoch's detect/verify/remap/distribute spans laid end to
       end. *)
    let sim_clock = ref 0.0 in
    let st =
      {
        map = None;
        table = None;
        installed = Delta.empty;
        missing = [];
        phase = Stable;
        leader = None;
        backoff = config.backoff_start;
        sleep = 0;
        incident_start = None;
        incident_acc = 0.0;
      }
    in
    let health = San_telemetry.Health.create () in
    let reports = ref [] in
    let incidents = ref [] in
    let remaps = ref 0 in
    let elections = ref 0 in
    let total_probes = ref 0 in
    let delta_bytes = ref 0 in
    let full_bytes = ref 0 in
    (* Flight recorder plumbing: a bounded recording on every
       transition into Degraded, one more at end of run, and the
       process-wide fatal hook pointed at the same directory. *)
    let flight ~name ~note ?epoch () =
      match config.flight_dir with
      | None -> ()
      | Some dir ->
        (try
           if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
         with Unix.Unix_error _ | Sys_error _ -> ());
        ignore
          (San_why.Flight.write ~path:(Filename.concat dir name) ~note ?epoch
             ())
    in
    if config.flight_dir <> None then
      San_why.Flight.install_fatal (fun ~note ->
          flight ~name:"flight-fatal.jsonl" ~note ());
    for e = 0 to epochs - 1 do
      let phases = ref [] in
      let goto p =
        if st.phase <> p then begin
          San_obs.Obs.emit
            (San_obs.Trace.Daemon_transition
               {
                 epoch = e;
                 from_ = phase_to_string st.phase;
                 to_ = phase_to_string p;
               });
          if p = Degraded then
            flight
              ~name:(Printf.sprintf "flight-%d.jsonl" e)
              ~note:
                (Printf.sprintf "entered degraded from %s"
                   (phase_to_string st.phase))
              ~epoch:e ();
          st.phase <- p
        end;
        phases := p :: !phases
      in
      (* 1. The world moves, whether the daemon is looking or not. *)
      let events =
        ref
          (Schedule.apply schedule world ~rng
             ~leader:(Option.value ~default:"" st.leader)
             ~epoch:e)
      in
      (* 2. Leadership: sticky while the leader's daemon answers; on
         death the highest-address responding host takes over (§4.2's
         election rule, modelled as its outcome). *)
      let elected = ref false in
      (match st.leader with
      | Some l when not (World.is_down world l) -> ()
      | previous -> (
        match List.rev (World.responding_hosts world) with
        | [] -> st.leader <- None
        | best :: _ ->
          let name = Graph.name (World.graph world) best in
          st.leader <- Some name;
          if previous <> Some name then begin
            elected := true;
            incr elections;
            San_obs.Obs.count "daemon.elections";
            events := !events @ [ Printf.sprintf "%s elected leader" name ]
          end));
      let verdict = ref Verified in
      let probes = ref 0 in
      let detect_ns = ref 0.0 in
      let verify_ns = ref 0.0 in
      let remap_ns = ref 0.0 in
      let dist_report = ref None in
      let load_report = ref None in
      (match st.leader with
      | None ->
        goto Degraded;
        verdict := Halted
      | Some _ when st.sleep > 0 ->
        st.sleep <- st.sleep - 1;
        goto Degraded;
        verdict := Backing_off
      | Some leader_name -> (
        let g = World.graph world in
        (* Detection: the leader's liveness sweep — one ping per
           responding daemon before it trusts this epoch's verdict.
           This is the "detect" slice of the phase timeline. *)
        let responding_n = List.length (World.responding_hosts world) in
        detect_ns :=
          float_of_int responding_n
          *. (config.params.Params.send_overhead_ns
             +. config.params.Params.reply_overhead_ns
             +. config.params.Params.recv_overhead_ns);
        (* Background load rides the *installed* table (nothing rides a
           network with no routes yet) and the measured attrition feeds
           the probe network, so verification and remapping genuinely
           contend with the traffic. *)
        (match (config.load, st.table) with
        | Some spec, Some table ->
          load_report :=
            Some
              (San_slo.Load.drive ~rng:load_rng ~params:config.params spec
                 ~table g)
        | _ -> ());
        let traffic =
          Option.bind !load_report (fun r ->
              San_slo.Load.traffic_of_report r traffic_rng)
        in
        let net =
          Network.create ~params:config.params
            ~responding:(World.responding world) ?traffic g
        in
        let mapper = Option.get (Graph.host_by_name g leader_name) in
        (* Full remaps run sharded when configured: N concurrent
           mappers over the San_shard region plan, the wall being the
           slowest shard plus the merge. *)
        let sharded_remap ~discrepancies:_ =
          match
            San_shard.Runner.run ~seed:config.seed ~root:mapper
              ~responding:(World.responding world) ~policy:config.policy
              ~params:config.params ?traffic ~epoch:(e + 1) g
              ~shards:config.shards
          with
          | Error err -> (Error err, 0, 0.0)
          | Ok r ->
            events :=
              !events
              @ [
                  Printf.sprintf "sharded remap: %d shards, coordinator %s"
                    r.San_shard.Runner.plan.San_shard.Region.shards
                    r.San_shard.Runner.coordinator;
                ];
            ( r.San_shard.Runner.map,
              r.San_shard.Runner.total_probes,
              r.San_shard.Runner.wall_ns )
        in
        let remap =
          if config.shards > 1 then Some sharded_remap else None
        in
        (* 3-4. Cheap verification sweep, full remap only on change. *)
        let map_result =
          match st.map with
          | None ->
            goto Remapping;
            verdict := Cold_start;
            incr remaps;
            San_obs.Obs.count "daemon.remaps";
            let map, p, ns =
              match remap with
              | Some f -> f ~discrepancies:0
              | None ->
                let r = Berkeley.run ~policy:config.policy net ~mapper in
                (r.Berkeley.map, Berkeley.total_probes r, r.Berkeley.elapsed_ns)
            in
            probes := p;
            remap_ns := ns;
            map
          | Some previous -> (
            goto Verifying;
            let r =
              Incremental.run ~policy:config.policy ?remap net ~mapper
                ~previous
            in
            verify_ns := r.Incremental.verify_elapsed_ns;
            match r.Incremental.verdict with
            | Incremental.Unchanged ->
              verdict := Verified;
              probes := r.Incremental.verify_probes;
              r.Incremental.map
            | Incremental.Changed d ->
              goto Remapping;
              verdict := Changed d;
              incr remaps;
              San_obs.Obs.count "daemon.remaps";
              probes := r.Incremental.verify_probes + r.Incremental.remap_probes;
              remap_ns :=
                r.Incremental.total_elapsed_ns
                -. r.Incremental.verify_elapsed_ns;
              if st.incident_start = None then begin
                st.incident_start <- Some e;
                st.incident_acc <- 0.0
              end;
              r.Incremental.map)
        in
        match map_result with
        | Error err ->
          (* Keep the stale map; retry after the backoff. *)
          events := !events @ [ "remap failed: " ^ err ];
          goto Degraded;
          st.sleep <- st.backoff;
          st.backoff <- min (st.backoff * 2) config.backoff_max
        | Ok m ->
          let map_changed =
            match !verdict with
            | Cold_start | Changed _ -> true
            | _ -> st.table = None
          in
          st.map <- Some m;
          if map_changed then st.table <- Some (San_routing.Routes.compute m);
          let table = Option.get st.table in
          (* 5-6. Recompute and delta-install routes when the map moved
             or some host still runs a stale table. *)
          if map_changed || st.missing <> [] then begin
            goto Distributing;
            match
              Delta.distribute ~params:config.params
                ~retries:config.dist_retries ?traffic ~installed:st.installed
                table ~actual:g ~leader:mapper
            with
            | Error err ->
              events := !events @ [ "distribution failed: " ^ err ];
              goto Degraded;
              st.sleep <- st.backoff;
              st.backoff <- min (st.backoff * 2) config.backoff_max
            | Ok rep ->
              dist_report := Some rep;
              st.installed <- rep.Delta.installed;
              let map_of_table = San_routing.Routes.graph table in
              st.missing <-
                List.map
                  (fun n -> Graph.name map_of_table n)
                  rep.Delta.dist.D.missed;
              delta_bytes := !delta_bytes + rep.Delta.sent_bytes;
              full_bytes := !full_bytes + rep.Delta.full_sent_bytes;
              San_obs.Obs.count ~by:rep.Delta.sent_bytes "daemon.delta_bytes";
              San_obs.Obs.count ~by:rep.Delta.full_sent_bytes
                "daemon.full_bytes";
              if st.missing = [] then begin
                goto Stable;
                st.backoff <- config.backoff_start
              end
              else begin
                goto Degraded;
                st.sleep <- st.backoff;
                st.backoff <- min (st.backoff * 2) config.backoff_max
              end
          end
          else goto Stable));
      (* Close the books on the epoch. *)
      let dist_ns =
        match !dist_report with
        | Some r -> r.Delta.dist.D.duration_ns
        | None -> 0.0
      in
      let epoch_ns = !verify_ns +. !remap_ns +. dist_ns in
      (* The phase timeline: spans laid end to end on the cumulative
         simulated clock, mirrored into per-phase histograms. *)
      let emit_phase name start dur =
        if dur > 0.0 then begin
          San_obs.Obs.emit
            (San_obs.Trace.Phase_timed
               { epoch = e; phase = name; start_ns = start; dur_ns = dur });
          San_obs.Obs.observe ("daemon.phase." ^ name ^ "_ns") dur
        end
      in
      let t0 = !sim_clock in
      emit_phase "detect" t0 !detect_ns;
      emit_phase "verify" (t0 +. !detect_ns) !verify_ns;
      emit_phase "remap" (t0 +. !detect_ns +. !verify_ns) !remap_ns;
      emit_phase "distribute"
        (t0 +. !detect_ns +. !verify_ns +. !remap_ns)
        dist_ns;
      sim_clock := t0 +. !detect_ns +. epoch_ns;
      if st.incident_start <> None then
        st.incident_acc <- st.incident_acc +. epoch_ns;
      let closed_converge = ref None in
      (match st.incident_start with
      | Some d when st.phase = Stable && st.missing = [] ->
        let inc =
          { detected_epoch = d; resolved_epoch = e; converge_ns = st.incident_acc }
        in
        incidents := inc :: !incidents;
        closed_converge := Some inc.converge_ns;
        San_obs.Obs.observe "daemon.converge_ns" inc.converge_ns;
        st.incident_start <- None;
        st.incident_acc <- 0.0
      | _ -> ());
      let hosts_total =
        match st.map with Some m -> Graph.num_hosts m | None -> 0
      in
      let hosts_covered = max 0 (hosts_total - List.length st.missing) in
      total_probes := !total_probes + !probes;
      San_obs.Obs.count "daemon.epochs";
      San_obs.Obs.count ~by:!probes "daemon.probes";
      if hosts_total > 0 then
        San_obs.Obs.set_gauge "daemon.coverage"
          (float_of_int hosts_covered /. float_of_int hosts_total);
      if st.phase = Degraded then San_obs.Obs.count "daemon.degraded_epochs";
      (* Fabric health: one sample per steady-state epoch. Cold start
         is skipped on purpose — the bootstrap ships every slice by
         definition, and alerting on it would make every run open with
         a spurious incident. *)
      let health_sample, alerts_raised, alerts_cleared =
        match !verdict with
        | Cold_start -> (None, [], [])
        | _ ->
          let coverage =
            if hosts_total = 0 then 0.0
            else
              match !verdict with
              | Verified when st.missing = [] -> 1.0
              | Changed _ -> (
                (* A detected change means some hosts ran stale routes
                   this epoch, even if the delta repaired them before
                   the books closed: the plan's unchanged count is the
                   honest coverage of the epoch as lived. *)
                match !dist_report with
                | Some rep ->
                  float_of_int rep.Delta.plan.Delta.unchanged_hosts
                  /. float_of_int hosts_total
                | None -> 0.0)
              | Cold_start | Verified | Backing_off | Halted ->
                float_of_int hosts_covered /. float_of_int hosts_total
          in
          let missed_slices, probe_drop_rate =
            match !dist_report with
            | None -> (0, 0.0)
            | Some rep ->
              let missed = rep.Delta.dist.D.hosts_missed in
              let msgs = rep.Delta.dist.D.total_messages in
              ( missed,
                if msgs = 0 then 0.0
                else float_of_int missed /. float_of_int msgs )
          in
          let sample =
            {
              San_telemetry.Health.epoch = e;
              coverage;
              convergence_epochs =
                (match st.incident_start with
                | Some d -> e - d + 1
                | None -> 0);
              delta_bytes =
                (match !dist_report with
                | Some rep -> rep.Delta.sent_bytes
                | None -> 0);
              missed_slices;
              probe_drop_rate;
              epoch_ms = epoch_ns /. 1e6;
            }
          in
          let raised, cleared = San_telemetry.Health.observe health sample in
          (Some sample, raised, cleared)
      in
      (* SLOs watch the same steady-state epochs as health: a cold
         start has no contract to breach. *)
      let slo_raised, slo_cleared =
        match (!verdict, health_sample) with
        | Cold_start, _ | _, None -> ([], [])
        | _, Some hs ->
          San_slo.Slo.observe slo
            {
              San_slo.Slo.s_epoch = e;
              s_load =
                (match !load_report with
                | Some r -> r.San_slo.Load.r_offered
                | None -> 0.0);
              s_converge_ns = !closed_converge;
              s_epoch_ns = epoch_ns;
              s_drop_rate =
                (match !load_report with
                | Some r -> r.San_slo.Load.r_drop_rate
                | None -> hs.San_telemetry.Health.probe_drop_rate);
              s_coverage = hs.San_telemetry.Health.coverage;
            }
      in
      let report =
        {
          epoch = e;
          events = !events;
          leader = Option.value ~default:"(none)" st.leader;
          elected = !elected;
          verdict = !verdict;
          phases = List.rev !phases;
          probes = !probes;
          detect_ns = !detect_ns;
          verify_ns = !verify_ns;
          remap_ns = !remap_ns;
          dist = !dist_report;
          load = !load_report;
          hosts_total;
          hosts_covered;
          epoch_ns;
          health = health_sample;
          alerts_raised;
          alerts_cleared;
          slo_raised;
          slo_cleared;
        }
      in
      San_obs.Obs.emit
        (San_obs.Trace.Daemon_epoch
           {
             epoch = e;
             verdict = verdict_to_string !verdict;
             leader = Option.value ~default:"(none)" st.leader;
             covered = hosts_covered;
             total = hosts_total;
           });
      on_epoch report;
      reports := report :: !reports
    done;
    flight ~name:"flight-final.jsonl"
      ~note:
        (Printf.sprintf "end of run after %d epochs, final phase %s" epochs
           (phase_to_string st.phase))
      ~epoch:(epochs - 1) ();
    if config.flight_dir <> None then San_why.Flight.clear_fatal ();
    Ok
      {
        reports = List.rev !reports;
        incidents = List.rev !incidents;
        final_phase = st.phase;
        map = st.map;
        remaps = !remaps;
        elections = !elections;
        total_probes = !total_probes;
        delta_bytes = !delta_bytes;
        full_bytes = !full_bytes;
        health = San_telemetry.Health.report health;
        slo = San_slo.Slo.status slo;
      }
  end
