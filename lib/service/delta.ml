open San_topology
module Smap = Map.Make (String)
module D = San_routing.Distribute

type tables = San_simnet.Route.t Smap.t Smap.t

let empty = Smap.empty

let of_routes table =
  let g = San_routing.Routes.graph table in
  List.fold_left
    (fun acc (src, dst, turns) ->
      let name = Graph.name g src in
      let slice = Option.value ~default:Smap.empty (Smap.find_opt name acc) in
      Smap.add name (Smap.add (Graph.name g dst) turns slice) acc)
    Smap.empty
    (San_routing.Routes.all table)

let hosts t = List.map fst (Smap.bindings t)

let entries_for t name =
  match Smap.find_opt name t with
  | None -> []
  | Some slice -> Smap.bindings slice

(* ------------------------------------------------------------------ *)

type kind = Unchanged | Delta of { changed : int; removed : int } | Full

type slice = {
  owner : string;
  kind : kind;
  bytes : int;
  full_bytes : int;
  packed_bytes : int;
}

type plan = {
  slices : slice list;
  delta_bytes : int;
  full_bytes : int;
  packed_full_bytes : int;
  unchanged_hosts : int;
}

(* A delta slice carries a 4-byte header (table version + entry count);
   a tombstone is an entry header with zero turns. *)
let delta_header_bytes = 4
let tombstone_bytes = 3

(* The cost of shipping this host's whole slice pooled: routes from
   one source share their up-phase *prefixes*, so we intern them
   reversed and the common heads collapse into pool suffixes. Pays off
   once slices are fabric-sized (~80% of naive on ft-1k); on tiny NOW
   tables the per-entry reference overhead loses, so a header bit
   selects whichever encoding is smaller. *)
let packed_slice_bytes ~full_bytes fresh_slice =
  let pool = San_routing.Serve.Pool.create () in
  Smap.iter
    (fun _ turns -> ignore (San_routing.Serve.Pool.add pool (List.rev turns)))
    fresh_slice;
  min full_bytes
    (delta_header_bytes + San_routing.Serve.Pool.packed_bytes pool)

let slice_of_host ~installed owner fresh_slice =
  let full_bytes =
    Smap.fold (fun _ turns acc -> acc + D.entry_bytes turns) fresh_slice 0
  in
  let packed_bytes = packed_slice_bytes ~full_bytes fresh_slice in
  match Smap.find_opt owner installed with
  | None -> { owner; kind = Full; bytes = full_bytes; full_bytes; packed_bytes }
  | Some old_slice ->
    let changed, changed_bytes =
      Smap.fold
        (fun dst turns ((n, b) as acc) ->
          match Smap.find_opt dst old_slice with
          | Some old_turns when old_turns = turns -> acc
          | _ -> (n + 1, b + D.entry_bytes turns))
        fresh_slice (0, 0)
    in
    let removed =
      Smap.fold
        (fun dst _ n -> if Smap.mem dst fresh_slice then n else n + 1)
        old_slice 0
    in
    if changed = 0 && removed = 0 then
      { owner; kind = Unchanged; bytes = 0; full_bytes; packed_bytes }
    else
      let delta_bytes =
        delta_header_bytes + changed_bytes + (removed * tombstone_bytes)
      in
      if delta_bytes >= full_bytes then
        { owner; kind = Full; bytes = full_bytes; full_bytes; packed_bytes }
      else
        {
          owner;
          kind = Delta { changed; removed };
          bytes = delta_bytes;
          full_bytes;
          packed_bytes;
        }

let plan ~installed table =
  let fresh = of_routes table in
  let slices =
    List.map
      (fun (owner, fresh_slice) -> slice_of_host ~installed owner fresh_slice)
      (Smap.bindings fresh)
  in
  {
    slices;
    delta_bytes = List.fold_left (fun a s -> a + s.bytes) 0 slices;
    full_bytes = List.fold_left (fun a (s : slice) -> a + s.full_bytes) 0 slices;
    packed_full_bytes =
      List.fold_left (fun a (s : slice) -> a + s.packed_bytes) 0 slices;
    unchanged_hosts =
      List.length (List.filter (fun s -> s.kind = Unchanged) slices);
  }

(* ------------------------------------------------------------------ *)

type report = {
  plan : plan;
  dist : D.report;
  installed : tables;
  sent_bytes : int;
  full_sent_bytes : int;
}

let distribute ?params ?retries ?traffic ~installed table ~actual ~leader =
  let map = San_routing.Routes.graph table in
  let leader_name = Graph.name actual leader in
  let p = plan ~installed table in
  let to_ship =
    List.filter (fun s -> s.kind <> Unchanged && s.owner <> leader_name) p.slices
  in
  let unresolved, slices =
    List.partition_map
      (fun s ->
        match Graph.host_by_name map s.owner with
        | Some node -> Either.Right (s.owner, node, s.bytes)
        | None -> Either.Left s.owner)
      to_ship
  in
  (* Owners of the table always resolve in the table's graph; keep the
     partition total anyway. *)
  assert (unresolved = []);
  match
    D.simulate_slices ?params ?retries ?traffic table ~actual ~leader
      ~slices:(List.map (fun (_, node, bytes) -> (node, bytes)) slices)
  with
  | Error _ as e -> e
  | Ok dist ->
    let fresh = of_routes table in
    let missed_names =
      List.map (fun node -> Graph.name map node) dist.D.missed
    in
    let delivered_or_local name =
      name = leader_name || not (List.mem name missed_names)
    in
    (* Advance the ledger for every slice that needed shipping and
       arrived (or was the leader's own); unchanged slices are already
       current by definition. *)
    let installed =
      Smap.fold
        (fun owner fresh_slice acc ->
          if delivered_or_local owner then Smap.add owner fresh_slice acc
          else acc)
        fresh installed
    in
    let sent_bytes =
      List.fold_left (fun a (_, _, bytes) -> a + bytes) 0 slices
    in
    let full_sent_bytes =
      List.fold_left
        (fun a s -> if s.owner = leader_name then a else a + s.full_bytes)
        0 p.slices
    in
    Ok { plan = p; dist; installed; sent_bytes; full_sent_bytes }
