open San_topology

type action =
  | Cut_links of int
  | Flap_link of int
  | Isolate_switch
  | Add_link
  | Kill_host of string
  | Kill_leader
  | Revive_host of string

type t = (int * action) list

let empty = []
let of_list l = l
let actions_at t epoch = List.filter_map
    (fun (e, a) -> if e = epoch then Some a else None)
    t

let last_epoch t = List.fold_left (fun acc (e, _) -> max acc e) (-1) t

let pp_action ppf = function
  | Cut_links n -> Format.fprintf ppf "cut %d link%s" n (if n = 1 then "" else "s")
  | Flap_link d -> Format.fprintf ppf "flap a link (down %d epochs)" d
  | Isolate_switch -> Format.fprintf ppf "isolate a switch"
  | Add_link -> Format.fprintf ppf "add a link"
  | Kill_host h -> Format.fprintf ppf "kill host %s" h
  | Kill_leader -> Format.fprintf ppf "kill the leader"
  | Revive_host h -> Format.fprintf ppf "revive host %s" h

let parse_action s =
  let kind, arg =
    match String.index_opt s '=' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let int_arg ~default =
    match arg with
    | None -> Ok default
    | Some a -> (
      match int_of_string_opt a with
      | Some n when n > 0 -> Ok n
      | _ -> Error (Printf.sprintf "%s: positive count expected, got %S" kind a))
  in
  match kind with
  | "cut" -> Result.map (fun n -> Cut_links n) (int_arg ~default:1)
  | "flap" -> Result.map (fun n -> Flap_link n) (int_arg ~default:2)
  | "isolate" -> Ok Isolate_switch
  | "add" -> Ok Add_link
  | "kill-leader" -> Ok Kill_leader
  | "kill" -> (
    match arg with
    | Some h -> Ok (Kill_host h)
    | None -> Error "kill needs a host: kill=HOST (or use kill-leader)")
  | "revive" -> (
    match arg with
    | Some h -> Ok (Revive_host h)
    | None -> Error "revive needs a host: revive=HOST")
  | _ ->
    Error
      (kind
     ^ ": unknown action (cut[=N], flap[=EPOCHS], isolate, add, kill=HOST, \
        kill-leader, revive=HOST)")

let parse s =
  let entries =
    List.filter (fun e -> e <> "") (String.split_on_char ',' (String.trim s))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
      match String.index_opt e ':' with
      | None -> Error (e ^ ": expected EPOCH:ACTION")
      | Some i -> (
        let epoch = String.sub e 0 i in
        let action = String.sub e (i + 1) (String.length e - i - 1) in
        match int_of_string_opt (String.trim epoch) with
        | None -> Error (epoch ^ ": epoch number expected")
        | Some n when n < 0 -> Error (epoch ^ ": epoch must be >= 0")
        | Some n -> (
          match parse_action (String.trim action) with
          | Ok a -> go ((n, a) :: acc) rest
          | Error err -> Error err)))
  in
  go [] entries

(* ------------------------------------------------------------------ *)

let random_switch_wire ~rng g =
  let ws =
    List.filter
      (fun ((a, _), (b, _)) -> not (Graph.is_host g a || Graph.is_host g b))
      (Graph.wires g)
  in
  match ws with
  | [] -> None
  | _ -> Some (fst (List.nth ws (San_util.Prng.int rng (List.length ws))))

let describe_end g (n, p) =
  let nm = Graph.name g n in
  Printf.sprintf "(%s, port %d)"
    (if nm = "" then "switch " ^ string_of_int n else nm)
    p

let apply_action world ~rng ~leader ~epoch = function
  | Cut_links n ->
    let g = World.graph world in
    let before = Graph.num_wires g in
    World.set_graph world (Faults.remove_random_links ~rng g ~count:n);
    let cut = before - Graph.num_wires (World.graph world) in
    [ Printf.sprintf "cut %d switch link%s" cut (if cut = 1 then "" else "s") ]
  | Flap_link down -> (
    let g = World.graph world in
    match random_switch_wire ~rng g with
    | None -> [ "flap: no switch link to cut" ]
    | Some e -> (
      match Faults.flap_link g e with
      | None -> [ "flap: chosen port was vacant" ]
      | Some (degraded, restore) ->
        World.set_graph world degraded;
        let label = Printf.sprintf "restored flapped link at %s" (describe_end g e) in
        World.defer world ~at_epoch:(epoch + down) ~label restore;
        [ Printf.sprintf "flapped link at %s (down %d epochs)" (describe_end g e) down ]))
  | Isolate_switch -> (
    let g = World.graph world in
    let wired = List.filter (fun s -> Graph.degree g s > 0) (Graph.switches g) in
    match wired with
    | [] -> [ "isolate: no wired switch" ]
    | _ ->
      let sw = List.nth wired (San_util.Prng.int rng (List.length wired)) in
      World.set_graph world (Faults.isolate_switch g sw);
      [ Printf.sprintf "isolated switch %d" sw ])
  | Add_link -> (
    match Faults.add_random_link ~rng (World.graph world) with
    | None -> [ "add: no two free switch ports" ]
    | Some g ->
      World.set_graph world g;
      [ "added a switch link" ])
  | Kill_host h ->
    World.kill_host world h;
    [ Printf.sprintf "killed daemon on %s" h ]
  | Kill_leader ->
    World.kill_host world leader;
    [ Printf.sprintf "killed daemon on leader %s" leader ]
  | Revive_host h ->
    World.revive_host world h;
    [ Printf.sprintf "revived daemon on %s" h ]

let apply t world ~rng ~leader ~epoch =
  let repaired = World.due_repairs world ~epoch in
  repaired
  @ List.concat_map (apply_action world ~rng ~leader ~epoch) (actions_at t epoch)
