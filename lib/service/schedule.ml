open San_topology

type action =
  | Cut_links of int
  | Flap_link of int
  | Isolate_switch
  | Add_link
  | Kill_host of string
  | Kill_leader
  | Revive_host of string
  | Storm of { links : int; hosts : int }
  | Upgrade_switch of int
  | Partition of int
  | Flap_storm of { count : int; down : int }

type t = (int * action) list

let empty = []
let of_list l = l
let actions_at t epoch = List.filter_map
    (fun (e, a) -> if e = epoch then Some a else None)
    t

let last_epoch t = List.fold_left (fun acc (e, _) -> max acc e) (-1) t

let pp_action ppf = function
  | Cut_links n -> Format.fprintf ppf "cut %d link%s" n (if n = 1 then "" else "s")
  | Flap_link d -> Format.fprintf ppf "flap a link (down %d epochs)" d
  | Isolate_switch -> Format.fprintf ppf "isolate a switch"
  | Add_link -> Format.fprintf ppf "add a link"
  | Kill_host h -> Format.fprintf ppf "kill host %s" h
  | Kill_leader -> Format.fprintf ppf "kill the leader"
  | Revive_host h -> Format.fprintf ppf "revive host %s" h
  | Storm { links; hosts } ->
    Format.fprintf ppf "failure storm (%d links, %d hosts)" links hosts
  | Upgrade_switch down ->
    Format.fprintf ppf "rolling upgrade: pull a switch (back in %d epochs)" down
  | Partition down ->
    Format.fprintf ppf "partition the fabric (heal in %d epochs)" down
  | Flap_storm { count; down } ->
    Format.fprintf ppf "flap storm (%d links, each down %d epochs)" count down

let parse_action s =
  let kind, arg =
    match String.index_opt s '=' with
    | None -> (s, None)
    | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let int_arg ~default =
    match arg with
    | None -> Ok default
    | Some a -> (
      match int_of_string_opt a with
      | Some n when n > 0 -> Ok n
      | _ -> Error (Printf.sprintf "%s: positive count expected, got %S" kind a))
  in
  (* Compound args are 'x'-separated ("storm=2x3") because the comma
     already separates schedule entries. *)
  let pair_arg ~default:(d1, d2) =
    match arg with
    | None -> Ok (d1, d2)
    | Some a -> (
      let parts = String.split_on_char 'x' a in
      match List.map int_of_string_opt parts with
      | [ Some n ] when n > 0 -> Ok (n, d2)
      | [ Some n; Some m ] when n > 0 && m >= 0 -> Ok (n, m)
      | _ -> Error (Printf.sprintf "%s: expected N or NxM, got %S" kind a))
  in
  match kind with
  | "cut" -> Result.map (fun n -> Cut_links n) (int_arg ~default:1)
  | "flap" -> Result.map (fun n -> Flap_link n) (int_arg ~default:2)
  | "isolate" -> Ok Isolate_switch
  | "add" -> Ok Add_link
  | "kill-leader" -> Ok Kill_leader
  | "kill" -> (
    match arg with
    | Some h -> Ok (Kill_host h)
    | None -> Error "kill needs a host: kill=HOST (or use kill-leader)")
  | "revive" -> (
    match arg with
    | Some h -> Ok (Revive_host h)
    | None -> Error "revive needs a host: revive=HOST")
  | "storm" ->
    Result.map
      (fun (links, hosts) -> Storm { links; hosts })
      (pair_arg ~default:(2, 1))
  | "upgrade" -> Result.map (fun d -> Upgrade_switch d) (int_arg ~default:2)
  | "partition" -> Result.map (fun d -> Partition d) (int_arg ~default:3)
  | "flapstorm" ->
    Result.map
      (fun (count, down) -> Flap_storm { count; down = max 1 down })
      (pair_arg ~default:(3, 2))
  | _ ->
    Error
      (kind
     ^ ": unknown action (cut[=N], flap[=EPOCHS], isolate, add, kill=HOST, \
        kill-leader, revive=HOST, storm[=LINKSxHOSTS], upgrade[=EPOCHS], \
        partition[=EPOCHS], flapstorm[=NxEPOCHS])")

let parse s =
  let entries =
    List.filter (fun e -> e <> "") (String.split_on_char ',' (String.trim s))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest -> (
      match String.index_opt e ':' with
      | None -> Error (e ^ ": expected EPOCH:ACTION")
      | Some i -> (
        let epoch = String.sub e 0 i in
        let action = String.sub e (i + 1) (String.length e - i - 1) in
        match int_of_string_opt (String.trim epoch) with
        | None -> Error (epoch ^ ": epoch number expected")
        | Some n when n < 0 -> Error (epoch ^ ": epoch must be >= 0")
        | Some n -> (
          match parse_action (String.trim action) with
          | Ok a -> go ((n, a) :: acc) rest
          | Error err -> Error err)))
  in
  go [] entries

(* Round-trips through [parse]: fuzz counterexamples print their
   schedule in exactly the syntax that replays it. *)
let action_to_string = function
  | Cut_links 1 -> "cut"
  | Cut_links n -> Printf.sprintf "cut=%d" n
  | Flap_link d -> Printf.sprintf "flap=%d" d
  | Isolate_switch -> "isolate"
  | Add_link -> "add"
  | Kill_host h -> "kill=" ^ h
  | Kill_leader -> "kill-leader"
  | Revive_host h -> "revive=" ^ h
  | Storm { links; hosts } -> Printf.sprintf "storm=%dx%d" links hosts
  | Upgrade_switch d -> Printf.sprintf "upgrade=%d" d
  | Partition d -> Printf.sprintf "partition=%d" d
  | Flap_storm { count; down } -> Printf.sprintf "flapstorm=%dx%d" count down

let to_string t =
  String.concat ","
    (List.map (fun (e, a) -> Printf.sprintf "%d:%s" e (action_to_string a)) t)

(* ------------------------------------------------------------------ *)
(* Scenario presets: the adversarial scripts of ROADMAP item 3, scaled
   to however many epochs the run has. *)

let scenario_names = [ "storm"; "rolling"; "partition"; "flaps" ]

let scenario ?(epochs = 12) name =
  let mid = max 2 (epochs / 2) in
  let late = max 3 (epochs - 3) in
  match name with
  | "storm" ->
    (* Two failure storms with a recovery window between them, then a
       new cable so the remap also sees growth. *)
    Ok
      [
        (2, Storm { links = 2; hosts = 1 });
        (mid, Storm { links = 1; hosts = 2 });
        (late, Add_link);
      ]
  | "rolling" ->
    (* A rolling switch upgrade: one switch pulled every other epoch,
       each back two epochs later — the fleet is never whole. *)
    let rec pulls e acc =
      if e >= late then List.rev acc
      else pulls (e + 2) ((e, Upgrade_switch 2) :: acc)
    in
    Ok (pulls 2 [])
  | "partition" ->
    (* Split the fabric, kill the leader while it is split, heal. *)
    Ok [ (2, Partition 3); (3, Kill_leader) ]
  | "flaps" ->
    (* Link flapping at scale: overlapping flap storms, so some links
       come back while others go down. *)
    Ok
      [
        (1, Flap_storm { count = 3; down = 2 });
        (mid, Flap_storm { count = 2; down = 2 });
        (late, Flap_storm { count = 2; down = 1 });
      ]
  | _ ->
    Error
      (Printf.sprintf "%s: unknown scenario (%s)" name
         (String.concat ", " scenario_names))

(* Random schedules for the fuzzer: every action the grammar offers
   except named kills (the generator does not know host names; leader
   kills cover the daemon-death axis). Deterministic in [rng]. *)
let gen ~rng ~epochs =
  let pick_action () =
    match San_util.Prng.int rng 9 with
    | 0 -> Cut_links (1 + San_util.Prng.int rng 2)
    | 1 -> Flap_link (1 + San_util.Prng.int rng 3)
    | 2 -> Isolate_switch
    | 3 -> Add_link
    | 4 -> Kill_leader
    | 5 ->
      Storm
        {
          links = 1 + San_util.Prng.int rng 2;
          hosts = San_util.Prng.int rng 2;
        }
    | 6 -> Upgrade_switch (1 + San_util.Prng.int rng 3)
    | 7 -> Partition (1 + San_util.Prng.int rng 3)
    | _ ->
      Flap_storm
        {
          count = 1 + San_util.Prng.int rng 3;
          down = 1 + San_util.Prng.int rng 2;
        }
  in
  let entries = ref [] in
  for e = 1 to epochs do
    if San_util.Prng.int rng 100 < 30 then
      entries := (e, pick_action ()) :: !entries
  done;
  List.rev !entries

(* ------------------------------------------------------------------ *)

let random_switch_wire ~rng g =
  let ws =
    List.filter
      (fun ((a, _), (b, _)) -> not (Graph.is_host g a || Graph.is_host g b))
      (Graph.wires g)
  in
  match ws with
  | [] -> None
  | _ -> Some (fst (List.nth ws (San_util.Prng.int rng (List.length ws))))

let describe_end g (n, p) =
  let nm = Graph.name g n in
  Printf.sprintf "(%s, port %d)"
    (if nm = "" then "switch " ^ string_of_int n else nm)
    p

let rec apply_action world ~rng ~leader ~epoch = function
  | Cut_links n ->
    let g = World.graph world in
    let before = Graph.num_wires g in
    World.set_graph world (Faults.remove_random_links ~rng g ~count:n);
    let cut = before - Graph.num_wires (World.graph world) in
    [ Printf.sprintf "cut %d switch link%s" cut (if cut = 1 then "" else "s") ]
  | Flap_link down -> (
    let g = World.graph world in
    match random_switch_wire ~rng g with
    | None -> [ "flap: no switch link to cut" ]
    | Some e -> (
      match Faults.flap_link g e with
      | None -> [ "flap: chosen port was vacant" ]
      | Some (degraded, restore) ->
        World.set_graph world degraded;
        let label = Printf.sprintf "restored flapped link at %s" (describe_end g e) in
        World.defer world ~at_epoch:(epoch + down) ~label restore;
        [ Printf.sprintf "flapped link at %s (down %d epochs)" (describe_end g e) down ]))
  | Isolate_switch -> (
    let g = World.graph world in
    let wired = List.filter (fun s -> Graph.degree g s > 0) (Graph.switches g) in
    match wired with
    | [] -> [ "isolate: no wired switch" ]
    | _ ->
      let sw = List.nth wired (San_util.Prng.int rng (List.length wired)) in
      World.set_graph world (Faults.isolate_switch g sw);
      [ Printf.sprintf "isolated switch %d" sw ])
  | Add_link -> (
    match Faults.add_random_link ~rng (World.graph world) with
    | None -> [ "add: no two free switch ports" ]
    | Some g ->
      World.set_graph world g;
      [ "added a switch link" ])
  | Kill_host h ->
    World.kill_host world h;
    [ Printf.sprintf "killed daemon on %s" h ]
  | Kill_leader ->
    World.kill_host world leader;
    [ Printf.sprintf "killed daemon on leader %s" leader ]
  | Revive_host h ->
    World.revive_host world h;
    [ Printf.sprintf "revived daemon on %s" h ]
  | Storm { links; hosts } ->
    (* A correlated failure burst: cables and daemons in one epoch. *)
    let cut_notes =
      if links > 0 then apply_action world ~rng ~leader ~epoch (Cut_links links)
      else []
    in
    let g = World.graph world in
    let victims = ref [] in
    for _ = 1 to hosts do
      match World.responding_hosts world with
      | [] -> ()
      | up ->
        let h =
          Graph.name g (List.nth up (San_util.Prng.int rng (List.length up)))
        in
        World.kill_host world h;
        victims := h :: !victims
    done;
    cut_notes
    @ (match !victims with
      | [] -> []
      | vs ->
        [ Printf.sprintf "storm killed daemon%s on %s"
            (if List.length vs = 1 then "" else "s")
            (String.concat ", " (List.rev vs)) ])
  | Upgrade_switch down -> (
    (* Pull a whole switch for maintenance and re-plug the same wires
       [down] epochs later. Ports re-wired in the meantime make the
       re-plug a per-wire no-op (due_repairs drops it with a note). *)
    let g = World.graph world in
    let wired = List.filter (fun s -> Graph.degree g s > 0) (Graph.switches g) in
    match wired with
    | [] -> [ "upgrade: no wired switch" ]
    | _ ->
      let sw = List.nth wired (San_util.Prng.int rng (List.length wired)) in
      let plugs =
        List.map (fun (p, peer) -> ((sw, p), peer)) (Graph.wired_ports g sw)
      in
      World.set_graph world (Faults.isolate_switch g sw);
      let label = Printf.sprintf "re-plugged upgraded switch %d" sw in
      World.defer world ~at_epoch:(epoch + down) ~label (fun g' ->
          let g' = Graph.copy g' in
          List.iter (fun (a, b) -> Graph.connect g' a b) plugs;
          g');
      [ Printf.sprintf "pulled switch %d for upgrade (%d wires, back in %d \
                        epochs)" sw (List.length plugs) down ])
  | Partition down -> (
    (* Split the switches into two halves by BFS from a random seed and
       cut every switch-to-switch wire crossing the frontier; heal by
       re-plugging the recorded cross wires. *)
    let g = World.graph world in
    let switches = Graph.switches g in
    if List.length switches < 2 then [ "partition: fewer than two switches" ]
    else begin
      let seed = List.nth switches (San_util.Prng.int rng (List.length switches)) in
      let half = (List.length switches + 1) / 2 in
      let side = Hashtbl.create 16 in
      Hashtbl.replace side seed ();
      let queue = Queue.create () in
      Queue.add seed queue;
      while Hashtbl.length side < half && not (Queue.is_empty queue) do
        let s = Queue.pop queue in
        List.iter
          (fun (_, (n, _)) ->
            if
              (not (Graph.is_host g n))
              && (not (Hashtbl.mem side n))
              && Hashtbl.length side < half
            then begin
              Hashtbl.replace side n ();
              Queue.add n queue
            end)
          (Graph.wired_ports g s)
      done;
      let crossing =
        List.filter
          (fun ((a, _), (b, _)) ->
            (not (Graph.is_host g a))
            && (not (Graph.is_host g b))
            && Hashtbl.mem side a <> Hashtbl.mem side b)
          (Graph.wires g)
      in
      match crossing with
      | [] -> [ "partition: no crossing wire to cut" ]
      | _ ->
        let g' = Graph.copy g in
        List.iter (fun (e, _) -> Graph.disconnect g' e) crossing;
        World.set_graph world g';
        let label =
          Printf.sprintf "healed partition (%d wires)" (List.length crossing)
        in
        World.defer world ~at_epoch:(epoch + down) ~label (fun gh ->
            let gh = Graph.copy gh in
            List.iter (fun (a, b) -> Graph.connect gh a b) crossing;
            gh);
        [ Printf.sprintf "partitioned the fabric: cut %d crossing wire%s \
                          (heal in %d epochs)"
            (List.length crossing)
            (if List.length crossing = 1 then "" else "s")
            down ]
    end)
  | Flap_storm { count; down } ->
    (* Many independent flaps at once; each repairs on its own timer. *)
    let flapped = ref 0 in
    let notes = ref [] in
    for _ = 1 to count do
      let g = World.graph world in
      match random_switch_wire ~rng g with
      | None -> ()
      | Some e -> (
        match Faults.flap_link g e with
        | None -> ()
        | Some (degraded, restore) ->
          World.set_graph world degraded;
          incr flapped;
          let label =
            Printf.sprintf "restored storm-flapped link at %s" (describe_end g e)
          in
          World.defer world ~at_epoch:(epoch + down) ~label restore;
          notes := describe_end g e :: !notes)
    done;
    if !flapped = 0 then [ "flapstorm: no switch link to flap" ]
    else
      [ Printf.sprintf "flap storm: %d link%s down %d epochs (%s)" !flapped
          (if !flapped = 1 then "" else "s")
          down
          (String.concat ", " (List.rev !notes)) ]

let apply t world ~rng ~leader ~epoch =
  let repaired = World.due_repairs world ~epoch in
  repaired
  @ List.concat_map (apply_action world ~rng ~leader ~epoch) (actions_at t epoch)
