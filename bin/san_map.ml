(* san_map: command-line front end for the SAN mapping system.

   Subcommands:
     topo    — generate a topology, print statistics, optionally DOT
     map     — discover a topology with the Berkeley (or Myricom)
               mapper, verify the result, optionally save JSON/DOT;
               --budget stops at a probe budget and emits a
               confidence-annotated partial map instead
     coverage — budgeted map plus the coverage observatory dashboard
               (frontier sparkline, confidence deciles, explain hooks)
     routes  — map, then compute and check UP*/DOWN* routes
     diff    — compare two saved maps, anchored at host names
     verify  — incrementally check a saved map against the live
               fabric (one probe per known port), remapping on change
     fuzz    — randomized property fuzzing with counterexample
               shrinking (seeded, replayable)
     daemon  — epoch-driven control-plane loop over a fault schedule
     health  — daemon run with fabric telemetry: sparkline dashboard,
               alerts, hottest links
     explain — map with the provenance ledger on, then print the
               minimal justification tree of a switch, link or route
     blame   — map two fabrics, diff the maps, attribute each change
               to the first probe whose answer (or loss) explains it
     postmortem — replay a daemon flight recording (timeline, open
               alerts, last deductions) from the file alone
     version — print the package version

   map, routes, verify and fuzz exit non-zero when any property they
   check fails, so CI cannot green-wash a broken map. *)

open Cmdliner
open San_topology

(* ------------------------------------------------------------------ *)
(* Topology selection                                                  *)

let build_topology_classic spec rng =
  (* Every numeric field goes through this, so `mesh:3xfour` dies with
     a usage line naming the spec, not an uncaught int_of_string. *)
  let dim s =
    match int_of_string_opt s with
    | Some n -> n
    | None ->
      raise
        (Invalid_argument
           (Printf.sprintf "topology %S: %S is not an integer" spec s))
  in
  match String.split_on_char ':' spec with
  | [ "c" ] -> fst (Generators.now_c ())
  | [ "ca" ] -> fst (Generators.now_ca ())
  | [ "cab" ] | [ "now" ] -> fst (Generators.now_cab ())
  | [ "hypercube"; d ] -> Generators.hypercube ~dim:(dim d) ()
  | [ "mesh"; r; c ] -> Generators.mesh ~rows:(dim r) ~cols:(dim c) ()
  | [ "torus"; r; c ] -> Generators.torus ~rows:(dim r) ~cols:(dim c) ()
  | [ "ring"; n ] -> Generators.ring ~switches:(dim n) ~hosts_per_switch:1 ()
  | [ "star"; n ] -> Generators.star ~leaves:(dim n) ()
  | [ "chain"; n ] -> Generators.chain ~switches:(dim n) ()
  | [ "fat-tree"; l; h; s ] ->
    Generators.fat_tree ~leaves:(dim l) ~hosts_per_leaf:(dim h) ~spines:(dim s)
      ()
  | [ "random"; sw; h ] ->
    Generators.random_connected ~rng ~switches:(dim sw) ~hosts:(dim h)
      ~extra_links:(dim sw / 2) ()
  | [ "ccc"; d ] -> Generators.cube_connected_cycles ~dim:(dim d) ()
  | [ "shuffle"; d ] -> Generators.shuffle_exchange ~dim:(dim d) ()
  | [ "pendant" ] -> Generators.pendant_branch ()
  | [ "lone" ] -> Generators.lone_host ()
  | [ "stub" ] -> Generators.stub_switch ()
  | _ ->
    raise
      (Invalid_argument
         (spec
        ^ ": unknown topology (try c, ca, cab, fabric:PRESET, \
           fabric:key=value,..., hypercube:D, mesh:R:C, torus:R:C, ring:N, \
           star:N, chain:N, fat-tree:L:H:S, ccc:D, shuffle:D, \
           random:SW:HOSTS, pendant, lone, stub)"))

(* Returns the graph plus a suggested fixed exploration depth when the
   spec is a generated fabric: at data-center scale the oracle bound's
   per-node min-cost flow is infeasible, and the generator knows a safe
   depth analytically. *)
let build_topology_ex spec seed =
  match String.split_on_char ':' spec with
  | "fabric" :: rest when rest <> [] -> (
    let arg = String.concat ":" rest in
    match San_fabric.Fabric.parse arg with
    | Ok p -> (p.San_fabric.Fabric.p_build ~seed, p.San_fabric.Fabric.p_depth)
    | Error e -> raise (Invalid_argument e))
  | _ -> (
    (* A bare fabric preset name (`ft-100`) works without the
       `fabric:` prefix; preset names never collide with the classic
       generator specs. *)
    match San_fabric.Fabric.find_preset spec with
    | Some p -> (p.San_fabric.Fabric.p_build ~seed, p.San_fabric.Fabric.p_depth)
    | None -> (build_topology_classic spec (San_util.Prng.create seed), None))

let build_topology spec seed = fst (build_topology_ex spec seed)

let topo_arg =
  let doc =
    "Topology to operate on: c | ca | cab | fabric:PRESET (or a bare preset \
     name like ft-100) | fabric:key=value,... | hypercube:D | mesh:R:C | \
     torus:R:C | ring:N | star:N | chain:N | fat-tree:L:H:S | ccc:D | \
     shuffle:D | random:SW:H | pendant | lone | stub. See `san_map gen` for \
     fabric presets."
  in
  Arg.(value & opt string "c" & info [ "t"; "topology" ] ~docv:"SPEC" ~doc)

let seed_arg =
  let doc = "Random seed (topology generation, load balancing)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let dot_arg =
  let doc = "Write the result as a Graphviz file." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let mapper_arg =
  let doc = "Host that runs the mapper (default: first host)." in
  Arg.(value & opt (some string) None & info [ "mapper" ] ~docv:"HOST" ~doc)

(* ------------------------------------------------------------------ *)
(* Observability: --trace / --metrics                                  *)

let trace_arg =
  let doc =
    "Write a JSON-lines trace (probe, worm, merge and span events) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write a metrics snapshot (counters, gauges, histogram quantiles) as JSON \
     to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let chrome_arg =
  let doc =
    "Write a Chrome trace-event file (loadable in chrome://tracing and \
     Perfetto) to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "chrome-trace" ] ~docv:"FILE" ~doc)

let prom_arg =
  let doc = "Write the metrics in Prometheus text exposition to $(docv)." in
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"FILE" ~doc)

(* Run [f] under the observability subsystem when any output was
   requested (or [force]d, for the health dashboard which reads the
   in-memory ring and registry directly); otherwise leave it disabled
   (zero-cost instrumentation). *)
let with_obs ?(force = false) ?(chrome = None) ?(prom = None) ~trace ~metrics f
    =
  if (not force) && trace = None && metrics = None && chrome = None
     && prom = None
  then f ()
  else
    match
      San_obs.Obs.set_enabled true;
      San_obs.Obs.reset ();
      let trace_oc = Option.map open_out trace in
      Option.iter
        (fun oc ->
          San_obs.Trace.add_sink San_obs.Obs.tracer
            (San_obs.Trace.jsonl_sink oc))
        trace_oc;
      let finish () =
        San_obs.Trace.clear_sinks San_obs.Obs.tracer;
        Option.iter close_out trace_oc;
        Option.iter (fun f -> Format.printf "wrote trace %s@." f) trace;
        Option.iter
          (fun file ->
            San_telemetry.Chrome_trace.to_file
              (San_obs.Trace.records San_obs.Obs.tracer)
              file;
            Format.printf "wrote chrome trace %s@." file)
          chrome;
        let snap () = San_obs.Metrics.snapshot San_obs.Obs.registry in
        Option.iter
          (fun file ->
            let oc = open_out file in
            output_string oc
              (San_util.Json.to_string (San_obs.Metrics.to_json (snap ())));
            output_char oc '\n';
            close_out oc;
            Format.printf "wrote metrics %s@." file)
          metrics;
        Option.iter
          (fun file ->
            San_telemetry.Prom.to_file (snap ()) file;
            Format.printf "wrote prometheus metrics %s@." file)
          prom;
        San_obs.Obs.set_enabled false
      in
      Fun.protect ~finally:finish f
    with
    | status -> status
    | exception Fun.Finally_raised (Sys_error e) | (exception Sys_error e) ->
      San_obs.Obs.set_enabled false;
      Format.eprintf "cannot write observability output: %s@." e;
      1

(* Run [f] with the provenance ledger enabled (explain/blame, or any
   run that feeds a flight recorder). *)
let with_why on f =
  if not on then f ()
  else begin
    San_why.Why.set_enabled true;
    Fun.protect
      ~finally:(fun () -> San_why.Why.set_enabled false)
      f
  end

let out_dir_arg =
  let doc =
    "Directory for run artifacts (map JSON/DOT, daemon flight recordings). \
     An empty string disables artifact writing."
  in
  Arg.(value & opt string "_artifacts" & info [ "out-dir" ] ~docv:"DIR" ~doc)

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let spec_stem spec =
  String.map (fun c -> if c = ':' then '-' else c) spec

let pick_mapper g = function
  | Some name -> (
    match Graph.host_by_name g name with
    | Some h -> h
    | None -> failwith ("no such host: " ^ name))
  | None -> (
    match Graph.hosts g with
    | h :: _ -> h
    | [] -> failwith "topology has no hosts")

(* ------------------------------------------------------------------ *)
(* topo                                                                *)

(* Above this size the all-pairs diameter and the oracle's per-node
   flow computation stop being interactive; the fabric generator's
   suggested depth replaces them. *)
let oracle_feasible g = Graph.num_nodes g <= 2000

let run_topo spec seed dot =
  let g, depth_hint = build_topology_ex spec seed in
  Format.printf "%s: %a@." spec Graph.pp_stats g;
  Format.printf "connected %b, switch bridges %d, |F| %d@."
    (Analysis.is_connected g)
    (List.length (Core_set.switch_bridges g))
    (Array.fold_left
       (fun a b -> if b then a + 1 else a)
       0
       (Core_set.separated_set g));
  if oracle_feasible g then begin
    Format.printf "diameter %d@." (Analysis.diameter g);
    match Graph.hosts g with
    | root :: _ ->
      Format.printf "Q = %d, oracle search depth Q+D+1 = %d@."
        (Core_set.q_bound g ~root)
        (Core_set.search_depth g ~root)
    | [] -> ()
  end
  else
    Format.printf
      "large fabric: diameter/oracle bounds skipped%s@."
      (match depth_hint with
      | Some d -> Printf.sprintf " (suggested exploration depth %d)" d
      | None -> "");
  Option.iter
    (fun f ->
      Dot.to_file ~graph_name:spec g f;
      Format.printf "wrote %s@." f)
    dot;
  0

(* ------------------------------------------------------------------ *)
(* map                                                                 *)

let algo_arg =
  let doc = "Mapping algorithm: berkeley (the paper's) or myricom (baseline)." in
  Arg.(value & opt (enum [ ("berkeley", `Berkeley); ("myricom", `Myricom) ]) `Berkeley
       & info [ "algo" ] ~doc)

let model_arg =
  let doc = "Worm collision model: circuit or cut-through." in
  Arg.(
    value
    & opt
        (enum
           [ ("circuit", San_simnet.Collision.Circuit);
             ("cut-through", San_simnet.Collision.Cut_through) ])
        San_simnet.Collision.Circuit
    & info [ "model" ] ~doc)

let depth_arg =
  let doc = "Exploration depth (default: the oracle bound Q+D+1)." in
  Arg.(value & opt (some int) None & info [ "depth" ] ~docv:"N" ~doc)

let policy_arg =
  let doc = "Probe policy: faithful (default) or exhaustive." in
  Arg.(
    value
    & opt (enum [ ("faithful", San_mapper.Berkeley.faithful);
                  ("exhaustive", San_mapper.Berkeley.exhaustive) ])
        San_mapper.Berkeley.faithful
    & info [ "policy" ] ~doc)

let json_arg =
  let doc = "Save the resulting map as JSON (loadable by `diff' and `verify')." in
  Cmdliner.Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let budget_arg =
  let doc =
    "Stop mapping at a probe budget — a fraction of the full run's probe \
     count (e.g. 0.3) or an absolute count (probes:N) — and emit a \
     confidence-annotated partial map (JSON artifact under --out-dir) \
     instead of a full map. Berkeley mapper only."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "budget" ] ~docv:"FRAC|probes:N" ~doc)

let parse_budget_exn s =
  match San_cover.Cover.parse_budget s with
  | Ok b -> b
  | Error e -> raise (Invalid_argument e)

(* The budgeted mapping mode: full reference run, budget-stopped rerun
   with the why ledger on, confidence-annotated partial-map artifact.
   Exits non-zero if the partial map fails to embed in N - F. *)
let run_map_budgeted ~spec ~seed ~policy ~depth ~out_dir net ~mapper b =
  match San_cover.Cover.run ~policy ~depth ~budget:b net ~mapper with
  | Error e ->
    Format.printf "coverage run failed: %s@." e;
    false
  | Ok rep ->
    Format.printf "%a@." San_cover.Cover.pp_summary rep;
    let ok =
      match rep.San_cover.Cover.r_subgraph with
      | Ok () ->
        Format.printf
          "verified: partial map embeds in the full map (N - F)@.";
        true
      | Error e ->
        Format.printf "subgraph check FAILED: %s@." e;
        false
    in
    if out_dir <> "" then begin
      ensure_dir out_dir;
      let file =
        Filename.concat out_dir
          (Printf.sprintf "partial-map-%s-b%s.json" (spec_stem spec)
             (spec_stem (San_cover.Cover.budget_to_string b)))
      in
      let oc = open_out file in
      output_string oc
        (San_util.Json.to_string
           (San_cover.Cover.report_to_json ~spec ~seed rep));
      output_char oc '\n';
      close_out oc;
      Format.printf "wrote %s@." file
    end;
    ok

let run_map spec seed mapper_name algo model depth policy budget dot json
    out_dir trace metrics chrome prom =
  with_obs ~chrome ~prom ~trace ~metrics @@ fun () ->
  let g, depth_hint = build_topology_ex spec seed in
  let mapper = pick_mapper g mapper_name in
  let failed = ref false in
  let verify map =
    match
      Iso.check ~map ~actual:g ~exclude:(Core_set.separated_set g) ()
    with
    | Ok () -> Format.printf "verified: map isomorphic to N - F@."
    | Error e ->
      failed := true;
      Format.printf "verification FAILED: %s@." e
  in
  let artifacts map =
    if out_dir <> "" then begin
      ensure_dir out_dir;
      let stem = Filename.concat out_dir ("map-" ^ spec_stem spec) in
      Serial.save map (stem ^ ".json");
      Dot.to_file map (stem ^ ".dot");
      Format.printf "wrote %s.json and %s.dot@." stem stem
    end
  in
  (match algo with
  | `Berkeley -> (
    let net = San_simnet.Network.create ~model g in
    let depth =
      (* The exact oracle bound beats the generator's hint whenever the
         flow computation is affordable: surplus depth multiplies
         replicates on multipath fabrics, it is never free. *)
      match (depth, depth_hint) with
      | Some d, _ -> San_mapper.Berkeley.Fixed d
      | None, _ when oracle_feasible g -> San_mapper.Berkeley.Oracle
      | None, Some d ->
        Format.printf "using the fabric generator's suggested depth %d@." d;
        San_mapper.Berkeley.Fixed d
      | None, None -> San_mapper.Berkeley.Oracle
    in
    match Option.map parse_budget_exn budget with
    | Some b ->
      if
        not (run_map_budgeted ~spec ~seed ~policy ~depth ~out_dir net ~mapper b)
      then failed := true
    | None ->
    let r = San_mapper.Berkeley.run ~policy ~depth net ~mapper in
    Format.printf
      "berkeley: %d explorations, %d probes (host %d/%d, switch %d/%d), %.1f \
       ms simulated, depth %d@."
      r.San_mapper.Berkeley.explorations
      (San_mapper.Berkeley.total_probes r)
      r.San_mapper.Berkeley.host_hits r.San_mapper.Berkeley.host_probes
      r.San_mapper.Berkeley.switch_hits r.San_mapper.Berkeley.switch_probes
      (r.San_mapper.Berkeley.elapsed_ns /. 1e6)
      r.San_mapper.Berkeley.depth_used;
    match r.San_mapper.Berkeley.map with
    | Ok map ->
      Format.printf "map: %a@." Graph.pp_stats map;
      verify map;
      artifacts map;
      Option.iter (fun f -> Dot.to_file map f; Format.printf "wrote %s@." f) dot;
      Option.iter (fun f -> Serial.save map f; Format.printf "wrote %s@." f) json
    | Error e ->
      failed := true;
      Format.printf "export failed: %s@." e)
  | `Myricom -> (
    if budget <> None then
      raise
        (Invalid_argument
           "--budget requires the berkeley mapper (the myricom baseline has \
            no budget hook)");
    let r = San_myricom.Myricom.run ~model g ~mapper in
    let c = r.San_myricom.Myricom.counts in
    Format.printf
      "myricom: %d probes (loop %d, host %d, switch %d, compare %d), %.1f ms \
       simulated, %d switches@."
      (San_myricom.Myricom.total c)
      c.San_myricom.Myricom.loop_probes c.San_myricom.Myricom.host_probes
      c.San_myricom.Myricom.switch_probes c.San_myricom.Myricom.compare_probes
      (r.San_myricom.Myricom.elapsed_ns /. 1e6)
      r.San_myricom.Myricom.switches_found;
    match r.San_myricom.Myricom.map with
    | Ok map ->
      Format.printf "map: %a@." Graph.pp_stats map;
      verify map;
      artifacts map;
      Option.iter (fun f -> Dot.to_file map f; Format.printf "wrote %s@." f) dot;
      Option.iter (fun f -> Serial.save map f; Format.printf "wrote %s@." f) json
    | Error e ->
      failed := true;
      Format.printf "export failed: %s@." e));
  if !failed then 1 else 0

(* ------------------------------------------------------------------ *)
(* coverage: the budgeted-mapping observatory dashboard                *)

let coverage_budget_arg =
  let doc =
    "Probe budget for the dashboard run: a fraction of the full run's \
     probes (e.g. 0.3) or probes:N."
  in
  Arg.(value & opt string "0.3" & info [ "budget" ] ~docv:"FRAC|probes:N" ~doc)

let directed_arg =
  let doc =
    "Orient every switch-switch link in a seeded random direction before \
     mapping (the Goldstein directed-fabric variant) and report how probe \
     complexity degrades."
  in
  Arg.(value & flag & info [ "directed" ] ~doc)

(* Resolve a budgeted element back to the full map so the dashboard can
   print a working `explain` query: its discovery probe walks to the
   same place on the exported map (worm turns are frame-shift
   invariant). *)
let explain_hook full_map ~src (e : San_cover.Cover.element) =
  let open San_simnet in
  match e.San_cover.Cover.el_kind with
  | `Host ->
    let self = Graph.name full_map src in
    if e.San_cover.Cover.el_label = self then "-"
    else Printf.sprintf "route:%s->%s" self e.San_cover.Cover.el_label
  | `Switch -> (
    if e.San_cover.Cover.el_path = [] then
      (* the root switch: the mapper's cable neighbour on the map *)
      match Graph.wired_ports full_map src with
      | (_, (s, _)) :: _ -> "switch:" ^ Graph.name full_map s
      | [] -> "-"
    else
      let t = Worm.eval full_map ~src ~turns:e.San_cover.Cover.el_path in
      match t.Worm.outcome with
      | Worm.Stranded n -> "switch:" ^ Graph.name full_map n
      | _ -> "-")
  | `Link -> (
    if e.San_cover.Cover.el_path = [] then "-"
    else
      let t = Worm.eval full_map ~src ~turns:e.San_cover.Cover.el_path in
      match (t.Worm.outcome, List.rev t.Worm.hops) with
      | (Worm.Stranded _ | Worm.Arrived _), h :: _ ->
        let ((na, pa), (nb, pb)) = (h.Worm.exit_end, h.Worm.entry_end) in
        if Graph.is_host full_map na || Graph.is_host full_map nb then "-"
        else
          Printf.sprintf "link:%s.%d-%s.%d" (Graph.name full_map na) pa
            (Graph.name full_map nb) pb
      | _ -> "-")

let print_coverage_dashboard spec budget ~mapper_name
    (rep : San_cover.Cover.report) =
  let open San_cover.Cover in
  Format.printf "== coverage: %s @@ budget %s ==@." spec
    (budget_to_string budget);
  Format.printf "%a@.@." pp_summary rep;
  (* The frontier over the run: how much known-unexplored edge the
     exploration was still holding when the budget ran out. *)
  let series f = List.map f rep.r_trace in
  Format.printf "frontier   %s  (now %d)@."
    (San_util.Tablefmt.sparkline ~width:60
       (series (fun (t : San_mapper.Berkeley.trace_point) ->
            float_of_int t.San_mapper.Berkeley.frontier_length)))
    rep.r_frontier;
  Format.printf "hosts      %s  (%d/%d)@."
    (San_util.Tablefmt.sparkline ~width:60
       (series (fun (t : San_mapper.Berkeley.trace_point) ->
            float_of_int t.San_mapper.Berkeley.hosts_found)))
    rep.r_recovered_hosts rep.r_full_hosts;
  Format.printf "live nodes %s  (%d switch classes)@.@."
    (San_util.Tablefmt.sparkline ~width:60
       (series (fun (t : San_mapper.Berkeley.trace_point) ->
            float_of_int t.San_mapper.Berkeley.live_nodes)))
    (List.length rep.r_switches);
  let all = elements rep in
  let tbl = San_util.Tablefmt.create ~header:[ "confidence"; "elements"; "" ] in
  let n = List.length all in
  for d = 9 downto 0 do
    let lo = float_of_int d /. 10.0 in
    let hi = lo +. 0.1 in
    let count =
      List.length
        (List.filter
           (fun e ->
             e.el_conf >= lo && (e.el_conf < hi || (d = 9 && e.el_conf <= 1.0)))
           all)
    in
    let bar =
      String.make
        (if n = 0 then 0 else count * 40 / max 1 n)
        '#'
    in
    San_util.Tablefmt.add_row tbl
      [ Printf.sprintf "[%.1f,%.1f)" lo hi; string_of_int count; bar ]
  done;
  San_util.Tablefmt.print ~title:"confidence deciles" tbl;
  Format.printf "@.";
  let src =
    Option.value
      ~default:(-1)
      (Graph.host_by_name rep.r_full_map mapper_name)
  in
  let worst =
    List.filteri (fun i _ -> i < 10)
      (List.sort (fun a b -> compare a.el_conf b.el_conf) all)
  in
  let tbl =
    San_util.Tablefmt.create
      ~header:[ "element"; "conf"; "probes"; "merges"; "d1/d2"; "explain" ]
  in
  List.iter
    (fun e ->
      San_util.Tablefmt.add_row tbl
        [
          e.el_label;
          Printf.sprintf "%.3f" e.el_conf;
          string_of_int e.el_probes;
          string_of_int e.el_merges;
          string_of_int e.el_corrob;
          (if src < 0 then "-"
           else
             let q = explain_hook rep.r_full_map ~src e in
             if q = "-" then "-"
             else Printf.sprintf "san_map explain -t %s --why '%s'" spec q);
        ])
    worst;
  San_util.Tablefmt.print ~title:"top 10 least-confident elements" tbl

let run_coverage spec seed mapper_name budget_str directed depth out_dir trace
    metrics chrome prom =
  with_obs ~chrome ~prom ~trace ~metrics @@ fun () ->
  let b = parse_budget_exn budget_str in
  let g, depth_hint = build_topology_ex spec seed in
  let mapper = pick_mapper g mapper_name in
  let net = San_simnet.Network.create g in
  let depth =
    match (depth, depth_hint) with
    | Some d, _ -> San_mapper.Berkeley.Fixed d
    | None, _ when oracle_feasible g -> San_mapper.Berkeley.Oracle
    | None, Some d -> San_mapper.Berkeley.Fixed d
    | None, None -> San_mapper.Berkeley.Oracle
  in
  let dir =
    if directed then Some (San_cover.Directed.create ~seed g) else None
  in
  match San_cover.Cover.run ?directed:dir ~depth ~budget:b net ~mapper with
  | Error e ->
    Format.printf "coverage run failed: %s@." e;
    1
  | Ok rep ->
    print_coverage_dashboard spec b ~mapper_name:(Graph.name g mapper) rep;
    Option.iter
      (fun d ->
        Format.printf
          "@.directed fabric: %d oriented links, %d probes silenced by \
           orientation@."
          (San_cover.Directed.oriented_wires d)
          (San_cover.Directed.blocked d))
      dir;
    if out_dir <> "" then begin
      ensure_dir out_dir;
      let file =
        Filename.concat out_dir
          (Printf.sprintf "partial-map-%s-b%s.json" (spec_stem spec)
             (spec_stem (San_cover.Cover.budget_to_string b)))
      in
      let oc = open_out file in
      output_string oc
        (San_util.Json.to_string
           (San_cover.Cover.report_to_json ~spec ~seed rep));
      output_char oc '\n';
      close_out oc;
      Format.printf "@.wrote %s@." file
    end;
    (match rep.San_cover.Cover.r_subgraph with Ok () -> 0 | Error _ -> 1)

(* ------------------------------------------------------------------ *)
(* shard: N concurrent mappers, conflict-resolved merge               *)

let shards_arg =
  let doc = "Number of concurrent mapper shards." in
  Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N" ~doc)

let stale_arg =
  let doc =
    "Give shard $(docv) a stale-epoch view (a seeded recabling of two \
     overlap wires), forcing real merge conflicts. Enables the why \
     ledger so every resolution is justified by probe evidence."
  in
  Arg.(value & opt (some int) None & info [ "stale" ] ~docv:"IDX" ~doc)

let compare_solo_arg =
  let doc =
    "Also run the single-mapper baseline and check the merged map is \
     isomorphic to it (and report the probe and wall-clock ratios)."
  in
  Arg.(value & flag & info [ "compare-solo" ] ~doc)

let pp_resolution fmt (r : San_shard.Merge.resolution) =
  Format.fprintf fmt "resolved [%s] shard %d over shard %d: %s (%s)%s"
    r.San_shard.Merge.r_class r.San_shard.Merge.r_winner
    r.San_shard.Merge.r_loser r.San_shard.Merge.r_action
    r.San_shard.Merge.r_detail
    (if r.San_shard.Merge.r_did >= 0 then
       Printf.sprintf " [why #%d]" r.San_shard.Merge.r_did
     else "")

let run_shard spec seed mapper_name shards stale compare_solo json out_dir
    trace metrics chrome prom =
  with_obs ~chrome ~prom ~trace ~metrics @@ fun () ->
  with_why (stale <> None) @@ fun () ->
  let g, depth_hint = build_topology_ex spec seed in
  let root =
    Option.map
      (fun name ->
        match Graph.host_by_name g name with
        | Some h -> h
        | None -> failwith ("no such host: " ^ name))
      mapper_name
  in
  match San_shard.Runner.run ~seed ?root ?stale g ~shards with
  | Error e ->
    Format.printf "shard planning failed: %s@." e;
    1
  | Ok r -> (
    let open San_shard in
    Format.printf "plan: %a@." Region.pp r.Runner.plan;
    List.iter
      (fun s ->
        Format.printf
          "shard %d: mapper %-8s radius %d depth %2d probes %7d/%d%s %8.1f \
           ms simulated, %d map nodes%s@."
          s.Runner.s_idx s.Runner.s_mapper s.Runner.s_radius s.Runner.s_depth
          s.Runner.s_probes s.Runner.s_budget
          (if s.Runner.s_over_budget then " (OVER BUDGET)" else "")
          (s.Runner.s_elapsed_ns /. 1e6)
          s.Runner.s_map_nodes
          (if s.Runner.s_stale then " [stale view]" else ""))
      r.Runner.reports;
    List.iter
      (fun res -> Format.printf "%a@." pp_resolution res)
      r.Runner.resolutions;
    if r.Runner.dropped_views <> [] then
      Format.printf "dropped views: %s@."
        (String.concat ", "
           (List.map string_of_int r.Runner.dropped_views));
    Format.printf
      "sharded: %d probes total, %.1f ms simulated wall (slowest shard + \
       %.2f ms merge), %.2fx parallel speedup, coordinator %s@."
      r.Runner.total_probes
      (r.Runner.wall_ns /. 1e6)
      (r.Runner.merge_ns /. 1e6)
      (if r.Runner.wall_ns > 0.0 then r.Runner.sum_ns /. r.Runner.wall_ns
       else 1.0)
      r.Runner.coordinator;
    match r.Runner.map with
    | Error e ->
      Format.printf "merge FAILED: %s@." e;
      1
    | Ok merged ->
      Format.printf "merged map: %a@." Graph.pp_stats merged;
      let failed = ref false in
      (match
         Iso.check ~map:merged ~actual:g
           ~exclude:(Core_set.separated_set g) ()
       with
      | Ok () -> Format.printf "verified: merged map isomorphic to N - F@."
      | Error e ->
        failed := true;
        Format.printf "verification FAILED: %s@." e);
      if compare_solo then begin
        let net = San_simnet.Network.create g in
        let mapper =
          match root with
          | Some h -> h
          | None -> List.hd (Graph.hosts g)
        in
        let depth =
          if oracle_feasible g then San_mapper.Berkeley.Oracle
          else
            match depth_hint with
            | Some d -> San_mapper.Berkeley.Fixed d
            | None -> San_mapper.Berkeley.Oracle
        in
        let s = San_mapper.Berkeley.run ~depth net ~mapper in
        let solo_probes = San_mapper.Berkeley.total_probes s in
        Format.printf
          "solo baseline: %d probes, %.1f ms simulated, depth %d@."
          solo_probes
          (s.San_mapper.Berkeley.elapsed_ns /. 1e6)
          s.San_mapper.Berkeley.depth_used;
        (match s.San_mapper.Berkeley.map with
        | Error e ->
          failed := true;
          Format.printf "solo baseline export failed: %s@." e
        | Ok solo -> (
          match Iso.check ~map:merged ~actual:solo () with
          | Ok () ->
            Format.printf "verified: merged map isomorphic to solo map@."
          | Error e ->
            failed := true;
            Format.printf "solo comparison FAILED: %s@." e));
        if s.San_mapper.Berkeley.elapsed_ns > 0.0 then
          Format.printf
            "ratios vs solo: %.2fx probes, %.2fx simulated wall@."
            (float_of_int r.Runner.total_probes /. float_of_int solo_probes)
            (r.Runner.wall_ns /. s.San_mapper.Berkeley.elapsed_ns)
      end;
      if out_dir <> "" then begin
        ensure_dir out_dir;
        let stem =
          Filename.concat out_dir ("shard-map-" ^ spec_stem spec)
        in
        Serial.save merged (stem ^ ".json");
        Dot.to_file merged (stem ^ ".dot");
        Format.printf "wrote %s.json and %s.dot@." stem stem
      end;
      Option.iter
        (fun f ->
          Serial.save merged f;
          Format.printf "wrote %s@." f)
        json;
      if !failed then 1 else 0)

(* ------------------------------------------------------------------ *)
(* gen: emit a generated fabric as a replayable artifact              *)

let run_gen spec seed out_dir dot json =
  match String.split_on_char ':' spec with
  | "fabric" :: rest when rest <> [] -> (
    let arg = String.concat ":" rest in
    match San_fabric.Fabric.parse arg with
    | Error e ->
      Format.eprintf "%s@." e;
      2
    | Ok p ->
      let g = p.San_fabric.Fabric.p_build ~seed in
      let header = San_fabric.Fabric.header_lines p ~seed g in
      List.iter (fun l -> Format.printf "# %s@." l) header;
      let dot_text =
        String.concat "" (List.map (fun l -> "// " ^ l ^ "\n") header)
        ^ Dot.to_string ~graph_name:p.San_fabric.Fabric.p_name g
      in
      let write_text file text =
        let oc = open_out file in
        output_string oc text;
        close_out oc;
        Format.printf "wrote %s@." file
      in
      if out_dir <> "" then begin
        ensure_dir out_dir;
        let stem =
          Filename.concat out_dir
            (Printf.sprintf "fabric-%s-seed%d"
               (spec_stem p.San_fabric.Fabric.p_name)
               seed)
        in
        write_text (stem ^ ".spec")
          (String.concat "" (List.map (fun l -> "# " ^ l ^ "\n") header));
        write_text (stem ^ ".dot") dot_text
      end;
      Option.iter (fun f -> write_text f dot_text) dot;
      Option.iter
        (fun f ->
          Serial.save g f;
          Format.printf "wrote %s@." f)
        json;
      0)
  | _ ->
    Format.eprintf
      "gen needs a generated-fabric spec: -t fabric:PRESET or -t \
       fabric:key=value,... (presets: %s)@."
      (String.concat ", "
         (List.map
            (fun p -> p.San_fabric.Fabric.p_name)
            San_fabric.Fabric.presets));
    2

(* ------------------------------------------------------------------ *)
(* routes                                                              *)

let loads_arg =
  let doc = "Print the N hottest channels." in
  Arg.(value & opt int 0 & info [ "loads" ] ~docv:"N" ~doc)

let spread_arg =
  let doc =
    "Spread equal-cost routes randomly over parallel wires and \
     equal-length paths (seeded load balancing). Without it the table \
     is deterministic: the same fabric always yields byte-identical \
     routes."
  in
  Arg.(value & flag & info [ "spread" ] ~doc)

let run_routes spec seed mapper_name algo loads spread trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let g = build_topology spec seed in
  let mapper = pick_mapper g mapper_name in
  let failed = ref false in
  let map_result =
    match algo with
    | `Berkeley ->
      let net = San_simnet.Network.create g in
      (San_mapper.Berkeley.run net ~mapper).San_mapper.Berkeley.map
    | `Myricom -> (San_myricom.Myricom.run g ~mapper).San_myricom.Myricom.map
  in
  (match map_result with
  | Error e ->
    failed := true;
    Format.printf "mapping failed: %s@." e
  | Ok map ->
    let rng = if spread then Some (San_util.Prng.create seed) else None in
    let table = San_routing.Routes.compute ?rng map in
    let st = San_routing.Routes.length_stats table in
    Format.printf "routes: %d pairs, turns %d / %.2f / %d (min/avg/max)@."
      st.San_routing.Routes.pairs st.San_routing.Routes.min_len
      st.San_routing.Routes.avg_len st.San_routing.Routes.max_len;
    Format.printf "delivery on actual network: %s@."
      (match San_routing.Routes.verify_delivery ~against:g table with
      | Ok () -> "ok"
      | Error e ->
        failed := true;
        e);
    Format.printf "deadlock freedom: %s@."
      (match San_routing.Deadlock.check_routes table with
      | Ok () -> "channel dependency graph acyclic"
      | Error e ->
        failed := true;
        e);
    if loads > 0 then
      San_routing.Routes.channel_loads table
      |> List.filteri (fun i _ -> i < loads)
      |> List.iter (fun ((n, p), l) ->
             Format.printf "  channel (%s, port %d): %d routes@."
               (let nm = Graph.name map n in
                if nm = "" then string_of_int n else nm)
               p l));
  if !failed then 1 else 0

(* ------------------------------------------------------------------ *)
(* diff                                                                *)

let map_file pos_name =
  Arg.(required & pos pos_name (some string) None & info [] ~docv:"MAP.json")

let run_diff old_file new_file =
  match (Serial.load old_file, Serial.load new_file) with
  | Error e, _ -> Format.printf "%s: %s@." old_file e; 1
  | _, Error e -> Format.printf "%s: %s@." new_file e; 1
  | Ok old_map, Ok new_map -> (
    match Diff.diff ~old_map ~new_map with
    | [] ->
      Format.printf "maps are identical (up to port offsets)@.";
      0
    | changes ->
      List.iter (fun c -> Format.printf "%a@." Diff.pp_change c) changes;
      0)

(* ------------------------------------------------------------------ *)
(* verify: incremental check of a saved map against a live topology    *)

let prev_arg =
  let doc = "Previously saved map (JSON) to verify against the live fabric." in
  Arg.(required & opt (some string) None & info [ "previous" ] ~docv:"FILE" ~doc)

let run_verify spec seed mapper_name prev_file json trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let g = build_topology spec seed in
  let mapper = pick_mapper g mapper_name in
  match Serial.load prev_file with
  | Error e -> Format.printf "%s: %s@." prev_file e; 1
  | Ok previous ->
    let net = San_simnet.Network.create g in
    let r = San_mapper.Incremental.run net ~mapper ~previous in
    (match r.San_mapper.Incremental.verdict with
    | San_mapper.Incremental.Unchanged ->
      Format.printf "map verified unchanged: %d probes, %.1f ms simulated@."
        r.San_mapper.Incremental.verify_probes
        (r.San_mapper.Incremental.total_elapsed_ns /. 1e6)
    | San_mapper.Incremental.Changed n ->
      Format.printf
        "%d discrepancies; remapped in full (total %.1f ms simulated)@." n
        (r.San_mapper.Incremental.total_elapsed_ns /. 1e6));
    let failed = ref false in
    (match r.San_mapper.Incremental.map with
    | Error e ->
      failed := true;
      Format.printf "map export failed: %s@." e
    | Ok m ->
      (match
         Iso.check ~map:m ~actual:g ~exclude:(Core_set.separated_set g) ()
       with
      | Ok () -> Format.printf "final map isomorphic to N - F@."
      | Error e ->
        failed := true;
        Format.printf "final map verification FAILED: %s@." e);
      Option.iter
        (fun f ->
          Serial.save m f;
          Format.printf "wrote %s@." f)
        json);
    if !failed then 1 else 0

(* ------------------------------------------------------------------ *)
(* fuzz: randomized property checking with shrinking                   *)

let cases_arg =
  let doc = "Number of random fabrics to generate and check." in
  Arg.(value & opt int 200 & info [ "cases" ] ~docv:"N" ~doc)

let prop_arg =
  let doc =
    "Check only this property (repeatable). One of: "
    ^ String.concat ", " San_check.Props.names ^ "."
  in
  Arg.(value & opt_all string [] & info [ "prop" ] ~docv:"NAME" ~doc)

let replay_arg =
  let doc =
    "Replay a single case by its case seed (printed in a counterexample \
     report) instead of generating fresh cases."
  in
  Arg.(value & opt (some int) None & info [ "replay" ] ~docv:"CASE_SEED" ~doc)

let artifacts_arg =
  let doc =
    "Write each counterexample as DOT plus a replay command under $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "artifacts" ] ~docv:"DIR" ~doc)

let shrink_budget_arg =
  let doc = "Maximum shrink attempts per counterexample." in
  Arg.(
    value
    & opt int San_check.Runner.default_shrink_budget
    & info [ "shrink-budget" ] ~docv:"N" ~doc)

let progress_arg =
  let doc = "Print a progress line every N cases (0: silent)." in
  Arg.(value & opt int 100 & info [ "progress" ] ~docv:"N" ~doc)

let write_artifacts dir (failures : San_check.Runner.failure list) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun i (f : San_check.Runner.failure) ->
      let stem =
        Filename.concat dir (Printf.sprintf "counterexample-%02d-%s" i f.San_check.Runner.f_prop)
      in
      let dot = stem ^ ".dot" in
      let oc = open_out dot in
      output_string oc (San_check.Runner.dot_of_failure f);
      close_out oc;
      let seed_file = stem ^ ".seed" in
      let oc = open_out seed_file in
      Printf.fprintf oc
        "prop: %s\ncase_seed: %d\nreplay: san_map fuzz --replay %d --prop %s\nerror: %s\n"
        f.San_check.Runner.f_prop f.San_check.Runner.f_case_seed
        f.San_check.Runner.f_case_seed f.San_check.Runner.f_prop
        f.San_check.Runner.f_shrunk_error;
      close_out oc;
      Format.printf "wrote %s and %s@." dot seed_file)
    failures

let run_fuzz cases seed props replay artifacts shrink_budget progress trace
    metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let props = if props = [] then None else Some props in
  let unknown =
    match props with
    | None -> []
    | Some ps -> List.filter (fun p -> not (List.mem p San_check.Props.names)) ps
  in
  if unknown <> [] then begin
    Format.eprintf "unknown propert%s %s (try: %s)@."
      (if List.length unknown = 1 then "y" else "ies")
      (String.concat ", " unknown)
      (String.concat ", " San_check.Props.names);
    2
  end
  else
  match replay with
  | Some case_seed ->
    let failures =
      San_check.Runner.run_case ?props ~shrink_budget ~case_seed ()
    in
    Format.printf "replay of case %d (%a):@." case_seed San_check.Fuzz_gen.pp
      (San_check.Fuzz_gen.gen ~seed:case_seed);
    if failures = [] then begin
      Format.printf "all properties hold@.";
      0
    end
    else begin
      List.iter
        (fun f -> Format.printf "%a@." San_check.Runner.pp_failure f)
        failures;
      Option.iter (fun dir -> write_artifacts dir failures) artifacts;
      1
    end
  | None ->
    let on_progress =
      if progress <= 0 then None
      else
        Some
          (fun i ->
            if i mod progress = 0 then
              Format.printf "... %d/%d cases@." i cases)
    in
    let report =
      San_check.Runner.run ?props ~shrink_budget ?on_progress ~cases ~seed ()
    in
    Format.printf "%a@." San_check.Runner.pp_report report;
    (match report.San_check.Runner.r_failures with
    | [] -> 0
    | failures ->
      Option.iter (fun dir -> write_artifacts dir failures) artifacts;
      1)

(* ------------------------------------------------------------------ *)
(* daemon: the epoch-driven control-plane loop                         *)

let epochs_arg =
  let doc = "Number of control-plane epochs to run." in
  Arg.(value & opt int 10 & info [ "epochs" ] ~docv:"N" ~doc)

let schedule_arg =
  let doc =
    "Scripted faults, comma-separated EPOCH:ACTION entries. Actions: cut | \
     cut=N | flap | flap=DOWN_EPOCHS | isolate | add | kill=HOST | \
     kill-leader | revive=HOST | storm=LINKSxHOSTS | upgrade=EPOCHS | \
     partition=EPOCHS | flapstorm=COUNTxEPOCHS. Example: \
     2:cut,5:flap=2,8:kill-leader."
  in
  Arg.(value & opt string "" & info [ "schedule" ] ~docv:"SCRIPT" ~doc)

let scenario_arg =
  let doc =
    Printf.sprintf
      "Named adversarial schedule preset scaled to the run length: %s. \
       Mutually exclusive with $(b,--schedule)."
      (String.concat ", "
         (List.map (Printf.sprintf "$(b,%s)")
            San_service.Schedule.scenario_names))
  in
  Arg.(value & opt string "" & info [ "scenario" ] ~docv:"NAME" ~doc)

let load_arg =
  let doc =
    "Drive background worm load while the daemon runs: $(docv) worms per \
     host per simulated millisecond ride the installed routes every \
     steady-state epoch, and the measured contention feeds that epoch's \
     probes. 0 disables."
  in
  (* parsed by [resolve_load], not a float conv, so a malformed value
     is a one-line usage error naming the spec (exit 2) like the other
     spec grammars, not a cmdliner parse failure *)
  Arg.(value & opt string "0" & info [ "load" ] ~docv:"OFFERED" ~doc)

let load_pattern_arg =
  let doc =
    "Background load shape: $(b,uniform), $(b,hotspot) or $(b,incast)."
  in
  Arg.(
    value & opt string "uniform" & info [ "load-pattern" ] ~docv:"PATTERN" ~doc)

let slo_arg =
  let doc =
    "Convergence SLOs to track, comma-separated \
     METRIC:pNN<LIMIT[@MAXLOAD] specs (metrics: converge, epoch, drop, \
     coverage; e.g. converge:p99<2e8\\@0.3). Default: the built-in \
     objectives when $(b,--load) is on, none otherwise."
  in
  Arg.(value & opt string "" & info [ "slo" ] ~docv:"SPECS" ~doc)

let resolve_schedule ~epochs schedule scenario =
  match (schedule, scenario) with
  | "", "" -> Ok San_service.Schedule.empty
  | _, "" -> San_service.Schedule.parse schedule
  | "", _ ->
    Result.map San_service.Schedule.of_list
      (San_service.Schedule.scenario ~epochs scenario)
  | _, _ -> Error "--schedule and --scenario are mutually exclusive"

let resolve_load load pattern =
  match float_of_string_opt (String.trim load) with
  | None ->
    Error
      (Printf.sprintf "bad load %S: expected worms/host/ms as a number" load)
  | Some f when f <= 0.0 -> Ok None
  | Some f -> (
    match San_slo.Load.pattern_of_string pattern with
    | None -> Error (Printf.sprintf "unknown load pattern %S" pattern)
    | Some p -> Ok (Some (San_slo.Load.spec ~pattern:p f)))

let resolve_slos slo_str load =
  if slo_str = "" then Ok (if load > 0.0 then San_slo.Slo.defaults else [])
  else
    List.fold_left
      (fun acc s ->
        match (acc, San_slo.Slo.parse (String.trim s)) with
        | (Error _ as e), _ -> e
        | _, Error e -> Error e
        | Ok l, Ok o -> Ok (l @ [ o ]))
      (Ok [])
      (String.split_on_char ',' slo_str)

let retries_arg =
  let doc = "Distribution re-send passes for missed route slices." in
  Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)

let quiet_arg =
  let doc = "Print only the final summary, not per-epoch reports." in
  Arg.(value & flag & info [ "quiet" ] ~doc)

let daemon_shards_arg =
  let doc =
    "Run full remaps (cold start and stale-map fallback) as $(docv) \
     concurrent sharded mappers instead of one global mapper."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let pp_epoch_report (r : San_service.Daemon.epoch_report) =
  let open San_service in
  Format.printf "epoch %3d  %-8s %-13s [%s]  probes %5d  coverage %d/%d%s@."
    r.Daemon.epoch r.Daemon.leader
    (match r.Daemon.verdict with
    | Daemon.Cold_start -> "cold-start"
    | Daemon.Verified -> "verified"
    | Daemon.Changed d -> Printf.sprintf "changed(%d)" d
    | Daemon.Backing_off -> "backing-off"
    | Daemon.Halted -> "halted")
    (String.concat ">" (List.map Daemon.phase_to_string r.Daemon.phases))
    r.Daemon.probes r.Daemon.hosts_covered r.Daemon.hosts_total
    (match r.Daemon.dist with
    | None -> ""
    | Some d ->
      Printf.sprintf "  shipped %dB (full %dB, %d unchanged, %d missed)"
        d.Delta.sent_bytes d.Delta.full_sent_bytes
        d.Delta.plan.Delta.unchanged_hosts
        d.Delta.dist.San_routing.Distribute.hosts_missed);
  List.iter (fun ev -> Format.printf "           * %s@." ev) r.Daemon.events;
  (match r.Daemon.load with
  | None -> ()
  | Some l ->
    Format.printf
      "           ~ load %s %.2f/host/ms: %d worms, drop %.3f, loss \
       %.4f/crossing@."
      (San_slo.Load.pattern_to_string l.San_slo.Load.r_pattern)
      l.San_slo.Load.r_offered l.San_slo.Load.r_injected
      l.San_slo.Load.r_drop_rate l.San_slo.Load.r_loss_per_crossing);
  List.iter
    (fun a -> Format.printf "           ! slo raised: %s@." a)
    r.Daemon.slo_raised;
  List.iter
    (fun a -> Format.printf "           . slo cleared: %s@." a)
    r.Daemon.slo_cleared

let run_daemon spec seed epochs schedule scenario load lpat slo retries shards
    quiet out_dir trace metrics chrome prom =
  let flight = out_dir <> "" in
  with_obs ~force:flight ~chrome ~prom ~trace ~metrics @@ fun () ->
  with_why flight @@ fun () ->
  let open San_service in
  let g = build_topology spec seed in
  match
    let ( let* ) = Result.bind in
    let* schedule = resolve_schedule ~epochs schedule scenario in
    let* load = resolve_load load lpat in
    let* slos = resolve_slos slo (match load with Some _ -> 1.0 | None -> 0.0) in
    Ok (schedule, load, slos)
  with
  | Error e -> Format.eprintf "san_map: bad arguments: %s@." e; 2
  | Ok (schedule, load, slos) -> (
    let config =
      {
        Daemon.default_config with
        Daemon.dist_retries = retries;
        seed;
        shards;
        flight_dir = (if flight then Some out_dir else None);
        load;
        slos;
      }
    in
    let on_epoch = if quiet then fun _ -> () else pp_epoch_report in
    match Daemon.run ~config ~schedule ~on_epoch ~epochs g with
    | Error e -> Format.printf "daemon: %s@." e; 1
    | Ok o ->
      Format.printf
        "daemon: %d epochs, final %s; %d remaps, %d elections, %d probes@."
        (List.length o.Daemon.reports)
        (Daemon.phase_to_string o.Daemon.final_phase)
        o.Daemon.remaps o.Daemon.elections o.Daemon.total_probes;
      Format.printf
        "distribution: %d B shipped as deltas vs %d B full (%.1f%% saved)@."
        o.Daemon.delta_bytes o.Daemon.full_bytes
        (if o.Daemon.full_bytes = 0 then 0.0
         else
           100.0
           *. (1.0
              -. float_of_int o.Daemon.delta_bytes
                 /. float_of_int o.Daemon.full_bytes));
      List.iter
        (fun (i : Daemon.incident) ->
          Format.printf
            "incident: detected epoch %d, resolved epoch %d, converged in \
             %.2f ms simulated@."
            i.Daemon.detected_epoch i.Daemon.resolved_epoch
            (i.Daemon.converge_ns /. 1e6))
        o.Daemon.incidents;
      List.iter
        (fun st -> Format.printf "slo: %a@." San_slo.Slo.pp_status st)
        o.Daemon.slo;
      if flight then
        Format.printf "flight recordings under %s/ (read with `san_map \
                       postmortem')@." out_dir;
      0)

(* ------------------------------------------------------------------ *)
(* health: the daemon run as a fabric-health dashboard                 *)

let link_name g ((a, pa), (b, pb)) =
  let name n =
    let s = Graph.name g n in
    if s = "" then Printf.sprintf "sw%d" n else s
  in
  Printf.sprintf "%s:%d -- %s:%d" (name a) pa (name b) pb

let print_dashboard spec schedule (o : San_service.Daemon.outcome) fabric =
  let open San_service in
  let module H = San_telemetry.Health in
  let h = o.Daemon.health in
  let spark name f unit_ =
    let series = List.map f h.H.r_samples in
    match series with
    | [] -> ()
    | _ ->
      let last = List.nth series (List.length series - 1) in
      Format.printf "  %-12s %s  last %.2f%s@." name
        (San_util.Tablefmt.sparkline ~width:60 series)
        last unit_
  in
  Format.printf "fabric health: %s over %d epochs%s@." spec
    (List.length o.Daemon.reports)
    (if schedule = "" then "" else Printf.sprintf " (schedule %s)" schedule);
  spark "coverage" (fun s -> s.H.coverage) "";
  spark "drop rate" (fun s -> s.H.probe_drop_rate) "";
  spark "delta bytes" (fun s -> float_of_int s.H.delta_bytes) " B";
  spark "epoch ms" (fun s -> s.H.epoch_ms) " ms";
  (match h.H.r_history with
  | [] -> Format.printf "alerts: none@."
  | alerts ->
    let t =
      San_util.Tablefmt.create
        ~header:[ "alert"; "metric"; "raised"; "cleared"; "worst" ]
    in
    List.iter
      (fun (a : H.alert) ->
        San_util.Tablefmt.add_row t
          [
            a.H.a_rule.H.rule_name;
            H.metric_name a.H.a_rule.H.metric;
            string_of_int a.H.raised_epoch;
            (match a.H.cleared_epoch with
            | Some e -> string_of_int e
            | None -> "ACTIVE");
            Printf.sprintf "%.3f" a.H.worst;
          ])
      alerts;
    San_util.Tablefmt.print ~title:"alerts" t);
  (match o.Daemon.slo with
  | [] -> ()
  | statuses ->
    let module Slo = San_slo.Slo in
    let t =
      San_util.Tablefmt.create
        ~header:[ "objective"; "burn"; "bad/eligible"; "streak"; "state" ]
    in
    List.iter
      (fun (st : Slo.status) ->
        San_util.Tablefmt.add_row t
          [
            Slo.to_string st.Slo.st_objective;
            Printf.sprintf "%.2f" st.Slo.st_burn_rate;
            Printf.sprintf "%d/%d" st.Slo.st_bad st.Slo.st_eligible;
            string_of_int st.Slo.st_streak;
            (if st.Slo.st_alerting then "ALERTING" else "ok");
          ])
      statuses;
    San_util.Tablefmt.print ~title:"slo burn" t);
  match o.Daemon.map with
  | None -> ()
  | Some g ->
    let links = San_telemetry.Fabric_stats.links fabric g in
    let t =
      San_util.Tablefmt.create
        ~header:
          [ "link"; "transits"; "occupied ms"; "blocked ms"; "coll"; "drops";
            "util" ]
    in
    List.iteri
      (fun i (l : San_telemetry.Fabric_stats.link) ->
        if i < 10 then
          San_util.Tablefmt.add_row t
            [
              link_name g l.San_telemetry.Fabric_stats.ends;
              string_of_int l.San_telemetry.Fabric_stats.l_transits;
              Printf.sprintf "%.3f"
                (l.San_telemetry.Fabric_stats.l_occupied_ns /. 1e6);
              Printf.sprintf "%.3f"
                (l.San_telemetry.Fabric_stats.l_blocked_ns /. 1e6);
              string_of_int l.San_telemetry.Fabric_stats.l_collisions;
              string_of_int l.San_telemetry.Fabric_stats.l_drops;
              Printf.sprintf "%.2f" l.San_telemetry.Fabric_stats.utilization;
            ])
      links;
    San_util.Tablefmt.print ~title:"hottest links" t

let run_health spec seed epochs schedule scenario load lpat slo retries dot
    out_dir trace metrics chrome prom =
  let flight = out_dir <> "" in
  with_obs ~force:true ~chrome ~prom ~trace ~metrics @@ fun () ->
  with_why flight @@ fun () ->
  let open San_service in
  let g = build_topology spec seed in
  match
    let ( let* ) = Result.bind in
    let* parsed = resolve_schedule ~epochs schedule scenario in
    let* load_spec = resolve_load load lpat in
    let* slos =
      resolve_slos slo (match load_spec with Some _ -> 1.0 | None -> 0.0)
    in
    Ok (parsed, load_spec, slos)
  with
  | Error e -> Format.eprintf "san_map: bad arguments: %s@." e; 2
  | Ok (parsed, load_spec, slos) -> (
    let fabric = San_telemetry.Fabric_stats.create () in
    San_telemetry.Fabric_stats.install fabric;
    Fun.protect ~finally:San_telemetry.Fabric_stats.uninstall @@ fun () ->
    let config =
      {
        Daemon.default_config with
        Daemon.dist_retries = retries;
        seed;
        flight_dir = (if flight then Some out_dir else None);
        load = load_spec;
        slos;
      }
    in
    match Daemon.run ~config ~schedule:parsed ~epochs g with
    | Error e -> Format.printf "daemon: %s@." e; 1
    | Ok o ->
      print_dashboard spec schedule o fabric;
      (match (dot, o.Daemon.map) with
      | Some f, Some m ->
        Dot.to_file ~graph_name:spec
          ~heat:(San_telemetry.Fabric_stats.heat fabric m)
          m f;
        Format.printf "wrote heat map %s@." f
      | Some f, None ->
        Format.printf "no map at exit; skipped heat map %s@." f
      | None, _ -> ());
      0)

(* ------------------------------------------------------------------ *)
(* explain / blame / postmortem: the provenance ledger surfaced        *)

let why_arg =
  let doc =
    "The map fact to explain: $(b,switch:NAME) (map name m<vid> or the \
     actual switch's name), $(b,link:A.P-B.Q) with each end written \
     NAME.PORT (e.g. $(b,link:h0.0-m1.0)), $(b,route:H1->H2), or \
     $(b,conflicts) (sharded runs: justify every merge-conflict \
     resolution; combine with $(b,--shards)/$(b,--stale))."
  in
  Arg.(required & opt (some string) None & info [ "why" ] ~docv:"QUERY" ~doc)

let write_dot_roots snap roots = function
  | None -> ()
  | Some f ->
    let oc = open_out f in
    output_string oc (San_why.Explain.dot_of_roots snap roots);
    close_out oc;
    Format.printf "wrote %s@." f

(* Sharded explain: re-run the sharded mapping with the ledger on and
   print the justification tree of every merge-conflict resolution.
   Only the [conflicts] query makes sense here — {!San_why.Replay}
   rebuilds a model from vid-keyed notes, and with N shard models
   appending to one ledger those ids collide, so switch/link/route
   queries stay solo-only. *)
let run_explain_conflicts g seed root shards stale =
  match San_shard.Runner.run ~seed ?root ?stale g ~shards with
  | Error e ->
    Format.printf "shard planning failed: %s@." e;
    1
  | Ok r -> (
    match r.San_shard.Runner.resolutions with
    | [] ->
      Format.printf "no merge conflicts: %d shard views agreed%s@." shards
        (if stale = None then
           " (quiescent shards never contradict; try --stale IDX)"
         else "");
      0
    | resolutions ->
      let snap = San_why.Why.capture () in
      Format.printf "%d merge conflict%s resolved:@."
        (List.length resolutions)
        (if List.length resolutions = 1 then "" else "s");
      List.iter
        (fun res ->
          Format.printf "%a@." pp_resolution res;
          if res.San_shard.Merge.r_did >= 0 then
            San_why.Explain.pp_roots snap Format.std_formatter
              [ res.San_shard.Merge.r_did ])
        resolutions;
      0)

let run_explain spec seed mapper_name query shards stale dot =
  with_why true @@ fun () ->
  let g = build_topology spec seed in
  let mapper = pick_mapper g mapper_name in
  if query = "conflicts" then
    run_explain_conflicts g seed
      (if mapper_name = None then None else Some mapper)
      (max shards 2) stale
  else
  let net = San_simnet.Network.create g in
  let r = San_mapper.Berkeley.run net ~mapper in
  match r.San_mapper.Berkeley.map with
  | Error e ->
    Format.printf "mapping failed: %s@." e;
    1
  | Ok map -> (
    (* Computing routes up front records the UP*/DOWN* orientation
       entries, so link and route explanations can cite them. *)
    let table = San_routing.Routes.compute map in
    let snap = San_why.Why.capture () in
    let replay = San_why.Replay.build snap in
    match San_why.Explain.parse_query query with
    | Error e ->
      Format.eprintf "%s@." e;
      2
    | Ok (San_why.Explain.Route (src, dst)) -> (
      match (Graph.host_by_name map src, Graph.host_by_name map dst) with
      | None, _ ->
        Format.printf "%s: no such host in the map@." src;
        1
      | _, None ->
        Format.printf "%s: no such host in the map@." dst;
        1
      | Some s, Some d -> (
        match San_routing.Routes.route table ~src:s ~dst:d with
        | None ->
          Format.printf "no route %s -> %s@." src dst;
          1
        | Some turns ->
          let tr = San_simnet.Worm.eval map ~src:s ~turns in
          let hops = tr.San_simnet.Worm.hops in
          Format.printf "route %s -> %s: turns [%s], %d hops@." src dst
            (String.concat ";" (List.map string_of_int turns))
            (List.length hops);
          let per_hop = San_why.Explain.route_roots ~map ~snap ~replay ~hops in
          List.iter
            (fun (desc, roots) ->
              Format.printf "%s@." desc;
              San_why.Explain.pp_roots snap Format.std_formatter roots)
            per_hop;
          write_dot_roots snap (List.concat_map snd per_hop) dot;
          0))
    | Ok q -> (
      match San_why.Explain.roots_of ~actual:g ~map ~snap ~replay q with
      | Error e ->
        Format.printf "%s@." e;
        1
      | Ok (header, roots) ->
        Format.printf "%s@." header;
        San_why.Explain.pp_roots snap Format.std_formatter roots;
        write_dot_roots snap roots dot;
        0))

let old_spec_arg =
  let doc = "Topology spec of the $(i,old) run (same grammar as -t)." in
  Arg.(required & opt (some string) None & info [ "old" ] ~docv:"SPEC" ~doc)

let new_spec_arg =
  let doc = "Topology spec of the $(i,new) run (same grammar as -t)." in
  Arg.(required & opt (some string) None & info [ "new" ] ~docv:"SPEC" ~doc)

let run_blame old_spec new_spec seed mapper_name =
  with_why true @@ fun () ->
  let run spec =
    let g = build_topology spec seed in
    let mapper = pick_mapper g mapper_name in
    let net = San_simnet.Network.create g in
    let r = San_mapper.Berkeley.run net ~mapper in
    match r.San_mapper.Berkeley.map with
    | Error e -> Error (Printf.sprintf "%s: mapping failed: %s" spec e)
    | Ok map ->
      Ok { San_why.Blame.b_map = map; b_snap = San_why.Why.capture () }
  in
  match run old_spec with
  | Error e ->
    Format.printf "%s@." e;
    1
  | Ok old_ -> (
    match run new_spec with
    | Error e ->
      Format.printf "%s@." e;
      1
    | Ok new_ -> (
      match San_why.Blame.run ~old_ ~new_ with
      | [] ->
        Format.printf "maps agree: nothing to blame@.";
        0
      | attrs ->
        Format.printf "%d change%s from %s to %s:@." (List.length attrs)
          (if List.length attrs = 1 then "" else "s")
          old_spec new_spec;
        List.iter
          (fun a -> Format.printf "%a@." San_why.Blame.pp_attribution a)
          attrs;
        0))

let flight_file_arg =
  Arg.(
    required & pos 0 (some string) None & info [] ~docv:"FLIGHT.jsonl")

let run_postmortem file =
  match San_why.Postmortem.read file with
  | Error e ->
    Format.printf "%s: %s@." file e;
    1
  | Ok t ->
    Format.printf "%a" San_why.Postmortem.pp t;
    0

(* ------------------------------------------------------------------ *)

let topo_cmd =
  Cmd.v
    (Cmd.info "topo" ~doc:"Generate a topology and print its statistics")
    Term.(const run_topo $ topo_arg $ seed_arg $ dot_arg)

let gen_cmd =
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a parametric fabric and emit it as replayable artifacts \
          (spec header + DOT, optional JSON)")
    Term.(
      const run_gen $ topo_arg $ seed_arg $ out_dir_arg $ dot_arg $ json_arg)

let map_cmd =
  Cmd.v
    (Cmd.info "map" ~doc:"Discover a topology with in-band probes")
    Term.(
      const run_map $ topo_arg $ seed_arg $ mapper_arg $ algo_arg $ model_arg
      $ depth_arg $ policy_arg $ budget_arg $ dot_arg $ json_arg $ out_dir_arg
      $ trace_arg $ metrics_arg $ chrome_arg $ prom_arg)

let coverage_cmd =
  Cmd.v
    (Cmd.info "coverage"
       ~doc:
         "Map under a probe budget and print the coverage observatory \
          dashboard (frontier sparkline, confidence deciles, least-confident \
          elements with explain hooks)")
    Term.(
      const run_coverage $ topo_arg $ seed_arg $ mapper_arg
      $ coverage_budget_arg $ directed_arg $ depth_arg $ out_dir_arg
      $ trace_arg $ metrics_arg $ chrome_arg $ prom_arg)

let shard_cmd =
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Map a fabric with N concurrent mapper shards and a \
          conflict-resolved merge")
    Term.(
      const run_shard $ topo_arg $ seed_arg $ mapper_arg $ shards_arg
      $ stale_arg $ compare_solo_arg $ json_arg $ out_dir_arg $ trace_arg
      $ metrics_arg $ chrome_arg $ prom_arg)

(* ------------------------------------------------------------------ *)
(* serve: the route-query plane                                        *)

let queries_arg =
  let doc = "Route queries to answer through the zero-allocation path." in
  Arg.(value & opt int 200_000 & info [ "queries" ] ~docv:"N" ~doc)

let serve_dsts_arg =
  let doc =
    "Destination working-set size (a seeded sample of hosts); bounds \
     resident per-destination tables and therefore serving memory."
  in
  Arg.(value & opt int 24 & info [ "dsts" ] ~docv:"N" ~doc)

let serve_check_arg =
  let doc =
    "Verify the serving plane: every served route in the working set \
     must deliver its worm, and the set must be deadlock-free."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let run_serve spec seed queries dsts check load lpat trace metrics =
  with_obs ~trace ~metrics @@ fun () ->
  let g = build_topology spec seed in
  let hosts = Array.of_list (Graph.hosts g) in
  let nh = Array.length hosts in
  if nh < 2 then begin
    Format.eprintf "serve: topology %s has %d host(s); need at least 2@." spec
      nh;
    2
  end
  else begin
    match resolve_load load lpat with
    | Error e ->
      Format.eprintf "san_map: %s@." e;
      2
    | Ok load_spec ->
      let rng = San_util.Prng.create seed in
      let ndst = max 1 (min dsts nh) in
      let shuffled = Array.copy hosts in
      San_util.Prng.shuffle rng shuffled;
      let dst_set = Array.sub shuffled 0 ndst in
      (* Traffic awareness: measure link heat and loss under the
         offered load riding the deterministic table, then serve
         equal-cost choices away from both. *)
      let prefer =
        match load_spec with
        | None -> None
        | Some ls ->
          let baseline = San_routing.Routes.compute g in
          let stats = San_telemetry.Fabric_stats.create () in
          San_telemetry.Fabric_stats.install stats;
          let rep =
            San_slo.Load.drive ~rng:(San_util.Prng.copy rng) ls ~table:baseline
              g
          in
          San_telemetry.Fabric_stats.uninstall ();
          (* A drop costs one median redelivery; occupancy and queueing
             are already nanoseconds, so the units agree. *)
          let drop_ns =
            San_slo.Digest.quantile rep.San_slo.Load.r_latency 0.5
          in
          Format.printf
            "traffic: %s load %.2f — loss %.4f/crossing, drop cost %.0f ns@."
            (San_slo.Load.pattern_to_string rep.San_slo.Load.r_pattern)
            rep.San_slo.Load.r_offered rep.San_slo.Load.r_loss_per_crossing
            drop_ns;
          Some
            (fun u v ->
              List.fold_left
                (fun acc (port, (w, _)) ->
                  if w <> v then acc
                  else
                    let p =
                      match
                        San_telemetry.Fabric_stats.port_stat stats (u, port)
                      with
                      | None -> 0.0
                      | Some s ->
                        s.San_telemetry.Fabric_stats.occupied_ns
                        +. s.San_telemetry.Fabric_stats.blocked_ns
                        +. float_of_int s.San_telemetry.Fabric_stats.drops
                           *. drop_ns
                    in
                    Float.min acc p)
                infinity (Graph.wired_ports g u))
      in
      let serve =
        San_routing.Serve.create ~cache_limit:(max 64 ndst) ?prefer g
      in
      let t0 = Unix.gettimeofday () in
      Array.iter (fun dst -> San_routing.Serve.warm serve ~dst) dst_set;
      let warm_s = Unix.gettimeofday () -. t0 in
      let q =
        Array.init queries (fun _ ->
            let dst = dst_set.(San_util.Prng.int rng ndst) in
            let rec src () =
              let s = hosts.(San_util.Prng.int rng nh) in
              if s = dst then src () else s
            in
            (src (), dst))
      in
      let buf = Array.make (Graph.num_nodes g + 1) 0 in
      let t1 = Unix.gettimeofday () in
      let served = San_routing.Serve.batch serve q ~buf in
      let dt = Unix.gettimeofday () -. t1 in
      let rate = if dt > 0.0 then float_of_int queries /. dt else 0.0 in
      let st = San_routing.Serve.stats serve in
      Format.printf
        "served %d/%d queries over %d destinations in %.3f s — %.2fM \
         lookups/s (tables compiled in %.3f s)@."
        served queries ndst dt (rate /. 1e6) warm_s;
      Format.printf
        "pool: %d routes, %d turns in %d shared cells; %d B packed vs %d B \
         naive (%.1f%%)@."
        st.San_routing.Serve.entries st.San_routing.Serve.turns_total
        st.San_routing.Serve.pool_cells st.San_routing.Serve.packed_bytes
        st.San_routing.Serve.naive_bytes
        (100.0
        *. float_of_int st.San_routing.Serve.packed_bytes
        /. float_of_int (max 1 st.San_routing.Serve.naive_bytes));
      if not check then 0
      else begin
        let failed = ref 0 in
        let routes = ref [] in
        Array.iter
          (fun dst ->
            Array.iter
              (fun src ->
                if src <> dst then
                  match San_routing.Serve.lookup serve ~src ~dst with
                  | None -> incr failed
                  | Some turns -> (
                    routes := (src, turns) :: !routes;
                    let trace = San_simnet.Worm.eval g ~src ~turns in
                    match trace.San_simnet.Worm.outcome with
                    | San_simnet.Worm.Arrived h when h = dst -> ()
                    | _ -> incr failed))
              hosts)
          dst_set;
        (match San_routing.Deadlock.check_acyclic g !routes with
        | Ok () ->
          Format.printf "deadlock freedom: channel dependency graph acyclic@."
        | Error e ->
          incr failed;
          Format.printf "deadlock: %s@." e);
        if !failed = 0 then begin
          Format.printf "check: every served route delivered@.";
          0
        end
        else begin
          Format.printf "check: %d served routes failed@." !failed;
          1
        end
      end
  end

let routes_cmd =
  Cmd.v
    (Cmd.info "routes" ~doc:"Map, then compute and verify UP*/DOWN* routes")
    Term.(
      const run_routes $ topo_arg $ seed_arg $ mapper_arg $ algo_arg
      $ loads_arg $ spread_arg $ trace_arg $ metrics_arg)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve route queries from lazily compiled, shared-suffix \
          compressed per-destination tables, optionally traffic-aware \
          (give $(b,--load) to steer equal-cost choices away from \
          measured heat and loss)")
    Term.(
      const run_serve $ topo_arg $ seed_arg $ queries_arg $ serve_dsts_arg
      $ serve_check_arg $ load_arg $ load_pattern_arg $ trace_arg
      $ metrics_arg)

let fuzz_cmd =
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the mapper: random fabrics, six invariants, shrunk \
          counterexamples")
    Term.(
      const run_fuzz $ cases_arg $ seed_arg $ prop_arg $ replay_arg
      $ artifacts_arg $ shrink_budget_arg $ progress_arg $ trace_arg
      $ metrics_arg)

let diff_cmd =
  Cmd.v
    (Cmd.info "diff" ~doc:"Compare two saved maps (JSON), anchored at hosts")
    Term.(const run_diff $ map_file 0 $ map_file 1)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Incrementally verify a saved map against the live fabric")
    Term.(
      const run_verify $ topo_arg $ seed_arg $ mapper_arg $ prev_arg $ json_arg
      $ trace_arg $ metrics_arg)

let daemon_cmd =
  Cmd.v
    (Cmd.info "daemon"
       ~doc:
         "Run the epoch-driven control-plane daemon over a scripted \
          fault/repair schedule")
    Term.(
      const run_daemon $ topo_arg $ seed_arg $ epochs_arg $ schedule_arg
      $ scenario_arg $ load_arg $ load_pattern_arg $ slo_arg $ retries_arg
      $ daemon_shards_arg $ quiet_arg $ out_dir_arg $ trace_arg $ metrics_arg
      $ chrome_arg $ prom_arg)

let health_cmd =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Run the daemon with fabric telemetry and print a health dashboard \
          (epoch sparklines, alerts, hottest links)")
    Term.(
      const run_health $ topo_arg $ seed_arg $ epochs_arg $ schedule_arg
      $ scenario_arg $ load_arg $ load_pattern_arg $ slo_arg $ retries_arg
      $ dot_arg $ out_dir_arg $ trace_arg $ metrics_arg $ chrome_arg
      $ prom_arg)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Map with the provenance ledger on, then print the minimal \
          justification tree for a switch, link, route, or sharded \
          merge conflicts")
    Term.(
      const run_explain $ topo_arg $ seed_arg $ mapper_arg $ why_arg
      $ shards_arg $ stale_arg $ dot_arg)

let blame_cmd =
  Cmd.v
    (Cmd.info "blame"
       ~doc:
         "Map two fabrics and attribute each map difference to the first \
          probe whose answer explains it")
    Term.(
      const run_blame $ old_spec_arg $ new_spec_arg $ seed_arg $ mapper_arg)

let postmortem_cmd =
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Reconstruct the epoch story from a daemon flight recording \
          (flight-*.jsonl)")
    Term.(const run_postmortem $ flight_file_arg)

let version_cmd =
  Cmd.v
    (Cmd.info "version" ~doc:"Print the package version")
    Term.(
      const (fun () ->
          print_endline Version.version;
          0)
      $ const ())

let () =
  let info =
    Cmd.info "san_map" ~version:Version.version
      ~doc:"System area network mapping (SPAA'97 reproduction)"
  in
  exit
    (try
       Cmd.eval' ~catch:false
         (Cmd.group info
            [
              topo_cmd; gen_cmd; map_cmd; coverage_cmd; shard_cmd; routes_cmd;
              serve_cmd;
              diff_cmd; verify_cmd;
              fuzz_cmd; daemon_cmd; health_cmd; explain_cmd; blame_cmd;
              postmortem_cmd; version_cmd;
            ])
     with Invalid_argument msg | Failure msg ->
       (* Malformed specs (topologies, fabrics, schedules) surface as a
          one-line usage error, never a backtrace. *)
       Format.eprintf "san_map: %s@." msg;
       2)
