# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench bench-fast bench-smoke artifacts examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# What CI runs: a full build plus the test suites.
check:
	dune build @all
	dune runtest

bench:
	dune exec bench/main.exe

# Also writes BENCH_obs.json: per-scenario wall time + metrics registry.
bench-fast:
	dune exec bench/main.exe -- --fast

# CI-sized: the control-plane daemon on a tiny topology for 2 epochs,
# plus the seeded daemon bench section in fast mode.
bench-smoke:
	dune exec bin/san_map.exe -- daemon -t star:3 --epochs 2 --schedule 1:cut
	dune exec bench/main.exe -- --only daemon --fast --no-bechamel

# The reproduction record: full test log and full harness output.
artifacts:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# CSV series for external plotting (figures 8 and 9).
csv:
	dune exec bench/main.exe -- --only fig8,fig9 --no-bechamel --csv data

examples:
	dune exec examples/quickstart.exe
	dune exec examples/now_cluster.exe
	dune exec examples/dynamic_reconfig.exe
	dune exec examples/election_demo.exe
	dune exec examples/traffic_storm.exe
	dune exec examples/epoch_daemon.exe

clean:
	dune clean
