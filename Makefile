# Convenience targets; everything is plain dune underneath.

.PHONY: all build test check bench bench-fast bench-smoke scale-smoke shard-smoke serve-smoke fuzz-smoke health-smoke explain-smoke slo-smoke cover-smoke artifacts examples clean

all: build

build:
	dune build @all

test:
	dune runtest

# What CI runs: a full build plus the test suites and the telemetry
# smoke (dashboard, chrome trace, prometheus exposition).
check:
	dune build @all
	dune runtest
	$(MAKE) health-smoke
	$(MAKE) explain-smoke
	$(MAKE) fuzz-smoke
	$(MAKE) scale-smoke
	$(MAKE) shard-smoke
	$(MAKE) serve-smoke
	$(MAKE) slo-smoke
	$(MAKE) cover-smoke

bench:
	dune exec bench/main.exe

# Also writes BENCH_obs.json: per-scenario wall time + metrics registry.
bench-fast:
	dune exec bench/main.exe -- --fast

# CI-sized: the control-plane daemon on a tiny topology for 2 epochs,
# plus the seeded daemon bench section in fast mode.
bench-smoke:
	dune exec bin/san_map.exe -- daemon -t star:3 --epochs 2 --schedule 1:cut
	dune exec bench/main.exe -- --only daemon --fast --no-bechamel

# Scaling at CI size: map a seeded 1k-host fat-tree end to end under a
# wall-time budget, then run the fast scaling bench rung so the
# ft-100 probes/sec regression gate (bench/scaling_baseline.json) is
# exercised on every check.
scale-smoke:
	timeout 120 dune exec bin/san_map.exe -- map -t fabric:ft-1k --seed 1 \
	  --out-dir ""
	dune exec bench/main.exe -- --only scaling --fast --no-bechamel

# The sharded mapper at CI size: a seeded 4-shard map of the 1k-host
# fat-tree checked isomorphic against the solo baseline (the CLI exits
# non-zero on any verification failure), then the fast scaling-shard
# bench rung, which additionally gates the merged map on finishing in
# under half the solo simulated wall and on not drifting from
# bench/scaling_baseline.json.
shard-smoke:
	timeout 240 dune exec bin/san_map.exe -- shard -t fabric:ft-1k --seed 1 \
	  --shards 4 --compare-solo --out-dir ""
	dune exec bench/main.exe -- --only scaling-shard --fast --no-bechamel

# The route-serving plane at CI size: a seeded ft-1k serve run whose
# --check verifies delivery and deadlock freedom of a served sample
# (the CLI exits non-zero on either), then the fast serving bench
# rungs, which gate the ft-1k lookup rate against
# bench/serving_baseline.json (fail under a quarter of the recorded
# rate) and re-check deadlock freedom per rung.
serve-smoke:
	timeout 120 dune exec bin/san_map.exe -- serve -t fabric:ft-1k --seed 1 \
	  --queries 100000 --check
	dune exec bench/main.exe -- --only serving --fast --no-bechamel

# The property fuzzer at CI size: a fixed seed so the run is
# reproducible, 200 random fabrics through the full suite. On a
# failure the exit code is non-zero and each shrunk counterexample is
# written to fuzz_artifacts/ as DOT plus its replay seed.
fuzz-smoke:
	dune exec bin/san_map.exe -- fuzz --cases 200 --seed 42 \
	  --artifacts fuzz_artifacts

# The SLO observatory at CI size: a seeded short load-matrix run
# (convergence percentiles vs offered load x fault schedule, flight
# recordings under _artifacts/load_matrix/). The bench exits non-zero
# if any Degraded epoch lacks a postmortem-explainable flight
# recording, then a daemon run under load with the default SLOs
# exercises the burn-rate path end to end.
slo-smoke:
	dune exec bench/main.exe -- --only load_matrix --fast --no-bechamel
	dune exec bin/san_map.exe -- daemon -t fat-tree:2:2:4 --epochs 8 \
	  --quiet --load 1.0 --load-pattern hotspot --scenario storm --seed 5
	test -s BENCH_obs.json

# Budgeted mapping at CI size: a seeded 30%-budget ft-100 run (the CLI
# exits non-zero unless the partial map passes the subgraph embedding
# check) whose confidence-annotated artifact must land under
# _artifacts/, then the fast coverage bench rung, which gates the
# accuracy-vs-budget curve against bench/coverage_baseline.json.
cover-smoke:
	mkdir -p _artifacts
	dune exec bin/san_map.exe -- map -t ft-100 --seed 1 --budget 0.3 \
	  --metrics _artifacts/cover_metrics.json --out-dir _artifacts
	test -s _artifacts/partial-map-ft-100-b0.3.json
	dune exec bench/main.exe -- --only coverage --fast --no-bechamel

# The provenance ledger end to end: explain a Figure-3 switch and a
# route (with the evidence DOT), attribute a map diff to the probes
# that caused it, then drive a small daemon into Degraded and read the
# flight recording back with `postmortem`.
explain-smoke:
	mkdir -p _artifacts
	dune exec bin/san_map.exe -- explain -t cab --why switch:C-leaf0 \
	  --dot _artifacts/why-C-leaf0.dot
	dune exec bin/san_map.exe -- explain -t cab --why 'route:C-h2->C-h9'
	dune exec bin/san_map.exe -- blame --old star:2 --new star:4
	dune exec bin/san_map.exe -- daemon -t star:3 --epochs 5 --quiet \
	  --schedule 2:kill-leader,3:kill-leader,4:kill-leader
	dune exec bin/san_map.exe -- postmortem \
	  $$(ls -t _artifacts/flight-*.jsonl | head -1)
	test -s _artifacts/why-C-leaf0.dot

# The telemetry stack end to end: health dashboard with a link cut,
# exporting a Chrome trace and a Prometheus exposition file. Outputs
# land under _artifacts/ (gitignored) with the other smoke artifacts.
health-smoke:
	mkdir -p _artifacts
	dune exec bin/san_map.exe -- health -t star:3 --epochs 2 --schedule 1:cut \
	  --chrome-trace _artifacts/smoke_trace.json \
	  --prom _artifacts/smoke_metrics.prom
	test -s _artifacts/smoke_trace.json && test -s _artifacts/smoke_metrics.prom

# The reproduction record: full test log and full harness output.
artifacts:
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# CSV series for external plotting (figures 8 and 9).
csv:
	dune exec bench/main.exe -- --only fig8,fig9 --no-bechamel --csv data

examples:
	dune exec examples/quickstart.exe
	dune exec examples/now_cluster.exe
	dune exec examples/dynamic_reconfig.exe
	dune exec examples/election_demo.exe
	dune exec examples/traffic_storm.exe
	dune exec examples/epoch_daemon.exe

clean:
	dune clean
