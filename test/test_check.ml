open San_topology
open San_check

(* ---------- generator ---------- *)

let case_fingerprint (c : Fuzz_gen.case) =
  let g = c.Fuzz_gen.graph in
  let wires =
    List.map
      (fun (((a, pa), (b, pb)) : Graph.wire_end * Graph.wire_end) ->
        Printf.sprintf "%s.%d-%s.%d" (Graph.name g a) pa (Graph.name g b) pb)
      (Graph.wires g)
  in
  String.concat ";"
    (Printf.sprintf "radix=%d mapper=%s silent=%s" (Graph.radix g)
       c.Fuzz_gen.mapper_name
       (String.concat "," c.Fuzz_gen.silent)
    :: List.sort compare wires)

let test_generator_deterministic () =
  List.iter
    (fun seed ->
      let a = Fuzz_gen.gen ~seed and b = Fuzz_gen.gen ~seed in
      Alcotest.(check string)
        (Printf.sprintf "seed %d replays identically" seed)
        (case_fingerprint a) (case_fingerprint b))
    [ 0; 1; 42; 123456789; 2152009547044224480 ]

let test_generator_diversity () =
  (* Across a modest sample the generator must exercise the shapes the
     shrinker and properties are written for: silent hosts, separated
     (bridged-off) regions, and disconnected fabrics. *)
  let cases = List.init 200 (fun i -> Fuzz_gen.gen ~seed:(i * 7919)) in
  let some f = List.exists f cases in
  Alcotest.(check bool) "some silent hosts" true
    (some (fun c -> c.Fuzz_gen.silent <> []));
  Alcotest.(check bool) "some separated regions" true
    (some (fun c ->
         Array.exists Fun.id (Core_set.separated_set c.Fuzz_gen.graph)));
  Alcotest.(check bool) "some multi-switch fabrics" true
    (some (fun c -> Graph.num_switches c.Fuzz_gen.graph > 3))

(* ---------- properties on known-good fabrics ---------- *)

let props_hold_on name g =
  let case =
    {
      Fuzz_gen.case_seed = 0;
      graph = g;
      mapper_name = Graph.name g (List.hd (Graph.hosts g));
      silent = [];
      schedule = [];
    }
  in
  List.iter
    (fun prop ->
      match Props.run prop case with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: property %s: %s" name prop e)
    Props.names

let test_props_on_reference_fabrics () =
  props_hold_on "C" (fst (Generators.now_c ()));
  props_hold_on "torus" (Generators.torus ~rows:3 ~cols:3 ());
  props_hold_on "star" (Generators.star ~leaves:3 ())

(* ---------- shrinker ---------- *)

let test_shrink_minimizes () =
  (* Shrink against a synthetic predicate: "still contains the mapper's
     host". The minimum is tiny, and must still satisfy the predicate. *)
  let case = Fuzz_gen.gen ~seed:42 in
  let target = case.Fuzz_gen.mapper_name in
  let fails c = Graph.host_by_name c.Fuzz_gen.graph target <> None in
  Alcotest.(check bool) "original fails" true (fails case);
  let shrunk, tries = Shrink.shrink ~fails ~budget:400 case in
  Alcotest.(check bool) "shrunk still fails" true (fails shrunk);
  Alcotest.(check bool) "budget respected" true (tries <= 400);
  Alcotest.(check bool) "fabric got smaller" true
    (Graph.num_nodes shrunk.Fuzz_gen.graph
    < Graph.num_nodes case.Fuzz_gen.graph);
  Alcotest.(check int) "minimal: the host and nothing it can drop" 1
    (Graph.num_hosts shrunk.Fuzz_gen.graph)

let test_subgraph_preserves_ports () =
  let g = Graph.create () in
  let s0 = Graph.add_switch g ~name:"s0" () in
  let s1 = Graph.add_switch g ~name:"s1" () in
  let h0 = Graph.add_host g ~name:"h0" in
  Graph.connect g (h0, 0) (s0, 5);
  Graph.connect g (s0, 3) (s1, 7);
  let sub = Shrink.subgraph g ~keep:(fun n -> n <> s1) in
  Alcotest.(check int) "s1 dropped" 2 (Graph.num_nodes sub);
  let h0' = Option.get (Graph.host_by_name sub "h0") in
  match Graph.neighbor sub (h0', 0) with
  | Some (s, p) ->
    Alcotest.(check string) "host still on s0" "s0" (Graph.name sub s);
    Alcotest.(check int) "port index preserved" 5 p
  | None -> Alcotest.fail "host wire lost by subgraph"

(* ---------- the fuzz loop ---------- *)

let test_small_fuzz_run_clean () =
  let r = Runner.run ~cases:60 ~seed:42 () in
  Alcotest.(check int) "cases run" 60 r.Runner.r_cases;
  (match r.Runner.r_failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "unexpected: %a" Runner.pp_failure f);
  Alcotest.(check (list string)) "full suite ran" Props.names r.Runner.r_props

let test_case_seeds_stable () =
  let a = Runner.case_seeds ~seed:7 ~cases:10 in
  let b = Runner.case_seeds ~seed:7 ~cases:10 in
  Alcotest.(check (list int)) "same master seed, same cases" a b;
  Alcotest.(check int) "ten cases" 10 (List.length a)

(* ---------- regressions: bugs the fuzzer found ---------- *)

(* Each seed below once produced a counterexample; the mapper bug it
   exposed is fixed, so replaying the exact case must now be clean. *)

let replay_clean seed () =
  match Runner.run_case ~case_seed:seed () with
  | [] -> ()
  | f :: _ -> Alcotest.failf "case %d regressed: %a" seed Runner.pp_failure f

let test_regression_explored_class_skip =
  (* Doubled-attachment switch lost: a replicate of an explored class
     arrived by a different worm path and was skipped outright, so the
     evidence only it could gather never reached the model. Fixed by
     the fill-only exploration pass in Berkeley.explore_service. *)
  replay_clean 2152009547044224480

let test_regression_search_depth_underestimate =
  (* Post-fault remap stopped two hops short: Core_set.q_of charged
     the confirming worm's two walks against the same directed
     channels, declared Q undefined, and search_depth skipped the
     vertex. Fixed by capacity-2 arcs (one per direction of travel). *)
  replay_clean 1214513233606946897

let test_regression_routes_on_switchless_map () =
  (* Updown.build used to raise on a map with no switches, which a
     mapper on an isolated host segment legitimately produces. *)
  let g = Graph.create () in
  let h0 = Graph.add_host g ~name:"h0" in
  let h1 = Graph.add_host g ~name:"h1" in
  Graph.connect g (h0, 0) (h1, 0);
  let table = San_routing.Routes.compute g in
  Alcotest.(check bool) "host-only table is deadlock free" true
    (Result.is_ok (San_routing.Deadlock.check_routes table));
  let lone = Graph.create () in
  ignore (Graph.add_host lone ~name:"solo");
  ignore (San_routing.Routes.compute lone)

let test_regression_pendant_hosted_switch_kept () =
  (* Prune used to cut every pendant switch; a pendant switch carrying
     a host is real evidence and must survive into the map. *)
  let g = Graph.create () in
  let s0 = Graph.add_switch g ~name:"s0" () in
  let s1 = Graph.add_switch g ~name:"s1" () in
  let h0 = Graph.add_host g ~name:"h0" in
  let h1 = Graph.add_host g ~name:"h1" in
  Graph.connect g (h0, 0) (s0, 0);
  Graph.connect g (s0, 1) (s1, 0);
  Graph.connect g (h1, 0) (s1, 1);
  let net = San_simnet.Network.create g in
  let r = San_mapper.Berkeley.run net ~mapper:h0 in
  match r.San_mapper.Berkeley.map with
  | Error e -> Alcotest.failf "map failed: %s" e
  | Ok m ->
    Alcotest.(check bool) "map covers the pendant hosted switch" true
      (Iso.equal ~map:m ~actual:g ())

let test_regression_two_bridge_maps_to_core () =
  (* End-to-end version of the separated-set union fix: a fabric with
     two switch-bridges (one hiding a hostless tail, one a hostless
     cycle) must map to exactly the core. *)
  let g = Graph.create () in
  let s0 = Graph.add_switch g ~name:"s0" () in
  let s1 = Graph.add_switch g ~name:"s1" () in
  let h0 = Graph.add_host g ~name:"h0" in
  let h1 = Graph.add_host g ~name:"h1" in
  Graph.connect g (h0, 0) (s0, 1);
  Graph.connect g (h1, 0) (s1, 1);
  Graph.connect g (s0, 0) (s1, 0);
  (* bridge one: hostless tail t0 - t1 *)
  let t0 = Graph.add_switch g ~name:"t0" () in
  let t1 = Graph.add_switch g ~name:"t1" () in
  Graph.connect g (s0, 2) (t0, 0);
  Graph.connect g (t0, 1) (t1, 0);
  (* bridge two: hostless 3-cycle c0 - c1 - c2 *)
  let c0 = Graph.add_switch g ~name:"c0" () in
  let c1 = Graph.add_switch g ~name:"c1" () in
  let c2 = Graph.add_switch g ~name:"c2" () in
  Graph.connect g (s1, 2) (c0, 0);
  Graph.connect g (c0, 1) (c1, 0);
  Graph.connect g (c1, 1) (c2, 0);
  Graph.connect g (c2, 1) (c0, 2);
  let f = Core_set.separated_set g in
  let net = San_simnet.Network.create g in
  let r = San_mapper.Berkeley.run net ~mapper:h0 in
  match r.San_mapper.Berkeley.map with
  | Error e -> Alcotest.failf "map failed: %s" e
  | Ok m ->
    (match Iso.check ~map:m ~actual:g ~exclude:f () with
    | Ok () -> ()
    | Error e -> Alcotest.failf "map is not the core: %s" e);
    Alcotest.(check bool) "map omits the separated regions" false
      (Iso.equal ~map:m ~actual:g ())

let () =
  Alcotest.run "san_check"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "diversity" `Quick test_generator_diversity;
        ] );
      ( "properties",
        [
          Alcotest.test_case "reference fabrics" `Slow
            test_props_on_reference_fabrics;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "subgraph ports" `Quick test_subgraph_preserves_ports;
        ] );
      ( "fuzz loop",
        [
          Alcotest.test_case "small run clean" `Slow test_small_fuzz_run_clean;
          Alcotest.test_case "case seeds stable" `Quick test_case_seeds_stable;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "explored-class skip" `Quick
            test_regression_explored_class_skip;
          Alcotest.test_case "search-depth underestimate" `Quick
            test_regression_search_depth_underestimate;
          Alcotest.test_case "switchless routes" `Quick
            test_regression_routes_on_switchless_map;
          Alcotest.test_case "pendant hosted switch" `Quick
            test_regression_pendant_hosted_switch_kept;
          Alcotest.test_case "two-bridge core map" `Quick
            test_regression_two_bridge_maps_to_core;
        ] );
    ]
