open San_topology
open San_routing

let qcheck t = QCheck_alcotest.to_alcotest t

(* ---------- orientation ---------- *)

let test_updown_root_selection () =
  let g, _ = Generators.now_c () in
  let util = Option.get (Graph.host_by_name g "C-util") in
  let ud = Updown.build ~ignore_hosts:[ util ] g in
  let name = Graph.name g (Updown.root ud) in
  Alcotest.(check bool) ("root is a C root, got " ^ name) true
    (String.length name >= 6 && String.sub name 0 6 = "C-root");
  Alcotest.(check int) "root label 0" 0 (Updown.label ud (Updown.root ud))

let test_updown_direction () =
  let g = Generators.star ~leaves:2 () in
  let hub = List.hd (Graph.switches g) in
  let ud = Updown.build ~root:hub g in
  let leaf = List.nth (Graph.switches g) 1 in
  Alcotest.(check bool) "towards root is up" true (Updown.is_up ud leaf hub);
  Alcotest.(check bool) "away from root is down" false (Updown.is_up ud hub leaf)

let test_legal_turns () =
  let g = Generators.star ~leaves:3 () in
  let hub = List.hd (Graph.switches g) in
  let ud = Updown.build ~root:hub g in
  let l0 = List.nth (Graph.switches g) 1 in
  let l1 = List.nth (Graph.switches g) 2 in
  Alcotest.(check bool) "up then down legal" true (Updown.legal_turn ud l0 hub l1);
  let h0 = Option.get (Graph.host_by_name g "h0") in
  let h1 = Option.get (Graph.host_by_name g "h1") in
  (* h0 - l0 - hub - l1 - h1 is up, up, down, down. *)
  Alcotest.(check bool) "full path valid" true
    (Updown.valid_path ud [ h0; l0; hub; l1; h1 ]);
  (* A down-then-up zigzag is rejected. *)
  Alcotest.(check bool) "down-up rejected" false
    (Updown.valid_path ud [ hub; l0; hub ])

let test_dominant_relabelling () =
  (* A 4-cycle of switches; only a hostless switch can be locally
     dominant (an attached host is always below its switch). Rooting
     at s0 makes the hostless antipode s2 a local maximum. *)
  let g = Graph.create () in
  let s = Array.init 4 (fun i -> Graph.add_switch g ~name:(Printf.sprintf "s%d" i) ()) in
  for i = 0 to 3 do
    Graph.connect g (s.(i), 0) (s.((i + 1) mod 4), 1)
  done;
  let h0 = Graph.add_host g ~name:"h0" in
  let h1 = Graph.add_host g ~name:"h1" in
  Graph.connect g (h0, 0) (s.(0), 2);
  Graph.connect g (h1, 0) (s.(1), 2);
  let ud = Updown.build ~root:s.(0) g in
  Alcotest.(check (list int)) "the hostless antipode relabelled" [ s.(2) ]
    (Updown.relabeled ud);
  Alcotest.(check bool) "relabelled below neighbours" true
    (Updown.label ud s.(2) < Updown.label ud s.(1));
  (* After relabelling it is transitable: all host pairs route. *)
  let table = Routes.compute ~root:s.(0) g in
  Alcotest.(check int) "no unreachable pairs" 0
    (List.length (Routes.unreachable_pairs table));
  Alcotest.(check bool) "still deadlock-free" true
    (Result.is_ok (Deadlock.check_routes table))

(* ---------- paths ---------- *)

let test_paths_distances () =
  let g = Generators.star ~leaves:2 () in
  let hub = List.hd (Graph.switches g) in
  let ud = Updown.build ~root:hub g in
  let pt = Paths.compute ud in
  let h0 = Option.get (Graph.host_by_name g "h0") in
  let h1 = Option.get (Graph.host_by_name g "h1") in
  Alcotest.(check (option int)) "h0 -> h1 distance" (Some 4)
    (Paths.distance pt ~src:h0 ~dst:h1);
  match Paths.node_path pt ~src:h0 ~dst:h1 with
  | Some path ->
    Alcotest.(check int) "path nodes" 5 (List.length path);
    Alcotest.(check bool) "compliant" true (Updown.valid_path ud path)
  | None -> Alcotest.fail "no path"

(* ---------- route tables ---------- *)

let full_check ?rng name g =
  let table = Routes.compute ?rng g in
  (match Routes.verify_delivery table with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s delivery: %s" name e);
  (match Routes.verify_updown table with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s compliance: %s" name e);
  (match Deadlock.check_routes table with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s deadlock: %s" name e);
  let hosts = Graph.num_hosts g in
  let st = Routes.length_stats table in
  Alcotest.(check int) (name ^ " all pairs routed") (hosts * (hosts - 1))
    st.Routes.pairs;
  table

let test_routes_now () = ignore (full_check "NOW" (fst (Generators.now_cab ())))

let test_routes_classics () =
  ignore (full_check "hypercube" (Generators.hypercube ~dim:4 ()));
  ignore (full_check "torus" (Generators.torus ~rows:3 ~cols:3 ()));
  ignore (full_check "mesh" (Generators.mesh ~rows:4 ~cols:2 ()));
  ignore (full_check "chain" (Generators.chain ~switches:3 ()))

let test_routes_deterministic_without_rng () =
  let g, _ = Generators.now_c () in
  let t1 = Routes.compute g and t2 = Routes.compute g in
  Alcotest.(check bool) "same tables" true (Routes.all t1 = Routes.all t2)

let test_load_balance_spreads () =
  (* Parallel wires between two switches: with rng, both should carry
     routes. *)
  let g = Graph.create () in
  let s0 = Graph.add_switch g () in
  let s1 = Graph.add_switch g () in
  Graph.connect g (s0, 0) (s1, 0);
  Graph.connect g (s0, 1) (s1, 1);
  for i = 0 to 2 do
    let h = Graph.add_host g ~name:(Printf.sprintf "a%d" i) in
    Graph.connect g (h, 0) (s0, 2 + i)
  done;
  for i = 0 to 2 do
    let h = Graph.add_host g ~name:(Printf.sprintf "b%d" i) in
    Graph.connect g (h, 0) (s1, 2 + i)
  done;
  let rng = San_util.Prng.create 8 in
  let table = Routes.compute ~rng g in
  let loads = Routes.channel_loads table in
  let used_parallel =
    List.filter (fun ((n, p), _) -> n = s0 && (p = 0 || p = 1)) loads
  in
  Alcotest.(check int) "both parallel channels used" 2
    (List.length used_parallel);
  ignore (full_check ~rng "parallel" g)

let test_channel_loads_congestion () =
  (* UP*/DOWN* concentrates traffic near the root (the paper's noted
     effect): the hottest channel must touch a root-side switch. *)
  let g, _ = Generators.now_c () in
  let table = Routes.compute g in
  match Routes.channel_loads table with
  | ((n, _), load) :: _ ->
    Alcotest.(check bool) "hot channel is switch-side" true (not (Graph.is_host g n));
    Alcotest.(check bool) "meaningful load" true (load > 10)
  | [] -> Alcotest.fail "no loads"

let test_route_lengths_bounded () =
  let g, _ = Generators.now_cab () in
  let table = Routes.compute g in
  let st = Routes.length_stats table in
  Alcotest.(check bool) "max within diameter+2" true
    (st.Routes.max_len <= Analysis.diameter g + 2);
  Alcotest.(check bool) "min is 1" true (st.Routes.min_len >= 1)

let test_map_routes_drive_actual () =
  (* The port-offset invariance end to end: map with the Berkeley
     algorithm, compute routes on the map, deliver on the actual. *)
  let g, _ = Generators.now_c () in
  let net = San_simnet.Network.create g in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let r = San_mapper.Berkeley.run net ~mapper in
  match r.San_mapper.Berkeley.map with
  | Error e -> Alcotest.failf "map failed: %s" e
  | Ok m -> (
    let table = Routes.compute m in
    match Routes.verify_delivery ~against:g table with
    | Ok () -> ()
    | Error e -> Alcotest.failf "actual delivery: %s" e)

(* ---------- dependency cycles ---------- *)

let test_deadlock_detects_cycle () =
  (* Hand-build routes that chase each other around a ring — the
     classic deadlocked configuration UP*/DOWN* exists to prevent. *)
  let g = Generators.ring ~switches:4 ~hosts_per_switch:1 () in
  let host i = Option.get (Graph.host_by_name g (Printf.sprintf "h%d-0" i)) in
  (* The checker must accept a compliant table... *)
  let table = Routes.compute g in
  (match Deadlock.check_routes table with
  | Ok () -> ()
  | Error e -> Alcotest.failf "compliant table flagged: %s" e);
  (* ... and flag a synthetic cyclic set: four "routes", each crossing
     two consecutive ring edges clockwise, chasing one another — the
     classic deadlocked configuration UP*/DOWN* exists to prevent. *)
  let sw = Array.of_list (Graph.switches g) in
  let cyclic =
    List.init 4 (fun i ->
        let h = host i in
        (* host -> its switch -> next switch -> next-next switch *)
        let enter = Option.get (Graph.neighbor g (h, 0)) in
        let _, entry = enter in
        let next j = sw.((i + j) mod 4) in
        let exit_port cur target =
          fst
            (List.find (fun (_, (n, _)) -> n = target) (Graph.wired_ports g cur))
        in
        let p1 = exit_port sw.(i) (next 1) in
        let via = Option.get (Graph.neighbor g (sw.(i), p1)) in
        let p2 = exit_port (next 1) (next 2) in
        let t1 = p1 - entry in
        let t2 = p2 - snd via in
        (h, [ t1; t2 ]))

  in
  match Deadlock.check_acyclic g cyclic with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "cyclic dependency set not detected"

let test_myricom_map_routes_acyclic () =
  (* Route tables computed over a Myricom-built map must be free of
     channel-dependence cycles too: the map's port numbering comes from
     probe orientation, not the actual wiring, so a cycle here would
     mean the orientation was recorded backwards somewhere. *)
  let check name g =
    let mapper = List.hd (Graph.hosts g) in
    let r = San_myricom.Myricom.run g ~mapper in
    match r.San_myricom.Myricom.map with
    | Error e -> Alcotest.failf "%s: myricom map failed: %s" name e
    | Ok m ->
      let table = Routes.compute m in
      (match Deadlock.check_routes table with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: dependence cycle: %s" name e);
      (match Routes.verify_delivery ~against:g table with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: actual delivery: %s" name e);
      Alcotest.(check (list (pair int int))) (name ^ " all pairs routed") []
        (Routes.unreachable_pairs table)
  in
  check "C" (fst (Generators.now_c ()));
  check "torus" (Generators.torus ~rows:3 ~cols:3 ())

let test_dfs_labeling_sound () =
  let g, _ = Generators.now_cab () in
  let table = Routes.compute ~labeling:Updown.Dfs g in
  Alcotest.(check bool) "dfs routes deliver" true
    (Result.is_ok (Routes.verify_delivery table));
  Alcotest.(check bool) "dfs routes compliant" true
    (Result.is_ok (Routes.verify_updown table));
  Alcotest.(check bool) "dfs routes deadlock-free" true
    (Result.is_ok (Deadlock.check_routes table));
  Alcotest.(check int) "dfs routes all pairs" (100 * 99)
    (Routes.length_stats table).Routes.pairs

let dfs_sound_prop =
  QCheck.Test.make ~name:"dfs labelling sound on random nets" ~count:20
    QCheck.(pair small_int (int_range 2 7))
    (fun (seed, switches) ->
      let rng = San_util.Prng.create ((seed * 5) + switches) in
      let g =
        Generators.random_connected ~rng ~switches ~hosts:3
          ~extra_links:(seed mod 3) ()
      in
      let table = Routes.compute ~labeling:Updown.Dfs g in
      Result.is_ok (Routes.verify_delivery table)
      && Result.is_ok (Deadlock.check_routes table)
      && Routes.unreachable_pairs table = [])

(* ---------- in-band route distribution (§5.5) ---------- *)

let test_distribution_plan () =
  let g, _ = Generators.now_c () in
  let table = Routes.compute g in
  let p = Distribute.plan table in
  Alcotest.(check int) "one slice per host" 36
    (List.length p.Distribute.slices);
  List.iter
    (fun (s : Distribute.slice) ->
      Alcotest.(check int) "routes to all other hosts" 35 s.Distribute.entries;
      Alcotest.(check bool) "bytes positive and SRAM-scale" true
        (s.Distribute.bytes > 0 && s.Distribute.bytes < 4096))
    p.Distribute.slices

let test_distribution_delivers () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  (* Distribute the map-derived table over the actual network. *)
  let net = San_simnet.Network.create g in
  let r = San_mapper.Berkeley.run net ~mapper in
  let table = Routes.compute (Result.get_ok r.San_mapper.Berkeley.map) in
  match Distribute.simulate table ~actual:g ~leader:mapper with
  | Ok rep ->
    Alcotest.(check int) "all other hosts updated" 35 rep.Distribute.hosts_updated;
    Alcotest.(check int) "none missed" 0 rep.Distribute.hosts_missed;
    Alcotest.(check bool) "finishes quickly" true (rep.Distribute.duration_ns < 1e8)
  | Error e -> Alcotest.failf "distribution failed: %s" e

let test_distribution_needs_leader () =
  let g, _ = Generators.now_c () in
  let other = Graph.create () in
  let s = Graph.add_switch other () in
  let stranger = Graph.add_host other ~name:"stranger" in
  Graph.connect other (stranger, 0) (s, 0);
  let table = Routes.compute g in
  match Distribute.simulate table ~actual:other ~leader:stranger with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown leader must be rejected"

let test_distribution_retry_attempts () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let table = Routes.compute g in
  (* realistic slices land in the first pass *)
  (match Distribute.simulate table ~actual:g ~leader:mapper with
  | Ok rep ->
    Alcotest.(check int) "single pass suffices" 1 rep.Distribute.attempts;
    Alcotest.(check (list int)) "no missed owners" [] rep.Distribute.missed
  | Error e -> Alcotest.failf "distribution failed: %s" e);
  (* grossly oversized slices contend until forward-reset drops some;
     re-send passes, with less contention each time, win them back *)
  let slices =
    List.filter_map
      (fun h -> if h = mapper then None else Some (h, 400_000))
      (Graph.hosts g)
  in
  let no_retry =
    Result.get_ok
      (Distribute.simulate_slices ~retries:0 table ~actual:g ~leader:mapper
         ~slices)
  in
  let with_retry =
    Result.get_ok
      (Distribute.simulate_slices ~retries:3 table ~actual:g ~leader:mapper
         ~slices)
  in
  Alcotest.(check bool) "storm drops some slices" true
    (no_retry.Distribute.hosts_missed > 0);
  Alcotest.(check int) "no-retry runs one pass" 1 no_retry.Distribute.attempts;
  Alcotest.(check bool) "retries run more passes" true
    (with_retry.Distribute.attempts > 1);
  Alcotest.(check bool) "retries recover slices" true
    (with_retry.Distribute.hosts_missed < no_retry.Distribute.hosts_missed);
  Alcotest.(check int) "every missed owner listed"
    with_retry.Distribute.hosts_missed
    (List.length with_retry.Distribute.missed)

let test_distribution_structural_skip () =
  (* table over three hosts; the actual fabric only knows two of them *)
  let build names =
    let g = Graph.create () in
    let s = Graph.add_switch g ~name:"s" () in
    List.iteri
      (fun i n ->
        let h = Graph.add_host g ~name:n in
        Graph.connect g (h, 0) (s, i))
      names;
    g
  in
  let full = build [ "a"; "b"; "c" ] in
  let actual = build [ "a"; "b" ] in
  let table = Routes.compute full in
  let leader = Option.get (Graph.host_by_name actual "a") in
  match Distribute.simulate ~retries:5 table ~actual ~leader with
  | Ok rep ->
    Alcotest.(check int) "b updated" 1 rep.Distribute.hosts_updated;
    Alcotest.(check int) "c unreachable" 1 rep.Distribute.hosts_missed;
    Alcotest.(check int) "structural misses are not retried" 1
      rep.Distribute.attempts;
    (match rep.Distribute.missed with
    | [ n ] ->
      Alcotest.(check string) "missed owner is c" "c"
        (Graph.name (Routes.graph table) n)
    | l -> Alcotest.failf "expected one missed owner, got %d" (List.length l))
  | Error e -> Alcotest.failf "distribution failed: %s" e

let routes_sound_prop =
  QCheck.Test.make ~name:"routes on random nets: deliver, comply, acyclic"
    ~count:30
    QCheck.(triple small_int (int_range 2 8) (int_range 2 5))
    (fun (seed, switches, hosts) ->
      let rng = San_util.Prng.create ((seed * 13) + switches) in
      let g =
        Generators.random_connected ~rng ~switches ~hosts
          ~extra_links:(seed mod 4) ()
      in
      let table = Routes.compute ~rng g in
      Result.is_ok (Routes.verify_delivery table)
      && Result.is_ok (Routes.verify_updown table)
      && Result.is_ok (Deadlock.check_routes table)
      && Routes.unreachable_pairs table = [])

let () =
  Alcotest.run "san_routing"
    [
      ( "updown",
        [
          Alcotest.test_case "root selection" `Quick test_updown_root_selection;
          Alcotest.test_case "direction" `Quick test_updown_direction;
          Alcotest.test_case "legal turns" `Quick test_legal_turns;
          Alcotest.test_case "dominant relabelling" `Quick test_dominant_relabelling;
        ] );
      ("paths", [ Alcotest.test_case "distances" `Quick test_paths_distances ]);
      ( "routes",
        [
          Alcotest.test_case "NOW" `Quick test_routes_now;
          Alcotest.test_case "classics" `Quick test_routes_classics;
          Alcotest.test_case "deterministic" `Quick test_routes_deterministic_without_rng;
          Alcotest.test_case "load balance" `Quick test_load_balance_spreads;
          Alcotest.test_case "root congestion" `Quick test_channel_loads_congestion;
          Alcotest.test_case "length bounds" `Quick test_route_lengths_bounded;
          Alcotest.test_case "map drives actual" `Quick test_map_routes_drive_actual;
          Alcotest.test_case "myricom map acyclic" `Slow
            test_myricom_map_routes_acyclic;
          Alcotest.test_case "dfs labelling" `Quick test_dfs_labeling_sound;
          qcheck dfs_sound_prop;
        ] );
      ( "deadlock",
        [ Alcotest.test_case "cycle detection" `Quick test_deadlock_detects_cycle ] );
      ( "distribution",
        [
          Alcotest.test_case "plan" `Quick test_distribution_plan;
          Alcotest.test_case "delivers" `Quick test_distribution_delivers;
          Alcotest.test_case "leader check" `Quick test_distribution_needs_leader;
          Alcotest.test_case "retry attempts" `Quick test_distribution_retry_attempts;
          Alcotest.test_case "structural skip" `Quick test_distribution_structural_skip;
        ] );
      ("properties", [ qcheck routes_sound_prop ]);
    ]
