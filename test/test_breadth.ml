(* Breadth pass: edge cases and regression pins across all libraries
   that don't fit the per-module suites. *)

open San_topology

let qcheck t = QCheck_alcotest.to_alcotest t

(* ---------- generator degenerate sizes ---------- *)

let test_tiny_generators () =
  let ring1 = Generators.ring ~switches:1 ~hosts_per_switch:2 () in
  Alcotest.(check int) "ring of one" 1 (Graph.num_switches ring1);
  Alcotest.(check int) "its hosts" 2 (Graph.num_hosts ring1);
  let mesh1 = Generators.mesh ~rows:1 ~cols:1 () in
  Alcotest.(check int) "1x1 mesh" 1 (Graph.num_switches mesh1);
  let cube1 = Generators.hypercube ~dim:1 () in
  Alcotest.(check int) "dim-1 hypercube" 2 (Graph.num_switches cube1);
  Alcotest.(check int) "one wire" 3 (Graph.num_wires cube1);
  let star0 = Generators.star ~leaves:0 () in
  Alcotest.(check int) "bare hub" 1 (Graph.num_switches star0)

let test_generator_rejections () =
  Alcotest.(check bool) "hypercube too big for radix" true
    (try
       ignore (Generators.hypercube ~radix:4 ~dim:4 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "random needs two hosts" true
    (try
       ignore
         (Generators.random_connected
            ~rng:(San_util.Prng.create 1)
            ~switches:2 ~hosts:1 ~extra_links:0 ());
       false
     with Invalid_argument _ -> true)

let test_tiny_networks_map () =
  (* The minimal legal network: one switch, two hosts. *)
  let g = Generators.ring ~switches:1 ~hosts_per_switch:2 () in
  let mapper = Option.get (Graph.host_by_name g "h0-0") in
  let net = San_simnet.Network.create g in
  let r = San_mapper.Berkeley.run net ~mapper in
  match r.San_mapper.Berkeley.map with
  | Ok m ->
    Alcotest.(check bool) "minimal net maps" true (Iso.equal ~map:m ~actual:g ())
  | Error e -> Alcotest.failf "minimal net failed: %s" e

(* ---------- regression pins on the NOW ---------- *)

let test_now_regression_pins () =
  let g, _ = Generators.now_cab () in
  let util = Option.get (Graph.host_by_name g "C-util") in
  Alcotest.(check int) "diameter" 8 (Analysis.diameter g);
  Alcotest.(check int) "Q from C-util" 8 (Core_set.q_bound g ~root:util);
  Alcotest.(check int) "oracle depth" 17 (Core_set.search_depth g ~root:util);
  Alcotest.(check int) "no bridges in the fabric" 0
    (List.length (Core_set.switch_bridges g));
  let net = San_simnet.Network.create g in
  let r = San_mapper.Berkeley.run net ~mapper:util in
  (* Deterministic without jitter: pin the headline counters so any
     behavioural drift in the mapper is caught loudly. *)
  Alcotest.(check int) "probe count pinned" 5051
    (San_mapper.Berkeley.total_probes r);
  Alcotest.(check int) "explorations pinned" 1064 r.San_mapper.Berkeley.explorations;
  Alcotest.(check int) "created vertices pinned" 1222
    r.San_mapper.Berkeley.created_vertices;
  Alcotest.(check int) "live = 140 actual nodes" 140
    r.San_mapper.Berkeley.live_vertices

let test_c_regression_pins () =
  let g, _ = Generators.now_c () in
  let util = Option.get (Graph.host_by_name g "C-util") in
  let net = San_simnet.Network.create g in
  let r = San_mapper.Berkeley.run net ~mapper:util in
  Alcotest.(check int) "C probes pinned" 895 (San_mapper.Berkeley.total_probes r);
  let rm = San_myricom.Myricom.run g ~mapper:util in
  Alcotest.(check int) "C myricom probes pinned" 1983
    (San_myricom.Myricom.total rm.San_myricom.Myricom.counts)

(* ---------- worm/analysis cross-checks ---------- *)

(* The worm evaluator agrees with BFS distance: a shortest compliant
   route's turn count equals the BFS path length through switches. *)
let route_length_matches_bfs_prop =
  QCheck.Test.make ~name:"route turn count = path switches" ~count:30
    QCheck.(pair small_int (int_range 2 7))
    (fun (seed, switches) ->
      let rng = San_util.Prng.create ((seed * 29) + switches) in
      let g =
        Generators.random_connected ~rng ~switches ~hosts:3 ~extra_links:2 ()
      in
      let table = San_routing.Routes.compute g in
      List.for_all
        (fun (src, dst, turns) ->
          let trace = San_simnet.Worm.eval g ~src ~turns in
          match trace.San_simnet.Worm.outcome with
          | San_simnet.Worm.Arrived h ->
            h = dst
            && List.length trace.San_simnet.Worm.hops = List.length turns + 1
          | _ -> false)
        (San_routing.Routes.all table))

(* Channel loads account exactly for every hop of every route. *)
let channel_load_conservation_prop =
  QCheck.Test.make ~name:"channel loads sum to total hops" ~count:20
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, switches) ->
      let rng = San_util.Prng.create ((seed * 37) + switches) in
      let g =
        Generators.random_connected ~rng ~switches ~hosts:3 ~extra_links:1 ()
      in
      let table = San_routing.Routes.compute g in
      let total_hops =
        List.fold_left
          (fun acc (_, _, turns) -> acc + List.length turns + 1)
          0
          (San_routing.Routes.all table)
      in
      let load_sum =
        List.fold_left (fun acc (_, l) -> acc + l) 0
          (San_routing.Routes.channel_loads table)
      in
      total_hops = load_sum)

(* ---------- iso is an equivalence on generated maps ---------- *)

let iso_reflexive_symmetric_prop =
  QCheck.Test.make ~name:"iso: reflexive and symmetric" ~count:20
    QCheck.(pair small_int (int_range 2 7))
    (fun (seed, switches) ->
      let rng = San_util.Prng.create ((seed * 41) + switches) in
      let g =
        Generators.random_connected ~rng ~switches ~hosts:3 ~extra_links:2 ()
      in
      let mapper = Option.get (Graph.host_by_name g "h0") in
      let net = San_simnet.Network.create g in
      match (San_mapper.Berkeley.run net ~mapper).San_mapper.Berkeley.map with
      | Error _ -> QCheck.assume_fail ()
      | Ok m ->
        Iso.equal ~map:m ~actual:m ()
        && Iso.equal ~map:g ~actual:g ()
        && (Iso.equal ~map:m ~actual:g ~exclude:(Core_set.separated_set g) ()
            = (Core_set.core_is_empty_f g && Iso.equal ~map:g ~actual:m ())
           || not (Core_set.core_is_empty_f g)))

(* ---------- distribution composes with myricom maps too ---------- *)

let test_routes_on_myricom_map () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let r = San_myricom.Myricom.run g ~mapper in
  match r.San_myricom.Myricom.map with
  | Error e -> Alcotest.failf "myricom map failed: %s" e
  | Ok m -> (
    let table = San_routing.Routes.compute m in
    (match San_routing.Routes.verify_delivery ~against:g table with
    | Ok () -> ()
    | Error e -> Alcotest.failf "delivery: %s" e);
    match San_routing.Distribute.simulate table ~actual:g ~leader:mapper with
    | Ok rep ->
      Alcotest.(check int) "all updated" 35 rep.San_routing.Distribute.hosts_updated
    | Error e -> Alcotest.failf "distribution: %s" e)

(* ---------- the whole pipeline on every classic topology ---------- *)

let test_pipeline_on_classics () =
  List.iter
    (fun (name, g, mapper_name) ->
      let mapper = Option.get (Graph.host_by_name g mapper_name) in
      let net = San_simnet.Network.create g in
      let r = San_mapper.Berkeley.run net ~mapper in
      match r.San_mapper.Berkeley.map with
      | Error e -> Alcotest.failf "%s: map: %s" name e
      | Ok m ->
        let table = San_routing.Routes.compute m in
        (match San_routing.Routes.verify_delivery ~against:g table with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: delivery: %s" name e);
        (match San_routing.Deadlock.check_routes table with
        | Ok () -> ()
        | Error e -> Alcotest.failf "%s: deadlock: %s" name e);
        (* and the storm, physically *)
        let sim = San_simnet.Event_sim.create g in
        List.iter
          (fun (src, _, turns) ->
            let s =
              Option.get (Graph.host_by_name g (Graph.name m src))
            in
            ignore
              (San_simnet.Event_sim.inject sim ~at_ns:0.0 ~src:s ~turns
                 ~payload_bytes:2048 ()))
          (San_routing.Routes.all table);
        San_simnet.Event_sim.run sim;
        let st = San_simnet.Event_sim.stats sim in
        Alcotest.(check int) (name ^ " storm delivers") 0
          (st.San_simnet.Event_sim.dropped_reset
          + st.San_simnet.Event_sim.dropped_bad_route
          + st.San_simnet.Event_sim.in_flight))
    [
      ("hypercube", Generators.hypercube ~dim:4 (), "h0");
      ("torus", Generators.torus ~rows:3 ~cols:3 (), "h0-0");
      ("fat tree", Generators.fat_tree ~leaves:4 ~hosts_per_leaf:4 ~spines:3 (), "h0-0");
      ("ring", Generators.ring ~switches:6 ~hosts_per_switch:2 (), "h0-0");
    ]

(* ---------- the §5.5-cited interconnect families ---------- *)

let test_cited_interconnects_full_pipeline () =
  List.iter
    (fun (name, g) ->
      Alcotest.(check bool) (name ^ " connected") true (Analysis.is_connected g);
      let mapper = List.hd (Graph.hosts g) in
      let net = San_simnet.Network.create g in
      let r = San_mapper.Berkeley.run net ~mapper in
      (match r.San_mapper.Berkeley.map with
      | Ok m ->
        Alcotest.(check bool) (name ^ " maps") true
          (Iso.equal ~map:m ~actual:g ~exclude:(Core_set.separated_set g) ())
      | Error e -> Alcotest.failf "%s map failed: %s" name e);
      let table = San_routing.Routes.compute g in
      Alcotest.(check bool) (name ^ " routes deliver") true
        (Result.is_ok (San_routing.Routes.verify_delivery table));
      Alcotest.(check bool) (name ^ " deadlock-free") true
        (Result.is_ok (San_routing.Deadlock.check_routes table)))
    [
      ("ccc(3)", Generators.cube_connected_cycles ~dim:3 ());
      ("shuffle-exchange(4)", Generators.shuffle_exchange ~dim:4 ());
    ]

let test_ccc_shape () =
  let g = Generators.cube_connected_cycles ~dim:3 () in
  Alcotest.(check int) "24 switches" 24 (Graph.num_switches g);
  Alcotest.(check int) "24 hosts" 24 (Graph.num_hosts g);
  (* every switch has cycle degree 2 + cube degree 1 + host = 4 *)
  List.iter
    (fun s -> Alcotest.(check int) "degree 4" 4 (Graph.degree g s))
    (Graph.switches g)

(* ---------- the paper's §1.2 superset claim, executable ----------
   "The set of all probe paths generated by probing the network with
   packet routing is a superset of the sets generated with circuit or
   cut-through routing": with Myrinet-sized buffers, cut-through sits
   between the two, so every circuit-successful probe must succeed
   under cut-through, and every cut-through success must be
   structurally sound. *)
let probe_set_inclusion_prop =
  QCheck.Test.make ~name:"probe sets: circuit <= cut-through <= structural"
    ~count:60
    QCheck.(pair small_int (list_of_size Gen.(1 -- 6) (int_range (-7) 7)))
    (fun (seed, raw_turns) ->
      let turns = List.map (fun t -> if t = 0 then 3 else t) raw_turns in
      let rng = San_util.Prng.create (seed + 7) in
      let g =
        Generators.random_connected ~rng ~switches:6 ~hosts:3 ~extra_links:3 ()
      in
      let h0 = Option.get (Graph.host_by_name g "h0") in
      let circuit = San_simnet.Network.create ~model:San_simnet.Collision.Circuit g in
      let cut = San_simnet.Network.create ~model:San_simnet.Collision.Cut_through g in
      let h_ok net = fst (San_simnet.Network.host_probe net ~src:h0 ~turns) in
      let s_ok net = fst (San_simnet.Network.switch_probe net ~src:h0 ~turns) in
      let structural =
        match (San_simnet.Worm.eval g ~src:h0 ~turns).San_simnet.Worm.outcome with
        | San_simnet.Worm.Arrived _ -> true
        | _ -> false
      in
      let imp a b = (not a) || b in
      imp (h_ok circuit <> San_simnet.Network.Nothing)
        (h_ok cut <> San_simnet.Network.Nothing)
      && imp (h_ok cut <> San_simnet.Network.Nothing) structural
      && imp (s_ok circuit = San_simnet.Network.Switch)
           (s_ok cut = San_simnet.Network.Switch))

let forward_roundtrip_prop =
  QCheck.Test.make ~name:"forward_of_switch_probe inverts switch_probe"
    ~count:100
    QCheck.(list_of_size Gen.(0 -- 8) (int_range (-7) 7))
    (fun turns ->
      San_simnet.Route.forward_of_switch_probe
        (San_simnet.Route.switch_probe turns)
      = Some turns)

let () =
  Alcotest.run "san_breadth"
    [
      ( "degenerate",
        [
          Alcotest.test_case "tiny generators" `Quick test_tiny_generators;
          Alcotest.test_case "rejections" `Quick test_generator_rejections;
          Alcotest.test_case "minimal net maps" `Quick test_tiny_networks_map;
        ] );
      ( "regression pins",
        [
          Alcotest.test_case "NOW" `Quick test_now_regression_pins;
          Alcotest.test_case "C" `Quick test_c_regression_pins;
        ] );
      ( "cross-checks",
        [
          qcheck route_length_matches_bfs_prop;
          qcheck channel_load_conservation_prop;
          qcheck iso_reflexive_symmetric_prop;
        ] );
      ( "cited interconnects",
        [
          Alcotest.test_case "pipeline" `Slow test_cited_interconnects_full_pipeline;
          Alcotest.test_case "ccc shape" `Quick test_ccc_shape;
        ] );
      ( "paper claims",
        [ qcheck probe_set_inclusion_prop; qcheck forward_roundtrip_prop ] );
      ( "integration",
        [
          Alcotest.test_case "routes on myricom map" `Quick test_routes_on_myricom_map;
          Alcotest.test_case "pipeline on classics" `Slow test_pipeline_on_classics;
        ] );
    ]
