open San_topology
open San_service
module D = San_routing.Distribute

(* ---------- world ---------- *)

let test_world_kill_revive () =
  let g, _ = Generators.now_c () in
  let w = World.create g in
  let h = List.hd (Graph.hosts (World.graph w)) in
  let name = Graph.name (World.graph w) h in
  Alcotest.(check bool) "initially responding" true (World.responding w h);
  World.kill_host w name;
  Alcotest.(check bool) "down after kill" true (World.is_down w name);
  Alcotest.(check bool) "silent to probes" false (World.responding w h);
  Alcotest.(check bool) "switches always respond" true
    (World.responding w (List.hd (Graph.switches (World.graph w))));
  World.revive_host w name;
  Alcotest.(check bool) "answers again" true (World.responding w h)

let test_world_deferred_repair () =
  let g, _ = Generators.now_c () in
  let w = World.create g in
  let wires = Graph.num_wires (World.graph w) in
  World.defer w ~at_epoch:3 ~label:"noop repair" (fun g -> g);
  Alcotest.(check (list string)) "not due yet" [] (World.due_repairs w ~epoch:2);
  Alcotest.(check (list string)) "due at 3" [ "noop repair" ]
    (World.due_repairs w ~epoch:3);
  Alcotest.(check (list string)) "applied once" [] (World.due_repairs w ~epoch:3);
  Alcotest.(check int) "wiring untouched by noop" wires
    (Graph.num_wires (World.graph w))

(* ---------- schedule ---------- *)

let test_schedule_parse () =
  match Schedule.parse "2:cut,4:flap=3,6:isolate,8:kill-leader,9:revive=C-h4" with
  | Error e -> Alcotest.fail e
  | Ok s ->
    Alcotest.(check int) "last epoch" 9 (Schedule.last_epoch s);
    Alcotest.(check bool) "cut at 2" true
      (Schedule.actions_at s 2 = [ Schedule.Cut_links 1 ]);
    Alcotest.(check bool) "flap at 4" true
      (Schedule.actions_at s 4 = [ Schedule.Flap_link 3 ]);
    Alcotest.(check bool) "nothing at 5" true (Schedule.actions_at s 5 = []);
    Alcotest.(check bool) "kill-leader at 8" true
      (Schedule.actions_at s 8 = [ Schedule.Kill_leader ]);
    Alcotest.(check bool) "revive at 9" true
      (Schedule.actions_at s 9 = [ Schedule.Revive_host "C-h4" ])

let test_schedule_parse_rejects () =
  List.iter
    (fun s ->
      match Schedule.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed schedule %S" s)
    [ "nonsense"; "1:warp"; "x:cut"; "1:cut=many"; "-1:cut" ]

let test_schedule_empty () =
  match Schedule.parse "" with
  | Ok s -> Alcotest.(check int) "empty schedule" (-1) (Schedule.last_epoch s)
  | Error e -> Alcotest.fail e

(* ---------- delta planning ---------- *)

let table_of g = San_routing.Routes.compute g

let test_delta_cold_ledger_ships_full () =
  let g, _ = Generators.now_c () in
  let table = table_of g in
  let p = Delta.plan ~installed:Delta.empty table in
  Alcotest.(check int) "one slice per host" (Graph.num_hosts g)
    (List.length p.Delta.slices);
  List.iter
    (fun (s : Delta.slice) ->
      Alcotest.(check bool) ("cold slice is full: " ^ s.Delta.owner) true
        (s.Delta.kind = Delta.Full))
    p.Delta.slices;
  Alcotest.(check int) "delta cost equals full cost" p.Delta.full_bytes
    p.Delta.delta_bytes;
  Alcotest.(check int) "nothing unchanged" 0 p.Delta.unchanged_hosts

let test_delta_identical_table_ships_nothing () =
  let g, _ = Generators.now_c () in
  let table = table_of g in
  let p = Delta.plan ~installed:(Delta.of_routes table) table in
  Alcotest.(check int) "every host unchanged" (Graph.num_hosts g)
    p.Delta.unchanged_hosts;
  Alcotest.(check int) "no bytes to ship" 0 p.Delta.delta_bytes

let test_delta_distribute_advances_ledger () =
  let g, _ = Generators.now_c () in
  let table = table_of g in
  let leader = Option.get (Graph.host_by_name g "C-util") in
  match Delta.distribute ~installed:Delta.empty table ~actual:g ~leader with
  | Error e -> Alcotest.fail e
  | Ok rep ->
    Alcotest.(check int) "all slices land" 0 rep.Delta.dist.D.hosts_missed;
    Alcotest.(check bool) "cold start ships real bytes" true
      (rep.Delta.sent_bytes > 0);
    (* a second distribution of the same table has nothing to say *)
    let p = Delta.plan ~installed:rep.Delta.installed table in
    Alcotest.(check int) "ledger now current" (Graph.num_hosts g)
      p.Delta.unchanged_hosts

(* ---------- the acceptance scenario ---------- *)

(* A scripted link cut on a fixed-seed topology: the daemon must catch
   it with the cheap incremental sweep, remap, and restore full route
   coverage by delta distribution within 2 epochs of detection —
   shipping strictly fewer bytes than a full redistribution would. *)
let test_daemon_converges_after_link_cut () =
  let g, _ = Generators.now_c () in
  let schedule = Result.get_ok (Schedule.parse "2:cut") in
  let o =
    Result.get_ok (Daemon.run ~schedule ~epochs:6 g)
  in
  let report e = List.nth o.Daemon.reports e in
  (* quiet epoch before the fault: verified, no distribution *)
  let r1 = report 1 in
  Alcotest.(check bool) "epoch 1 verified" true (r1.Daemon.verdict = Daemon.Verified);
  Alcotest.(check bool) "epoch 1 ships nothing" true (r1.Daemon.dist = None);
  (* the cut is detected by incremental verify at epoch 2 *)
  let r2 = report 2 in
  (match r2.Daemon.verdict with
  | Daemon.Changed n -> Alcotest.(check bool) "discrepancies seen" true (n > 0)
  | _ -> Alcotest.fail "epoch 2 should detect the cut");
  Alcotest.(check bool) "remap phase entered" true
    (List.mem Daemon.Remapping r2.Daemon.phases);
  (* routes re-installed with hosts_missed = 0 within 2 epochs *)
  let converged =
    List.exists
      (fun (r : Daemon.epoch_report) ->
        r.Daemon.epoch >= 2 && r.Daemon.epoch <= 4
        && r.Daemon.hosts_total > 0
        && r.Daemon.hosts_covered = r.Daemon.hosts_total
        &&
        match r.Daemon.dist with
        | Some d -> d.Delta.dist.D.hosts_missed = 0
        | None -> false)
      o.Daemon.reports
  in
  Alcotest.(check bool) "full coverage within 2 epochs of the fault" true
    converged;
  let inc =
    match o.Daemon.incidents with
    | [ i ] -> i
    | l -> Alcotest.failf "expected exactly one incident, got %d" (List.length l)
  in
  Alcotest.(check int) "detected at epoch 2" 2 inc.Daemon.detected_epoch;
  Alcotest.(check bool) "resolved within 2 epochs" true
    (inc.Daemon.resolved_epoch <= 4);
  Alcotest.(check bool) "convergence time is positive" true
    (inc.Daemon.converge_ns > 0.0);
  (* the localized fault ships strictly fewer bytes than a full
     redistribution of every slice *)
  let d2 = Option.get r2.Daemon.dist in
  Alcotest.(check bool) "delta strictly beats full redistribution" true
    (d2.Delta.sent_bytes < d2.Delta.full_sent_bytes);
  Alcotest.(check bool) "most slices untouched by a single cut" true
    (d2.Delta.plan.Delta.unchanged_hosts > Graph.num_hosts g / 2);
  Alcotest.(check bool) "daemon ends stable" true
    (o.Daemon.final_phase = Daemon.Stable)

let test_daemon_deterministic () =
  let g, _ = Generators.now_c () in
  let schedule = Result.get_ok (Schedule.parse "1:cut,3:flap=2") in
  let run () = Result.get_ok (Daemon.run ~schedule ~epochs:6 g) in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical epoch reports" true
    (a.Daemon.reports = b.Daemon.reports);
  Alcotest.(check bool) "identical incidents" true
    (a.Daemon.incidents = b.Daemon.incidents)

let test_daemon_reelects_on_leader_death () =
  let g, _ = Generators.now_c () in
  let schedule = Result.get_ok (Schedule.parse "2:kill-leader") in
  let o = Result.get_ok (Daemon.run ~schedule ~epochs:6 g) in
  Alcotest.(check int) "two elections" 2 o.Daemon.elections;
  let r0 = List.nth o.Daemon.reports 0 in
  let r2 = List.nth o.Daemon.reports 2 in
  Alcotest.(check bool) "new leader took over" true
    (r2.Daemon.elected && r2.Daemon.leader <> r0.Daemon.leader);
  Alcotest.(check bool) "still converges" true
    (o.Daemon.final_phase = Daemon.Stable)

let test_daemon_quiet_run_never_redistributes () =
  let g, _ = Generators.now_c () in
  let o = Result.get_ok (Daemon.run ~epochs:5 g) in
  Alcotest.(check int) "one cold-start remap only" 1 o.Daemon.remaps;
  List.iteri
    (fun i (r : Daemon.epoch_report) ->
      if i > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "epoch %d ships nothing" i)
          true (r.Daemon.dist = None))
    o.Daemon.reports

let test_daemon_rejects_hostless_net () =
  let g = Graph.create () in
  ignore (Graph.add_switch g ());
  match Daemon.run ~epochs:1 g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a network with no hosts cannot be daemonized"

let () =
  Alcotest.run "san_service"
    [
      ( "world",
        [
          Alcotest.test_case "kill and revive" `Quick test_world_kill_revive;
          Alcotest.test_case "deferred repair" `Quick test_world_deferred_repair;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "parse" `Quick test_schedule_parse;
          Alcotest.test_case "rejects garbage" `Quick test_schedule_parse_rejects;
          Alcotest.test_case "empty" `Quick test_schedule_empty;
        ] );
      ( "delta",
        [
          Alcotest.test_case "cold ledger ships full" `Quick
            test_delta_cold_ledger_ships_full;
          Alcotest.test_case "identical table ships nothing" `Quick
            test_delta_identical_table_ships_nothing;
          Alcotest.test_case "distribute advances ledger" `Quick
            test_delta_distribute_advances_ledger;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "converges after link cut" `Quick
            test_daemon_converges_after_link_cut;
          Alcotest.test_case "deterministic" `Quick test_daemon_deterministic;
          Alcotest.test_case "re-elects on leader death" `Quick
            test_daemon_reelects_on_leader_death;
          Alcotest.test_case "quiet run" `Quick
            test_daemon_quiet_run_never_redistributes;
          Alcotest.test_case "rejects hostless net" `Quick
            test_daemon_rejects_hostless_net;
        ] );
    ]
