open San_topology
open San_shard
module Fabric = San_fabric.Fabric

(* ---------- fixtures ---------- *)

let ft100 () =
  match Fabric.find_preset "ft-100" with
  | Some p -> p.Fabric.p_build ~seed:7
  | None -> Alcotest.fail "ft-100 preset missing"

(* A fabric big enough (> 300 nodes) to exercise the localized depth
   bound rather than the small-graph oracle path. *)
let mid_fabric () =
  let spec =
    {
      Fabric.default with
      Fabric.levels = 2;
      radix = 8;
      edge_switches = 81;
      hosts_per_edge = 4;
    }
  in
  Fabric.build ~seed:11 spec

let solo_map g =
  let m = List.hd (Graph.hosts g) in
  let depth = Core_set.search_depth g ~root:m in
  let net = San_simnet.Network.create g in
  let r =
    San_mapper.Berkeley.run ~depth:(San_mapper.Berkeley.Fixed depth) net
      ~mapper:m
  in
  match r.San_mapper.Berkeley.map with
  | Ok map -> (m, map)
  | Error e -> Alcotest.fail ("solo map failed: " ^ e)

let plan_fingerprint (t : Region.t) =
  String.concat ";"
    (Printf.sprintf "shards=%d coord=%d comp=%d" t.Region.shards
       t.Region.coordinator t.Region.comp_nodes
    :: List.map
         (fun (sp : Region.shard_plan) ->
           Printf.sprintf "%d:%s r=%d d=%d o=%d c=%d" sp.Region.idx
             sp.Region.mapper_name sp.Region.radius sp.Region.depth
             sp.Region.owned sp.Region.covered)
         t.Region.plans)

(* ---------- planner ---------- *)

let test_plan_deterministic () =
  let g = ft100 () in
  let p1 = Region.plan ~seed:3 g ~shards:4 in
  let p2 = Region.plan ~seed:3 g ~shards:4 in
  match (p1, p2) with
  | Ok a, Ok b ->
    Alcotest.(check string)
      "same seed, same plan" (plan_fingerprint a) (plan_fingerprint b)
  | _ -> Alcotest.fail "planning failed"

let test_plan_seed_matters () =
  let g = ft100 () in
  match (Region.plan ~seed:1 g ~shards:4, Region.plan ~seed:2 g ~shards:4) with
  | Ok a, Ok b ->
    (* Different seeds place different mapper sets (first mapper is the
       fixed root, so compare the rest). *)
    let names t =
      List.map (fun sp -> sp.Region.mapper_name) t.Region.plans
    in
    Alcotest.(check bool)
      "different seeds, different placements" true
      (names a <> names b)
  | _ -> Alcotest.fail "planning failed"

let test_plan_anchor_pairs () =
  let g = ft100 () in
  match Region.plan ~seed:5 g ~shards:4 with
  | Error e -> Alcotest.fail e
  | Ok t ->
    let plans = Array.of_list t.Region.plans in
    let dist = Region.distances g t in
    let kept i h =
      h = plans.(i).Region.mapper
      ||
      match Graph.wired_ports g h with
      | (_, (s, _)) :: _ when not (Graph.is_host g s) ->
        dist.(i).(s) <= plans.(i).Region.radius
      | _ -> false
    in
    let k = Array.length plans in
    for i = 0 to k - 1 do
      for j = i + 1 to k - 1 do
        let shared =
          List.exists (fun h -> kept i h && kept j h) (Graph.hosts g)
        in
        Alcotest.(check bool)
          (Printf.sprintf "shards %d and %d share an anchor host" i j)
          true shared
      done
    done

let test_plan_clamps () =
  let g = Generators.fat_tree ~leaves:2 ~hosts_per_leaf:2 ~spines:1 () in
  match Region.plan g ~shards:64 with
  | Error e -> Alcotest.fail e
  | Ok t ->
    Alcotest.(check bool)
      "clamped to host population" true
      (t.Region.shards <= List.length (Graph.hosts g))

(* ---------- runner: agreement with the solo mapper ---------- *)

let check_agreement g counts =
  let m, solo = solo_map g in
  List.iter
    (fun shards ->
      match Runner.run ~seed:42 ~root:m g ~shards with
      | Error e -> Alcotest.fail (Printf.sprintf "%d shards: %s" shards e)
      | Ok r -> (
        Alcotest.(check (list Alcotest.int))
          (Printf.sprintf "%d shards: no dropped views" shards)
          [] r.Runner.dropped_views;
        match r.Runner.map with
        | Error e ->
          Alcotest.fail (Printf.sprintf "%d shards: merge failed: %s" shards e)
        | Ok merged -> (
          match Iso.check ~map:merged ~actual:solo () with
          | Ok () -> ()
          | Error e ->
            Alcotest.fail
              (Printf.sprintf "%d shards: merged map not iso to solo: %s"
                 shards e))))
    counts

let test_agreement_ft100 () = check_agreement (ft100 ()) [ 1; 2; 4; 8 ]
let test_agreement_mid () = check_agreement (mid_fabric ()) [ 4 ]

let test_agreement_now () =
  let g, _ = Generators.now_cab () in
  check_agreement g [ 1; 2; 4 ]

(* ---------- runner: stale view conflict resolution ---------- *)

let test_stale_resolved () =
  let g = ft100 () in
  let m, solo = solo_map g in
  San_why.Why.set_enabled true;
  Fun.protect ~finally:(fun () -> San_why.Why.set_enabled false) @@ fun () ->
  match Runner.run ~seed:42 ~root:m ~stale:1 g ~shards:4 with
  | Error e -> Alcotest.fail e
  | Ok r -> (
    let stale_ran =
      List.exists (fun s -> s.Runner.s_stale) r.Runner.reports
    in
    Alcotest.(check bool) "a stale shard ran" true stale_ran;
    Alcotest.(check bool)
      "conflicts were resolved" true
      (r.Runner.resolutions <> []);
    List.iter
      (fun (res : Merge.resolution) ->
        Alcotest.(check string)
          "stale view classified" "stale-view" res.Merge.r_class;
        Alcotest.(check bool)
          "resolution recorded in the why ledger" true
          (res.Merge.r_did >= 0))
      r.Runner.resolutions;
    (* Every resolution must be justified by probe evidence. *)
    let snap = San_why.Why.capture () in
    List.iter
      (fun (res : Merge.resolution) ->
        let leaves = San_why.Explain.leaves snap res.Merge.r_did in
        let has_probe =
          List.exists
            (fun (_, e) ->
              match e with San_why.Why.Probe _ -> true | _ -> false)
            leaves
        in
        Alcotest.(check bool) "resolution cites probe evidence" true
          has_probe)
      r.Runner.resolutions;
    match r.Runner.map with
    | Error e -> Alcotest.fail ("merge failed: " ^ e)
    | Ok merged -> (
      match Iso.check ~map:merged ~actual:solo () with
      | Ok () -> ()
      | Error e ->
        Alcotest.fail ("merged map (with stale shard) not iso to solo: " ^ e)))

(* ---------- budgets and accounting ---------- *)

let test_reports_accounting () =
  let g = ft100 () in
  match Runner.run ~seed:0 g ~shards:4 with
  | Error e -> Alcotest.fail e
  | Ok r ->
    let sum = List.fold_left (fun a s -> a + s.Runner.s_probes) 0 r.Runner.reports in
    Alcotest.(check int) "probes add up" sum r.Runner.total_probes;
    List.iter
      (fun s ->
        Alcotest.(check bool)
          (Printf.sprintf "shard %d within its advisory budget" s.Runner.s_idx)
          false s.Runner.s_over_budget)
      r.Runner.reports;
    Alcotest.(check bool) "wall <= sum" true (r.Runner.wall_ns <= r.Runner.sum_ns);
    Alcotest.(check bool) "coordinator named" true (r.Runner.coordinator <> "")

(* ---------- spread_mappers satellite ---------- *)

let test_spread_mappers () =
  let g = ft100 () in
  let hosts = Graph.hosts g in
  let n = List.length hosts in
  (* Unseeded: backward-compatible, starts at the first host. *)
  let s = San_mapper.Parallel.spread_mappers g ~count:4 in
  Alcotest.(check int) "unseeded count" 4 (List.length s);
  Alcotest.(check bool) "unseeded includes first host" true
    (List.mem (List.hd hosts) s);
  (* Degenerate count > hosts: distinct nodes, clamped. *)
  let all = San_mapper.Parallel.spread_mappers g ~count:(n + 50) in
  Alcotest.(check int) "clamped to hosts" n (List.length all);
  Alcotest.(check int) "no repeats" n
    (List.length (List.sort_uniq compare all));
  (* Seeded: replayable and distinct. *)
  let a = San_mapper.Parallel.spread_mappers ~seed:9 g ~count:6 in
  let b = San_mapper.Parallel.spread_mappers ~seed:9 g ~count:6 in
  Alcotest.(check bool) "seeded replays" true (a = b);
  Alcotest.(check int) "seeded distinct" (List.length a)
    (List.length (List.sort_uniq compare a))

let () =
  Alcotest.run "shard"
    [
      ( "planner",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "seed matters" `Quick test_plan_seed_matters;
          Alcotest.test_case "anchor pairs" `Quick test_plan_anchor_pairs;
          Alcotest.test_case "clamps" `Quick test_plan_clamps;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "ft-100 x {1,2,4,8}" `Quick test_agreement_ft100;
          Alcotest.test_case "mid fabric x 4" `Quick test_agreement_mid;
          Alcotest.test_case "now-cab x {1,2,4}" `Quick test_agreement_now;
        ] );
      ( "conflicts",
        [ Alcotest.test_case "stale view resolved" `Quick test_stale_resolved ] );
      ( "accounting",
        [ Alcotest.test_case "reports" `Quick test_reports_accounting ] );
      ( "placement",
        [ Alcotest.test_case "spread_mappers" `Quick test_spread_mappers ] );
    ]
