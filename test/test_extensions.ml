open San_topology
open San_mapper

let qcheck t = QCheck_alcotest.to_alcotest t

(* ---------- the §3.1 simplified labelling oracle ---------- *)

let labels_map g mapper_name depth =
  let mapper = Option.get (Graph.host_by_name g mapper_name) in
  let net = San_simnet.Network.create g in
  Labels.run ~depth net ~mapper

let test_labels_star () =
  let g = Generators.star ~leaves:3 () in
  let r = labels_map g "h0" Berkeley.Oracle in
  (match r.Labels.map with
  | Ok m ->
    Alcotest.(check bool) "quotient isomorphic to actual" true
      (Iso.equal ~map:m ~actual:g ())
  | Error e -> Alcotest.failf "labels failed: %s" e);
  Alcotest.(check bool) "tree at least as big as quotient" true
    (r.Labels.tree_vertices >= r.Labels.labels)

let test_labels_prunes_f () =
  let g = Generators.pendant_branch () in
  let r = labels_map g "h0" Berkeley.Oracle in
  match r.Labels.map with
  | Ok m ->
    Alcotest.(check int) "tail pruned from quotient" 2 (Graph.num_switches m);
    Alcotest.(check bool) "isomorphic to core" true
      (Iso.equal ~map:m ~actual:g ~exclude:(Core_set.separated_set g) ())
  | Error e -> Alcotest.failf "labels failed: %s" e

(* The §3.3 claim, executably: the production algorithm computes the
   same map as the simplified one. *)
let labels_agree_prop =
  QCheck.Test.make ~name:"simplified == production on random nets" ~count:20
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, switches) ->
      let rng = San_util.Prng.create ((seed * 7) + switches) in
      let g =
        Generators.random_connected ~rng ~switches ~hosts:3 ~extra_links:1 ()
      in
      (* Cap the oracle's exponential tree with a fixed budget both
         algorithms share. *)
      let root = Option.get (Graph.host_by_name g "h0") in
      let depth = Berkeley.Fixed (min 8 (Core_set.search_depth g ~root)) in
      let rl = labels_map g "h0" depth in
      let mapper = Option.get (Graph.host_by_name g "h0") in
      let net = San_simnet.Network.create g in
      let rb = Berkeley.run ~depth net ~mapper in
      match (rl.Labels.map, rb.Berkeley.map) with
      | Ok a, Ok b -> Iso.equal ~map:a ~actual:b ()
      | Error _, Error _ -> true
      | _ -> false)

(* ---------- map merging ---------- *)

let test_union_identical () =
  let g, _ = Generators.now_c () in
  match Merge_maps.union g g with
  | Ok u ->
    Alcotest.(check bool) "self-union isomorphic" true (Iso.equal ~map:u ~actual:g ())
  | Error e -> Alcotest.failf "self-union failed: %s" e

let split_star () =
  (* A hub with two leaf switches, each with hosts; two partial views
     that share only the hub-side structure through host h0. *)
  let g = Generators.star ~leaves:3 () in
  (* view A: everything within 3 hops of h0; view B: within 3 of h1 *)
  g

let test_union_overlapping_views () =
  let g = split_star () in
  let mk_view center_name =
    let mapper = Option.get (Graph.host_by_name g center_name) in
    let net = San_simnet.Network.create g in
    let r = Berkeley.run ~depth:(Berkeley.Fixed 4) net ~mapper in
    Result.get_ok r.Berkeley.map
  in
  let va = mk_view "h0" and vb = mk_view "h1" in
  match Merge_maps.union va vb with
  | Ok u ->
    Alcotest.(check bool) "union covers the star" true
      (Graph.num_hosts u = 3 && Graph.num_switches u = 4)
  | Error e -> Alcotest.failf "union failed: %s" e

let test_union_no_anchor () =
  let g1 = Graph.create () in
  let s1 = Graph.add_switch g1 () in
  let h1 = Graph.add_host g1 ~name:"only-in-a" in
  Graph.connect g1 (h1, 0) (s1, 0);
  let g2 = Graph.create () in
  let s2 = Graph.add_switch g2 () in
  let h2 = Graph.add_host g2 ~name:"only-in-b" in
  Graph.connect g2 (h2, 0) (s2, 0);
  match Merge_maps.union g1 g2 with
  | Error e ->
    Alcotest.(check string) "anchor error" "maps share no host anchor" e
  | Ok _ -> Alcotest.fail "anchorless union must fail"

let test_union_conflict_detected () =
  (* Two "views" that disagree: in A, host x and host y share a switch;
     in B they sit on two different switches joined by a wire. *)
  let a = Graph.create () in
  let s = Graph.add_switch a () in
  let x = Graph.add_host a ~name:"x" in
  let y = Graph.add_host a ~name:"y" in
  Graph.connect a (x, 0) (s, 0);
  Graph.connect a (y, 0) (s, 1);
  let b = Graph.create () in
  let s1 = Graph.add_switch b () in
  let s2 = Graph.add_switch b () in
  let x' = Graph.add_host b ~name:"x" in
  let y' = Graph.add_host b ~name:"y" in
  Graph.connect b (x', 0) (s1, 0);
  Graph.connect b (y', 0) (s2, 0);
  Graph.connect b (s1, 1) (s2, 1);
  (* In A, x's switch has y at port 1; in B, x's switch has a switch
     at port 1.  The union must not silently accept both. *)
  match Merge_maps.union a b with
  | Error _ -> ()
  | Ok u ->
    (* If it merged, the map must at least not duplicate hosts. *)
    Alcotest.(check bool) "no silent corruption" true (Graph.num_hosts u = 2)

let test_union_port_shift_tolerance () =
  (* The same two-switch network normalised with different port
     offsets must merge cleanly. *)
  let build shift =
    let g = Graph.create () in
    let s0 = Graph.add_switch g () in
    let s1 = Graph.add_switch g () in
    let h0 = Graph.add_host g ~name:"h0" in
    let h1 = Graph.add_host g ~name:"h1" in
    Graph.connect g (h0, 0) (s0, 0 + shift);
    Graph.connect g (h1, 0) (s1, 2 + shift);
    Graph.connect g (s0, 1 + shift) (s1, 3 + shift);
    g
  in
  match Merge_maps.union (build 0) (build 4) with
  | Ok u ->
    Alcotest.(check int) "still two switches" 2 (Graph.num_switches u);
    Alcotest.(check int) "still three wires" 3 (Graph.num_wires u)
  | Error e -> Alcotest.failf "shifted union failed: %s" e

(* ---------- merge error paths: typed conflicts ---------- *)

let check_cls name expected = function
  | Ok _ -> Alcotest.failf "%s: union_c must fail" name
  | Error c ->
    Alcotest.(check string)
      name
      (Merge_maps.class_name expected)
      (Merge_maps.class_name c.Merge_maps.cls);
    c

let test_union_c_no_anchor () =
  let mk name =
    let g = Graph.create () in
    let s = Graph.add_switch g () in
    let h = Graph.add_host g ~name in
    Graph.connect g (h, 0) (s, 0);
    g
  in
  let c =
    check_cls "disjoint host names" Merge_maps.No_anchor
      (Merge_maps.union_c (mk "only-in-a") (mk "only-in-b"))
  in
  (* Nothing pins the maps, so there is no node to blame. *)
  Alcotest.(check bool) "no located node" true (c.Merge_maps.b_node = None)

let test_union_c_unanchorable_fragment () =
  (* b shares a host with a, but also carries an island of two wired
     switches that no probe path ties to any anchor. *)
  let a = Graph.create () in
  let s = Graph.add_switch a () in
  let h = Graph.add_host a ~name:"h0" in
  Graph.connect a (h, 0) (s, 0);
  let b = Graph.create () in
  let s' = Graph.add_switch b () in
  let h' = Graph.add_host b ~name:"h0" in
  Graph.connect b (h', 0) (s', 0);
  let i1 = Graph.add_switch b () in
  let i2 = Graph.add_switch b () in
  Graph.connect b (i1, 0) (i2, 0);
  let c =
    check_cls "island of switches" Merge_maps.Unanchorable
      (Merge_maps.union_c a b)
  in
  (match c.Merge_maps.b_node with
  | Some v ->
    Alcotest.(check bool) "blames an island switch" true (v = i1 || v = i2)
  | None -> Alcotest.fail "unanchorable conflict must locate the node")

let test_union_c_contradictory_frames () =
  (* Both views see h0 and h1 on one switch, but disagree on the port
     distance between them: aligning via h0 gives the switch shift 0,
     aligning via h1 gives shift -1. *)
  let mk h1_port =
    let g = Graph.create () in
    let s = Graph.add_switch g () in
    let h0 = Graph.add_host g ~name:"h0" in
    let h1 = Graph.add_host g ~name:"h1" in
    Graph.connect g (h0, 0) (s, 0);
    Graph.connect g (h1, 0) (s, h1_port);
    g
  in
  let c =
    check_cls "frames disagree" Merge_maps.Frame_mismatch
      (Merge_maps.union_c (mk 1) (mk 2))
  in
  Alcotest.(check bool)
    "locates the contradicting wire" true
    (c.Merge_maps.b_wire <> None)

let test_union_c_name_clash () =
  (* Same switch position, port 1: view a says host h1, view b says
     host h2. Propagation binds b's h2 onto the union's h1 and must
     refuse the identification. *)
  let mk other =
    let g = Graph.create () in
    let s = Graph.add_switch g () in
    let h0 = Graph.add_host g ~name:"h0" in
    let hx = Graph.add_host g ~name:other in
    Graph.connect g (h0, 0) (s, 0);
    Graph.connect g (hx, 0) (s, 1);
    g
  in
  ignore
    (check_cls "host name disagreement" Merge_maps.Name_clash
       (Merge_maps.union_c (mk "h1") (mk "h2")))

let test_union_c_radix_mismatch () =
  let mk radix =
    let g = Graph.create ~radix () in
    let s = Graph.add_switch g () in
    let h = Graph.add_host g ~name:"h0" in
    Graph.connect g (h, 0) (s, 0);
    g
  in
  ignore
    (check_cls "radix disagreement" Merge_maps.Structural
       (Merge_maps.union_c (mk 4) (mk 8)))

let test_union_all_unanchorable_view () =
  (* One of three views shares no host with the others: union_all must
     fail rather than return a map that silently omits it. *)
  let mk names =
    let g = Graph.create () in
    let s = Graph.add_switch g () in
    List.iteri
      (fun i name ->
        let h = Graph.add_host g ~name in
        Graph.connect g (h, 0) (s, i))
      names;
    g
  in
  match Merge_maps.union_all [ mk [ "h0"; "h1" ]; mk [ "h1"; "h2" ]; mk [ "h8"; "h9" ] ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "union_all with an orphan view must fail"

let test_union_all_ordering () =
  (* Three views in an order where the middle one shares no anchor
     with the first until the third is merged. *)
  let mk hosts_wires =
    let g = Graph.create () in
    let sw = Hashtbl.create 4 in
    List.iter
      (fun (hname, swname, port) ->
        let s =
          match Hashtbl.find_opt sw swname with
          | Some s -> s
          | None ->
            let s = Graph.add_switch g ~name:swname () in
            Hashtbl.replace sw swname s;
            s
        in
        let h = Graph.add_host g ~name:hname in
        Graph.connect g (h, 0) (s, port))
      hosts_wires;
    (g, sw)
  in
  let a, _ = mk [ ("h1", "s", 0); ("h2", "s", 1) ] in
  let b, _ = mk [ ("h5", "t", 0); ("h6", "t", 1) ] in
  (* c shares h2 with a and h5 with b and sees the s-t wire. *)
  let c, csw = mk [ ("h2", "s", 1); ("h5", "t", 0) ] in
  Graph.connect c (Hashtbl.find csw "s", 5) (Hashtbl.find csw "t", 5);
  match Merge_maps.union_all [ a; b; c ] with
  | Ok u ->
    Alcotest.(check int) "four hosts" 4 (Graph.num_hosts u)
  | Error e -> Alcotest.failf "union_all failed: %s" e

(* ---------- parallel mapping ---------- *)

let test_parallel_now () =
  let g, _ = Generators.now_cab () in
  let mappers = Parallel.spread_mappers g ~count:4 in
  Alcotest.(check int) "four mappers placed" 4 (List.length mappers);
  let r = Parallel.run ~local_depth:6 ~trust_radius:5 ~mappers g in
  (match r.Parallel.map with
  | Ok m ->
    Alcotest.(check bool) "global map isomorphic" true (Iso.equal ~map:m ~actual:g ())
  | Error e -> Alcotest.failf "merge failed: %s" e);
  Alcotest.(check bool) "wall below sum" true (r.Parallel.wall_ns < r.Parallel.sum_ns);
  Alcotest.(check int) "no local failures" 0 r.Parallel.failed_locals

let test_parallel_beats_solo_wall_clock () =
  let g, _ = Generators.now_cab () in
  let solo =
    let net = San_simnet.Network.create g in
    Berkeley.run net ~mapper:(Option.get (Graph.host_by_name g "C-util"))
  in
  let r =
    Parallel.run ~local_depth:6 ~trust_radius:5
      ~mappers:(Parallel.spread_mappers g ~count:9)
      g
  in
  Alcotest.(check bool) "parallel wall < solo" true
    (r.Parallel.wall_ns < solo.Berkeley.elapsed_ns)

let test_parallel_rejects_bad_mappers () =
  let g, _ = Generators.now_c () in
  Alcotest.(check bool) "empty mapper list rejected" true
    (try
       ignore (Parallel.run ~mappers:[] g);
       false
     with Invalid_argument _ -> true);
  let sw = List.hd (Graph.switches g) in
  Alcotest.(check bool) "switch mapper rejected" true
    (try
       ignore (Parallel.run ~mappers:[ sw ] g);
       false
     with Invalid_argument _ -> true)

(* ---------- randomized mapping ---------- *)

let test_randomized_correct () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let net = San_simnet.Network.create g in
  let r = Randomized.run ~rng:(San_util.Prng.create 4) net ~mapper in
  match r.Randomized.map with
  | Ok m ->
    Alcotest.(check bool) "isomorphic" true (Iso.equal ~map:m ~actual:g ());
    Alcotest.(check int) "coupon probes accounted" 150 r.Randomized.coupon_probes
  | Error e -> Alcotest.failf "randomized failed: %s" e

let randomized_correct_prop =
  QCheck.Test.make ~name:"randomized maps random nets" ~count:15
    QCheck.(pair small_int (int_range 3 7))
    (fun (seed, switches) ->
      let rng = San_util.Prng.create ((seed * 3) + switches) in
      let g =
        Generators.random_connected ~rng ~switches ~hosts:4 ~extra_links:2 ()
      in
      let mapper = Option.get (Graph.host_by_name g "h0") in
      let net = San_simnet.Network.create g in
      let r =
        Randomized.run ~samples:60 ~rng:(San_util.Prng.create seed) net ~mapper
      in
      match r.Randomized.map with
      | Ok m ->
        Iso.equal ~map:m ~actual:g ~exclude:(Core_set.separated_set g) ()
      | Error _ -> false)

(* ---------- walk probe (the §6 firmware tweak) ---------- *)

let test_walk_probe_reads_early_hit () =
  let g = Generators.star ~leaves:2 () in
  let h0 = Option.get (Graph.host_by_name g "h0") in
  let net = San_simnet.Network.create g in
  (* A long walk that hits h1 with turns to spare: h0 -> leaf0 (entry
     1, hub at port 0: turn -1) -> hub (entry 0; leaf1 at port 1:
     turn +1) -> leaf1 (entry 0; h1 at port 1: turn +1) -> h1, with
     extra turns appended. *)
  match San_simnet.Network.walk_probe net ~src:h0 ~turns:[ -1; 1; 1; 5; 5 ] with
  | Some (name, consumed), _ ->
    Alcotest.(check string) "read by h1" "h1" name;
    Alcotest.(check int) "three turns consumed" 3 consumed
  | None, _ -> Alcotest.fail "walk probe should be read by the early host"

let test_walk_probe_silent_host () =
  let g = Generators.star ~leaves:2 () in
  let h0 = Option.get (Graph.host_by_name g "h0") in
  let h1 = Option.get (Graph.host_by_name g "h1") in
  let net = San_simnet.Network.create ~responding:(fun h -> h <> h1) g in
  match San_simnet.Network.walk_probe net ~src:h0 ~turns:[ -1; 1; 1; 5 ] with
  | None, _ -> ()
  | Some _, _ -> Alcotest.fail "silent host must not read the worm"

(* ---------- cross traffic ---------- *)

let test_traffic_lossless_at_zero () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let clean = San_simnet.Network.create g in
  let r0 = Berkeley.run clean ~mapper in
  let lossy = San_simnet.Network.create ~traffic:(0.0, San_util.Prng.create 1) g in
  let r1 = Berkeley.run lossy ~mapper in
  Alcotest.(check int) "identical probe counts at zero loss"
    (Berkeley.total_probes r0) (Berkeley.total_probes r1)

(* 8%: mild loss rates no longer degrade the retryless run, because
   replicates of explored classes re-probe still-unknown slots and so
   give every lost probe organic second chances. *)
let test_retries_restore_map_under_loss () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let run retries =
    let net =
      San_simnet.Network.create ~traffic:(0.08, San_util.Prng.create 3) g
    in
    let policy = { Berkeley.faithful with retries } in
    (Berkeley.run ~policy net ~mapper).Berkeley.map
  in
  (match run 0 with
  | Ok m ->
    Alcotest.(check bool) "lossy map degraded without retries" false
      (Iso.equal ~map:m ~actual:g ())
  | Error _ -> ());
  match run 2 with
  | Ok m ->
    Alcotest.(check bool) "two retries restore the map" true
      (Iso.equal ~map:m ~actual:g ())
  | Error e -> Alcotest.failf "retry run failed: %s" e

let test_traffic_degrades_gracefully () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let lossy =
    San_simnet.Network.create ~traffic:(0.10, San_util.Prng.create 1) g
  in
  let r = Berkeley.run lossy ~mapper in
  (* Heavy loss: mapping still terminates and exports something. *)
  match r.Berkeley.map with
  | Ok m -> Alcotest.(check bool) "some map" true (Graph.num_nodes m >= 1)
  | Error _ -> () (* unresolved replicates acceptable under heavy loss *)

(* appended: on-line mapping over the event simulator *)
let test_online_quiescent_matches_cut_through () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let online =
    Online.run ~traffic_per_ms:0.0 ~rng:(San_util.Prng.create 1) g ~mapper
  in
  let analytic =
    let net =
      San_simnet.Network.create ~model:San_simnet.Collision.Cut_through g
    in
    Berkeley.run net ~mapper
  in
  (* The event-driven simulator independently reproduces the analytic
     cut-through response function: same probe count, same map. *)
  Alcotest.(check int) "probe counts agree"
    (Berkeley.total_probes analytic) online.Online.probes;
  match (online.Online.map, analytic.Berkeley.map) with
  | Ok a, Ok b ->
    Alcotest.(check bool) "maps agree" true (Iso.equal ~map:a ~actual:b ())
  | _ -> Alcotest.fail "both should export"

let test_online_under_traffic_still_correct () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let r =
    Online.run ~traffic_per_ms:20.0 ~rng:(San_util.Prng.create 2) g ~mapper
  in
  Alcotest.(check bool) "background flowed" true (r.Online.background_injected > 100);
  match r.Online.map with
  | Ok m ->
    Alcotest.(check bool) "still isomorphic under load" true
      (Iso.equal ~map:m ~actual:g ())
  | Error e -> Alcotest.failf "map failed: %s" e

(* ---------- self-identifying switches (§6 what-if) ---------- *)

let test_selfid_correct_and_cheaper () =
  let g, _ = Generators.now_cab () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let r = Selfid.run g ~mapper in
  (match r.Selfid.map with
  | Ok m ->
    Alcotest.(check bool) "isomorphic (full N: nothing is pruned)" true
      (Iso.equal ~map:m ~actual:g ());
    (* With identities, ports are absolute: the map should align with
       zero shift everywhere — checked implicitly by Iso. *)
    Alcotest.(check int) "one exploration per switch" 40 r.Selfid.explorations
  | Error e -> Alcotest.failf "selfid failed: %s" e);
  let net = San_simnet.Network.create g in
  let rb = Berkeley.run net ~mapper in
  Alcotest.(check bool) "way fewer probes than Berkeley" true
    (r.Selfid.probes * 3 < Berkeley.total_probes rb)

let selfid_prop =
  QCheck.Test.make ~name:"selfid maps random nets" ~count:25
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, switches) ->
      let rng = San_util.Prng.create ((seed * 23) + switches) in
      let g =
        Generators.random_connected ~rng ~switches ~hosts:3 ~extra_links:2 ()
      in
      let mapper = Option.get (Graph.host_by_name g "h0") in
      let r = Selfid.run g ~mapper in
      match r.Selfid.map with
      | Ok m -> Iso.equal ~map:m ~actual:g ()
      | Error _ -> false)

(* ---------- incremental remapping ---------- *)

let test_incremental_unchanged () =
  let g, _ = Generators.now_cab () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let net = San_simnet.Network.create g in
  let full = Berkeley.run net ~mapper in
  let map0 = Result.get_ok full.Berkeley.map in
  let net1 = San_simnet.Network.create g in
  let r = Incremental.run net1 ~mapper ~previous:map0 in
  Alcotest.(check bool) "verdict unchanged" true (r.Incremental.verdict = Incremental.Unchanged);
  Alcotest.(check bool) "far fewer probes than a remap" true
    (r.Incremental.verify_probes * 5 < Berkeley.total_probes full);
  Alcotest.(check bool) "far faster than a remap" true
    (r.Incremental.total_elapsed_ns *. 5.0 < full.Berkeley.elapsed_ns);
  Alcotest.(check bool) "returns the same map" true
    (match r.Incremental.map with Ok m -> m == map0 | Error _ -> false)

let test_incremental_detects_and_recovers () =
  let g, _ = Generators.now_cab () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let net = San_simnet.Network.create g in
  let map0 = Result.get_ok (Berkeley.run net ~mapper).Berkeley.map in
  let rng = San_util.Prng.create 77 in
  let g1 = Faults.remove_random_links ~rng g ~count:2 in
  let net1 = San_simnet.Network.create g1 in
  let r = Incremental.run net1 ~mapper ~previous:map0 in
  (match r.Incremental.verdict with
  | Incremental.Changed n -> Alcotest.(check bool) "discrepancies seen" true (n > 0)
  | Incremental.Unchanged -> Alcotest.fail "change missed");
  match r.Incremental.map with
  | Ok m ->
    Alcotest.(check bool) "recovered map isomorphic to new reality" true
      (Iso.equal ~map:m ~actual:g1 ~exclude:(Core_set.separated_set g1) ())
  | Error e -> Alcotest.failf "recovery failed: %s" e

let test_incremental_detects_silent_host () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let net = San_simnet.Network.create g in
  let map0 = Result.get_ok (Berkeley.run net ~mapper).Berkeley.map in
  let silent = Option.get (Graph.host_by_name g "C-h9") in
  let net1 = San_simnet.Network.create ~responding:(fun h -> h <> silent) g in
  let r = Incremental.run net1 ~mapper ~previous:map0 in
  match r.Incremental.verdict with
  | Incremental.Changed _ -> ()
  | Incremental.Unchanged -> Alcotest.fail "dead daemon missed"

let test_incremental_detects_new_link () =
  let g, _ = Generators.now_c () in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let net = San_simnet.Network.create g in
  let map0 = Result.get_ok (Berkeley.run net ~mapper).Berkeley.map in
  let rng = San_util.Prng.create 3 in
  match Faults.add_random_link ~rng g with
  | None -> Alcotest.fail "expected a free port"
  | Some g1 -> (
    let net1 = San_simnet.Network.create g1 in
    let r = Incremental.run net1 ~mapper ~previous:map0 in
    match r.Incremental.verdict with
    | Incremental.Changed _ -> ()
    | Incremental.Unchanged -> Alcotest.fail "new cable missed")

let () =
  Alcotest.run "san_mapper.extensions"
    [
      ( "labels oracle",
        [
          Alcotest.test_case "star" `Quick test_labels_star;
          Alcotest.test_case "prunes F" `Quick test_labels_prunes_f;
          qcheck labels_agree_prop;
        ] );
      ( "map merging",
        [
          Alcotest.test_case "self union" `Quick test_union_identical;
          Alcotest.test_case "overlapping views" `Quick test_union_overlapping_views;
          Alcotest.test_case "no anchor" `Quick test_union_no_anchor;
          Alcotest.test_case "conflict" `Quick test_union_conflict_detected;
          Alcotest.test_case "port shifts" `Quick test_union_port_shift_tolerance;
          Alcotest.test_case "union_all ordering" `Quick test_union_all_ordering;
          Alcotest.test_case "conflict: no anchor" `Quick test_union_c_no_anchor;
          Alcotest.test_case "conflict: unanchorable" `Quick
            test_union_c_unanchorable_fragment;
          Alcotest.test_case "conflict: frame mismatch" `Quick
            test_union_c_contradictory_frames;
          Alcotest.test_case "conflict: name clash" `Quick test_union_c_name_clash;
          Alcotest.test_case "conflict: structural" `Quick
            test_union_c_radix_mismatch;
          Alcotest.test_case "union_all orphan view" `Quick
            test_union_all_unanchorable_view;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "NOW" `Slow test_parallel_now;
          Alcotest.test_case "beats solo wall" `Slow test_parallel_beats_solo_wall_clock;
          Alcotest.test_case "bad mappers" `Quick test_parallel_rejects_bad_mappers;
        ] );
      ( "randomized",
        [
          Alcotest.test_case "C" `Quick test_randomized_correct;
          qcheck randomized_correct_prop;
        ] );
      ( "walk probe",
        [
          Alcotest.test_case "early hit read" `Quick test_walk_probe_reads_early_hit;
          Alcotest.test_case "silent host" `Quick test_walk_probe_silent_host;
        ] );
      ( "cross traffic",
        [
          Alcotest.test_case "zero loss" `Quick test_traffic_lossless_at_zero;
          Alcotest.test_case "heavy loss" `Quick test_traffic_degrades_gracefully;
          Alcotest.test_case "retries restore" `Quick test_retries_restore_map_under_loss;
        ] );
      ( "online",
        [
          Alcotest.test_case "quiescent = cut-through" `Slow
            test_online_quiescent_matches_cut_through;
          Alcotest.test_case "correct under load" `Slow
            test_online_under_traffic_still_correct;
        ] );
      ( "selfid",
        [
          Alcotest.test_case "correct and cheaper" `Quick test_selfid_correct_and_cheaper;
          qcheck selfid_prop;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "unchanged epoch" `Slow test_incremental_unchanged;
          Alcotest.test_case "detects and recovers" `Slow
            test_incremental_detects_and_recovers;
          Alcotest.test_case "dead daemon" `Quick test_incremental_detects_silent_host;
          Alcotest.test_case "new cable" `Quick test_incremental_detects_new_link;
        ] );
    ]
