(* San_cover: budget parsing, the confidence model's shape, budgeted
   partial mapping end to end (subgraph embedding, overshoot bound,
   recovered fractions, determinism), the directed (Goldstein)
   wrapper, and the artifact JSON. *)

open San_topology
open San_simnet
module Berkeley = San_mapper.Berkeley
module Cover = San_cover.Cover
module Confidence = San_cover.Confidence
module Directed = San_cover.Directed

let mapper_of g name = Option.get (Graph.host_by_name g name)

(* ---------- budget parsing ---------- *)

let test_parse_budget () =
  (match Cover.parse_budget "0.3" with
  | Ok (Cover.Frac f) -> Alcotest.(check (float 1e-9)) "frac" 0.3 f
  | _ -> Alcotest.fail "0.3 should parse as Frac");
  (match Cover.parse_budget "1" with
  | Ok (Cover.Frac f) -> Alcotest.(check (float 1e-9)) "full frac" 1.0 f
  | _ -> Alcotest.fail "1 should parse as Frac 1.0");
  (match Cover.parse_budget "probes:500" with
  | Ok (Cover.Probes n) -> Alcotest.(check int) "probes" 500 n
  | _ -> Alcotest.fail "probes:500 should parse as Probes");
  List.iter
    (fun s ->
      match Cover.parse_budget s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ "0"; "-0.3"; "1.5"; "probes:0"; "probes:-3"; "probes:x"; "nope"; "" ];
  List.iter
    (fun b ->
      match Cover.parse_budget (Cover.budget_to_string b) with
      | Ok b' when b = b' -> ()
      | _ -> Alcotest.failf "%s does not round-trip" (Cover.budget_to_string b))
    [ Cover.Frac 0.25; Cover.Frac 1.0; Cover.Probes 1234 ]

(* ---------- the confidence model's shape ---------- *)

let test_confidence_shape () =
  let ef ~p ~m ~c =
    Confidence.evidence_factor ~probes:p ~merges:m ~corroborations:c
  in
  Alcotest.(check (float 1e-9)) "no evidence, no confidence" 0.0
    (ef ~p:0 ~m:0 ~c:0);
  (* monotone in probes, bounded by 1 *)
  let last = ref (-1.0) in
  for p = 1 to 50 do
    let v = ef ~p ~m:0 ~c:0 in
    if v <= !last then Alcotest.failf "evidence not monotone at %d probes" p;
    if v >= 1.0 then Alcotest.failf "evidence unbounded at %d probes" p;
    last := v
  done;
  (* corroboration outweighs a replicate merge outweighs a bare probe *)
  Alcotest.(check bool) "merge beats probe" true
    (ef ~p:1 ~m:1 ~c:0 > ef ~p:2 ~m:0 ~c:0);
  Alcotest.(check bool) "corroboration beats merge" true
    (ef ~p:1 ~m:0 ~c:1 > ef ~p:1 ~m:1 ~c:0);
  let sf ~k ~e =
    Confidence.structure_factor ~known_ports:k ~radix:8 ~density:0.8
      ~explored:e
  in
  Alcotest.(check (float 1e-9)) "explored class is structurally certain" 1.0
    (sf ~k:3 ~e:true);
  Alcotest.(check (float 1e-9)) "no known ports, no structure" 0.0
    (sf ~k:0 ~e:false);
  let last = ref (-1.0) in
  for k = 1 to 8 do
    let v = sf ~k ~e:false in
    if v <= !last then Alcotest.failf "structure not monotone at %d ports" k;
    if v > 1.0 then Alcotest.failf "structure above 1 at %d ports" k;
    last := v
  done;
  (* density estimate: clamped, with the no-data fallback *)
  Alcotest.(check (float 1e-9)) "density fallback" 0.5
    (Confidence.wired_density ~explored_ports:0 ~explored_switches:0 ~radix:8);
  Alcotest.(check (float 1e-9)) "density clamps low" 0.05
    (Confidence.wired_density ~explored_ports:0 ~explored_switches:5 ~radix:8);
  Alcotest.(check (float 1e-9)) "density measures" 0.75
    (Confidence.wired_density ~explored_ports:12 ~explored_switches:2 ~radix:8);
  (* score: clamped product *)
  Alcotest.(check (float 1e-9)) "score clamps" 1.0
    (Confidence.score ~evidence:2.0 ~structure:3.0);
  Alcotest.(check bool) "score in bounds" true
    (let s = Confidence.score ~evidence:0.7 ~structure:0.9 in
     s > 0.0 && s < 1.0)

(* ---------- budgeted runs end to end ---------- *)

let overshoot g =
  (* one exploration plus the exempt turn-0 probe, retries = 0 *)
  (4 * (Graph.radix g - 1)) + 1

let run_cab budget =
  let g, _ = Generators.now_cab () in
  let net = Network.create g in
  match Cover.run ~record_trace:false ~budget net ~mapper:(mapper_of g "C-util")
  with
  | Error e -> Alcotest.failf "cover run failed: %s" e
  | Ok rep -> (g, rep)

let test_budgeted_run () =
  let g, rep = run_cab (Cover.Frac 0.3) in
  (match rep.Cover.r_subgraph with
  | Ok () -> ()
  | Error e -> Alcotest.failf "partial map does not embed: %s" e);
  Alcotest.(check bool) "respects the budget plus overshoot" true
    (rep.Cover.r_probes_used <= rep.Cover.r_probe_limit + overshoot g);
  Alcotest.(check bool) "spent less than the full run" true
    (rep.Cover.r_probes_used < rep.Cover.r_full_probes);
  Alcotest.(check bool) "recovered a strict subset of switches" true
    (rep.Cover.r_recovered_switches > 0
    && rep.Cover.r_recovered_switches < rep.Cover.r_full_switches);
  Alcotest.(check bool) "recovered some links" true
    (rep.Cover.r_recovered_links > 0
    && rep.Cover.r_recovered_links <= rep.Cover.r_full_links);
  Alcotest.(check bool) "mean confidence in (0, 1]" true
    (rep.Cover.r_mean_conf > 0.0 && rep.Cover.r_mean_conf <= 1.0);
  List.iter
    (fun (e : Cover.element) ->
      if e.Cover.el_conf < 0.0 || e.Cover.el_conf > 1.0 then
        Alcotest.failf "element %s confidence %g out of bounds" e.Cover.el_label
          e.Cover.el_conf)
    (Cover.elements rep);
  (* element counts match the recovered tallies' source lists *)
  Alcotest.(check int) "one element per recovered host"
    rep.Cover.r_recovered_hosts
    (List.length rep.Cover.r_hosts)

let test_absolute_budget () =
  let g, rep = run_cab (Cover.Probes 200) in
  Alcotest.(check int) "limit is the absolute count" 200
    rep.Cover.r_probe_limit;
  Alcotest.(check bool) "respects it" true
    (rep.Cover.r_probes_used <= 200 + overshoot g)

let test_full_budget_recovers_everything () =
  let _, rep = run_cab (Cover.Frac 1.0) in
  (match rep.Cover.r_subgraph with
  | Ok () -> ()
  | Error e -> Alcotest.failf "full-budget map does not embed: %s" e);
  Alcotest.(check int) "all switches" rep.Cover.r_full_switches
    rep.Cover.r_recovered_switches;
  Alcotest.(check int) "all links" rep.Cover.r_full_links
    rep.Cover.r_recovered_links;
  Alcotest.(check int) "all hosts" rep.Cover.r_full_hosts
    rep.Cover.r_recovered_hosts;
  Alcotest.(check int) "empty frontier" 0 rep.Cover.r_frontier

let test_deterministic () =
  let _, r1 = run_cab (Cover.Frac 0.3) in
  let _, r2 = run_cab (Cover.Frac 0.3) in
  Alcotest.(check string) "two runs produce the identical artifact"
    (San_util.Json.to_string (Cover.report_to_json r1))
    (San_util.Json.to_string (Cover.report_to_json r2))

(* ---------- the directed (Goldstein) wrapper ---------- *)

let test_directed_blocks_probes () =
  let g, _ = Generators.now_cab () in
  let net = Network.create g in
  let d = Directed.create ~seed:7 g in
  Alcotest.(check bool) "some switch-switch wires oriented" true
    (Directed.oriented_wires d > 0);
  match
    Cover.run ~record_trace:false ~directed:d ~budget:(Cover.Frac 1.0) net
      ~mapper:(mapper_of g "C-util")
  with
  | Error e -> Alcotest.failf "directed run failed: %s" e
  | Ok rep ->
    Alcotest.(check bool) "orientation blocked probes" true
      (rep.Cover.r_blocked > 0);
    (match rep.Cover.r_subgraph with
    | Ok () -> ()
    | Error e -> Alcotest.failf "directed partial map does not embed: %s" e);
    Alcotest.(check bool) "directed recovery degrades" true
      (rep.Cover.r_recovered_links < rep.Cover.r_full_links)

(* ---------- the artifact ---------- *)

let test_report_json () =
  let _, rep = run_cab (Cover.Frac 0.3) in
  let s =
    San_util.Json.to_string (Cover.report_to_json ~spec:"cab" ~seed:1 rep)
  in
  match San_util.Json.of_string s with
  | Error e -> Alcotest.failf "artifact does not parse: %s" e
  | Ok j ->
    let module J = San_util.Json in
    let arr k =
      match J.member k j with
      | Some (J.Arr l) -> List.length l
      | _ -> Alcotest.failf "artifact missing %s array" k
    in
    Alcotest.(check int) "hosts array" (List.length rep.Cover.r_hosts)
      (arr "hosts");
    Alcotest.(check int) "switches array" (List.length rep.Cover.r_switches)
      (arr "switches");
    Alcotest.(check int) "links array" (List.length rep.Cover.r_links)
      (arr "links");
    (match J.member "subgraph" j with
    | Some (J.Bool true) -> ()
    | _ -> Alcotest.fail "artifact should record subgraph = true");
    (match J.member "spec" j with
    | Some (J.Str "cab") -> ()
    | _ -> Alcotest.fail "artifact should carry the topology spec")

let () =
  Alcotest.run "cover"
    [
      ( "budget",
        [
          Alcotest.test_case "parse and round-trip" `Quick test_parse_budget;
          Alcotest.test_case "absolute budget" `Quick test_absolute_budget;
        ] );
      ( "confidence",
        [ Alcotest.test_case "model shape" `Quick test_confidence_shape ] );
      ( "budgeted run",
        [
          Alcotest.test_case "30% budget embeds and bounds" `Quick
            test_budgeted_run;
          Alcotest.test_case "full budget recovers everything" `Quick
            test_full_budget_recovers_everything;
          Alcotest.test_case "deterministic artifact" `Quick test_deterministic;
        ] );
      ( "directed",
        [
          Alcotest.test_case "orientation blocks probes" `Quick
            test_directed_blocks_probes;
        ] );
      ( "artifact",
        [ Alcotest.test_case "JSON round-trip" `Quick test_report_json ] );
    ]
