(* The route-serving plane: served answers must be exactly the routes
   the eager table computes, deadlock-free, and the shared-suffix pool
   must reconstruct every route it interned byte for byte. *)

open San_topology
module Routes = San_routing.Routes
module Serve = San_routing.Serve
module Deadlock = San_routing.Deadlock

let fabric name seed =
  match San_fabric.Fabric.find_preset name with
  | Some p -> p.San_fabric.Fabric.p_build ~seed
  | None -> Alcotest.failf "unknown fabric preset %s" name

(* Served next-hops reproduce the eager table, pair for pair. *)
let check_agreement name g =
  let table = Routes.compute g in
  let serve = Serve.create g in
  let hosts = Graph.hosts g in
  List.iter
    (fun dst ->
      List.iter
        (fun src ->
          if src <> dst then
            let expected = Routes.route table ~src ~dst in
            let got = Serve.lookup serve ~src ~dst in
            if got <> expected then
              Alcotest.failf "%s: serve disagrees with table on %s->%s" name
                (Graph.name g src) (Graph.name g dst))
        hosts)
    hosts

let test_agreement_now () =
  check_agreement "c" (fst (Generators.now_c ()));
  check_agreement "ca" (fst (Generators.now_ca ()));
  check_agreement "cab" (fst (Generators.now_cab ()))

(* ft-1k is too big for all pairs in a unit test: agree on a seeded
   sample of destinations (all sources each), and check the served set
   is deadlock-free. *)
let test_agreement_ft1k () =
  let g = fabric "ft-1k" 1 in
  let table = Routes.compute g in
  let serve = Serve.create g in
  let hosts = Array.of_list (Graph.hosts g) in
  let rng = San_util.Prng.create 11 in
  let dsts = Array.init 12 (fun _ -> San_util.Prng.choose rng hosts) in
  let served = ref [] in
  Array.iter
    (fun dst ->
      Array.iter
        (fun src ->
          if src <> dst then begin
            let expected = Routes.route table ~src ~dst in
            let got = Serve.lookup serve ~src ~dst in
            if got <> expected then
              Alcotest.failf "ft-1k: serve disagrees with table on %s->%s"
                (Graph.name g src) (Graph.name g dst);
            match got with
            | Some turns -> served := (src, turns) :: !served
            | None -> Alcotest.failf "ft-1k: no served route"
          end)
        hosts)
    dsts;
  (match Deadlock.check_acyclic g !served with
  | Ok () -> ()
  | Error e -> Alcotest.failf "served routes not deadlock-free: %s" e);
  (* fabric-sized slices genuinely compress: pooled full redistribution
     is strictly cheaper than naive here *)
  let p = San_service.Delta.plan ~installed:San_service.Delta.empty table in
  Alcotest.(check bool)
    "ft-1k packed beats naive full" true
    (p.San_service.Delta.packed_full_bytes < p.San_service.Delta.full_bytes)

(* Deadlock freedom of the served plane on every NOW preset. *)
let test_deadlock_now () =
  List.iter
    (fun (name, g) ->
      let serve = Serve.create g in
      let hosts = Graph.hosts g in
      let served =
        List.concat_map
          (fun dst ->
            List.filter_map
              (fun src ->
                if src = dst then None
                else
                  Option.map
                    (fun turns -> (src, turns))
                    (Serve.lookup serve ~src ~dst))
              hosts)
          hosts
      in
      match Deadlock.check_acyclic g served with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" name e)
    [
      ("c", fst (Generators.now_c ()));
      ("ca", fst (Generators.now_ca ()));
      ("cab", fst (Generators.now_cab ()));
    ]

(* The pool gives back exactly what it interned — compressed-table
   round-trip over a real table's routes, via both the allocating and
   the zero-allocation readers. *)
let test_pool_roundtrip () =
  let g = fst (Generators.now_cab ()) in
  let table = Routes.compute g in
  let pool = Serve.Pool.create () in
  let interned =
    List.map (fun (_, _, turns) -> (Serve.Pool.add pool turns, turns))
    @@ Routes.all table
  in
  let buf = Array.make (Serve.Pool.max_depth pool + 1) 0 in
  List.iter
    (fun (idx, turns) ->
      Alcotest.(check (list int))
        "to_route roundtrip" turns
        (Serve.Pool.to_route pool idx);
      let len = Serve.Pool.write pool idx buf in
      Alcotest.(check (list int))
        "write roundtrip" turns
        (Array.to_list (Array.sub buf 0 len)))
    interned;
  (* sharing actually happened: fewer cells than total turns *)
  Alcotest.(check bool)
    "suffixes shared" true
    (Serve.Pool.cells pool < Serve.Pool.turns_total pool);
  Alcotest.(check bool)
    "packed beats naive" true
    (Serve.Pool.packed_bytes pool
    < 3 * Serve.Pool.entries pool + Serve.Pool.turns_total pool)

(* Warm lookups must not allocate: the whole query loop runs on
   preallocated arrays. A little slack covers the test harness itself. *)
let test_lookup_zero_alloc () =
  let g = fst (Generators.now_c ()) in
  let serve = Serve.create g in
  let hosts = Array.of_list (Graph.hosts g) in
  let src = hosts.(0) and dst = hosts.(Array.length hosts - 1) in
  let buf = Array.make (Graph.num_nodes g) 0 in
  ignore (Serve.lookup_into serve ~src ~dst ~buf);
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Serve.lookup_into serve ~src ~dst ~buf)
  done;
  let w1 = Gc.minor_words () in
  Alcotest.(check bool)
    (Printf.sprintf "10k warm lookups allocated %.0f words" (w1 -. w0))
    true
    (w1 -. w0 < 256.0)

(* Evicting per-destination tables must never change answers. *)
let test_eviction_agrees () =
  let g = fst (Generators.now_ca ()) in
  let table = Routes.compute g in
  let tight = Serve.create ~cache_limit:2 g in
  let hosts = Array.of_list (Graph.hosts g) in
  let rng = San_util.Prng.create 3 in
  for _ = 1 to 2_000 do
    let src = San_util.Prng.choose rng hosts
    and dst = San_util.Prng.choose rng hosts in
    if src <> dst then
      let expected = Routes.route table ~src ~dst in
      if Serve.lookup tight ~src ~dst <> expected then
        Alcotest.failf "eviction changed the answer for %s->%s"
          (Graph.name g src) (Graph.name g dst)
  done;
  let st = Serve.stats tight in
  Alcotest.(check bool)
    "tables were rebuilt after eviction" true
    (st.Serve.destinations > st.Serve.resident);
  Alcotest.(check bool) "resident bounded" true (st.Serve.resident <= 2)

(* Traffic awareness: penalizing one spine steers every equal-cost
   choice through the other. *)
let test_prefer_steers () =
  let g = Generators.fat_tree ~leaves:2 ~hosts_per_leaf:2 ~spines:2 () in
  let spines =
    List.filter (fun s -> Graph.degree g s = 2) (Graph.switches g)
  in
  match spines with
  | [ hot; _ ] ->
    let prefer u _v = if u = hot then 1.0 else 0.0 in
    (* penalty keyed on leaving the hot spine: routes through it pay *)
    let prefer u v = prefer u v +. if v = hot then 1.0 else 0.0 in
    let serve = Serve.create ~prefer g in
    let hosts = Graph.hosts g in
    List.iter
      (fun dst ->
        List.iter
          (fun src ->
            if src <> dst then
              match Serve.lookup serve ~src ~dst with
              | None -> Alcotest.failf "no route"
              | Some turns ->
                let trace = San_simnet.Worm.eval g ~src ~turns in
                let nodes = San_simnet.Worm.path_nodes g ~src trace in
                if List.mem hot nodes then
                  Alcotest.failf
                    "route %s->%s crossed the penalized spine"
                    (Graph.name g src) (Graph.name g dst))
          hosts)
      hosts
  | l -> Alcotest.failf "expected 2 spines, found %d" (List.length l)

(* The delta planner's pooled accounting: never worse than naive (the
   header bit falls back), and populated for every slice. NOW slices
   are too short for pooling to win; ft-1k's strict win is asserted in
   the slow test above. *)
let test_delta_packed () =
  let g = fst (Generators.now_cab ()) in
  let table = Routes.compute g in
  let p = San_service.Delta.plan ~installed:San_service.Delta.empty table in
  Alcotest.(check bool)
    "packed never beats naive by losing" true
    (p.San_service.Delta.packed_full_bytes <= p.San_service.Delta.full_bytes);
  Alcotest.(check bool)
    "packed is non-trivial" true
    (p.San_service.Delta.packed_full_bytes > 0)

let () =
  Alcotest.run "san_serve"
    [
      ( "serve",
        [
          Alcotest.test_case "NOW presets agree with table" `Quick
            test_agreement_now;
          Alcotest.test_case "ft-1k sample agrees, deadlock-free" `Slow
            test_agreement_ft1k;
          Alcotest.test_case "NOW presets deadlock-free" `Quick
            test_deadlock_now;
          Alcotest.test_case "pool roundtrip and sharing" `Quick
            test_pool_roundtrip;
          Alcotest.test_case "warm lookups allocation-free" `Quick
            test_lookup_zero_alloc;
          Alcotest.test_case "eviction never changes answers" `Quick
            test_eviction_agrees;
          Alcotest.test_case "prefer steers off the hot spine" `Quick
            test_prefer_steers;
          Alcotest.test_case "delta ships packed slices cheaper" `Quick
            test_delta_packed;
        ] );
    ]
