(* San_fabric and the dense core: generator determinism, preset
   well-formedness, mapping generated fabrics, dense CSR round-trips,
   and equivalence of the linear-time separation machinery with the
   definitional per-edge computation it replaced. *)

open San_topology
module Fabric = San_fabric.Fabric
module Fuzz_gen = San_check.Fuzz_gen

let qcheck t = QCheck_alcotest.to_alcotest t

(* Structural signature: node order, kinds, names and the wire list.
   Two graphs with equal signatures are the same labelled network. *)
let signature g =
  ( Graph.radix g,
    List.map (fun v -> (Graph.kind g v, Graph.name g v)) (Graph.nodes g),
    Graph.wires g )

let is_connected g =
  let n = Graph.num_nodes g in
  n = 0
  ||
  let adj = Array.make n [] in
  List.iter
    (fun (((a, _), (b, _)) : Graph.wire_end * Graph.wire_end) ->
      adj.(a) <- b :: adj.(a);
      adj.(b) <- a :: adj.(b))
    (Graph.wires g);
  let seen = Array.make n false in
  let rec go = function
    | [] -> ()
    | v :: rest ->
      let rest =
        List.fold_left
          (fun acc w ->
            if seen.(w) then acc
            else begin
              seen.(w) <- true;
              w :: acc
            end)
          rest adj.(v)
      in
      go rest
  in
  seen.(0) <- true;
  go [ 0 ];
  Array.for_all Fun.id seen

(* ------------------------------------------------------------------ *)
(* Generator. *)

let degraded =
  {
    Fabric.levels = 3;
    radix = 16;
    edge_switches = 40;
    hosts_per_edge = 8;
    oversub = 2.0;
    trim_uplinks = 0.1;
    missing_spines = 0.2;
    hetero_radix = 0.15;
  }

let test_build_deterministic () =
  let a = Fabric.build ~seed:42 degraded in
  let b = Fabric.build ~seed:42 degraded in
  Alcotest.(check bool) "same seed, same fabric" true
    (signature a = signature b);
  let c = Fabric.build ~seed:43 degraded in
  Alcotest.(check bool) "different seed, different irregularity" false
    (signature a = signature c)

let test_presets_well_formed () =
  List.iter
    (fun p ->
      if p.Fabric.p_name <> "ft-100k" (* the stretch ladder rung: slow *)
      then begin
        let g = p.Fabric.p_build ~seed:7 in
        Alcotest.(check bool)
          (p.Fabric.p_name ^ " connected")
          true (is_connected g);
        Alcotest.(check bool)
          (p.Fabric.p_name ^ " has hosts")
          true
          (Graph.num_hosts g > 0)
      end)
    Fabric.presets;
  let exact name hosts =
    match Fabric.find_preset name with
    | None -> Alcotest.failf "preset %s missing" name
    | Some p ->
      Alcotest.(check int) (name ^ " host count") hosts
        (Graph.num_hosts (p.Fabric.p_build ~seed:1))
  in
  exact "ft-100" 100;
  exact "ft-1k" 1000;
  exact "ft-10k" 10000

let test_validate_rejects () =
  let bad s = Alcotest.(check bool) "rejected" true (Result.is_error s) in
  bad (Fabric.validate { degraded with levels = 0 });
  bad (Fabric.validate { degraded with radix = 1 });
  bad (Fabric.validate { degraded with hosts_per_edge = 16 });
  bad (Fabric.validate { degraded with oversub = 0.0 });
  bad (Fabric.validate { degraded with trim_uplinks = 1.0 })

let test_spec_string_roundtrip () =
  List.iter
    (fun p ->
      match p.Fabric.p_spec with
      | None -> ()
      | Some s -> (
        match Fabric.of_string (Fabric.to_string s) with
        | Ok s' ->
          Alcotest.(check bool)
            (p.Fabric.p_name ^ " spec round-trips")
            true (s = s')
        | Error e -> Alcotest.failf "%s: %s" p.Fabric.p_name e))
    Fabric.presets;
  (match Fabric.of_string (Fabric.to_string degraded) with
  | Ok s' -> Alcotest.(check bool) "degraded round-trips" true (degraded = s')
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "preset name parses" true
    (Result.is_ok (Fabric.parse "ft-1k"));
  Alcotest.(check bool) "key=value parses" true
    (Result.is_ok (Fabric.parse "levels=2,radix=8,edge=3,hosts=2"));
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Fabric.parse "no-such-preset"))

(* A generated fabric must actually map: run the real mapper at the
   preset's suggested depth and check isomorphism against N - F. *)
let test_generated_fabric_maps () =
  let p = Option.get (Fabric.find_preset "ft-100") in
  let g = p.Fabric.p_build ~seed:1 in
  let mapper = List.hd (Graph.hosts g) in
  let net = San_simnet.Network.create g in
  let depth = San_mapper.Berkeley.Fixed (Option.get p.Fabric.p_depth) in
  let r = San_mapper.Berkeley.run ~depth net ~mapper in
  match r.San_mapper.Berkeley.map with
  | Error e -> Alcotest.failf "ft-100 mapping failed: %s" e
  | Ok map -> (
    match
      Iso.check ~map ~actual:g ~exclude:(Core_set.separated_set g) ()
    with
    | Ok () -> ()
    | Error e -> Alcotest.failf "ft-100 not isomorphic: %s" e)

(* ------------------------------------------------------------------ *)
(* Dense CSR round-trips. *)

let test_dense_roundtrip () =
  let round name g =
    let g' = Dense.to_graph (Dense.of_graph g) in
    Alcotest.(check bool) (name ^ " round-trips") true
      (signature g = signature g')
  in
  round "now-c" (fst (Generators.now_c ()));
  round "now-cab" (fst (Generators.now_cab ()));
  round "spec-a" (fst (Generators.subcluster Generators.spec_a));
  round "spec-b" (fst (Generators.subcluster Generators.spec_b));
  round "spec-c" (fst (Generators.subcluster Generators.spec_c))

(* The probe-count pins must survive mapping through a round-tripped
   graph: the dense view is the same network, byte for byte. *)
let test_dense_roundtrip_preserves_pins () =
  let g, _ = Generators.now_c () in
  let g = Dense.to_graph (Dense.of_graph g) in
  let util = Option.get (Graph.host_by_name g "C-util") in
  let net = San_simnet.Network.create g in
  let r = San_mapper.Berkeley.run net ~mapper:util in
  Alcotest.(check int) "C probes still 895" 895
    (San_mapper.Berkeley.total_probes r)

let test_dense_channels () =
  let g, _ = Generators.now_cab () in
  let d = Dense.of_graph g in
  let total =
    Graph.fold_nodes g ~init:0 ~f:(fun acc v -> acc + Graph.ports_of g v)
  in
  Alcotest.(check int) "channel count = total wire ends" total
    (Dense.num_channels d);
  (* channel_of and end_of are inverses; peer mirrors the wire list. *)
  List.iter
    (fun ((a, b) : Graph.wire_end * Graph.wire_end) ->
      match (Dense.channel_of d a, Dense.channel_of d b) with
      | Some ca, Some cb ->
        Alcotest.(check bool) "end_of inverts" true (Dense.end_of d ca = a);
        Alcotest.(check int) "peer a->b" cb (Dense.peer d ca);
        Alcotest.(check int) "peer b->a" ca (Dense.peer d cb)
      | _ -> Alcotest.fail "wired end has no channel id")
    (Graph.wires g);
  (* A port added after the snapshot is outside it. *)
  let late = Graph.add_switch g () in
  Alcotest.(check bool) "late node unmapped" true
    (Dense.channel_of d (late, 0) = None)

(* ------------------------------------------------------------------ *)
(* Equivalence with the definitional computations. *)

(* Bridges, by definition: removing the wire disconnects its ends. *)
let brute_bridges g =
  let wires = Array.of_list (Graph.wires g) in
  let n = Graph.num_nodes g in
  let reachable skip src =
    let seen = Array.make n false in
    seen.(src) <- true;
    let rec go = function
      | [] -> seen
      | v :: rest ->
        let rest = ref rest in
        Array.iteri
          (fun i (((a, _), (b, _)) : Graph.wire_end * Graph.wire_end) ->
            if i <> skip then begin
              if a = v && not seen.(b) then begin
                seen.(b) <- true;
                rest := b :: !rest
              end;
              if b = v && not seen.(a) then begin
                seen.(a) <- true;
                rest := a :: !rest
              end
            end)
          wires;
        go !rest
    in
    go [ src ]
  in
  Array.to_list
    (Array.mapi
       (fun i (((a, _), (b, _)) as w) ->
         if a <> b && not (reachable i a).(b) then Some w else None)
       wires)
  |> List.filter_map Fun.id

(* Theorem 1's F, by definition: for every switch-switch bridge, the
   side holding no host falls out of the mappable core. *)
let brute_separated g =
  let wires = Array.of_list (Graph.wires g) in
  let n = Graph.num_nodes g in
  let in_f = Array.make n false in
  Array.iteri
    (fun i (((a, _), (b, _)) : Graph.wire_end * Graph.wire_end) ->
      if a <> b && Graph.kind g a = Graph.Switch && Graph.kind g b = Graph.Switch
      then begin
        let seen = Array.make n false in
        seen.(a) <- true;
        let rec go = function
          | [] -> ()
          | v :: rest ->
            let rest = ref rest in
            Array.iteri
              (fun j (((x, _), (y, _)) : Graph.wire_end * Graph.wire_end) ->
                if j <> i then begin
                  if x = v && not seen.(y) then begin
                    seen.(y) <- true;
                    rest := y :: !rest
                  end;
                  if y = v && not seen.(x) then begin
                    seen.(x) <- true;
                    rest := x :: !rest
                  end
                end)
              wires;
            go !rest
        in
        go [ a ];
        if not seen.(b) then begin
          (* A genuine bridge: condemn whichever side has no host. *)
          let side reached =
            List.exists (fun h -> reached.(h)) (Graph.hosts g)
          in
          let seen_b = Array.make n false in
          seen_b.(b) <- true;
          let rec gob = function
            | [] -> ()
            | v :: rest ->
              let rest = ref rest in
              Array.iteri
                (fun j (((x, _), (y, _)) : Graph.wire_end * Graph.wire_end) ->
                  if j <> i then begin
                    if x = v && not seen_b.(y) then begin
                      seen_b.(y) <- true;
                      rest := y :: !rest
                    end;
                    if y = v && not seen_b.(x) then begin
                      seen_b.(x) <- true;
                      rest := x :: !rest
                    end
                  end)
                wires;
              gob !rest
          in
          gob [ b ];
          if not (side seen) then
            for v = 0 to n - 1 do
              if seen.(v) then in_f.(v) <- true
            done;
          if not (side seen_b) then
            for v = 0 to n - 1 do
              if seen_b.(v) then in_f.(v) <- true
            done
        end
      end)
    wires;
  in_f

let case_arbitrary =
  QCheck.make
    ~print:(fun seed -> Format.asprintf "%a" Fuzz_gen.pp (Fuzz_gen.gen ~seed))
    QCheck.Gen.(0 -- 4000)

let test_bridges_equiv =
  QCheck.Test.make ~name:"Dense bridges = definitional bridges" ~count:300
    case_arbitrary (fun seed ->
      let g = (Fuzz_gen.gen ~seed).Fuzz_gen.graph in
      let dense = List.sort compare (Core_set.bridges g) in
      let brute = List.sort compare (brute_bridges g) in
      dense = brute)

let test_separated_equiv =
  QCheck.Test.make ~name:"Dense separated_set = definitional F" ~count:300
    case_arbitrary (fun seed ->
      let g = (Fuzz_gen.gen ~seed).Fuzz_gen.graph in
      Core_set.separated_set g = brute_separated g)

(* Fabric-mode fuzz cases (seed = 3 mod 4) are deterministic and
   structurally sound, like every other case the fuzzer emits. *)
let test_fuzz_fabric_mode () =
  List.iter
    (fun seed ->
      let a = Fuzz_gen.gen ~seed and b = Fuzz_gen.gen ~seed in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d deterministic" seed)
        true
        (signature a.Fuzz_gen.graph = signature b.Fuzz_gen.graph);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d connected" seed)
        true
        (is_connected a.Fuzz_gen.graph);
      Alcotest.(check bool)
        (Printf.sprintf "seed %d has a mapper" seed)
        true
        (Fuzz_gen.mapper_node a <> None))
    [ 3; 7; 11; 15; 19; 23 ]

let () =
  Alcotest.run "fabric"
    [
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_build_deterministic;
          Alcotest.test_case "presets well-formed" `Quick
            test_presets_well_formed;
          Alcotest.test_case "validate rejects" `Quick test_validate_rejects;
          Alcotest.test_case "spec strings round-trip" `Quick
            test_spec_string_roundtrip;
          Alcotest.test_case "ft-100 maps and verifies" `Quick
            test_generated_fabric_maps;
        ] );
      ( "dense",
        [
          Alcotest.test_case "graph round-trip" `Quick test_dense_roundtrip;
          Alcotest.test_case "round-trip preserves probe pins" `Quick
            test_dense_roundtrip_preserves_pins;
          Alcotest.test_case "channel ids" `Quick test_dense_channels;
        ] );
      ( "equivalence",
        [
          qcheck test_bridges_equiv;
          qcheck test_separated_equiv;
          Alcotest.test_case "fuzz fabric mode" `Quick test_fuzz_fabric_mode;
        ] );
    ]
