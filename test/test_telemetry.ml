open San_topology
open San_telemetry
module Obs = San_obs.Obs
module Trace = San_obs.Trace
module Metrics = San_obs.Metrics
module Event_sim = San_simnet.Event_sim

let with_obs f =
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.set_enabled false) f

let with_fabric fabric f =
  Fabric_stats.install fabric;
  Fun.protect ~finally:Fabric_stats.uninstall f

(* ---------- Chrome trace exporter ---------- *)

(* A deterministic sim-only workload: every all-pairs route on a tiny
   two-switch network, injected at t=0. All its trace events carry
   simulated timestamps, so the export must be byte-identical across
   runs — the acceptance criterion for diffable trace artifacts. *)
let chrome_of_seeded_run () =
  with_obs @@ fun () ->
  let g = Generators.ring ~switches:2 ~hosts_per_switch:2 () in
  let table = San_routing.Routes.compute g in
  (* drop the route-computation span: its wall-clock timestamps are the
     one non-deterministic thing here, and the contract under test is
     that a sim-only trace (all fabric events on the simulated clock)
     exports byte-identically *)
  Obs.reset ();
  let sim = Event_sim.create g in
  List.iter
    (fun (src, _, turns) ->
      ignore (Event_sim.inject sim ~at_ns:0.0 ~src ~turns ~payload_bytes:256 ()))
    (San_routing.Routes.all table);
  Event_sim.run sim;
  Chrome_trace.of_records (Trace.records Obs.tracer)

let test_chrome_byte_stable () =
  let a = chrome_of_seeded_run () in
  let b = chrome_of_seeded_run () in
  Alcotest.(check bool) "two seeded runs export identically" true (a = b);
  Alcotest.(check bool) "export is not trivially empty" true
    (String.length a > 200)

let test_chrome_valid_json () =
  let s = chrome_of_seeded_run () in
  match San_util.Json.of_string s with
  | Error e -> Alcotest.fail ("chrome trace does not parse: " ^ e)
  | Ok (San_util.Json.Obj fields) ->
    (match List.assoc_opt "traceEvents" fields with
    | Some (San_util.Json.Arr evs) ->
      Alcotest.(check bool) "has events beyond metadata" true
        (List.length evs > 5)
    | _ -> Alcotest.fail "no traceEvents array");
    Alcotest.(check bool) "displayTimeUnit present" true
      (List.assoc_opt "displayTimeUnit" fields = Some (San_util.Json.Str "ms"))
  | Ok _ -> Alcotest.fail "chrome trace is not a JSON object"

let test_chrome_handles_all_events () =
  (* Every constructor the tracer can emit must export without raising
     — driven by the same compiler-maintained witness list the JSON
     round-trip uses. *)
  let records =
    List.mapi
      (fun i ev -> { Trace.seq = i; wall_ns = float_of_int (i * 1000); event = ev })
      Trace.all_events
  in
  let s = Chrome_trace.of_records records in
  match San_util.Json.of_string s with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("all-constructor export invalid: " ^ e)

(* ---------- Prometheus exporter ---------- *)

let test_prom_roundtrip () =
  let r = Metrics.create () in
  Metrics.incr ~by:7 (Metrics.counter r "probes.sent");
  Metrics.incr (Metrics.counter r "worms.dropped");
  Metrics.set (Metrics.gauge r "daemon.coverage") 0.8333333333333334;
  Metrics.set (Metrics.gauge r "window.depth") (-2.5);
  let h = Metrics.histogram r "probe.latency_ns" in
  List.iter (Metrics.observe h) [ 120.0; 450.0; 450.0; 88_000.0; 0.0 ];
  let snap = Metrics.snapshot r in
  let text = Prom.of_snapshot snap in
  let values = Prom.parse_values text in
  let find series =
    match List.assoc_opt series values with
    | Some v -> v
    | None ->
      Alcotest.fail (Printf.sprintf "series %s missing from:\n%s" series text)
  in
  (* every counter and gauge recovers exactly *)
  List.iter
    (fun (name, v) ->
      Alcotest.(check (float 0.0))
        ("counter " ^ name)
        (float_of_int v)
        (find ("san_" ^ String.map (fun c -> if c = '.' then '_' else c) name)))
    snap.Metrics.s_counters;
  List.iter
    (fun (name, v) ->
      Alcotest.(check (float 0.0))
        ("gauge " ^ name)
        v
        (find ("san_" ^ String.map (fun c -> if c = '.' then '_' else c) name)))
    snap.Metrics.s_gauges;
  (* summaries carry the exact count and sum, and the library's own
     quantiles *)
  let hs = List.assoc "probe.latency_ns" snap.Metrics.s_histograms in
  Alcotest.(check (float 0.0)) "summary count" (float_of_int hs.Metrics.hs_count)
    (find "san_probe_latency_ns_count");
  Alcotest.(check (float 0.0)) "summary sum" hs.Metrics.hs_sum
    (find "san_probe_latency_ns_sum");
  List.iter
    (fun (label, q) ->
      Alcotest.(check (float 0.0))
        ("quantile " ^ label)
        (Metrics.quantile_of hs q)
        (find (Printf.sprintf "san_probe_latency_ns{quantile=%S}" label)))
    [ ("0.5", 0.5); ("0.9", 0.9); ("0.99", 0.99) ]

(* An empty registry must expose as an empty, parseable document —
   the scrape endpoint serves whatever exists, including nothing. *)
let test_prom_empty_registry () =
  let r = Metrics.create () in
  let text = Prom.of_snapshot (Metrics.snapshot r) in
  Alcotest.(check string) "empty registry exposes empty text" "" text;
  Alcotest.(check int) "no series parsed" 0
    (List.length (Prom.parse_values text))

(* A gauge overwritten within a scrape window exports once, with the
   last value, exactly — and the exposition is deterministic text
   with no duplicated series or metadata lines. *)
let test_prom_gauge_overwrite () =
  let r = Metrics.create () in
  let g = Metrics.gauge r "daemon.coverage" in
  Metrics.set g 0.25;
  Metrics.set g 0.7071067811865476;
  Metrics.incr (Metrics.counter r "probes.sent");
  ignore (Metrics.histogram r "probe.latency_ns");
  let snap = Metrics.snapshot r in
  let text = Prom.of_snapshot snap in
  Alcotest.(check string) "exposition is deterministic" text
    (Prom.of_snapshot snap);
  let values = Prom.parse_values text in
  let coverage =
    List.filter (fun (s, _) -> s = "san_daemon_coverage") values
  in
  (match coverage with
  | [ (_, v) ] ->
    Alcotest.(check (float 0.0)) "last write round-trips exactly"
      0.7071067811865476 v
  | l ->
    Alcotest.failf "gauge exported %d times, want exactly once"
      (List.length l));
  (* metadata lines (# HELP / # TYPE) must be unique per series *)
  let meta =
    List.filter
      (fun l -> String.length l > 0 && l.[0] = '#')
      (String.split_on_char '\n' text)
  in
  let uniq = List.sort_uniq compare meta in
  Alcotest.(check int) "no duplicate # HELP/# TYPE lines"
    (List.length uniq) (List.length meta)

let test_prom_sanitizes_names () =
  let r = Metrics.create () in
  Metrics.incr (Metrics.counter r "weird name-with:stuff!");
  let text = Prom.of_snapshot (Metrics.snapshot r) in
  let ok =
    List.for_all
      (fun line ->
        String.length line = 0
        || line.[0] = '#'
        || String.for_all
             (fun c ->
               (c >= 'a' && c <= 'z')
               || (c >= 'A' && c <= 'Z')
               || (c >= '0' && c <= '9')
               || c = '_' || c = ':' || c = ' ')
             line)
      (String.split_on_char '\n' text)
  in
  Alcotest.(check bool) "only prometheus-charset names" true ok

(* ---------- fabric conservation ---------- *)

let storm_fabric () =
  (* All-pairs application storm on the paper's C subcluster, counted
     by an explicitly-passed table (no global slot involved). *)
  let g, _ = Generators.now_c () in
  let table = San_routing.Routes.compute g in
  let fabric = Fabric_stats.create () in
  let sim = Event_sim.create ~fabric g in
  List.iter
    (fun (src, _, turns) ->
      ignore (Event_sim.inject sim ~at_ns:0.0 ~src ~turns ~payload_bytes:4096 ()))
    (San_routing.Routes.all table);
  Event_sim.run sim;
  (g, fabric, Event_sim.stats sim)

let test_fabric_conservation () =
  let _, fabric, st = storm_fabric () in
  Alcotest.(check int) "storm fully drains" 0 st.Event_sim.in_flight;
  Alcotest.(check bool) "storm acquired channels" true
    (st.Event_sim.hops_acquired > 0);
  (* channel-side and worm-side accounting meet in the middle: every
     acquired hop was charged to exactly one channel *)
  Alcotest.(check int) "transits conserved" st.Event_sim.hops_acquired
    (Fabric_stats.total_transits fabric)

let test_fabric_links_cover_transits () =
  let g, fabric, _ = storm_fabric () in
  let links = Fabric_stats.links fabric g in
  Alcotest.(check int) "one row per wire" (Graph.num_wires g)
    (List.length links);
  let link_sum =
    List.fold_left (fun acc l -> acc + l.Fabric_stats.l_transits) 0 links
  in
  Alcotest.(check int) "undirected rows sum to the directed total"
    (Fabric_stats.total_transits fabric)
    link_sum;
  (* hottest-first ordering, utilization normalized into [0,1] with the
     hottest link at 1 *)
  (match links with
  | top :: _ ->
    Alcotest.(check (float 1e-9)) "hottest link pegs utilization" 1.0
      top.Fabric_stats.utilization
  | [] -> Alcotest.fail "no links");
  List.iter
    (fun l ->
      Alcotest.(check bool) "utilization within [0,1]" true
        (l.Fabric_stats.utilization >= 0.0 && l.Fabric_stats.utilization <= 1.0))
    links;
  let sorted =
    List.sort
      (fun a b -> compare b.Fabric_stats.utilization a.Fabric_stats.utilization)
      links
  in
  Alcotest.(check bool) "rows arrive hottest-first" true
    (List.map (fun l -> l.Fabric_stats.utilization) links
    = List.map (fun l -> l.Fabric_stats.utilization) sorted)

let test_fabric_global_slot () =
  let fabric = Fabric_stats.create () in
  with_fabric fabric @@ fun () ->
  let g = Generators.ring ~switches:2 ~hosts_per_switch:2 () in
  let table = San_routing.Routes.compute g in
  let sim = Event_sim.create g in
  (* no ~fabric argument: the simulator must pick up the slot *)
  List.iter
    (fun (src, _, turns) ->
      ignore (Event_sim.inject sim ~at_ns:0.0 ~src ~turns ()))
    (San_routing.Routes.all table);
  Event_sim.run sim;
  Alcotest.(check int) "slot table sees the storm"
    (Event_sim.stats sim).Event_sim.hops_acquired
    (Fabric_stats.total_transits fabric)

let test_dot_heat_renders () =
  let g, fabric, _ = storm_fabric () in
  let dot = Dot.to_string ~heat:(Fabric_stats.heat fabric g) g in
  Alcotest.(check bool) "heat map widens wires" true
    (Astring.String.is_infix ~affix:"penwidth" dot);
  Alcotest.(check bool) "heat map colors wires" true
    (Astring.String.is_infix ~affix:"color=" dot)

(* ---------- health window ---------- *)

let sample ?(coverage = 1.0) ?(convergence = 0) ?(delta = 0) ?(missed = 0)
    ?(drop = 0.0) epoch =
  {
    Health.epoch;
    coverage;
    convergence_epochs = convergence;
    delta_bytes = delta;
    missed_slices = missed;
    probe_drop_rate = drop;
    epoch_ms = 1.0;
  }

let test_health_for_epochs_streak () =
  (* a for_epochs=2 rule ignores a single bad epoch but fires on the
     streak, and clears on the first good epoch *)
  let rules =
    [
      {
        Health.rule_name = "drops";
        metric = Health.Probe_drop_rate;
        cmp = Health.Above;
        threshold = 0.25;
        for_epochs = 2;
      };
    ]
  in
  let h = Health.create ~rules () in
  let r1, c1 = Health.observe h (sample ~drop:0.5 1) in
  Alcotest.(check (list string)) "one bad epoch is weather" [] r1;
  Alcotest.(check (list string)) "nothing to clear" [] c1;
  let r2, _ = Health.observe h (sample ~drop:0.0 2) in
  Alcotest.(check (list string)) "streak broken, still quiet" [] r2;
  let _ = Health.observe h (sample ~drop:0.5 3) in
  let r4, _ = Health.observe h (sample ~drop:0.6 4) in
  Alcotest.(check (list string)) "second consecutive breach raises"
    [ "drops" ] r4;
  Alcotest.(check int) "alert is active" 1 (List.length (Health.active h));
  let r5, c5 = Health.observe h (sample ~drop:0.7 5) in
  Alcotest.(check (list string)) "no re-raise while active" [] r5;
  Alcotest.(check (list string)) "not cleared while breaching" [] c5;
  let _, c6 = Health.observe h (sample ~drop:0.0 6) in
  Alcotest.(check (list string)) "first good epoch clears" [ "drops" ] c6;
  Alcotest.(check int) "no active alerts left" 0
    (List.length (Health.active h));
  match (Health.report h).Health.r_history with
  | [ a ] ->
    Alcotest.(check int) "raised on the streak's second epoch" 4
      a.Health.raised_epoch;
    Alcotest.(check bool) "cleared at 6" true (a.Health.cleared_epoch = Some 6);
    Alcotest.(check (float 1e-9)) "worst value tracked" 0.7 a.Health.worst
  | l -> Alcotest.failf "expected one alert in history, got %d" (List.length l)

let test_health_below_rule_and_window () =
  let rules =
    [
      {
        Health.rule_name = "coverage";
        metric = Health.Coverage;
        cmp = Health.Below;
        threshold = 1.0;
        for_epochs = 1;
      };
    ]
  in
  let h = Health.create ~window:3 ~rules () in
  let r1, _ = Health.observe h (sample ~coverage:0.8 1) in
  Alcotest.(check (list string)) "below threshold raises immediately"
    [ "coverage" ] r1;
  let _, c2 = Health.observe h (sample ~coverage:1.0 2) in
  Alcotest.(check (list string)) "full coverage clears" [ "coverage" ] c2;
  List.iter (fun e -> ignore (Health.observe h (sample e))) [ 3; 4; 5 ];
  Alcotest.(check (list int)) "window keeps the trailing 3 epochs" [ 3; 4; 5 ]
    (List.map (fun s -> s.Health.epoch) (Health.samples h))

let test_health_emits_trace_events () =
  with_obs @@ fun () ->
  let rules =
    [
      {
        Health.rule_name = "missed";
        metric = Health.Missed_slices;
        cmp = Health.Above;
        threshold = 0.0;
        for_epochs = 1;
      };
    ]
  in
  let h = Health.create ~rules () in
  ignore (Health.observe h (sample ~missed:2 7));
  ignore (Health.observe h (sample 8));
  let evs = Trace.events Obs.tracer in
  Alcotest.(check bool) "raise hits the tracer" true
    (List.mem (Trace.Alert_raised { name = "missed"; epoch = 7 }) evs);
  Alcotest.(check bool) "clear hits the tracer" true
    (List.mem (Trace.Alert_cleared { name = "missed"; epoch = 8 }) evs)

(* ---------- daemon alerting end to end ---------- *)

let test_daemon_link_cut_alerts () =
  (* The acceptance scenario: a link cut at epoch 2 on the C subcluster
     dips coverage for exactly one epoch, so the daemon raises exactly
     one coverage alert and clears it on the next verified epoch —
     visible both in the typed trace and in the outcome's health
     report. *)
  with_obs @@ fun () ->
  let g, _ = Generators.now_c () in
  let schedule = Result.get_ok (San_service.Schedule.parse "2:cut") in
  let o = Result.get_ok (San_service.Daemon.run ~schedule ~epochs:6 g) in
  let coverage_raised, coverage_cleared =
    List.fold_left
      (fun (r, c) ev ->
        match ev with
        | Trace.Alert_raised { name = "coverage"; epoch } -> (epoch :: r, c)
        | Trace.Alert_cleared { name = "coverage"; epoch } -> (r, epoch :: c)
        | _ -> (r, c))
      ([], [])
      (Trace.events Obs.tracer)
  in
  Alcotest.(check (list int)) "exactly one raise, at the cut epoch" [ 2 ]
    coverage_raised;
  Alcotest.(check (list int)) "cleared on the next verified epoch" [ 3 ]
    coverage_cleared;
  let cov_alerts =
    List.filter
      (fun a -> a.Health.a_rule.Health.rule_name = "coverage")
      o.San_service.Daemon.health.Health.r_history
  in
  (match cov_alerts with
  | [ a ] ->
    Alcotest.(check int) "report raised epoch" 2 a.Health.raised_epoch;
    Alcotest.(check bool) "report cleared epoch" true
      (a.Health.cleared_epoch = Some 3);
    Alcotest.(check bool) "worst coverage is a real dip" true
      (a.Health.worst < 1.0)
  | l ->
    Alcotest.failf "expected one coverage alert in history, got %d"
      (List.length l));
  Alcotest.(check int) "nothing left active" 0
    (List.length o.San_service.Daemon.health.Health.r_active);
  (* the per-epoch reports carry the same story *)
  let by_epoch e =
    List.find (fun r -> r.San_service.Daemon.epoch = e) o.San_service.Daemon.reports
  in
  Alcotest.(check (list string)) "epoch 2 report flags the raise" [ "coverage" ]
    (by_epoch 2).San_service.Daemon.alerts_raised;
  Alcotest.(check (list string)) "epoch 3 report flags the clear" [ "coverage" ]
    (by_epoch 3).San_service.Daemon.alerts_cleared

let test_daemon_quiet_run_no_alerts () =
  with_obs @@ fun () ->
  let g, _ = Generators.now_c () in
  let o = Result.get_ok (San_service.Daemon.run ~epochs:4 g) in
  Alcotest.(check int) "no alerts on a healthy fabric" 0
    (List.length o.San_service.Daemon.health.Health.r_history);
  Alcotest.(check bool) "no alert events traced" true
    (List.for_all
       (fun ev ->
         match ev with
         | Trace.Alert_raised _ | Trace.Alert_cleared _ -> false
         | _ -> true)
       (Trace.events Obs.tracer));
  (* every warm epoch sampled *)
  Alcotest.(check int) "one sample per warm epoch" 3
    (List.length o.San_service.Daemon.health.Health.r_samples)

(* ---------- sparklines ---------- *)

let test_sparkline_shapes () =
  Alcotest.(check string) "empty series" "" (San_util.Tablefmt.sparkline []);
  Alcotest.(check string) "flat series renders mid-height bars" "▄▄▄"
    (San_util.Tablefmt.sparkline [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check string) "ramp sweeps the glyph range" "▁▃▆█"
    (San_util.Tablefmt.sparkline [ 0.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check string) "width keeps the most recent samples" "▁█"
    (San_util.Tablefmt.sparkline ~width:2 [ 9.0; 9.0; 0.0; 1.0 ])

let () =
  Alcotest.run "telemetry"
    [
      ( "chrome",
        [
          Alcotest.test_case "seeded export is byte-stable" `Quick
            test_chrome_byte_stable;
          Alcotest.test_case "export is valid json" `Quick
            test_chrome_valid_json;
          Alcotest.test_case "every event constructor exports" `Quick
            test_chrome_handles_all_events;
        ] );
      ( "prom",
        [
          Alcotest.test_case "exposition round-trips" `Quick
            test_prom_roundtrip;
          Alcotest.test_case "names sanitized" `Quick test_prom_sanitizes_names;
          Alcotest.test_case "empty registry" `Quick test_prom_empty_registry;
          Alcotest.test_case "gauge overwrite within window" `Quick
            test_prom_gauge_overwrite;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "transit conservation" `Quick
            test_fabric_conservation;
          Alcotest.test_case "link aggregation covers transits" `Quick
            test_fabric_links_cover_transits;
          Alcotest.test_case "global slot wiring" `Quick
            test_fabric_global_slot;
          Alcotest.test_case "dot heat rendering" `Quick test_dot_heat_renders;
        ] );
      ( "health",
        [
          Alcotest.test_case "for-epochs streak semantics" `Quick
            test_health_for_epochs_streak;
          Alcotest.test_case "below rule and window bound" `Quick
            test_health_below_rule_and_window;
          Alcotest.test_case "alerts hit the tracer" `Quick
            test_health_emits_trace_events;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "link cut raises and clears coverage" `Quick
            test_daemon_link_cut_alerts;
          Alcotest.test_case "quiet run stays quiet" `Quick
            test_daemon_quiet_run_no_alerts;
        ] );
      ( "sparkline",
        [ Alcotest.test_case "shapes" `Quick test_sparkline_shapes ] );
    ]
