(* The provenance layer end to end: explain resolves every Figure-3
   switch to justification trees terminating only in probe/axiom
   leaves, blame attributes map diffs to probes, flight recordings
   round-trip through postmortem, and a stuck election co-simulation
   surfaces as a typed outcome instead of an exception. *)

open San_topology
module Why = San_why.Why
module Explain = San_why.Explain
module Replay = San_why.Replay

let with_why f =
  Why.set_enabled true;
  Fun.protect ~finally:(fun () -> Why.set_enabled false) f

(* Map a fabric with the ledger on; returns (map, snapshot taken after
   route computation so orientation entries are recorded too). *)
let map_with_why ?(routes = false) g ~mapper_name =
  with_why (fun () ->
      let mapper = Option.get (Graph.host_by_name g mapper_name) in
      let net = San_simnet.Network.create g in
      let r = San_mapper.Berkeley.run net ~mapper in
      let map = Result.get_ok r.San_mapper.Berkeley.map in
      if routes then ignore (San_routing.Routes.compute map);
      (map, Why.capture ()))

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)

let test_explain_every_switch_terminates_in_probes () =
  let g, _ = Generators.now_c () in
  let map, snap = map_with_why g ~mapper_name:"C-util" in
  let replay = Replay.build snap in
  List.iter
    (fun s ->
      let name = Graph.name map s in
      match Explain.roots_of ~actual:g ~map ~snap ~replay (Explain.Switch name)
      with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok (_, roots) ->
        Alcotest.(check bool)
          (name ^ ": non-empty roots") true (roots <> []);
        let leaves = List.concat_map (Explain.leaves snap) roots in
        Alcotest.(check bool) (name ^ ": has leaves") true (leaves <> []);
        List.iter
          (fun (did, e) ->
            match e with
            | Why.Probe _ | Why.Axiom _ -> ()
            | Why.Deduced _ ->
              Alcotest.failf "%s: leaf d%d is a deduction" name did)
          leaves;
        Alcotest.(check bool)
          (name ^ ": at least one probe leaf")
          true
          (List.exists
             (fun (_, e) -> match e with Why.Probe _ -> true | _ -> false)
             leaves))
    (Graph.switches map)

let test_explain_resolves_actual_names () =
  let g, _ = Generators.now_c () in
  let map, snap = map_with_why g ~mapper_name:"C-util" in
  let replay = Replay.build snap in
  (* Every actual switch should be reachable through Diff.correspond. *)
  List.iter
    (fun s ->
      let name = Graph.name g s in
      match Explain.roots_of ~actual:g ~map ~snap ~replay (Explain.Switch name)
      with
      | Error e -> Alcotest.failf "actual name %s: %s" name e
      | Ok (header, roots) ->
        Alcotest.(check bool) (name ^ ": roots") true (roots <> []);
        Alcotest.(check bool)
          (name ^ ": header names the actual switch")
          true
          (Astring.String.is_infix ~affix:name header))
    (Graph.switches g)

let test_explain_link_and_orientation () =
  let g, _ = Generators.now_c () in
  let map, snap = map_with_why ~routes:true g ~mapper_name:"C-util" in
  let replay = Replay.build snap in
  (* The mapper's own cable: an axiom plus an orientation entry. *)
  let util = Option.get (Graph.host_by_name map "C-util") in
  let _, other = List.hd (Graph.wired_ports map util) in
  let q =
    Result.get_ok
      (Explain.parse_query
         (Printf.sprintf "link:C-util.0-%s" (Explain.map_end_name map other)))
  in
  match Explain.roots_of ~actual:g ~map ~snap ~replay q with
  | Error e -> Alcotest.fail e
  | Ok (_, roots) ->
    let rendered = Format.asprintf "%a" (Explain.pp_roots snap) roots in
    Alcotest.(check bool) "mentions the axiom or a probe" true
      (Astring.String.is_infix ~affix:"axiom" rendered
      || Astring.String.is_infix ~affix:"probe" rendered);
    Alcotest.(check bool) "cites the up*/down* orientation" true
      (Astring.String.is_infix ~affix:"updown_orient" rendered)

let test_explain_route_per_hop () =
  let g, _ = Generators.now_c () in
  let map, snap = map_with_why ~routes:true g ~mapper_name:"C-util" in
  let replay = Replay.build snap in
  let table = San_routing.Routes.compute map in
  let src = Option.get (Graph.host_by_name map "C-h2") in
  let dst = Option.get (Graph.host_by_name map "C-h9") in
  let turns = Option.get (San_routing.Routes.route table ~src ~dst) in
  let tr = San_simnet.Worm.eval map ~src ~turns in
  let hops = tr.San_simnet.Worm.hops in
  Alcotest.(check bool) "route has hops" true (hops <> []);
  let per_hop = Explain.route_roots ~map ~snap ~replay ~hops in
  Alcotest.(check int) "one root set per hop" (List.length hops)
    (List.length per_hop);
  List.iter
    (fun (desc, roots) ->
      Alcotest.(check bool) (desc ^ ": justified") true (roots <> []))
    per_hop

let test_explain_parse_query () =
  let ok q = Result.is_ok (Explain.parse_query q) in
  Alcotest.(check bool) "switch" true (ok "switch:m3");
  Alcotest.(check bool) "link with dashes in names" true
    (ok "link:C-h0.0-C-leaf0.4");
  Alcotest.(check bool) "route" true (ok "route:h0->h1");
  Alcotest.(check bool) "garbage" false (ok "why:me");
  Alcotest.(check bool) "half a link" false (ok "link:h0.0")

let test_dot_export_well_formed () =
  let g = Generators.star ~leaves:3 () in
  let map, snap = map_with_why g ~mapper_name:"h0" in
  let replay = Replay.build snap in
  let sw = List.hd (Graph.switches map) in
  let vid =
    match San_why.Replay.vid_of_map_switch (Graph.name map sw) with
    | Some v -> v
    | None -> Alcotest.fail "map switch name did not parse"
  in
  let roots = Explain.roots_for_switch snap replay ~vid in
  let dot = Explain.dot_of_roots snap roots in
  Alcotest.(check bool) "digraph" true
    (Astring.String.is_prefix ~affix:"digraph why" dot);
  Alcotest.(check bool) "closes" true
    (Astring.String.is_suffix ~affix:"}\n" dot)

(* ------------------------------------------------------------------ *)
(* Ledger invariants and serialization                                 *)

let test_ledger_entries_cite_backwards () =
  let g, _ = Generators.now_c () in
  let _, snap = map_with_why ~routes:true g ~mapper_name:"C-util" in
  List.iter
    (fun (did, e) ->
      match e with
      | Why.Deduced { probes; deps; _ } ->
        List.iter
          (fun p ->
            if p < 0 || p >= did then
              Alcotest.failf "d%d cites d%d (not strictly earlier)" did p)
          (probes @ deps)
      | _ -> ())
    (Why.entries snap)

let test_entry_json_roundtrip () =
  let entries =
    [
      (0, Why.Probe { kind = Why.Host_probe; turns = [ 1; -2 ]; resp = "host h3" });
      (1, Why.Probe { kind = Why.Switch_probe; turns = []; resp = "silence" });
      (2, Why.Axiom { fact = lazy "ground truth" });
      ( 3,
        Why.Deduced
          {
            rule = "d1_slot_conflict";
            fact = lazy "v1 = v2";
            probes = [ 0; 1 ];
            deps = [ 2 ];
          } );
    ]
  in
  List.iter
    (fun (did, e) ->
      let j = Why.entry_to_json did e in
      match Why.entry_of_json j with
      | None -> Alcotest.failf "d%d did not parse back" did
      | Some (did', e') ->
        Alcotest.(check int) "did" did did';
        Alcotest.(check string)
          "same rendering"
          (Format.asprintf "%a" Why.pp_entry (did, e))
          (Format.asprintf "%a" Why.pp_entry (did', e')))
    entries

let test_disabled_ledger_records_nothing () =
  Why.set_enabled false;
  Alcotest.(check int) "record_probe" (-1)
    (Why.record_probe ~kind:Why.Host_probe ~turns:[ 1 ] ~resp:"x");
  Alcotest.(check int) "deduce" (-1)
    (Why.deduce ~rule:"r" ~fact:(lazy "f") ());
  Alcotest.(check bool) "last_probe" true (Why.last_probe () = None)

(* ------------------------------------------------------------------ *)
(* Blame                                                               *)

let blame_side g ~mapper_name =
  with_why (fun () ->
      let mapper = Option.get (Graph.host_by_name g mapper_name) in
      let net = San_simnet.Network.create g in
      let r = San_mapper.Berkeley.run net ~mapper in
      {
        San_why.Blame.b_map = Result.get_ok r.San_mapper.Berkeley.map;
        b_snap = Why.capture ();
      })

let test_blame_identical_maps_agree () =
  let g = Generators.star ~leaves:4 () in
  let old_ = blame_side g ~mapper_name:"h0" in
  let new_ = blame_side g ~mapper_name:"h0" in
  Alcotest.(check int) "no attributions" 0
    (List.length (San_why.Blame.run ~old_ ~new_))

let test_blame_attributes_new_branch () =
  let old_ = blame_side (Generators.star ~leaves:2 ()) ~mapper_name:"h0" in
  let new_ = blame_side (Generators.star ~leaves:4 ()) ~mapper_name:"h0" in
  let attrs = San_why.Blame.run ~old_ ~new_ in
  Alcotest.(check bool) "found changes" true (attrs <> []);
  (* The two extra hosts must be attributed to actual probes. *)
  List.iter
    (fun name ->
      let hit =
        List.find_opt
          (fun (a : San_why.Blame.attribution) ->
            Astring.String.is_infix ~affix:("host " ^ name) a.San_why.Blame.a_change)
          attrs
      in
      match hit with
      | None -> Alcotest.failf "no attribution mentions host %s" name
      | Some a ->
        Alcotest.(check bool)
          (name ^ " attributed to a probe")
          true
          (a.San_why.Blame.a_probe_did <> None))
    [ "h2"; "h3" ]

(* The turn-0 self-probe story (fuzz-campaign bug 3): an unwired
   mapper and a mapper on an otherwise-empty switch differ only in
   whether the self-probe bounces back, and blame must pin the map
   difference on exactly that probe. *)
let test_blame_turn0_self_probe () =
  let old_ = blame_side (Generators.lone_host ()) ~mapper_name:"h0" in
  let new_ = blame_side (Generators.stub_switch ()) ~mapper_name:"h0" in
  match San_why.Blame.run ~old_ ~new_ with
  | [ a ] ->
    Alcotest.(check bool)
      "the stub switch appeared" true
      (Astring.String.is_infix ~affix:"switch m1 appeared"
         a.San_why.Blame.a_change);
    Alcotest.(check bool)
      "pinned on the turn-0 self-probe" true
      (Astring.String.is_infix ~affix:"host-probe [0]" a.San_why.Blame.a_note);
    (* And the kept root's own evidence cites the same probe. *)
    let replay = San_why.Replay.build new_.San_why.Blame.b_snap in
    let roots =
      San_why.Explain.roots_for_switch new_.San_why.Blame.b_snap replay ~vid:1
    in
    let leaves =
      List.concat_map
        (San_why.Explain.leaves new_.San_why.Blame.b_snap)
        roots
    in
    Alcotest.(check bool)
      "root_confirmed reaches a probe leaf" true
      (List.exists
         (fun (_, e) -> match e with Why.Probe _ -> true | _ -> false)
         leaves)
  | attrs ->
    Alcotest.failf "expected exactly one attribution, got %d"
      (List.length attrs)

(* ------------------------------------------------------------------ *)
(* Flight recorder and postmortem                                      *)

let temp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "san_why_test_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let test_flight_roundtrip_postmortem () =
  San_obs.Obs.set_enabled true;
  San_obs.Obs.reset ();
  Fun.protect
    ~finally:(fun () -> San_obs.Obs.set_enabled false)
    (fun () ->
      with_why (fun () ->
          San_obs.Obs.emit
            (San_obs.Trace.Daemon_transition
               { epoch = 3; from_ = "stable"; to_ = "degraded" });
          ignore (Why.deduce ~rule:"test_rule" ~fact:(lazy "a test fact") ());
          let path = Filename.concat (temp_dir ()) "flight-roundtrip.jsonl" in
          (match
             San_why.Flight.write ~path ~note:"unit test" ~epoch:3 ()
           with
          | Error e -> Alcotest.fail e
          | Ok () -> ());
          match San_why.Postmortem.read path with
          | Error e -> Alcotest.fail e
          | Ok t ->
            let tl = String.concat "\n" (San_why.Postmortem.timeline t) in
            Alcotest.(check bool) "timeline has the transition" true
              (Astring.String.is_infix ~affix:"stable -> degraded" tl);
            let pp = Format.asprintf "%a" San_why.Postmortem.pp t in
            Alcotest.(check bool) "pp mentions the note" true
              (Astring.String.is_infix ~affix:"unit test" pp);
            Alcotest.(check bool) "pp shows the ledger tail" true
              (Astring.String.is_infix ~affix:"test_rule" pp)))

let test_daemon_flight_reproduces_epoch_story () =
  (* Drive the daemon into Degraded (kill every host on a small star),
     then reconstruct the run from the flight file alone. *)
  let dir = temp_dir () in
  Array.iter
    (fun f ->
      if Astring.String.is_prefix ~affix:"flight-" f then
        Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  San_obs.Obs.set_enabled true;
  San_obs.Obs.reset ();
  Fun.protect
    ~finally:(fun () -> San_obs.Obs.set_enabled false)
    (fun () ->
      let g = Generators.star ~leaves:3 () in
      let schedule =
        Result.get_ok
          (San_service.Schedule.parse "2:kill-leader,3:kill-leader,4:kill-leader")
      in
      let config =
        { San_service.Daemon.default_config with flight_dir = Some dir }
      in
      (match San_service.Daemon.run ~config ~schedule ~epochs:6 g with
      | Error e -> Alcotest.fail e
      | Ok o ->
        Alcotest.(check string)
          "parked degraded" "degraded"
          (San_service.Daemon.phase_to_string o.San_service.Daemon.final_phase));
      let flights =
        List.filter
          (fun f ->
            Astring.String.is_prefix ~affix:"flight-" f
            && f <> "flight-final.jsonl")
          (Array.to_list (Sys.readdir dir))
      in
      Alcotest.(check bool) "a degraded-transition flight exists" true
        (flights <> []);
      let t =
        Result.get_ok
          (San_why.Postmortem.read (Filename.concat dir (List.hd flights)))
      in
      let tl = String.concat "\n" (San_why.Postmortem.timeline t) in
      (* The epoch story from the file alone: cold start, the elections
         as leaders die, and the transition into degraded. *)
      Alcotest.(check bool) "cold start epoch" true
        (Astring.String.is_infix ~affix:"epoch 0" tl);
      Alcotest.(check bool) "reaches degraded" true
        (Astring.String.is_infix ~affix:"-> degraded" tl);
      Alcotest.(check bool) "epoch verdicts present" true
        (Astring.String.is_infix ~affix:"closed:" tl))

(* ------------------------------------------------------------------ *)
(* Election stuck outcome                                              *)

let test_election_normal_run_completes () =
  let g = Generators.star ~leaves:3 () in
  let r = San_mapper.Election_sim.run ~rng:(San_util.Prng.create 5) g in
  (match r.San_mapper.Election_sim.outcome with
  | San_mapper.Election_sim.Completed -> ()
  | San_mapper.Election_sim.Stuck _ -> Alcotest.fail "unexpected Stuck");
  Alcotest.(check bool) "map ok" true
    (Result.is_ok r.San_mapper.Election_sim.map)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "why"
    [
      ( "explain",
        [
          Alcotest.test_case "every Figure-3 switch terminates in probes"
            `Quick test_explain_every_switch_terminates_in_probes;
          Alcotest.test_case "actual names resolve through the map" `Quick
            test_explain_resolves_actual_names;
          Alcotest.test_case "link cites discovery and orientation" `Quick
            test_explain_link_and_orientation;
          Alcotest.test_case "route justifies every hop" `Quick
            test_explain_route_per_hop;
          Alcotest.test_case "query parser" `Quick test_explain_parse_query;
          Alcotest.test_case "dot export well-formed" `Quick
            test_dot_export_well_formed;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "entries cite strictly backwards" `Quick
            test_ledger_entries_cite_backwards;
          Alcotest.test_case "json roundtrip" `Quick test_entry_json_roundtrip;
          Alcotest.test_case "disabled records nothing" `Quick
            test_disabled_ledger_records_nothing;
        ] );
      ( "blame",
        [
          Alcotest.test_case "identical maps agree" `Quick
            test_blame_identical_maps_agree;
          Alcotest.test_case "new branch attributed to probes" `Quick
            test_blame_attributes_new_branch;
          Alcotest.test_case "turn-0 self-probe pinpointed" `Quick
            test_blame_turn0_self_probe;
        ] );
      ( "flight",
        [
          Alcotest.test_case "write/read roundtrip" `Quick
            test_flight_roundtrip_postmortem;
          Alcotest.test_case "daemon flight reproduces the epoch story"
            `Quick test_daemon_flight_reproduces_epoch_story;
        ] );
      ( "election",
        [
          Alcotest.test_case "normal run completes" `Quick
            test_election_normal_run_completes;
        ] );
    ]
