open San_topology

let qcheck t = QCheck_alcotest.to_alcotest t

(* ---------- graph construction ---------- *)

let two_switch_net () =
  let g = Graph.create () in
  let s0 = Graph.add_switch g ~name:"s0" () in
  let s1 = Graph.add_switch g ~name:"s1" () in
  let h0 = Graph.add_host g ~name:"h0" in
  let h1 = Graph.add_host g ~name:"h1" in
  Graph.connect g (s0, 3) (s1, 5);
  Graph.connect g (h0, 0) (s0, 0);
  Graph.connect g (h1, 0) (s1, 0);
  (g, s0, s1, h0, h1)

let test_graph_basic () =
  let g, s0, s1, h0, _h1 = two_switch_net () in
  Alcotest.(check int) "nodes" 4 (Graph.num_nodes g);
  Alcotest.(check int) "hosts" 2 (Graph.num_hosts g);
  Alcotest.(check int) "switches" 2 (Graph.num_switches g);
  Alcotest.(check int) "wires" 3 (Graph.num_wires g);
  Alcotest.(check int) "radix" 8 (Graph.radix g);
  Alcotest.(check bool) "host kind" true (Graph.is_host g h0);
  Alcotest.(check bool) "switch kind" false (Graph.is_host g s0);
  Alcotest.(check int) "switch ports" 8 (Graph.ports_of g s0);
  Alcotest.(check int) "host ports" 1 (Graph.ports_of g h0);
  Alcotest.(check int) "s0 degree" 2 (Graph.degree g s0);
  (match Graph.neighbor g (s0, 3) with
  | Some (n, p) ->
    Alcotest.(check int) "peer node" s1 n;
    Alcotest.(check int) "peer port" 5 p
  | None -> Alcotest.fail "wire missing");
  Alcotest.(check (option int)) "host lookup" (Some h0) (Graph.host_by_name g "h0");
  Alcotest.(check (option int)) "no such host" None (Graph.host_by_name g "zz")

let test_graph_connect_errors () =
  let g = Graph.create () in
  let s0 = Graph.add_switch g () in
  let s1 = Graph.add_switch g () in
  Graph.connect g (s0, 0) (s1, 0);
  Alcotest.(check bool) "occupied port rejected" true
    (try
       Graph.connect g (s0, 0) (s1, 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "port out of range rejected" true
    (try
       Graph.connect g (s0, 8) (s1, 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "identical ends rejected" true
    (try
       Graph.connect g (s0, 2) (s0, 2);
       false
     with Invalid_argument _ -> true);
  (* Same-switch cable between distinct ports is legal. *)
  Graph.connect g (s0, 2) (s0, 3);
  Alcotest.(check int) "self cable counted once" 2 (Graph.num_wires g)

let test_graph_duplicate_host () =
  let g = Graph.create () in
  ignore (Graph.add_host g ~name:"x");
  Alcotest.(check bool) "duplicate name rejected" true
    (try
       ignore (Graph.add_host g ~name:"x");
       false
     with Invalid_argument _ -> true)

let test_graph_disconnect () =
  let g, s0, s1, _, _ = two_switch_net () in
  Graph.disconnect g (s1, 5);
  Alcotest.(check int) "wire gone" 2 (Graph.num_wires g);
  Alcotest.(check (option (pair int int))) "both ends free" None
    (Graph.neighbor g (s0, 3));
  Graph.disconnect g (s0, 3) (* no-op on vacant port *)

let test_graph_copy_independent () =
  let g, s0, s1, _, _ = two_switch_net () in
  let g' = Graph.copy g in
  Graph.disconnect g' (s0, 3);
  Alcotest.(check int) "original untouched" 3 (Graph.num_wires g);
  Alcotest.(check int) "copy changed" 2 (Graph.num_wires g');
  Graph.connect g' (s0, 3) (s1, 6);
  Alcotest.(check (option (pair int int))) "original port 5 still wired"
    (Some (s0, 3))
    (Graph.neighbor g (s1, 5))

let test_graph_wires_canonical () =
  let g, _, _, _, _ = two_switch_net () in
  let ws = Graph.wires g in
  Alcotest.(check int) "each wire once" 3 (List.length ws);
  List.iter (fun (a, b) -> Alcotest.(check bool) "ordered ends" true (a < b)) ws

let test_parallel_wires () =
  let g = Graph.create () in
  let s0 = Graph.add_switch g () in
  let s1 = Graph.add_switch g () in
  Graph.connect g (s0, 0) (s1, 0);
  Graph.connect g (s0, 1) (s1, 1);
  Graph.connect g (s0, 2) (s1, 2);
  Alcotest.(check int) "parallel wires all present" 3 (Graph.num_wires g);
  Alcotest.(check int) "degree counts all" 3 (Graph.degree g s0)

(* ---------- analysis ---------- *)

let test_bfs_and_diameter () =
  let g = Generators.chain ~switches:5 () in
  (* h0, h1 on switch 0; switches in a line. *)
  let h0 = Option.get (Graph.host_by_name g "h0") in
  let d = Analysis.bfs_distances g h0 in
  let far_switch = List.nth (Graph.switches g) 4 in
  Alcotest.(check int) "distance to far switch" 5 d.(far_switch);
  Alcotest.(check int) "diameter" 5 (Analysis.diameter g);
  Alcotest.(check bool) "connected" true (Analysis.is_connected g)

let test_components () =
  let g = Graph.create () in
  let s0 = Graph.add_switch g () in
  let s1 = Graph.add_switch g () in
  let h0 = Graph.add_host g ~name:"a" in
  Graph.connect g (h0, 0) (s0, 0);
  Alcotest.(check int) "two components" 2 (List.length (Analysis.components g));
  Alcotest.(check bool) "not connected" false (Analysis.is_connected g);
  Alcotest.(check (list int)) "component of s0" [ s0; h0 ]
    (Analysis.component_of g s0);
  Graph.connect g (s0, 1) (s1, 0);
  Alcotest.(check bool) "now connected" true (Analysis.is_connected g)

let test_farthest_switch () =
  let g, _ = Generators.now_c () in
  let util = Option.get (Graph.host_by_name g "C-util") in
  (match Analysis.farthest_switch_from_hosts g ~ignore:[ util ] with
  | Some s ->
    (* Roots are farthest from the leaf-attached hosts once the utility
       host (wired to a root) is ignored. *)
    let name = Graph.name g s in
    Alcotest.(check bool) ("root chosen: " ^ name) true
      (String.length name >= 6 && String.sub name 0 6 = "C-root")
  | None -> Alcotest.fail "no switch found");
  (* Without ignoring the utility host a root is no longer distance-2
     from every host. *)
  Alcotest.(check bool) "some switch still found" true
    (Analysis.farthest_switch_from_hosts g ~ignore:[] <> None)

let test_hop_histogram () =
  let g = Generators.star ~leaves:3 () in
  let h0 = Option.get (Graph.host_by_name g "h0") in
  let hist = Analysis.hop_histogram g h0 in
  Alcotest.(check (list (pair int int)))
    "star histogram"
    [ (0, 1); (1, 1); (2, 1); (3, 2); (4, 2) ]
    hist

(* ---------- figure 3: subcluster component counts ---------- *)

let check_counts name (g, _) ~hosts ~switches ~links =
  Alcotest.(check int) (name ^ " interfaces") hosts (Graph.num_hosts g);
  Alcotest.(check int) (name ^ " switches") switches (Graph.num_switches g);
  Alcotest.(check int) (name ^ " links") links (Graph.num_wires g);
  Alcotest.(check bool) (name ^ " connected") true (Analysis.is_connected g)

let test_figure3_counts () =
  check_counts "A" (Generators.subcluster Generators.spec_a) ~hosts:34
    ~switches:13 ~links:64;
  check_counts "B" (Generators.subcluster Generators.spec_b) ~hosts:30
    ~switches:14 ~links:65;
  check_counts "C" (Generators.subcluster Generators.spec_c) ~hosts:36
    ~switches:13 ~links:64

let test_now_counts () =
  let g, handles = Generators.now_cab () in
  Alcotest.(check int) "100 hosts" 100 (Graph.num_hosts g);
  Alcotest.(check int) "40 switches" 40 (Graph.num_switches g);
  (* 193 intra-subcluster links + 4 root-to-root cross links. *)
  Alcotest.(check int) "links" 197 (Graph.num_wires g);
  Alcotest.(check int) "three subclusters" 3 (List.length handles);
  Alcotest.(check bool) "connected" true (Analysis.is_connected g);
  Alcotest.(check bool) "empty F" true (Core_set.core_is_empty_f g)

let test_generator_port_limits () =
  let check_g g =
    List.iter
      (fun s ->
        Alcotest.(check bool) "degree within radix" true
          (Graph.degree g s <= Graph.radix g))
      (Graph.switches g);
    (* Every wired port index fits the 8-port crossbar. *)
    List.iter
      (fun (((a, pa), (b, pb)) : Graph.wire_end * Graph.wire_end) ->
        ignore a;
        ignore b;
        Alcotest.(check bool) "port index within crossbar" true
          (pa >= 0 && pa < Graph.radix g && pb >= 0 && pb < Graph.radix g))
      (Graph.wires g)
  in
  check_g (fst (Generators.subcluster Generators.spec_a));
  check_g (fst (Generators.subcluster Generators.spec_b));
  check_g (fst (Generators.subcluster Generators.spec_c));
  check_g (fst (Generators.now_cab ()));
  check_g (Generators.hypercube ~dim:5 ());
  check_g (Generators.torus ~rows:4 ~cols:4 ());
  check_g (Generators.fat_tree ~leaves:4 ~hosts_per_leaf:4 ~spines:3 ())

(* ---------- bridges, F, Q ---------- *)

let test_bridges_chain () =
  let g = Generators.chain ~switches:4 () in
  (* Every wire in a chain is a bridge. *)
  Alcotest.(check int) "all wires are bridges" (Graph.num_wires g)
    (List.length (Core_set.bridges g));
  Alcotest.(check int) "switch bridges" 3 (List.length (Core_set.switch_bridges g))

let test_bridges_parallel_not_bridge () =
  let g = Graph.create () in
  let s0 = Graph.add_switch g () in
  let s1 = Graph.add_switch g () in
  Graph.connect g (s0, 0) (s1, 0);
  Graph.connect g (s0, 1) (s1, 1);
  Alcotest.(check int) "parallel pair: no bridges" 0
    (List.length (Core_set.bridges g))

let test_f_pendant () =
  let g = Generators.pendant_branch () in
  let f = Core_set.separated_set g in
  let tail0 = List.nth (Graph.nodes g) 5 in
  let tail1 = List.nth (Graph.nodes g) 6 in
  Alcotest.(check bool) "tail0 in F" true f.(tail0);
  Alcotest.(check bool) "tail1 in F" true f.(tail1);
  Alcotest.(check int) "only the tail in F" 2
    (Array.fold_left (fun a b -> if b then a + 1 else a) 0 f);
  Alcotest.(check bool) "F nonempty detected" false (Core_set.core_is_empty_f g)

let test_f_chain_is_core () =
  (* A chain of switches ending with hosts only at one end: the
     hostless suffix is separated by switch-bridges. *)
  let g = Generators.chain ~switches:4 () in
  let f = Core_set.separated_set g in
  let switches = Graph.switches g in
  Alcotest.(check bool) "first switch in core" false f.(List.nth switches 0);
  Alcotest.(check bool) "later switches in F" true f.(List.nth switches 1);
  Alcotest.(check bool) "last switch in F" true f.(List.nth switches 3)

let test_q_values () =
  (* Single switch with three hosts: Q(v) is tiny. *)
  let g = Graph.create () in
  let s = Graph.add_switch g () in
  let mk n = Graph.add_host g ~name:n in
  let h0 = mk "h0" and h1 = mk "h1" and h2 = mk "h2" in
  Graph.connect g (h0, 0) (s, 0);
  Graph.connect g (h1, 0) (s, 1);
  Graph.connect g (h2, 0) (s, 2);
  Alcotest.(check (option int)) "Q(root)" (Some 0) (Core_set.q_of g ~root:h0 h0);
  Alcotest.(check (option int)) "Q(switch)" (Some 2) (Core_set.q_of g ~root:h0 s);
  Alcotest.(check (option int)) "Q(other host)" (Some 2) (Core_set.q_of g ~root:h0 h1);
  Alcotest.(check int) "Q bound" 2 (Core_set.q_bound g ~root:h0);
  Alcotest.(check int) "search depth = Q+D+1" 5 (Core_set.search_depth g ~root:h0)

(* In a hostless *tree* tail even the direction-aware Q stays
   undefined: a worm into the tail can only come back through the
   port it would have to leave by again. *)
let test_q_undefined_in_f () =
  let g = Generators.pendant_branch () in
  let h0 = Option.get (Graph.host_by_name g "h0") in
  let tail1 = List.nth (Graph.nodes g) 6 in
  Alcotest.(check (option int)) "Q undefined in a hostless tree tail" None
    (Core_set.q_of g ~root:h0 tail1)

(* Lemma 1 as a property: Q(v) is defined on all of the core, so the
   search-depth bound covers every vertex the map must contain. (The
   converse does not hold: a worm may cross a bridge once in each
   direction, so Q can be finite inside a cyclic F region — which
   stays unmappable anyway, since no host anchors a deduction there.) *)
let lemma1_prop =
  QCheck.Test.make ~name:"lemma1: Q defined on all of the core" ~count:40
    QCheck.(pair small_int small_int)
    (fun (seed, extra) ->
      let rng = San_util.Prng.create (seed + 1) in
      let g =
        Generators.random_connected ~rng ~switches:6 ~hosts:3
          ~extra_links:(extra mod 4) ()
      in
      let root = Option.get (Graph.host_by_name g "h0") in
      let f = Core_set.separated_set g in
      List.for_all
        (fun v -> f.(v) || Core_set.q_of g ~root v <> None)
        (Graph.nodes g))

(* ---------- min-cost flow ---------- *)

let test_flow_simple () =
  (* 0 -> 1 -> 3 and 0 -> 2 -> 3, disjoint unit paths. *)
  let f = Flow.create 4 in
  Flow.add_arc f ~src:0 ~dst:1 ~cap:1 ~cost:1;
  Flow.add_arc f ~src:1 ~dst:3 ~cap:1 ~cost:1;
  Flow.add_arc f ~src:0 ~dst:2 ~cap:1 ~cost:3;
  Flow.add_arc f ~src:2 ~dst:3 ~cap:1 ~cost:3;
  Alcotest.(check (option int)) "one unit, cheap path" (Some 2)
    (Flow.min_cost_flow f ~source:0 ~sink:3 ~amount:1);
  Alcotest.(check (option int)) "two units use both" (Some 8)
    (Flow.min_cost_flow f ~source:0 ~sink:3 ~amount:2);
  Alcotest.(check (option int)) "three units impossible" None
    (Flow.min_cost_flow f ~source:0 ~sink:3 ~amount:3);
  Alcotest.(check int) "max flow" 2 (Flow.max_flow_value f ~source:0 ~sink:3)

let test_flow_rerouting () =
  (* Classic case where the second augmentation must push flow back. *)
  let f = Flow.create 4 in
  Flow.add_arc f ~src:0 ~dst:1 ~cap:1 ~cost:1;
  Flow.add_arc f ~src:0 ~dst:2 ~cap:1 ~cost:1;
  Flow.add_arc f ~src:1 ~dst:2 ~cap:1 ~cost:0;
  Flow.add_arc f ~src:1 ~dst:3 ~cap:1 ~cost:5;
  Flow.add_arc f ~src:2 ~dst:3 ~cap:1 ~cost:1;
  Alcotest.(check (option int)) "min cost 2-flow" (Some 8)
    (Flow.min_cost_flow f ~source:0 ~sink:3 ~amount:2)

(* ---------- isomorphism ---------- *)

let test_iso_identity () =
  let g, _ = Generators.now_c () in
  Alcotest.(check bool) "graph iso to itself" true
    (Iso.equal ~map:g ~actual:g ())

let test_iso_port_shift () =
  (* The same network with every switch's ports shifted is isomorphic. *)
  let build shift =
    let g = Graph.create () in
    let s0 = Graph.add_switch g () in
    let s1 = Graph.add_switch g () in
    let h0 = Graph.add_host g ~name:"h0" in
    let h1 = Graph.add_host g ~name:"h1" in
    Graph.connect g (h0, 0) (s0, 0 + shift);
    Graph.connect g (h1, 0) (s1, 1 + shift);
    Graph.connect g (s0, 2 + shift) (s1, 3 + shift);
    g
  in
  Alcotest.(check bool) "shifted ports isomorphic" true
    (Iso.equal ~map:(build 0) ~actual:(build 4) ())

let test_iso_detects_missing_edge () =
  let g1, _ = Generators.now_c () in
  let g2, _ = Generators.now_c () in
  (* Cut one switch-switch wire in g2. *)
  let (e, _) =
    List.find
      (fun ((a, _), (b, _)) -> not (Graph.is_host g2 a || Graph.is_host g2 b))
      (Graph.wires g2)
  in
  Graph.disconnect g2 e;
  Alcotest.(check bool) "missing edge detected" false
    (Iso.equal ~map:g2 ~actual:g1 ())

let test_iso_detects_renamed_host () =
  let g1 = Generators.star ~leaves:2 () in
  let g2 = Graph.create () in
  let hub = Graph.add_switch g2 () in
  let l0 = Graph.add_switch g2 () in
  let l1 = Graph.add_switch g2 () in
  Graph.connect g2 (hub, 0) (l0, 0);
  Graph.connect g2 (hub, 1) (l1, 0);
  let h0 = Graph.add_host g2 ~name:"h0" in
  let hx = Graph.add_host g2 ~name:"hx" in
  Graph.connect g2 (h0, 0) (l0, 1);
  Graph.connect g2 (hx, 0) (l1, 1);
  Alcotest.(check bool) "renamed host detected" false
    (Iso.equal ~map:g2 ~actual:g1 ())

let test_iso_respects_exclusion () =
  let g = Generators.pendant_branch () in
  let f = Core_set.separated_set g in
  (* Build the bare core by hand: two switches, doubled link, hosts. *)
  let core = Graph.create () in
  let s0 = Graph.add_switch core () in
  let s1 = Graph.add_switch core () in
  Graph.connect core (s0, 0) (s1, 0);
  Graph.connect core (s0, 1) (s1, 1);
  let h0 = Graph.add_host core ~name:"h0" in
  let h1 = Graph.add_host core ~name:"h1" in
  let h2 = Graph.add_host core ~name:"h2" in
  Graph.connect core (h0, 0) (s0, 2);
  Graph.connect core (h1, 0) (s0, 3);
  Graph.connect core (h2, 0) (s1, 2);
  Alcotest.(check bool) "core match with exclusion" true
    (Iso.equal ~map:core ~actual:g ~exclude:f ());
  Alcotest.(check bool) "mismatch without exclusion" false
    (Iso.equal ~map:core ~actual:g ())

(* Two independent switch-bridges, one hiding a hostless tail and the
   other a hostless cycle: [separated_set] must mark the union of both
   fragments, and [Iso.check ~exclude] must accept a map that carries
   only the core. *)
let test_iso_two_bridge_union () =
  let g = Graph.create () in
  let s0 = Graph.add_switch g () in
  let s1 = Graph.add_switch g () in
  Graph.connect g (s0, 0) (s1, 0);
  let h0 = Graph.add_host g ~name:"h0" in
  let h1 = Graph.add_host g ~name:"h1" in
  Graph.connect g (h0, 0) (s0, 1);
  Graph.connect g (h1, 0) (s1, 1);
  (* Bridge 1: hostless two-switch tail off s0. *)
  let t0 = Graph.add_switch g () in
  let t1 = Graph.add_switch g () in
  Graph.connect g (s0, 2) (t0, 0);
  Graph.connect g (t0, 1) (t1, 0);
  (* Bridge 2: hostless three-switch cycle off s1. *)
  let c0 = Graph.add_switch g () in
  let c1 = Graph.add_switch g () in
  let c2 = Graph.add_switch g () in
  Graph.connect g (s1, 2) (c0, 0);
  Graph.connect g (c0, 1) (c1, 0);
  Graph.connect g (c1, 1) (c2, 0);
  Graph.connect g (c2, 1) (c0, 2);
  let f = Core_set.separated_set g in
  List.iter
    (fun v -> Alcotest.(check bool) "fragment node in F" true f.(v))
    [ t0; t1; c0; c1; c2 ];
  List.iter
    (fun v -> Alcotest.(check bool) "core node not in F" false f.(v))
    [ s0; s1; h0; h1 ];
  let core = Graph.create () in
  let m0 = Graph.add_switch core () in
  let m1 = Graph.add_switch core () in
  Graph.connect core (m0, 0) (m1, 0);
  let k0 = Graph.add_host core ~name:"h0" in
  let k1 = Graph.add_host core ~name:"h1" in
  Graph.connect core (k0, 0) (m0, 1);
  Graph.connect core (k1, 0) (m1, 1);
  Alcotest.(check bool) "core match with two-bridge exclusion" true
    (Iso.equal ~map:core ~actual:g ~exclude:f ());
  Alcotest.(check bool) "mismatch without exclusion" false
    (Iso.equal ~map:core ~actual:g ())

(* The confirming worm may cross a wire once per direction: behind a
   single host attachment, a triangle's switches are confirmable only
   by going out one way and back the other over the same host cable —
   Q must be finite there (a fuzz counterexample pinned the old
   both-legs-outward flow returning None and starving the depth). *)
let test_q_direction_reuse () =
  let g = Graph.create () in
  let s3 = Graph.add_switch g () in
  let s0 = Graph.add_switch g () in
  let s1 = Graph.add_switch g () in
  let h0 = Graph.add_host g ~name:"h0" in
  Graph.connect g (h0, 0) (s3, 0);
  Graph.connect g (s3, 1) (s0, 0);
  Graph.connect g (s3, 2) (s1, 0);
  Graph.connect g (s0, 1) (s1, 1);
  Alcotest.(check (option int)) "Q(s0) via both cable directions"
    (Some 5) (Core_set.q_of g ~root:h0 s0);
  Alcotest.(check (option int)) "Q(s1) via both cable directions"
    (Some 5) (Core_set.q_of g ~root:h0 s1);
  Alcotest.(check bool) "depth covers the closing probe" true
    (Core_set.search_depth g ~root:h0 >= 5)

(* ---------- faults ---------- *)

let test_faults () =
  let g, _ = Generators.now_c () in
  let rng = San_util.Prng.create 4 in
  let g' = Faults.remove_random_links ~rng g ~count:3 in
  Alcotest.(check int) "three links removed" (Graph.num_wires g - 3)
    (Graph.num_wires g');
  Alcotest.(check int) "hosts still attached" (Graph.num_hosts g)
    (List.length
       (List.filter (fun h -> Graph.degree g' h = 1) (Graph.hosts g')));
  let sw = List.hd (Graph.switches g) in
  let g'' = Faults.isolate_switch g sw in
  Alcotest.(check int) "switch isolated" 0 (Graph.degree g'' sw);
  match Faults.add_random_link ~rng g with
  | Some g3 ->
    Alcotest.(check int) "one link added" (Graph.num_wires g + 1)
      (Graph.num_wires g3)
  | None -> Alcotest.fail "spare ports exist, link should be addable"

let test_flap_link () =
  let g, _ = Generators.now_c () in
  (* pick a switch-to-switch wire so hosts keep their attachment *)
  let e =
    List.find_map
      (fun (((a, _) as ea), (b, _)) ->
        if (not (Graph.is_host g a)) && not (Graph.is_host g b) then Some ea
        else None)
      (Graph.wires g)
    |> Option.get
  in
  match Faults.flap_link g e with
  | None -> Alcotest.fail "wired end should flap"
  | Some (degraded, restore) ->
    Alcotest.(check int) "one wire down" (Graph.num_wires g - 1)
      (Graph.num_wires degraded);
    Alcotest.(check int) "original untouched" (Graph.num_wires g)
      (Graph.num_wires (Graph.copy g));
    let repaired = restore degraded in
    Alcotest.(check int) "wire back" (Graph.num_wires g)
      (Graph.num_wires repaired);
    Alcotest.(check bool) "same wires as before the flap" true
      (List.sort compare (Graph.wires repaired)
      = List.sort compare (Graph.wires g));
    (* restore refuses if the port was re-wired meanwhile *)
    let hijacked = Graph.copy degraded in
    let s = Graph.add_switch hijacked ~name:"intruder" () in
    Graph.connect hijacked e (s, 0);
    (match restore hijacked with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "restore over a re-wired port should refuse")

let test_flap_unwired () =
  let g, _ = Generators.now_c () in
  let s = Graph.add_switch g ~name:"spare" () in
  Alcotest.(check bool) "unwired end does not flap" true
    (Faults.flap_link g (s, 0) = None)

(* ---------- serialization ---------- *)

let test_serial_roundtrip () =
  let g, _ = Generators.now_cab () in
  match Serial.of_json (Serial.to_json g) with
  | Ok g' ->
    Alcotest.(check bool) "wires identical" true (Graph.wires g' = Graph.wires g);
    Alcotest.(check int) "hosts" (Graph.num_hosts g) (Graph.num_hosts g');
    Alcotest.(check bool) "isomorphic too" true (Iso.equal ~map:g' ~actual:g ())
  | Error e -> Alcotest.fail e

let test_serial_text_roundtrip () =
  let g = Generators.torus ~rows:2 ~cols:3 () in
  let text = San_util.Json.to_string (Serial.to_json g) in
  match Result.bind (San_util.Json.of_string text) Serial.of_json with
  | Ok g' -> Alcotest.(check bool) "parallel wires survive" true
      (Graph.wires g' = Graph.wires g)
  | Error e -> Alcotest.fail e

let test_serial_rejects_garbage () =
  List.iter
    (fun j ->
      match Serial.of_json j with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "accepted malformed map")
    San_util.Json.
      [ Null;
        Obj [ ("radix", int 8) ];
        Obj [ ("radix", int 8); ("nodes", Arr [ Obj [ ("id", int 1) ] ]);
              ("wires", Arr []) ];
        Obj [ ("radix", int 8);
              ("nodes", Arr [ Obj [ ("id", int 0); ("kind", Str "llama") ] ]);
              ("wires", Arr []) ] ]

let test_serial_file () =
  let g, _ = Generators.now_c () in
  let path = Filename.temp_file "san" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.save g path;
      match Serial.load path with
      | Ok g' -> Alcotest.(check bool) "file round trip" true
          (Graph.wires g' = Graph.wires g)
      | Error e -> Alcotest.fail e)

(* ---------- map diffing ---------- *)

let remap_c g =
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let net = San_simnet.Network.create g in
  Result.get_ok (San_mapper.Berkeley.run net ~mapper).San_mapper.Berkeley.map

let test_diff_identity () =
  let g, _ = Generators.now_c () in
  let m = remap_c g in
  Alcotest.(check bool) "no changes between equal maps" true
    (Diff.is_unchanged ~old_map:m ~new_map:(remap_c g))

let test_diff_reports_cut_link () =
  let g, _ = Generators.now_c () in
  let m0 = remap_c g in
  let rng = San_util.Prng.create 77 in
  let m1 = remap_c (Faults.remove_random_links ~rng g ~count:1) in
  match Diff.diff ~old_map:m0 ~new_map:m1 with
  | [ Diff.Link_removed _ ] -> ()
  | cs ->
    Alcotest.failf "expected exactly one lost link, got %d changes"
      (List.length cs)

let test_diff_reports_silent_host () =
  let g, _ = Generators.now_c () in
  let m0 = remap_c g in
  let silent = Option.get (Graph.host_by_name g "C-h3") in
  let net = San_simnet.Network.create ~responding:(fun h -> h <> silent) g in
  let mapper = Option.get (Graph.host_by_name g "C-util") in
  let m1 =
    Result.get_ok (San_mapper.Berkeley.run net ~mapper).San_mapper.Berkeley.map
  in
  (match Diff.diff ~old_map:m0 ~new_map:m1 with
  | [ Diff.Host_removed "C-h3" ] -> ()
  | cs -> Alcotest.failf "expected one vanished host, got %d" (List.length cs));
  match Diff.diff ~old_map:m1 ~new_map:m0 with
  | [ Diff.Host_added "C-h3" ] -> ()
  | cs -> Alcotest.failf "expected one appeared host, got %d" (List.length cs)

let test_diff_reports_removed_switch () =
  let g, _ = Generators.now_c () in
  let m0 = remap_c g in
  (* Pull a mid switch (fat-tree redundancy keeps everything routed). *)
  let h0 = Option.get (Graph.host_by_name g "C-h0") in
  let leaf = fst (Option.get (Graph.neighbor g (h0, 0))) in
  let mid =
    Graph.wired_ports g leaf
    |> List.filter_map (fun (_, (n, _)) ->
           if Graph.is_host g n then None else Some n)
    |> List.hd
  in
  let m1 = remap_c (Faults.isolate_switch g mid) in
  let changes = Diff.diff ~old_map:m0 ~new_map:m1 in
  Alcotest.(check int) "exactly one change" 1 (List.length changes);
  match changes with
  | [ Diff.Switch_removed _ ] -> ()
  | _ -> Alcotest.fail "expected a removed switch"

let test_diff_shift_insensitive () =
  (* The same network with shifted switch ports diffs as unchanged. *)
  let build shift =
    let g = Graph.create () in
    let s0 = Graph.add_switch g () in
    let s1 = Graph.add_switch g () in
    let h0 = Graph.add_host g ~name:"h0" in
    let h1 = Graph.add_host g ~name:"h1" in
    Graph.connect g (h0, 0) (s0, 0 + shift);
    Graph.connect g (h1, 0) (s1, 2 + shift);
    Graph.connect g (s0, 1 + shift) (s1, 3 + shift);
    g
  in
  Alcotest.(check bool) "shifted ports: unchanged" true
    (Diff.is_unchanged ~old_map:(build 0) ~new_map:(build 4))

(* ---------- DOT export ---------- *)

let test_dot () =
  let g = Generators.star ~leaves:2 () in
  let s = Dot.to_string ~graph_name:"star" g in
  Alcotest.(check bool) "graph header" true
    (Astring.String.is_prefix ~affix:"graph \"star\"" s);
  Alcotest.(check bool) "mentions host" true
    (Astring.String.is_infix ~affix:"h0" s);
  Alcotest.(check bool) "mentions hub" true
    (Astring.String.is_infix ~affix:"hub" s)

let () =
  Alcotest.run "san_topology"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "connect errors" `Quick test_graph_connect_errors;
          Alcotest.test_case "duplicate host" `Quick test_graph_duplicate_host;
          Alcotest.test_case "disconnect" `Quick test_graph_disconnect;
          Alcotest.test_case "copy independence" `Quick test_graph_copy_independent;
          Alcotest.test_case "wires canonical" `Quick test_graph_wires_canonical;
          Alcotest.test_case "parallel wires" `Quick test_parallel_wires;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "bfs and diameter" `Quick test_bfs_and_diameter;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "farthest switch" `Quick test_farthest_switch;
          Alcotest.test_case "hop histogram" `Quick test_hop_histogram;
        ] );
      ( "generators",
        [
          Alcotest.test_case "figure 3 counts" `Quick test_figure3_counts;
          Alcotest.test_case "now counts" `Quick test_now_counts;
          Alcotest.test_case "port limits" `Quick test_generator_port_limits;
        ] );
      ( "core_set",
        [
          Alcotest.test_case "bridges in chain" `Quick test_bridges_chain;
          Alcotest.test_case "parallel not bridge" `Quick
            test_bridges_parallel_not_bridge;
          Alcotest.test_case "F of pendant" `Quick test_f_pendant;
          Alcotest.test_case "F of chain" `Quick test_f_chain_is_core;
          Alcotest.test_case "Q values" `Quick test_q_values;
          Alcotest.test_case "Q undefined in F" `Quick test_q_undefined_in_f;
          Alcotest.test_case "Q direction reuse" `Quick test_q_direction_reuse;
          qcheck lemma1_prop;
        ] );
      ( "flow",
        [
          Alcotest.test_case "simple" `Quick test_flow_simple;
          Alcotest.test_case "rerouting" `Quick test_flow_rerouting;
        ] );
      ( "iso",
        [
          Alcotest.test_case "identity" `Quick test_iso_identity;
          Alcotest.test_case "port shift" `Quick test_iso_port_shift;
          Alcotest.test_case "missing edge" `Quick test_iso_detects_missing_edge;
          Alcotest.test_case "renamed host" `Quick test_iso_detects_renamed_host;
          Alcotest.test_case "exclusion" `Quick test_iso_respects_exclusion;
          Alcotest.test_case "two-bridge union" `Quick test_iso_two_bridge_union;
        ] );
      ( "faults",
        [
          Alcotest.test_case "inject" `Quick test_faults;
          Alcotest.test_case "flap link" `Quick test_flap_link;
          Alcotest.test_case "flap unwired" `Quick test_flap_unwired;
        ] );
      ( "serial",
        [
          Alcotest.test_case "roundtrip" `Quick test_serial_roundtrip;
          Alcotest.test_case "text roundtrip" `Quick test_serial_text_roundtrip;
          Alcotest.test_case "garbage" `Quick test_serial_rejects_garbage;
          Alcotest.test_case "file" `Quick test_serial_file;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identity" `Quick test_diff_identity;
          Alcotest.test_case "cut link" `Quick test_diff_reports_cut_link;
          Alcotest.test_case "silent host" `Quick test_diff_reports_silent_host;
          Alcotest.test_case "removed switch" `Quick test_diff_reports_removed_switch;
          Alcotest.test_case "shift insensitive" `Quick test_diff_shift_insensitive;
        ] );
      ("dot", [ Alcotest.test_case "export" `Quick test_dot ]);
    ]
