(* The SLO observatory: digest merge algebra (merge of digests equals
   the digest of the concatenated streams, exactly), quantile accuracy
   within the guaranteed relative error, JSON round-trips, load-window
   coupling, and burn-rate alerts raising and clearing under a
   scripted load ramp. *)

open San_slo

let close ?(rel = 0.10) msg expected got =
  let ok = Float.abs (got -. expected) <= rel *. Float.abs expected in
  Alcotest.(check bool)
    (Printf.sprintf "%s: expected ~%g, got %g" msg expected got)
    true ok

(* Deterministic pseudo-random samples without depending on the global
   Random state. *)
let samples seed n =
  let rng = San_util.Prng.create seed in
  List.init n (fun _ -> San_util.Prng.float rng 1e6)

(* ------------------------------------------------------------------ *)
(* Digest merge algebra                                                *)

(* Equality up to float addition order: bucket counts and quantiles
   must agree exactly, [sum] only to rounding (merge adds partial sums
   in a different order than streaming). *)
let digests_equal msg a b =
  Alcotest.(check int) (msg ^ ": count") (Digest.count a) (Digest.count b);
  close ~rel:1e-9 (msg ^ ": sum") (Digest.sum a) (Digest.sum b);
  List.iter
    (fun q ->
      close ~rel:1e-9
        (Printf.sprintf "%s: q%.2f" msg q)
        (Digest.quantile a q) (Digest.quantile b q))
    [ 0.0; 0.25; 0.5; 0.9; 0.95; 0.99; 1.0 ]

let test_merge_is_concat () =
  let xs = samples 1 700 and ys = samples 2 300 in
  let merged = Digest.merge (Digest.of_list xs) (Digest.of_list ys) in
  digests_equal "merge = concat" merged (Digest.of_list (xs @ ys))

let test_merge_commutes_and_associates () =
  let a = Digest.of_list (samples 3 100)
  and b = Digest.of_list (samples 4 200)
  and c = Digest.of_list (samples 5 50) in
  digests_equal "commute" (Digest.merge a b) (Digest.merge b a);
  digests_equal "associate"
    (Digest.merge (Digest.merge a b) c)
    (Digest.merge a (Digest.merge b c));
  digests_equal "merge_all" (Digest.merge_all [ a; b; c ])
    (Digest.merge (Digest.merge a b) c)

let test_merge_empty_identity () =
  let a = Digest.of_list (samples 6 120) in
  digests_equal "empty right" a (Digest.merge a (Digest.create ()));
  digests_equal "empty left" a (Digest.merge (Digest.create ()) a);
  Alcotest.(check bool) "empty is empty" true
    (Digest.is_empty (Digest.merge_all []))

let test_merge_does_not_mutate () =
  let a = Digest.of_list (samples 7 40) in
  let before = San_util.Json.to_string (Digest.to_json a) in
  ignore (Digest.merge a (Digest.of_list (samples 8 40)));
  Alcotest.(check string) "left argument untouched" before
    (San_util.Json.to_string (Digest.to_json a))

let test_quantile_accuracy () =
  (* 1..10_000: the rank-q element is known exactly, the digest must
     answer within its guaranteed relative error. *)
  let d = Digest.create () in
  for i = 1 to 10_000 do
    Digest.add d (float_of_int i)
  done;
  List.iter
    (fun q ->
      close ~rel:Digest.relative_error
        (Printf.sprintf "p%02.0f of 1..10k" (q *. 100.))
        (q *. 10_000.0) (Digest.quantile d q))
    [ 0.5; 0.9; 0.95; 0.99 ];
  (* Extremes answer a bucket midpoint clamped into [min, max], so
     they too are within the guaranteed error of the true extremes. *)
  close ~rel:0.05 "p0 near min" 1.0 (Digest.quantile d 0.0);
  close ~rel:0.05 "p100 near max" 10_000.0 (Digest.quantile d 1.0)

let test_zero_and_negative_bucket () =
  (* Non-positive values share one zero bucket that answers 0.0; the
     geometric buckets only resolve positive values. *)
  let d = Digest.of_list [ -5.0; 0.0; 0.0; 10.0 ] in
  Alcotest.(check int) "count" 4 (Digest.count d);
  Alcotest.(check (float 0.0)) "p0 answers from the zero bucket" 0.0
    (Digest.quantile d 0.0);
  Alcotest.(check (float 0.0)) "p50 still in the zero bucket" 0.0
    (Digest.quantile d 0.5);
  close ~rel:0.05 "p100 near max" 10.0 (Digest.quantile d 1.0)

let test_quantile_empty_and_single () =
  (* The serving/bench paths take p99 of whatever a run produced,
     including nothing: an empty digest must answer 0.0 (never index
     out of range or leak vmin = +inf), and a one-sample digest must
     answer that sample exactly at every q via the [vmin, vmax]
     clamp. *)
  let e = Digest.create () in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "empty q=%g" q)
        0.0 (Digest.quantile e q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  (match Digest.of_json (Digest.to_json e) with
  | None -> Alcotest.fail "empty digest JSON did not parse back"
  | Some e' -> Alcotest.(check int) "empty roundtrip count" 0 (Digest.count e'));
  let one = Digest.of_list [ 42.0 ] in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "single q=%g" q)
        42.0 (Digest.quantile one q))
    [ 0.0; 0.5; 0.99; 1.0 ]

let test_json_roundtrip () =
  let d = Digest.of_list (samples 9 500) in
  match Digest.of_json (Digest.to_json d) with
  | None -> Alcotest.fail "digest JSON did not parse back"
  | Some d' -> digests_equal "json roundtrip" d d'

let test_adopts_hist_snapshot () =
  (* A registry histogram window adopted as a digest answers the same
     quantiles: both sides share the gamma-bucket scheme. *)
  let r = San_obs.Metrics.create () in
  let h = San_obs.Metrics.histogram r "w" in
  let xs = samples 10 800 in
  List.iter (San_obs.Metrics.observe h) xs;
  let snap = San_obs.Metrics.snapshot r in
  let hs =
    Option.get (San_obs.Metrics.histogram_in snap "w")
  in
  digests_equal "adopted snapshot" (Digest.of_hist_snapshot hs)
    (Digest.of_list xs)

(* ------------------------------------------------------------------ *)
(* SLO burn rate under a scripted ramp                                 *)

let sample ?(epoch = 0) ?(load = 0.1) ?converge ?(epoch_ns = 1e6)
    ?(drop = 0.0) ?(coverage = 1.0) () =
  {
    Slo.s_epoch = epoch;
    s_load = load;
    s_converge_ns = converge;
    s_epoch_ns = epoch_ns;
    s_drop_rate = drop;
    s_coverage = coverage;
  }

let test_burn_raise_and_clear () =
  (* p50 drop-rate objective (budget 0.5), 10-epoch window, raise
     after 2 sustained burning epochs: a load ramp pushes the bad
     fraction past half the window, the alert raises once burn has
     held >= 1.0 for two epochs, and clears when the ramp backs off
     and the bad epochs age out of the window. *)
  let o =
    Slo.objective ~name:"drop" ~quantile:0.5 ~window:10 ~for_epochs:2
      ~metric:Slo.Drop_rate ~cmp:Slo.Below 0.2
  in
  let t = Slo.create [ o ] in
  let feed epoch drop = Slo.observe t (sample ~epoch ~drop ()) in
  (* Healthy epochs: no alert. *)
  for e = 0 to 3 do
    let raised, cleared = feed e 0.05 in
    Alcotest.(check (list string)) "healthy: nothing raised" [] raised;
    Alcotest.(check (list string)) "healthy: nothing cleared" [] cleared
  done;
  (* The ramp: drops breach the limit every epoch. Burn only reaches
     1.0 once half the window is bad (epoch 7: 4/8 bad against the
     50% budget) and must sustain [for_epochs] before raising. *)
  for e = 4 to 7 do
    let raised, _ = feed e 0.9 in
    Alcotest.(check (list string))
      (Printf.sprintf "epoch %d: not yet" e)
      [] raised
  done;
  let raised, _ = feed 8 0.9 in
  Alcotest.(check (list string)) "second burning epoch raises"
    [ "slo:drop" ] raised;
  let st = List.hd (Slo.status t) in
  Alcotest.(check bool) "alerting" true st.Slo.st_alerting;
  Alcotest.(check bool)
    (Printf.sprintf "burning (%.2f)" st.Slo.st_burn_rate)
    true (st.Slo.st_burn_rate >= 1.0);
  (* Re-raising while active would be alert spam. *)
  let raised, _ = feed 9 0.9 in
  Alcotest.(check (list string)) "no re-raise while active" [] raised;
  (* Back off: bad epochs age out of the window until burn < 1. *)
  let cleared = ref [] in
  for e = 10 to 25 do
    let _, c = feed e 0.05 in
    cleared := !cleared @ c
  done;
  Alcotest.(check (list string)) "recovery clears" [ "slo:drop" ] !cleared;
  let st = List.hd (Slo.status t) in
  Alcotest.(check bool) "not alerting after clear" false st.Slo.st_alerting

let test_max_load_exempts () =
  (* Epochs above the objective's load contract are never charged. *)
  let o =
    Slo.objective ~name:"drop" ~quantile:0.5 ~max_load:0.3 ~window:10
      ~for_epochs:1 ~metric:Slo.Drop_rate ~cmp:Slo.Below 0.2
  in
  let t = Slo.create [ o ] in
  for e = 0 to 5 do
    let raised, _ =
      Slo.observe t (sample ~epoch:e ~load:2.0 ~drop:0.99 ())
    in
    Alcotest.(check (list string)) "over-contract epochs exempt" [] raised
  done;
  let st = List.hd (Slo.status t) in
  Alcotest.(check int) "nothing eligible" 0 st.Slo.st_eligible

let test_converge_charged_only_on_incidents () =
  let o =
    Slo.objective ~name:"cvg" ~quantile:0.5 ~window:10 ~for_epochs:1
      ~metric:Slo.Converge_ns ~cmp:Slo.Below 100.0
  in
  let t = Slo.create [ o ] in
  (* Quiet epochs carry no incident: not eligible. *)
  for e = 0 to 4 do
    ignore (Slo.observe t (sample ~epoch:e ()))
  done;
  Alcotest.(check int) "quiet epochs not charged" 0
    (List.hd (Slo.status t)).Slo.st_eligible;
  let raised, _ = Slo.observe t (sample ~epoch:5 ~converge:500.0 ()) in
  Alcotest.(check (list string)) "slow incident raises" [ "slo:cvg" ] raised

let test_coverage_is_lower_bound () =
  let o =
    Slo.objective ~name:"cov" ~quantile:0.5 ~window:10 ~for_epochs:1
      ~metric:Slo.Coverage ~cmp:Slo.Above 0.5
  in
  let t = Slo.create [ o ] in
  let raised, _ = Slo.observe t (sample ~coverage:0.2 ()) in
  Alcotest.(check (list string)) "low coverage raises" [ "slo:cov" ] raised

let test_parse_roundtrip () =
  List.iter
    (fun s ->
      match Slo.parse s with
      | Error e -> Alcotest.failf "parse %S: %s" s e
      | Ok o ->
        Alcotest.(check string)
          (Printf.sprintf "roundtrip %S" s)
          s (Slo.to_string o))
    [ "converge:p99<2e+08@0.3"; "drop:p95<0.25"; "coverage:p90>0.8" ];
  List.iter
    (fun s ->
      match Slo.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse %S should have failed" s)
    [ ""; "converge"; "converge:p0<1"; "bogus:p95<1"; "drop:p95!0.2" ];
  (* The ship-with defaults round-trip through the grammar too. *)
  List.iter
    (fun o ->
      match Slo.parse (Slo.to_string o) with
      | Error e -> Alcotest.failf "default %S: %s" (Slo.to_string o) e
      | Ok o' ->
        Alcotest.(check string) "default roundtrips" (Slo.to_string o)
          (Slo.to_string o'))
    Slo.defaults

(* ------------------------------------------------------------------ *)
(* Load windows on a live graph                                        *)

let test_load_drive_and_coupling () =
  let g, _ = San_topology.Generators.now_cab () in
  let table = San_routing.Routes.compute g in
  let rng = San_util.Prng.create 11 in
  let r = Load.drive ~rng (Load.spec ~pattern:Load.Incast 5.0) ~table g in
  Alcotest.(check bool) "worms injected" true (r.Load.r_injected > 0);
  Alcotest.(check int) "injections accounted" r.Load.r_injected
    (r.Load.r_delivered + r.Load.r_dropped_reset
   + r.Load.r_dropped_bad_route);
  Alcotest.(check bool) "drop rate in [0,1]" true
    (r.Load.r_drop_rate >= 0.0 && r.Load.r_drop_rate <= 1.0);
  Alcotest.(check bool) "loss clamped" true
    (r.Load.r_loss_per_crossing >= 0.0
    && r.Load.r_loss_per_crossing <= 0.5);
  Alcotest.(check int) "latency digest counts deliveries"
    r.Load.r_delivered
    (Digest.count r.Load.r_latency);
  match Load.traffic_of_report r (San_util.Prng.create 12) with
  | None ->
    Alcotest.(check bool) "no traffic only when lossless" true
      (r.Load.r_loss_per_crossing = 0.0)
  | Some (p, _) ->
    close ~rel:1e-9 "coupled loss is the measured loss"
      r.Load.r_loss_per_crossing p

let test_daemon_under_load_runs_slos () =
  (* End to end: daemon with background load and the default SLOs;
     every steady-state epoch gets a load report and the outcome
     carries a status per objective. *)
  let g, _ = San_topology.Generators.now_cab () in
  let config =
    {
      San_service.Daemon.default_config with
      San_service.Daemon.seed = 5;
      load = Some (Load.spec ~pattern:Load.Hotspot 1.0);
      slos = Slo.defaults;
    }
  in
  match San_service.Daemon.run ~config ~epochs:5 g with
  | Error e -> Alcotest.failf "daemon: %s" e
  | Ok o ->
    Alcotest.(check int) "one status per objective"
      (List.length Slo.defaults)
      (List.length o.San_service.Daemon.slo);
    let loaded =
      List.filter
        (fun (r : San_service.Daemon.epoch_report) ->
          r.San_service.Daemon.load <> None)
        o.San_service.Daemon.reports
    in
    Alcotest.(check bool) "steady-state epochs drove load" true
      (List.length loaded >= 3)

let () =
  Alcotest.run "san_slo"
    [
      ( "digest",
        [
          Alcotest.test_case "merge = concat" `Quick test_merge_is_concat;
          Alcotest.test_case "commutes/associates" `Quick
            test_merge_commutes_and_associates;
          Alcotest.test_case "empty identity" `Quick
            test_merge_empty_identity;
          Alcotest.test_case "merge pure" `Quick test_merge_does_not_mutate;
          Alcotest.test_case "quantile accuracy" `Quick
            test_quantile_accuracy;
          Alcotest.test_case "zero bucket" `Quick
            test_zero_and_negative_bucket;
          Alcotest.test_case "empty and single-sample quantiles" `Quick
            test_quantile_empty_and_single;
          Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "adopts hist snapshot" `Quick
            test_adopts_hist_snapshot;
        ] );
      ( "slo",
        [
          Alcotest.test_case "burn raises and clears" `Quick
            test_burn_raise_and_clear;
          Alcotest.test_case "max_load exempts" `Quick test_max_load_exempts;
          Alcotest.test_case "converge charged on incidents" `Quick
            test_converge_charged_only_on_incidents;
          Alcotest.test_case "coverage lower bound" `Quick
            test_coverage_is_lower_bound;
          Alcotest.test_case "spec grammar roundtrips" `Quick
            test_parse_roundtrip;
        ] );
      ( "load",
        [
          Alcotest.test_case "drive and coupling" `Quick
            test_load_drive_and_coupling;
          Alcotest.test_case "daemon under load" `Slow
            test_daemon_under_load_runs_slos;
        ] );
    ]
